package janus

import (
	"context"
	"testing"

	"repro/internal/tensor"
)

func TestUnevenChunkGradientWeighting(t *testing.T) {
	cl, err := NewCluster(regressionSrc, TrainOptions{Replicas: 2, Options: Options{Seed: 5, LearningRate: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	fn, err := cl.Func("train_step")
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.FromRows([][]float64{{1}, {2}, {3}, {4}, {5}})
	y := tensor.FromRows([][]float64{{2}, {4}, {6}, {8}, {10}})
	for i := 0; i < 120; i++ {
		if _, err := fn.Call(context.Background(), Feeds{"x": x, "y": y}); err != nil {
			t.Fatal(err)
		}
	}
	w, err := cl.Parameter("w")
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(w, tensor.FromRows([][]float64{{2}}), 0.05) {
		t.Fatalf("uneven 3/2 split: w = %v, want ~2", w)
	}
}
