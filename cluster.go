package janus

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ps"
	"repro/internal/tensor"
	"repro/internal/vars"
)

// TrainOptions configures a distributed data-parallel training cluster: N
// worker replicas around a sharded parameter server (internal/ps), reachable
// entirely through the public function-handle API — no internal imports
// required.
type TrainOptions struct {
	// Options configures every worker replica's engine. A zero Seed is
	// replaced with 1: replicas must agree on parameter initialization, and
	// an unseeded RNG would give each replica different initial values. The
	// replica count is named Replicas (not Workers) so it never shadows the
	// embedded Options.Workers, the per-graph executor parallelism — the
	// footgun ServerOptions.PoolSize exists to fix.
	Options
	// Replicas is the number of data-parallel worker replicas (default 1).
	Replicas int
	// Shards is the parameter server's shard count (default = Replicas).
	// Ignored when ServerAddr is set: the external server's own -shards
	// applies (Stats reports the server's actual count either way).
	Shards int
	// Staleness bounds asynchrony in worker steps: a gradient push lagging
	// the freshest observed step by more than Staleness is rejected with
	// ErrStale and dropped. The handle API barriers replicas per Call, so 0
	// (synchronous) never rejects. Ignored when ServerAddr is set — the
	// external server's -staleness applies.
	Staleness int
	// Optimizer names the server-side update rule applied to pushed
	// gradients: "sgd" (default), "momentum", or "adam". Optimizer state
	// (velocity, Adam moments and per-tensor step counts) lives on the
	// server's shards keyed by variable name, so replicas stay stateless.
	// Ignored when ServerAddr is set — the external server's -optimizer
	// applies.
	Optimizer string
	// Async makes each Call a free-running epoch instead of one barriered
	// round: every replica loops AsyncSteps local steps on its slice of the
	// batch — pull fresh shards, run the function, stream gradients — with
	// no per-step barrier across replicas. The only cross-replica
	// synchronization is the server's shard step clock enforcing Staleness:
	// a replica whose pushes are rejected as stale backs off (bounded) and
	// re-pulls rather than failing. The Call returns when every replica has
	// finished its steps.
	Async bool
	// AsyncSteps is how many free-running local steps each replica runs per
	// Call when Async is set (default 1). Each step re-runs the function on
	// the replica's same feed slice against freshly pulled parameters.
	AsyncSteps int
	// ServerAddr, when non-empty, connects the replicas to an external
	// janusps parameter server (e.g. "http://localhost:8081") instead of
	// hosting an in-process one. The external server must be configured for
	// the same number of workers (gradients are averaged 1/Replicas
	// server-side), and ITS -lr and -optimizer govern the updates — with
	// ServerAddr set, Options.LearningRate only affects the replicas' local
	// optimize() bookkeeping, not the applied updates.
	ServerAddr string
	// Retries, when positive, wraps the cluster's transport in a retrying
	// layer: transient failures (ErrUnavailable — an unreachable or failing-
	// over server) are retried up to Retries times per RPC with capped
	// full-jitter exponential backoff before the sentinel surfaces to the
	// caller. Retried gradient pushes are safe: the server deduplicates on
	// (replica, step), so a push whose response was lost is applied exactly
	// once. 0 disables retrying (every transient failure surfaces
	// immediately).
	Retries int
	// RetryTimeout caps one attempt's wall-clock time when Retries is set
	// (default 2s): a hung server fails the attempt — retryably — instead
	// of wedging the replica.
	RetryTimeout time.Duration
}

// Cluster is a data-parallel training cluster behind the function-handle
// API: Program/Func resolve handles exactly as on a Runtime or Server, and
// each Call runs one global round — the feeds' leading batch dimension is
// split into contiguous per-replica slices, every replica executes the
// function on its slice concurrently, and each parameter's gradient streams
// to the sharded server the moment backprop finalizes it (overlapping
// communication with compute, the effect the paper's §6.3.2 attributes the
// graph engine's multi-device scalability to). The call returns the
// row-weighted mean of the replicas' scalar losses.
//
// With TrainOptions.Async set, a Call is instead a free-running epoch: each
// replica loops AsyncSteps pull→step→push iterations on its slice with no
// per-step barrier, the staleness bound arbitrating between fast and slow
// replicas (see TrainOptions.Async); the call returns each replica's final
// loss row-weighted.
//
// Calls are serialized (a round — or async epoch — is a global barrier);
// concurrency lives inside the round. Context cancellation stops every
// replica between training steps with ErrCanceled; gradients of interrupted
// steps are never half-applied, so server parameters always correspond to
// completed pushes.
// Atomicity is per replica step, not per round: a replica already past the
// cancellation check finishes its step and its pushes land, so a canceled
// round may be partially applied across replicas (training remains correct
// — it is equivalent to those replicas having run one extra stale-free
// step — but the round is not transactional).
//
// The first Call additionally bootstraps every replica by running the
// function once with gradients discarded (parameters are created lazily
// inside the step, and the resulting initial values are registered with the
// server set-if-absent). That throwaway run applies interpreter side
// effects: a program that advances module state per step (a batch counter,
// prints) sees the function execute twice on each replica during the first
// Call. Feeds passed by the caller are unaffected — the real first round
// re-runs on the same slices.
type Cluster struct {
	opts    TrainOptions
	server  *ps.Server // nil when ServerAddr points at an external janusps
	trans   ps.Transport
	shards  int // the server's actual shard count (external servers ignore opts.Shards)
	engines []*core.Engine
	workers []*ps.Worker

	mu sync.Mutex
	// booted tracks bootstrap per function name and replica: each handle's
	// first Call must run its function once with gradients discarded so the
	// variables THAT function creates lazily get registered with the server
	// (two handles may use disjoint variable sets). Per-replica flags make
	// a partially failed bootstrap resumable without re-applying the
	// throwaway run's module-state side effects to replicas that already
	// ran it.
	booted map[string][]bool
}

// NewCluster compiles src onto every worker replica and wires the replicas
// to the parameter server. The returned cluster's Program handle resolves
// the program's functions into distributed training handles.
func NewCluster(src string, opts TrainOptions) (*Cluster, error) {
	if opts.Replicas < 1 {
		opts.Replicas = 1
	}
	if opts.Shards < 1 {
		opts.Shards = opts.Replicas
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	ecfg := opts.Options.coreConfig()
	c := &Cluster{opts: opts}
	if opts.ServerAddr != "" {
		c.trans = ps.NewClient(opts.ServerAddr, nil)
	} else {
		server, err := ps.NewServer(ps.Config{
			Shards:    opts.Shards,
			LR:        ecfg.LR,
			Workers:   opts.Replicas,
			Staleness: opts.Staleness,
			Optimizer: opts.Optimizer,
		})
		if err != nil {
			return nil, fmt.Errorf("janus: cluster: %w", err)
		}
		c.server = server
		c.trans = c.server
	}
	if opts.Retries > 0 {
		var reg *obs.Registry
		if c.server != nil {
			reg = c.server.Registry()
		}
		c.trans = ps.NewRetryTransport(c.trans, ps.RetryPolicy{
			Budget:  opts.Retries,
			Attempt: opts.RetryTimeout,
		}, reg)
	}
	shards, err := c.trans.NumShards()
	if err != nil {
		return nil, fmt.Errorf("janus: cluster: %w", err)
	}
	c.shards = shards
	for i := 0; i < opts.Replicas; i++ {
		e := core.NewEngine(ecfg)
		if err := e.Run(src); err != nil {
			return nil, fmt.Errorf("janus: cluster worker %d compile: %w", i, err)
		}
		w, err := ps.NewWorker(i, e, nil, c.trans)
		if err != nil {
			return nil, err
		}
		c.engines = append(c.engines, e)
		c.workers = append(c.workers, w)
	}
	return c, nil
}

// Program returns the handle onto the cluster's compiled program.
func (c *Cluster) Program() *Program { return &Program{b: clusterBackend{c}} }

// Func resolves a module-level function into a distributed training handle
// (shorthand for Program().Func).
func (c *Cluster) Func(name string) (*Function, error) { return c.Program().Func(name) }

// Parameters snapshots the server-side trained parameters (every shard).
func (c *Cluster) Parameters() (map[string]*tensor.Tensor, error) {
	out := make(map[string]*tensor.Tensor)
	for s := 0; s < c.shards; s++ {
		params, _, _, err := c.trans.Pull(context.Background(), s, -1)
		if err != nil {
			return nil, err
		}
		for name, t := range params {
			out[name] = t
		}
	}
	return out, nil
}

// Parameter returns one named server-side trained parameter.
func (c *Cluster) Parameter(name string) (*tensor.Tensor, error) {
	params, _, _, err := c.trans.Pull(context.Background(), vars.ShardOf(name, c.shards), -1)
	if err != nil {
		return nil, err
	}
	t, ok := params[name]
	if !ok {
		return nil, fmt.Errorf("janus: unknown parameter %q", name)
	}
	return t, nil
}

// ClusterStats aggregates the replicas' parameter-server traffic.
type ClusterStats struct {
	Workers     int
	Shards      int
	Steps       int64
	Pulls       int64
	Pushes      int64
	StaleDrops  int64
	BytesPulled int64
	BytesPushed int64
}

// Stats snapshots the cluster's traffic counters.
func (c *Cluster) Stats() ClusterStats {
	st := ClusterStats{Workers: len(c.workers), Shards: c.shards}
	for _, w := range c.workers {
		ws := w.Stats()
		st.Steps += ws.Steps
		st.Pulls += ws.Pulls
		st.Pushes += ws.Pushes
		st.StaleDrops += ws.StaleDrops
		st.BytesPulled += ws.BytesPulled
		st.BytesPushed += ws.BytesPushed
	}
	return st
}

// clusterBackend runs handle calls as global data-parallel rounds.
type clusterBackend struct{ c *Cluster }

func (b clusterBackend) funcParams(_ context.Context, name string) ([]string, error) {
	// Serialize against in-flight rounds: the lookup reads engine 0's
	// interpreter globals, which a running step function may be writing.
	b.c.mu.Lock()
	defer b.c.mu.Unlock()
	fn, err := b.c.engines[0].LookupFunc(name)
	if err != nil {
		return nil, err
	}
	return fn.ParamList(), nil
}

func (b clusterBackend) call(ctx context.Context, name string, feeds Feeds) (Outputs, error) {
	c := b.c
	c.mu.Lock()
	defer c.mu.Unlock()
	chunks, rows, err := splitFeeds(feeds, len(c.workers))
	if err != nil {
		return nil, fmt.Errorf("janus: %s: %w", name, err)
	}
	// First round per function: bootstrap every replica — run the call once
	// with gradients discarded so the function's variables initialize,
	// propose the initial values set-if-absent (identical across replicas,
	// which share a seed), then pull the authoritative copy.
	if c.booted == nil {
		c.booted = make(map[string][]bool)
	}
	if c.booted[name] == nil {
		c.booted[name] = make([]bool, len(c.workers))
	}
	for i, w := range c.workers {
		if c.booted[name][i] {
			continue
		}
		i := i
		if err := w.BootstrapWith(func() error {
			_, err := c.engines[i].CallNamed(ctx, name, feedValues(chunks[i]))
			return err
		}); err != nil {
			return nil, err
		}
		c.booted[name][i] = true
	}
	type result struct {
		loss float64
		err  error
	}
	results := make([]result, len(c.workers))
	var wg sync.WaitGroup
	for i, w := range c.workers {
		// The server averages pushes uniformly (1/Replicas); when chunk
		// sizes differ by a row, scale each replica's gradients by its
		// share of the batch so the applied update is exactly the gradient
		// of the global batch mean: (k_i*n/rows)/n sums to k_i/rows.
		if rows > 0 {
			w.SetPushScale(float64(chunkRows(rows, len(c.workers), i)*len(c.workers)) / float64(rows))
		} else {
			w.SetPushScale(1)
		}
		wg.Add(1)
		go func(i int, w *ps.Worker) {
			defer wg.Done()
			body := func() (float64, error) {
				out, err := c.engines[i].CallNamed(ctx, name, feedValues(chunks[i]))
				if err != nil {
					return 0, err
				}
				outs, err := toOutputs(name, out)
				if err != nil {
					return 0, err
				}
				return outs.Scalar()
			}
			// Per-round stale-drop counts are discarded here; cumulative
			// drops stay observable via Cluster.Stats().
			if c.opts.Async {
				// Free-running epoch: this replica loops AsyncSteps local
				// steps against its same slice with no cross-replica barrier;
				// stale pushes back off and re-pull inside RunFree.
				steps := c.opts.AsyncSteps
				if steps < 1 {
					steps = 1
				}
				losses, _, err := w.RunFree(ctx, steps, func(int) (float64, error) { return body() })
				var last float64
				if len(losses) > 0 {
					last = losses[len(losses)-1]
				}
				results[i] = result{loss: last, err: err}
				return
			}
			loss, _, err := w.DoCtx(ctx, body)
			results[i] = result{loss: loss, err: err}
		}(i, w)
	}
	wg.Wait()
	mean, weight := 0.0, 0.0
	for i, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("janus: cluster worker %d: %w", i, r.err)
		}
		w := 1.0
		if rows > 0 {
			w = float64(chunkRows(rows, len(c.workers), i))
		}
		mean += r.loss * w
		weight += w
	}
	if weight > 0 {
		mean /= weight
	}
	return Outputs{tensor.Scalar(mean)}, nil
}

// splitFeeds slices every feed's leading batch dimension into n contiguous
// per-replica chunks (sizes differing by at most one). Empty feeds mean
// every replica calls the function with no arguments — data selection then
// lives inside the program. rows is 0 for the empty case.
func splitFeeds(feeds Feeds, n int) ([]Feeds, int, error) {
	chunks := make([]Feeds, n)
	if len(feeds) == 0 {
		return chunks, 0, nil
	}
	rows := -1
	first := ""
	for name, t := range feeds {
		if t.Rank() < 1 {
			return nil, 0, fmt.Errorf("feed %q is a scalar — distributed feeds need a leading batch dimension to split across workers", name)
		}
		if rows == -1 {
			rows, first = t.Dim(0), name
		} else if t.Dim(0) != rows {
			return nil, 0, fmt.Errorf("feeds disagree on the batch dimension (%q has %d rows, %q has %d)",
				first, rows, name, t.Dim(0))
		}
	}
	if rows < n {
		return nil, 0, fmt.Errorf("batch of %d rows cannot be split across %d workers — feed at least one row per worker", rows, n)
	}
	off := 0
	for i := 0; i < n; i++ {
		k := chunkRows(rows, n, i)
		chunk := make(Feeds, len(feeds))
		for name, t := range feeds {
			chunk[name] = tensor.SliceAxis(t, 0, off, off+k)
		}
		chunks[i] = chunk
		off += k
	}
	return chunks, rows, nil
}

// chunkRows is the size of chunk i when rows split across n workers.
func chunkRows(rows, n, i int) int {
	base, rem := rows/n, rows%n
	if i < rem {
		return base + 1
	}
	return base
}
