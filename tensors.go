package janus

import "repro/internal/tensor"

// Tensor aliases the runtime's dense CPU tensor so Feeds can be constructed
// — and Outputs consumed — without importing internal packages, which Go
// forbids from outside this module. The constructors below cover the feed
// shapes the handle API needs; the alias means values they return are
// interchangeable with every internal API that this package already exposes
// (Parameter, Outputs, Session.Infer, ...).
type Tensor = tensor.Tensor

// NewTensor builds a tensor of the given shape from row-major flat data.
func NewTensor(shape []int, data []float64) *Tensor { return tensor.New(shape, data) }

// FromRows builds a 2-D tensor from rows (the common Feeds constructor: the
// leading dimension is the batch axis).
func FromRows(rows [][]float64) *Tensor { return tensor.FromRows(rows) }

// FromSlice builds a 1-D tensor.
func FromSlice(vs []float64) *Tensor { return tensor.FromSlice(vs) }

// ScalarTensor builds a rank-0 tensor holding one value.
func ScalarTensor(v float64) *Tensor { return tensor.Scalar(v) }
