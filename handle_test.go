package janus

import (
	"context"
	"errors"
	"net/http/httptest"
	"repro/internal/ps"
	"repro/internal/serve"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
)

// regression fixture shared by the handle tests: y = 2x learned by a [1,1]
// weight.
const regressionSrc = `
def loss_fn(x, y):
    w = variable("w", [1, 1])
    return mse(matmul(x, w), y)

def train_step(x, y):
    return optimize(lambda: loss_fn(x, y))

def train(x, y):
    loss = constant(0.0)
    for i in range(100):
        loss = optimize(lambda: loss_fn(x, y))
    return loss
`

func regressionData() (x, y *tensor.Tensor) {
	return tensor.FromRows([][]float64{{1}, {2}}), tensor.FromRows([][]float64{{2}, {4}})
}

func TestCompileFuncCallLocal(t *testing.T) {
	rt := New(Options{Seed: 1, LearningRate: 0.1})
	prog, err := rt.Compile(regressionSrc)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := prog.Func("train")
	if err != nil {
		t.Fatal(err)
	}
	if got := fn.Params(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("Params() = %v, want [x y]", got)
	}
	x, y := regressionData()
	out, err := fn.Call(context.Background(), Feeds{"x": x, "y": y})
	if err != nil {
		t.Fatal(err)
	}
	loss, err := out.Scalar()
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.01 {
		t.Fatalf("final loss %v, want < 0.01", loss)
	}
	w, err := rt.Parameter("w")
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(w, tensor.FromRows([][]float64{{2}}), 0.05) {
		t.Fatalf("w = %v, want ~2", w)
	}
	if st := rt.Stats(); st.Conversions == 0 || st.GraphSteps == 0 {
		t.Fatalf("janus engine did not convert under the handle API: %+v", st)
	}
}

func TestFuncUnknownName(t *testing.T) {
	rt := New(Options{Seed: 1})
	prog, err := rt.Compile(regressionSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Func("nope"); !errors.Is(err, ErrUnknownFunction) {
		t.Fatalf("Func(nope): got %v, want ErrUnknownFunction", err)
	}
}

func TestCallFeedValidation(t *testing.T) {
	rt := New(Options{Seed: 1})
	prog, err := rt.Compile(regressionSrc)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.MustFunc("train_step")
	x, y := regressionData()
	_, err = fn.Call(context.Background(), Feeds{"x": x, "z": y})
	if err == nil || !strings.Contains(err.Error(), `no parameter "z"`) ||
		!strings.Contains(err.Error(), "x, y") {
		t.Fatalf("unknown feed: got %v, want a clear error naming the signature", err)
	}
	_, err = fn.Call(context.Background(), Feeds{"x": x})
	if err == nil || !strings.Contains(err.Error(), `missing feed for parameter "y"`) {
		t.Fatalf("missing feed: got %v, want a missing-parameter error", err)
	}
}

// TestCallCancellationAllOrNothing is the acceptance test for context
// threading: cancelling a Call that is inside a long training loop must (1)
// stop it promptly with ErrCanceled and (2) leave parameters exactly equal
// to some whole number of completed steps — never a half-applied step.
func TestCallCancellationAllOrNothing(t *testing.T) {
	const src = `
def loss_fn(x, y):
    w = variable("w", [1, 1])
    return mse(matmul(x, w), y)

def train_step(x, y):
    return optimize(lambda: loss_fn(x, y))

def train_forever(x, y):
    for i in range(1000000):
        optimize(lambda: loss_fn(x, y))
    return constant(0.0)
`
	x, y := regressionData()
	// Imperative engine on both sides: the step sequence is deterministic,
	// so a canceled run's parameters must match a reference prefix exactly.
	rt := New(Options{Engine: EngineImperative, Seed: 9, LearningRate: 0.01})
	prog, err := rt.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.MustFunc("train_forever")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := fn.Call(ctx, Feeds{"x": x, "y": y})
		done <- err
	}()
	// Cancel only after the loop has demonstrably completed a few steps, so
	// the cancellation provably lands mid-loop (Stats is race-safe).
	deadline := time.Now().Add(10 * time.Second)
	for rt.Stats().ImperativeSteps < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not stop the training loop")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want the context cause wrapped too", err)
	}
	steps := rt.Stats().ImperativeSteps
	if steps < 1 || steps >= 1000000 {
		t.Fatalf("cancellation landed at %d steps, want mid-loop", steps)
	}
	got, err := rt.Parameter("w")
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the identical engine stepped one optimize() at a time;
	// collect the parameter after every completed step and require the
	// canceled run to match one of the prefixes bit-for-bit.
	ref := New(Options{Engine: EngineImperative, Seed: 9, LearningRate: 0.01})
	refProg, err := ref.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	step := refProg.MustFunc("train_step")
	match := -1
	for k := 0; k <= steps+1; k++ {
		w, err := ref.Parameter("w")
		if k > 0 && err != nil {
			t.Fatal(err)
		}
		if err == nil && tensor.SameShape(w, got) && tensor.Equal(w, got) {
			match = k
			break
		}
		if _, err := step.Call(context.Background(), Feeds{"x": x, "y": y}); err != nil {
			t.Fatal(err)
		}
	}
	if match < 0 {
		t.Fatalf("canceled parameters (%v after %d counted steps) match no whole-step prefix — a step was half-applied", got, steps)
	}
}

// TestServedFunctionBatches drives the Server backend: concurrent handle
// calls with the same named-feed signature must coalesce into batched
// executions and return per-request rows.
func TestServedFunctionBatches(t *testing.T) {
	srv := NewServer(ServerOptions{
		PoolSize:   2,
		MaxBatch:   4,
		MaxLatency: 20 * time.Millisecond,
		Options:    Options{Seed: 3, ProfileIterations: 1},
	})
	prog, err := srv.Compile(`
def scale(x, s):
    return x * s
`)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := prog.Func("scale")
	if err != nil {
		t.Fatal(err)
	}
	call := func(v float64) (float64, error) {
		out, err := fn.Call(context.Background(), Feeds{
			"x": tensor.FromRows([][]float64{{v}}),
			"s": tensor.FromRows([][]float64{{2}}),
		})
		if err != nil {
			return 0, err
		}
		y := out.Tensor()
		if y == nil || y.Size() != 1 {
			return 0, errors.New("want one 1-element tensor out")
		}
		return y.Data()[0], nil
	}
	// Warm sequentially (profiling+conversion), then hammer concurrently.
	for i := 0; i < 3; i++ {
		if got, err := call(3); err != nil || got != 6 {
			t.Fatalf("warm call = %v, %v (want 6)", got, err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := 0; i < len(errs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := call(float64(i))
			if err == nil && got != float64(2*i) {
				err = errors.New("wrong row scattered back")
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent call %d: %v", i, err)
		}
	}
	if st := srv.Stats(); st.BatchedRequests == 0 {
		t.Fatalf("no batching observed: %+v", st)
	}
	// The multi-feed signature batches only when feed shapes agree; a
	// scalar feed (no batch dimension) must be rejected up front.
	_, err = fn.Call(context.Background(), Feeds{
		"x": tensor.Scalar(1), "s": tensor.FromRows([][]float64{{2}})})
	if err == nil || !strings.Contains(err.Error(), "leading batch dimension") {
		t.Fatalf("scalar feed: got %v, want a clear batch-dimension error", err)
	}
}

// TestSentinelStatusRoundTrip proves the errors.Is round trip through the
// serving HTTP status mapping in both directions, and through a live 404.
func TestSentinelStatusRoundTrip(t *testing.T) {
	for _, e := range []error{ErrOverloaded, ErrAcquireTimeout, ErrUnknownFunction, ErrCanceled} {
		status := serve.StatusForError(e)
		back := ErrorFromStatus(status, e.Error())
		if !errors.Is(back, e) {
			t.Fatalf("round trip lost %v (status %d, got %v)", e, status, back)
		}
	}
	if !errors.Is(ErrorFromStatus(409, "stale"), ErrStale) {
		t.Fatal("409 did not map to ErrStale")
	}

	// Live wire check: calling an unknown function over HTTP yields 404,
	// which maps back to ErrUnknownFunction.
	srv := NewServer(ServerOptions{PoolSize: 1, Options: Options{Seed: 1}})
	if _, err := srv.Compile("def f(x):\n    return x\n"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/v1/call", "application/json",
		strings.NewReader(`{"fn": "missing", "feeds": {"x": [[1.0]]}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown function over HTTP: status %d, want 404", resp.StatusCode)
	}
	if err := ErrorFromStatus(resp.StatusCode, "missing"); !errors.Is(err, ErrUnknownFunction) {
		t.Fatalf("mapped %v, want ErrUnknownFunction", err)
	}
}

// TestClusterFunctionTrains drives the distributed backend end to end: a
// 2-replica cluster around the in-process sharded parameter server, trained
// purely through the public handle API, must converge like the local run.
func TestClusterFunctionTrains(t *testing.T) {
	cl, err := NewCluster(regressionSrc, TrainOptions{
		Replicas: 2,
		Options:  Options{Seed: 5, LearningRate: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	fn, err := cl.Func("train_step")
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.FromRows([][]float64{{1}, {2}, {3}, {4}})
	y := tensor.FromRows([][]float64{{2}, {4}, {6}, {8}})
	var loss float64
	for i := 0; i < 120; i++ {
		out, err := fn.Call(context.Background(), Feeds{"x": x, "y": y})
		if err != nil {
			t.Fatal(err)
		}
		if loss, err = out.Scalar(); err != nil {
			t.Fatal(err)
		}
	}
	if loss > 0.05 {
		t.Fatalf("distributed training did not converge: final loss %v", loss)
	}
	w, err := cl.Parameter("w")
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(w, tensor.FromRows([][]float64{{2}}), 0.1) {
		t.Fatalf("server-side w = %v, want ~2", w)
	}
	st := cl.Stats()
	if st.Pushes == 0 || st.Steps == 0 {
		t.Fatalf("no gradient traffic recorded: %+v", st)
	}
	// Feed-splitting guardrails: too few rows and scalar feeds fail clearly.
	if _, err := fn.Call(context.Background(), Feeds{
		"x": tensor.FromRows([][]float64{{1}}),
		"y": tensor.FromRows([][]float64{{2}}),
	}); err == nil || !strings.Contains(err.Error(), "cannot be split") {
		t.Fatalf("1 row across 2 workers: got %v, want a clear split error", err)
	}
}

// TestClusterCallCancellation: cancelling a distributed Call returns
// ErrCanceled and the cluster stays usable for the next round.
func TestClusterCallCancellation(t *testing.T) {
	const src = `
def loss_fn(x, y):
    w = variable("w", [1, 1])
    return mse(matmul(x, w), y)

def slow_round(x, y):
    loss = constant(0.0)
    for i in range(200000):
        loss = optimize(lambda: loss_fn(x, y))
    return loss

def train_step(x, y):
    return optimize(lambda: loss_fn(x, y))
`
	cl, err := NewCluster(src, TrainOptions{
		Replicas: 2,
		Options:  Options{Engine: EngineImperative, Seed: 5, LearningRate: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := cl.Func("slow_round")
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.FromRows([][]float64{{1}, {2}})
	y := tensor.FromRows([][]float64{{2}, {4}})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := slow.Call(ctx, Feeds{"x": x, "y": y})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err = <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("cluster cancellation did not stop the round")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	// The cluster remains consistent and trainable after the canceled round.
	step, err := cl.Func("train_step")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := step.Call(context.Background(), Feeds{"x": x, "y": y}); err != nil {
		t.Fatalf("post-cancel round failed: %v", err)
	}
}

// TestClusterOverExternalServer drives the TrainOptions.ServerAddr path: a
// public-API cluster whose replicas talk HTTP to a janusps-style parameter
// server in another "process" (an httptest server over ps.NewHandler).
func TestClusterOverExternalServer(t *testing.T) {
	psrv, err := ps.NewServer(ps.Config{Shards: 2, LR: 0.05, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(ps.NewHandler(psrv))
	defer ts.Close()
	cl, err := NewCluster(regressionSrc, TrainOptions{
		Replicas:   2,
		ServerAddr: ts.URL,
		Options:    Options{Seed: 5, LearningRate: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	step, err := cl.Func("train_step")
	if err != nil {
		t.Fatal(err)
	}
	feeds := Feeds{
		"x": tensor.FromRows([][]float64{{1}, {2}, {3}, {4}}),
		"y": tensor.FromRows([][]float64{{2}, {4}, {6}, {8}}),
	}
	var loss float64
	for i := 0; i < 80; i++ {
		out, err := step.Call(context.Background(), feeds)
		if err != nil {
			t.Fatal(err)
		}
		if loss, err = out.Scalar(); err != nil {
			t.Fatal(err)
		}
	}
	if loss > 0.05 {
		t.Fatalf("training over HTTP transport did not converge: final loss %v", loss)
	}
	if st := psrv.Stats(); st.Pushes == 0 {
		t.Fatalf("no pushes reached the external server: %+v", st)
	}
}

// TestZeroFeedCallAllBackends: a no-parameter handle call must behave the
// same on every backend (the serve batcher has nothing to coalesce, so it
// executes directly instead of rejecting the empty feed set).
func TestZeroFeedCallAllBackends(t *testing.T) {
	const src = `
def answer():
    return constant([[42.0]])
`
	rt := New(Options{Seed: 1})
	prog, err := rt.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerOptions{PoolSize: 1, Options: Options{Seed: 1}})
	sprog, err := srv.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range map[string]*Program{"local": prog, "server": sprog} {
		fn, err := p.Func("answer")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out, err := fn.Call(context.Background(), nil)
		if err != nil {
			t.Fatalf("%s: zero-feed call: %v", name, err)
		}
		if got := out.Tensor(); got == nil || got.Data()[0] != 42 {
			t.Fatalf("%s: got %v, want 42", name, got)
		}
	}
}

// TestReservedFeedNameRejected: the internal positional group key cannot be
// forged through the named-feed surface.
func TestReservedFeedNameRejected(t *testing.T) {
	srv := NewServer(ServerOptions{PoolSize: 1, Options: Options{Seed: 1}})
	if _, err := srv.Compile("def f(x):\n    return x\n"); err != nil {
		t.Fatal(err)
	}
	fn, err := srv.Func("f")
	if err != nil {
		t.Fatal(err)
	}
	_ = fn
	_, err = srv.srv.Pool().CallNamed(context.Background(), "f",
		map[string]*tensor.Tensor{"#0": tensor.FromRows([][]float64{{1}})})
	if err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Fatalf("reserved feed name: got %v, want rejection", err)
	}
}

// TestBatchedTrainStepScalarLoss: concurrent same-signature train-step
// handle calls merge into one step over the concatenated batch, and every
// merged caller receives the shared scalar loss instead of an error.
func TestBatchedTrainStepScalarLoss(t *testing.T) {
	srv := NewServer(ServerOptions{
		PoolSize:   1, // one worker forces concurrent calls into one batch window
		MaxBatch:   4,
		MaxLatency: 50 * time.Millisecond,
		Options:    Options{Seed: 3, LearningRate: 0.01},
	})
	if _, err := srv.Compile(regressionSrc); err != nil {
		t.Fatal(err)
	}
	fn, err := srv.Func("train_step")
	if err != nil {
		t.Fatal(err)
	}
	x, y := regressionData()
	const calls = 6
	var wg sync.WaitGroup
	losses := make([]float64, calls)
	errs := make([]error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := fn.Call(context.Background(), Feeds{"x": x, "y": y})
			if err == nil {
				losses[i], err = out.Scalar()
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("merged train call %d: %v", i, err)
		}
		if losses[i] <= 0 {
			t.Fatalf("merged train call %d: loss %v, want positive scalar", i, losses[i])
		}
	}
	if st := srv.Stats(); st.BatchedRequests < calls {
		t.Logf("note: only %d of %d requests batched (timing)", st.BatchedRequests, calls)
	}
}

// TestClusterSecondFunctionBootstraps: two handles on one cluster using
// disjoint variable sets must each bootstrap (register their variables with
// the parameter server) on their own first Call.
func TestClusterSecondFunctionBootstraps(t *testing.T) {
	const src = `
def loss_a(x, y):
    wa = variable("wa", [1, 1])
    return mse(matmul(x, wa), y)

def loss_b(x, y):
    wb = variable("wb", [1, 1])
    return mse(matmul(x, wb), y)

def train_a(x, y):
    return optimize(lambda: loss_a(x, y))

def train_b(x, y):
    return optimize(lambda: loss_b(x, y))
`
	cl, err := NewCluster(src, TrainOptions{
		Replicas: 2,
		Options:  Options{Seed: 5, LearningRate: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	feeds := Feeds{
		"x": tensor.FromRows([][]float64{{1}, {2}}),
		"y": tensor.FromRows([][]float64{{2}, {4}}),
	}
	for _, name := range []string{"train_a", "train_b"} {
		fn, err := cl.Func(name)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := fn.Call(context.Background(), feeds); err != nil {
				t.Fatalf("%s call %d: %v", name, i, err)
			}
		}
	}
	for _, p := range []string{"wa", "wb"} {
		if _, err := cl.Parameter(p); err != nil {
			t.Fatalf("parameter %q not registered server-side: %v", p, err)
		}
	}
}

// TestClusterAsyncHandleTrains drives the free-running mode through the
// public handle API: each Call is an async epoch (AsyncSteps local steps per
// replica with no per-step barrier, staleness bound arbitrating), with a
// server-side momentum optimizer holding its state keyed by variable name.
func TestClusterAsyncHandleTrains(t *testing.T) {
	cl, err := NewCluster(regressionSrc, TrainOptions{
		Replicas:   2,
		Staleness:  2,
		Async:      true,
		AsyncSteps: 10,
		// Momentum's asymptotic step gain is 1/(1-mu) = 10x the base rate;
		// 0.005 keeps the effective rate (~0.05) safely inside the stable
		// region for this quadratic regardless of async push ordering.
		Optimizer: "momentum",
		Options:   Options{Seed: 5, LearningRate: 0.005},
	})
	if err != nil {
		t.Fatal(err)
	}
	fn, err := cl.Func("train_step")
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.FromRows([][]float64{{1}, {2}, {3}, {4}})
	y := tensor.FromRows([][]float64{{2}, {4}, {6}, {8}})
	var loss float64
	for i := 0; i < 12; i++ {
		out, err := fn.Call(context.Background(), Feeds{"x": x, "y": y})
		if err != nil {
			t.Fatal(err)
		}
		if loss, err = out.Scalar(); err != nil {
			t.Fatal(err)
		}
	}
	if loss > 0.05 {
		t.Fatalf("async distributed training did not converge: final loss %v", loss)
	}
	w, err := cl.Parameter("w")
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(w, tensor.FromRows([][]float64{{2}}), 0.1) {
		t.Fatalf("server-side w = %v, want ~2", w)
	}
	// 12 calls x 2 replicas x 10 free-running steps each, plus 2 bootstrap
	// runs that don't count as worker steps.
	st := cl.Stats()
	if st.Steps != 12*2*10 {
		t.Fatalf("free-running steps %d, want %d", st.Steps, 12*2*10)
	}
}

// TestClusterAsyncRejectsBadOptimizer: an unknown TrainOptions.Optimizer
// fails NewCluster up front.
func TestClusterAsyncRejectsBadOptimizer(t *testing.T) {
	if _, err := NewCluster(regressionSrc, TrainOptions{Optimizer: "adagrad"}); err == nil {
		t.Fatal("unknown optimizer accepted")
	}
}
