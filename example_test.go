package janus_test

import (
	"context"
	"fmt"
	"log"
	"math"

	janus "repro"
)

// ExampleRuntime_Compile shows the function-handle API on the local
// backend: compile once, resolve a handle, call with named feeds.
func ExampleRuntime_Compile() {
	rt := janus.New(janus.Options{Seed: 1, LearningRate: 0.1})
	prog, err := rt.Compile(`
def loss_fn(x, y):
    w = variable("w", [1, 1])
    return mse(matmul(x, w), y)

def train(x, y):
    loss = constant(0.0)
    for i in range(100):
        loss = optimize(lambda: loss_fn(x, y))
    return loss
`)
	if err != nil {
		log.Fatal(err)
	}
	train, err := prog.Func("train")
	if err != nil {
		log.Fatal(err)
	}
	out, err := train.Call(context.Background(), janus.Feeds{
		"x": janus.FromRows([][]float64{{1}, {2}}),
		"y": janus.FromRows([][]float64{{2}, {4}}),
	})
	if err != nil {
		log.Fatal(err)
	}
	loss, err := out.Scalar()
	if err != nil {
		log.Fatal(err)
	}
	w, _ := rt.Parameter("w")
	fmt.Printf("converged: %t\n", loss < 0.01)
	fmt.Printf("w ≈ 2: %t\n", math.Abs(w.Data()[0]-2) < 0.05)
	// Output:
	// converged: true
	// w ≈ 2: true
}

// ExampleServer_Compile shows the same handle surface on the serving
// backend, where concurrent same-signature calls batch into one execution.
func ExampleServer_Compile() {
	srv := janus.NewServer(janus.ServerOptions{
		PoolSize: 2,
		Options:  janus.Options{Seed: 1, ProfileIterations: 1},
	})
	prog, err := srv.Compile(`
def double(x):
    return x + x
`)
	if err != nil {
		log.Fatal(err)
	}
	double, err := prog.Func("double")
	if err != nil {
		log.Fatal(err)
	}
	out, err := double.Call(context.Background(), janus.Feeds{
		"x": janus.FromRows([][]float64{{1, 2}}),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out.Tensor().Data())
	// Output:
	// [2 4]
}

// ExampleCluster_Func shows the distributed backend: the identical handle
// call runs one data-parallel round — the batch splits across replicas,
// gradients stream to a sharded parameter server during backprop.
func ExampleCluster_Func() {
	cl, err := janus.NewCluster(`
def loss_fn(x, y):
    w = variable("w", [1, 1])
    return mse(matmul(x, w), y)

def train_step(x, y):
    return optimize(lambda: loss_fn(x, y))
`, janus.TrainOptions{
		Replicas: 2,
		Options:  janus.Options{Seed: 5, LearningRate: 0.05},
	})
	if err != nil {
		log.Fatal(err)
	}
	step, err := cl.Func("train_step")
	if err != nil {
		log.Fatal(err)
	}
	feeds := janus.Feeds{
		"x": janus.FromRows([][]float64{{1}, {2}, {3}, {4}}),
		"y": janus.FromRows([][]float64{{2}, {4}, {6}, {8}}),
	}
	var loss float64
	for i := 0; i < 100; i++ {
		out, err := step.Call(context.Background(), feeds)
		if err != nil {
			log.Fatal(err)
		}
		if loss, err = out.Scalar(); err != nil {
			log.Fatal(err)
		}
	}
	w, _ := cl.Parameter("w")
	fmt.Printf("converged: %t\n", loss < 0.01)
	fmt.Printf("server-side w ≈ 2: %t\n", math.Abs(w.Data()[0]-2) < 0.05)
	// Output:
	// converged: true
	// server-side w ≈ 2: true
}
