package janus

// Benchmarks regenerating the paper's evaluation artifacts as testing.B
// targets. One bench family per table/figure:
//
//	BenchmarkTable3/<model>/<engine>  — single-device training throughput
//	BenchmarkFig6/<model>/<engine>    — convergence-workload step cost
//	BenchmarkFig7/<model>/<stage>     — optimization ablation
//	BenchmarkFig8/<model>/<devices>   — simulated multi-device step
//	BenchmarkAssertCost/<mode>        — §6.3.1 assertion overhead
//
// `go test -bench . -benchmem` prints ns/op per configuration; cmd/janusbench
// renders the same data in the paper's table layout.

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/models"
)

// benchEngines mirrors the Table 3 engine columns.
func benchEngines() []struct {
	name string
	cfg  core.Config
} {
	jan := core.DefaultJanusConfig()
	jan.LR = 0.05
	jan.Workers = runtime.NumCPU()
	sym := jan
	sym.DisableAsserts = true
	sym.ProfileIters = 1
	return []struct {
		name string
		cfg  core.Config
	}{
		{"imperative", core.Config{Mode: core.Imperative, LR: 0.05}},
		{"janus", jan},
		{"symbolic", sym},
	}
}

func benchModel(b *testing.B, modelName string, cfg core.Config) {
	b.Helper()
	m, err := models.Get(modelName)
	if err != nil {
		b.Fatal(err)
	}
	e := core.NewEngine(cfg)
	inst, err := m.Build(e, 42)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 6; i++ { // warmup: profiling + conversion
		if _, err := inst.Step(i); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Step(6 + i); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(b.N*m.ItemsPerStep)/secs, "items/s")
	}
}

// BenchmarkTable3 regenerates the single-machine throughput table.
func BenchmarkTable3(b *testing.B) {
	for _, m := range models.All() {
		for _, eng := range benchEngines() {
			b.Run(m.Name+"/"+eng.name, func(b *testing.B) {
				benchModel(b, m.Name, eng.cfg)
			})
		}
	}
}

// BenchmarkFig6 times the five convergence workloads per engine (the wall
// clock per step is the x-axis scale of each Figure 6 panel). The trace
// engine is excluded where the paper reports it cannot run the model.
func BenchmarkFig6(b *testing.B) {
	for _, name := range []string{"ResNet", "LM", "TreeLSTM", "PPO", "AN"} {
		for _, eng := range benchEngines() {
			b.Run(name+"/"+eng.name, func(b *testing.B) {
				benchModel(b, name, eng.cfg)
			})
		}
		if name == "ResNet" || name == "LM" || name == "AN" {
			b.Run(name+"/trace", func(b *testing.B) {
				benchModel(b, name, core.Config{Mode: core.Trace, LR: 0.05})
			})
		}
	}
}

// BenchmarkFig7 regenerates the ablation: IMP, BASE, +UNRL, +SPCN, +PARL on
// three representative models (one per overhead regime).
func BenchmarkFig7(b *testing.B) {
	mk := func(unroll, spcn bool, workers int) core.Config {
		return core.Config{Mode: core.Janus, LR: 0.05, ProfileIters: 3,
			Unroll: unroll, Specialize: spcn, Workers: workers}
	}
	stages := []struct {
		name string
		cfg  core.Config
	}{
		{"IMP", core.Config{Mode: core.Imperative, LR: 0.05}},
		{"BASE", mk(false, false, 1)},
		{"UNRL", mk(true, false, 1)},
		{"SPCN", mk(true, true, 1)},
		{"PARL", mk(true, true, runtime.NumCPU())},
	}
	for _, model := range []string{"LeNet", "LSTM", "TreeRNN"} {
		for _, s := range stages {
			b.Run(model+"/"+s.name, func(b *testing.B) {
				benchModel(b, model, s.cfg)
			})
		}
	}
}

// BenchmarkFig8 exercises the cluster simulator across device counts for the
// four scalability panels.
func BenchmarkFig8(b *testing.B) {
	panels := []struct {
		name    string
		params  float64
		compute float64
	}{
		{"ResNet", 25e6, 0.05},
		{"Inception", 24e6, 0.06},
		{"LM", 0.83e9, 0.02},
		{"PPO", 1e4, 0.002},
	}
	for _, p := range panels {
		for _, d := range []int{1, 6, 12, 36} {
			for _, overlap := range []bool{true, false} {
				mode := "overlap"
				if !overlap {
					mode = "serial"
				}
				b.Run(p.name+"/"+mode+"/"+itoa(d), func(b *testing.B) {
					cfg := dist.ClusterConfig{
						Devices: d, StepCompute: p.compute,
						GradBytes: p.params * 8, Overlap: overlap,
					}
					var last float64
					for i := 0; i < b.N; i++ {
						last = dist.StepTime(cfg)
					}
					b.ReportMetric(last*1000, "step-ms")
					b.ReportMetric(dist.ScaleFactor(cfg, 64), "scale")
				})
			}
		}
	}
}

// BenchmarkAssertCost measures the §6.3.1 claim that assumption validation
// is effectively free.
func BenchmarkAssertCost(b *testing.B) {
	on := core.DefaultJanusConfig()
	on.LR = 0.05
	off := on
	off.DisableAsserts = true
	b.Run("LSTM/asserts-on", func(b *testing.B) { benchModel(b, "LSTM", on) })
	b.Run("LSTM/asserts-off", func(b *testing.B) { benchModel(b, "LSTM", off) })
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
