// Command quickstart trains a linear regression model through the
// function-handle API: Compile parses and defines the program once, Func
// resolves a handle, and Call runs it with named tensor feeds built on the
// Go side. Engine statistics show the speculative conversion at work: three
// profiled imperative iterations, one graph generation, then cached
// symbolic execution for the remaining steps.
package main

import (
	"context"
	"fmt"
	"log"

	janus "repro"
)

func main() {
	rt := janus.New(janus.Options{Seed: 1, LearningRate: 0.1})
	prog, err := rt.Compile(`
def loss_fn(x, y):
    w = variable("w", [2, 1])
    b = variable("b", [1])
    pred = matmul(x, w) + b
    return mse(pred, y)

def train(x, y):
    loss = constant(0.0)
    for i in range(300):
        loss = optimize(lambda: loss_fn(x, y))
    return loss
`)
	if err != nil {
		log.Fatal(err)
	}
	train, err := prog.Func("train")
	if err != nil {
		log.Fatal(err)
	}

	// y = 3*x1 - 2*x2 + 0.5, fed from Go instead of program constants.
	feeds := janus.Feeds{
		"x": janus.FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}}),
		"y": janus.FromRows([][]float64{{3.5}, {-1.5}, {1.5}, {4.5}}),
	}
	out, err := train.Call(context.Background(), feeds)
	if err != nil {
		log.Fatal(err)
	}
	loss, err := out.Scalar()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final loss: %.6f\n", loss)

	w, _ := rt.Parameter("w")
	b, _ := rt.Parameter("b")
	fmt.Printf("learned w = %v (true [3 -2])\n", w)
	fmt.Printf("learned b = %v (true [0.5])\n", b)

	st := rt.Stats()
	fmt.Printf("engine: %d imperative (profiling) steps, %d graph steps, "+
		"%d conversions, %d cache hits, %d assumption failures\n",
		st.ImperativeSteps, st.GraphSteps, st.Conversions, st.CacheHits, st.AssertFailures)
}
