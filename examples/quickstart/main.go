// Command quickstart trains a linear regression model with the JANUS
// runtime, printing engine statistics that show the speculative conversion
// at work: three profiled imperative iterations, one graph generation, then
// cached symbolic execution for the remaining steps.
package main

import (
	"fmt"
	"log"

	janus "repro"
)

func main() {
	rt := janus.New(janus.Options{Seed: 1, LearningRate: 0.1})
	err := rt.Run(`
def loss_fn(x, y):
    w = variable("w", [2, 1])
    b = variable("b", [1])
    pred = matmul(x, w) + b
    return mse(pred, y)

# y = 3*x1 - 2*x2 + 0.5
x = constant([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [2.0, 1.0]])
y = constant([[3.5], [-1.5], [1.5], [4.5]])

for i in range(300):
    loss = optimize(lambda: loss_fn(x, y))

print("final loss:", loss_fn(x, y))
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rt.Output())

	w, _ := rt.Parameter("w")
	b, _ := rt.Parameter("b")
	fmt.Printf("learned w = %v (true [3 -2])\n", w)
	fmt.Printf("learned b = %v (true [0.5])\n", b)

	st := rt.Stats()
	fmt.Printf("engine: %d imperative (profiling) steps, %d graph steps, "+
		"%d conversions, %d cache hits, %d assumption failures\n",
		st.ImperativeSteps, st.GraphSteps, st.Conversions, st.CacheHits, st.AssertFailures)
}
