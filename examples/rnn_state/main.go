// Command rnn_state reproduces the paper's Figure 1 scenario: a recurrent
// model that carries hidden state across sequences through an object
// attribute (an impure function). It compiles the identical program into a
// function handle on all three engines and shows that:
//
//   - JANUS converts the loop + state program to a symbolic graph and keeps
//     the state passing exact (deferred write-back, §4.2.3);
//   - the tracing baseline silently drops the state update, so its hidden
//     state never advances — the Figure 6(b) failure mode.
package main

import (
	"context"
	"fmt"
	"log"

	janus "repro"
)

const program = `
class RNNModel:
    def __init__(self):
        self.state = zeros([1, 4])
    def __call__(self, sequence):
        w = variable("rnn/w", [4, 4])
        u = variable("rnn/u", [2, 4])
        state = self.state
        outputs = []
        for item in sequence:
            state = tanh(matmul(state, w) + matmul(item, u))
            outputs += [state]
        self.state = state
        return reduce_mean(stack(outputs) ** 2.0)

model = RNNModel()
seq = [constant([[1.0, 0.0]]), constant([[0.0, 1.0]]), constant([[1.0, 1.0]])]

def train():
    for i in range(12):
        optimize(lambda: model(seq))
    return reduce_sum(model.state)
`

func run(name string, engine janus.Engine) {
	rt := janus.New(janus.Options{Engine: engine, Seed: 7, LearningRate: 0.05})
	prog, err := rt.Compile(program)
	if err != nil {
		log.Fatalf("%s: compile: %v", name, err)
	}
	train, err := prog.Func("train")
	if err != nil {
		log.Fatalf("%s: resolve: %v", name, err)
	}
	out, err := train.Call(context.Background(), nil)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	stateSum, err := out.Scalar()
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	st := rt.Stats()
	fmt.Printf("%-11s final state sum: %.6f\n", name, stateSum)
	fmt.Printf("            (imperative steps %d, graph steps %d, fallbacks %d)\n",
		st.ImperativeSteps, st.GraphSteps, st.Fallbacks)
}

func main() {
	fmt.Println("Figure 1 program (RNN with state carried in an object attribute)")
	fmt.Println()
	run("imperative", janus.EngineImperative)
	run("janus", janus.EngineJanus)
	run("trace", janus.EngineTrace)
	fmt.Println()
	fmt.Println("imperative and janus agree; trace's state never advanced —")
	fmt.Println("trace-based conversion loses the self.state write (paper Table 1, Fig. 6b).")
}
