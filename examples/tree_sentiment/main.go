// Command tree_sentiment trains a recursive TreeRNN sentiment classifier
// (the paper's TreeNN workload) under JANUS. Recursion over per-sample tree
// objects is the hardest dynamic-feature combination in Table 2: JANUS
// converts the recursive function to an InvokeOp subgraph whose leaf/internal
// decision is Switch/Merge dataflow, while the tracing baseline cannot
// convert it at all.
package main

import (
	"fmt"
	"log"

	janus "repro"
	"repro/internal/core"
	"repro/internal/models"
)

func main() {
	m, err := models.Get("TreeRNN")
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultJanusConfig()
	cfg.Seed = 11
	cfg.LR = 0.1
	eng := core.NewEngine(cfg)
	inst, err := m.Build(eng, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training TreeRNN on synthetic sentiment trees (JANUS engine)")
	for i := 0; i < 40; i++ {
		loss, err := inst.Step(i)
		if err != nil {
			log.Fatal(err)
		}
		if i%10 == 0 {
			fmt.Printf("  step %3d  loss %.4f\n", i, loss)
		}
	}
	fmt.Printf("engine: %d graph steps, %d conversions, %d assumption failures\n",
		eng.Stats().GraphSteps, eng.Stats().Conversions, eng.Stats().AssertFailures)

	// The tracing baseline refuses recursion — show its error.
	tr := core.NewEngine(core.Config{Mode: core.Trace, LR: 0.1, Seed: 11})
	trInst, err := m.Build(tr, 42)
	if err != nil {
		log.Fatal(err)
	}
	var traceErr error
	for i := 0; i < 3 && traceErr == nil; i++ {
		_, traceErr = trInst.Step(i)
	}
	fmt.Printf("tracing baseline on the same model: %v\n", traceErr)
	_ = janus.Options{} // keep the public package linked for documentation
}
