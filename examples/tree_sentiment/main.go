// Command tree_sentiment trains a recursive TreeRNN sentiment classifier
// (the paper's TreeNN workload) entirely through the public function-handle
// API — no internal imports. Recursion over per-sample tree objects is the
// hardest dynamic-feature combination in Table 2: JANUS converts the
// recursive function to an InvokeOp subgraph whose leaf/internal decision
// is Switch/Merge dataflow, while the tracing baseline cannot convert it at
// all.
package main

import (
	"context"
	"fmt"
	"log"

	janus "repro"
)

// program builds a small synthetic tree bank in minipy itself (trees are
// per-sample heap objects, exactly the pattern the converter must handle)
// and exposes train_step as the handle entry point; batch selection lives
// in module state advanced by a global counter.
const program = `
class TreeNode:
    def __init__(self, leaf, word, label, left, right):
        self.leaf = leaf
        self.word = word
        self.label = label
        self.left = left
        self.right = right

def leaf(word):
    return TreeNode(True, word, 0, 0, 0)

def node(left, right):
    return TreeNode(False, 0, 0, left, right)

def labeled(t, label):
    t.label = label
    return t

def tree_embed(node):
    emb = variable("treernn/emb", [16, 8])
    wl = variable("treernn/wl", [8, 8])
    wr = variable("treernn/wr", [8, 8])
    if node.leaf:
        return embedding(emb, [node.word])
    l = tree_embed(node.left)
    r = tree_embed(node.right)
    return tanh(matmul(l, wl) + matmul(r, wr))

def tree_loss(trees):
    proj = variable("treernn/proj", [8, 2])
    total = constant(0.0)
    for t in trees:
        h = tree_embed(t)
        logits = matmul(h, proj)
        total = total + cross_entropy(logits, one_hot([t.label], 2))
    return total / float(len(trees))

trees = [
    labeled(node(leaf(1), leaf(2)), 0),
    labeled(node(node(leaf(3), leaf(4)), leaf(5)), 1),
    labeled(node(leaf(6), node(leaf(7), leaf(8))), 0),
    labeled(node(node(leaf(9), leaf(10)), node(leaf(11), leaf(12))), 1),
    labeled(node(leaf(13), leaf(14)), 0),
    labeled(node(node(leaf(2), leaf(15)), leaf(1)), 1),
    labeled(node(leaf(4), node(leaf(6), leaf(9))), 0),
    labeled(node(node(leaf(5), leaf(3)), node(leaf(8), leaf(7))), 1),
]

step_i = 0

def train_step():
    global step_i
    batch = []
    for j in range(4):
        batch = batch + [trees[(step_i * 4 + j) % len(trees)]]
    step_i = step_i + 1
    return optimize(lambda: tree_loss(batch))
`

func main() {
	rt := janus.New(janus.Options{Seed: 11, LearningRate: 0.1})
	prog, err := rt.Compile(program)
	if err != nil {
		log.Fatal(err)
	}
	step, err := prog.Func("train_step")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training TreeRNN on synthetic sentiment trees (JANUS engine)")
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		out, err := step.Call(ctx, nil)
		if err != nil {
			log.Fatal(err)
		}
		loss, err := out.Scalar()
		if err != nil {
			log.Fatal(err)
		}
		if i%10 == 0 {
			fmt.Printf("  step %3d  loss %.4f\n", i, loss)
		}
	}
	st := rt.Stats()
	fmt.Printf("engine: %d graph steps, %d conversions, %d assumption failures\n",
		st.GraphSteps, st.Conversions, st.AssertFailures)

	// The tracing baseline refuses recursion — show its error through the
	// very same handle surface.
	tr := janus.New(janus.Options{Engine: janus.EngineTrace, Seed: 11, LearningRate: 0.1})
	trProg, err := tr.Compile(program)
	if err != nil {
		log.Fatal(err)
	}
	trStep, err := trProg.Func("train_step")
	if err != nil {
		log.Fatal(err)
	}
	var traceErr error
	for i := 0; i < 3 && traceErr == nil; i++ {
		_, traceErr = trStep.Call(ctx, nil)
	}
	fmt.Printf("tracing baseline on the same model: %v\n", traceErr)
}
