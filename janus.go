// Package janus is the public API of this Go reproduction of
// "JANUS: Fast and Flexible Deep Learning via Symbolic Graph Execution of
// Imperative Programs" (Jeong et al., NSDI 2019).
//
// A Runtime executes imperative DL programs written in minipy (a small
// Python-like language — see internal/minipy) under one of three engines:
//
//   - EngineImperative: direct interpretation with tape autodiff (the
//     TensorFlow Eager baseline);
//   - EngineJanus: the paper's system — profile a few iterations, generate a
//     speculative symbolic dataflow graph under profile-derived assumptions,
//     validate those assumptions with embedded assertions at run time, and
//     fall back to the interpreter (with all-or-nothing state updates)
//     whenever one fails;
//   - EngineTrace: unsafe single-trace conversion (the tf.defun baseline),
//     kept for the correctness comparisons of the paper's Figure 6.
//
// Programs look like ordinary Python training scripts; the only framework
// entry point is optimize(fn), which performs one SGD step on the scalar
// loss returned by fn:
//
//	rt := janus.New(janus.Options{Engine: janus.EngineJanus})
//	err := rt.Run(`
//	def loss_fn(x, y):
//	    w = variable("w", [1, 1])
//	    return mse(matmul(x, w), y)
//
//	x = constant([[1.0], [2.0]])
//	y = constant([[2.0], [4.0]])
//	for i in range(100):
//	    optimize(lambda: loss_fn(x, y))
//	`)
package janus

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/minipy"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/vars"
)

// Engine selects the execution strategy.
type Engine int

// Engines.
const (
	// EngineJanus is the paper's speculative graph runtime (default).
	EngineJanus Engine = iota
	// EngineImperative interprets the program directly (TF Eager baseline).
	EngineImperative
	// EngineTrace converts one execution trace without guards (defun
	// baseline; unsafe by design).
	EngineTrace
)

// Options configures a Runtime. The zero value gives the full JANUS engine
// with the paper's defaults (3 profiling iterations, unrolling,
// specialization, parallel execution).
type Options struct {
	Engine Engine
	// LearningRate for optimize()'s SGD step (default 0.1).
	LearningRate float64
	// ProfileIterations before speculative conversion (default 3, per the
	// paper's footnote 3).
	ProfileIterations int
	// DisableUnrolling turns off control-flow unrolling (+UNRL ablation).
	DisableUnrolling bool
	// DisableSpecialization turns off shape/value specialization and the
	// graph optimizer passes (+SPCN ablation).
	DisableSpecialization bool
	// Workers bounds executor parallelism; 0 means 4 (+PARL ablation uses 1).
	Workers int
	// DisableAssertions skips runtime assumption validation (assertion-cost
	// experiment only — never use for correctness-sensitive runs).
	DisableAssertions bool
	// Seed makes randn() and initializers deterministic.
	Seed uint64
}

// Runtime runs minipy programs and owns the shared parameter store.
type Runtime struct {
	engine *core.Engine
}

// coreConfig maps the public Options onto the engine configuration.
func (o Options) coreConfig() core.Config {
	cfg := core.Config{
		LR:             o.LearningRate,
		ProfileIters:   o.ProfileIterations,
		Unroll:         !o.DisableUnrolling,
		Specialize:     !o.DisableSpecialization,
		Workers:        o.Workers,
		DisableAsserts: o.DisableAssertions,
		Seed:           o.Seed,
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	switch o.Engine {
	case EngineImperative:
		cfg.Mode = core.Imperative
	case EngineTrace:
		cfg.Mode = core.Trace
	default:
		cfg.Mode = core.Janus
	}
	return cfg
}

// New constructs a Runtime.
func New(opts Options) *Runtime {
	return &Runtime{engine: core.NewEngine(opts.coreConfig())}
}

// Run parses and executes a complete program (definitions + training loop)
// in the runtime's module scope. It may be called repeatedly; state
// persists across calls.
func (r *Runtime) Run(src string) error { return r.engine.Run(src) }

// Output returns everything the program print()ed so far.
func (r *Runtime) Output() string { return r.engine.Output() }

// Stats reports engine activity: conversions, cache hits, assumption
// failures and fallbacks.
type Stats struct {
	ImperativeSteps int
	GraphSteps      int
	Conversions     int
	ConversionFails int
	CacheHits       int
	CacheMisses     int
	AssertFailures  int
	Fallbacks       int
}

// Stats returns a snapshot of runtime counters. The snapshot is taken with
// the engine's race-safe counters, so it may be called while steps run on
// other goroutines (the serving pool does).
func (r *Runtime) Stats() Stats {
	s := r.engine.Stats()
	return Stats{
		ImperativeSteps: s.ImperativeSteps,
		GraphSteps:      s.GraphSteps,
		Conversions:     s.Conversions,
		ConversionFails: s.ConversionFails,
		CacheHits:       s.CacheHits,
		CacheMisses:     s.CacheMisses,
		AssertFailures:  s.AssertFailures,
		Fallbacks:       s.Fallbacks,
	}
}

// Parameters exposes the shared parameter store (read the trained weights).
func (r *Runtime) Parameters() *vars.Store { return r.engine.Store }

// Parameter returns a named trained parameter.
func (r *Runtime) Parameter(name string) (*tensor.Tensor, error) {
	t, ok := r.engine.Store.Get(name)
	if !ok {
		return nil, fmt.Errorf("janus: unknown parameter %q", name)
	}
	return t, nil
}

// DefineTensor injects a tensor as a module-level global, so Go-side data
// pipelines can feed programs.
func (r *Runtime) DefineTensor(name string, t *tensor.Tensor) {
	r.engine.Define(name, minipy.NewTensor(t))
}

// DefineScalar injects a float global.
func (r *Runtime) DefineScalar(name string, v float64) {
	r.engine.Define(name, minipy.FloatVal(v))
}

// CoreEngine exposes the underlying engine for the benchmark harness.
func (r *Runtime) CoreEngine() *core.Engine { return r.engine }

// --- serving ---------------------------------------------------------------------

// ServerOptions configures a serving pool (see internal/serve). The zero
// value serves with the full JANUS engine, 4 workers, and a batching window
// of 8 requests / 2 ms.
type ServerOptions struct {
	// Options configures every worker engine.
	Options
	// Workers is the number of engine workers, i.e. concurrently served
	// requests (default 4). Distinct from Options.Workers, which bounds
	// per-graph executor parallelism.
	Workers int
	// MaxBatch caps how many inference requests coalesce into one batched
	// execution (default 8).
	MaxBatch int
	// MaxLatency bounds how long a request waits for batch-mates before a
	// partial batch flushes (default 2ms).
	MaxLatency time.Duration
	// MaxQueue bounds how many requests may wait for a worker before new
	// arrivals are rejected (HTTP 429); default 16 x Workers.
	MaxQueue int
	// AcquireTimeout bounds how long a queued request waits for a worker
	// before failing (HTTP 503); default 10s.
	AcquireTimeout time.Duration
	// CacheCapacity bounds compiled graphs in the shared cache, evicting
	// the least-recently-hit entry when exceeded (0 = unlimited).
	CacheCapacity int
}

// Server is a concurrent model server: N runtime workers share one
// parameter store and one compiled-graph cache, so a graph speculatively
// converted for one client is a cache hit for every other, and concurrent
// inference requests batch into single graph executions.
type Server struct {
	srv *serve.Server
}

// NewServer builds a serving pool.
func NewServer(opts ServerOptions) *Server {
	return &Server{srv: serve.NewServer(serve.Config{
		Workers:        opts.Workers,
		MaxBatch:       opts.MaxBatch,
		MaxLatency:     opts.MaxLatency,
		MaxQueue:       opts.MaxQueue,
		AcquireTimeout: opts.AcquireTimeout,
		CacheCapacity:  opts.CacheCapacity,
		Engine:         opts.Options.coreConfig(),
	})}
}

// Load parses a minipy program once and defines it on every worker; returns
// the program's print output.
func (s *Server) Load(src string) (string, error) { return s.srv.Pool().Load(src) }

// NewSession opens a client session.
func (s *Server) NewSession() *Session { return &Session{sess: s.srv.Pool().NewSession()} }

// Handler returns the HTTP+JSON front end (the transport cmd/janusd
// listens on).
func (s *Server) Handler() http.Handler { return s.srv.Handler() }

// Stats aggregates engine counters across workers plus serving counters.
func (s *Server) Stats() ServerStats {
	st := s.srv.Pool().Stats()
	return ServerStats{
		Stats: Stats{
			ImperativeSteps: st.ImperativeSteps,
			GraphSteps:      st.GraphSteps,
			Conversions:     st.Conversions,
			ConversionFails: st.ConversionFails,
			CacheHits:       st.CacheHits,
			CacheMisses:     st.CacheMisses,
			AssertFailures:  st.AssertFailures,
			Fallbacks:       st.Fallbacks,
		},
		Workers:         st.Workers,
		Sessions:        st.Sessions,
		Requests:        st.Requests,
		Batches:         st.Batches,
		BatchedRequests: st.BatchedRequests,
		CachedGraphs:    st.CachedGraphs,
	}
}

// Parameters exposes the pool-wide shared parameter store.
func (s *Server) Parameters() *vars.Store { return s.srv.Pool().Store() }

// ServerStats extends engine Stats with serving-side counters.
type ServerStats struct {
	Stats
	Workers         int
	Sessions        int
	Requests        int64
	Batches         int64
	BatchedRequests int64
	CachedGraphs    int
}

// Session is a client handle onto a Server. Sessions are cheap: graphs,
// parameters and workers are server-wide; the session carries identity and
// per-client accounting.
type Session struct {
	sess *serve.Session
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.sess.ID }

// Infer runs fn on one input through the request batcher. x must keep a
// leading batch dimension (shape [1, ...] for a single example).
func (s *Session) Infer(fn string, x *tensor.Tensor) (*tensor.Tensor, error) {
	return s.sess.Infer(fn, x)
}

// Call invokes a loaded module-level function (an inference function or a
// train-step function that calls optimize() internally) with tensor
// arguments.
func (s *Session) Call(fn string, args ...*tensor.Tensor) (minipy.Value, error) {
	vals := make([]minipy.Value, len(args))
	for i, a := range args {
		vals[i] = minipy.NewTensor(a)
	}
	return s.sess.Call(fn, vals)
}

// Run executes an ad-hoc script on one worker and returns its print output.
func (s *Session) Run(src string) (string, error) { return s.sess.Exec(src) }
