// Package janus is the public API of this Go reproduction of
// "JANUS: Fast and Flexible Deep Learning via Symbolic Graph Execution of
// Imperative Programs" (Jeong et al., NSDI 2019).
//
// A Runtime executes imperative DL programs written in minipy (a small
// Python-like language — see internal/minipy) under one of three engines:
//
//   - EngineImperative: direct interpretation with tape autodiff (the
//     TensorFlow Eager baseline);
//   - EngineJanus: the paper's system — profile a few iterations, generate a
//     speculative symbolic dataflow graph under profile-derived assumptions,
//     validate those assumptions with embedded assertions at run time, and
//     fall back to the interpreter (with all-or-nothing state updates)
//     whenever one fails;
//   - EngineTrace: unsafe single-trace conversion (the tf.defun baseline),
//     kept for the correctness comparisons of the paper's Figure 6.
//
// Programs look like ordinary Python training scripts; the only framework
// entry point is optimize(fn), which performs one SGD step on the scalar
// loss returned by fn.
//
// # API v1: function handles
//
// The primary surface is the function-handle API: Compile a program once,
// resolve module-level functions into handles, and Call them with named
// tensor feeds under a context:
//
//	rt := janus.New(janus.Options{Engine: janus.EngineJanus})
//	prog, err := rt.Compile(`
//	def loss_fn(x, y):
//	    w = variable("w", [1, 1])
//	    return mse(matmul(x, w), y)
//
//	def train(x, y):
//	    loss = constant(0.0)
//	    for i in range(100):
//	        loss = optimize(lambda: loss_fn(x, y))
//	    return loss
//	`)
//	fn, err := prog.Func("train")
//	out, err := fn.Call(ctx, janus.Feeds{"x": x, "y": y})
//
// A Function is a Callable, and the same handle shape is implemented by all
// three execution backends: the local Runtime above, a Server pool (where
// concurrent same-signature calls batch into one graph execution — see
// Server.Compile and Session.Func), and a distributed training Cluster
// (where the batch is split across data-parallel replicas around a sharded
// parameter server — see NewCluster; with TrainOptions.Async each Call is a
// free-running, staleness-bounded epoch with server-side SGD/momentum/Adam
// state). Context cancellation stops a running call between training steps
// — and, on graph backends, between scheduled graph nodes mid-execution —
// with ErrCanceled, leaving parameters in an all-or-nothing state.
//
// Runtime.Run (whole-script execution) and Session.Infer (single-tensor
// inference) remain as thin shims over the same machinery.
package janus

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/minipy"
	"repro/internal/tensor"
	"repro/internal/vars"
)

// Engine selects the execution strategy.
type Engine int

// Engines.
const (
	// EngineJanus is the paper's speculative graph runtime (default).
	EngineJanus Engine = iota
	// EngineImperative interprets the program directly (TF Eager baseline).
	EngineImperative
	// EngineTrace converts one execution trace without guards (defun
	// baseline; unsafe by design).
	EngineTrace
)

// Options configures a Runtime. The zero value gives the full JANUS engine
// with the paper's defaults (3 profiling iterations, unrolling,
// specialization, parallel execution).
type Options struct {
	Engine Engine
	// LearningRate for optimize()'s SGD step (default 0.1).
	LearningRate float64
	// ProfileIterations before speculative conversion (default 3, per the
	// paper's footnote 3).
	ProfileIterations int
	// DisableUnrolling turns off control-flow unrolling (+UNRL ablation).
	DisableUnrolling bool
	// DisableSpecialization turns off shape/value specialization and the
	// graph optimizer passes (+SPCN ablation).
	DisableSpecialization bool
	// Workers bounds executor parallelism; 0 means 4 (+PARL ablation uses 1).
	Workers int
	// DisableAssertions skips runtime assumption validation (assertion-cost
	// experiment only — never use for correctness-sensitive runs).
	DisableAssertions bool
	// Seed makes randn() and initializers deterministic.
	Seed uint64
}

// Runtime runs minipy programs and owns the shared parameter store.
type Runtime struct {
	engine *core.Engine
}

// coreConfig maps the public Options onto the engine configuration.
func (o Options) coreConfig() core.Config {
	cfg := core.Config{
		LR:             o.LearningRate,
		ProfileIters:   o.ProfileIterations,
		Unroll:         !o.DisableUnrolling,
		Specialize:     !o.DisableSpecialization,
		Workers:        o.Workers,
		DisableAsserts: o.DisableAssertions,
		Seed:           o.Seed,
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	switch o.Engine {
	case EngineImperative:
		cfg.Mode = core.Imperative
	case EngineTrace:
		cfg.Mode = core.Trace
	default:
		cfg.Mode = core.Janus
	}
	return cfg
}

// New constructs a Runtime.
func New(opts Options) *Runtime {
	return &Runtime{engine: core.NewEngine(opts.coreConfig())}
}

// Run parses and executes a complete program (definitions + training loop)
// in the runtime's module scope. It may be called repeatedly; state
// persists across calls.
func (r *Runtime) Run(src string) error { return r.engine.Run(src) }

// Output returns everything the program print()ed so far.
func (r *Runtime) Output() string { return r.engine.Output() }

// Stats reports engine activity: conversions, cache hits, assumption
// failures and fallbacks.
type Stats struct {
	ImperativeSteps int
	GraphSteps      int
	Conversions     int
	ConversionFails int
	CacheHits       int
	CacheMisses     int
	AssertFailures  int
	Fallbacks       int
}

// Stats returns a snapshot of runtime counters. The snapshot is taken with
// the engine's race-safe counters, so it may be called while steps run on
// other goroutines (the serving pool does).
func (r *Runtime) Stats() Stats {
	s := r.engine.Stats()
	return Stats{
		ImperativeSteps: s.ImperativeSteps,
		GraphSteps:      s.GraphSteps,
		Conversions:     s.Conversions,
		ConversionFails: s.ConversionFails,
		CacheHits:       s.CacheHits,
		CacheMisses:     s.CacheMisses,
		AssertFailures:  s.AssertFailures,
		Fallbacks:       s.Fallbacks,
	}
}

// Parameters exposes the shared parameter store (read the trained weights).
func (r *Runtime) Parameters() *vars.Store { return r.engine.Store }

// Parameter returns a named trained parameter.
func (r *Runtime) Parameter(name string) (*tensor.Tensor, error) {
	t, ok := r.engine.Store.Get(name)
	if !ok {
		return nil, fmt.Errorf("janus: unknown parameter %q", name)
	}
	return t, nil
}

// DefineTensor injects a tensor as a module-level global, so Go-side data
// pipelines can feed programs.
func (r *Runtime) DefineTensor(name string, t *tensor.Tensor) {
	r.engine.Define(name, minipy.NewTensor(t))
}

// DefineScalar injects a float global.
func (r *Runtime) DefineScalar(name string, v float64) {
	r.engine.Define(name, minipy.FloatVal(v))
}

// CoreEngine exposes the underlying engine for the benchmark harness.
func (r *Runtime) CoreEngine() *core.Engine { return r.engine }
