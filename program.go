package janus

import (
	"context"
	"fmt"

	"repro/internal/minipy"
	"repro/internal/tensor"
)

// This file is the function-handle surface of API v1: a compiled Program
// resolves module-level functions into Function handles, and a Function is
// a Callable — one uniform, context-aware calling convention implemented
// identically by the local Runtime, a serving Session (where same-signature
// calls batch), and a distributed Cluster (where the batch is split across
// data-parallel replicas — one barriered round per Call, or a free-running
// epoch of staleness-bounded local steps under TrainOptions.Async). Users
// write imperative minipy functions once and move them between execution
// backends without changing call sites, which is the paper's premise
// applied to the public API.

// Feeds addresses input tensors by parameter name. Names must match the
// called function's declared parameters; unknown names, missing required
// parameters, and (on batched backends) feeds without a leading batch
// dimension fail up front with a clear error instead of a recovered kernel
// panic.
type Feeds map[string]*tensor.Tensor

// Outputs is the tensor result list of a Call: one entry per returned
// tensor (a function returning a tuple or list of tensors yields several; a
// numeric scalar return becomes a scalar tensor).
type Outputs []*tensor.Tensor

// Tensor returns the sole output, or nil when the call produced none.
func (o Outputs) Tensor() *tensor.Tensor {
	if len(o) == 0 {
		return nil
	}
	return o[0]
}

// Scalar returns the single scalar value of a one-output, one-element
// result (a loss, typically).
func (o Outputs) Scalar() (float64, error) {
	if len(o) != 1 {
		return 0, fmt.Errorf("janus: result has %d outputs, want one scalar", len(o))
	}
	if o[0].Size() != 1 {
		return 0, fmt.Errorf("janus: output has shape %v, want one element", o[0].Shape())
	}
	return o[0].Item(), nil
}

// Callable is the uniform function-handle interface: anything that can run
// a named minipy function against named tensor feeds under a context.
// *Function implements it for every backend; code written against Callable
// moves between local execution, a serving pool, and a training cluster
// unchanged.
type Callable interface {
	// Name returns the module-level function name the handle is bound to.
	Name() string
	// Call executes the function with the given feeds. Cancellation or
	// deadline expiry on ctx stops execution between training steps and
	// interpreted statements with ErrCanceled, leaving parameters in an
	// all-or-nothing state (each step either fully applied or not at all).
	Call(ctx context.Context, feeds Feeds) (Outputs, error)
}

// backend is what a Program/Function needs from its execution engine: name
// resolution (for early validation and error messages) and the actual call.
type backend interface {
	funcParams(ctx context.Context, name string) ([]string, error)
	call(ctx context.Context, name string, feeds Feeds) (Outputs, error)
}

// Program is a handle onto a compiled (parsed + defined) minipy program on
// one execution backend. Obtain one from Runtime.Compile, Server.Compile,
// or Cluster.Program; resolve functions with Func.
type Program struct {
	b backend
}

// Func resolves a module-level function into a callable handle, failing
// with ErrUnknownFunction when the program defines no such function.
// Resolution is cheap on every backend (a Server reads its Load-time
// signature snapshot; no pool worker is involved), but handles are meant
// to be resolved once and reused across calls.
func (p *Program) Func(name string) (*Function, error) {
	params, err := p.b.funcParams(context.Background(), name)
	if err != nil {
		return nil, err
	}
	return &Function{b: p.b, name: name, params: params}, nil
}

// MustFunc is Func for statically known names; it panics on resolution
// failure (examples and tests).
func (p *Program) MustFunc(name string) *Function {
	fn, err := p.Func(name)
	if err != nil {
		panic(err)
	}
	return fn
}

// Function is a handle onto one module-level function of a compiled
// Program. It is the Callable implementation for every backend.
type Function struct {
	b      backend
	name   string
	params []string
}

var _ Callable = (*Function)(nil)

// Name implements Callable.
func (f *Function) Name() string { return f.name }

// Params returns the function's declared parameter names, in order — the
// valid feed names for Call.
func (f *Function) Params() []string {
	out := make([]string, len(f.params))
	copy(out, f.params)
	return out
}

// Call implements Callable. Feed-name validation is the backend's job
// (FuncVal.BindNamed resolves against the function's current signature, so
// handles stay correct across recompiles that change parameter lists);
// only nil tensors are rejected here, before any backend work.
func (f *Function) Call(ctx context.Context, feeds Feeds) (Outputs, error) {
	for name, t := range feeds {
		if t == nil {
			return nil, fmt.Errorf("janus: %s: feed %q is nil", f.name, name)
		}
	}
	return f.b.call(ctx, f.name, feeds)
}

// --- local backend -----------------------------------------------------------------

// Compile parses src and defines it (classes, functions, module-level
// statements) in the runtime's module scope, returning a Program handle.
// Programs compiled on one Runtime share its module scope and parameter
// store; Compile may be called repeatedly to extend a program. The Runtime
// executes one call at a time — concurrency comes from a Server pool.
func (r *Runtime) Compile(src string) (*Program, error) {
	if err := r.engine.Run(src); err != nil {
		return nil, err
	}
	return &Program{b: localBackend{r}}, nil
}

// localBackend executes handles directly on the runtime's engine.
type localBackend struct{ rt *Runtime }

func (b localBackend) funcParams(_ context.Context, name string) ([]string, error) {
	fn, err := b.rt.engine.LookupFunc(name)
	if err != nil {
		return nil, err
	}
	return fn.ParamList(), nil
}

func (b localBackend) call(ctx context.Context, name string, feeds Feeds) (Outputs, error) {
	out, err := b.rt.engine.CallNamed(ctx, name, feedValues(feeds))
	if err != nil {
		return nil, err
	}
	return toOutputs(name, out)
}

// feedValues lifts tensor feeds into the interpreter's value domain.
func feedValues(feeds Feeds) map[string]minipy.Value {
	m := make(map[string]minipy.Value, len(feeds))
	for name, t := range feeds {
		m[name] = minipy.NewTensor(t)
	}
	return m
}

// toOutputs flattens a call result into Outputs.
func toOutputs(fn string, v minipy.Value) (Outputs, error) {
	ts, err := minipy.Tensors(v)
	if err != nil {
		return nil, fmt.Errorf("janus: %s: %v", fn, err)
	}
	return Outputs(ts), nil
}
