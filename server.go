package janus

import (
	"context"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/minipy"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/vars"
)

// ServerOptions configures a serving pool (see internal/serve). The zero
// value serves with the full JANUS engine, 4 pool workers, and a batching
// window of 8 requests / 2 ms.
type ServerOptions struct {
	// Options configures every worker engine. Note that per-graph executor
	// parallelism must be addressed explicitly as Options.Workers (e.g.
	// ServerOptions{Options: Options{Workers: 2}}): the promoted selector
	// o.Workers still resolves to the deprecated pool-size alias below.
	Options
	// PoolSize is the number of engine workers, i.e. concurrently served
	// requests (default 4). Distinct from Options.Workers, which bounds
	// per-graph executor parallelism inside one request.
	PoolSize int
	// Workers is a deprecated alias for PoolSize, kept so existing callers
	// compile (it has always meant pool size, while shadowing the embedded
	// Options.Workers and silently defaulting engine parallelism).
	//
	// Deprecated: set PoolSize (pool concurrency) and Options.Workers
	// (executor parallelism) explicitly.
	Workers int
	// MaxBatch caps how many inference requests coalesce into one batched
	// execution (default 8).
	MaxBatch int
	// MaxLatency bounds how long a request waits for batch-mates before a
	// partial batch flushes (default 2ms).
	MaxLatency time.Duration
	// MaxQueue bounds how many requests may wait for a worker before new
	// arrivals are rejected (HTTP 429); default 16 x PoolSize.
	MaxQueue int
	// AcquireTimeout bounds how long a queued request waits for a worker
	// before failing (HTTP 503); default 10s.
	AcquireTimeout time.Duration
	// CacheCapacity bounds compiled graphs in the shared cache, evicting
	// the least-recently-hit entry when exceeded (0 = unlimited).
	CacheCapacity int
	// BucketBatch turns on shape bucketing: batched executions are padded
	// up to power-of-two row counts (by repeating the last real row; only
	// real rows are returned), so variable batch sizes share a handful of
	// compiled graphs instead of converting one per distinct size. Served
	// functions must be batch-dim parallel with batch-preserving outputs.
	BucketBatch bool
	// MaxBucket caps the padded row count when BucketBatch is on (rounded
	// up to a power of two; default 64). Larger executions run unpadded.
	MaxBucket int
}

// poolSize resolves the PoolSize/deprecated-Workers pair.
func (o ServerOptions) poolSize() int {
	if o.PoolSize > 0 {
		return o.PoolSize
	}
	return o.Workers
}

// Server is a concurrent model server: N runtime workers share one
// parameter store and one compiled-graph cache, so a graph speculatively
// converted for one client is a cache hit for every other, and concurrent
// calls with the same named-feed signature batch into single graph
// executions.
type Server struct {
	srv *serve.Server
}

// NewServer builds a serving pool.
func NewServer(opts ServerOptions) *Server {
	return &Server{srv: serve.NewServer(serve.Config{
		Workers:        opts.poolSize(),
		MaxBatch:       opts.MaxBatch,
		MaxLatency:     opts.MaxLatency,
		MaxQueue:       opts.MaxQueue,
		AcquireTimeout: opts.AcquireTimeout,
		CacheCapacity:  opts.CacheCapacity,
		BucketBatch:    opts.BucketBatch,
		MaxBucket:      opts.MaxBucket,
		Engine:         opts.Options.coreConfig(),
	})}
}

// SnapshotPath returns the conventional snapshot artifact file path inside
// dir (what janusd -snapshot-dir reads and writes).
func SnapshotPath(dir string) string { return core.ArtifactPath(dir) }

// SaveSnapshot persists the server's warm state — compiled graphs, memory
// plans, pass reports, the signature-hash index, profiling progress and
// model parameters — into a versioned artifact file (atomic write). A
// replica that loads it at boot serves its first request from a warm cache.
// Returns the number of compiled entries saved.
func (s *Server) SaveSnapshot(path string) (int, error) {
	return s.srv.Pool().SaveSnapshot(path)
}

// LoadSnapshot restores a snapshot saved by a server that had compiled the
// same program sources, in the same order (validated by an embedded program
// hash). Call after Compile/Load. Version skew, source mismatch or file
// corruption rejects the artifact as a unit — the server simply serves cold
// — with the reason counted in janus_artifact_rejected_total. Returns the
// number of compiled entries restored.
func (s *Server) LoadSnapshot(path string) (int, error) {
	return s.srv.Pool().LoadSnapshot(path)
}

// Compile parses src once and defines it on every worker, returning a
// Program whose Function handles execute on the pool: calls with the same
// function and feed signature coalesce into batched executions, and the
// compiled-graph cache is shared pool-wide. Compile may be called
// repeatedly to extend the served program.
func (s *Server) Compile(src string) (*Program, error) {
	if _, err := s.srv.Pool().Load(src); err != nil {
		return nil, err
	}
	return &Program{b: serverBackend{pool: s.srv.Pool()}}, nil
}

// Func resolves an already-loaded module-level function into a pool-backed
// handle (shorthand for compiling definitions first, then resolving).
func (s *Server) Func(name string) (*Function, error) {
	return (&Program{b: serverBackend{pool: s.srv.Pool()}}).Func(name)
}

// Load parses a minipy program once and defines it on every worker; returns
// the program's print output. Prefer Compile, which returns a Program
// handle.
func (s *Server) Load(src string) (string, error) { return s.srv.Pool().Load(src) }

// NewSession opens a client session.
func (s *Server) NewSession() *Session { return &Session{sess: s.srv.Pool().NewSession()} }

// Handler returns the HTTP+JSON front end (the transport cmd/janusd
// listens on).
func (s *Server) Handler() http.Handler { return s.srv.Handler() }

// MetricsHandler returns just the Prometheus text exposition of the pool's
// registry (also mounted at GET /metrics on Handler), for embedders that
// serve metrics on a separate mux or port.
func (s *Server) MetricsHandler() http.Handler { return s.srv.Pool().Registry().Handler() }

// WriteMetrics renders the pool registry's current state in the Prometheus
// text format (cmd/janusd uses it for the final flush on shutdown).
func (s *Server) WriteMetrics(w io.Writer) error { return s.srv.Pool().Registry().WriteText(w) }

// Stats aggregates engine counters across workers plus serving counters.
func (s *Server) Stats() ServerStats {
	st := s.srv.Pool().Stats()
	return ServerStats{
		Stats: Stats{
			ImperativeSteps: st.ImperativeSteps,
			GraphSteps:      st.GraphSteps,
			Conversions:     st.Conversions,
			ConversionFails: st.ConversionFails,
			CacheHits:       st.CacheHits,
			CacheMisses:     st.CacheMisses,
			AssertFailures:  st.AssertFailures,
			Fallbacks:       st.Fallbacks,
		},
		PoolSize:        st.Workers,
		Workers:         st.Workers,
		Sessions:        st.Sessions,
		Requests:        st.Requests,
		Batches:         st.Batches,
		BatchedRequests: st.BatchedRequests,
		CachedGraphs:    st.CachedGraphs,
	}
}

// Parameters exposes the pool-wide shared parameter store.
func (s *Server) Parameters() *vars.Store { return s.srv.Pool().Store() }

// ServerStats extends engine Stats with serving-side counters.
type ServerStats struct {
	Stats
	// PoolSize is the number of engine workers in the pool.
	PoolSize int
	// Workers mirrors PoolSize under the stats field's pre-v1 name, so
	// existing consumers keep compiling.
	//
	// Deprecated: read PoolSize.
	Workers         int
	Sessions        int
	Requests        int64
	Batches         int64
	BatchedRequests int64
	CachedGraphs    int
}

// serverBackend executes handles on the serving pool's request batcher.
type serverBackend struct {
	pool *serve.Pool
	sess *serve.Session // non-nil for session-scoped handles (accounting)
}

func (b serverBackend) funcParams(ctx context.Context, name string) ([]string, error) {
	return b.pool.FuncParams(ctx, name)
}

func (b serverBackend) call(ctx context.Context, name string, feeds Feeds) (Outputs, error) {
	var outs []*tensor.Tensor
	var err error
	if b.sess != nil {
		outs, err = b.sess.CallNamed(ctx, name, feeds)
	} else {
		outs, err = b.pool.CallNamed(ctx, name, feeds)
	}
	if err != nil {
		return nil, err
	}
	return Outputs(outs), nil
}

// Session is a client handle onto a Server. Sessions are cheap: graphs,
// parameters and workers are server-wide; the session carries identity and
// per-client accounting.
type Session struct {
	sess *serve.Session
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.sess.ID }

// Func resolves a loaded module-level function into a session-scoped
// handle. Calls go through the request batcher — concurrent calls with the
// same function and feed signature (across all sessions) execute as one
// batched graph run — so handle functions must be batch-dim parallel, as
// inference functions are. Stateful functions (train steps calling
// optimize()) batch too: concurrent same-shape train calls merge into one
// step over the concatenated batch, and every merged caller receives the
// same scalar loss (outputs without a batch dimension are shared, not
// sliced); use Call for strict one-step-per-call semantics.
func (s *Session) Func(name string) (*Function, error) {
	return (&Program{b: serverBackend{pool: s.sess.Pool(), sess: s.sess}}).Func(name)
}

// Infer runs fn on one input through the request batcher. x must keep a
// leading batch dimension (shape [1, ...] for a single example). Prefer
// Func, which supports multi-input/multi-output signatures.
func (s *Session) Infer(fn string, x *tensor.Tensor) (*tensor.Tensor, error) {
	return s.sess.Infer(fn, x)
}

// Call invokes a loaded module-level function (an inference function or a
// train-step function that calls optimize() internally) with positional
// tensor arguments, one call per execution (no batching). Prefer Func for
// the named-feed handle surface.
func (s *Session) Call(fn string, args ...*tensor.Tensor) (minipy.Value, error) {
	vals := make([]minipy.Value, len(args))
	for i, a := range args {
		vals[i] = minipy.NewTensor(a)
	}
	return s.sess.Call(fn, vals)
}

// Run executes an ad-hoc script on one worker and returns its print output.
func (s *Session) Run(src string) (string, error) { return s.sess.Exec(src) }
