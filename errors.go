package janus

import (
	"net/http"

	"repro/internal/core"
	"repro/internal/ps"
	"repro/internal/serve"
)

// Sentinel errors shared by every execution backend. They are the same
// identities the internal layers return, so errors.Is works on values from
// a local Call, a serving pool, or a parameter-server cluster — and they
// round-trip through the HTTP transports (see ErrorFromStatus).
var (
	// ErrOverloaded reports a serving request rejected because the bounded
	// wait queue was full (HTTP 429): back off and retry.
	ErrOverloaded = serve.ErrOverloaded
	// ErrStale reports a distributed gradient push rejected by the parameter
	// server's staleness bound (HTTP 409): the worker should re-pull before
	// its next step.
	ErrStale = ps.ErrStale
	// ErrAcquireTimeout reports a serving request that waited longer than
	// the configured AcquireTimeout for a worker (HTTP 503): the pool is
	// saturated — back off harder than for ErrOverloaded.
	ErrAcquireTimeout = serve.ErrAcquireTimeout
	// ErrUnknownFunction reports a call to a function the program does not
	// define (HTTP 404).
	ErrUnknownFunction = core.ErrUnknownFunction
	// ErrCanceled reports an execution stopped by context cancellation or
	// deadline expiry (HTTP 499), checked between training steps and
	// interpreted statements so parameters stay in an all-or-nothing state.
	// Errors carrying it also wrap the originating context error.
	ErrCanceled = core.ErrCanceled
	// ErrUnavailable reports a TRANSIENT parameter-server failure: a dead
	// shard awaiting failover, an unreachable server, or an injected fault
	// (janusps HTTP 503). It is the retry class — the cluster's retrying
	// transport retries exactly these, and surfaces the sentinel unchanged
	// when the retry budget runs out.
	ErrUnavailable = ps.ErrUnavailable
	// ErrLeaseExpired reports a worker heartbeat for a lease the parameter
	// server no longer honors (HTTP 410): the worker went silent past the
	// lease TTL (its data coverage was redistributed) or was superseded by a
	// newer registration. Re-register to rejoin.
	ErrLeaseExpired = ps.ErrLeaseExpired
)

// ErrorFromStatus reconstructs the sentinel error an HTTP status from a
// janusd or janusps server encodes, wrapping the server-reported message:
// 429 is ErrOverloaded, 503 ErrAcquireTimeout, 404 ErrUnknownFunction, 499
// ErrCanceled, 409 ErrStale, 410 ErrLeaseExpired. Other statuses produce a
// plain error carrying the code and message. The mapping inverts the
// servers' status selection, so errors.Is(err, janus.ErrX) holds on both
// sides of the wire.
//
// One status is context-dependent: 503 from a serving pool (janusd) means
// ErrAcquireTimeout, while 503 from a parameter server (janusps) means
// ErrUnavailable. This function keeps the serving interpretation; the ps
// client performs its own inverse mapping, so errors that traveled the
// parameter-server wire already carry ErrUnavailable when they reach you.
func ErrorFromStatus(status int, msg string) error {
	switch status {
	case http.StatusConflict:
		return ps.StaleErr(msg)
	case http.StatusGone:
		return ps.LeaseExpiredErr(msg)
	}
	return serve.ErrorForStatus(status, msg)
}
