package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"

	janus "repro"
	"repro/internal/obs"
)

// traceBench exercises the request-phase tracing path end to end: it boots
// an in-process janusd, performs real fn.Call requests over HTTP (the
// direct args path, so the engine's convert/compile/execute spans land in
// the request trace), then dumps GET /v1/trace as a per-phase breakdown.
func traceBench(calls int) {
	if calls < 1 {
		calls = 1
	}
	srv := janus.NewServer(janus.ServerOptions{
		PoolSize: 2,
		Options:  janus.Options{Seed: 42, ProfileIterations: 1},
	})
	if _, err := srv.Compile(serveModel); err != nil {
		fmt.Fprintf(os.Stderr, "trace bench: compile: %v\n", err)
		os.Exit(1)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	row := make([]float64, 16)
	for i := range row {
		row[i] = float64(i) * 0.1
	}
	body, _ := json.Marshal(map[string]any{
		"fn": "predict", "args": []any{[][]float64{row}},
	})
	// First call profiles + converts; later calls replay the cached graph —
	// the trace log holds both shapes of the phase breakdown.
	for i := 0; i < calls; i++ {
		resp, err := http.Post(ts.URL+"/v1/call", "application/json", bytes.NewReader(body))
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace bench: call: %v\n", err)
			os.Exit(1)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "trace bench: call -> %d\n", resp.StatusCode)
			os.Exit(1)
		}
	}

	resp, err := http.Get(fmt.Sprintf("%s/v1/trace?n=%d", ts.URL, calls))
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace bench: /v1/trace: %v\n", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	var out struct {
		Traces []obs.TraceSnapshot `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		fmt.Fprintf(os.Stderr, "trace bench: decode: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%d traced fn.Call requests (newest first, spans as a tree):\n", len(out.Traces))
	for _, tr := range out.Traces {
		fmt.Printf("\n%s  total %.1fus", tr.ID, tr.TotalUS)
		if len(tr.Annotations) > 0 {
			keys := make([]string, 0, len(tr.Annotations))
			for k := range tr.Annotations {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("  %s=%s", k, tr.Annotations[k])
			}
		}
		fmt.Println()
		printSpanTree(tr.Spans, tr.TotalUS)
	}
}

// printSpanTree renders a trace's spans as an indented tree: children
// under their parents, siblings in start order. Orphans (a parent span
// that never closed, or a grafted subtree whose anchor is missing) are
// promoted to roots rather than dropped.
func printSpanTree(spans []obs.SpanSnapshot, totalUS float64) {
	present := make(map[obs.SpanID]bool, len(spans))
	for _, sp := range spans {
		present[sp.ID] = true
	}
	children := make(map[obs.SpanID][]obs.SpanSnapshot)
	for _, sp := range spans {
		parent := sp.Parent
		if parent != 0 && !present[parent] {
			parent = 0
		}
		children[parent] = append(children[parent], sp)
	}
	var walk func(parent obs.SpanID, depth int)
	walk = func(parent obs.SpanID, depth int) {
		kids := children[parent]
		sort.Slice(kids, func(i, j int) bool { return kids[i].StartUS < kids[j].StartUS })
		for _, sp := range kids {
			name := strings.Repeat("  ", depth) + sp.Name
			pct := 0.0
			if totalUS > 0 {
				pct = 100 * sp.DurUS / totalUS
			}
			fmt.Printf("  %-24s +%9.1fus  %9.1fus  (%4.1f%%)\n",
				name, sp.StartUS, sp.DurUS, pct)
			walk(sp.ID, depth+1)
		}
	}
	walk(0, 0)
}
