package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"

	janus "repro"
	"repro/internal/obs"
)

// traceBench exercises the request-phase tracing path end to end: it boots
// an in-process janusd, performs real fn.Call requests over HTTP (the
// direct args path, so the engine's convert/compile/execute spans land in
// the request trace), then dumps GET /v1/trace as a per-phase breakdown.
func traceBench(calls int) {
	if calls < 1 {
		calls = 1
	}
	srv := janus.NewServer(janus.ServerOptions{
		PoolSize: 2,
		Options:  janus.Options{Seed: 42, ProfileIterations: 1},
	})
	if _, err := srv.Compile(serveModel); err != nil {
		fmt.Fprintf(os.Stderr, "trace bench: compile: %v\n", err)
		os.Exit(1)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	row := make([]float64, 16)
	for i := range row {
		row[i] = float64(i) * 0.1
	}
	body, _ := json.Marshal(map[string]any{
		"fn": "predict", "args": []any{[][]float64{row}},
	})
	// First call profiles + converts; later calls replay the cached graph —
	// the trace log holds both shapes of the phase breakdown.
	for i := 0; i < calls; i++ {
		resp, err := http.Post(ts.URL+"/v1/call", "application/json", bytes.NewReader(body))
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace bench: call: %v\n", err)
			os.Exit(1)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "trace bench: call -> %d\n", resp.StatusCode)
			os.Exit(1)
		}
	}

	resp, err := http.Get(fmt.Sprintf("%s/v1/trace?n=%d", ts.URL, calls))
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace bench: /v1/trace: %v\n", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	var out struct {
		Traces []obs.TraceSnapshot `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		fmt.Fprintf(os.Stderr, "trace bench: decode: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%d traced fn.Call requests (newest first, spans in request order):\n", len(out.Traces))
	for _, tr := range out.Traces {
		fmt.Printf("\n%s  total %.1fus", tr.ID, tr.TotalUS)
		if len(tr.Annotations) > 0 {
			keys := make([]string, 0, len(tr.Annotations))
			for k := range tr.Annotations {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("  %s=%s", k, tr.Annotations[k])
			}
		}
		fmt.Println()
		for _, sp := range tr.Spans {
			fmt.Printf("  %-14s +%9.1fus  %9.1fus  (%4.1f%%)\n",
				sp.Name, sp.StartUS, sp.DurUS, 100*sp.DurUS/tr.TotalUS)
		}
	}
}
