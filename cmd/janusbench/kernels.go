package main

import (
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/graph/passes"
	"repro/internal/minipy"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// kernelsReport is the machine-readable result of `janusbench -kernels`,
// gated in CI by internal/tools/benchcheck (allocs/op ceiling and final
// loss; throughput is recorded, never gated).
type kernelsReport struct {
	Mode   string         `json:"mode"` // "kernels"
	CPUs   int            `json:"cpus"`
	MatMul []matmulResult `json:"matmul"`
	// LeNetForward is forward-only inference replay (calls/s).
	LeNetForward planAB `json:"lenet_forward"`
	// TrainStep is full LeNet train-step replay (items/s) at zero simulated
	// device time — the host-bound regime.
	TrainStep trainAB `json:"train_step"`
	// Elementwise is the steady-state allocation profile of a 64-op
	// elementwise chain replay.
	Elementwise elementwiseResult `json:"elementwise_chain"`
	// Passes is the graph pass-pipeline A/B: LeNet train-step replay with
	// the pipeline all-off, each pass alone, and all-on.
	Passes passesResult `json:"passes"`
}

type matmulResult struct {
	Size            int     `json:"size"`
	NaiveNs         float64 `json:"naive_ns"`
	BlockedNs       float64 `json:"blocked_ns"`
	ParallelNs      float64 `json:"parallel_ns"`
	BlockedSpeedup  float64 `json:"blocked_speedup"`
	ParallelSpeedup float64 `json:"parallel_speedup"`
}

type planAB struct {
	// NaivePerSec is the pre-optimization baseline: scalar-loop kernels AND
	// no memory plan (the state this PR replaced, reproduced via
	// tensor.SetNaiveKernels for A/B on the current tree).
	NaivePerSec   float64 `json:"naive_per_sec"`
	PlanOffPerSec float64 `json:"plan_off_per_sec"`
	PlanOnPerSec  float64 `json:"plan_on_per_sec"`
	// Speedup is plan-on vs plan-off (isolates the memory plan);
	// SpeedupVsNaive is the full fast path vs the pre-optimization baseline.
	Speedup        float64 `json:"speedup"`
	SpeedupVsNaive float64 `json:"speedup_vs_naive"`
	// Per-call (forward) / per-step (train) latency percentiles of the
	// plan-on fast path, in milliseconds.
	PlanOnP50Ms float64 `json:"plan_on_p50_ms"`
	PlanOnP95Ms float64 `json:"plan_on_p95_ms"`
	PlanOnP99Ms float64 `json:"plan_on_p99_ms"`
}

type trainAB struct {
	planAB
	FinalLossOn  float64 `json:"final_loss_on"`
	FinalLossOff float64 `json:"final_loss_off"`
}

// passVariant is one pipeline configuration's measurement: the LeNet
// train-step replay throughput/loss plus the cached train graph's node
// count and total rewrites under that configuration.
type passVariant struct {
	// Config is "off" (pipeline disabled), a single pass name (that pass
	// alone), or "all" (full pipeline).
	Config      string  `json:"config"`
	Nodes       int     `json:"nodes"`
	Rewrites    int     `json:"rewrites"`
	ItemsPerSec float64 `json:"items_per_sec"`
	FinalLoss   float64 `json:"final_loss"`
}

type passesResult struct {
	Variants []passVariant `json:"variants"`
	// NodeDelta is nodes(all)/nodes(off) - 1 on the LeNet train graph.
	// Recorded, not gated: the pipeline may legitimately grow the node
	// count (im2col extraction adds shared Im2Col nodes) while shrinking
	// the work per replay.
	NodeDelta float64 `json:"node_delta"`
	// LossBitIdentical requires the all-on final loss to equal the all-off
	// final loss exactly — the pipeline must be semantics-preserving to the
	// last bit, not merely approximately correct. Gated by benchcheck.
	LossBitIdentical bool `json:"loss_bit_identical"`
	// SpeedupVsOff is all-on vs all-off items/s on the LeNet train step.
	SpeedupVsOff float64 `json:"speedup_vs_off"`
	// Fusion A/B on the dispatch-bound elementwise-chain replay (the §5
	// microbench fusion targets; LeNet's train graph has no single-consumer
	// elementwise chains — backprop keeps every intermediate alive — so the
	// fusion win is gated where fusion applies). NodeReduction is
	// 1 - nodes(fused)/nodes(unfused), gated >= 15% by benchcheck together
	// with bit-identical replay outputs.
	FusionNodesOff      int     `json:"fusion_nodes_off"`
	FusionNodesOn       int     `json:"fusion_nodes_on"`
	FusionNodeReduction float64 `json:"fusion_node_reduction"`
	FusionBitIdentical  bool    `json:"fusion_bit_identical"`
	// Pooled replay time of the same chain unfused vs fused.
	FusionNsOff float64 `json:"fusion_ns_per_replay_off"`
	FusionNsOn  float64 `json:"fusion_ns_per_replay_on"`
}

type elementwiseResult struct {
	Ops                 int     `json:"ops"`
	AllocsPerGraphopOff float64 `json:"allocs_per_graphop_off"`
	AllocsPerGraphopOn  float64 `json:"allocs_per_graphop_on"`
	ReplayAllocsOn      float64 `json:"replay_allocs_on"`
	NsPerReplayOff      float64 `json:"ns_per_replay_off"`
	NsPerReplayOn       float64 `json:"ns_per_replay_on"`
}

// kernelsBench regenerates the DESIGN.md kernel/memory-plan table: blocked
// vs naive matmul, plan-on vs plan-off LeNet forward and train-step replay,
// and the steady-state allocation profile of elementwise replay.
func kernelsBench(warmup, steps int, jsonPath string) {
	rep := kernelsReport{Mode: "kernels", CPUs: runtime.NumCPU()}

	fmt.Printf("--- matmul: naive vs blocked vs blocked+parallel (%d CPUs) ---\n", rep.CPUs)
	fmt.Printf("%6s %12s %12s %12s %9s %9s\n", "size", "naive", "blocked", "parallel", "blk/nv", "par/nv")
	for _, n := range []int{64, 128, 256} {
		r := matmulBench(n)
		rep.MatMul = append(rep.MatMul, r)
		fmt.Printf("%6d %10.0fns %10.0fns %10.0fns %8.2fx %8.2fx\n",
			n, r.NaiveNs, r.BlockedNs, r.ParallelNs, r.BlockedSpeedup, r.ParallelSpeedup)
	}

	fmt.Printf("\n--- LeNet forward replay (inference Call: naive / plan-off / plan-on) ---\n")
	rep.LeNetForward = lenetForwardBench()
	fmt.Printf("naive %8.0f   plan-off %8.0f   plan-on %8.0f calls/s   plan %.2fx, total %.2fx\n",
		rep.LeNetForward.NaivePerSec, rep.LeNetForward.PlanOffPerSec, rep.LeNetForward.PlanOnPerSec,
		rep.LeNetForward.Speedup, rep.LeNetForward.SpeedupVsNaive)
	fmt.Printf("plan-on call latency: p50 %.3fms  p95 %.3fms  p99 %.3fms\n",
		rep.LeNetForward.PlanOnP50Ms, rep.LeNetForward.PlanOnP95Ms, rep.LeNetForward.PlanOnP99Ms)

	fmt.Printf("\n--- LeNet train-step replay (zero device time: naive / plan-off / plan-on) ---\n")
	rep.TrainStep = trainStepBench(warmup, steps)
	fmt.Printf("naive %8.1f   plan-off %8.1f (loss %.3f)   plan-on %8.1f items/s (loss %.3f)   plan %.2fx, total %.2fx\n",
		rep.TrainStep.NaivePerSec, rep.TrainStep.PlanOffPerSec, rep.TrainStep.FinalLossOff,
		rep.TrainStep.PlanOnPerSec, rep.TrainStep.FinalLossOn,
		rep.TrainStep.Speedup, rep.TrainStep.SpeedupVsNaive)
	fmt.Printf("plan-on step latency: p50 %.3fms  p95 %.3fms  p99 %.3fms\n",
		rep.TrainStep.PlanOnP50Ms, rep.TrainStep.PlanOnP95Ms, rep.TrainStep.PlanOnP99Ms)

	fmt.Printf("\n--- elementwise chain replay: allocations ---\n")
	rep.Elementwise = elementwiseBench()
	fmt.Printf("%d ops: plan-off %.2f allocs/op, plan-on %.3f allocs/op (%.0f allocs/replay); %0.fns -> %.0fns per replay\n",
		rep.Elementwise.Ops, rep.Elementwise.AllocsPerGraphopOff, rep.Elementwise.AllocsPerGraphopOn,
		rep.Elementwise.ReplayAllocsOn, rep.Elementwise.NsPerReplayOff, rep.Elementwise.NsPerReplayOn)

	fmt.Printf("\n--- pass pipeline A/B (LeNet train step: off / each-alone / all) ---\n")
	rep.Passes = passesBench(warmup, steps)
	fmt.Printf("%8s %7s %9s %10s %10s\n", "config", "nodes", "rewrites", "items/s", "loss")
	for _, v := range rep.Passes.Variants {
		fmt.Printf("%8s %7d %9d %10.1f %10.6f\n", v.Config, v.Nodes, v.Rewrites, v.ItemsPerSec, v.FinalLoss)
	}
	fmt.Printf("LeNet node delta %+.1f%%, all-on vs all-off %.2fx, loss bit-identical: %v\n",
		100*rep.Passes.NodeDelta, rep.Passes.SpeedupVsOff, rep.Passes.LossBitIdentical)
	fmt.Printf("fusion on elementwise replay: %d -> %d nodes (%.1f%% reduction), %.0fns -> %.0fns per replay, outputs bit-identical: %v\n",
		rep.Passes.FusionNodesOff, rep.Passes.FusionNodesOn,
		100*rep.Passes.FusionNodeReduction,
		rep.Passes.FusionNsOff, rep.Passes.FusionNsOn, rep.Passes.FusionBitIdentical)

	writeReport(jsonPath, rep)
}

// pctile returns the p-quantile (0..1) of samples by nearest-rank on a
// sorted copy; 0 when there are no samples.
func pctile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return s[int(p*float64(len(s)-1))]
}

// timeIt runs f repeatedly for at least minDur and returns ns per call.
func timeIt(minDur time.Duration, f func()) float64 {
	f() // warm
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			f()
		}
		el := time.Since(start)
		if el >= minDur {
			return float64(el.Nanoseconds()) / float64(n)
		}
		n *= 4
	}
}

func matmulBench(n int) matmulResult {
	rng := tensor.NewRNG(uint64(n))
	a := rng.Randn(n, n)
	b := rng.Randn(n, n)
	dst := tensor.Zeros(n, n)
	r := matmulResult{Size: n}
	r.NaiveNs = timeIt(60*time.Millisecond, func() { tensor.MatMulNaive(a, b) })
	prev := tensor.SetKernelParallelism(1)
	r.BlockedNs = timeIt(60*time.Millisecond, func() { tensor.MatMulInto(dst, a, b) })
	tensor.SetKernelParallelism(runtime.NumCPU())
	r.ParallelNs = timeIt(60*time.Millisecond, func() { tensor.MatMulInto(dst, a, b) })
	tensor.SetKernelParallelism(prev)
	r.BlockedSpeedup = r.NaiveNs / r.BlockedNs
	r.ParallelSpeedup = r.NaiveNs / r.ParallelNs
	return r
}

const lenetFwdSrc = `
def lenet_fwd(x):
    c1 = variable("lenet/c1", [4, 1, 3, 3])
    c2 = variable("lenet/c2", [8, 4, 3, 3])
    fc = variable("lenet/fc", [32, 4])
    b = variable("lenet/b", [4])
    h = relu(conv2d(x, c1, stride=1, pad=1))
    h = max_pool(h, 2, 2)
    h = relu(conv2d(h, c2, stride=1, pad=1))
    h = max_pool(h, 2, 2)
    flat = reshape(h, [8, 32])
    return matmul(flat, fc) + b
`

// lenetForwardBench times steady-state inference replay; the measurement is
// duration-bounded (timeIt), not step-count-bounded.
func lenetForwardBench() planAB {
	run := func(noPlan, naive bool) (float64, []float64) {
		prev := tensor.SetNaiveKernels(naive)
		defer tensor.SetNaiveKernels(prev)
		cfg := core.DefaultJanusConfig()
		cfg.ProfileIters = 1
		cfg.PyOverheadNs = -1
		cfg.NoMemoryPlan = noPlan
		e := core.NewEngine(cfg)
		if err := e.Run(lenetFwdSrc); err != nil {
			fmt.Printf("lenet forward setup failed: %v\n", err)
			return 0, nil
		}
		rng := tensor.NewRNG(11)
		x := minipy.NewTensor(rng.Randn(8, 1, 8, 8))
		args := []minipy.Value{x}
		for i := 0; i < 3; i++ {
			if _, err := e.Call("lenet_fwd", args); err != nil {
				fmt.Printf("lenet forward failed: %v\n", err)
				return 0, nil
			}
		}
		ns := timeIt(200*time.Millisecond, func() {
			if _, err := e.Call("lenet_fwd", args); err != nil {
				panic(err)
			}
		})
		// Per-call latency distribution for the report's percentiles.
		samples := make([]float64, 0, 200)
		for i := 0; i < 200; i++ {
			t0 := time.Now()
			if _, err := e.Call("lenet_fwd", args); err != nil {
				panic(err)
			}
			samples = append(samples, float64(time.Since(t0).Nanoseconds())/1e6)
		}
		return 1e9 / ns, samples
	}
	var out planAB
	var samples []float64
	out.NaivePerSec, _ = run(true, true)
	out.PlanOffPerSec, _ = run(true, false)
	out.PlanOnPerSec, samples = run(false, false)
	out.PlanOnP50Ms = pctile(samples, 0.50)
	out.PlanOnP95Ms = pctile(samples, 0.95)
	out.PlanOnP99Ms = pctile(samples, 0.99)
	if out.PlanOffPerSec > 0 {
		out.Speedup = out.PlanOnPerSec / out.PlanOffPerSec
	}
	if out.NaivePerSec > 0 {
		out.SpeedupVsNaive = out.PlanOnPerSec / out.NaivePerSec
	}
	return out
}

// trainRun trains LeNet for warmup+steps under cfg and returns steady-state
// throughput (items/s over the post-warmup curve window), final loss,
// post-warmup per-step milliseconds, and the engine (whose graph cache holds
// the compiled train graph for node-count inspection).
func trainRun(m *models.Model, cfg core.Config, warmup, steps int) (float64, float64, []float64, *core.Engine) {
	pts, e, err := models.Curve(m, cfg, 42, warmup+steps)
	if err != nil || len(pts) <= warmup {
		fmt.Printf("train-step measurement failed: %v\n", err)
		return 0, 0, nil, e
	}
	window := pts[len(pts)-1].Seconds
	if warmup > 0 {
		window -= pts[warmup-1].Seconds
	}
	if window <= 0 {
		window = 1e-9
	}
	th := float64((len(pts)-warmup)*m.ItemsPerStep) / window
	// Post-warmup per-step durations (ms) from the cumulative curve.
	var stepMs []float64
	for i := warmup; i < len(pts); i++ {
		prev := 0.0
		if i > 0 {
			prev = pts[i-1].Seconds
		}
		stepMs = append(stepMs, (pts[i].Seconds-prev)*1e3)
	}
	return th, pts[len(pts)-1].Loss, stepMs, e
}

func trainStepBench(warmup, steps int) trainAB {
	m, err := models.Get("LeNet")
	if err != nil {
		fmt.Println(err)
		return trainAB{}
	}
	measure := func(noPlan, naive bool) (float64, float64, []float64) {
		prev := tensor.SetNaiveKernels(naive)
		defer tensor.SetNaiveKernels(prev)
		cfg := core.DefaultJanusConfig()
		cfg.LR = 0.05
		cfg.PyOverheadNs = -1 // zero simulated device/dispatch time: host-bound
		cfg.NoMemoryPlan = noPlan
		// One training run yields both numbers: steady-state throughput from
		// the post-warmup curve window, final loss from the last point.
		th, loss, stepMs, _ := trainRun(m, cfg, warmup, steps)
		return th, loss, stepMs
	}
	var out trainAB
	out.NaivePerSec, _, _ = measure(true, true)
	out.PlanOffPerSec, out.FinalLossOff, _ = measure(true, false)
	var stepMs []float64
	out.PlanOnPerSec, out.FinalLossOn, stepMs = measure(false, false)
	out.PlanOnP50Ms = pctile(stepMs, 0.50)
	out.PlanOnP95Ms = pctile(stepMs, 0.95)
	out.PlanOnP99Ms = pctile(stepMs, 0.99)
	if out.PlanOffPerSec > 0 {
		out.Speedup = out.PlanOnPerSec / out.PlanOffPerSec
	}
	if out.NaivePerSec > 0 {
		out.SpeedupVsNaive = out.PlanOnPerSec / out.NaivePerSec
	}
	return out
}

// passesBench A/Bs the graph pass pipeline on LeNet train-step replay:
// all passes off, each pass alone, all passes on. Every variant trains the
// same curve (same seed, same steps) so final losses are directly
// bit-comparable; node counts come from the engine's compiled-graph cache
// after training.
func passesBench(warmup, steps int) passesResult {
	m, err := models.Get("LeNet")
	if err != nil {
		fmt.Println(err)
		return passesResult{}
	}
	names := passes.Names()
	measure := func(config string, disable []string) passVariant {
		cfg := core.DefaultJanusConfig()
		cfg.LR = 0.05
		cfg.PyOverheadNs = -1
		cfg.DisablePasses = disable
		th, loss, _, e := trainRun(m, cfg, warmup, steps)
		v := passVariant{Config: config, ItemsPerSec: th, FinalLoss: loss}
		if e != nil {
			sum := e.PassSummary()
			v.Nodes = sum.Nodes
			for _, n := range sum.Rewrites {
				v.Rewrites += n
			}
		}
		return v
	}

	var res passesResult
	res.Variants = append(res.Variants, measure("off", []string{"all"}))
	for _, p := range names {
		// Disable every pass except p.
		var disable []string
		for _, q := range names {
			if q != p {
				disable = append(disable, q)
			}
		}
		res.Variants = append(res.Variants, measure(p, disable))
	}
	res.Variants = append(res.Variants, measure("all", nil))

	off, on := res.Variants[0], res.Variants[len(res.Variants)-1]
	if off.Nodes > 0 {
		res.NodeDelta = float64(on.Nodes)/float64(off.Nodes) - 1
	}
	res.LossBitIdentical = on.FinalLoss == off.FinalLoss && on.FinalLoss > 0
	if off.ItemsPerSec > 0 {
		res.SpeedupVsOff = on.ItemsPerSec / off.ItemsPerSec
	}

	// Fusion A/B on the elementwise-chain replay: same graph builder the
	// allocation microbench uses, full pipeline applied to one copy.
	gOff := elementwiseChain(64)
	gOn := elementwiseChain(64)
	passes.Optimize(gOn)
	res.FusionNodesOff = gOff.NumNodes()
	res.FusionNodesOn = gOn.NumNodes()
	if res.FusionNodesOff > 0 {
		res.FusionNodeReduction = 1 - float64(res.FusionNodesOn)/float64(res.FusionNodesOff)
	}
	rng := tensor.NewRNG(3)
	feeds := map[string]graph.Val{"x": rng.Randn(8, 32), "y": rng.Randn(8, 32)}
	optsOff := exec.Options{Pool: tensor.NewPool()}
	optsOn := exec.Options{Pool: tensor.NewPool()}
	rOff, err1 := exec.Run(gOff, feeds, optsOff)
	rOn, err2 := exec.Run(gOn, feeds, optsOn)
	if err1 == nil && err2 == nil && len(rOff.Outputs) == len(rOn.Outputs) {
		res.FusionBitIdentical = true
		for i := range rOff.Outputs {
			a, okA := rOff.Outputs[i].(*tensor.Tensor)
			b, okB := rOn.Outputs[i].(*tensor.Tensor)
			if !okA || !okB || !tensor.Equal(a, b) {
				res.FusionBitIdentical = false
			}
		}
		res.FusionNsOff = timeIt(100*time.Millisecond, func() {
			if _, err := exec.Run(gOff, feeds, optsOff); err != nil {
				panic(err)
			}
		})
		res.FusionNsOn = timeIt(100*time.Millisecond, func() {
			if _, err := exec.Run(gOn, feeds, optsOn); err != nil {
				panic(err)
			}
		})
	}
	return res
}

// elementwiseChain mirrors the exec benchmark graph: alternating unary and
// binary elementwise ops.
func elementwiseChain(ops int) *graph.Graph {
	g := graph.New()
	x := g.Placeholder("x")
	y := g.Placeholder("y")
	cur := x.P()
	for i := 0; i < ops; i++ {
		switch i % 4 {
		case 0:
			cur = g.Add("ReLU", nil, cur).P()
		case 1:
			cur = g.Add("Add", nil, cur, y.P()).P()
		case 2:
			cur = g.Add("Tanh", nil, cur).P()
		case 3:
			cur = g.Add("Mul", nil, cur, y.P()).P()
		}
	}
	g.Outputs = []graph.Port{cur}
	return g
}

func elementwiseBench() elementwiseResult {
	const ops = 64
	rng := tensor.NewRNG(3)
	feeds := map[string]graph.Val{"x": rng.Randn(8, 32), "y": rng.Randn(8, 32)}
	res := elementwiseResult{Ops: ops}
	for _, planOn := range []bool{false, true} {
		g := elementwiseChain(ops)
		// Metrics attached as in production: the allocs/op gate covers the
		// instrumented replay path (sampled kernel timers included).
		opts := exec.Options{Metrics: exec.NewMetrics(obs.NewRegistry())}
		if planOn {
			opts.Pool = tensor.NewPool()
			opts.Arena = exec.NewArena()
		}
		if _, err := exec.Run(g, feeds, opts); err != nil {
			fmt.Printf("elementwise replay failed: %v\n", err)
			return res
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := exec.Run(g, feeds, opts); err != nil {
				panic(err)
			}
		})
		ns := timeIt(100*time.Millisecond, func() {
			if _, err := exec.Run(g, feeds, opts); err != nil {
				panic(err)
			}
		})
		nodes := float64(g.NumNodes())
		if planOn {
			res.AllocsPerGraphopOn = allocs / nodes
			res.ReplayAllocsOn = allocs
			res.NsPerReplayOn = ns
		} else {
			res.AllocsPerGraphopOff = allocs / nodes
			res.NsPerReplayOff = ns
		}
	}
	return res
}
