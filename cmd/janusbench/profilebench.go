package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"

	janus "repro"
	"repro/internal/core"
	"repro/internal/exec"
)

// profileBench exercises the always-on executor profiler end to end: it
// boots an in-process janusd, drives enough fn.Call requests through the
// speculative path to compile and replay a graph, then renders GET
// /v1/profile?fn= as a top-K per-op cost view (EstNS, exact call counts,
// pool rents, in-place hits) plus the memory-plan class residency.
func profileBench(calls, topK int) {
	if calls < 2 {
		calls = 2 // one profiling pass + at least one graph replay
	}
	srv := janus.NewServer(janus.ServerOptions{
		PoolSize: 2,
		Options:  janus.Options{Seed: 42, ProfileIterations: 1},
	})
	if _, err := srv.Compile(serveModel); err != nil {
		fmt.Fprintf(os.Stderr, "profile bench: compile: %v\n", err)
		os.Exit(1)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	row := make([]float64, 16)
	for i := range row {
		row[i] = float64(i) * 0.1
	}
	body, _ := json.Marshal(map[string]any{
		"fn": "predict", "args": []any{[][]float64{row}},
	})
	for i := 0; i < calls; i++ {
		resp, err := http.Post(ts.URL+"/v1/call", "application/json", bytes.NewReader(body))
		if err != nil {
			fmt.Fprintf(os.Stderr, "profile bench: call: %v\n", err)
			os.Exit(1)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "profile bench: call -> %d\n", resp.StatusCode)
			os.Exit(1)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/profile?fn=predict")
	if err != nil {
		fmt.Fprintf(os.Stderr, "profile bench: /v1/profile: %v\n", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	var prof core.FuncProfile
	if err := json.NewDecoder(resp.Body).Decode(&prof); err != nil {
		fmt.Fprintf(os.Stderr, "profile bench: decode: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("function %q: %d compiled graph(s) after %d calls\n", prof.Function, len(prof.Graphs), calls)
	for _, g := range prof.Graphs {
		fmt.Printf("\n--- %s graph (static=%v, %d runs, %d nodes) ---\n",
			g.Path, g.Static, g.Profile.Runs, len(g.Profile.Nodes))
		nodes := append([]exec.NodeProfile(nil), g.Profile.Nodes...)
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].EstNS > nodes[j].EstNS })
		var totalNS int64
		for _, n := range nodes {
			totalNS += n.EstNS
		}
		if len(nodes) > topK {
			nodes = nodes[:topK]
		}
		fmt.Printf("%4s %-14s %10s %12s %7s %7s %8s  %s\n",
			"node", "op", "calls", "est total", "samples", "rents", "in-place", "share")
		for _, n := range nodes {
			share := 0.0
			if totalNS > 0 {
				share = float64(n.EstNS) / float64(totalNS)
			}
			fmt.Printf("%4d %-14s %10d %10.1fus %7d %7d %8d  %s %.1f%%\n",
				n.Node, n.Op, n.Calls, float64(n.EstNS)/1e3,
				n.Samples, n.Rents, n.InPlace, bar(share, 24), 100*share)
		}
		if len(g.Profile.Classes) > 0 {
			var resident, pinned int64
			for _, c := range g.Profile.Classes {
				if c.Releasable {
					resident += c.Elems
				} else {
					pinned += c.Elems
				}
			}
			fmt.Printf("memory plan: %d alias classes, %d pooled elems resident, %d pinned\n",
				len(g.Profile.Classes), resident, pinned)
		}
	}
}

// bar renders share (0..1) as a fixed-width text bar — the flame-style
// at-a-glance view for terminals.
func bar(share float64, width int) string {
	n := int(share*float64(width) + 0.5)
	if n > width {
		n = width
	}
	out := make([]byte, width)
	for i := range out {
		if i < n {
			out[i] = '#'
		} else {
			out[i] = '.'
		}
	}
	return string(out)
}
