package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// serveModel is the load-driver fixture: a batch-parallel two-layer MLP.
const serveModel = `
def predict(x):
    w1 = variable("w1", [16, 32])
    w2 = variable("w2", [32, 8])
    return matmul(relu(matmul(x, w1)), w2)
`

// serveBench measures requests/sec against an in-process janusd: a real
// HTTP server over the serving pool, hammered by N concurrent clients.
func serveBench(clients int, dur time.Duration, workers, maxBatch int, maxLatency time.Duration) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	cfg := core.DefaultJanusConfig()
	cfg.ProfileIters = 1
	cfg.Seed = 42
	cfg.PyOverheadNs = -1
	srv := serve.NewServer(serve.Config{
		Workers: workers, MaxBatch: maxBatch, MaxLatency: maxLatency, Engine: cfg,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(client *http.Client, path string, body map[string]any) error {
		buf, _ := json.Marshal(body)
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var e map[string]any
			_ = json.NewDecoder(resp.Body).Decode(&e)
			return fmt.Errorf("%s -> %d: %v", path, resp.StatusCode, e["error"])
		}
		return nil
	}

	if err := post(ts.Client(), "/v1/load", map[string]any{"program": serveModel}); err != nil {
		fmt.Fprintf(os.Stderr, "serve bench: load: %v\n", err)
		os.Exit(1)
	}
	row := make([]float64, 16)
	for i := range row {
		row[i] = float64(i) * 0.1
	}
	inferBody := map[string]any{"fn": "predict", "x": [][]float64{row}}
	// Warm: get past profiling and compile the common batch shapes.
	for i := 0; i < 3; i++ {
		if err := post(ts.Client(), "/v1/infer", inferBody); err != nil {
			fmt.Fprintf(os.Stderr, "serve bench: warmup: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Printf("in-process janusd: %d clients, %d workers, batch %d/%v, %v\n",
		clients, workers, maxBatch, maxLatency, dur)
	var done, failed atomic.Int64
	latencies := make([][]time.Duration, clients)
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			for time.Now().Before(deadline) {
				start := time.Now()
				if err := post(client, "/v1/infer", inferBody); err != nil {
					failed.Add(1)
					continue
				}
				latencies[c] = append(latencies[c], time.Since(start))
				done.Add(1)
			}
		}(c)
	}
	wg.Wait()

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	st := srv.Pool().Stats()
	fmt.Printf("%-22s %12.1f req/s\n", "throughput", float64(done.Load())/dur.Seconds())
	fmt.Printf("%-22s %12d ok, %d failed\n", "requests", done.Load(), failed.Load())
	fmt.Printf("%-22s %12v p50, %v p95, %v p99\n", "latency", pct(0.50), pct(0.95), pct(0.99))
	avgBatch := 0.0
	if st.Batches > 0 {
		avgBatch = float64(st.BatchedRequests) / float64(st.Batches)
	}
	fmt.Printf("%-22s %12d batches (avg %.1f req/batch)\n", "batching", st.Batches, avgBatch)
	fmt.Printf("%-22s %12d hits / %d conversions / %d cached graphs\n",
		"graph cache", st.CacheHits, st.Conversions, st.CachedGraphs)
	fmt.Printf("%-22s %12d graph / %d imperative\n", "steps", st.GraphSteps, st.ImperativeSteps)
}
