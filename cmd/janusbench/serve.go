package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	janus "repro"
)

// serveModel is the load-driver fixture: a batch-parallel two-layer MLP.
const serveModel = `
def predict(x):
    w1 = variable("w1", [16, 32])
    w2 = variable("w2", [32, 8])
    return matmul(relu(matmul(x, w1)), w2)
`

// serveReport is the machine-readable result (-json) the CI regression gate
// consumes (BENCH_serve.json).
type serveReport struct {
	Mode         string  `json:"mode"`
	ReqPerS      float64 `json:"req_per_s"`
	Requests     int64   `json:"requests"`
	Failed       int64   `json:"failed"`
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
	P99Ms        float64 `json:"p99_ms"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	AvgBatch     float64 `json:"avg_batch"`
	// CacheHitRateBucketed is the cache hit rate of a BucketBatch pool
	// driven with variable batch sizes — the number that collapses without
	// shape bucketing (every distinct size converts its own graph).
	CacheHitRateBucketed float64 `json:"cache_hit_rate_bucketed"`
	BucketedEntries      int     `json:"bucketed_entries"`
	// Snapshot round trip: entries saved by the warmed pool, entries a
	// fresh pool restored, and how many conversions the restored pool paid
	// to serve its whole warm measurement (must be 0).
	SnapshotSaved   int    `json:"snapshot_saved"`
	SnapshotLoaded  int    `json:"snapshot_loaded"`
	WarmConversions *int64 `json:"warm_conversions"`
	// Boot-to-first-served latency percentiles across repeated boots: cold
	// pays profile -> convert -> compile, warm restores the snapshot.
	ColdBootP50Ms float64 `json:"cold_boot_p50_ms"`
	ColdBootP99Ms float64 `json:"cold_boot_p99_ms"`
	WarmBootP50Ms float64 `json:"warm_boot_p50_ms"`
	WarmBootP99Ms float64 `json:"warm_boot_p99_ms"`
}

// serveBench measures requests/sec against an in-process janusd: a real
// HTTP server over the serving pool (built through the public handle API),
// hammered by N concurrent clients.
func serveBench(clients int, dur time.Duration, workers, maxBatch int, maxLatency time.Duration, jsonPath string) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	// Serving pools disable the simulated CPython dispatch delay by default
	// (serve.Config.withDefaults maps PyOverheadNs 0 → -1), matching the
	// explicit PyOverheadNs=-1 this bench set before the handle-API
	// migration — the numbers stay comparable across the change.
	srv := janus.NewServer(janus.ServerOptions{
		PoolSize:   workers,
		MaxBatch:   maxBatch,
		MaxLatency: maxLatency,
		Options:    janus.Options{Seed: 42, ProfileIterations: 1},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(client *http.Client, path string, body map[string]any) error {
		buf, _ := json.Marshal(body)
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var e map[string]any
			_ = json.NewDecoder(resp.Body).Decode(&e)
			return fmt.Errorf("%s -> %d: %v", path, resp.StatusCode, e["error"])
		}
		return nil
	}

	prog, err := srv.Compile(serveModel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve bench: compile: %v\n", err)
		os.Exit(1)
	}
	predict, err := prog.Func("predict")
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve bench: resolve: %v\n", err)
		os.Exit(1)
	}
	row := make([]float64, 16)
	for i := range row {
		row[i] = float64(i) * 0.1
	}
	inferBody := map[string]any{"fn": "predict", "x": [][]float64{row}}
	// Warm through the handle API: get past profiling and compile the
	// common batch shapes (the HTTP path below hits the same batcher).
	for i := 0; i < 3; i++ {
		if _, err := predict.Call(context.Background(), janus.Feeds{
			"x": janus.FromRows([][]float64{row}),
		}); err != nil {
			fmt.Fprintf(os.Stderr, "serve bench: warmup: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Printf("in-process janusd: %d clients, %d workers, batch %d/%v, %v\n",
		clients, workers, maxBatch, maxLatency, dur)
	var done, failed atomic.Int64
	latencies := make([][]time.Duration, clients)
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			for time.Now().Before(deadline) {
				start := time.Now()
				if err := post(client, "/v1/infer", inferBody); err != nil {
					failed.Add(1)
					continue
				}
				latencies[c] = append(latencies[c], time.Since(start))
				done.Add(1)
			}
		}(c)
	}
	wg.Wait()

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	st := srv.Stats()
	fmt.Printf("%-22s %12.1f req/s\n", "throughput", float64(done.Load())/dur.Seconds())
	fmt.Printf("%-22s %12d ok, %d failed\n", "requests", done.Load(), failed.Load())
	fmt.Printf("%-22s %12v p50, %v p95, %v p99\n", "latency", pct(0.50), pct(0.95), pct(0.99))
	avgBatch := 0.0
	if st.Batches > 0 {
		avgBatch = float64(st.BatchedRequests) / float64(st.Batches)
	}
	fmt.Printf("%-22s %12d batches (avg %.1f req/batch)\n", "batching", st.Batches, avgBatch)
	fmt.Printf("%-22s %12d hits / %d conversions / %d cached graphs\n",
		"graph cache", st.CacheHits, st.Conversions, st.CachedGraphs)
	fmt.Printf("%-22s %12d graph / %d imperative\n", "steps", st.GraphSteps, st.ImperativeSteps)

	hitRate := 0.0
	if st.CacheHits+st.CacheMisses > 0 {
		hitRate = float64(st.CacheHits) / float64(st.CacheHits+st.CacheMisses)
	}
	rep := serveReport{
		Mode:         "serve",
		ReqPerS:      float64(done.Load()) / dur.Seconds(),
		Requests:     done.Load(),
		Failed:       failed.Load(),
		P50Ms:        float64(pct(0.50)) / 1e6,
		P95Ms:        float64(pct(0.95)) / 1e6,
		P99Ms:        float64(pct(0.99)) / 1e6,
		CacheHitRate: hitRate,
		AvgBatch:     avgBatch,
	}
	bucketBootBench(&rep)
	writeReport(jsonPath, rep)
}

// bucketBootBench fills the phase-2 report fields: the cache hit rate of a
// shape-bucketed pool under variable batch sizes, and boot-to-first-served
// latency with and without a snapshot artifact (the cold-start numbers the
// CI gate tracks).
func bucketBootBench(rep *serveReport) {
	fail := func(step string, err error) {
		fmt.Fprintf(os.Stderr, "serve bench: %s: %v\n", step, err)
		os.Exit(1)
	}
	// Batch sizes a real mixed-traffic client would send: with MaxBucket 16
	// these land on the power-of-two buckets {1, 2, 4, 8, 16}, so five
	// compiled shapes serve eight request shapes.
	sizes := []int{1, 2, 3, 5, 7, 8, 11, 13}
	feed := func(rows int) janus.Feeds {
		data := make([][]float64, rows)
		for i := range data {
			row := make([]float64, 16)
			for j := range row {
				row[j] = float64((i+j)%11)*0.25 - 1
			}
			data[i] = row
		}
		return janus.Feeds{"x": janus.FromRows(data)}
	}
	// boot builds a bucketed server, runs the optional snapshot load, and
	// serves one request per traffic size; the returned duration is the full
	// boot-to-all-shapes-served time a restarting replica would pay.
	boot := func(load func(*janus.Server) error) (*janus.Server, *janus.Function, time.Duration) {
		start := time.Now()
		srv := janus.NewServer(janus.ServerOptions{
			PoolSize:    2,
			MaxBatch:    1,
			BucketBatch: true,
			MaxBucket:   16,
			Options:     janus.Options{Seed: 42, ProfileIterations: 1},
		})
		prog, err := srv.Compile(serveModel)
		if err != nil {
			fail("bucket compile", err)
		}
		if load != nil {
			if err := load(srv); err != nil {
				fail("snapshot load", err)
			}
		}
		predict, err := prog.Func("predict")
		if err != nil {
			fail("bucket resolve", err)
		}
		for _, rows := range sizes {
			if _, err := predict.Call(context.Background(), feed(rows)); err != nil {
				fail(fmt.Sprintf("bucket call rows=%d", rows), err)
			}
		}
		return srv, predict, time.Since(start)
	}

	// Phase 2a: steady-state hit rate under variable batch sizes. Without
	// bucketing every distinct size converts its own graph; with it the
	// traffic settles onto the bucket shapes after the first few cycles.
	warmSrv, predict, _ := boot(nil)
	for cycle := 0; cycle < 7; cycle++ {
		for _, rows := range sizes {
			if _, err := predict.Call(context.Background(), feed(rows)); err != nil {
				fail(fmt.Sprintf("bucket traffic rows=%d", rows), err)
			}
		}
	}
	bst := warmSrv.Stats()
	if bst.CacheHits+bst.CacheMisses > 0 {
		rep.CacheHitRateBucketed = float64(bst.CacheHits) / float64(bst.CacheHits+bst.CacheMisses)
	}
	rep.BucketedEntries = bst.CachedGraphs
	fmt.Printf("%-22s %12.3f hit rate (%d sizes -> %d compiled graphs)\n",
		"bucketed cache", rep.CacheHitRateBucketed, len(sizes), rep.BucketedEntries)

	// Phase 2b: snapshot round trip + boot latency. Save the warmed pool's
	// artifact, then time repeated cold boots (profile -> convert -> compile)
	// against warm boots (restore the artifact, serve immediately).
	dir, err := os.MkdirTemp("", "janusbench-snap-")
	if err != nil {
		fail("snapshot dir", err)
	}
	defer os.RemoveAll(dir)
	path := janus.SnapshotPath(dir)
	saved, err := warmSrv.SaveSnapshot(path)
	if err != nil {
		fail("snapshot save", err)
	}
	rep.SnapshotSaved = saved

	const boots = 7
	var coldTimes, warmTimes []time.Duration
	for i := 0; i < boots; i++ {
		_, _, d := boot(nil)
		coldTimes = append(coldTimes, d)
	}
	for i := 0; i < boots; i++ {
		srv, _, d := boot(func(s *janus.Server) error {
			n, err := s.LoadSnapshot(path)
			if err != nil {
				return err
			}
			rep.SnapshotLoaded = n
			return nil
		})
		warmTimes = append(warmTimes, d)
		conv := int64(srv.Stats().Conversions)
		rep.WarmConversions = &conv
	}
	bootPct := func(ts []time.Duration, p float64) float64 {
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		return float64(ts[int(p*float64(len(ts)-1))]) / 1e6
	}
	rep.ColdBootP50Ms = bootPct(coldTimes, 0.50)
	rep.ColdBootP99Ms = bootPct(coldTimes, 0.99)
	rep.WarmBootP50Ms = bootPct(warmTimes, 0.50)
	rep.WarmBootP99Ms = bootPct(warmTimes, 0.99)
	fmt.Printf("%-22s %12d entries saved, %d restored, %d warm conversions\n",
		"snapshot", rep.SnapshotSaved, rep.SnapshotLoaded, *rep.WarmConversions)
	fmt.Printf("%-22s %9.1fms p50, %.1fms p99 cold / %.1fms p50, %.1fms p99 warm\n",
		"boot-to-served", rep.ColdBootP50Ms, rep.ColdBootP99Ms, rep.WarmBootP50Ms, rep.WarmBootP99Ms)
}
