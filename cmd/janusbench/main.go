// Command janusbench regenerates every table and figure of the paper's
// evaluation section (§6) against this reproduction:
//
//	janusbench -experiment table2      # model × dynamic-feature matrix
//	janusbench -experiment table3      # single-device training throughput
//	janusbench -experiment fig6        # convergence curves on 4 engines
//	janusbench -experiment fig7        # ablation IMP→BASE→+UNRL→+SPCN→+PARL
//	janusbench -experiment fig8        # multi-device scalability (simulated)
//	janusbench -experiment assertcost  # §6.3.1 assertion-overhead check
//	janusbench -experiment all
//
// Absolute numbers differ from the paper (this substrate is a pure-Go
// simulator, not a TITAN Xp testbed); the comparisons — who wins, by what
// rough factor, where the failures land — are the reproduction targets.
// EXPERIMENTS.md records paper-vs-measured for every row.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/models"
)

func main() {
	exp := flag.String("experiment", "all", "table2|table3|fig6|fig7|fig8|assertcost|all")
	steps := flag.Int("steps", 20, "measured steps per configuration")
	warmup := flag.Int("warmup", 6, "warmup steps (covers profiling + conversion)")
	serveMode := flag.Bool("serve", false, "load-driver mode: requests/sec against an in-process janusd")
	clients := flag.Int("clients", 8, "concurrent clients in -serve mode")
	duration := flag.Duration("duration", 5*time.Second, "measurement window in -serve mode")
	serveWorkers := flag.Int("serve-workers", 0, "pool workers in -serve mode (0 = NumCPU)")
	maxBatch := flag.Int("max-batch", 8, "batcher size limit in -serve mode")
	batchLatency := flag.Duration("batch-latency", 2*time.Millisecond, "batcher latency limit in -serve mode")
	kernelsMode := flag.Bool("kernels", false,
		"kernel/memory-plan microbenchmarks: blocked matmul, plan-on/off LeNet replay, allocs/op")
	traceMode := flag.Bool("trace", false,
		"trace mode: run real fn.Call requests through an in-process janusd and print the /v1/trace span trees")
	traceCalls := flag.Int("trace-calls", 4, "requests to trace in -trace mode")
	profileMode := flag.Bool("profile", false,
		"profile mode: drive an in-process janusd and print the /v1/profile per-op cost view of the compiled graph")
	profileCalls := flag.Int("profile-calls", 8, "requests to drive in -profile mode")
	profileTop := flag.Int("profile-top", 12, "top-K nodes by estimated time in -profile mode")
	distMode := flag.Bool("dist", false, "distributed mode: real data-parallel scaling on the internal/ps runtime")
	workers := flag.Int("workers", 4, "max worker replicas in -dist mode (measured at 1, 2, 4, ... up to this)")
	shards := flag.Int("shards", 4, "parameter-server shards in -dist mode")
	distModel := flag.String("dist-model", "LeNet", "model trained in -dist mode")
	deviceTime := flag.Duration("device-time", 2*time.Millisecond,
		"simulated accelerator time per local step in -dist mode (0 = host-bound)")
	asyncMode := flag.Bool("async", false,
		"free-running workers in -dist mode: no round barrier, the staleness bound arbitrates")
	staleness := flag.Int("staleness", -1,
		"staleness bound in -dist -async mode (-1 = sweep bounds 0, 2, 8)")
	optimizer := flag.String("optimizer", "sgd", "server-side optimizer in -dist mode: sgd, momentum, or adam")
	churnMode := flag.Bool("churn", false,
		"in -dist mode (implies -async): add a fault-injected churn run — seeded wire faults, a worker kill+rejoin, a shard kill+snapshot failover — anchored against the fault-free async run")
	jsonOut := flag.String("json", "",
		"write machine-readable results to this file (-dist, -serve and -kernels modes; the CI regression gate reads it)")
	flag.Parse()

	if *traceMode {
		fmt.Printf("========== Request-phase trace (/v1/trace on an in-process janusd) ==========\n")
		traceBench(*traceCalls)
		return
	}
	if *profileMode {
		fmt.Printf("========== Always-on op profiler (/v1/profile on an in-process janusd) ==========\n")
		profileBench(*profileCalls, *profileTop)
		return
	}
	if *kernelsMode {
		fmt.Printf("========== Kernel + memory-plan microbenchmarks ==========\n")
		kernelsBench(*warmup, *steps, *jsonOut)
		return
	}
	if *serveMode {
		serveBench(*clients, *duration, *serveWorkers, *maxBatch, *batchLatency, *jsonOut)
		return
	}
	if *distMode {
		if *churnMode {
			*asyncMode = true // churn needs the free-running harness and its anchor
		}
		if *asyncMode {
			fmt.Printf("========== Distributed free-running training (async, staleness-bounded) ==========\n")
		} else {
			fmt.Printf("========== Distributed data-parallel scaling (real, vs Figure 8 model) ==========\n")
		}
		distBench(distOptions{
			model: *distModel, maxWorkers: *workers, shards: *shards,
			warmup: *warmup, steps: *steps, deviceTime: *deviceTime,
			optimizer: *optimizer, async: *asyncMode, staleness: *staleness,
			churn: *churnMode, jsonPath: *jsonOut,
		})
		return
	}

	run := func(name string, f func(int, int)) {
		fmt.Printf("\n========== %s ==========\n", name)
		f(*warmup, *steps)
	}
	switch *exp {
	case "table2":
		run("Table 2: dynamic features per model", table2)
	case "table3":
		run("Table 3: single-device training throughput", table3)
	case "fig6":
		run("Figure 6: convergence on four engines", fig6)
	case "fig7":
		run("Figure 7: optimization ablation", fig7)
	case "fig8":
		run("Figure 8: multi-device scalability (simulated cluster)", fig8)
	case "assertcost":
		run("Assertion cost (§6.3.1)", assertCost)
	case "all":
		run("Table 2: dynamic features per model", table2)
		run("Table 3: single-device training throughput", table3)
		run("Figure 6: convergence on four engines", fig6)
		run("Figure 7: optimization ablation", fig7)
		run("Figure 8: multi-device scalability (simulated cluster)", fig8)
		run("Assertion cost (§6.3.1)", assertCost)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// writeReport writes a machine-readable benchmark result for the CI
// regression gate (internal/tools/benchcheck). No-op when path is empty.
func writeReport(path string, v any) {
	if path == "" {
		return
	}
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: marshal report: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: write report: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s\n", path)
}

func mark(b bool) string {
	if b {
		return "Y"
	}
	return "-"
}

func table2(_, _ int) {
	fmt.Printf("%-10s %-8s %-12s %3s %4s %4s %4s\n", "Model", "Category", "Units", "BS", "DCF", "DT", "IF")
	for _, m := range models.All() {
		fmt.Printf("%-10s %-8s %-12s %3d %4s %4s %4s\n",
			m.Name, m.Category, m.Units, m.BatchSize, mark(m.DCF), mark(m.DT), mark(m.IF))
	}
}

// engineConfigs returns the Table 3 engine set. The Sym column is realized
// as guard-free graph execution: the converter emits the same operations a
// hand-written symbolic program would, so JANUS minus assertion checking is
// the hand-built-graph baseline (see DESIGN.md §5).
func engineConfigs() map[string]core.Config {
	imp := core.Config{Mode: core.Imperative, LR: 0.05}
	jan := core.DefaultJanusConfig()
	jan.LR = 0.05
	jan.Workers = runtime.NumCPU()
	sym := jan
	sym.DisableAsserts = true
	sym.ProfileIters = 1
	return map[string]core.Config{"Imp": imp, "JANUS": jan, "Sym": sym}
}

func table3(warmup, steps int) {
	cfgs := engineConfigs()
	fmt.Printf("%-10s %12s %12s %12s %9s %9s  %s\n",
		"Model", "Imp(A)", "JANUS(B)", "Sym(C)", "B/A", "B/C-1", "units")
	for _, m := range models.All() {
		row := map[string]float64{}
		for name, cfg := range cfgs {
			t, err := models.Throughput(m, cfg, 42, warmup, steps)
			if err != nil {
				fmt.Printf("%-10s %s failed: %v\n", m.Name, name, err)
				t = 0
			}
			row[name] = t
		}
		speedup, gap := 0.0, 0.0
		if row["Imp"] > 0 {
			speedup = row["JANUS"] / row["Imp"]
		}
		if row["Sym"] > 0 {
			gap = row["JANUS"]/row["Sym"] - 1
		}
		fmt.Printf("%-10s %12.1f %12.1f %12.1f %8.2fx %8.1f%%  %s\n",
			m.Name, row["Imp"], row["JANUS"], row["Sym"], speedup, gap*100, m.Units)
	}
}

func fig6(_, steps int) {
	// The five panels: ResNet, LM, TreeLSTM, PPO, AN on four engines.
	panels := []string{"ResNet", "LM", "TreeLSTM", "PPO", "AN"}
	engines := []struct {
		name string
		cfg  core.Config
	}{
		{"janus", func() core.Config { c := core.DefaultJanusConfig(); c.LR = 0.05; return c }()},
		{"symbolic", func() core.Config {
			c := core.DefaultJanusConfig()
			c.LR = 0.05
			c.DisableAsserts = true
			c.ProfileIters = 1
			return c
		}()},
		{"imperative", core.Config{Mode: core.Imperative, LR: 0.05}},
		{"trace", core.Config{Mode: core.Trace, LR: 0.05}},
	}
	n := steps * 3
	for _, panel := range panels {
		m, err := models.Get(panel)
		if err != nil {
			fmt.Println(err)
			continue
		}
		fmt.Printf("\n--- %s (loss trajectory, %d steps) ---\n", panel, n)
		for _, eng := range engines {
			pts, _, err := models.Curve(m, eng.cfg, 42, n)
			if err != nil {
				fmt.Printf("%-11s FAILS: %v\n", eng.name, truncate(err.Error(), 90))
				continue
			}
			var sb strings.Builder
			for i := 0; i < len(pts); i += max(1, len(pts)/6) {
				fmt.Fprintf(&sb, " %.3f@%.2fs", pts[i].Loss, pts[i].Seconds)
			}
			fmt.Printf("%-11s%s\n", eng.name, sb.String())
		}
	}
	fmt.Println("\nNote: trace either fails (TreeLSTM recursion) or silently trains with")
	fmt.Println("stale state/branches; compare its trajectory against imperative/janus.")
}

func fig7(warmup, steps int) {
	type stage struct {
		name string
		cfg  core.Config
	}
	mk := func(unroll, spcn bool, workers int) core.Config {
		c := core.Config{Mode: core.Janus, LR: 0.05, ProfileIters: 3,
			Unroll: unroll, Specialize: spcn, Workers: workers}
		return c
	}
	stages := []stage{
		{"IMP", core.Config{Mode: core.Imperative, LR: 0.05}},
		{"BASE", mk(false, false, 1)},
		{"+UNRL", mk(true, false, 1)},
		{"+SPCN", mk(true, true, 1)},
		{"+PARL", mk(true, true, runtime.NumCPU())},
	}
	fmt.Printf("%-10s", "Model")
	for _, s := range stages {
		fmt.Printf(" %10s", s.name)
	}
	fmt.Printf(" %9s\n", "total")
	for _, m := range models.All() {
		fmt.Printf("%-10s", m.Name)
		var imp, last float64
		for _, s := range stages {
			t, err := models.Throughput(m, s.cfg, 42, warmup, steps)
			if err != nil {
				t = 0
			}
			if s.name == "IMP" {
				imp = t
			}
			last = t
			if imp > 0 {
				fmt.Printf(" %9.2fx", t/imp)
			} else {
				fmt.Printf(" %10s", "-")
			}
		}
		if imp > 0 {
			fmt.Printf(" %8.2fx\n", last/imp)
		} else {
			fmt.Println()
		}
	}
}

func fig8(_, _ int) {
	// The simulator runs at the paper's testbed scale: per-step compute
	// times derived from the paper's single-GPU throughput (Table 3: e.g.
	// ResNet50 at 200 images/s with batch 64 → 0.32 s/step), paper-scale
	// parameter counts, 100 Gbps links. The engines differ only in overlap
	// and per-collective dispatch, exactly as in §6.3.2.
	panels := []struct {
		model   string
		devices []int
		params  float64 // parameter count (paper scale)
		step    float64 // seconds per local step (paper scale)
		batch   int
		tensors int
	}{
		{"ResNet", []int{1, 3, 6, 12, 24, 36}, 25e6, 0.32, 64, 161},
		{"Inception", []int{1, 3, 6, 12, 24, 36}, 24e6, 0.54, 64, 190},
		{"LM", []int{1, 2, 3, 6, 12}, 0.83e9, 0.13, 256, 24},
		{"PPO", []int{1, 2, 3, 4, 5, 6}, 1e5, 0.20, 256, 8},
	}
	for _, p := range panels {
		gradBytes := p.params * 4 // fp32 gradients at paper scale
		fmt.Printf("\n--- %s (step %.2fs, %.0fM params, batch %d) ---\n",
			p.model, p.step, p.params/1e6, p.batch)
		fmt.Printf("%8s %18s %18s %14s\n", "devices", "janus/sym (scale)", "imperative (scale)", "speedup")
		for _, d := range p.devices {
			graphCfg := dist.ClusterConfig{Devices: d, StepCompute: p.step,
				GradBytes: gradBytes, Overlap: true, Tensors: p.tensors}
			eagerCfg := dist.ClusterConfig{Devices: d, StepCompute: p.step * 1.1,
				GradBytes: gradBytes, Overlap: false, Tensors: p.tensors,
				EagerDispatch: 3e-3, InputPipelineOverhead: p.step * 0.05}
			g := dist.Throughput(graphCfg, p.batch)
			e := dist.Throughput(eagerCfg, p.batch)
			fmt.Printf("%8d %10.1f (%.2f) %10.1f (%.2f) %12.2fx\n",
				d, g, dist.ScaleFactor(graphCfg, p.batch),
				e, dist.ScaleFactor(eagerCfg, p.batch), g/e)
		}
	}
}

func assertCost(warmup, steps int) {
	fmt.Printf("%-10s %14s %14s %10s\n", "Model", "with asserts", "no asserts", "overhead")
	for _, name := range []string{"LeNet", "LSTM", "TreeRNN"} {
		m, err := models.Get(name)
		if err != nil {
			continue
		}
		on := core.DefaultJanusConfig()
		on.LR = 0.05
		off := on
		off.DisableAsserts = true
		tOn, err1 := models.Throughput(m, on, 42, warmup, steps)
		tOff, err2 := models.Throughput(m, off, 42, warmup, steps)
		if err1 != nil || err2 != nil {
			fmt.Printf("%-10s failed: %v %v\n", name, err1, err2)
			continue
		}
		fmt.Printf("%-10s %14.1f %14.1f %9.1f%%\n", name, tOn, tOff, (tOff/tOn-1)*100)
	}
	fmt.Println("(paper: assertion effect negligible — asserts run in parallel with the model)")
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
