package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/ps"
)

// memBandwidth is the assumed in-process parameter-transfer rate used to
// configure the analytical model for comparison with the measured run. The
// real transport is memory copies plus JSON-free in-process calls, far from
// the paper's 100 Gbps NICs; 2 GB/s is a deliberately conservative stand-in
// (payloads here are kilobytes, so the prediction is compute-dominated
// either way).
const memBandwidth = 2e9

// distOptions configures the distributed benchmark modes.
type distOptions struct {
	model              string
	maxWorkers, shards int
	warmup, steps      int
	deviceTime         time.Duration
	optimizer          string
	async              bool
	staleness          int  // in async mode: -1 sweeps {0, 2, 8}
	churn              bool // async mode: add a fault-injected churn run
	jsonPath           string
}

// distReport is the machine-readable result (-json) the CI regression gate
// consumes (BENCH_dist.json).
type distReport struct {
	Mode      string           `json:"mode"`
	Model     string           `json:"model"`
	Workers   int              `json:"workers"`
	Optimizer string           `json:"optimizer"`
	Barriered *distPoint       `json:"barriered,omitempty"`
	Async     []asyncDistPoint `json:"async,omitempty"`
	Scaling   []distPoint      `json:"scaling,omitempty"`
	Churn     *churnDistPoint  `json:"churn,omitempty"`
}

type distPoint struct {
	Workers   int        `json:"workers"`
	ItemsPerS float64    `json:"items_per_s"`
	FinalLoss float64    `json:"final_loss"`
	Push      *latencyMs `json:"push_latency,omitempty"`
	Pull      *latencyMs `json:"pull_latency,omitempty"`
}

type asyncDistPoint struct {
	Staleness  int        `json:"staleness"`
	ItemsPerS  float64    `json:"items_per_s"`
	FinalLoss  float64    `json:"final_loss"`
	StaleDrops int64      `json:"stale_drops"`
	Backoffs   int64      `json:"backoffs"`
	Push       *latencyMs `json:"push_latency,omitempty"`
	Pull       *latencyMs `json:"pull_latency,omitempty"`
}

// churnDistPoint is the fault-injected churn run the CI gate compares
// against the fault-free async anchor at the same staleness bound.
type churnDistPoint struct {
	Staleness       int              `json:"staleness"`
	ItemsPerS       float64          `json:"items_per_s"`
	FinalLoss       float64          `json:"final_loss"`
	AnchorFinalLoss float64          `json:"anchor_final_loss"`
	WorkerKills     int              `json:"worker_kills"`
	WorkerRejoins   int              `json:"worker_rejoins"`
	ShardKills      int              `json:"shard_kills"`
	Failovers       int              `json:"shard_failovers"`
	LostUpdates     int64            `json:"lost_updates"`
	Retries         int64            `json:"retries"`
	LeaseExpiries   int64            `json:"lease_expiries"`
	StaleDrops      int64            `json:"stale_drops"`
	Injected        map[string]int64 `json:"injected,omitempty"`
}

// latencyMs carries server-side handling-latency percentiles (ms), read
// back from the parameter server's registry histograms after a run.
type latencyMs struct {
	P50 float64 `json:"p50_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
}

// psLatency snapshots one op's percentiles from the cluster's in-process
// parameter server; nil when the cluster fronts a remote server.
func psLatency(c *ps.Cluster, op string) *latencyMs {
	s := c.Server()
	if s == nil {
		return nil
	}
	return &latencyMs{
		P50: s.LatencyQuantile(op, 0.50) * 1e3,
		P95: s.LatencyQuantile(op, 0.95) * 1e3,
		P99: s.LatencyQuantile(op, 0.99) * 1e3,
	}
}

// distEngineConfig is the shared per-replica engine configuration.
func distEngineConfig() core.Config {
	ecfg := core.DefaultJanusConfig()
	ecfg.Workers = 1 // scale across replicas, not inside one graph executor
	ecfg.ProfileIters = 2
	ecfg.Seed = 42
	ecfg.PyOverheadNs = -1
	ecfg.LR = 0.05
	return ecfg
}

// serverLR applies the linear LR-scaling rule for averaging optimizers so
// the optimization trajectory stays comparable across cluster sizes; Adam's
// per-tensor adaptive scale replaces it.
func serverLR(base float64, workers int, optimizer string) float64 {
	if optimizer == "adam" {
		return base / 5 // conventional Adam scale; SGD-size steps diverge
	}
	return base * float64(workers)
}

// distBench measures REAL data-parallel scaling on the parameter-server
// runtime (internal/ps) and prints it beside the internal/dist analytical
// prediction configured from the same measured profile — turning the
// Figure 8 simulator into a checkable claim.
//
// deviceTime simulates per-step accelerator execution (the same DESIGN.md §5
// calibration idea behind OpDelay): the paper's Figure 8 testbed is
// GPU-bound, with the host only coordinating, so each local step sleeps
// deviceTime after its real forward/backward math. Gradient pushes issued
// during backprop complete during that window — the compute/communication
// overlap the figure measures. Pass 0 for a fully host-bound measurement
// (which cannot scale beyond the machine's core count).
func distBench(o distOptions) {
	m, err := models.Get(o.model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dist bench: %v\n", err)
		os.Exit(1)
	}
	ecfg := distEngineConfig()
	maxWorkers, shards, warmup, steps, deviceTime :=
		o.maxWorkers, o.shards, o.warmup, o.steps, o.deviceTime

	build := func(_ int, e *core.Engine) (ps.StepFunc, error) {
		inst, err := m.Build(e, ecfg.Seed)
		if err != nil {
			return nil, err
		}
		return func(i int) (float64, error) {
			loss, err := inst.Step(i)
			if deviceTime > 0 {
				time.Sleep(deviceTime)
			}
			return loss, err
		}, nil
	}
	if o.async {
		asyncDistBench(o, m, ecfg, build)
		return
	}

	type point struct {
		workers    int
		stepsPerS  float64 // aggregate local steps/second
		throughput float64 // aggregate items/second
		finalLoss  float64
		stale      int64
		push, pull *latencyMs
	}
	var pts []point
	var gradBytes float64
	var tensors int
	counts := []int{1}
	for w := 2; w <= maxWorkers; w *= 2 {
		counts = append(counts, w)
	}
	for _, w := range counts {
		cluster, err := ps.NewCluster(ps.ClusterConfig{
			Workers: w,
			Shards:  shards,
			// Linear LR scaling keeps the optimization trajectory comparable
			// across cluster sizes (gradients are averaged server-side).
			LR:        serverLR(ecfg.LR, w, o.optimizer),
			Optimizer: o.optimizer,
			Engine:    ecfg,
			Build:     build,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dist bench: %d workers: %v\n", w, err)
			os.Exit(1)
		}
		if _, err := cluster.Run(warmup); err != nil {
			fmt.Fprintf(os.Stderr, "dist bench: warmup: %v\n", err)
			os.Exit(1)
		}
		res, err := cluster.Run(steps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dist bench: measure: %v\n", err)
			os.Exit(1)
		}
		elapsed := res.Elapsed.Seconds()
		if elapsed <= 0 {
			elapsed = 1e-9
		}
		localSteps := float64(w * steps)
		pts = append(pts, point{
			workers:    w,
			stepsPerS:  localSteps / elapsed,
			throughput: localSteps * float64(m.ItemsPerStep) / elapsed,
			finalLoss:  ps.TailMean(res.Losses),
			stale:      res.Stale,
			push:       psLatency(cluster, "push"),
			pull:       psLatency(cluster, "pull"),
		})
		if w == 1 {
			// Profile for the analytical model: actual per-step gradient
			// payload and tensor count from the worker's own accounting.
			ws := cluster.Workers()[0].Stats()
			if ws.Steps > 0 {
				gradBytes = float64(ws.BytesPushed) / float64(ws.Steps)
			}
			tensors = cluster.Workers()[0].Engine().Store.Len()
		}
	}

	base := pts[0]
	singleStep := 1 / base.stepsPerS
	fmt.Printf("model %s: parameter server with %d shards, per-worker batch %d, device time %v\n",
		m.Name, shards, m.BatchSize, deviceTime)
	fmt.Printf("single-worker profile: %.2f ms/step, %.1f KB gradients/step across %d tensors\n\n",
		singleStep*1e3, gradBytes/1e3, tensors)
	fmt.Printf("%8s %14s %14s %12s %12s %8s\n",
		"workers", "items/s", "measured eff", "predicted", "Δ(meas-pred)", "stale")
	for _, p := range pts {
		eff := p.throughput / (float64(p.workers) * base.throughput)
		pred := dist.ScaleFactor(
			dist.Measured(p.workers, singleStep, gradBytes, memBandwidth, tensors), m.BatchSize)
		fmt.Printf("%8d %14.1f %13.2fx %11.2fx %+11.2f %8d\n",
			p.workers, p.throughput, eff, pred, eff-pred, p.stale)
	}
	if len(pts) >= 3 {
		speedup := pts[2].throughput / pts[1].throughput
		fmt.Printf("\n%d→%d workers speedup: %.2fx (acceptance bar: > 1.0x)\n",
			pts[1].workers, pts[2].workers, speedup)
	}
	fmt.Println("\nMeasured: in-process ps.Cluster (real gradient exchange, per-tensor")
	fmt.Println("streaming overlapping backprop; host math real, device execution")
	fmt.Println("simulated by -device-time as in DESIGN notes). Predicted: internal/dist")
	fmt.Println("configured from the measured single-worker profile (overlap=true). The")
	fmt.Println("analytical model ignores host-side coordination cost (serialized on")
	fmt.Printf("this machine's %d core(s)) and shard-lock contention, so the gap Δ is\n", runtime.NumCPU())
	fmt.Println("the model's unexplained residual.")

	rep := distReport{Mode: "dist", Model: m.Name, Workers: maxWorkers, Optimizer: optName(o.optimizer)}
	for _, p := range pts {
		rep.Scaling = append(rep.Scaling, distPoint{
			Workers: p.workers, ItemsPerS: p.throughput, FinalLoss: p.finalLoss,
			Push: p.push, Pull: p.pull,
		})
	}
	last := pts[len(pts)-1]
	rep.Barriered = &distPoint{Workers: last.workers, ItemsPerS: last.throughput,
		FinalLoss: last.finalLoss, Push: last.push, Pull: last.pull}
	if last.push != nil {
		fmt.Printf("\nPS handling latency at %d workers: push p50 %.3fms p99 %.3fms, pull p50 %.3fms p99 %.3fms\n",
			last.workers, last.push.P50, last.push.P99, last.pull.P50, last.pull.P99)
	}
	writeReport(o.jsonPath, rep)
}

func optName(name string) string {
	if name == "" {
		return "sgd"
	}
	return name
}

// asyncDistBench measures free-running (non-barriered) training across
// staleness bounds: each worker loops pull→step→stream-push on its own
// goroutine, the shard step clocks enforcing the bound (stale pushes are
// dropped and the worker backs off and re-pulls). A barriered run on the
// same data anchors the comparison; the internal/dist prediction is printed
// beside the measured efficiency exactly as in the synchronous mode.
func asyncDistBench(o distOptions, m *models.Model, ecfg core.Config, build func(int, *core.Engine) (ps.StepFunc, error)) {
	workers, steps, warmup := o.maxWorkers, o.steps, o.warmup
	bounds := []int{0, 2, 8}
	if o.staleness >= 0 {
		bounds = []int{o.staleness}
	}
	lr := serverLR(ecfg.LR, workers, o.optimizer)
	mk := func(staleness int) *ps.Cluster {
		cluster, err := ps.NewCluster(ps.ClusterConfig{
			Workers: workers, Shards: o.shards, LR: lr,
			Staleness: staleness, Optimizer: o.optimizer,
			Engine: ecfg, Build: build,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dist bench: async cluster: %v\n", err)
			os.Exit(1)
		}
		if _, err := cluster.Run(warmup); err != nil {
			fmt.Fprintf(os.Stderr, "dist bench: async warmup: %v\n", err)
			os.Exit(1)
		}
		return cluster
	}

	// Single-worker profile for the analytical prediction — a dedicated
	// 1-worker run, exactly as the synchronous mode profiles it: the
	// N-worker anchor's per-round wall time includes barrier waits and
	// host serialization, which would inflate StepCompute.
	profSteps := steps / 2
	if profSteps < 4 {
		profSteps = 4
	}
	single, err := ps.NewCluster(ps.ClusterConfig{
		Workers: 1, Shards: o.shards, LR: ecfg.LR, Optimizer: o.optimizer,
		Engine: ecfg, Build: build,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dist bench: profile cluster: %v\n", err)
		os.Exit(1)
	}
	if _, err := single.Run(warmup); err != nil {
		fmt.Fprintf(os.Stderr, "dist bench: profile warmup: %v\n", err)
		os.Exit(1)
	}
	profRes, err := single.Run(profSteps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dist bench: profile run: %v\n", err)
		os.Exit(1)
	}
	stepSeconds := profRes.Elapsed.Seconds() / float64(profSteps)
	ws := single.Workers()[0].Stats()
	gradBytes := 0.0
	if ws.Steps > 0 {
		gradBytes = float64(ws.BytesPushed) / float64(ws.Steps)
	}
	tensors := single.Workers()[0].Engine().Store.Len()
	pred := dist.ScaleFactor(
		dist.Measured(workers, stepSeconds, gradBytes, memBandwidth, tensors), m.BatchSize)

	// Barriered anchor: same data, same worker count, per-round barrier.
	sync := mk(0)
	syncRes, err := sync.Run(steps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dist bench: barriered anchor: %v\n", err)
		os.Exit(1)
	}
	localSteps := float64(workers * steps)
	syncItems := localSteps * float64(m.ItemsPerStep) / syncRes.Elapsed.Seconds()
	syncLoss := ps.TailMean(syncRes.Losses)

	fmt.Printf("model %s: FREE-RUNNING %d workers, %d shards, %s, per-worker batch %d, device time %v\n",
		m.Name, workers, o.shards, optName(o.optimizer), m.BatchSize, o.deviceTime)
	fmt.Printf("barriered anchor: %.1f items/s, final loss %.4f (staleness bound trivially satisfied)\n\n",
		syncItems, syncLoss)
	fmt.Printf("%10s %14s %12s %12s %8s %9s\n",
		"staleness", "items/s", "vs anchor", "final loss", "stale", "backoffs")

	rep := distReport{
		Mode: "dist", Model: m.Name, Workers: workers, Optimizer: optName(o.optimizer),
		Barriered: &distPoint{Workers: workers, ItemsPerS: syncItems, FinalLoss: syncLoss,
			Push: psLatency(sync, "push"), Pull: psLatency(sync, "pull")},
	}
	for _, bound := range bounds {
		cluster := mk(bound)
		res, err := cluster.RunAsync(context.Background(), steps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dist bench: async staleness %d: %v\n", bound, err)
			os.Exit(1)
		}
		items := localSteps * float64(m.ItemsPerStep) / res.Elapsed.Seconds()
		loss := res.FinalLoss()
		fmt.Printf("%10d %14.1f %11.2fx %12.4f %8d %9d\n",
			bound, items, items/syncItems, loss, res.Stale, res.Backoffs)
		rep.Async = append(rep.Async, asyncDistPoint{
			Staleness: bound, ItemsPerS: items, FinalLoss: loss,
			StaleDrops: res.Stale, Backoffs: res.Backoffs,
			Push: psLatency(cluster, "push"), Pull: psLatency(cluster, "pull"),
		})
	}
	best := 0.0
	for _, a := range rep.Async {
		if s := a.ItemsPerS / syncItems; s > best {
			best = s
		}
	}
	fmt.Printf("\npredicted scaling efficiency at %d workers (internal/dist, overlap=true): %.2fx\n",
		workers, pred)
	fmt.Printf("best barrier-removal speedup %.2fx → implied per-step variation cv ≈ %.2f\n",
		best, dist.ImpliedStepCV(workers, best))
	fmt.Println("(dist.BarrierFactor: a barriered round waits for the slowest replica,")
	fmt.Println("~1 + cv*sqrt(2 ln N) of the mean step; free-running is bounded by the")
	fmt.Println("mean, with the staleness bound capping how far replicas may drift.)")
	if o.churn {
		rep.Churn = churnDistBench(o, m, ecfg, build, bounds[len(bounds)-1], rep.Async)
	}
	writeReport(o.jsonPath, rep)
}

// churnDistBench reruns the free-running measurement under the failure model:
// seeded wire faults (lost replies, duplicates, delays), one worker killed
// mid-run (silent death → lease expiry → elastic coverage redistribution →
// rejoin), and one shard killed and restored from its failover snapshot. The
// fault-free async point at the same staleness bound anchors the comparison;
// benchcheck gates the churn final loss within dist.max_churn_loss_ratio of
// that anchor.
func churnDistBench(o distOptions, m *models.Model, ecfg core.Config,
	build func(int, *core.Engine) (ps.StepFunc, error), bound int, async []asyncDistPoint) *churnDistPoint {
	workers, steps := o.maxWorkers, o.steps
	anchor := 0.0
	for _, a := range async {
		if a.Staleness == bound {
			anchor = a.FinalLoss
		}
	}
	cluster, err := ps.NewCluster(ps.ClusterConfig{
		Workers: workers, Shards: o.shards,
		LR:        serverLR(ecfg.LR, workers, o.optimizer),
		Staleness: bound, Optimizer: o.optimizer,
		Engine: ecfg, Build: build,
		LeaseTTL:      40 * time.Millisecond,
		SnapshotEvery: 4,
		// Budget×Max backoff capacity must comfortably exceed the shard
		// outage below, or workers exhaust their budgets mid-failover.
		Retry:  &ps.RetryPolicy{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond, Budget: 20},
		Faults: &ps.FaultPlan{Seed: 11, LostReply: 0.02, Dup: 0.02, Delay: 0.03, MaxDelay: 2 * time.Millisecond},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dist bench: churn cluster: %v\n", err)
		os.Exit(1)
	}
	if _, err := cluster.Run(o.warmup); err != nil {
		fmt.Fprintf(os.Stderr, "dist bench: churn warmup: %v\n", err)
		os.Exit(1)
	}
	killWorker, killShard := 0, 0
	if workers > 1 {
		killWorker = 1
	}
	if o.shards > 1 {
		killShard = 1
	}
	plan := ps.ChurnPlan{
		Workers: []ps.WorkerChurn{{Worker: killWorker, AtFrac: 0.3, Down: 150 * time.Millisecond}},
		Shards:  []ps.ShardChurn{{Shard: killShard, After: 100 * time.Millisecond, Down: 50 * time.Millisecond}},
	}
	res, err := cluster.RunAsyncChurn(context.Background(), steps, plan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dist bench: churn run: %v\n", err)
		os.Exit(1)
	}
	items := float64(workers*steps) * float64(m.ItemsPerStep) / res.Elapsed.Seconds()
	loss := res.FinalLoss()
	fmt.Printf("\nCHURN (staleness %d, seeded faults + kill schedule): %.1f items/s, final loss %.4f",
		bound, items, loss)
	if anchor > 0 {
		fmt.Printf(" (%.2fx of fault-free anchor %.4f)", loss/anchor, anchor)
	}
	fmt.Println()
	fmt.Printf("  worker kills/rejoins %d/%d, shard kills/failovers %d/%d, lost updates %d (bounded by snapshot cadence)\n",
		res.WorkerKills, res.WorkerRejoins, res.ShardKills, res.Failovers, res.LostUpdates)
	fmt.Printf("  retries %d, lease expiries %d, stale drops %d, injected faults %v\n",
		res.Retries, res.LeaseExpiries, res.Stale, res.Injected)
	return &churnDistPoint{
		Staleness: bound, ItemsPerS: items, FinalLoss: loss, AnchorFinalLoss: anchor,
		WorkerKills: res.WorkerKills, WorkerRejoins: res.WorkerRejoins,
		ShardKills: res.ShardKills, Failovers: res.Failovers,
		LostUpdates: res.LostUpdates, Retries: res.Retries,
		LeaseExpiries: res.LeaseExpiries, StaleDrops: res.Stale,
		Injected: res.Injected,
	}
}
