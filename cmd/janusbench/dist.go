package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/ps"
)

// memBandwidth is the assumed in-process parameter-transfer rate used to
// configure the analytical model for comparison with the measured run. The
// real transport is memory copies plus JSON-free in-process calls, far from
// the paper's 100 Gbps NICs; 2 GB/s is a deliberately conservative stand-in
// (payloads here are kilobytes, so the prediction is compute-dominated
// either way).
const memBandwidth = 2e9

// distBench measures REAL data-parallel scaling on the parameter-server
// runtime (internal/ps) and prints it beside the internal/dist analytical
// prediction configured from the same measured profile — turning the
// Figure 8 simulator into a checkable claim.
//
// deviceTime simulates per-step accelerator execution (the same DESIGN.md §5
// calibration idea behind OpDelay): the paper's Figure 8 testbed is
// GPU-bound, with the host only coordinating, so each local step sleeps
// deviceTime after its real forward/backward math. Gradient pushes issued
// during backprop complete during that window — the compute/communication
// overlap the figure measures. Pass 0 for a fully host-bound measurement
// (which cannot scale beyond the machine's core count).
func distBench(modelName string, maxWorkers, shards, warmup, steps int, deviceTime time.Duration) {
	m, err := models.Get(modelName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dist bench: %v\n", err)
		os.Exit(1)
	}
	ecfg := core.DefaultJanusConfig()
	ecfg.Workers = 1 // scale across replicas, not inside one graph executor
	ecfg.ProfileIters = 2
	ecfg.Seed = 42
	ecfg.PyOverheadNs = -1
	ecfg.LR = 0.05

	type point struct {
		workers    int
		stepsPerS  float64 // aggregate local steps/second
		throughput float64 // aggregate items/second
		stale      int64
	}
	var pts []point
	var gradBytes float64
	var tensors int
	counts := []int{1}
	for w := 2; w <= maxWorkers; w *= 2 {
		counts = append(counts, w)
	}
	for _, w := range counts {
		cluster, err := ps.NewCluster(ps.ClusterConfig{
			Workers: w,
			Shards:  shards,
			// Linear LR scaling keeps the optimization trajectory comparable
			// across cluster sizes (gradients are averaged server-side).
			LR:     ecfg.LR * float64(w),
			Engine: ecfg,
			Build: func(_ int, e *core.Engine) (ps.StepFunc, error) {
				inst, err := m.Build(e, ecfg.Seed)
				if err != nil {
					return nil, err
				}
				return func(i int) (float64, error) {
					loss, err := inst.Step(i)
					if deviceTime > 0 {
						time.Sleep(deviceTime)
					}
					return loss, err
				}, nil
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dist bench: %d workers: %v\n", w, err)
			os.Exit(1)
		}
		if _, err := cluster.Run(warmup); err != nil {
			fmt.Fprintf(os.Stderr, "dist bench: warmup: %v\n", err)
			os.Exit(1)
		}
		res, err := cluster.Run(steps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dist bench: measure: %v\n", err)
			os.Exit(1)
		}
		elapsed := res.Elapsed.Seconds()
		if elapsed <= 0 {
			elapsed = 1e-9
		}
		localSteps := float64(w * steps)
		pts = append(pts, point{
			workers:    w,
			stepsPerS:  localSteps / elapsed,
			throughput: localSteps * float64(m.ItemsPerStep) / elapsed,
			stale:      res.Stale,
		})
		if w == 1 {
			// Profile for the analytical model: actual per-step gradient
			// payload and tensor count from the worker's own accounting.
			ws := cluster.Workers()[0].Stats()
			if ws.Steps > 0 {
				gradBytes = float64(ws.BytesPushed) / float64(ws.Steps)
			}
			tensors = cluster.Workers()[0].Engine().Store.Len()
		}
	}

	base := pts[0]
	singleStep := 1 / base.stepsPerS
	fmt.Printf("model %s: parameter server with %d shards, per-worker batch %d, device time %v\n",
		m.Name, shards, m.BatchSize, deviceTime)
	fmt.Printf("single-worker profile: %.2f ms/step, %.1f KB gradients/step across %d tensors\n\n",
		singleStep*1e3, gradBytes/1e3, tensors)
	fmt.Printf("%8s %14s %14s %12s %12s %8s\n",
		"workers", "items/s", "measured eff", "predicted", "Δ(meas-pred)", "stale")
	for _, p := range pts {
		eff := p.throughput / (float64(p.workers) * base.throughput)
		pred := dist.ScaleFactor(
			dist.Measured(p.workers, singleStep, gradBytes, memBandwidth, tensors), m.BatchSize)
		fmt.Printf("%8d %14.1f %13.2fx %11.2fx %+11.2f %8d\n",
			p.workers, p.throughput, eff, pred, eff-pred, p.stale)
	}
	if len(pts) >= 3 {
		speedup := pts[2].throughput / pts[1].throughput
		fmt.Printf("\n%d→%d workers speedup: %.2fx (acceptance bar: > 1.0x)\n",
			pts[1].workers, pts[2].workers, speedup)
	}
	fmt.Println("\nMeasured: in-process ps.Cluster (real gradient exchange, per-tensor")
	fmt.Println("streaming overlapping backprop; host math real, device execution")
	fmt.Println("simulated by -device-time as in DESIGN notes). Predicted: internal/dist")
	fmt.Println("configured from the measured single-worker profile (overlap=true). The")
	fmt.Println("analytical model ignores host-side coordination cost (serialized on")
	fmt.Printf("this machine's %d core(s)) and shard-lock contention, so the gap Δ is\n", runtime.NumCPU())
	fmt.Println("the model's unexplained residual.")
}
