// Command janusd serves minipy models over HTTP+JSON. It fronts the
// internal/serve session pool: N JANUS engine workers share one parameter
// store and one compiled-graph cache, and concurrent inference requests for
// the same function signature are batched into single graph executions.
//
//	janusd -addr :8080 -pool 8 -max-batch 8 -batch-latency 2ms \
//	       -program model.py
//
// Endpoints (all JSON):
//
//	POST /v1/load     {"program": "..."}                 load/extend the model
//	POST /v1/sessions {}                                 open a client session
//	DELETE /v1/sessions/{id}                             free a session
//	POST /v1/run      {"session"?, "program": "..."}     run an ad-hoc script
//	POST /v1/call     {"session"?, "fn", "args": [...]}  call a loaded function
//	POST /v1/call     {"fn", "feeds": {"x": [[...]]}}    batched named-feed call
//	POST /v1/infer    {"session"?, "fn", "x": [[...]]}   batched inference
//	GET  /v1/stats                                       engine + serving stats
//	GET  /v1/cache                                       graph-cache inspection
//	GET  /healthz                                        liveness
//
// Session state is session-affine: globals bound by a session's /v1/run
// scripts follow the session across workers (sessionless /v1/run and
// /v1/call are stateless and fully parallel). Under overload requests fail
// fast with 429 (queue full) or 503 (worker wait timeout); unknown
// functions are 404 and client-abandoned executions are 499.
//
// Example:
//
//	curl -s localhost:8080/v1/infer \
//	     -d '{"fn": "predict", "x": [[1.0, 2.0]]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	janus "repro"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pool := flag.Int("pool", 0, "pool size: engine workers serving concurrent requests (default 4)")
	workers := flag.Int("workers", 0, "deprecated alias for -pool")
	engineWorkers := flag.Int("engine-workers", 0, "per-graph executor parallelism inside one request (default 4)")
	maxBatch := flag.Int("max-batch", 8, "max inference requests coalesced per batch")
	batchLatency := flag.Duration("batch-latency", 2*time.Millisecond, "max wait for batch-mates")
	maxQueue := flag.Int("max-queue", 0, "max requests waiting for a worker before 429 (0 = 16x workers)")
	acquireTimeout := flag.Duration("acquire-timeout", 10*time.Second, "max wait for a worker before 503")
	cacheCapacity := flag.Int("cache-capacity", 0, "max cached compiled graphs, LRU-evicted (0 = unlimited)")
	bucketBatch := flag.Bool("bucket-batches", false, "pad batched executions to power-of-two row buckets so variable batch sizes share compiled graphs")
	maxBucket := flag.Int("max-bucket", 64, "largest padded row bucket (rounded up to a power of two)")
	snapshotDir := flag.String("snapshot-dir", "", "directory for the compiled-graph snapshot artifact: loaded at boot (after -program), flushed periodically and on shutdown")
	snapshotInterval := flag.Duration("snapshot-interval", time.Minute, "how often to flush the snapshot artifact (with -snapshot-dir)")
	program := flag.String("program", "", "minipy program to load at startup")
	engine := flag.String("engine", "janus", "engine: janus|imperative|trace")
	lr := flag.Float64("lr", 0.1, "learning rate for optimize()")
	profileIters := flag.Int("profile-iters", 3, "profiling iterations before conversion")
	seed := flag.Uint64("seed", 0, "RNG seed (0 = unseeded)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on shutdown")
	flag.Parse()

	poolSize := *pool
	if poolSize == 0 {
		poolSize = *workers
	}
	if poolSize == 0 {
		poolSize = 4
	}
	opts := janus.ServerOptions{
		PoolSize:       poolSize,
		MaxBatch:       *maxBatch,
		MaxLatency:     *batchLatency,
		MaxQueue:       *maxQueue,
		AcquireTimeout: *acquireTimeout,
		CacheCapacity:  *cacheCapacity,
		BucketBatch:    *bucketBatch,
		MaxBucket:      *maxBucket,
	}
	opts.Options.Workers = *engineWorkers
	opts.LearningRate = *lr
	opts.ProfileIterations = *profileIters
	opts.Seed = *seed
	switch *engine {
	case "janus":
		opts.Engine = janus.EngineJanus
	case "imperative":
		opts.Engine = janus.EngineImperative
	case "trace":
		opts.Engine = janus.EngineTrace
	default:
		fmt.Fprintf(os.Stderr, "janusd: unknown engine %q\n", *engine)
		os.Exit(2)
	}

	srv := janus.NewServer(opts)
	if *program != "" {
		src, err := os.ReadFile(*program)
		if err != nil {
			log.Fatalf("janusd: read program: %v", err)
		}
		out, err := srv.Load(string(src))
		if err != nil {
			log.Fatalf("janusd: load program: %v", err)
		}
		if out != "" {
			fmt.Print(out)
		}
		log.Printf("janusd: loaded %s", *program)
	}

	// Warm boot: restore the compiled-graph snapshot after the program is
	// loaded (artifact function identity is resolved against the loaded
	// sources). A missing or rejected artifact just means a cold boot.
	var snapPath string
	stopFlush := make(chan struct{})
	if *snapshotDir != "" {
		snapPath = janus.SnapshotPath(*snapshotDir)
		if n, err := srv.LoadSnapshot(snapPath); err != nil {
			log.Printf("janusd: snapshot: %v (serving cold)", err)
		} else {
			log.Printf("janusd: warm boot: restored %d compiled graphs from %s", n, snapPath)
		}
		go func() {
			tick := time.NewTicker(*snapshotInterval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if n, err := srv.SaveSnapshot(snapPath); err != nil {
						log.Printf("janusd: snapshot flush: %v", err)
					} else {
						log.Printf("janusd: snapshot flushed (%d compiled graphs)", n)
					}
				case <-stopFlush:
					return
				}
			}
		}()
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("janusd: pprof enabled at /debug/pprof/")
	}

	hs := &http.Server{Addr: *addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("janusd: serving on %s (pool %d, batch %d / %v)",
			*addr, poolSize, *maxBatch, *batchLatency)
		errCh <- hs.ListenAndServe()
	}()

	// Graceful shutdown: stop accepting on SIGINT/SIGTERM, drain in-flight
	// requests up to -drain-timeout, then flush a final metrics snapshot to
	// stderr so a terminated run still leaves its counters behind.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case sig := <-sigCh:
		log.Printf("janusd: %v: draining (up to %v)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("janusd: shutdown: %v", err)
		}
	}
	close(stopFlush)
	if snapPath != "" {
		// Final snapshot flush: whatever the pool compiled this run boots
		// the next replica warm.
		if n, err := srv.SaveSnapshot(snapPath); err != nil {
			log.Printf("janusd: final snapshot flush: %v", err)
		} else {
			log.Printf("janusd: final snapshot flushed (%d compiled graphs) to %s", n, snapPath)
		}
	}
	fmt.Fprintln(os.Stderr, "# janusd: final metrics snapshot")
	if err := srv.WriteMetrics(os.Stderr); err != nil {
		log.Printf("janusd: metrics flush: %v", err)
	}
}
