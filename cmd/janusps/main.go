// Command janusps runs the sharded parameter server for distributed
// data-parallel training (internal/ps): K logical parameter shards behind an
// HTTP+JSON protocol with versioned pulls and staleness-bounded gradient
// pushes, applying a configurable optimizer (SGD, momentum, or Adam)
// server-side with gradient averaging across workers. Optimizer state lives
// here, keyed by variable name, so workers stay stateless.
//
//	janusps -addr :8081 -shards 4 -lr 0.2 -optimizer adam -workers 4 -staleness 2
//
// Endpoints (all JSON; tensors are {"shape": [...], "data": [...]}):
//
//	GET  /ps/v1/shards                                         shard count
//	POST /ps/v1/pull  {"shard", "have"}                        versioned parameter fetch
//	POST /ps/v1/push  {"shard", "step", "grads"}               gradient push (409 = stale)
//	POST /ps/v1/init  {"params"}                               set-if-absent registration
//	GET  /ps/v1/stats                                          server counters
//	GET  /metrics                                              Prometheus text exposition
//	GET  /healthz                                              liveness
//
// Workers connect through the public handle API — janus.NewCluster with
// TrainOptions.ServerAddr pointed here — or directly with ps.NewClient /
// ps.Worker; see `janusbench -dist` for the in-process equivalent and
// README.md for the quickstart.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/ps"
)

func main() {
	addr := flag.String("addr", ":8081", "listen address")
	shards := flag.Int("shards", 4, "logical parameter shards")
	lr := flag.Float64("lr", 0.1, "server-side learning rate")
	optimizer := flag.String("optimizer", "sgd", "server-side optimizer: sgd, momentum, or adam")
	workers := flag.Int("workers", 1, "data-parallel replicas (gradients are averaged across them)")
	staleness := flag.Int("staleness", 2, "max worker-step lag before a push is rejected (-1 = unbounded)")
	leaseTTL := flag.Duration("lease-ttl", 2*time.Second, "worker lease TTL: a worker silent this long is expired and its data coverage redistributed")
	snapshotEvery := flag.Int("snapshot-every", 8, "take a shard failover snapshot every N applied pushes (negative disables)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on shutdown")
	flag.Parse()

	server, err := ps.NewServer(ps.Config{
		Shards: *shards, LR: *lr, Workers: *workers, Staleness: *staleness,
		Optimizer: *optimizer, LeaseTTL: *leaseTTL, SnapshotEvery: *snapshotEvery,
	})
	if err != nil {
		log.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", ps.NewHandler(server))
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("janusps: pprof enabled at /debug/pprof/")
	}

	hs := &http.Server{Addr: *addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("janusps: serving on %s (%d shards, lr %g, %s, %d workers, staleness %d)",
			*addr, *shards, *lr, *optimizer, *workers, *staleness)
		errCh <- hs.ListenAndServe()
	}()

	// Graceful shutdown: stop accepting on SIGINT/SIGTERM, drain in-flight
	// pushes/pulls up to -drain-timeout, then flush a final metrics
	// snapshot to stderr.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case sig := <-sigCh:
		log.Printf("janusps: %v: draining (up to %v)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("janusps: shutdown: %v", err)
		}
	}
	fmt.Fprintln(os.Stderr, "# janusps: final metrics snapshot")
	if err := server.Registry().WriteText(os.Stderr); err != nil {
		log.Printf("janusps: metrics flush: %v", err)
	}
}
