// Package obs is the runtime's observability substrate: a dependency-free
// metrics registry with allocation-free hot-path primitives (atomic
// counters, gauges, fixed-bucket histograms) plus request-scoped trace
// spans threaded through context.Context.
//
// Design constraints, in priority order:
//
//  1. Recording must be allocation-free and lock-free. Counter.Add and
//     Histogram.Observe are single atomic operations (plus a bounded
//     bucket search); neither takes a lock nor touches the heap, so they
//     are safe on the executor's zero-allocation replay path.
//  2. Registration is get-or-create and idempotent: the same
//     (name, labels) pair always returns the same instrument, so pool
//     workers sharing a Registry share series, and hot paths hold
//     resolved pointers instead of looking anything up.
//  3. Exposition is Prometheus text format (see prom.go), written on
//     demand from the live atomics — there is no background aggregation
//     goroutine and nothing to flush.
//
// Func-backed series (CounterFunc / GaugeFunc) adapt pre-existing atomic
// counters (tensor.Pool, exec.Stats) without rewriting their hot paths:
// the callback is read only at exposition time, and registering the same
// name from several components sums their callbacks into one series.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for Prometheus counter semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metricKind discriminates family exposition types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labelled instance inside a family.
type series struct {
	labels string // rendered `{k="v",...}` or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
	fns    []func() float64 // CounterFunc/GaugeFunc callbacks, summed
}

// family groups every series sharing one metric name (one HELP/TYPE block).
type family struct {
	name    string
	help    string
	kind    metricKind
	bounds  []float64 // histogram families only
	mu      sync.Mutex
	series  map[string]*series
	ordered []*series
}

// Registry holds metric families and renders them as Prometheus text.
// All methods are safe for concurrent use; instrument lookups take the
// registry lock, so resolve instruments once at construction time and
// keep the returned pointers for the hot path.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	ordered  []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry backs Default.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry (used when a component is not
// handed an explicit one).
func Default() *Registry { return defaultRegistry }

// renderLabels formats alternating key/value pairs as `{k="v",k2="v2"}`.
// Pairs are kept in caller order (callers pass stable orders, and the
// rendered string is the series identity).
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// familyFor returns (creating if needed) the family for name, checking the
// kind matches any prior registration.
func (r *Registry) familyFor(name, help string, kind metricKind, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, bounds: bounds,
			series: make(map[string]*series)}
		r.families[name] = f
		r.ordered = append(r.ordered, f)
		return f
	}
	if f.kind != kind {
		panic("obs: metric " + name + " re-registered with a different type")
	}
	return f
}

// seriesFor returns (creating if needed) the series for the rendered labels.
func (f *family) seriesFor(labels string, mk func() *series) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[labels]
	if s == nil {
		s = mk()
		s.labels = labels
		f.series[labels] = s
		f.ordered = append(f.ordered, s)
	}
	return s
}

// Counter returns the counter for (name, labels), creating it on first use.
// labels are alternating key/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	f := r.familyFor(name, help, kindCounter, nil)
	s := f.seriesFor(renderLabels(labels), func() *series { return &series{c: &Counter{}} })
	return s.c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	f := r.familyFor(name, help, kindGauge, nil)
	s := f.seriesFor(renderLabels(labels), func() *series { return &series{g: &Gauge{}} })
	return s.g
}

// Histogram returns the histogram for (name, labels), creating it on first
// use. The bucket bounds of the first registration win for the whole
// family (one le= schema per metric name).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	f := r.familyFor(name, help, kindHistogram, bounds)
	s := f.seriesFor(renderLabels(labels), func() *series {
		return &series{h: newHistogram(f.bounds)}
	})
	return s.h
}

// CounterFunc registers a callback-backed counter series. Registering the
// same (name, labels) again ADDS the callback: the exposed value is the
// sum of every registered callback, so per-engine components (tensor
// pools, executor stats) merge into one pool-wide series.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	f := r.familyFor(name, help, kindCounterFunc, nil)
	s := f.seriesFor(renderLabels(labels), func() *series { return &series{} })
	f.mu.Lock()
	s.fns = append(s.fns, fn)
	f.mu.Unlock()
}

// GaugeFunc registers a callback-backed gauge series with the same
// additive-merge semantics as CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	f := r.familyFor(name, help, kindGaugeFunc, nil)
	s := f.seriesFor(renderLabels(labels), func() *series { return &series{} })
	f.mu.Lock()
	s.fns = append(s.fns, fn)
	f.mu.Unlock()
}

// SeriesValue is one (labels, value) pair read back from the registry.
type SeriesValue struct {
	// Labels is the rendered label string, e.g. `{pass="cse"}` ("" when
	// the series is unlabelled).
	Labels string
	// Value is the current value (callback-backed series are summed).
	Value float64
}

// Series snapshots every series of the named family (nil if the family
// does not exist, or is a histogram — use the Histogram handle for those).
func (r *Registry) Series(name string) []SeriesValue {
	r.mu.Lock()
	f := r.families[name]
	r.mu.Unlock()
	if f == nil || f.kind == kindHistogram {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]SeriesValue, 0, len(f.ordered))
	for _, s := range f.ordered {
		out = append(out, SeriesValue{Labels: s.labels, Value: seriesValue(f.kind, s)})
	}
	return out
}

// LabelValue extracts the value of one label key from a rendered label
// string (as returned in SeriesValue.Labels); "" if absent.
func LabelValue(labels, key string) string {
	i := strings.Index(labels, key+`="`)
	if i < 0 {
		return ""
	}
	rest := labels[i+len(key)+2:]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return rest[:j]
}

func seriesValue(kind metricKind, s *series) float64 {
	switch kind {
	case kindCounter:
		return float64(s.c.Value())
	case kindGauge:
		return float64(s.g.Value())
	default:
		var sum float64
		for _, fn := range s.fns {
			sum += fn()
		}
		return sum
	}
}

// snapshotFamilies returns families sorted by name with series sorted by
// labels — the deterministic exposition order.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, len(r.ordered))
	copy(fams, r.ordered)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries returns the family's series sorted by rendered labels.
func (f *family) sortedSeries() []*series {
	f.mu.Lock()
	ss := make([]*series, len(f.ordered))
	copy(ss, f.ordered)
	f.mu.Unlock()
	sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
	return ss
}
