package obs

import (
	"context"
	"sync"
	"time"
)

// Span is one timed phase inside a Trace. Start is the offset from the
// trace's begin time, so spans order and nest without wall-clock math.
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_us"`
	Dur   time.Duration `json:"dur_us"`
}

// Trace collects the per-phase breakdown of one request: where a Call
// spent its time across convert → compile → memory-plan → execute. A
// Trace is created by the request entry point (HTTP handler, benchmark
// driver), threaded through context.Context, and appended to by whatever
// layers it reaches. All methods are nil-safe: instrumented code calls
// TraceFrom(ctx).StartSpan(...) unconditionally, and when no trace rides
// the context the whole exchange is a nil check — no clock read, no
// allocation.
type Trace struct {
	// ID identifies the request (e.g. "req-42").
	ID string
	// Begin is when the trace started.
	Begin time.Time

	mu    sync.Mutex
	end   time.Time
	spans []Span
	notes [][2]string
}

// NewTrace starts a trace now.
func NewTrace(id string) *Trace {
	return &Trace{ID: id, Begin: time.Now()}
}

// traceKey is the context key for the active trace.
type traceKey struct{}

// ContextWithTrace attaches t to the context.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace riding ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// SpanTimer is an in-flight span; call End (or EndTo) exactly once. The
// zero value (from a nil trace) is inert.
type SpanTimer struct {
	t     *Trace
	name  string
	start time.Time
}

// StartSpan opens a named phase timer. On a nil trace it returns an inert
// timer without reading the clock.
func (t *Trace) StartSpan(name string) SpanTimer {
	if t == nil {
		return SpanTimer{}
	}
	return SpanTimer{t: t, name: name, start: time.Now()}
}

// End closes the span and records it on the trace.
func (s SpanTimer) End() {
	if s.t == nil {
		return
	}
	now := time.Now()
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, Span{
		Name:  s.name,
		Start: s.start.Sub(s.t.Begin),
		Dur:   now.Sub(s.start),
	})
	s.t.mu.Unlock()
}

// AddSpan records an externally timed phase.
func (t *Trace) AddSpan(name string, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: start.Sub(t.Begin), Dur: dur})
	t.mu.Unlock()
}

// Annotate records a key/value note (path taken, cache hit/miss, batch
// size) on the trace.
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.notes = append(t.notes, [2]string{key, value})
	t.mu.Unlock()
}

// Finish stamps the trace's end time (idempotent: first call wins).
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.end.IsZero() {
		t.end = time.Now()
	}
	t.mu.Unlock()
}

// TraceSnapshot is the JSON-friendly view of a finished trace.
type TraceSnapshot struct {
	ID          string            `json:"id"`
	Begin       time.Time         `json:"begin"`
	TotalUS     float64           `json:"total_us"`
	Annotations map[string]string `json:"annotations,omitempty"`
	Spans       []SpanSnapshot    `json:"spans"`
}

// SpanSnapshot is one phase in a TraceSnapshot, in microseconds.
type SpanSnapshot struct {
	Name    string  `json:"name"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
}

// Snapshot renders the trace for serialization.
func (t *Trace) Snapshot() TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.end
	if end.IsZero() {
		end = time.Now()
	}
	snap := TraceSnapshot{
		ID:      t.ID,
		Begin:   t.Begin,
		TotalUS: float64(end.Sub(t.Begin)) / float64(time.Microsecond),
		Spans:   make([]SpanSnapshot, len(t.spans)),
	}
	for i, sp := range t.spans {
		snap.Spans[i] = SpanSnapshot{
			Name:    sp.Name,
			StartUS: float64(sp.Start) / float64(time.Microsecond),
			DurUS:   float64(sp.Dur) / float64(time.Microsecond),
		}
	}
	if len(t.notes) > 0 {
		snap.Annotations = make(map[string]string, len(t.notes))
		for _, kv := range t.notes {
			snap.Annotations[kv[0]] = kv[1]
		}
	}
	return snap
}

// TraceLog is a bounded ring of recently finished traces, newest first in
// Snapshot. The serving layer records every traced request here so
// GET /v1/trace can dump a per-phase breakdown without any sampling
// pipeline.
type TraceLog struct {
	mu   sync.Mutex
	buf  []*Trace
	next int
	full bool
}

// NewTraceLog returns a ring holding the last n traces (n >= 1).
func NewTraceLog(n int) *TraceLog {
	if n < 1 {
		n = 1
	}
	return &TraceLog{buf: make([]*Trace, n)}
}

// Add records a finished trace.
func (l *TraceLog) Add(t *Trace) {
	if l == nil || t == nil {
		return
	}
	l.mu.Lock()
	l.buf[l.next] = t
	l.next++
	if l.next == len(l.buf) {
		l.next, l.full = 0, true
	}
	l.mu.Unlock()
}

// Snapshot returns up to max traces, newest first (max <= 0 means all).
func (l *TraceLog) Snapshot(max int) []TraceSnapshot {
	l.mu.Lock()
	n := l.next
	if l.full {
		n = len(l.buf)
	}
	traces := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		idx := (l.next - 1 - i + len(l.buf)) % len(l.buf)
		if l.buf[idx] != nil {
			traces = append(traces, l.buf[idx])
		}
	}
	l.mu.Unlock()
	if max > 0 && len(traces) > max {
		traces = traces[:max]
	}
	out := make([]TraceSnapshot, len(traces))
	for i, t := range traces {
		out[i] = t.Snapshot()
	}
	return out
}
