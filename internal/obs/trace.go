package obs

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span within its trace. IDs are allocated
// per-trace from 1; 0 means "no span" (a root span's Parent, or an
// absent span in a context).
type SpanID int32

// Span is one timed phase inside a Trace. Start is the offset from the
// trace's begin time, so spans order and nest without wall-clock math.
// Parent links the span into the trace's tree; 0 marks a root.
type Span struct {
	ID     SpanID        `json:"id"`
	Parent SpanID        `json:"parent"`
	Name   string        `json:"name"`
	Start  time.Duration `json:"start_us"`
	Dur    time.Duration `json:"dur_us"`
}

// Trace collects the per-phase breakdown of one request: where a Call
// spent its time across convert → compile → memory-plan → execute, and —
// via Export/Graft — what remote processes did on its behalf. A Trace is
// created by the request entry point (HTTP handler, benchmark driver),
// threaded through context.Context, and appended to by whatever layers
// it reaches. All methods are nil-safe: instrumented code calls
// obs.StartSpan(ctx, ...) unconditionally, and when no trace rides the
// context the whole exchange is a nil check — no clock read, no
// allocation.
type Trace struct {
	// ID identifies the request (e.g. "req-42"). Propagated across
	// process boundaries in the Janus-Trace header so remote spans can
	// be matched back to the originating request.
	ID string
	// Begin is when the trace started.
	Begin time.Time

	// nextSpan allocates span IDs; grafted remote spans are renumbered
	// from the same counter so IDs stay unique within the trace.
	nextSpan atomic.Int32

	mu    sync.Mutex
	end   time.Time
	spans []Span
	notes [][2]string
}

// NewTrace starts a trace now.
func NewTrace(id string) *Trace {
	return &Trace{ID: id, Begin: time.Now()}
}

// traceKey is the context key for the active trace.
type traceKey struct{}

// spanKey is the context key for the active span ID (parent for spans
// started below this context).
type spanKey struct{}

// ContextWithTrace attaches t to the context.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace riding ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// ContextWithSpan marks id as the current span: spans started via
// StartSpan(ctx, ...) below this context become its children.
func ContextWithSpan(ctx context.Context, id SpanID) context.Context {
	return context.WithValue(ctx, spanKey{}, id)
}

// SpanFrom returns the current span ID riding ctx, or 0.
func SpanFrom(ctx context.Context) SpanID {
	if ctx == nil {
		return 0
	}
	id, _ := ctx.Value(spanKey{}).(SpanID)
	return id
}

// StartSpan opens a span as a child of the current span on ctx (a root
// span if there is none). When no trace rides the context it returns an
// inert timer after a single context lookup — no clock read, no
// allocation — so instrumented code calls it unconditionally.
func StartSpan(ctx context.Context, name string) SpanTimer {
	t := TraceFrom(ctx)
	if t == nil {
		return SpanTimer{}
	}
	return t.StartSpanChild(name, SpanFrom(ctx))
}

// SpanTimer is an in-flight span; call End exactly once. The zero value
// (from a nil trace) is inert.
type SpanTimer struct {
	t      *Trace
	name   string
	start  time.Time
	id     SpanID
	parent SpanID
}

// ID returns the span's ID (0 for an inert timer). The ID is allocated
// at start, so children and remote grafts can reference a span before
// it ends.
func (s SpanTimer) ID() SpanID { return s.id }

// Trace returns the trace the timer records into, or nil.
func (s SpanTimer) Trace() *Trace { return s.t }

// StartSpan opens a named root span. On a nil trace it returns an inert
// timer without reading the clock.
func (t *Trace) StartSpan(name string) SpanTimer {
	return t.StartSpanChild(name, 0)
}

// StartSpanChild opens a named span under parent (0 for a root). On a
// nil trace it returns an inert timer without reading the clock.
func (t *Trace) StartSpanChild(name string, parent SpanID) SpanTimer {
	if t == nil {
		return SpanTimer{}
	}
	return SpanTimer{
		t:      t,
		name:   name,
		start:  time.Now(),
		id:     SpanID(t.nextSpan.Add(1)),
		parent: parent,
	}
}

// End closes the span and records it on the trace.
func (s SpanTimer) End() {
	if s.t == nil {
		return
	}
	now := time.Now()
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, Span{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start.Sub(s.t.Begin),
		Dur:    now.Sub(s.start),
	})
	s.t.mu.Unlock()
}

// AddSpan records an externally timed root phase and returns its ID.
func (t *Trace) AddSpan(name string, start time.Time, dur time.Duration) SpanID {
	return t.AddSpanChild(name, 0, start, dur)
}

// AddSpanChild records an externally timed phase under parent and
// returns its ID (0 on a nil trace).
func (t *Trace) AddSpanChild(name string, parent SpanID, start time.Time, dur time.Duration) SpanID {
	if t == nil {
		return 0
	}
	id := SpanID(t.nextSpan.Add(1))
	t.mu.Lock()
	t.spans = append(t.spans, Span{
		ID:     id,
		Parent: parent,
		Name:   name,
		Start:  start.Sub(t.Begin),
		Dur:    dur,
	})
	t.mu.Unlock()
	return id
}

// Annotate records a key/value note (path taken, cache hit/miss, batch
// size) on the trace.
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.notes = append(t.notes, [2]string{key, value})
	t.mu.Unlock()
}

// Finish stamps the trace's end time (idempotent: first call wins).
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.end.IsZero() {
		t.end = time.Now()
	}
	t.mu.Unlock()
}

// WireSpan is the cross-process form of a span: offsets relative to the
// remote trace's own begin time. A server handling a Janus-Trace'd
// request records its spans into a local Trace and ships Export() back
// in the response payload; the client Grafts them under its RPC span.
type WireSpan struct {
	ID      SpanID  `json:"id"`
	Parent  SpanID  `json:"parent,omitempty"`
	Name    string  `json:"name"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
}

// Export renders the trace's spans for shipping across a process
// boundary (nil-safe; returns nil when there is nothing to ship).
func (t *Trace) Export() []WireSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == 0 {
		return nil
	}
	out := make([]WireSpan, len(t.spans))
	for i, sp := range t.spans {
		out[i] = WireSpan{
			ID:      sp.ID,
			Parent:  sp.Parent,
			Name:    sp.Name,
			StartUS: float64(sp.Start) / float64(time.Microsecond),
			DurUS:   float64(sp.Dur) / float64(time.Microsecond),
		}
	}
	return out
}

// Graft merges a remote span tree into t under parent. Remote IDs are
// renumbered from t's counter so they stay unique; remote roots — and
// orphans whose parent never arrived — attach under parent. Remote
// start offsets are re-anchored at the local instant `at` (when the RPC
// began), which tolerates clock skew between processes: the remote
// subtree keeps its internal shape but is positioned on the local
// timeline. Nil-safe in both receiver and input.
func (t *Trace) Graft(parent SpanID, at time.Time, spans []WireSpan) {
	if t == nil || len(spans) == 0 {
		return
	}
	remap := make(map[SpanID]SpanID, len(spans))
	for _, sp := range spans {
		if _, dup := remap[sp.ID]; !dup {
			remap[sp.ID] = SpanID(t.nextSpan.Add(1))
		}
	}
	base := at.Sub(t.Begin)
	t.mu.Lock()
	for _, sp := range spans {
		p, ok := remap[sp.Parent]
		if sp.Parent == 0 || !ok {
			p = parent
		}
		t.spans = append(t.spans, Span{
			ID:     remap[sp.ID],
			Parent: p,
			Name:   sp.Name,
			Start:  base + time.Duration(sp.StartUS*float64(time.Microsecond)),
			Dur:    time.Duration(sp.DurUS * float64(time.Microsecond)),
		})
	}
	t.mu.Unlock()
}

// TraceHeader is the HTTP header carrying trace propagation across
// process boundaries, in the form "<traceID>;<parentSpanID>".
const TraceHeader = "Janus-Trace"

// FormatTraceHeader renders the Janus-Trace header value for an
// outbound request whose remote work should hang under parent. Returns
// "" when no trace is active (callers skip setting the header).
func FormatTraceHeader(t *Trace, parent SpanID) string {
	if t == nil {
		return ""
	}
	return t.ID + ";" + strconv.Itoa(int(parent))
}

// ParseTraceHeader parses a Janus-Trace header value. ok is false on an
// absent or malformed value; a missing parent defaults to 0.
func ParseTraceHeader(h string) (id string, parent SpanID, ok bool) {
	if h == "" {
		return "", 0, false
	}
	id = h
	if i := strings.LastIndexByte(h, ';'); i >= 0 {
		id = h[:i]
		if n, err := strconv.Atoi(h[i+1:]); err == nil {
			parent = SpanID(n)
		}
	}
	if id == "" {
		return "", 0, false
	}
	return id, parent, true
}

// TraceSnapshot is the JSON-friendly view of a finished trace.
type TraceSnapshot struct {
	ID          string            `json:"id"`
	Begin       time.Time         `json:"begin"`
	TotalUS     float64           `json:"total_us"`
	Annotations map[string]string `json:"annotations,omitempty"`
	Spans       []SpanSnapshot    `json:"spans"`
}

// SpanSnapshot is one phase in a TraceSnapshot, in microseconds. Parent
// is 0 for roots; consumers rebuild the tree by grouping on it.
type SpanSnapshot struct {
	ID      SpanID  `json:"id"`
	Parent  SpanID  `json:"parent,omitempty"`
	Name    string  `json:"name"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
}

// Snapshot renders the trace for serialization.
func (t *Trace) Snapshot() TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.end
	if end.IsZero() {
		end = time.Now()
	}
	snap := TraceSnapshot{
		ID:      t.ID,
		Begin:   t.Begin,
		TotalUS: float64(end.Sub(t.Begin)) / float64(time.Microsecond),
		Spans:   make([]SpanSnapshot, len(t.spans)),
	}
	for i, sp := range t.spans {
		snap.Spans[i] = SpanSnapshot{
			ID:      sp.ID,
			Parent:  sp.Parent,
			Name:    sp.Name,
			StartUS: float64(sp.Start) / float64(time.Microsecond),
			DurUS:   float64(sp.Dur) / float64(time.Microsecond),
		}
	}
	if len(t.notes) > 0 {
		snap.Annotations = make(map[string]string, len(t.notes))
		for _, kv := range t.notes {
			snap.Annotations[kv[0]] = kv[1]
		}
	}
	return snap
}

// TraceLog is a bounded ring of recently finished traces, newest first in
// Snapshot. The serving layer records every traced request here so
// GET /v1/trace can dump a per-phase breakdown without any sampling
// pipeline.
type TraceLog struct {
	mu   sync.Mutex
	buf  []*Trace
	next int
	full bool
}

// NewTraceLog returns a ring holding the last n traces (n >= 1).
func NewTraceLog(n int) *TraceLog {
	if n < 1 {
		n = 1
	}
	return &TraceLog{buf: make([]*Trace, n)}
}

// Add records a finished trace.
func (l *TraceLog) Add(t *Trace) {
	if l == nil || t == nil {
		return
	}
	l.mu.Lock()
	l.buf[l.next] = t
	l.next++
	if l.next == len(l.buf) {
		l.next, l.full = 0, true
	}
	l.mu.Unlock()
}

// Snapshot returns up to max traces, newest first (max <= 0 means all).
func (l *TraceLog) Snapshot(max int) []TraceSnapshot {
	l.mu.Lock()
	n := l.next
	if l.full {
		n = len(l.buf)
	}
	traces := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		idx := (l.next - 1 - i + len(l.buf)) % len(l.buf)
		if l.buf[idx] != nil {
			traces = append(traces, l.buf[idx])
		}
	}
	l.mu.Unlock()
	if max > 0 && len(traces) > max {
		traces = traces[:max]
	}
	out := make([]TraceSnapshot, len(traces))
	for i, t := range traces {
		out[i] = t.Snapshot()
	}
	return out
}
