package obs

import (
	"testing"
	"time"
)

// BenchmarkClockRead prices one time.Now() on this host; the per-node
// profiler budget in DESIGN.md §7 is derived from it.
func BenchmarkClockRead(b *testing.B) {
	b.ReportAllocs()
	var sink time.Time
	for i := 0; i < b.N; i++ {
		sink = time.Now()
	}
	_ = sink
}
