package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram with lock-free Observe. Bucket
// bounds are set at construction (typically exponential — see ExpBuckets);
// observations do one bounded binary search plus two atomic adds and a
// CAS-loop float accumulation, and never allocate.
type Histogram struct {
	bounds  []float64      // ascending upper bounds; implicit +Inf bucket after
	counts  []atomic.Int64 // len(bounds)+1
	total   atomic.Int64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// NewHistogram returns a standalone histogram (outside any registry) —
// used by benchmarks and tests.
func NewHistogram(bounds []float64) *Histogram { return newHistogram(bounds) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; index len(bounds) is +Inf.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Since records the time elapsed since t0 in seconds.
func (h *Histogram) Since(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the bucket containing the rank. The estimate is within one bucket
// bound of the exact sample quantile: both lie in the same bucket, whose
// width bounds the error. Values beyond the last finite bound are clamped
// to it. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: clamp to the largest finite bound.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshot reads the cumulative bucket counts, count and sum (for
// exposition; not atomic across buckets, which Prometheus tolerates).
func (h *Histogram) snapshot() (cum []int64, count int64, sum float64) {
	cum = make([]int64, len(h.counts))
	var c int64
	for i := range h.counts {
		c += h.counts[i].Load()
		cum[i] = c
	}
	return cum, h.total.Load(), h.Sum()
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start (start, start*factor, ...).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: invalid ExpBuckets")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("obs: invalid LinearBuckets")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// DefBuckets covers latencies from 1µs to ~8.4s in powers of two — wide
// enough for a sub-microsecond kernel and a multi-second cold conversion
// in the same schema.
var DefBuckets = ExpBuckets(1e-6, 2, 24)

// SizeBuckets covers counts/sizes 1..4096 in powers of two (batch sizes,
// queue depths).
var SizeBuckets = ExpBuckets(1, 2, 13)

// ByteBuckets covers payload sizes 256B..~1GB in powers of four.
var ByteBuckets = ExpBuckets(256, 4, 12)

// StepBuckets covers small integer distances 0..32 (observed staleness).
var StepBuckets = []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32}
