package obs_test

import (
	"bytes"
	"context"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/minipy"
	"repro/internal/obs"
	"repro/internal/ps"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/vars"
)

// TestRegistryCrossSubsystemHammer drives one shared registry from every
// subsystem that writes to it in production — a standalone engine, a
// serving pool, and a parameter server — while a scraper renders the text
// exposition concurrently. Run under -race (CI does), it pins the claim
// that counters, histograms, and func-backed series tolerate concurrent
// writers from engine + serve + ps goroutines with readers in flight.
func TestRegistryCrossSubsystemHammer(t *testing.T) {
	const src = `
def predict(x):
    w = variable("hammer/w", [4, 4])
    return relu(matmul(x, w))
`
	reg := obs.NewRegistry()

	// One engine per writer goroutine: engines are single-threaded by
	// design (the serve pool exists to serialize them); what's shared —
	// and hammered — is the registry.
	ecfg := core.DefaultJanusConfig()
	ecfg.ProfileIters = 1
	ecfg.PyOverheadNs = -1
	ecfg.Seed = 7
	ecfg.Obs = reg
	engines := make([]*core.Engine, 2)
	for i := range engines {
		engines[i] = core.NewEngine(ecfg)
		if err := engines[i].Run(src); err != nil {
			t.Fatalf("engine setup: %v", err)
		}
	}

	pcfg := serve.Config{Workers: 2, Engine: ecfg}
	pool := serve.NewPool(pcfg)
	if _, err := pool.Load(src); err != nil {
		t.Fatalf("pool load: %v", err)
	}

	psrv, err := ps.NewServer(ps.Config{Shards: 2, Workers: 2, Staleness: -1, Obs: reg})
	if err != nil {
		t.Fatalf("ps setup: %v", err)
	}
	w := tensor.Zeros(4, 4)
	if err := psrv.InitVars(context.Background(), map[string]*tensor.Tensor{"hammer/w": w}); err != nil {
		t.Fatalf("ps init: %v", err)
	}

	const iters = 60
	rng := tensor.NewRNG(3)
	x := rng.Randn(2, 4)
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(4)
		go func(eng *core.Engine) {
			defer wg.Done()
			args := []minipy.Value{minipy.NewTensor(x)}
			for i := 0; i < iters; i++ {
				if _, err := eng.Call("predict", args); err != nil {
					t.Errorf("engine call: %v", err)
					return
				}
			}
		}(engines[g])
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := pool.CallNamed(context.Background(), "predict",
					map[string]*tensor.Tensor{"x": x}); err != nil {
					t.Errorf("pool call: %v", err)
					return
				}
			}
		}()
		go func(g int) {
			defer wg.Done()
			grad := tensor.Zeros(4, 4)
			for i := 0; i < iters; i++ {
				shard := vars.ShardOf("hammer/w", 2)
				if _, _, _, err := psrv.Pull(context.Background(), shard, -1); err != nil {
					t.Errorf("ps pull: %v", err)
					return
				}
				if _, err := psrv.PushGrad(context.Background(), shard, -1, int64(g*iters+i),
					map[string]*tensor.Tensor{"hammer/w": grad}); err != nil {
					t.Errorf("ps push: %v", err)
					return
				}
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := reg.WriteText(io.Discard); err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// The shared registry saw traffic from all three subsystems.
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatalf("final scrape: %v", err)
	}
	for _, fam := range []string{
		"janus_engine_phase_seconds", "janus_serve_requests_total", "janus_ps_pushes_total",
	} {
		if !strings.Contains(buf.String(), fam) {
			t.Errorf("family %s missing from exposition after hammer", fam)
		}
	}
}
