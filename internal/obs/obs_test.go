package obs

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- minimal Prometheus text parser (the golden-test harness) ---

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseProm parses Prometheus text exposition format strictly enough to
// golden-test our writer: every non-comment line must be
// `name[{k="v",...}] value`, TYPE lines must precede their samples, and
// label values must be quoted.
func parseProm(t *testing.T, text string) (samples []promSample, types map[string]string) {
	t.Helper()
	types = make(map[string]string)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator: %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" && valStr != "NaN" {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := series
		labels := map[string]string{}
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated labels: %q", ln+1, line)
			}
			name = series[:i]
			for _, pair := range splitLabelPairs(series[i+1 : len(series)-1]) {
				eq := strings.Index(pair, "=")
				if eq < 0 {
					t.Fatalf("line %d: malformed label pair %q", ln+1, pair)
				}
				k, quoted := pair[:eq], pair[eq+1:]
				if len(quoted) < 2 || quoted[0] != '"' || quoted[len(quoted)-1] != '"' {
					t.Fatalf("line %d: unquoted label value %q", ln+1, pair)
				}
				labels[k] = quoted[1 : len(quoted)-1]
			}
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if _, ok := types[name]; !ok {
			if _, ok := types[base]; !ok {
				t.Fatalf("line %d: sample %q precedes its TYPE line", ln+1, name)
			}
		}
		samples = append(samples, promSample{name: name, labels: labels, value: val})
	}
	return samples, types
}

// splitLabelPairs splits `k="v",k2="v2"` on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func findSample(samples []promSample, name string, labels map[string]string) (promSample, bool) {
	for _, s := range samples {
		if s.name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s, true
		}
	}
	return promSample{}, false
}

// TestExpositionGolden registers one of everything, drives known values
// through, and checks the rendered text parses back to exactly those
// values with the right TYPE lines.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("janus_test_events_total", "events", "kind", "a")
	c2 := r.Counter("janus_test_events_total", "events", "kind", "b")
	g := r.Gauge("janus_test_depth", "depth")
	h := r.Histogram("janus_test_latency_seconds", "latency", []float64{0.1, 1, 10}, "op", "x")
	r.GaugeFunc("janus_test_pool_in_use", "pool", func() float64 { return 7 })
	r.GaugeFunc("janus_test_pool_in_use", "pool", func() float64 { return 5 }) // additive merge
	r.CounterFunc("janus_test_ops_total", "ops", func() float64 { return 42 })

	c.Add(3)
	c2.Inc()
	g.Set(-2)
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	samples, types := parseProm(t, sb.String())

	wantTypes := map[string]string{
		"janus_test_events_total":    "counter",
		"janus_test_depth":           "gauge",
		"janus_test_latency_seconds": "histogram",
		"janus_test_pool_in_use":     "gauge",
		"janus_test_ops_total":       "counter",
	}
	for name, typ := range wantTypes {
		if types[name] != typ {
			t.Errorf("TYPE %s = %q, want %q", name, types[name], typ)
		}
	}

	checks := []struct {
		name   string
		labels map[string]string
		want   float64
	}{
		{"janus_test_events_total", map[string]string{"kind": "a"}, 3},
		{"janus_test_events_total", map[string]string{"kind": "b"}, 1},
		{"janus_test_depth", nil, -2},
		{"janus_test_pool_in_use", nil, 12},
		{"janus_test_ops_total", nil, 42},
		{"janus_test_latency_seconds_bucket", map[string]string{"op": "x", "le": "0.1"}, 1},
		{"janus_test_latency_seconds_bucket", map[string]string{"op": "x", "le": "1"}, 3},
		{"janus_test_latency_seconds_bucket", map[string]string{"op": "x", "le": "10"}, 4},
		{"janus_test_latency_seconds_bucket", map[string]string{"op": "x", "le": "+Inf"}, 5},
		{"janus_test_latency_seconds_count", map[string]string{"op": "x"}, 5},
		{"janus_test_latency_seconds_sum", map[string]string{"op": "x"}, 56.05},
	}
	for _, chk := range checks {
		s, ok := findSample(samples, chk.name, chk.labels)
		if !ok {
			t.Errorf("missing sample %s%v", chk.name, chk.labels)
			continue
		}
		if math.Abs(s.value-chk.want) > 1e-9 {
			t.Errorf("%s%v = %v, want %v", chk.name, chk.labels, s.value, chk.want)
		}
	}
}

// TestRegistryGetOrCreate pins the identity contract: same (name, labels)
// returns the same instrument.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", "k", "v")
	b := r.Counter("x_total", "x", "k", "v")
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	if c := r.Counter("x_total", "x", "k", "w"); c == a {
		t.Fatal("distinct labels shared a counter")
	}
	a.Add(2)
	b.Inc()
	vals := r.Series("x_total")
	if len(vals) != 2 {
		t.Fatalf("Series = %v, want 2 series", vals)
	}
	found := false
	for _, sv := range vals {
		if LabelValue(sv.Labels, "k") == "v" {
			found = true
			if sv.Value != 3 {
				t.Fatalf("shared counter = %v, want 3", sv.Value)
			}
		}
	}
	if !found {
		t.Fatal("labelled series not found in Series()")
	}
}

// TestQuantileWithinBucket is the property test: for random samples under
// several bucket schemas, the histogram's percentile estimate must land
// within one bucket of the exact sample quantile — i.e. the two values
// fall in the same bucket or adjacent ones, so the error is bounded by
// the containing bucket's width.
func TestQuantileWithinBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	schemas := [][]float64{
		ExpBuckets(1e-6, 2, 24),
		ExpBuckets(1, 2, 13),
		LinearBuckets(0, 0.5, 20),
	}
	bucketOf := func(bounds []float64, v float64) int {
		for i, b := range bounds {
			if v <= b {
				return i
			}
		}
		return len(bounds)
	}
	for si, bounds := range schemas {
		for trial := 0; trial < 20; trial++ {
			h := NewHistogram(bounds)
			n := 100 + rng.Intn(2000)
			samples := make([]float64, n)
			for i := range samples {
				// Log-uniform over the schema's span keeps every bucket in play.
				lo, hi := bounds[0], bounds[len(bounds)-1]
				if lo <= 0 {
					lo = 1e-3
				}
				samples[i] = lo * math.Pow(hi/lo, rng.Float64())
				h.Observe(samples[i])
			}
			sort.Float64s(samples)
			for _, q := range []float64{0.5, 0.95, 0.99} {
				rank := int(math.Ceil(q*float64(n))) - 1
				if rank < 0 {
					rank = 0
				}
				exact := samples[rank]
				est := h.Quantile(q)
				be, bx := bucketOf(bounds, est), bucketOf(bounds, exact)
				if diff := be - bx; diff < -1 || diff > 1 {
					t.Errorf("schema %d trial %d q=%v: estimate %v (bucket %d) vs exact %v (bucket %d): more than one bucket apart",
						si, trial, q, est, be, exact, bx)
				}
			}
		}
	}
}

// TestQuantileEdgeCases covers empty histograms and overflow samples.
func TestQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	h.Observe(100) // +Inf bucket
	if got := h.Quantile(0.99); got != 4 {
		t.Fatalf("overflow Quantile = %v, want clamp to 4", got)
	}
	if h.Count() != 1 {
		t.Fatalf("Count = %d", h.Count())
	}
}

// TestTraceSpans pins span bookkeeping, annotations, nil-safety, and the
// ring log's newest-first ordering.
func TestTraceSpans(t *testing.T) {
	var nilTrace *Trace
	nilTrace.StartSpan("x").End() // must not panic
	nilTrace.Annotate("a", "b")
	nilTrace.Finish()

	tr := NewTrace("req-1")
	sp := tr.StartSpan("convert")
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Annotate("path", "graph")
	tr.Finish()
	snap := tr.Snapshot()
	if snap.ID != "req-1" || len(snap.Spans) != 1 || snap.Spans[0].Name != "convert" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Spans[0].DurUS <= 0 || snap.TotalUS < snap.Spans[0].DurUS {
		t.Fatalf("span timing implausible: %+v", snap)
	}
	if snap.Annotations["path"] != "graph" {
		t.Fatalf("annotations = %v", snap.Annotations)
	}

	log := NewTraceLog(2)
	for i := 0; i < 3; i++ {
		tr := NewTrace(fmt.Sprintf("req-%d", i))
		tr.Finish()
		log.Add(tr)
	}
	got := log.Snapshot(0)
	if len(got) != 2 || got[0].ID != "req-2" || got[1].ID != "req-1" {
		t.Fatalf("ring snapshot = %+v", got)
	}
}

// TestRegistryConcurrentWriters hammers one registry from many goroutines
// mixing registration, recording and exposition (run under -race in CI).
func TestRegistryConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("conc_total", "c", "w", strconv.Itoa(w%2))
			h := r.Histogram("conc_seconds", "h", DefBuckets)
			g := r.Gauge("conc_depth", "g")
			for i := 0; i < 2000; i++ {
				c.Inc()
				h.Observe(float64(i%17) * 1e-5)
				g.Add(1)
				g.Add(-1)
			}
		}(w)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sb strings.Builder
			for i := 0; i < 50; i++ {
				sb.Reset()
				r.WriteText(&sb)
			}
		}()
	}
	wg.Wait()
	var total float64
	for _, sv := range r.Series("conc_total") {
		total += sv.Value
	}
	if total != 8*2000 {
		t.Fatalf("lost counter increments: %v", total)
	}
	if r.Histogram("conc_seconds", "h", DefBuckets).Count() != 8*2000 {
		t.Fatal("lost histogram observations")
	}
}
