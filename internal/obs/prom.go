package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WriteText renders every registered family in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, series by
// labels, histograms as cumulative _bucket/_sum/_count series.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.promType())
		bw.WriteByte('\n')
		for _, s := range f.sortedSeries() {
			if f.kind == kindHistogram {
				writeHistogram(bw, f.name, s)
				continue
			}
			// f.mu orders the read of s.fns against concurrent callback
			// registration (lazily-created per-op series scrape mid-run).
			f.mu.Lock()
			v := seriesValue(f.kind, s)
			f.mu.Unlock()
			bw.WriteString(f.name)
			bw.WriteString(s.labels)
			bw.WriteByte(' ')
			bw.WriteString(formatValue(v))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// writeHistogram emits one histogram series: cumulative buckets with an
// le label appended to the series labels, then _sum and _count.
func writeHistogram(bw *bufio.Writer, name string, s *series) {
	cum, count, sum := s.h.snapshot()
	for i, c := range cum {
		le := "+Inf"
		if i < len(s.h.bounds) {
			le = formatValue(s.h.bounds[i])
		}
		bw.WriteString(name)
		bw.WriteString("_bucket")
		bw.WriteString(withLabel(s.labels, "le", le))
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatInt(c, 10))
		bw.WriteByte('\n')
	}
	bw.WriteString(name)
	bw.WriteString("_sum")
	bw.WriteString(s.labels)
	bw.WriteByte(' ')
	bw.WriteString(formatValue(sum))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_count")
	bw.WriteString(s.labels)
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(count, 10))
	bw.WriteByte('\n')
}

// escapeHelp escapes a HELP string per the text-format spec: backslash
// and newline only (double quotes are legal in help text).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// withLabel appends one key="value" pair to a rendered label string.
func withLabel(labels, key, value string) string {
	pair := key + `="` + value + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// formatValue renders a float the way Prometheus clients do: shortest
// round-trip representation, NaN/Inf spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry as Prometheus text
// (mount it at GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
