package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

// spanByName finds one span in a snapshot (fails the test on absence or
// duplicates, so parent assertions are unambiguous).
func spanByName(t *testing.T, spans []SpanSnapshot, name string) SpanSnapshot {
	t.Helper()
	var found SpanSnapshot
	n := 0
	for _, sp := range spans {
		if sp.Name == name {
			found = sp
			n++
		}
	}
	if n != 1 {
		t.Fatalf("span %q appears %d times in %+v", name, n, spans)
	}
	return found
}

// TestSpanContextParenting pins the hierarchy contract: a span started
// through a context carrying a span ID becomes that span's child, and
// explicit StartSpanChild nests arbitrarily deep.
func TestSpanContextParenting(t *testing.T) {
	tr := NewTrace("req-tree")
	root := tr.StartSpan("request")
	ctx := ContextWithSpan(ContextWithTrace(context.Background(), tr), root.ID())

	mid := StartSpan(ctx, "execute")
	leaf := tr.StartSpanChild("plan_build", mid.ID())
	leaf.End()
	mid.End()
	root.End()
	tr.Finish()

	snap := tr.Snapshot()
	if len(snap.Spans) != 3 {
		t.Fatalf("spans = %+v", snap.Spans)
	}
	r := spanByName(t, snap.Spans, "request")
	m := spanByName(t, snap.Spans, "execute")
	l := spanByName(t, snap.Spans, "plan_build")
	if r.Parent != 0 {
		t.Fatalf("root parent = %d", r.Parent)
	}
	if m.Parent != r.ID || l.Parent != m.ID {
		t.Fatalf("tree broken: request=%d execute(parent %d) plan_build(parent %d)",
			r.ID, m.Parent, l.Parent)
	}
	// IDs are unique within the trace.
	seen := map[SpanID]bool{}
	for _, sp := range snap.Spans {
		if sp.ID == 0 || seen[sp.ID] {
			t.Fatalf("bad/duplicate span ID in %+v", snap.Spans)
		}
		seen[sp.ID] = true
	}
}

// TestStartSpanAbsentTrace pins the degradation contract: with no trace
// (or no span) on the context, every call is an inert no-op.
func TestStartSpanAbsentTrace(t *testing.T) {
	sp := StartSpan(context.Background(), "phase")
	if sp.ID() != 0 || sp.Trace() != nil {
		t.Fatalf("absent-trace span not inert: %+v", sp)
	}
	sp.End() // must not panic
	if got := SpanFrom(context.Background()); got != 0 {
		t.Fatalf("SpanFrom(empty ctx) = %d", got)
	}
	var nilCtx context.Context
	if TraceFrom(nilCtx) != nil || SpanFrom(nilCtx) != 0 {
		t.Fatal("nil ctx lookups not nil-safe")
	}
}

// TestTraceHeaderRoundTrip covers Format/Parse for the Janus-Trace
// propagation header, including the malformed inputs a hostile or stale
// client can send: parsing must degrade (ok=false or parent 0), never
// misbehave.
func TestTraceHeaderRoundTrip(t *testing.T) {
	tr := NewTrace("req-77")
	h := FormatTraceHeader(tr, 12)
	if h != "req-77;12" {
		t.Fatalf("header = %q", h)
	}
	id, parent, ok := ParseTraceHeader(h)
	if !ok || id != "req-77" || parent != 12 {
		t.Fatalf("round trip = (%q, %d, %v)", id, parent, ok)
	}
	if got := FormatTraceHeader(nil, 5); got != "" {
		t.Fatalf("nil-trace header = %q", got)
	}

	cases := []struct {
		in         string
		wantID     string
		wantParent SpanID
		wantOK     bool
	}{
		{"", "", 0, false},
		{";7", "", 0, false},          // empty trace ID
		{"abc", "abc", 0, true},       // no parent: defaults to 0
		{"abc;", "abc", 0, true},      // empty parent
		{"abc;bogus", "abc", 0, true}, // unparseable parent
		{"a;b;3", "a;b", 3, true},     // last separator wins
	}
	for _, c := range cases {
		id, parent, ok := ParseTraceHeader(c.in)
		if id != c.wantID || parent != c.wantParent || ok != c.wantOK {
			t.Errorf("ParseTraceHeader(%q) = (%q, %d, %v), want (%q, %d, %v)",
				c.in, id, parent, ok, c.wantID, c.wantParent, c.wantOK)
		}
	}
}

// TestGraftRemapAnchorsAndOrphans drives the cross-process merge: a
// remote trace's exported spans graft under a local RPC span with IDs
// renumbered, roots and orphans re-parented under the graft point, and
// start offsets re-anchored at the local send instant.
func TestGraftRemapAnchorsAndOrphans(t *testing.T) {
	remote := NewTrace("req-1") // same propagated ID, different process
	rr := remote.StartSpan("ps.push")
	time.Sleep(time.Millisecond)
	child := remote.StartSpanChild("opt_apply", rr.ID())
	child.End()
	rr.End()
	wire := remote.Export()
	if len(wire) != 2 {
		t.Fatalf("export = %+v", wire)
	}
	// An orphan: its parent span never arrived (e.g. it never ended).
	wire = append(wire, WireSpan{ID: 99, Parent: 42, Name: "stray", StartUS: 1, DurUS: 1})

	local := NewTrace("req-1")
	rpc := local.StartSpan("rpc.push")
	sent := time.Now()
	local.Graft(rpc.ID(), sent, wire)
	rpc.End()
	local.Finish()

	snap := local.Snapshot()
	if len(snap.Spans) != 4 {
		t.Fatalf("spans = %+v", snap.Spans)
	}
	rpcS := spanByName(t, snap.Spans, "rpc.push")
	push := spanByName(t, snap.Spans, "ps.push")
	apply := spanByName(t, snap.Spans, "opt_apply")
	stray := spanByName(t, snap.Spans, "stray")
	if push.Parent != rpcS.ID {
		t.Fatalf("remote root not under RPC span: %+v", push)
	}
	if apply.Parent != push.ID {
		t.Fatalf("remote child lost its parent across the graft: %+v", apply)
	}
	if stray.Parent != rpcS.ID {
		t.Fatalf("orphan not promoted under the graft point: %+v", stray)
	}
	// Remote IDs were renumbered from the local counter: no collisions.
	seen := map[SpanID]bool{}
	for _, sp := range snap.Spans {
		if seen[sp.ID] {
			t.Fatalf("ID collision after graft: %+v", snap.Spans)
		}
		seen[sp.ID] = true
	}
	// Re-anchoring: the grafted subtree starts at (or after) the local
	// send offset, not at the remote trace's own begin time.
	base := float64(sent.Sub(local.Begin)) / float64(time.Microsecond)
	if push.StartUS < base {
		t.Fatalf("grafted span anchored before the send instant: %v < %v", push.StartUS, base)
	}
	// The remote child keeps its internal offset relative to its root.
	if apply.StartUS < push.StartUS {
		t.Fatalf("grafted subtree lost its internal shape: child %v before root %v",
			apply.StartUS, push.StartUS)
	}

	// Nil/empty safety.
	var nilTrace *Trace
	nilTrace.Graft(1, time.Now(), wire) // must not panic
	if nilTrace.Export() != nil {
		t.Fatal("nil Export != nil")
	}
	local.Graft(rpcS.ID, time.Now(), nil) // no-op
	if got := len(local.Snapshot().Spans); got != 4 {
		t.Fatalf("empty graft changed the trace: %d spans", got)
	}
}

// TestExpositionEscaping pins the text-format escaping rules: label
// values escape backslash, double-quote and newline; HELP text escapes
// backslash and newline.
func TestExpositionEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "path is C:\\tmp\nsecond line", "p", `a\b"c`+"\nd").Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `# HELP esc_total path is C:\\tmp\nsecond line`) {
		t.Fatalf("help not escaped:\n%s", text)
	}
	if !strings.Contains(text, `esc_total{p="a\\b\"c\nd"} 1`) {
		t.Fatalf("label value not escaped:\n%s", text)
	}
	// The exposition must stay line-structured: no raw newline leaked
	// into the middle of a series line.
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line leaked into exposition:\n%s", text)
		}
	}
}
