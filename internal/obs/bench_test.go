package obs

import (
	"context"
	"testing"
	"time"
)

// BenchmarkObsOverhead prices each hot-path primitive per operation, the
// companion to core's BenchmarkDispatchOverhead: the numbers recorded in
// DESIGN.md §7 come from this benchmark. Every sub-benchmark must report
// 0 allocs/op — that is the contract that lets the executor's replay path
// carry instrumentation.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("counter_inc", func(b *testing.B) {
		r := NewRegistry()
		c := r.Counter("bench_total", "b")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram_observe", func(b *testing.B) {
		r := NewRegistry()
		h := r.Histogram("bench_seconds", "b", DefBuckets)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i%1000) * 1e-6)
		}
	})
	b.Run("histogram_observe_duration", func(b *testing.B) {
		r := NewRegistry()
		h := r.Histogram("bench_dur_seconds", "b", DefBuckets)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.ObserveDuration(time.Duration(i % 4096))
		}
	})
	b.Run("span_start_end", func(b *testing.B) {
		tr := NewTrace("bench")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := tr.StartSpan("phase")
			sp.End()
			if i%1024 == 0 { // keep the span slice from growing unboundedly
				tr.mu.Lock()
				tr.spans = tr.spans[:0]
				tr.mu.Unlock()
			}
		}
	})
	b.Run("span_absent", func(b *testing.B) {
		// The replay-path case: no trace on the context.
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := TraceFrom(ctx).StartSpan("phase")
			sp.End()
		}
	})
}
