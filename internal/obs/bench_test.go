package obs

import (
	"context"
	"testing"
	"time"
)

// BenchmarkObsOverhead prices each hot-path primitive per operation, the
// companion to core's BenchmarkDispatchOverhead: the numbers recorded in
// DESIGN.md §7 come from this benchmark. Every sub-benchmark must report
// 0 allocs/op — that is the contract that lets the executor's replay path
// carry instrumentation.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("counter_inc", func(b *testing.B) {
		r := NewRegistry()
		c := r.Counter("bench_total", "b")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram_observe", func(b *testing.B) {
		r := NewRegistry()
		h := r.Histogram("bench_seconds", "b", DefBuckets)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i%1000) * 1e-6)
		}
	})
	b.Run("histogram_observe_duration", func(b *testing.B) {
		r := NewRegistry()
		h := r.Histogram("bench_dur_seconds", "b", DefBuckets)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.ObserveDuration(time.Duration(i % 4096))
		}
	})
	b.Run("span_start_end", func(b *testing.B) {
		tr := NewTrace("bench")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := tr.StartSpan("phase")
			sp.End()
			if i%1024 == 0 { // keep the span slice from growing unboundedly
				tr.mu.Lock()
				tr.spans = tr.spans[:0]
				tr.mu.Unlock()
			}
		}
	})
	b.Run("span_child_start_end", func(b *testing.B) {
		// Hierarchical span creation: one child under a live parent, the
		// shape every engine phase and RPC span takes in a traced request.
		tr := NewTrace("bench")
		root := tr.StartSpan("request")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := tr.StartSpanChild("phase", root.ID())
			sp.End()
			if i%1024 == 0 {
				tr.mu.Lock()
				tr.spans = tr.spans[:0]
				tr.mu.Unlock()
			}
		}
	})
	b.Run("span_ctx_absent", func(b *testing.B) {
		// The replay-path case: obs.StartSpan on a context with no trace.
		// The contract is one context lookup, no clock read, 0 allocs.
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := StartSpan(ctx, "phase")
			sp.End()
		}
	})
	b.Run("span_absent", func(b *testing.B) {
		// The replay-path case: no trace on the context.
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := TraceFrom(ctx).StartSpan("phase")
			sp.End()
		}
	})
}

// TestHotPathsAllocationFree pins the 0-alloc contract for the paths the
// executor's replay loop touches on every node: absent-trace span calls
// and context span lookups must never allocate.
func TestHotPathsAllocationFree(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		sp := StartSpan(ctx, "phase")
		sp.End()
	}); n != 0 {
		t.Fatalf("absent-trace StartSpan allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		_ = SpanFrom(ctx)
		_ = TraceFrom(ctx)
	}); n != 0 {
		t.Fatalf("context lookups allocate %v/op", n)
	}
}
