package exec

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// KernelBuckets spans 100ns..~1.6s: wide enough for a fused elementwise
// kernel and a cold convolution in one schema.
var KernelBuckets = obs.ExpBuckets(1e-7, 2, 24)

// kernelSampleMask samples 1 in 64 node executions for kernel timing. At
// that rate the two clock reads and the histogram observe amortize to
// well under a nanosecond per op, so the replay path's throughput (and
// its zero-allocation property — everything here is atomics on
// pre-resolved instruments) is preserved.
const kernelSampleMask = 63

// Metrics carries the executor's registry instruments through Options.
// All methods are nil-safe: an execution without metrics pays a nil
// check and nothing else.
type Metrics struct {
	planBuild *obs.Histogram
	memPlan   *obs.Histogram
	inPlace   *obs.Counter

	reg  *obs.Registry
	tick atomic.Uint64
	mu   sync.RWMutex
	ops  map[string]*obs.Histogram
}

// NewMetrics resolves the executor's instruments in reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		planBuild: reg.Histogram("janus_exec_plan_build_seconds",
			"Time to schedule a graph into an execution plan (first run only).",
			obs.DefBuckets, "stage", "schedule"),
		memPlan: reg.Histogram("janus_exec_plan_build_seconds",
			"Time to schedule a graph into an execution plan (first run only).",
			obs.DefBuckets, "stage", "memory_plan"),
		inPlace: reg.Counter("janus_exec_inplace_total",
			"Kernel outputs served by in-place rebinding of a dying input buffer."),
		reg: reg,
		ops: make(map[string]*obs.Histogram),
	}
}

// incInPlace counts one in-place rebind (replay hot path: one atomic add).
func (m *Metrics) incInPlace() {
	if m != nil {
		m.inPlace.Inc()
	}
}

// kernelTimer times one sampled kernel execution; the zero value (not
// sampled) is inert.
type kernelTimer struct {
	t0 time.Time
}

// sampleKernel decides whether to time this node execution: one atomic
// tick, and a clock read only for the 1-in-64 sampled ops.
func (m *Metrics) sampleKernel() kernelTimer {
	if m == nil || m.tick.Add(1)&kernelSampleMask != 0 {
		return kernelTimer{}
	}
	return kernelTimer{t0: time.Now()}
}

// observe records the sampled duration under the node's op type.
func (kt kernelTimer) observe(m *Metrics, op string) {
	if kt.t0.IsZero() {
		return
	}
	m.opHist(op).Since(kt.t0)
}

// opHist resolves the per-op-type histogram, caching the handle locally
// so steady state is one RLock-guarded map read (no allocation).
func (m *Metrics) opHist(op string) *obs.Histogram {
	m.mu.RLock()
	h := m.ops[op]
	m.mu.RUnlock()
	if h != nil {
		return h
	}
	h = m.reg.Histogram("janus_exec_op_seconds",
		"Sampled kernel execution time by op type (1 in 64 node executions).",
		KernelBuckets, "op", op)
	m.mu.Lock()
	m.ops[op] = h
	m.mu.Unlock()
	return h
}

// observePlanBuild records scheduling time for a first-run graph.
func (m *Metrics) observePlanBuild(d time.Duration) {
	if m != nil {
		m.planBuild.ObserveDuration(d)
	}
}

// observeMemPlan records liveness/memory-plan analysis time.
func (m *Metrics) observeMemPlan(d time.Duration) {
	if m != nil {
		m.memPlan.ObserveDuration(d)
	}
}
