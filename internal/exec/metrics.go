package exec

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Metrics carries the executor's registry instruments through Options.
// All methods are nil-safe: an execution without metrics pays a nil
// check and nothing else.
type Metrics struct {
	planBuild *obs.Histogram
	memPlan   *obs.Histogram
	inPlace   *obs.Counter

	reg *obs.Registry
	mu  sync.RWMutex
	ops map[string]*opCounters
}

// opCounters backs the janus_profile_op_* registry families for one op
// type: sampled nanoseconds and calls, pre-scaled by the profiler's
// sampling stride so the exposed values estimate the true cumulative
// totals.
type opCounters struct {
	ns    atomic.Int64
	calls atomic.Int64
}

// NewMetrics resolves the executor's instruments in reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		planBuild: reg.Histogram("janus_exec_plan_build_seconds",
			"Time to schedule a graph into an execution plan (first run only).",
			obs.DefBuckets, "stage", "schedule"),
		memPlan: reg.Histogram("janus_exec_plan_build_seconds",
			"Time to schedule a graph into an execution plan (first run only).",
			obs.DefBuckets, "stage", "memory_plan"),
		inPlace: reg.Counter("janus_exec_inplace_total",
			"Kernel outputs served by in-place rebinding of a dying input buffer."),
		reg: reg,
		ops: make(map[string]*opCounters),
	}
}

// incInPlace counts one in-place rebind (replay hot path: one atomic add).
func (m *Metrics) incInPlace() {
	if m != nil {
		m.inPlace.Inc()
	}
}

// helpProfileSeconds and helpProfileCalls document the sampling basis of
// the profile families.
const (
	helpProfileSeconds = "Estimated cumulative kernel execution time by op type (stride-sampled by the always-on graph profiler, scaled to totals)."
	helpProfileCalls   = "Estimated kernel invocations by op type (stride-sampled by the always-on graph profiler, scaled to totals)."
)

// observeSampledOp feeds one sampled node execution into the per-op
// registry families, scaled by the sampling stride. Called only on the
// profiler's 1-in-profileStride timed path, so the RLock map read is off
// the common hot path.
func (m *Metrics) observeSampledOp(op string, d time.Duration) {
	if m == nil {
		return
	}
	oc := m.opc(op)
	oc.ns.Add(int64(d) * profileStride)
	oc.calls.Add(profileStride)
}

// opc resolves the per-op counters, registering the registry series on
// first sight of an op type.
func (m *Metrics) opc(op string) *opCounters {
	m.mu.RLock()
	oc := m.ops[op]
	m.mu.RUnlock()
	if oc != nil {
		return oc
	}
	m.mu.Lock()
	if oc = m.ops[op]; oc == nil {
		oc = &opCounters{}
		m.ops[op] = oc
		m.reg.CounterFunc("janus_profile_op_seconds_total", helpProfileSeconds,
			func() float64 { return float64(oc.ns.Load()) / 1e9 }, "op", op)
		m.reg.CounterFunc("janus_profile_op_calls_total", helpProfileCalls,
			func() float64 { return float64(oc.calls.Load()) }, "op", op)
	}
	m.mu.Unlock()
	return oc
}

// observePlanBuild records scheduling time for a first-run graph.
func (m *Metrics) observePlanBuild(d time.Duration) {
	if m != nil {
		m.planBuild.ObserveDuration(d)
	}
}

// observeMemPlan records liveness/memory-plan analysis time.
func (m *Metrics) observeMemPlan(d time.Duration) {
	if m != nil {
		m.memPlan.ObserveDuration(d)
	}
}
