package exec

import (
	"fmt"

	"repro/internal/autodiff"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// tapeKernels implement the differentiable ops in tape mode, where tensor
// edges carry *autodiff.Node values. Only forward ops appear here; gradient
// kernels never run under a tape (the tape IS the gradient mechanism for
// dynamic graphs).
type tapeKernel func(tp *autodiff.Tape, nd *graph.Node, in []graph.Val) ([]graph.Val, error)

var tapeKernels = map[string]tapeKernel{}

// asNode coerces an edge value to an autodiff node.
func asNode(v graph.Val) (*autodiff.Node, error) {
	switch x := v.(type) {
	case *autodiff.Node:
		return x, nil
	case *tensor.Tensor:
		return autodiff.Const(x), nil
	case float64:
		return autodiff.Const(tensor.Scalar(x)), nil
	case int:
		return autodiff.Const(tensor.Scalar(float64(x))), nil
	case int64:
		return autodiff.Const(tensor.Scalar(float64(x))), nil
	}
	return nil, fmt.Errorf("exec: value %T is not tensor-like", v)
}

func tk1(f func(tp *autodiff.Tape, a *autodiff.Node) *autodiff.Node) tapeKernel {
	return func(tp *autodiff.Tape, nd *graph.Node, in []graph.Val) ([]graph.Val, error) {
		a, err := asNode(in[0])
		if err != nil {
			return nil, err
		}
		return []graph.Val{f(tp, a)}, nil
	}
}

func tk2(f func(tp *autodiff.Tape, a, b *autodiff.Node) *autodiff.Node) tapeKernel {
	return func(tp *autodiff.Tape, nd *graph.Node, in []graph.Val) ([]graph.Val, error) {
		a, err := asNode(in[0])
		if err != nil {
			return nil, err
		}
		b, err := asNode(in[1])
		if err != nil {
			return nil, err
		}
		return []graph.Val{f(tp, a, b)}, nil
	}
}

func init() {
	tapeKernels["Add"] = tk2((*autodiff.Tape).Add)
	tapeKernels["Sub"] = tk2((*autodiff.Tape).Sub)
	tapeKernels["Mul"] = tk2((*autodiff.Tape).Mul)
	tapeKernels["Div"] = tk2((*autodiff.Tape).Div)
	tapeKernels["MatMul"] = tk2((*autodiff.Tape).MatMul)
	tapeKernels["Maximum"] = tk2((*autodiff.Tape).Maximum)
	tapeKernels["Minimum"] = tk2((*autodiff.Tape).Minimum)
	tapeKernels["Neg"] = tk1((*autodiff.Tape).Neg)
	tapeKernels["ReLU"] = tk1((*autodiff.Tape).ReLU)
	tapeKernels["Sigmoid"] = tk1((*autodiff.Tape).Sigmoid)
	tapeKernels["Tanh"] = tk1((*autodiff.Tape).Tanh)
	tapeKernels["Exp"] = tk1((*autodiff.Tape).Exp)
	tapeKernels["Log"] = tk1((*autodiff.Tape).Log)
	tapeKernels["Softmax"] = tk1((*autodiff.Tape).Softmax)
	tapeKernels["Sum"] = tk1((*autodiff.Tape).Sum)
	tapeKernels["Mean"] = tk1((*autodiff.Tape).Mean)
	tapeKernels["Identity"] = func(tp *autodiff.Tape, nd *graph.Node, in []graph.Val) ([]graph.Val, error) {
		return []graph.Val{in[0]}, nil
	}
	tapeKernels["Pow"] = func(tp *autodiff.Tape, nd *graph.Node, in []graph.Val) ([]graph.Val, error) {
		a, err := asNode(in[0])
		if err != nil {
			return nil, err
		}
		e, err := asNode(in[1])
		if err != nil {
			return nil, err
		}
		if e.Tracked() || e.Value.Size() != 1 {
			return nil, fmt.Errorf("exec: Pow under tape needs constant scalar exponent")
		}
		return []graph.Val{tp.Pow(a, e.Value.Item())}, nil
	}
	tapeKernels["Reshape"] = func(tp *autodiff.Tape, nd *graph.Node, in []graph.Val) ([]graph.Val, error) {
		a, err := asNode(in[0])
		if err != nil {
			return nil, err
		}
		shape := nd.Attr("shape").([]int)
		return []graph.Val{tp.Reshape(a, shape...)}, nil
	}
	tapeKernels["ReshapeLike"] = func(tp *autodiff.Tape, nd *graph.Node, in []graph.Val) ([]graph.Val, error) {
		a, err := asNode(in[0])
		if err != nil {
			return nil, err
		}
		ref, err := asNode(in[1])
		if err != nil {
			return nil, err
		}
		return []graph.Val{tp.Reshape(a, ref.Value.Shape()...)}, nil
	}
	tapeKernels["ExpandDims"] = func(tp *autodiff.Tape, nd *graph.Node, in []graph.Val) ([]graph.Val, error) {
		a, err := asNode(in[0])
		if err != nil {
			return nil, err
		}
		sh := append([]int{1}, a.Value.Shape()...)
		return []graph.Val{tp.Reshape(a, sh...)}, nil
	}
	tapeKernels["Transpose"] = tk1((*autodiff.Tape).Transpose)
	tapeKernels["Concat"] = func(tp *autodiff.Tape, nd *graph.Node, in []graph.Val) ([]graph.Val, error) {
		axis := nd.IntAttr("axis", 0)
		nodes := make([]*autodiff.Node, len(in))
		for i, v := range in {
			a, err := asNode(v)
			if err != nil {
				return nil, err
			}
			nodes[i] = a
		}
		return []graph.Val{tp.Concat(axis, nodes...)}, nil
	}
	tapeKernels["Stack"] = func(tp *autodiff.Tape, nd *graph.Node, in []graph.Val) ([]graph.Val, error) {
		nodes := make([]*autodiff.Node, len(in))
		for i, v := range in {
			a, err := asNode(v)
			if err != nil {
				return nil, err
			}
			sh := append([]int{1}, a.Value.Shape()...)
			nodes[i] = tp.Reshape(a, sh...)
		}
		return []graph.Val{tp.Concat(0, nodes...)}, nil
	}
	tapeKernels["Pack"] = func(tp *autodiff.Tape, nd *graph.Node, in []graph.Val) ([]graph.Val, error) {
		// Box without unwrapping so autodiff nodes keep their tracking.
		return []graph.Val{append([]graph.Val(nil), in...)}, nil
	}
	tapeKernels["IndexAny"] = func(tp *autodiff.Tape, nd *graph.Node, in []graph.Val) ([]graph.Val, error) {
		i, err := graph.AsInt(unwrap(in[1]))
		if err != nil {
			return nil, err
		}
		if xs, ok := in[0].([]graph.Val); ok {
			if i < 0 {
				i += len(xs)
			}
			if i < 0 || i >= len(xs) {
				return nil, fmt.Errorf("exec: IndexAny index %d out of range (%d)", i, len(xs))
			}
			return []graph.Val{xs[i]}, nil
		}
		a, err := asNode(in[0])
		if err != nil {
			return nil, err
		}
		if i < 0 {
			i += a.Value.Dim(0)
		}
		sl := tp.SliceAxis(a, 0, i, i+1)
		return []graph.Val{tp.Reshape(sl, a.Value.Shape()[1:]...)}, nil
	}
	tapeKernels["StackList"] = func(tp *autodiff.Tape, nd *graph.Node, in []graph.Val) ([]graph.Val, error) {
		xs, ok := in[0].([]graph.Val)
		if !ok {
			return nil, fmt.Errorf("exec: StackList input is %T", in[0])
		}
		nodes := make([]*autodiff.Node, len(xs))
		for i, v := range xs {
			a, err := asNode(v)
			if err != nil {
				return nil, err
			}
			sh := append([]int{1}, a.Value.Shape()...)
			nodes[i] = tp.Reshape(a, sh...)
		}
		return []graph.Val{tp.Concat(0, nodes...)}, nil
	}
	tapeKernels["Slice"] = func(tp *autodiff.Tape, nd *graph.Node, in []graph.Val) ([]graph.Val, error) {
		a, err := asNode(in[0])
		if err != nil {
			return nil, err
		}
		return []graph.Val{tp.SliceAxis(a, nd.IntAttr("axis", 0), nd.IntAttr("lo", 0), nd.IntAttr("hi", 0))}, nil
	}
	tapeKernels["Conv2D"] = func(tp *autodiff.Tape, nd *graph.Node, in []graph.Val) ([]graph.Val, error) {
		x, err := asNode(in[0])
		if err != nil {
			return nil, err
		}
		w, err := asNode(in[1])
		if err != nil {
			return nil, err
		}
		return []graph.Val{tp.Conv2D(x, w, nd.IntAttr("stride", 1), nd.IntAttr("pad", 0))}, nil
	}
	tapeKernels["MaxPool"] = func(tp *autodiff.Tape, nd *graph.Node, in []graph.Val) ([]graph.Val, error) {
		x, err := asNode(in[0])
		if err != nil {
			return nil, err
		}
		return []graph.Val{tp.MaxPool2D(x, nd.IntAttr("k", 2), nd.IntAttr("stride", 2))}, nil
	}
	tapeKernels["AvgPool"] = func(tp *autodiff.Tape, nd *graph.Node, in []graph.Val) ([]graph.Val, error) {
		x, err := asNode(in[0])
		if err != nil {
			return nil, err
		}
		return []graph.Val{tp.AvgPool2D(x, nd.IntAttr("k", 2), nd.IntAttr("stride", 2))}, nil
	}
	tapeKernels["Gather"] = func(tp *autodiff.Tape, nd *graph.Node, in []graph.Val) ([]graph.Val, error) {
		table, err := asNode(in[0])
		if err != nil {
			return nil, err
		}
		idx, err := toIntSlice(unwrap(in[1]))
		if err != nil {
			return nil, err
		}
		return []graph.Val{tp.Gather(table, idx)}, nil
	}
	tapeKernels["CrossEntropy"] = func(tp *autodiff.Tape, nd *graph.Node, in []graph.Val) ([]graph.Val, error) {
		logits, err := asNode(in[0])
		if err != nil {
			return nil, err
		}
		labels, err := graph.AsTensor(unwrap(in[1]))
		if err != nil {
			return nil, err
		}
		return []graph.Val{tp.CrossEntropy(logits, labels)}, nil
	}
	tapeKernels["MSE"] = func(tp *autodiff.Tape, nd *graph.Node, in []graph.Val) ([]graph.Val, error) {
		pred, err := asNode(in[0])
		if err != nil {
			return nil, err
		}
		target, err := graph.AsTensor(unwrap(in[1]))
		if err != nil {
			return nil, err
		}
		return []graph.Val{tp.MSE(pred, target)}, nil
	}
}

func toIntSlice(v graph.Val) ([]int, error) {
	switch x := v.(type) {
	case []int:
		return x, nil
	case *tensor.Tensor:
		out := make([]int, x.Size())
		for i, f := range x.Data() {
			out[i] = int(f)
		}
		return out, nil
	case []graph.Val:
		out := make([]int, len(x))
		for i, e := range x {
			n, err := graph.AsInt(unwrap(e))
			if err != nil {
				return nil, err
			}
			out[i] = n
		}
		return out, nil
	case int:
		return []int{x}, nil
	}
	return nil, fmt.Errorf("exec: cannot use %T as index list", v)
}
