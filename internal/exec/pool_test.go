package exec

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
	"repro/internal/vars"
)

// chainGraph builds ph -> ReLU -> Exp -> Mul(ph2) -> ... an elementwise
// chain of length n alternating unary/binary ops.
func chainGraph(n int) *graph.Graph {
	g := graph.New()
	x := g.Placeholder("x")
	y := g.Placeholder("y")
	cur := x.P()
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			cur = g.Add("ReLU", nil, cur).P()
		case 1:
			cur = g.Add("Add", nil, cur, y.P()).P()
		case 2:
			cur = g.Add("Tanh", nil, cur).P()
		case 3:
			cur = g.Add("Mul", nil, cur, y.P()).P()
		}
	}
	g.Outputs = []graph.Port{cur}
	return g
}

func feedsXY(shape ...int) (map[string]graph.Val, *tensor.Tensor, *tensor.Tensor) {
	rng := tensor.NewRNG(3)
	x := rng.Randn(shape...)
	y := rng.Randn(shape...)
	return map[string]graph.Val{"x": x, "y": y}, x, y
}

// TestPooledChainBitIdentical replays an elementwise chain with and without
// the memory plan and demands exactly equal results across repeated,
// buffer-recycling executions — in serial and parallel scheduler modes.
func TestPooledChainBitIdentical(t *testing.T) {
	for _, workers := range []int{1, 4} {
		g := chainGraph(13)
		feeds, x, y := feedsXY(4, 17)
		xc, yc := x.Clone(), y.Clone()
		base, err := Run(g, feeds, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		want := base.Outputs[0].(*tensor.Tensor)
		pool := tensor.NewPool()
		arena := NewArena()
		for iter := 0; iter < 5; iter++ {
			res, err := Run(g, feeds, Options{Workers: workers, Pool: pool, Arena: arena})
			if err != nil {
				t.Fatal(err)
			}
			got := res.Outputs[0].(*tensor.Tensor)
			if !tensor.Equal(got, want) {
				t.Fatalf("workers=%d iter %d: pooled result differs", workers, iter)
			}
		}
		if !tensor.Equal(x, xc) || !tensor.Equal(y, yc) {
			t.Fatalf("workers=%d: pooled execution mutated caller-owned feeds", workers)
		}
		st := pool.Stats()
		if st.Hits == 0 {
			t.Fatalf("workers=%d: expected pool reuse across replays, stats %+v", workers, st)
		}
	}
}

// TestPooledOutputEscapes: the run's output tensor must stay valid (pinned,
// never recycled) even after further pooled replays reuse the free lists.
func TestPooledOutputEscapes(t *testing.T) {
	g := chainGraph(8)
	feeds, _, _ := feedsXY(3, 9)
	pool := tensor.NewPool()
	res1, err := Run(g, feeds, Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	out1 := res1.Outputs[0].(*tensor.Tensor)
	snapshot := out1.Clone()
	for i := 0; i < 4; i++ {
		if _, err := Run(g, feeds, Options{Pool: pool}); err != nil {
			t.Fatal(err)
		}
	}
	if !tensor.Equal(out1, snapshot) {
		t.Fatal("earlier run's output was overwritten by buffer reuse")
	}
}

// TestPooledSwitchMerge: dead-token propagation under the memory plan — both
// branch directions, repeated to exercise reuse.
func TestPooledSwitchMerge(t *testing.T) {
	build := func() *graph.Graph {
		g := graph.New()
		x := g.Placeholder("x")
		pred := g.Placeholder("p")
		sw := g.Add("Switch", nil, x.P(), pred.P())
		a := g.Add("Exp", nil, sw.Out(0)) // true branch
		b := g.Add("Neg", nil, sw.Out(1)) // false branch
		m := g.Add("Merge", nil, a.P(), b.P())
		g.Outputs = []graph.Port{m.P()}
		return g
	}
	g := build()
	pool := tensor.NewPool()
	x := tensor.FromSlice([]float64{1, -2, 3})
	for i := 0; i < 6; i++ {
		pred := i%2 == 0
		res, err := Run(g, map[string]graph.Val{"x": x, "p": pred}, Options{Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Outputs[0].(*tensor.Tensor)
		want := tensor.Neg(x)
		if pred {
			want = tensor.Exp(x)
		}
		if !tensor.Equal(got, want) {
			t.Fatalf("iter %d pred=%v: got %v want %v", i, pred, got, want)
		}
	}
}

// TestPooledConstUntouched: constants are shared across executions and must
// never be written in place or recycled.
func TestPooledConstUntouched(t *testing.T) {
	g := graph.New()
	cn := g.Const(tensor.FromSlice([]float64{1, 2, 3}))
	x := g.Placeholder("x")
	s := g.Add("Add", nil, cn.P(), x.P())
	e := g.Add("Exp", nil, s.P())
	g.Outputs = []graph.Port{e.P()}
	pool := tensor.NewPool()
	want := []float64{1, 2, 3}
	for i := 0; i < 4; i++ {
		xv := tensor.FromSlice([]float64{float64(i), 0, 1})
		if _, err := Run(g, map[string]graph.Val{"x": xv}, Options{Pool: pool}); err != nil {
			t.Fatal(err)
		}
		cv := cn.Attr("value").(*tensor.Tensor)
		for j, v := range cv.Data() {
			if v != want[j] {
				t.Fatalf("constant mutated: %v", cv.Data())
			}
		}
	}
}

// TestPooledVariableAndUpdate: a Variable snapshot comes from the pool, the
// AssignSub deferred update still applies exactly once, and plan-on/plan-off
// replays keep the store bit-identical.
func TestPooledVariableAndUpdate(t *testing.T) {
	build := func() *graph.Graph {
		g := graph.New()
		w := g.Variable("w")
		x := g.Placeholder("x")
		h := g.Add("Mul", nil, w.P(), x.P())
		loss := g.Add("Sum", nil, h.P())
		upd := g.Add("AssignSub", map[string]graph.Val{"name": "w", "lr": 0.5}, h.P())
		g.Updates = append(g.Updates, upd)
		g.Outputs = []graph.Port{loss.P()}
		return g
	}
	run := func(pool *tensor.Pool) *vars.Store {
		st := vars.NewStore()
		st.Set("w", tensor.FromSlice([]float64{1, 2, 3, 4}))
		g := build()
		x := tensor.FromSlice([]float64{1, 1, 2, 2})
		for i := 0; i < 3; i++ {
			if _, err := Run(g, map[string]graph.Val{"x": x}, Options{Store: st, Pool: pool}); err != nil {
				t.Fatal(err)
			}
		}
		return st
	}
	plain := run(nil)
	pooled := run(tensor.NewPool())
	a, _ := plain.Get("w")
	b, _ := pooled.Get("w")
	if !tensor.Equal(a, b) {
		t.Fatalf("store diverged: plain %v pooled %v", a, b)
	}
}

// TestMemoryPlanStructure sanity-checks the plan on the chain graph: the
// intermediate elementwise results are releasable, the output is pinned, and
// in-place is planned for sole-consumer chain links.
func TestMemoryPlanStructure(t *testing.T) {
	g := chainGraph(6)
	mp := graph.BuildMemoryPlan(g)
	outCls := mp.OutClass[len(g.Nodes)-1][0]
	if mp.Releasable[outCls] {
		t.Fatal("graph output class must be pinned")
	}
	inPlace := 0
	for i, nd := range g.Nodes {
		if mp.InPlace[i] >= 0 {
			inPlace++
			if nd.Op == "Placeholder" || nd.Op == "Const" {
				t.Fatalf("in-place planned on %s", nd.Op)
			}
		}
	}
	// Chain links after the first op consume a pooled sole-consumer input.
	if inPlace < 3 {
		t.Fatalf("expected in-place on most chain links, got %d", inPlace)
	}
	// Feed classes (placeholder outputs) must never be releasable or
	// pool-recorded.
	for i, nd := range g.Nodes {
		if nd.Op == "Placeholder" {
			if mp.PoolRecord[i][0] {
				t.Fatal("placeholder output marked pool-recorded")
			}
			if mp.Releasable[mp.OutClass[i][0]] && mp.Refs[mp.OutClass[i][0]] > 0 {
				// Releasable feeds are fine only if nothing records a buffer;
				// the executor never adopts non-fresh ports, so this is just
				// a structural sanity note — but the y feed with many
				// consumers must survive all of them, which adoption-free
				// handling guarantees.
				continue
			}
		}
	}
}

// TestPooledIdentityAliasPinned: an Identity forwarding a computed tensor to
// the output must pin the whole alias class (no recycling of the buffer).
func TestPooledIdentityAliasPinned(t *testing.T) {
	g := graph.New()
	x := g.Placeholder("x")
	e := g.Add("Exp", nil, x.P())
	id := g.Add("Identity", nil, e.P())
	g.Outputs = []graph.Port{id.P()}
	mp := graph.BuildMemoryPlan(g)
	for i, nd := range g.Nodes {
		if nd.Op == "Exp" {
			if mp.Releasable[mp.OutClass[i][0]] {
				t.Fatal("Exp output aliased to graph output must be pinned")
			}
		}
	}
	pool := tensor.NewPool()
	res, err := Run(g, map[string]graph.Val{"x": tensor.FromSlice([]float64{1, 2})}, Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outputs[0].(*tensor.Tensor)
	snap := out.Clone()
	for i := 0; i < 3; i++ {
		if _, err := Run(g, map[string]graph.Val{"x": tensor.FromSlice([]float64{3, 4})}, Options{Pool: pool}); err != nil {
			t.Fatal(err)
		}
	}
	if !tensor.Equal(out, snap) {
		t.Fatal("aliased output buffer was recycled")
	}
}

// TestPooledConvGraph replays a conv+pool+matmul forward/backward-shaped
// graph, checking pooled results against plan-off execution.
func TestPooledConvGraph(t *testing.T) {
	g := graph.New()
	x := g.Placeholder("x")
	w := g.Placeholder("w")
	conv := g.Add("Conv2D", map[string]graph.Val{"stride": 1, "pad": 1}, x.P(), w.P())
	r := g.Add("ReLU", nil, conv.P())
	mp := g.Add("MaxPool", map[string]graph.Val{"k": 2, "stride": 2}, r.P())
	rs := g.Add("Reshape", map[string]graph.Val{"shape": []int{2, -1}}, mp.P())
	sm := g.Add("Softmax", nil, rs.P())
	sum := g.Add("Sum", nil, sm.P())
	g.Outputs = []graph.Port{sum.P()}

	rng := tensor.NewRNG(5)
	feeds := map[string]graph.Val{
		"x": rng.Randn(2, 3, 8, 8),
		"w": rng.Randn(4, 3, 3, 3),
	}
	want, err := Run(g, feeds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool := tensor.NewPool()
	arena := NewArena()
	for i := 0; i < 4; i++ {
		got, err := Run(g, feeds, Options{Pool: pool, Arena: arena})
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(got.Outputs[0].(*tensor.Tensor), want.Outputs[0].(*tensor.Tensor)) {
			t.Fatalf("iter %d: pooled conv graph differs", i)
		}
	}
	if pool.Stats().Hits == 0 {
		t.Fatal("conv replay never hit the pool")
	}
}

// BenchmarkElementwiseChainReplay measures steady-state replay of a 64-op
// elementwise chain. The acceptance target is ≤2 allocs per graph op; the
// custom allocs/op metric divides the per-replay allocations by the op
// count.
func BenchmarkElementwiseChainReplay(b *testing.B) {
	const ops = 64
	for _, mode := range []string{"plan-off", "plan-on"} {
		b.Run(mode, func(b *testing.B) {
			g := chainGraph(ops)
			feeds, _, _ := feedsXY(8, 32)
			opts := Options{}
			if mode == "plan-on" {
				opts.Pool = tensor.NewPool()
				opts.Arena = NewArena()
			}
			if _, err := Run(g, feeds, opts); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(g, feeds, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			res := testing.AllocsPerRun(10, func() {
				if _, err := Run(g, feeds, opts); err != nil {
					b.Fatal(err)
				}
			})
			b.ReportMetric(res/float64(len(g.Nodes)), "allocs/graphop")
		})
	}
}

// BenchmarkLeNetShapeReplay replays a LeNet-forward-shaped graph (conv,
// pool, matmul, softmax loss) with the plan on and off.
func BenchmarkLeNetShapeReplay(b *testing.B) {
	build := func() *graph.Graph {
		g := graph.New()
		x := g.Placeholder("x")
		c1 := g.Placeholder("c1")
		c2 := g.Placeholder("c2")
		fc := g.Placeholder("fc")
		y := g.Placeholder("y")
		h := g.Add("Conv2D", map[string]graph.Val{"stride": 1, "pad": 1}, x.P(), c1.P())
		h = g.Add("ReLU", nil, h.P())
		h = g.Add("MaxPool", map[string]graph.Val{"k": 2, "stride": 2}, h.P())
		h = g.Add("Conv2D", map[string]graph.Val{"stride": 1, "pad": 1}, h.P(), c2.P())
		h = g.Add("ReLU", nil, h.P())
		h = g.Add("MaxPool", map[string]graph.Val{"k": 2, "stride": 2}, h.P())
		h = g.Add("Reshape", map[string]graph.Val{"shape": []int{8, -1}}, h.P())
		h = g.Add("MatMul", nil, h.P(), fc.P())
		l := g.Add("CrossEntropy", nil, h.P(), y.P())
		g.Outputs = []graph.Port{l.P()}
		return g
	}
	rng := tensor.NewRNG(9)
	feeds := map[string]graph.Val{
		"x":  rng.Randn(8, 1, 8, 8),
		"c1": rng.Randn(4, 1, 3, 3),
		"c2": rng.Randn(8, 4, 3, 3),
		"fc": rng.Randn(32, 4),
		"y":  tensor.OneHot([]int{0, 1, 2, 3, 0, 1, 2, 3}, 4),
	}
	for _, mode := range []string{"plan-off", "plan-on"} {
		b.Run(mode, func(b *testing.B) {
			g := build()
			opts := Options{}
			if mode == "plan-on" {
				opts.Pool = tensor.NewPool()
				opts.Arena = NewArena()
			}
			if _, err := Run(g, feeds, opts); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(g, feeds, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

var _ = fmt.Sprintf

// TestPooledAliasedInputsNoInPlace: an op consuming the same pooled port
// twice (e.g. CrossEntropyGrad(x, x) surviving CSE) must not be written in
// place — its second input would be destroyed mid-kernel. Regression test
// for the memory plan's shared-input-class guard.
func TestPooledAliasedInputsNoInPlace(t *testing.T) {
	build := func() *graph.Graph {
		g := graph.New()
		x := g.Placeholder("x")
		r := g.Add("ReLU", nil, x.P()) // pooled fresh producer
		ce := g.Add("CrossEntropyGrad", nil, r.P(), r.P())
		s := g.Add("Sum", nil, ce.P())
		g.Outputs = []graph.Port{s.P()}
		return g
	}
	g := build()
	mp := graph.BuildMemoryPlan(g)
	for i, nd := range g.Nodes {
		if nd.Op == "CrossEntropyGrad" && mp.InPlace[i] >= 0 {
			t.Fatal("in-place planned for an op with aliased inputs")
		}
	}
	rng := tensor.NewRNG(21)
	feeds := map[string]graph.Val{"x": rng.Randn(4, 5)}
	want, err := Run(g, feeds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool := tensor.NewPool()
	for i := 0; i < 3; i++ {
		got, err := Run(build(), feeds, Options{Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(got.Outputs[0].(*tensor.Tensor), want.Outputs[0].(*tensor.Tensor)) {
			t.Fatal("pooled CrossEntropyGrad(x, x) differs from plan-off")
		}
	}
}
