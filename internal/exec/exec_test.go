package exec

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/autodiff"
	"repro/internal/graph"
	"repro/internal/tensor"
	"repro/internal/vars"
)

func scalarOut(t *testing.T, res *Result, i int) float64 {
	t.Helper()
	tt, err := graph.AsTensor(unwrap(res.Outputs[i]))
	if err != nil {
		t.Fatalf("output %d: %v", i, err)
	}
	return tt.Item()
}

func TestRunLinearGraph(t *testing.T) {
	g := graph.New()
	x := g.Placeholder("x")
	c := g.Const(tensor.Scalar(3))
	out := g.Add("Mul", nil, x.P(), c.P())
	g.Outputs = []graph.Port{out.P()}
	for _, workers := range []int{1, 4} {
		res, err := Run(g, map[string]graph.Val{"x": tensor.Scalar(7)}, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got := scalarOut(t, res, 0); got != 21 {
			t.Fatalf("workers=%d got %v", workers, got)
		}
	}
}

func TestParallelExecutionOfIndependentOps(t *testing.T) {
	// A wide graph of independent ops must show parallelism > 1 with 4 workers.
	g := graph.New()
	x := g.Placeholder("x")
	var ports []graph.Port
	for i := 0; i < 64; i++ {
		n := g.Add("Tanh", nil, x.P())
		m := g.Add("MatMul", nil, n.P(), n.P())
		ports = append(ports, m.P())
	}
	sum := g.Add("Add", nil, ports[0], ports[1])
	for _, p := range ports[2:] {
		sum = g.Add("Add", nil, sum.P(), p)
	}
	g.Outputs = []graph.Port{sum.P()}
	stats := &Stats{}
	rng := tensor.NewRNG(1)
	_, err := Run(g, map[string]graph.Val{"x": rng.Randn(150, 150)}, Options{Workers: 8, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxParallel.Load() < 2 {
		t.Fatalf("no parallelism observed: max %d", stats.MaxParallel.Load())
	}
}

func TestVariableAndAssignSubDeferred(t *testing.T) {
	store := vars.NewStore()
	store.Set("w", tensor.FromSlice([]float64{10}))
	g := graph.New()
	w := g.Variable("w")
	gradc := g.Const(tensor.FromSlice([]float64{2}))
	upd := g.Add("AssignSub", map[string]graph.Val{"name": "w", "lr": 0.5}, gradc.P())
	g.Updates = []*graph.Node{upd}
	g.Outputs = []graph.Port{w.P()}
	res, err := Run(g, nil, Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	// Output read the pre-update value; store now holds 10 - 0.5*2 = 9.
	outT, _ := graph.AsTensor(res.Outputs[0])
	if outT.At(0) != 10 {
		t.Fatalf("read-after-write hazard: output %v", outT)
	}
	if store.MustGet("w").At(0) != 9 {
		t.Fatalf("update not applied: %v", store.MustGet("w"))
	}
}

func TestAssertPassAndFail(t *testing.T) {
	g := graph.New()
	x := g.Placeholder("x")
	a := g.Add("Assert", map[string]graph.Val{"kind": "eq-int", "expected": 5, "desc": "loop trips"}, x.P())
	g.Outputs = []graph.Port{a.P()}
	if _, err := Run(g, map[string]graph.Val{"x": 5}, Options{}); err != nil {
		t.Fatalf("assert should pass: %v", err)
	}
	_, err := Run(g, map[string]graph.Val{"x": 6}, Options{})
	var ae *AssertError
	if !errors.As(err, &ae) {
		t.Fatalf("want AssertError, got %v", err)
	}
	if ae.Kind != "eq-int" {
		t.Fatalf("kind %q", ae.Kind)
	}
	// DisableAsserts skips the check.
	if _, err := Run(g, map[string]graph.Val{"x": 6}, Options{DisableAsserts: true}); err != nil {
		t.Fatalf("disabled assert still failed: %v", err)
	}
}

func TestAssertShapeWildcards(t *testing.T) {
	g := graph.New()
	x := g.Placeholder("x")
	a := g.Add("Assert", map[string]graph.Val{"kind": "shape", "shape": []int{-1, 8}, "desc": "batch"}, x.P())
	g.Outputs = []graph.Port{a.P()}
	if _, err := Run(g, map[string]graph.Val{"x": tensor.Zeros(4, 8)}, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, map[string]graph.Val{"x": tensor.Zeros(3, 8)}, Options{}); err != nil {
		t.Fatal("wildcard dim rejected different batch")
	}
	if _, err := Run(g, map[string]graph.Val{"x": tensor.Zeros(3, 9)}, Options{}); err == nil {
		t.Fatal("fixed dim mismatch not caught")
	}
}

func TestFailedAssertBlocksStateUpdates(t *testing.T) {
	// This is the all-or-nothing guarantee of §3.2: an AssignSub control-
	// dependent on a failing assert must not fire.
	store := vars.NewStore()
	store.Set("w", tensor.FromSlice([]float64{1}))
	g := graph.New()
	x := g.Placeholder("x")
	a := g.Add("Assert", map[string]graph.Val{"kind": "true", "desc": "branch"}, x.P())
	gradc := g.Const(tensor.FromSlice([]float64{1}))
	upd := g.Add("AssignSub", map[string]graph.Val{"name": "w", "lr": 1.0}, gradc.P())
	upd.ControlDeps = append(upd.ControlDeps, a)
	g.Updates = []*graph.Node{upd}
	g.Outputs = []graph.Port{a.P()}
	_, err := Run(g, map[string]graph.Val{"x": false}, Options{Store: store})
	if err == nil {
		t.Fatal("assert should fail")
	}
	if store.MustGet("w").At(0) != 1 {
		t.Fatalf("state mutated despite failed assertion: %v", store.MustGet("w"))
	}
}

func TestSwitchMergeDeadTokens(t *testing.T) {
	build := func() *graph.Graph {
		g := graph.New()
		x := g.Placeholder("x")
		pred := g.Placeholder("p")
		sw := g.Add("Switch", nil, x.P(), pred.P())
		// true side: x*2 ; false side: x+100
		two := g.Const(tensor.Scalar(2))
		hundred := g.Const(tensor.Scalar(100))
		tside := g.Add("Mul", nil, sw.Out(0), two.P())
		fside := g.Add("Add", nil, sw.Out(1), hundred.P())
		m := g.Add("Merge", nil, tside.P(), fside.P())
		g.Outputs = []graph.Port{m.P()}
		return g
	}
	g := build()
	res, err := Run(g, map[string]graph.Val{"x": tensor.Scalar(5), "p": true}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := scalarOut(t, res, 0); got != 10 {
		t.Fatalf("true branch got %v", got)
	}
	res, err = Run(g, map[string]graph.Val{"x": tensor.Scalar(5), "p": false}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := scalarOut(t, res, 0); got != 105 {
		t.Fatalf("false branch got %v", got)
	}
}

func TestDeadBranchSideEffectsSkipped(t *testing.T) {
	// A Print op on the untaken branch must not execute.
	g := graph.New()
	x := g.Placeholder("x")
	pred := g.Placeholder("p")
	sw := g.Add("Switch", nil, x.P(), pred.P())
	g.Add("Print", nil, sw.Out(1)) // only on false side
	m := g.Add("Merge", nil, sw.Out(0), sw.Out(1))
	g.Outputs = []graph.Port{m.P()}
	res, err := Run(g, map[string]graph.Val{"x": tensor.Scalar(1), "p": true}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Printed) != 0 {
		t.Fatalf("dead Print executed: %v", res.Printed)
	}
	res, err = Run(g, map[string]graph.Val{"x": tensor.Scalar(1), "p": false}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Printed) != 1 {
		t.Fatalf("live Print skipped")
	}
}

func TestWhileLoopComputesFactorial(t *testing.T) {
	// while i <= n: acc *= i; i += 1
	cond := graph.New()
	ci := cond.Placeholder("arg0")
	cn := cond.Placeholder("arg2")
	le := cond.Add("Cmp", map[string]graph.Val{"op": "<="}, ci.P(), cn.P())
	cond.Outputs = []graph.Port{le.P()}

	body := graph.New()
	bi := body.Placeholder("arg0")
	bacc := body.Placeholder("arg1")
	bn := body.Placeholder("arg2")
	newAcc := body.Add("Mul", nil, bacc.P(), bi.P())
	one := body.Const(tensor.Scalar(1))
	newI := body.Add("Add", nil, bi.P(), one.P())
	body.Outputs = []graph.Port{newI.P(), newAcc.P(), bn.P()}

	g := graph.New()
	i0 := g.Const(tensor.Scalar(1))
	acc0 := g.Const(tensor.Scalar(1))
	n0 := g.Placeholder("n")
	w := g.Add("While", map[string]graph.Val{"cond": cond, "body": body}, i0.P(), acc0.P(), n0.P())
	w.NumOutputs = 3
	g.Outputs = []graph.Port{w.Out(1)}
	res, err := Run(g, map[string]graph.Val{"n": tensor.Scalar(5)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := scalarOut(t, res, 0); got != 120 {
		t.Fatalf("5! = %v", got)
	}
}

func TestInvokeRecursionFibonacci(t *testing.T) {
	// fib(n) computed with a recursive Invoke + Switch/Merge base case.
	fg := graph.New()
	n := fg.Placeholder("arg0")
	two := fg.Const(tensor.Scalar(2))
	isBase := fg.Add("Cmp", map[string]graph.Val{"op": "<"}, n.P(), two.P())
	sw := fg.Add("Switch", nil, n.P(), isBase.P())
	// base: return n (port 0 = true side)
	baseVal := fg.Add("Identity", nil, sw.Out(0))
	// recursive side:
	onec := fg.Const(tensor.Scalar(1))
	nm1 := fg.Add("Sub", nil, sw.Out(1), onec.P())
	nm2 := fg.Add("Sub", nil, nm1.P(), onec.P())
	call1 := fg.Add("Invoke", map[string]graph.Val{"func": fg}, nm1.P())
	call2 := fg.Add("Invoke", map[string]graph.Val{"func": fg}, nm2.P())
	recSum := fg.Add("Add", nil, call1.P(), call2.P())
	m := fg.Add("Merge", nil, baseVal.P(), recSum.P())
	fg.Outputs = []graph.Port{m.P()}

	g := graph.New()
	x := g.Placeholder("x")
	call := g.Add("Invoke", map[string]graph.Val{"func": fg}, x.P())
	g.Outputs = []graph.Port{call.P()}

	for _, workers := range []int{1, 4} {
		res, err := Run(g, map[string]graph.Val{"x": tensor.Scalar(10)}, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got := scalarOut(t, res, 0); got != 55 {
			t.Fatalf("fib(10)=%v", got)
		}
	}
}

// fakeHeap implements Heap over plain maps for tests.
type fakeHeap struct {
	attrs map[string]any
}

func (h *fakeHeap) GetAttr(obj any, name string) (any, error) {
	v, ok := h.attrs[name]
	if !ok {
		return nil, errors.New("no attr " + name)
	}
	return v, nil
}
func (h *fakeHeap) SetAttr(obj any, name string, v any) error {
	h.attrs[name] = v
	return nil
}
func (h *fakeHeap) GetSubscr(obj, key any) (any, error) { return h.attrs["sub"], nil }
func (h *fakeHeap) SetSubscr(obj, key, v any) error     { h.attrs["sub"] = v; return nil }

func TestHeapOverlayDeferredWriteback(t *testing.T) {
	h := &fakeHeap{attrs: map[string]any{"state": tensor.Scalar(1)}}
	objRef := struct{}{}
	g := graph.New()
	obj := g.ConstVal(objRef)
	read1 := g.Add("PyGetAttr", map[string]graph.Val{"attr": "state"}, obj.P())
	two := g.Const(tensor.Scalar(2))
	newState := g.Add("Mul", nil, read1.P(), two.P())
	set := g.Add("PySetAttr", map[string]graph.Val{"attr": "state"}, obj.P(), newState.P())
	// A later read must see the overlay's local copy (step 3 in Figure 5).
	read2 := g.Add("PyGetAttr", map[string]graph.Val{"attr": "state"}, obj.P())
	read2.ControlDeps = append(read2.ControlDeps, set)
	g.Updates = []*graph.Node{set}
	g.Outputs = []graph.Port{read2.P()}

	res, err := Run(g, nil, Options{Heap: h})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := graph.AsTensor(res.Outputs[0])
	if got.Item() != 2 {
		t.Fatalf("overlay read got %v", got.Item())
	}
	// Write-back committed after success.
	final := h.attrs["state"].(*tensor.Tensor)
	if final.Item() != 2 {
		t.Fatalf("writeback missing: %v", final.Item())
	}
}

func TestHeapWritebackAbortedOnAssertFailure(t *testing.T) {
	h := &fakeHeap{attrs: map[string]any{"state": tensor.Scalar(1)}}
	objRef := struct{}{}
	g := graph.New()
	obj := g.ConstVal(objRef)
	read := g.Add("PyGetAttr", map[string]graph.Val{"attr": "state"}, obj.P())
	two := g.Const(tensor.Scalar(2))
	newState := g.Add("Mul", nil, read.P(), two.P())
	set := g.Add("PySetAttr", map[string]graph.Val{"attr": "state"}, obj.P(), newState.P())
	pred := g.Placeholder("p")
	a := g.Add("Assert", map[string]graph.Val{"kind": "true", "desc": "spec"}, pred.P())
	// The assert runs after the write was overlaid but before commit.
	_ = a
	g.Updates = []*graph.Node{set}
	g.Outputs = []graph.Port{a.P()}
	_, err := Run(g, map[string]graph.Val{"p": false}, Options{Heap: h})
	if err == nil {
		t.Fatal("assert should fail")
	}
	if h.attrs["state"].(*tensor.Tensor).Item() != 1 {
		t.Fatal("heap mutated despite assumption failure")
	}
}

func TestTapeModeGradientsThroughDynamicGraph(t *testing.T) {
	// loss = sum(relu(x @ w)) through a Switch/Merge (always-true branch),
	// differentiated by the executed-trace tape.
	store := vars.NewStore()
	rng := tensor.NewRNG(3)
	wv := rng.Randn(3, 2)
	store.Set("w", wv)
	xv := rng.Randn(2, 3)

	run := func() (map[string]*tensor.Tensor, float64) {
		g := graph.New()
		x := g.Placeholder("x")
		w := g.Variable("w")
		mm := g.Add("MatMul", nil, x.P(), w.P())
		pred := g.ConstVal(true)
		sw := g.Add("Switch", nil, mm.P(), pred.P())
		act := g.Add("ReLU", nil, sw.Out(0))
		alt := g.Add("Tanh", nil, sw.Out(1))
		m := g.Add("Merge", nil, act.P(), alt.P())
		loss := g.Add("Sum", nil, m.P())
		g.Outputs = []graph.Port{loss.P()}
		tape := autodiff.NewTape()
		res, err := Run(g, map[string]graph.Val{"x": xv}, Options{Store: store, Tape: tape})
		if err != nil {
			t.Fatal(err)
		}
		lossNode := res.Outputs[0].(*autodiff.Node)
		return tape.Gradient(lossNode), lossNode.Value.Item()
	}
	grads, _ := run()
	g := grads["w"]
	// numeric check
	const h = 1e-6
	for _, i := range []int{0, 3, 5} {
		orig := wv.Data()[i]
		wv.Data()[i] = orig + h
		_, up := run()
		wv.Data()[i] = orig - h
		_, dn := run()
		wv.Data()[i] = orig
		num := (up - dn) / (2 * h)
		if math.Abs(num-g.Data()[i]) > 1e-5 {
			t.Fatalf("grad[%d] numeric %v analytic %v", i, num, g.Data()[i])
		}
	}
}

func TestTapeModeGradientThroughInvokeRecursion(t *testing.T) {
	// f(x, n) = x * f(x, n-1), f(x, 0) = x  => f(x, 3) = x^4, df/dx = 4x^3.
	store := vars.NewStore()
	store.Set("x", tensor.Scalar(1.5))

	fg := graph.New()
	xa := fg.Placeholder("arg0")
	na := fg.Placeholder("arg1")
	zero := fg.Const(tensor.Scalar(0))
	isBase := fg.Add("Cmp", map[string]graph.Val{"op": "<="}, na.P(), zero.P())
	swX := fg.Add("Switch", nil, xa.P(), isBase.P())
	swN := fg.Add("Switch", nil, na.P(), isBase.P())
	baseOut := fg.Add("Identity", nil, swX.Out(0))
	onec := fg.Const(tensor.Scalar(1))
	nm1 := fg.Add("Sub", nil, swN.Out(1), onec.P())
	rec := fg.Add("Invoke", map[string]graph.Val{"func": fg}, swX.Out(1), nm1.P())
	prod := fg.Add("Mul", nil, swX.Out(1), rec.P())
	m := fg.Add("Merge", nil, baseOut.P(), prod.P())
	fg.Outputs = []graph.Port{m.P()}

	g := graph.New()
	x := g.Variable("x")
	n := g.Const(tensor.Scalar(3))
	call := g.Add("Invoke", map[string]graph.Val{"func": fg}, x.P(), n.P())
	g.Outputs = []graph.Port{call.P()}

	tape := autodiff.NewTape()
	res, err := Run(g, nil, Options{Store: store, Tape: tape})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outputs[0].(*autodiff.Node)
	want := math.Pow(1.5, 4)
	if math.Abs(out.Value.Item()-want) > 1e-9 {
		t.Fatalf("f=%v want %v", out.Value.Item(), want)
	}
	grad := tape.Gradient(out)["x"]
	wantG := 4 * math.Pow(1.5, 3)
	if math.Abs(grad.Item()-wantG) > 1e-9 {
		t.Fatalf("df/dx=%v want %v", grad.Item(), wantG)
	}
}

func TestRunDetectsCycle(t *testing.T) {
	g := graph.New()
	a := g.Add("Identity", nil)
	b := g.Add("Identity", nil, a.P())
	a.Inputs = []graph.Port{b.P()} // cycle
	g.Outputs = []graph.Port{b.P()}
	if _, err := Run(g, nil, Options{}); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestStatsCounts(t *testing.T) {
	g := graph.New()
	x := g.Placeholder("x")
	y := g.Add("Tanh", nil, x.P())
	g.Outputs = []graph.Port{y.P()}
	stats := &Stats{}
	if _, err := Run(g, map[string]graph.Val{"x": tensor.Scalar(1)}, Options{Stats: stats}); err != nil {
		t.Fatal(err)
	}
	if stats.OpsExecuted.Load() != 2 {
		t.Fatalf("ops=%d", stats.OpsExecuted.Load())
	}
}

// TestKernelPanicRecovered covers the safeExecNode recovery path: malformed
// feeds that panic a tensor kernel deep inside the scheduler must surface as
// errors — on both the serial and the parallel scheduler — never kill the
// process. This is the property the serving layer relies on to survive bad
// client requests routed through Engine.Call.
func TestKernelPanicRecovered(t *testing.T) {
	g := graph.New()
	x := g.Placeholder("x")
	y := g.Placeholder("y")
	out := g.Add("MatMul", nil, x.P(), y.P())
	g.Outputs = []graph.Port{out.P()}
	feeds := map[string]graph.Val{
		// [1,5] x [2,3]: inner dimensions disagree, the MatMul kernel panics.
		"x": tensor.New([]int{1, 5}, []float64{1, 2, 3, 4, 5}),
		"y": tensor.New([]int{2, 3}, []float64{1, 2, 3, 4, 5, 6}),
	}
	for _, workers := range []int{1, 4} {
		res, err := Run(g, feeds, Options{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: malformed feed executed: %v", workers, res.Outputs)
		}
		var ae *AssertError
		if errors.As(err, &ae) {
			t.Fatalf("workers=%d: kernel panic misreported as assertion failure: %v", workers, err)
		}
	}
	// The graph (and its cached plan) must still run good feeds afterwards.
	good := map[string]graph.Val{
		"x": tensor.New([]int{1, 2}, []float64{1, 2}),
		"y": tensor.New([]int{2, 3}, []float64{1, 2, 3, 4, 5, 6}),
	}
	if _, err := Run(g, good, Options{Workers: 4}); err != nil {
		t.Fatalf("graph poisoned after recovered panic: %v", err)
	}
}

// TestCtxCancellationLandsInsideWhile cancels a context while a long While
// loop is executing and checks that Run stops mid-execution — inside the
// graph, not at a step boundary — and that no deferred variable update was
// committed (the all-or-nothing guarantee holds for canceled runs too).
func TestCtxCancellationLandsInsideWhile(t *testing.T) {
	for _, workers := range []int{1, 4} {
		// while i < n: i += 1, with n far beyond what could run before the
		// cancel fires; an AssignSub downstream must never commit.
		cond := graph.New()
		ci := cond.Placeholder("arg0")
		cn := cond.Placeholder("arg1")
		lt := cond.Add("Cmp", map[string]graph.Val{"op": "<"}, ci.P(), cn.P())
		cond.Outputs = []graph.Port{lt.P()}

		body := graph.New()
		bi := body.Placeholder("arg0")
		bn := body.Placeholder("arg1")
		one := body.Const(tensor.Scalar(1))
		ni := body.Add("Add", nil, bi.P(), one.P())
		body.Outputs = []graph.Port{ni.P(), bn.P()}

		g := graph.New()
		i0 := g.Const(tensor.Scalar(0))
		n0 := g.Const(tensor.Scalar(1e18))
		w := g.Add("While", map[string]graph.Val{
			"cond": cond, "body": body, "maxIter": 1 << 40,
		}, i0.P(), n0.P())
		w.NumOutputs = 2
		gradc := g.Const(tensor.FromSlice([]float64{2}))
		upd := g.Add("AssignSub", map[string]graph.Val{"name": "w", "lr": 0.5}, gradc.P())
		upd.ControlDeps = append(upd.ControlDeps, w)
		g.Updates = []*graph.Node{upd}
		g.Outputs = []graph.Port{w.Out(0)}

		store := vars.NewStore()
		store.Set("w", tensor.FromSlice([]float64{10}))
		ctx, cancel := context.WithCancel(context.Background())
		time.AfterFunc(20*time.Millisecond, cancel)
		start := time.Now()
		_, err := Run(g, nil, Options{Workers: workers, Store: store, Ctx: ctx})
		elapsed := time.Since(start)
		if err == nil {
			t.Fatalf("workers=%d: canceled run succeeded", workers)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled in the chain", workers, err)
		}
		// Far below the time the full loop would need: cancellation landed
		// inside the execution.
		if elapsed > 30*time.Second {
			t.Fatalf("workers=%d: cancellation took %v", workers, elapsed)
		}
		if store.MustGet("w").At(0) != 10 {
			t.Fatalf("workers=%d: canceled run committed an update: %v", workers, store.MustGet("w"))
		}
	}
}

// TestCtxPreCanceledRunsNothing: a context canceled before Run starts stops
// the schedule before any node executes.
func TestCtxPreCanceledRunsNothing(t *testing.T) {
	g := graph.New()
	x := g.Placeholder("x")
	c := g.Const(tensor.Scalar(3))
	out := g.Add("Mul", nil, x.P(), c.P())
	g.Outputs = []graph.Port{out.P()}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var st Stats
	_, err := Run(g, map[string]graph.Val{"x": tensor.Scalar(7)}, Options{Ctx: ctx, Stats: &st})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if st.OpsExecuted.Load() != 0 {
		t.Fatalf("pre-canceled run executed %d ops", st.OpsExecuted.Load())
	}
}
