package exec

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// TestGraphProfileAccumulates replays one planned graph enough times for
// the rotating sampling tick to cover every node, then checks the
// always-on profile: exact invocation counts, timing samples on every
// node, and rent/in-place attribution on the pooled path.
func TestGraphProfileAccumulates(t *testing.T) {
	g := graph.New()
	x := g.Placeholder("x")
	c := g.Const(tensor.NewRNG(1).Randn(8, 8))
	mm := g.Add("MatMul", nil, x.P(), c.P())
	rl := g.Add("ReLU", nil, mm.P())
	out := g.Add("MatMul", nil, rl.P(), c.P())
	g.Outputs = []graph.Port{out.P()}

	pool := tensor.NewPool()
	feed := map[string]graph.Val{"x": tensor.NewRNG(2).Randn(8, 8)}
	// profileStride+1 runs: the tick visits every residue once, so each
	// node index gets at least one timing sample.
	const runs = profileStride + 1
	for i := 0; i < runs; i++ {
		if _, err := Run(g, feed, Options{Pool: pool}); err != nil {
			t.Fatal(err)
		}
	}

	p := ProfileOf(g)
	if p == nil {
		t.Fatal("planned graph has no profile")
	}
	snap := p.Snapshot()
	if snap.Runs != runs {
		t.Fatalf("runs = %d, want %d", snap.Runs, runs)
	}
	if len(snap.Nodes) != len(g.Nodes) {
		t.Fatalf("%d node profiles for %d nodes", len(snap.Nodes), len(g.Nodes))
	}
	var mmProf, rlProf NodeProfile
	for _, n := range snap.Nodes {
		if n.Calls != runs {
			t.Errorf("node %d (%s): calls = %d, want %d", n.Node, n.Op, n.Calls, runs)
		}
		if n.Samples < 1 {
			t.Errorf("node %d (%s): no timing samples after %d runs", n.Node, n.Op, runs)
		}
		switch n.Node {
		case mm.ID:
			mmProf = n
		case rl.ID:
			rlProf = n
		}
	}
	// MatMul's output is an intermediate: rented from the pool every run.
	if mmProf.Rents != runs {
		t.Errorf("MatMul rents = %d, want %d", mmProf.Rents, runs)
	}
	// Relu consumes a dying pooled input of the same shape: every run is
	// an in-place rebind, never a fresh rent.
	if rlProf.InPlace != runs || rlProf.Rents != 0 {
		t.Errorf("Relu in-place = %d rents = %d, want %d / 0",
			rlProf.InPlace, rlProf.Rents, runs)
	}
	// EstNS scales sampled time by calls/samples: sampled work implies a
	// nonzero estimate, and the estimate is never below what was sampled.
	if mmProf.SampledNS > 0 && mmProf.EstNS < mmProf.SampledNS {
		t.Errorf("MatMul est %dns < sampled %dns", mmProf.EstNS, mmProf.SampledNS)
	}
	// The memory plan's class residency: at least one releasable class
	// adopted the 8x8 intermediate buffer.
	found := false
	for _, cl := range snap.Classes {
		if cl.Releasable && cl.Elems == 64 {
			found = true
		}
	}
	if !found {
		t.Errorf("no releasable class with the intermediate's 64 elems: %+v", snap.Classes)
	}

	// Nil-safety: unplanned graphs and nil profiles degrade to zeroes.
	if ProfileOf(graph.New()) != nil {
		t.Fatal("unplanned graph returned a profile")
	}
	var nilProf *GraphProfile
	if s := nilProf.Snapshot(); s.Runs != 0 || s.Nodes != nil {
		t.Fatalf("nil snapshot = %+v", s)
	}
}

// TestGraphProfileCountsDeadTokenSkips pins the derived-invocation rule
// (calls = runs − skips): nodes on an untaken Switch branch must not be
// counted as executed.
func TestGraphProfileCountsDeadTokenSkips(t *testing.T) {
	g := graph.New()
	x := g.Placeholder("x")
	pred := g.Placeholder("p")
	sw := g.Add("Switch", nil, x.P(), pred.P())
	two := g.Const(tensor.Scalar(2))
	hundred := g.Const(tensor.Scalar(100))
	tside := g.Add("Mul", nil, sw.Out(0), two.P())
	fside := g.Add("Add", nil, sw.Out(1), hundred.P())
	m := g.Add("Merge", nil, tside.P(), fside.P())
	g.Outputs = []graph.Port{m.P()}

	const trueRuns, falseRuns = 5, 3
	for i := 0; i < trueRuns; i++ {
		if _, err := Run(g, map[string]graph.Val{"x": tensor.Scalar(5), "p": true}, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < falseRuns; i++ {
		if _, err := Run(g, map[string]graph.Val{"x": tensor.Scalar(5), "p": false}, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	snap := ProfileOf(g).Snapshot()
	byNode := make(map[int]NodeProfile, len(snap.Nodes))
	for _, n := range snap.Nodes {
		byNode[n.Node] = n
	}
	if got := byNode[tside.ID].Calls; got != trueRuns {
		t.Errorf("true-side calls = %d, want %d", got, trueRuns)
	}
	if got := byNode[fside.ID].Calls; got != falseRuns {
		t.Errorf("false-side calls = %d, want %d", got, falseRuns)
	}
	if got := byNode[m.ID].Calls; got != trueRuns+falseRuns {
		t.Errorf("merge calls = %d, want %d", got, trueRuns+falseRuns)
	}
}

// TestProfileHotPathAllocationFree pins the 0-alloc contract on every
// profiler primitive the replay loop touches per node.
func TestProfileHotPathAllocationFree(t *testing.T) {
	g := graph.New()
	x := g.Placeholder("x")
	g.Outputs = []graph.Port{g.Add("ReLU", nil, x.P()).P()}
	p := newGraphProfile(g, nil)
	var nilMetrics *Metrics
	if n := testing.AllocsPerRun(1000, func() {
		tick := p.beginRun()
		_ = tick
		p.record(0, time.Microsecond, nilMetrics, "ReLU")
		p.noteRent(1)
		p.noteInPlace(1)
		p.skip(1)
	}); n != 0 {
		t.Fatalf("profiler hot path allocates %v/op", n)
	}
}

// BenchmarkProfileAccumulation prices the per-node profiler work the
// replay loop pays: the untimed common case (beginRun amortized plus the
// stride check) and the 1-in-profileStride timed path with per-op
// registry accumulation. Companion to obs.BenchmarkObsOverhead; both
// must stay allocation-free.
func BenchmarkProfileAccumulation(b *testing.B) {
	g := graph.New()
	x := g.Placeholder("x")
	g.Outputs = []graph.Port{g.Add("ReLU", nil, x.P()).P()}
	b.Run("begin_run", func(b *testing.B) {
		p := newGraphProfile(g, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = p.beginRun()
		}
	})
	b.Run("record_sampled", func(b *testing.B) {
		p := newGraphProfile(g, nil)
		var m *Metrics // nil-safe: prices the profile-only path
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.record(0, time.Microsecond, m, "ReLU")
		}
	})
	b.Run("record_sampled_metrics", func(b *testing.B) {
		p := newGraphProfile(g, nil)
		m := NewMetrics(obs.NewRegistry())
		m.observeSampledOp("ReLU", time.Microsecond) // pre-register the op
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.record(0, time.Microsecond, m, "ReLU")
		}
	})
	b.Run("note_rent_inplace", func(b *testing.B) {
		p := newGraphProfile(g, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.noteRent(0)
			p.noteInPlace(0)
		}
	})
}
