package exec

import (
	"fmt"
	"strings"

	"repro/internal/autodiff"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// Unwrap converts tape-mode values (autodiff nodes) back to raw values;
// exported for callers inspecting dynamic-graph outputs.
func Unwrap(v graph.Val) graph.Val { return unwrap(v) }

// unwrap converts tape-mode values (autodiff nodes) to raw values for
// non-differentiable kernels.
func unwrap(v graph.Val) graph.Val {
	if n, ok := v.(*autodiff.Node); ok {
		return n.Value
	}
	return v
}

func unwrapAll(in []graph.Val) []graph.Val {
	out := make([]graph.Val, len(in))
	for i, v := range in {
		out[i] = unwrap(v)
	}
	return out
}

// execNode dispatches one node. It handles the impure, control-flow and
// tape-aware operations directly; pure ops fall through to graph.Kernels.
func execNode(g *graph.Graph, nd *graph.Node, in []graph.Val, feeds map[string]graph.Val, c *ctx) ([]graph.Val, error) {
	switch nd.Op {
	case "Placeholder":
		name := nd.StrAttr("name")
		v, ok := feeds[name]
		if !ok {
			return nil, fmt.Errorf("exec: no feed for placeholder %q", name)
		}
		if c.opts.Tape != nil {
			if t, ok := v.(*tensor.Tensor); ok {
				return []graph.Val{autodiff.Const(t)}, nil
			}
		}
		return []graph.Val{v}, nil

	case "Variable":
		name := nd.StrAttr("name")
		if c.opts.Store == nil {
			return nil, fmt.Errorf("exec: Variable %q with no store", name)
		}
		t, ok := c.opts.Store.Get(name)
		if !ok {
			return nil, fmt.Errorf("exec: unknown variable %q", name)
		}
		if c.opts.Tape != nil {
			return []graph.Val{c.opts.Tape.Watch(name, t)}, nil
		}
		// Snapshot the parameter: deferred AssignSub updates mutate the store
		// tensor in place at commit time, and outputs must reflect the value
		// read during execution, not the post-update value.
		return []graph.Val{t.Clone()}, nil

	case "AssignSub":
		// Deferred parameter update: var -= lr * input. Queued until every
		// assertion in the run has passed (all-or-nothing, §3.2).
		name := nd.StrAttr("name")
		lr := 1.0
		if v, ok := nd.Attrs["lr"]; ok {
			lr = v.(float64)
		}
		gvRaw := unwrap(in[0])
		gt, err := graph.AsTensor(gvRaw)
		if err != nil {
			return nil, fmt.Errorf("exec: AssignSub %q: %v", name, err)
		}
		store := c.opts.Store
		delta := tensor.MulScalar(gt, lr)
		c.updMu.Lock()
		c.updates = append(c.updates, func() { store.AssignSub(name, delta) })
		c.updMu.Unlock()
		return []graph.Val{nil}, nil

	case "Assert":
		if c.opts.Stats != nil {
			c.opts.Stats.AssertsRun.Add(1)
		}
		if c.opts.DisableAsserts {
			return []graph.Val{in[0]}, nil
		}
		if err := checkAssert(nd, unwrap(in[0])); err != nil {
			return nil, err
		}
		return []graph.Val{in[0]}, nil

	case "Switch":
		// in[0]=data, in[1]=pred. Out 0 carries data when pred is true,
		// out 1 when false; the other port gets the dead token.
		pred, err := graph.AsBool(unwrap(in[1]))
		if err != nil {
			return nil, fmt.Errorf("exec: Switch predicate: %v", err)
		}
		if pred {
			return []graph.Val{in[0], dead}, nil
		}
		return []graph.Val{dead, in[0]}, nil

	case "Merge":
		for _, v := range in {
			if !IsDead(v) {
				return []graph.Val{v}, nil
			}
		}
		return []graph.Val{dead}, nil

	case "PyGetAttr":
		obj := unwrap(in[0])
		name := nd.StrAttr("attr")
		if c.opts.Heap == nil {
			return nil, fmt.Errorf("exec: PyGetAttr with no heap")
		}
		v, err := c.ov().getAttr(c.opts.Heap, obj, name)
		if err != nil {
			return nil, err
		}
		if c.opts.Tape != nil {
			if t, ok := v.(*tensor.Tensor); ok {
				return []graph.Val{autodiff.Const(t)}, nil
			}
		}
		return []graph.Val{v}, nil

	case "PySetAttr":
		obj := unwrap(in[0])
		name := nd.StrAttr("attr")
		c.ov().setAttr(obj, name, unwrap(in[1]))
		return []graph.Val{nil}, nil

	case "PyGetSubscr":
		obj := unwrap(in[0])
		key := unwrap(in[1])
		if c.opts.Heap == nil {
			return nil, fmt.Errorf("exec: PyGetSubscr with no heap")
		}
		v, err := c.ov().getSubscr(c.opts.Heap, obj, key)
		if err != nil {
			return nil, err
		}
		return []graph.Val{v}, nil

	case "PySetSubscr":
		c.ov().setSubscr(unwrap(in[0]), unwrap(in[1]), unwrap(in[2]))
		return []graph.Val{nil}, nil

	case "Invoke":
		fg, ok := nd.Attrs["func"].(*graph.Graph)
		if !ok {
			return nil, fmt.Errorf("exec: Invoke without func graph")
		}
		sub := make(map[string]graph.Val, len(in))
		for i, v := range in {
			sub[fmt.Sprintf("arg%d", i)] = v
		}
		outs, err := runGraph(fg, sub, c)
		if err != nil {
			return nil, err
		}
		return outs, nil

	case "While":
		// Structured loop: attrs cond/body are subgraphs over loop variables
		// arg0..argN-1; body returns the next iteration's loop variables.
		condG, _ := nd.Attrs["cond"].(*graph.Graph)
		bodyG, _ := nd.Attrs["body"].(*graph.Graph)
		if condG == nil || bodyG == nil {
			return nil, fmt.Errorf("exec: While without cond/body")
		}
		maxIter := nd.IntAttr("maxIter", 1_000_000)
		state := append([]graph.Val(nil), in...)
		for iter := 0; ; iter++ {
			if iter >= maxIter {
				return nil, fmt.Errorf("exec: While exceeded %d iterations", maxIter)
			}
			if err := c.canceled(); err != nil {
				return nil, err
			}
			feedsC := loopFeeds(state)
			cond, err := runGraph(condG, feedsC, c)
			if err != nil {
				return nil, err
			}
			ok, err := graph.AsBool(unwrap(cond[0]))
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			next, err := runGraph(bodyG, loopFeeds(state), c)
			if err != nil {
				return nil, err
			}
			if len(next) != len(state) {
				return nil, fmt.Errorf("exec: While body returned %d values, want %d", len(next), len(state))
			}
			state = next
		}
		return state, nil

	case "Loop":
		// Structured counted loop emitted by BASE-mode conversion (paper
		// §4.2.1 without the +UNRL optimization): the body subgraph runs a
		// fixed number of trips with loop-carried values, loop-invariant
		// values, per-iteration sequence elements, and append-accumulators.
		//
		// Input layout: carried[0..C) ++ inv[0..I) ++ seq0[0..T) ++ seq1[0..T) ...
		// Body placeholders: carried%d, inv%d, iter%d, idx.
		// Body outputs: next carried values (C) then accumulator elements (A).
		// Loop outputs: final carried values (C) then accumulated []Val lists (A).
		body, _ := nd.Attrs["body"].(*graph.Graph)
		if body == nil {
			return nil, fmt.Errorf("exec: Loop without body")
		}
		trips := nd.IntAttr("trips", 0)
		numC := nd.IntAttr("carried", 0)
		numI := nd.IntAttr("inv", 0)
		numS := nd.IntAttr("seqs", 0)
		numA := nd.IntAttr("accum", 0)
		if len(in) != numC+numI+numS*trips {
			return nil, fmt.Errorf("exec: Loop input count %d != %d carried + %d inv + %d seqs * %d trips",
				len(in), numC, numI, numS, trips)
		}
		state := append([]graph.Val(nil), in[:numC]...)
		accums := make([][]graph.Val, numA)
		for t := 0; t < trips; t++ {
			feedsT := make(map[string]graph.Val, numC+numI+numS+1)
			for i := 0; i < numC; i++ {
				feedsT[fmt.Sprintf("carried%d", i)] = state[i]
			}
			for i := 0; i < numI; i++ {
				feedsT[fmt.Sprintf("inv%d", i)] = in[numC+i]
			}
			for s := 0; s < numS; s++ {
				feedsT[fmt.Sprintf("iter%d", s)] = in[numC+numI+s*trips+t]
			}
			feedsT["idx"] = t
			outs, err := runGraph(body, feedsT, c)
			if err != nil {
				return nil, err
			}
			if len(outs) != numC+numA {
				return nil, fmt.Errorf("exec: Loop body returned %d values, want %d", len(outs), numC+numA)
			}
			copy(state, outs[:numC])
			for a := 0; a < numA; a++ {
				accums[a] = append(accums[a], outs[numC+a])
			}
		}
		out := make([]graph.Val, 0, numC+numA)
		out = append(out, state...)
		for _, acc := range accums {
			out = append(out, acc)
		}
		return out, nil

	case "Print":
		var b strings.Builder
		for i, v := range in {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%v", unwrap(v))
		}
		c.printMu.Lock()
		c.printed = append(c.printed, b.String())
		c.printMu.Unlock()
		return []graph.Val{nil}, nil

	case "NoOp":
		return []graph.Val{nil}, nil

	case "BatchNorm":
		return execBatchNorm(nd, in, c)
	}

	// Tape-aware differentiable kernels.
	if c.opts.Tape != nil {
		if tk, ok := tapeKernels[nd.Op]; ok {
			return tk(c.opts.Tape, nd, in)
		}
	}
	k, ok := graph.Kernels[nd.Op]
	if !ok {
		return nil, fmt.Errorf("exec: no kernel for op %s", nd.Op)
	}
	return k(nd, unwrapAll(in))
}

func loopFeeds(state []graph.Val) map[string]graph.Val {
	m := make(map[string]graph.Val, len(state))
	for i, v := range state {
		m[fmt.Sprintf("arg%d", i)] = v
	}
	return m
}

// checkAssert validates one assumption. Kinds:
//
//	"true"/"false" — the input's truthiness must match (branch direction)
//	"eq-int"       — the input must equal attr "expected" (loop trip count,
//	                 list length, callee identity token)
//	"shape"        — the input tensor's shape must match attr "shape";
//	                 -1 entries are wildcards (Figure 4 relaxation)
//	"const"        — the input tensor must equal attr "value" exactly
type assertMismatch = AssertError

func checkAssert(nd *graph.Node, actual graph.Val) error {
	fail := func(msg string) error {
		return &AssertError{NodeID: nd.ID, Kind: nd.StrAttr("kind"), Desc: nd.StrAttr("desc") + ": " + msg, Actual: actual}
	}
	switch nd.StrAttr("kind") {
	case "true", "false":
		b, err := graph.AsBool(actual)
		if err != nil {
			return fail(err.Error())
		}
		want := nd.StrAttr("kind") == "true"
		if b != want {
			return fail(fmt.Sprintf("branch went %v, assumed %v", b, want))
		}
	case "eq-int":
		got, err := graph.AsInt(actual)
		if err != nil {
			return fail(err.Error())
		}
		want := nd.IntAttr("expected", 0)
		if got != want {
			return fail(fmt.Sprintf("got %d, assumed %d", got, want))
		}
	case "eq":
		// Generic scalar equality (specialized attribute values, §4.2.2).
		want := nd.Attrs["expected"]
		if ws, ok := want.(string); ok {
			gs, ok := actual.(string)
			if !ok || gs != ws {
				return fail(fmt.Sprintf("got %v, assumed %q", actual, ws))
			}
			return nil
		}
		wt, err := graph.AsTensor(want)
		if err != nil {
			return fail("bad expected value")
		}
		gt, err := graph.AsTensor(actual)
		if err != nil {
			return fail(err.Error())
		}
		if wt.Size() != 1 || gt.Size() != 1 || wt.Item() != gt.Item() {
			return fail(fmt.Sprintf("got %v, assumed %v", actual, want))
		}
	case "shape":
		t, err := graph.AsTensor(actual)
		if err != nil {
			return fail(err.Error())
		}
		want, _ := nd.Attrs["shape"].([]int)
		if len(t.Shape()) != len(want) {
			return fail(fmt.Sprintf("rank %d, assumed %d", len(t.Shape()), len(want)))
		}
		for i, d := range want {
			if d >= 0 && t.Shape()[i] != d {
				return fail(fmt.Sprintf("shape %v, assumed %v", t.Shape(), want))
			}
		}
	case "const":
		t, err := graph.AsTensor(actual)
		if err != nil {
			return fail(err.Error())
		}
		want, err := graph.AsTensor(nd.Attrs["value"])
		if err != nil {
			return fail("bad expected value")
		}
		if !tensor.Equal(t, want) {
			return fail("value changed, assumed constant")
		}
	default:
		return fail("unknown assert kind")
	}
	return nil
}

// execBatchNorm runs batch normalization against store-managed statistics.
// The running-statistic mutation is deferred like any other state update.
func execBatchNorm(nd *graph.Node, in []graph.Val, c *ctx) ([]graph.Val, error) {
	xv := unwrap(in[0])
	x, err := graph.AsTensor(xv)
	if err != nil {
		return nil, err
	}
	name := nd.StrAttr("name")
	training := nd.Attrs["training"] == true
	store := c.opts.Store
	if store == nil {
		return nil, fmt.Errorf("exec: BatchNorm with no store")
	}
	ch := x.Shape()[1]
	gamma := store.GetOrCreate(name+"/gamma", func() *tensor.Tensor { return tensor.Full(1, ch) })
	beta := store.GetOrCreate(name+"/beta", func() *tensor.Tensor { return tensor.Zeros(ch) })
	rm := store.GetOrCreate(name+"/mean", func() *tensor.Tensor { return tensor.Zeros(ch) })
	rv := store.GetOrCreate(name+"/var", func() *tensor.Tensor { return tensor.Full(1, ch) })
	// Compute against copies; commit running-stat changes only on success.
	rmCopy, rvCopy := rm.Clone(), rv.Clone()
	out := tensor.BatchNorm(x, gamma, beta, rmCopy, rvCopy, training, 0.9, 1e-5)
	if training {
		c.updMu.Lock()
		c.updates = append(c.updates, func() {
			copy(rm.Data(), rmCopy.Data())
			copy(rv.Data(), rvCopy.Data())
		})
		c.updMu.Unlock()
	}
	if c.opts.Tape != nil {
		if xn, ok := in[0].(*autodiff.Node); ok && xn.Tracked() {
			node := c.opts.Tape.NewNode(out)
			tape := c.opts.Tape
			tape.Record(node, func(g *tensor.Tensor) { tape.Accum(xn, g) })
			return []graph.Val{node}, nil
		}
	}
	return []graph.Val{out}, nil
}
