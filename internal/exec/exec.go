// Package exec implements the speculative graph executor of the paper's
// Figure 2: a dataflow scheduler that fires operations as their dependencies
// resolve, with
//
//   - a configurable worker pool (+PARL in Figure 7; 1 worker = serial),
//   - Switch/Merge conditional primitives via dead-token propagation (the
//     classic dataflow-architecture treatment the paper cites),
//   - structured While and Invoke operations whose bodies are subgraphs
//     (Invoke follows [20], enabling recursive models like TreeLSTM),
//   - AssertOp, which validates a speculative assumption at run time and
//     aborts the execution with a structured error on mismatch (§3.2),
//   - PyGetAttr/PySetAttr/PyGetSubscr/PySetSubscr heap operations with a
//     local-copy overlay and deferred write-back, giving the all-or-nothing
//     state-update semantics of §4.2.3,
//   - an optional trace tape: when a graph contains dynamic control flow,
//     tensor edges carry autodiff nodes and gradients are computed from the
//     executed trace (DESIGN.md §5).
package exec

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/autodiff"
	"repro/internal/graph"
	"repro/internal/vars"
)

// Heap abstracts the host-language heap (minipy objects) so the executor can
// read and write attributes without depending on the interpreter package.
type Heap interface {
	GetAttr(obj any, name string) (any, error)
	SetAttr(obj any, name string, v any) error
	GetSubscr(obj, key any) (any, error)
	SetSubscr(obj, key, v any) error
}

// AssertError reports a failed runtime assumption check. The runtime uses
// NodeID/Desc to decide which assumption to relax before regenerating.
type AssertError struct {
	NodeID int
	Kind   string
	Desc   string
	Actual any
}

func (e *AssertError) Error() string {
	return fmt.Sprintf("exec: assumption failed at node %d (%s): %s (actual %v)", e.NodeID, e.Kind, e.Desc, e.Actual)
}

// Options configures one execution.
type Options struct {
	// Workers is the scheduler's parallelism; values < 1 mean 1.
	Workers int
	// Store resolves Variable and AssignSub nodes.
	Store *vars.Store
	// Heap resolves Py*Attr/Py*Subscr nodes; may be nil when the graph has
	// no heap ops.
	Heap Heap
	// Tape, when non-nil, makes tensor edges carry autodiff nodes so the
	// executed trace can be differentiated (dynamic-control-flow graphs).
	Tape *autodiff.Tape
	// DisableAsserts skips assumption validation (used by the assertion-cost
	// experiment; never by the real runtime).
	DisableAsserts bool
	// Stats, when non-nil, accumulates executed-op counts.
	Stats *Stats
	// Ctx, when non-nil, is checked between scheduled nodes — including
	// inside While/Invoke subgraph iterations — so cancellation lands in the
	// middle of a long graph execution, not just between steps. A canceled
	// run returns an error wrapping the context's cause before any deferred
	// state (heap overlay, variable updates) is committed, preserving the
	// all-or-nothing semantics.
	Ctx context.Context
}

// Stats counts scheduler activity for tests and the evaluation harness.
type Stats struct {
	OpsExecuted atomic.Int64
	OpsSkipped  atomic.Int64 // dead-token skips
	AssertsRun  atomic.Int64
	MaxParallel atomic.Int64
	curParallel atomic.Int64
}

// Result is the outcome of a successful execution.
type Result struct {
	Outputs []graph.Val
	// Printed collects Print op output in node-ID order.
	Printed []string
}

// dead is the poison token produced by the untaken side of a Switch.
type deadToken struct{}

var dead = deadToken{}

// IsDead reports whether v is the dead token.
func IsDead(v graph.Val) bool { _, ok := v.(deadToken); return ok }

// overlay holds local copies of heap state (paper §4.2.3). Reads hit the
// overlay first; writes never touch the heap until Commit.
type overlay struct {
	mu    sync.Mutex
	attrs map[attrKey]any
	subs  map[subKey]any
	// order preserves write sequence for deterministic commit.
	order []func(h Heap) error
}

type attrKey struct {
	obj  any
	name string
}

type subKey struct {
	obj any
	key string
}

func newOverlay() *overlay {
	return &overlay{attrs: make(map[attrKey]any), subs: make(map[subKey]any)}
}

func subKeyOf(obj, key any) subKey { return subKey{obj: obj, key: fmt.Sprintf("%T:%v", key, key)} }

func (o *overlay) getAttr(h Heap, obj any, name string) (any, error) {
	o.mu.Lock()
	v, ok := o.attrs[attrKey{obj, name}]
	o.mu.Unlock()
	if ok {
		return v, nil
	}
	return h.GetAttr(obj, name)
}

func (o *overlay) setAttr(obj any, name string, v any) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.attrs[attrKey{obj, name}] = v
	o.order = append(o.order, func(h Heap) error { return h.SetAttr(obj, name, v) })
}

func (o *overlay) getSubscr(h Heap, obj, key any) (any, error) {
	o.mu.Lock()
	v, ok := o.subs[subKeyOf(obj, key)]
	o.mu.Unlock()
	if ok {
		return v, nil
	}
	return h.GetSubscr(obj, key)
}

func (o *overlay) setSubscr(obj, key any, v any) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.subs[subKeyOf(obj, key)] = v
	o.order = append(o.order, func(h Heap) error { return h.SetSubscr(obj, key, v) })
}

// commit writes all deferred updates back to the heap, in program order.
func (o *overlay) commit(h Heap) error {
	for _, f := range o.order {
		if err := f(h); err != nil {
			return err
		}
	}
	return nil
}

// ctx is the shared execution context threaded through subgraph invocations
// (Invoke/While recurse with the same ctx so the overlay and tape span the
// whole run).
type ctx struct {
	opts    Options
	overlay *overlay
	printMu sync.Mutex
	printed []string
	// pendingUpdates collects deferred variable updates (AssignSub); they are
	// applied only after every assertion in the whole run has passed.
	updMu   sync.Mutex
	updates []func()
}

// canceled reports whether the run's context (if any) has been canceled,
// as an error wrapping the cancellation cause.
func (c *ctx) canceled() error {
	if c.opts.Ctx == nil {
		return nil
	}
	if c.opts.Ctx.Err() != nil {
		return fmt.Errorf("exec: run canceled: %w", context.Cause(c.opts.Ctx))
	}
	return nil
}

// Run executes g with the given placeholder feeds. On success all deferred
// state updates (heap overlay and variable updates) are committed; on any
// error — including assumption failures — no global state has been mutated.
func Run(g *graph.Graph, feeds map[string]graph.Val, opts Options) (*Result, error) {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	c := &ctx{opts: opts, overlay: newOverlay()}
	outs, err := runGraph(g, feeds, c)
	if err != nil {
		return nil, err
	}
	// All assertions passed: commit deferred state, in order.
	if opts.Heap != nil {
		if err := c.overlay.commit(opts.Heap); err != nil {
			return nil, err
		}
	}
	c.updMu.Lock()
	for _, f := range c.updates {
		f()
	}
	c.updMu.Unlock()
	return &Result{Outputs: outs, Printed: c.printed}, nil
}

// plan is the cached per-graph schedule: per-node consumer lists, the
// indegree template, resolved input (producer, port) indices, a node index
// map and a topological order for the serial fast path. Building it once per
// graph removes per-execution analysis cost — the scheduling advantage
// symbolic execution has over the per-statement interpreter.
type plan struct {
	consumers [][]int32
	indeg     []int32
	prods     [][]int32 // input producer node index, per node
	ports     [][]int32 // input producer output port, per node
	topo      []int32
	outIdx    []int32 // node index per graph output
	index     map[*graph.Node]int32
}

// buildPlan analyzes a graph once; subsequent executions reuse the result.
func buildPlan(g *graph.Graph) (*plan, error) {
	n := len(g.Nodes)
	index := make(map[*graph.Node]int32, n)
	for i, nd := range g.Nodes {
		index[nd] = int32(i)
	}
	p := &plan{
		consumers: make([][]int32, n),
		indeg:     make([]int32, n),
		prods:     make([][]int32, n),
		ports:     make([][]int32, n),
		index:     index,
	}
	for i, nd := range g.Nodes {
		prods := make([]int32, len(nd.Inputs))
		ports := make([]int32, len(nd.Inputs))
		for k, in := range nd.Inputs {
			j, ok := index[in.Node]
			if !ok {
				return nil, fmt.Errorf("exec: node %d input refers outside graph (op %s)", nd.ID, nd.Op)
			}
			prods[k], ports[k] = j, int32(in.Out)
			p.consumers[j] = append(p.consumers[j], int32(i))
			p.indeg[i]++
		}
		p.prods[i], p.ports[i] = prods, ports
		for _, d := range nd.ControlDeps {
			j, ok := index[d]
			if !ok {
				return nil, fmt.Errorf("exec: node %d control dep outside graph", nd.ID)
			}
			p.consumers[j] = append(p.consumers[j], int32(i))
			p.indeg[i]++
		}
	}
	// Kahn's algorithm: the topological order doubles as the cycle check and
	// the serial execution order.
	deg := make([]int32, n)
	copy(deg, p.indeg)
	queue := make([]int32, 0, n)
	for i := range deg {
		if deg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	topo := make([]int32, 0, n)
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		topo = append(topo, i)
		for _, ci := range p.consumers[i] {
			if deg[ci]--; deg[ci] == 0 {
				queue = append(queue, ci)
			}
		}
	}
	if len(topo) != n {
		return nil, fmt.Errorf("exec: graph is not schedulable — %d of %d nodes are on a cycle", n-len(topo), n)
	}
	p.topo = topo
	p.outIdx = make([]int32, len(g.Outputs))
	for i, o := range g.Outputs {
		j, ok := index[o.Node]
		if !ok {
			return nil, fmt.Errorf("exec: output %d refers outside graph", i)
		}
		p.outIdx[i] = j
	}
	return p, nil
}

var planMu sync.Mutex

func planFor(g *graph.Graph) (*plan, error) {
	planMu.Lock()
	defer planMu.Unlock()
	if p, ok := g.Plan.(*plan); ok {
		return p, nil
	}
	p, err := buildPlan(g)
	if err != nil {
		return nil, err
	}
	g.Plan = p
	return p, nil
}

// runGraph schedules one (sub)graph to completion and returns its outputs.
func runGraph(g *graph.Graph, feeds map[string]graph.Val, c *ctx) ([]graph.Val, error) {
	if len(g.Nodes) == 0 {
		return nil, nil
	}
	p, err := planFor(g)
	if err != nil {
		return nil, err
	}
	if c.opts.Workers <= 1 {
		return runSerial(g, p, feeds, c)
	}
	return runParallel(g, p, feeds, c)
}

// safeExecNode runs execNode, converting kernel panics (e.g. a shape
// mismatch on malformed client feeds) into errors: a serving process must
// survive a bad request, and panics in scheduler worker goroutines would
// otherwise kill it.
func safeExecNode(g *graph.Graph, nd *graph.Node, in []graph.Val, feeds map[string]graph.Val, c *ctx) (out []graph.Val, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("exec: node %d (%s): %v", nd.ID, nd.Op, r)
		}
	}()
	return execNode(g, nd, in, feeds, c)
}

// runSerial executes nodes in topological order on the calling goroutine —
// the 1-worker ablation mode without scheduling machinery.
func runSerial(g *graph.Graph, p *plan, feeds map[string]graph.Val, c *ctx) ([]graph.Val, error) {
	n := len(g.Nodes)
	vals := make([][]graph.Val, n)
	for _, i := range p.topo {
		if err := c.canceled(); err != nil {
			return nil, err
		}
		nd := g.Nodes[i]
		prods, ports := p.prods[i], p.ports[i]
		in := make([]graph.Val, len(prods))
		anyDead := false
		for k := range prods {
			v := vals[prods[k]][ports[k]]
			in[k] = v
			if IsDead(v) {
				anyDead = true
			}
		}
		var out []graph.Val
		var err error
		if anyDead && nd.Op != "Merge" {
			out = make([]graph.Val, nd.NumOutputs)
			for k := range out {
				out[k] = dead
			}
			if c.opts.Stats != nil {
				c.opts.Stats.OpsSkipped.Add(1)
			}
		} else {
			out, err = safeExecNode(g, nd, in, feeds, c)
			if c.opts.Stats != nil {
				c.opts.Stats.OpsExecuted.Add(1)
			}
			if err != nil {
				return nil, err
			}
		}
		if len(out) < nd.NumOutputs {
			padded := make([]graph.Val, nd.NumOutputs)
			copy(padded, out)
			out = padded
		}
		vals[i] = out
	}
	outs := make([]graph.Val, len(g.Outputs))
	for i, o := range g.Outputs {
		outs[i] = vals[p.outIdx[i]][o.Out]
	}
	return outs, nil
}

// runParallel runs the worker-pool dataflow scheduler (+PARL).
func runParallel(g *graph.Graph, p *plan, feeds map[string]graph.Val, c *ctx) ([]graph.Val, error) {
	n := len(g.Nodes)
	consumers := p.consumers
	indeg := make([]int32, n)
	copy(indeg, p.indeg)

	vals := make([][]graph.Val, n)
	var valsMu sync.Mutex

	ready := make(chan int32, n)
	var remaining atomic.Int32
	remaining.Store(int32(n))
	var firstErr atomic.Value
	done := make(chan struct{})
	var closeOnce sync.Once
	finish := func() { closeOnce.Do(func() { close(done) }) }

	for i := range g.Nodes {
		if indeg[i] == 0 {
			ready <- int32(i)
		}
	}

	workers := c.opts.Workers
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				case i := <-ready:
					if err := c.canceled(); err != nil {
						firstErr.CompareAndSwap(nil, err)
						finish()
						return
					}
					nd := g.Nodes[i]
					prods, ports := p.prods[i], p.ports[i]
					in := make([]graph.Val, len(prods))
					anyDead := false
					valsMu.Lock()
					for k := range prods {
						v := vals[prods[k]][ports[k]]
						in[k] = v
						if IsDead(v) {
							anyDead = true
						}
					}
					valsMu.Unlock()

					var out []graph.Val
					var err error
					if anyDead && nd.Op != "Merge" {
						// Dead-token propagation: skip execution entirely.
						out = make([]graph.Val, nd.NumOutputs)
						for k := range out {
							out[k] = dead
						}
						if c.opts.Stats != nil {
							c.opts.Stats.OpsSkipped.Add(1)
						}
					} else {
						if c.opts.Stats != nil {
							cur := c.opts.Stats.curParallel.Add(1)
							for {
								max := c.opts.Stats.MaxParallel.Load()
								if cur <= max || c.opts.Stats.MaxParallel.CompareAndSwap(max, cur) {
									break
								}
							}
						}
						out, err = safeExecNode(g, nd, in, feeds, c)
						if c.opts.Stats != nil {
							c.opts.Stats.curParallel.Add(-1)
							c.opts.Stats.OpsExecuted.Add(1)
						}
					}
					if err != nil {
						firstErr.CompareAndSwap(nil, err)
						finish()
						return
					}
					if len(out) < nd.NumOutputs {
						padded := make([]graph.Val, nd.NumOutputs)
						copy(padded, out)
						out = padded
					}
					valsMu.Lock()
					vals[i] = out
					valsMu.Unlock()
					for _, ci := range consumers[i] {
						if atomic.AddInt32(&indeg[ci], -1) == 0 {
							select {
							case ready <- ci:
							case <-done:
								return
							}
						}
					}
					if remaining.Add(-1) == 0 {
						finish()
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if e := firstErr.Load(); e != nil {
		return nil, e.(error)
	}
	if remaining.Load() != 0 {
		return nil, fmt.Errorf("exec: deadlock — %d nodes never became ready (cycle or missing input)", remaining.Load())
	}
	outs := make([]graph.Val, len(g.Outputs))
	valsMu.Lock()
	for i, o := range g.Outputs {
		outs[i] = vals[p.outIdx[i]][o.Out]
	}
	valsMu.Unlock()
	return outs, nil
}
