// Package exec implements the speculative graph executor of the paper's
// Figure 2: a dataflow scheduler that fires operations as their dependencies
// resolve, with
//
//   - a configurable worker pool (+PARL in Figure 7; 1 worker = serial),
//   - Switch/Merge conditional primitives via dead-token propagation (the
//     classic dataflow-architecture treatment the paper cites),
//   - structured While and Invoke operations whose bodies are subgraphs
//     (Invoke follows [20], enabling recursive models like TreeLSTM),
//   - AssertOp, which validates a speculative assumption at run time and
//     aborts the execution with a structured error on mismatch (§3.2),
//   - PyGetAttr/PySetAttr/PyGetSubscr/PySetSubscr heap operations with a
//     local-copy overlay and deferred write-back, giving the all-or-nothing
//     state-update semantics of §4.2.3,
//   - an optional trace tape: when a graph contains dynamic control flow,
//     tensor edges carry autodiff nodes and gradients are computed from the
//     executed trace (DESIGN.md §5),
//   - plan-driven buffer reuse: with Options.Pool set (and no tape), every
//     intermediate tensor is rented from the pool according to the graph's
//     cached graph.MemoryPlan, elementwise ops write in place when their
//     input dies at that node, and buffers return to the pool the moment
//     their last consumer fires — steady-state replay allocates ~nothing.
package exec

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/autodiff"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/tensor"
	"repro/internal/vars"
)

// Heap abstracts the host-language heap (minipy objects) so the executor can
// read and write attributes without depending on the interpreter package.
type Heap interface {
	GetAttr(obj any, name string) (any, error)
	SetAttr(obj any, name string, v any) error
	GetSubscr(obj, key any) (any, error)
	SetSubscr(obj, key, v any) error
}

// AssertError reports a failed runtime assumption check. The runtime uses
// NodeID/Desc to decide which assumption to relax before regenerating.
type AssertError struct {
	NodeID int
	Kind   string
	Desc   string
	Actual any
}

func (e *AssertError) Error() string {
	return fmt.Sprintf("exec: assumption failed at node %d (%s): %s (actual %v)", e.NodeID, e.Kind, e.Desc, e.Actual)
}

// Options configures one execution.
type Options struct {
	// Workers is the scheduler's parallelism; values < 1 mean 1.
	Workers int
	// Store resolves Variable and AssignSub nodes.
	Store *vars.Store
	// Heap resolves Py*Attr/Py*Subscr nodes; may be nil when the graph has
	// no heap ops.
	Heap Heap
	// Tape, when non-nil, makes tensor edges carry autodiff nodes so the
	// executed trace can be differentiated (dynamic-control-flow graphs).
	Tape *autodiff.Tape
	// Pool, when non-nil and Tape is nil, enables plan-driven buffer reuse:
	// intermediate tensors are rented from the pool per the graph's memory
	// plan and returned when their last consumer fires. Feeds, constants,
	// variables reaching outputs, and anything crossing a subgraph or heap
	// boundary are pinned and never pooled.
	Pool *tensor.Pool
	// Arena, when non-nil, recycles per-run scheduler state (value arrays,
	// refcounts) across executions of the same graphs. Callers that run one
	// execution at a time (an Engine) share one Arena across runs; the
	// Arena itself is safe for concurrent use and falls back to fresh
	// allocations when a graph's slot is busy.
	Arena *Arena
	// DisableAsserts skips assumption validation (used by the assertion-cost
	// experiment; never by the real runtime).
	DisableAsserts bool
	// Stats, when non-nil, accumulates executed-op counts.
	Stats *Stats
	// Metrics, when non-nil, records plan-build timings, sampled per-op
	// kernel timings and in-place rebind counts into an obs registry. All
	// hot-path recording is sampled or a single atomic, so replay stays
	// allocation-free.
	Metrics *Metrics
	// Ctx, when non-nil, is checked between scheduled nodes — including
	// inside While/Invoke subgraph iterations — so cancellation lands in the
	// middle of a long graph execution, not just between steps. A canceled
	// run returns an error wrapping the context's cause before any deferred
	// state (heap overlay, variable updates) is committed, preserving the
	// all-or-nothing semantics.
	Ctx context.Context
}

// Stats counts scheduler activity for tests and the evaluation harness.
type Stats struct {
	OpsExecuted atomic.Int64
	OpsSkipped  atomic.Int64 // dead-token skips
	AssertsRun  atomic.Int64
	MaxParallel atomic.Int64
	curParallel atomic.Int64
}

// Result is the outcome of a successful execution.
type Result struct {
	Outputs []graph.Val
	// Printed collects Print op output in node-ID order.
	Printed []string
}

// dead is the poison token produced by the untaken side of a Switch.
type deadToken struct{}

var dead = deadToken{}

// IsDead reports whether v is the dead token.
func IsDead(v graph.Val) bool { _, ok := v.(deadToken); return ok }

// overlay holds local copies of heap state (paper §4.2.3). Reads hit the
// overlay first; writes never touch the heap until Commit.
type overlay struct {
	mu    sync.Mutex
	attrs map[attrKey]any
	subs  map[subKey]any
	// order preserves write sequence for deterministic commit.
	order []func(h Heap) error
}

type attrKey struct {
	obj  any
	name string
}

type subKey struct {
	obj any
	key string
}

func newOverlay() *overlay {
	return &overlay{attrs: make(map[attrKey]any), subs: make(map[subKey]any)}
}

func subKeyOf(obj, key any) subKey { return subKey{obj: obj, key: fmt.Sprintf("%T:%v", key, key)} }

func (o *overlay) getAttr(h Heap, obj any, name string) (any, error) {
	o.mu.Lock()
	v, ok := o.attrs[attrKey{obj, name}]
	o.mu.Unlock()
	if ok {
		return v, nil
	}
	return h.GetAttr(obj, name)
}

func (o *overlay) setAttr(obj any, name string, v any) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.attrs[attrKey{obj, name}] = v
	o.order = append(o.order, func(h Heap) error { return h.SetAttr(obj, name, v) })
}

func (o *overlay) getSubscr(h Heap, obj, key any) (any, error) {
	o.mu.Lock()
	v, ok := o.subs[subKeyOf(obj, key)]
	o.mu.Unlock()
	if ok {
		return v, nil
	}
	return h.GetSubscr(obj, key)
}

func (o *overlay) setSubscr(obj, key any, v any) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.subs[subKeyOf(obj, key)] = v
	o.order = append(o.order, func(h Heap) error { return h.SetSubscr(obj, key, v) })
}

// commit writes all deferred updates back to the heap, in program order.
func (o *overlay) commit(h Heap) error {
	for _, f := range o.order {
		if err := f(h); err != nil {
			return err
		}
	}
	return nil
}

// ctx is the shared execution context threaded through subgraph invocations
// (Invoke/While recurse with the same ctx so the overlay and tape span the
// whole run).
type ctx struct {
	opts Options
	// overlay is created lazily on the first heap op — replayed compute
	// graphs usually have none, and the hot path should not pay for maps.
	ovOnce  sync.Once
	overlay *overlay
	printMu sync.Mutex
	printed []string
	// pendingUpdates collects deferred variable updates (AssignSub); they are
	// applied only after every assertion in the whole run has passed.
	updMu   sync.Mutex
	updates []func()
}

func (c *ctx) ov() *overlay {
	c.ovOnce.Do(func() { c.overlay = newOverlay() })
	return c.overlay
}

// canceled reports whether the run's context (if any) has been canceled,
// as an error wrapping the cancellation cause.
func (c *ctx) canceled() error {
	if c.opts.Ctx == nil {
		return nil
	}
	if c.opts.Ctx.Err() != nil {
		return fmt.Errorf("exec: run canceled: %w", context.Cause(c.opts.Ctx))
	}
	return nil
}

// Run executes g with the given placeholder feeds. On success all deferred
// state updates (heap overlay and variable updates) are committed; on any
// error — including assumption failures — no global state has been mutated.
func Run(g *graph.Graph, feeds map[string]graph.Val, opts Options) (*Result, error) {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	c := &ctx{opts: opts}
	outs, err := runGraph(g, feeds, c)
	if err != nil {
		return nil, err
	}
	// All assertions passed: commit deferred state, in order.
	if opts.Heap != nil && c.overlay != nil {
		if err := c.overlay.commit(opts.Heap); err != nil {
			return nil, err
		}
	}
	c.updMu.Lock()
	for _, f := range c.updates {
		f()
	}
	c.updMu.Unlock()
	return &Result{Outputs: outs, Printed: c.printed}, nil
}

// node fast-path kinds, precomputed per plan so the schedulers can bypass
// execNode (and its []Val returns) for the allocation-sensitive ops.
const (
	kindGeneric = iota
	kindConst
	kindPlaceholder
	kindVariable
	kindInto
)

// plan is the cached per-graph schedule: per-node consumer lists, the
// indegree template, resolved flat input port indices, a topological order
// for the serial fast path, and the buffer-reuse memory plan. Building it
// once per graph removes per-execution analysis cost — the scheduling
// advantage symbolic execution has over the per-statement interpreter.
type plan struct {
	consumers [][]int32
	indeg     []int32
	inPort    [][]int32 // flat port id per node input
	topo      []int32
	outPort   []int32 // flat port id per graph output
	portBase  []int32 // flat port offset per node (len n+1)
	kind      []int8  // fast-path kind per node
	phName    []string
	varName   []string
	mem       *graph.MemoryPlan
	// prof is the graph's always-on op profile; its flat arrays parallel
	// the plan's, so the schedulers accumulate without map lookups.
	prof *GraphProfile
}

// buildPlan analyzes a graph once; subsequent executions reuse the result.
func buildPlan(g *graph.Graph, m *Metrics) (*plan, error) {
	n := len(g.Nodes)
	index := make(map[*graph.Node]int32, n)
	for i, nd := range g.Nodes {
		index[nd] = int32(i)
	}
	counts := graph.PortCounts(g)
	p := &plan{
		consumers: make([][]int32, n),
		indeg:     make([]int32, n),
		inPort:    make([][]int32, n),
		portBase:  make([]int32, n+1),
		kind:      make([]int8, n),
		phName:    make([]string, n),
		varName:   make([]string, n),
	}
	for i := 0; i < n; i++ {
		p.portBase[i+1] = p.portBase[i] + counts[i]
	}
	for i, nd := range g.Nodes {
		ports := make([]int32, len(nd.Inputs))
		for k, in := range nd.Inputs {
			j, ok := index[in.Node]
			if !ok {
				return nil, fmt.Errorf("exec: node %d input refers outside graph (op %s)", nd.ID, nd.Op)
			}
			ports[k] = p.portBase[j] + int32(in.Out)
			p.consumers[j] = append(p.consumers[j], int32(i))
			p.indeg[i]++
		}
		p.inPort[i] = ports
		for _, d := range nd.ControlDeps {
			j, ok := index[d]
			if !ok {
				return nil, fmt.Errorf("exec: node %d control dep outside graph", nd.ID)
			}
			p.consumers[j] = append(p.consumers[j], int32(i))
			p.indeg[i]++
		}
		switch nd.Op {
		case "Const":
			p.kind[i] = kindConst
		case "Placeholder":
			p.kind[i] = kindPlaceholder
			p.phName[i] = nd.StrAttr("name")
		case "Variable":
			p.kind[i] = kindVariable
			p.varName[i] = nd.StrAttr("name")
		default:
			if graph.HasIntoKernel(nd.Op) {
				p.kind[i] = kindInto
			}
		}
	}
	// Kahn's algorithm: the topological order doubles as the cycle check and
	// the serial execution order.
	deg := make([]int32, n)
	copy(deg, p.indeg)
	queue := make([]int32, 0, n)
	for i := range deg {
		if deg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	topo := make([]int32, 0, n)
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		topo = append(topo, i)
		for _, ci := range p.consumers[i] {
			if deg[ci]--; deg[ci] == 0 {
				queue = append(queue, ci)
			}
		}
	}
	if len(topo) != n {
		return nil, fmt.Errorf("exec: graph is not schedulable — %d of %d nodes are on a cycle", n-len(topo), n)
	}
	p.topo = topo
	p.outPort = make([]int32, len(g.Outputs))
	for i, o := range g.Outputs {
		j, ok := index[o.Node]
		if !ok {
			return nil, fmt.Errorf("exec: output %d refers outside graph", i)
		}
		p.outPort[i] = p.portBase[j] + int32(o.Out)
	}
	t0 := time.Now()
	p.mem = graph.BuildMemoryPlan(g)
	m.observeMemPlan(time.Since(t0))
	p.prof = newGraphProfile(g, p.mem)
	return p, nil
}

var planMu sync.Mutex

// planFor returns the graph's cached execution plan, building (and
// timing) it on first use. The schedule and memory-plan stages report
// separately, and a request trace riding c picks up matching spans — the
// "compile → memory-plan" phases of a cold Call.
func planFor(g *graph.Graph, c *ctx) (*plan, error) {
	planMu.Lock()
	defer planMu.Unlock()
	if p, ok := g.Plan.(*plan); ok {
		return p, nil
	}
	var m *Metrics
	var tctx context.Context
	if c != nil {
		m, tctx = c.opts.Metrics, c.opts.Ctx
	}
	sp := obs.StartSpan(tctx, "plan_build")
	t0 := time.Now()
	p, err := buildPlan(g, m)
	if err != nil {
		return nil, err
	}
	m.observePlanBuild(time.Since(t0))
	sp.End()
	g.Plan = p
	return p, nil
}

// PrimePlan eagerly builds and installs g's execution plan, substituting a
// previously computed memory plan when it still fits the graph. The artifact
// loader (internal/core) calls this at boot for every restored graph so the
// first served request skips both plan analysis and the liveness pass; a
// restored memory plan that no longer matches the graph's node count or
// port layout is silently discarded in favour of the fresh analysis —
// falling back costs a recompute, never correctness.
func PrimePlan(g *graph.Graph, mem *graph.MemoryPlan) error {
	planMu.Lock()
	defer planMu.Unlock()
	if _, ok := g.Plan.(*plan); ok {
		return nil
	}
	p, err := buildPlan(g, nil)
	if err != nil {
		return err
	}
	if mem != nil && memPlanFits(g, mem) {
		p.mem = mem
		p.prof = newGraphProfile(g, p.mem)
	}
	g.Plan = p
	return nil
}

// PlanMemory returns the memory plan of g's installed execution plan (nil
// when no plan has been built). The artifact saver persists it alongside
// the graph so a restored replica skips the liveness analysis.
func PlanMemory(g *graph.Graph) *graph.MemoryPlan {
	planMu.Lock()
	defer planMu.Unlock()
	if p, ok := g.Plan.(*plan); ok {
		return p.mem
	}
	return nil
}

// memPlanFits validates a deserialized memory plan against the graph it
// claims to describe: every per-node slice must cover the node list and
// every class index must be in range.
func memPlanFits(g *graph.Graph, mem *graph.MemoryPlan) bool {
	n := len(g.Nodes)
	if len(mem.OutClass) != n || len(mem.InClass) != n ||
		len(mem.PoolRecord) != n || len(mem.InPlace) != n ||
		len(mem.Refs) != mem.NumClasses || len(mem.Releasable) != mem.NumClasses {
		return false
	}
	counts := graph.PortCounts(g)
	for i, nd := range g.Nodes {
		if len(mem.OutClass[i]) != int(counts[i]) || len(mem.PoolRecord[i]) != int(counts[i]) {
			return false
		}
		if len(mem.InClass[i]) != len(nd.Inputs) {
			return false
		}
		if mem.InPlace[i] < -1 || int(mem.InPlace[i]) >= len(nd.Inputs) {
			return false
		}
		for _, c := range mem.OutClass[i] {
			if c < 0 || int(c) >= mem.NumClasses {
				return false
			}
		}
		for _, c := range mem.InClass[i] {
			if c < 0 || int(c) >= mem.NumClasses {
				return false
			}
		}
	}
	return true
}

// Arena recycles per-run scheduler state (value arrays, refcounts, buffer
// tables) across executions. One Arena is typically owned by one Engine;
// concurrent or reentrant executions of the same graph simply fall back to
// fresh allocations.
//
// The per-graph map is bounded: compiled graphs are evicted from the
// GraphCache over time (capacity LRU, assumption failures), and an
// unbounded map would pin each dead graph's last-run value and buffer
// tables forever. Beyond arenaCap graphs, acquiring a new graph's slot
// evicts an idle one — arena state is pure scratch, so eviction only costs
// a re-allocation on that graph's next run.
type Arena struct {
	mu  sync.Mutex
	per map[*graph.Graph]*graphArena
}

// arenaCap bounds how many graphs' scratch state one Arena retains.
const arenaCap = 64

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{per: make(map[*graph.Graph]*graphArena)} }

type graphArena struct {
	busy  bool
	vals  []graph.Val
	in    []graph.Val
	refs  []int32
	moved []bool
	bufs  []*tensor.Tensor
}

func (a *Arena) acquire(g *graph.Graph) *graphArena {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	ga := a.per[g]
	if ga == nil {
		if len(a.per) >= arenaCap {
			for og, oga := range a.per {
				if !oga.busy {
					delete(a.per, og)
					break
				}
			}
		}
		ga = &graphArena{}
		a.per[g] = ga
	}
	if ga.busy {
		return nil // reentrant (recursive Invoke) or concurrent use
	}
	ga.busy = true
	return ga
}

func (a *Arena) release(ga *graphArena) {
	if a == nil || ga == nil {
		return
	}
	// Drop the run's values before parking the slot: without this, the
	// arena would pin the last run's tensors (or, under a tape, the whole
	// autodiff tape) until the graph's next execution.
	clear(ga.vals)
	clear(ga.bufs)
	a.mu.Lock()
	ga.busy = false
	a.mu.Unlock()
}

// memState is the per-execution view of a graph's memory plan: a live
// refcount per alias class, the pooled buffer owned by each class, and
// transfer flags for in-place rebinding.
type memState struct {
	mem     *graph.MemoryPlan
	pool    *tensor.Pool
	metrics *Metrics
	prof    *GraphProfile
	refs    []int32
	moved   []bool
	bufs    []*tensor.Tensor
}

// initMemState prepares (or recycles) per-run plan state; returns nil when
// buffer reuse is disabled for this execution.
func initMemState(p *plan, c *ctx, ga *graphArena) *memState {
	if c.opts.Pool == nil || c.opts.Tape != nil || p.mem == nil {
		return nil
	}
	nc := p.mem.NumClasses
	ms := &memState{mem: p.mem, pool: c.opts.Pool, metrics: c.opts.Metrics, prof: p.prof}
	if ga != nil {
		if cap(ga.refs) < nc {
			ga.refs = make([]int32, nc)
			ga.moved = make([]bool, nc)
			ga.bufs = make([]*tensor.Tensor, nc)
		}
		ms.refs, ms.moved, ms.bufs = ga.refs[:nc], ga.moved[:nc], ga.bufs[:nc]
		for i := range ms.moved {
			ms.moved[i] = false
			ms.bufs[i] = nil
		}
	} else {
		ms.refs = make([]int32, nc)
		ms.moved = make([]bool, nc)
		ms.bufs = make([]*tensor.Tensor, nc)
	}
	copy(ms.refs, p.mem.Refs)
	return ms
}

// adopt records a freshly produced, execution-private tensor as its alias
// class's pooled buffer (so the scheduler can return it on last use).
func (ms *memState) adopt(i int32, out0 graph.Val) {
	pr := ms.mem.PoolRecord[i]
	if len(pr) == 0 || !pr[0] {
		return
	}
	cls := ms.mem.OutClass[i][0]
	if !ms.mem.Releasable[cls] {
		return
	}
	if t, ok := out0.(*tensor.Tensor); ok {
		ms.bufs[cls] = t
		ms.prof.noteAdopt(cls, t)
	}
}

// releaseInputs counts down the classes consumed by node i, returning each
// class's buffer to the pool at zero. atomicRefs selects the parallel
// scheduler's atomic decrements.
func (ms *memState) releaseInputs(i int32, atomicRefs bool) {
	for _, cls := range ms.mem.InClass[i] {
		if !ms.mem.Releasable[cls] {
			continue
		}
		var left int32
		if atomicRefs {
			left = atomic.AddInt32(&ms.refs[cls], -1)
		} else {
			ms.refs[cls]--
			left = ms.refs[cls]
		}
		if left == 0 && !ms.moved[cls] {
			if b := ms.bufs[cls]; b != nil {
				ms.pool.Put(b)
			}
		}
	}
}

// nodeAlloc is the tensor.Allocator handed to Into kernels: the first Get is
// the kernel's output (pool-backed, in-place-rebound, or heap for pinned
// outputs); subsequent Gets are scratch (always pooled). One nodeAlloc is
// reused across a scheduler's nodes, so the hot path performs no per-node
// allocator allocations.
type nodeAlloc struct {
	pool       *tensor.Pool
	ms         *memState
	first      bool
	record     bool // pool-allocate & track the output
	inPlace    *tensor.Tensor
	inPlaceCls int32
	node       int32 // profiled node index (per-node rent/in-place counts)
}

func (a *nodeAlloc) Get(shape ...int) *tensor.Tensor {
	if a.first {
		a.first = false
		if a.inPlace != nil && tensor.ShapeEq(a.inPlace.Shape(), shape) {
			t := a.inPlace
			a.ms.moved[a.inPlaceCls] = true
			a.inPlace = nil
			a.ms.metrics.incInPlace()
			a.ms.prof.noteInPlace(a.node)
			return t
		}
		if !a.record {
			// Pinned output: it escapes the execution, so it must not come
			// from (or ever return to) the pool.
			return tensor.Zeros(shape...)
		}
	}
	a.ms.prof.noteRent(a.node)
	return a.pool.Get(shape...)
}

func (a *nodeAlloc) GetZeroed(shape ...int) *tensor.Tensor {
	t := a.Get(shape...)
	d := t.Data()
	for i := range d {
		d[i] = 0
	}
	return t
}

func (a *nodeAlloc) Put(t *tensor.Tensor) { a.pool.Put(t) }

// prep readies the allocator for node i, wiring the in-place candidate when
// the plan and the runtime state both allow it.
func (a *nodeAlloc) prep(ms *memState, i int32, in []graph.Val) {
	a.ms = ms
	a.pool = ms.pool
	a.first = true
	a.inPlace = nil
	a.node = i
	mem := ms.mem
	outCls := mem.OutClass[i][0]
	a.record = mem.PoolRecord[i][0] && mem.Releasable[outCls]
	if k := mem.InPlace[i]; k >= 0 && int(k) < len(in) {
		if t, ok := in[k].(*tensor.Tensor); ok {
			cls := mem.InClass[i][k]
			if ms.bufs[cls] == t && !ms.moved[cls] {
				a.inPlace = t
				a.inPlaceCls = cls
			}
		}
	}
}

// runGraph schedules one (sub)graph to completion and returns its outputs.
func runGraph(g *graph.Graph, feeds map[string]graph.Val, c *ctx) ([]graph.Val, error) {
	if len(g.Nodes) == 0 {
		return nil, nil
	}
	p, err := planFor(g, c)
	if err != nil {
		return nil, err
	}
	ga := c.opts.Arena.acquire(g)
	defer c.opts.Arena.release(ga)
	if c.opts.Workers <= 1 {
		return runSerial(g, p, feeds, c, ga)
	}
	return runParallel(g, p, feeds, c, ga)
}

// safeExecNode runs execNode, converting kernel panics (e.g. a shape
// mismatch on malformed client feeds) into errors: a serving process must
// survive a bad request, and panics in scheduler worker goroutines would
// otherwise kill it.
func safeExecNode(g *graph.Graph, nd *graph.Node, in []graph.Val, feeds map[string]graph.Val, c *ctx) (out []graph.Val, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("exec: node %d (%s): %v", nd.ID, nd.Op, r)
		}
	}()
	return execNode(g, nd, in, feeds, c)
}

// execFast runs the allocation-free fast paths (Const, Placeholder,
// Variable, Into kernels) for node i, writing the single output value
// directly. It is only entered when ms != nil (plan-driven execution, no
// tape). Kernel panics are converted to errors like safeExecNode.
func execFast(p *plan, g *graph.Graph, i int32, nd *graph.Node, in []graph.Val, feeds map[string]graph.Val, c *ctx, ms *memState, na *nodeAlloc) (out graph.Val, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("exec: node %d (%s): %v", nd.ID, nd.Op, r)
		}
	}()
	switch p.kind[i] {
	case kindConst:
		return nd.Attr("value"), nil
	case kindPlaceholder:
		v, ok := feeds[p.phName[i]]
		if !ok {
			return nil, fmt.Errorf("exec: no feed for placeholder %q", p.phName[i])
		}
		return v, nil
	case kindVariable:
		name := p.varName[i]
		if c.opts.Store == nil {
			return nil, fmt.Errorf("exec: Variable %q with no store", name)
		}
		t, ok := c.opts.Store.Get(name)
		if !ok {
			return nil, fmt.Errorf("exec: unknown variable %q", name)
		}
		// Snapshot the parameter (outputs must reflect the value read during
		// execution even after deferred updates land); the snapshot is
		// execution-private, so it can live in the pool.
		if ms.mem.PoolRecord[i][0] && ms.mem.Releasable[ms.mem.OutClass[i][0]] {
			buf := ms.pool.Get(t.Shape()...)
			copy(buf.Data(), t.Data())
			return buf, nil
		}
		return t.Clone(), nil
	case kindInto:
		na.prep(ms, i, in)
		return graph.IntoKernels[nd.Op](nd, in, na)
	}
	panic("exec: execFast on generic node")
}

// runSerial executes nodes in topological order on the calling goroutine —
// the 1-worker ablation mode without scheduling machinery.
func runSerial(g *graph.Graph, p *plan, feeds map[string]graph.Val, c *ctx, ga *graphArena) ([]graph.Val, error) {
	n := len(g.Nodes)
	numPorts := int(p.portBase[n])
	var vals []graph.Val
	var inScratch []graph.Val
	if ga != nil {
		if cap(ga.vals) < numPorts {
			ga.vals = make([]graph.Val, numPorts)
		}
		vals = ga.vals[:numPorts]
		inScratch = ga.in
	} else {
		vals = make([]graph.Val, numPorts)
	}
	ms := initMemState(p, c, ga)
	var na nodeAlloc
	prof := p.prof
	tick := prof.beginRun()
	for _, i := range p.topo {
		if err := c.canceled(); err != nil {
			return nil, err
		}
		nd := g.Nodes[i]
		inPorts := p.inPort[i]
		if cap(inScratch) < len(inPorts) {
			inScratch = make([]graph.Val, len(inPorts)+8)
		}
		in := inScratch[:len(inPorts)]
		anyDead := false
		for k, pt := range inPorts {
			v := vals[pt]
			in[k] = v
			if IsDead(v) {
				anyDead = true
			}
		}
		base := p.portBase[i]
		ports := int(p.portBase[i+1] - base)
		switch {
		case anyDead && nd.Op != "Merge":
			for o := 0; o < ports; o++ {
				vals[base+int32(o)] = dead
			}
			prof.skip(i)
			if c.opts.Stats != nil {
				c.opts.Stats.OpsSkipped.Add(1)
			}
		case ms != nil && p.kind[i] != kindGeneric:
			timed := i&profileStrideMask == tick
			var t0 time.Time
			if timed {
				t0 = time.Now()
			}
			v, err := execFast(p, g, i, nd, in, feeds, c, ms, &na)
			if timed {
				prof.record(i, time.Since(t0), c.opts.Metrics, nd.Op)
			}
			if c.opts.Stats != nil {
				c.opts.Stats.OpsExecuted.Add(1)
			}
			if err != nil {
				return nil, err
			}
			vals[base] = v
			for o := 1; o < ports; o++ {
				vals[base+int32(o)] = nil
			}
			ms.adopt(i, v)
		default:
			timed := i&profileStrideMask == tick
			var t0 time.Time
			if timed {
				t0 = time.Now()
			}
			out, err := safeExecNode(g, nd, in, feeds, c)
			if timed {
				prof.record(i, time.Since(t0), c.opts.Metrics, nd.Op)
			}
			if c.opts.Stats != nil {
				c.opts.Stats.OpsExecuted.Add(1)
			}
			if err != nil {
				return nil, err
			}
			for o := 0; o < ports; o++ {
				if o < len(out) {
					vals[base+int32(o)] = out[o]
				} else {
					vals[base+int32(o)] = nil
				}
			}
			if ms != nil && len(out) > 0 {
				ms.adopt(i, out[0])
			}
		}
		if ms != nil {
			ms.releaseInputs(i, false)
		}
	}
	if ga != nil {
		ga.in = inScratch
	}
	outs := make([]graph.Val, len(g.Outputs))
	for i := range g.Outputs {
		outs[i] = vals[p.outPort[i]]
	}
	return outs, nil
}

// runParallel runs the worker-pool dataflow scheduler (+PARL).
func runParallel(g *graph.Graph, p *plan, feeds map[string]graph.Val, c *ctx, ga *graphArena) ([]graph.Val, error) {
	n := len(g.Nodes)
	consumers := p.consumers
	indeg := make([]int32, n)
	copy(indeg, p.indeg)

	numPorts := int(p.portBase[n])
	var vals []graph.Val
	if ga != nil {
		if cap(ga.vals) < numPorts {
			ga.vals = make([]graph.Val, numPorts)
		}
		vals = ga.vals[:numPorts]
	} else {
		vals = make([]graph.Val, numPorts)
	}
	ms := initMemState(p, c, ga)
	prof := p.prof
	tick := prof.beginRun()
	var valsMu sync.Mutex

	ready := make(chan int32, n)
	var remaining atomic.Int32
	remaining.Store(int32(n))
	var firstErr atomic.Value
	done := make(chan struct{})
	var closeOnce sync.Once
	finish := func() { closeOnce.Do(func() { close(done) }) }

	for i := range g.Nodes {
		if indeg[i] == 0 {
			ready <- int32(i)
		}
	}

	workers := c.opts.Workers
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var na nodeAlloc
			var inScratch []graph.Val
			for {
				select {
				case <-done:
					return
				case i := <-ready:
					if err := c.canceled(); err != nil {
						firstErr.CompareAndSwap(nil, err)
						finish()
						return
					}
					nd := g.Nodes[i]
					inPorts := p.inPort[i]
					if cap(inScratch) < len(inPorts) {
						inScratch = make([]graph.Val, len(inPorts)+8)
					}
					in := inScratch[:len(inPorts)]
					anyDead := false
					valsMu.Lock()
					for k, pt := range inPorts {
						v := vals[pt]
						in[k] = v
						if IsDead(v) {
							anyDead = true
						}
					}
					valsMu.Unlock()

					base := p.portBase[i]
					ports := int(p.portBase[i+1] - base)
					var out0 graph.Val
					var out []graph.Val
					var err error
					single := false
					switch {
					case anyDead && nd.Op != "Merge":
						// Dead-token propagation: skip execution entirely.
						single = true
						out0 = dead
						prof.skip(i)
						if c.opts.Stats != nil {
							c.opts.Stats.OpsSkipped.Add(1)
						}
					case ms != nil && p.kind[i] != kindGeneric:
						if c.opts.Stats != nil {
							trackParallel(c.opts.Stats, 1)
						}
						timed := i&profileStrideMask == tick
						var t0 time.Time
						if timed {
							t0 = time.Now()
						}
						out0, err = execFast(p, g, i, nd, in, feeds, c, ms, &na)
						if timed {
							prof.record(i, time.Since(t0), c.opts.Metrics, nd.Op)
						}
						single = true
						if c.opts.Stats != nil {
							trackParallel(c.opts.Stats, -1)
							c.opts.Stats.OpsExecuted.Add(1)
						}
					default:
						if c.opts.Stats != nil {
							trackParallel(c.opts.Stats, 1)
						}
						timed := i&profileStrideMask == tick
						var t0 time.Time
						if timed {
							t0 = time.Now()
						}
						out, err = safeExecNode(g, nd, in, feeds, c)
						if timed {
							prof.record(i, time.Since(t0), c.opts.Metrics, nd.Op)
						}
						if c.opts.Stats != nil {
							trackParallel(c.opts.Stats, -1)
							c.opts.Stats.OpsExecuted.Add(1)
						}
					}
					if err != nil {
						firstErr.CompareAndSwap(nil, err)
						finish()
						return
					}
					valsMu.Lock()
					if single {
						vals[base] = out0
						for o := 1; o < ports; o++ {
							if IsDead(out0) {
								vals[base+int32(o)] = dead
							} else {
								vals[base+int32(o)] = nil
							}
						}
						if ms != nil && !IsDead(out0) {
							ms.adopt(i, out0)
						}
					} else {
						for o := 0; o < ports; o++ {
							if o < len(out) {
								vals[base+int32(o)] = out[o]
							} else {
								vals[base+int32(o)] = nil
							}
						}
						if ms != nil && len(out) > 0 {
							ms.adopt(i, out[0])
						}
					}
					valsMu.Unlock()
					if ms != nil {
						ms.releaseInputs(i, true)
					}
					for _, ci := range consumers[i] {
						if atomic.AddInt32(&indeg[ci], -1) == 0 {
							select {
							case ready <- ci:
							case <-done:
								return
							}
						}
					}
					if remaining.Add(-1) == 0 {
						finish()
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if e := firstErr.Load(); e != nil {
		return nil, e.(error)
	}
	if remaining.Load() != 0 {
		return nil, fmt.Errorf("exec: deadlock — %d nodes never became ready (cycle or missing input)", remaining.Load())
	}
	outs := make([]graph.Val, len(g.Outputs))
	valsMu.Lock()
	for i := range g.Outputs {
		outs[i] = vals[p.outPort[i]]
	}
	valsMu.Unlock()
	return outs, nil
}

// trackParallel maintains the high-water parallelism mark.
func trackParallel(s *Stats, delta int64) {
	cur := s.curParallel.Add(delta)
	if delta < 0 {
		return
	}
	for {
		max := s.MaxParallel.Load()
		if cur <= max || s.MaxParallel.CompareAndSwap(max, cur) {
			break
		}
	}
}
