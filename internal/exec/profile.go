package exec

import (
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// profileStride is the per-node timing sampling stride: each scheduler
// pass times the nodes whose index ≡ tick (mod profileStride), with the
// tick rotating every run, so all nodes are covered every profileStride
// runs. time.Now costs ~20–100ns depending on the host clock path, so
// unconditionally timing every node would dwarf small kernels; sampling
// 1-in-32 keeps the whole profiler within the ≤2% replay budget
// (DESIGN.md §7) while invocation/rent/in-place counts stay exact.
const profileStride = 32

// profileStrideMask selects the timing tick (profileStride is a power
// of two).
const profileStrideMask = profileStride - 1

// GraphProfile is the always-on per-compiled-graph op profile: flat
// per-node arrays indexed exactly like the executor's port arrays, so
// the hot path touches them without a map lookup or an allocation.
//
// Invocations are derived, not counted: every node runs once per
// scheduler pass, so calls(i) = runs − skips(i), and only the rare
// dead-token skip pays an atomic. Pool rents and in-place rebinds add
// one atomic each on the planned Into path. Per-node cumulative time is
// sampled (see profileStride) and scaled to an estimate at snapshot
// time; SampledNS/Samples are also reported raw so consumers can judge
// coverage.
type GraphProfile struct {
	ops  []string
	runs atomic.Int64

	skips   []atomic.Int64 // dead-token skips per node
	ns      []atomic.Int64 // sampled cumulative exec time per node
	samples []atomic.Int64 // timing samples per node
	rents   []atomic.Int64 // pool rents (output + scratch) per node
	inPlace []atomic.Int64 // in-place rebinds per node

	// classElems records the last-seen element count of each memory-plan
	// alias class's pooled buffer — the per-class buffer residency
	// baseline for the optimizer-pass work.
	classElems []atomic.Int64
	releasable []bool
}

// newGraphProfile sizes a profile for g and its memory plan (mem may be
// nil for planless graphs).
func newGraphProfile(g *graph.Graph, mem *graph.MemoryPlan) *GraphProfile {
	n := len(g.Nodes)
	p := &GraphProfile{
		ops:     make([]string, n),
		skips:   make([]atomic.Int64, n),
		ns:      make([]atomic.Int64, n),
		samples: make([]atomic.Int64, n),
		rents:   make([]atomic.Int64, n),
		inPlace: make([]atomic.Int64, n),
	}
	for i, nd := range g.Nodes {
		p.ops[i] = nd.Op
		// Fused nodes carry the chain they replaced (e.g.
		// "Fused[ReLUGrad+Mul]"); show that in per-node profiles while the
		// registry's per-op estimates keep aggregating under "Fused".
		if label := nd.StrAttr("label"); label != "" {
			p.ops[i] = label
		}
	}
	if mem != nil {
		p.classElems = make([]atomic.Int64, mem.NumClasses)
		p.releasable = mem.Releasable
	}
	return p
}

// beginRun counts one scheduler pass and returns this run's timing tick.
func (p *GraphProfile) beginRun() int32 {
	return int32(p.runs.Add(1)-1) & profileStrideMask
}

// skip counts a dead-token skip (the node did not execute this pass).
func (p *GraphProfile) skip(i int32) { p.skips[i].Add(1) }

// record attributes one sampled execution time to node i and feeds the
// registry's per-op estimate (scaled by the sampling stride).
func (p *GraphProfile) record(i int32, d time.Duration, m *Metrics, op string) {
	p.ns[i].Add(int64(d))
	p.samples[i].Add(1)
	m.observeSampledOp(op, d)
}

// noteRent counts one pool rental by node i.
func (p *GraphProfile) noteRent(i int32) { p.rents[i].Add(1) }

// noteInPlace counts one in-place rebind by node i.
func (p *GraphProfile) noteInPlace(i int32) { p.inPlace[i].Add(1) }

// noteAdopt records the element count of the buffer adopted by class
// cls. Steady state is a single atomic load (shapes are plan-static, so
// the stored value almost never changes).
func (p *GraphProfile) noteAdopt(cls int32, t *tensor.Tensor) {
	if int(cls) >= len(p.classElems) {
		return
	}
	if n := int64(t.Size()); p.classElems[cls].Load() != n {
		p.classElems[cls].Store(n)
	}
}

// NodeProfile is one node's accumulated profile.
type NodeProfile struct {
	Node int    `json:"node"`
	Op   string `json:"op"`
	// Calls is the exact invocation count (runs minus dead-token skips).
	Calls int64 `json:"calls"`
	// EstNS estimates the node's cumulative execution time: sampled
	// nanoseconds scaled by calls/samples.
	EstNS int64 `json:"est_ns"`
	// SampledNS/Samples are the raw timing observations behind EstNS.
	SampledNS int64 `json:"sampled_ns"`
	Samples   int64 `json:"samples"`
	// Rents counts pool rentals (output and scratch buffers); InPlace
	// counts outputs served by rebinding a dying input in place.
	Rents   int64 `json:"pool_rents"`
	InPlace int64 `json:"inplace_hits"`
}

// ClassResidency is one memory-plan alias class's buffer residency.
type ClassResidency struct {
	Class int `json:"class"`
	// Elems is the element count of the class's pooled buffer as last
	// adopted (0 if the class never owned a pooled buffer).
	Elems int64 `json:"elems"`
	// Releasable marks classes whose buffer cycles through the pool;
	// pinned classes escape the execution instead.
	Releasable bool `json:"releasable"`
}

// ProfileSnapshot is the JSON-friendly view of a GraphProfile.
type ProfileSnapshot struct {
	// Runs counts scheduler passes over the graph.
	Runs    int64            `json:"runs"`
	Nodes   []NodeProfile    `json:"nodes"`
	Classes []ClassResidency `json:"classes,omitempty"`
}

// Snapshot renders the profile (nil-safe: a nil profile yields a zero
// snapshot).
func (p *GraphProfile) Snapshot() ProfileSnapshot {
	if p == nil {
		return ProfileSnapshot{}
	}
	runs := p.runs.Load()
	snap := ProfileSnapshot{Runs: runs, Nodes: make([]NodeProfile, len(p.ops))}
	for i := range p.ops {
		calls := runs - p.skips[i].Load()
		sampled := p.ns[i].Load()
		samples := p.samples[i].Load()
		est := int64(0)
		if samples > 0 {
			est = int64(float64(sampled) * float64(calls) / float64(samples))
		}
		snap.Nodes[i] = NodeProfile{
			Node:      i,
			Op:        p.ops[i],
			Calls:     calls,
			EstNS:     est,
			SampledNS: sampled,
			Samples:   samples,
			Rents:     p.rents[i].Load(),
			InPlace:   p.inPlace[i].Load(),
		}
	}
	if len(p.classElems) > 0 {
		snap.Classes = make([]ClassResidency, len(p.classElems))
		for c := range p.classElems {
			snap.Classes[c] = ClassResidency{
				Class:      c,
				Elems:      p.classElems[c].Load(),
				Releasable: c < len(p.releasable) && p.releasable[c],
			}
		}
	}
	return snap
}

// ProfileOf returns the always-on profile of g's cached execution plan,
// or nil when the graph has never been planned.
func ProfileOf(g *graph.Graph) *GraphProfile {
	planMu.Lock()
	defer planMu.Unlock()
	if p, ok := g.Plan.(*plan); ok {
		return p.prof
	}
	return nil
}
