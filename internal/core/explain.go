// Explainability for the speculative path (Figure 2's fallback arrow):
// every assumption failure is aggregated into a structured DeoptEvent —
// which assumption failed (kind, AST location), what the speculative
// profile expected, what the runtime observed, how often it happened and
// what the abandoned graph executions cost — so an operator can answer
// "why is this function slower than it should be" from Engine.Explain
// (surfaced as GET /v1/explain) instead of a bare fallback counter.
package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/graph/passes"
)

// DeoptEvent aggregates every fallback caused by one speculative
// assumption (one Assert node lineage, identified by kind + AST node +
// description — node IDs change across regeneration, the AST anchor
// does not).
type DeoptEvent struct {
	// Kind is the assumption class: "true"/"false" (branch direction),
	// "eq-int"/"eq" (value specialization), "shape" (shape
	// specialization).
	Kind string `json:"kind"`
	// AST is the program-AST node whose assumption failed (-1 when the
	// failing assert could not be mapped back).
	AST int `json:"ast"`
	// Desc is the converter's human-readable description of the
	// assumption (e.g. `branch@17 assumed true`).
	Desc string `json:"desc"`
	// Expected is the profile-lattice value the converter specialized
	// on; LastActual is the most recently observed runtime value that
	// contradicted it.
	Expected   string `json:"expected,omitempty"`
	LastActual string `json:"last_actual,omitempty"`
	// Count is how many graph executions this assumption aborted;
	// WastedNS is their cumulative abandoned execution time (each such
	// run is thrown away and re-run imperatively).
	Count    int64 `json:"count"`
	WastedNS int64 `json:"wasted_ns"`
}

// Label renders the event's identity for trace annotations:
// "<kind>@ast<N>: <desc>".
func (d *DeoptEvent) Label() string {
	return fmt.Sprintf("%s@ast%d: %s", d.Kind, d.AST, d.Desc)
}

// deoptKey identifies the event across regenerations.
func deoptKey(kind string, ast int, desc string) string {
	return fmt.Sprintf("%s@%d:%s", kind, ast, desc)
}

// recordDeopt folds one assumption failure into the function's deopt
// ledger and the registry's deopt families (fs.mu held; fallback slow
// path, so registry lookups are fine here).
func (e *Engine) recordDeopt(fs *funcState, c *compiled, ae *exec.AssertError, wasted time.Duration) *DeoptEvent {
	var node *graph.Node
	for _, a := range c.res.Asserts {
		if a.ID == ae.NodeID {
			node = a
			break
		}
	}
	kind, ast, desc, expected := ae.Kind, -1, ae.Desc, ""
	if node != nil {
		ast = node.IntAttr("ast", -1)
		desc = node.StrAttr("desc")
		expected = expectedOf(node)
	}
	if fs.deopts == nil {
		fs.deopts = make(map[string]*DeoptEvent)
	}
	key := deoptKey(kind, ast, desc)
	ev := fs.deopts[key]
	if ev == nil {
		ev = &DeoptEvent{Kind: kind, AST: ast, Desc: desc, Expected: expected}
		fs.deopts[key] = ev
	}
	ev.Count++
	ev.WastedNS += int64(wasted)
	ev.LastActual = fmt.Sprintf("%v", ae.Actual)
	e.stats.reg.Counter("janus_deopt_total", helpDeopt, "kind", kind).Inc()
	e.stats.deoptWasted.ObserveDuration(wasted)
	return ev
}

// expectedOf renders the specialized value an Assert node validates —
// the profile-lattice level the converter committed to (§4.2.2: exact
// value ⊂ exact shape ⊂ partial shape ⊂ type).
func expectedOf(nd *graph.Node) string {
	switch nd.StrAttr("kind") {
	case "true", "false":
		return nd.StrAttr("kind")
	case "eq-int":
		return fmt.Sprintf("%d", nd.IntAttr("expected", 0))
	case "eq":
		return fmt.Sprintf("%v", nd.Attrs["expected"])
	case "shape":
		return fmt.Sprintf("shape %v", nd.Attrs["shape"])
	}
	return ""
}

// ExplainState describes one cache slot (training or inference) of an
// optimized function.
type ExplainState struct {
	// Path is "train" (optimize() graphs) or "infer" (forward-only).
	Path string `json:"path"`
	// ImperativeOnly marks functions with no graph representation;
	// ImperativeReason is the conversion error that pinned them.
	ImperativeOnly   bool   `json:"imperative_only"`
	ImperativeReason string `json:"imperative_reason,omitempty"`
	// ProfileIterations counts imperative executions the profiler has
	// observed; ReprofileUntil, when ahead of it, means a failed
	// assumption put the function back into the profiling window.
	ProfileIterations int `json:"profile_iterations"`
	ReprofileUntil    int `json:"reprofile_until,omitempty"`
	// CachedGraphs counts live compiled entries for this slot.
	CachedGraphs int `json:"cached_graphs"`
	// DistrustedAST lists AST nodes whose assumptions failed: the
	// converter will not re-speculate on them.
	DistrustedAST []int `json:"distrusted_ast,omitempty"`
	// Deopts lists assumption failures, most frequent first.
	Deopts []DeoptEvent `json:"deopts,omitempty"`
	// Graphs describes each cached compiled graph: its specialization
	// signature, node count, and which post-processor passes fired on it
	// (in pipeline order) — so an operator can see per graph whether e.g.
	// fusion or im2col sharing actually landed.
	Graphs []ExplainGraph `json:"graphs,omitempty"`
}

// ExplainGraph is one cached compiled graph's post-processor outcome.
type ExplainGraph struct {
	Signature []string `json:"signature"`
	Static    bool     `json:"static"`
	// Nodes is the graph's node count after the pipeline ran.
	Nodes int `json:"nodes"`
	// Passes is the ordered pass report (nil when the pipeline was off);
	// CapHit marks a fixed-point loop that hit its round cap.
	Passes []passes.PassReport `json:"passes,omitempty"`
	CapHit bool                `json:"cap_hit,omitempty"`
}

// ExplainReport is the per-function explainability view.
type ExplainReport struct {
	Function string         `json:"function"`
	States   []ExplainState `json:"states,omitempty"`
}

// Explain reports why the named function runs the way it does: per
// cache slot, whether it is pinned imperative (and why), its profiling
// window, its distrusted assumptions, and every deopt event with the
// exact failed assumption and its cost. Callers must hold the engine
// exclusively (as for Call).
func (e *Engine) Explain(name string) (*ExplainReport, error) {
	fn, err := e.LookupFunc(name)
	if err != nil {
		return nil, err
	}
	id := -1
	if fn.Def != nil {
		id = fn.Def.ID()
	}
	rep := &ExplainReport{Function: name}
	for _, infer := range []bool{false, true} {
		fs := e.cache.peek(cacheKey{fn: id, infer: infer})
		if fs == nil {
			continue
		}
		rep.States = append(rep.States, explainState(fs))
	}
	return rep, nil
}

// explainState snapshots one funcState under its lock.
func explainState(fs *funcState) ExplainState {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st := ExplainState{
		Path:              "train",
		ImperativeOnly:    fs.imperativeOnly,
		ImperativeReason:  fs.impReason,
		ProfileIterations: fs.prof.Iterations(),
		ReprofileUntil:    fs.reprofileUntil,
		CachedGraphs:      len(fs.entries),
	}
	if fs.key.infer {
		st.Path = "infer"
	}
	for ast := range fs.distrust {
		st.DistrustedAST = append(st.DistrustedAST, ast)
	}
	sort.Ints(st.DistrustedAST)
	for _, c := range fs.entries {
		eg := ExplainGraph{
			Signature: append([]string(nil), c.pattern...),
			Static:    c.static,
			Nodes:     len(c.res.Graph.Nodes),
		}
		if c.passes != nil {
			eg.Passes = append([]passes.PassReport(nil), c.passes.Passes...)
			eg.CapHit = c.passes.CapHit
		}
		st.Graphs = append(st.Graphs, eg)
	}
	for _, ev := range fs.deopts {
		st.Deopts = append(st.Deopts, *ev)
	}
	sort.Slice(st.Deopts, func(i, j int) bool {
		if st.Deopts[i].Count != st.Deopts[j].Count {
			return st.Deopts[i].Count > st.Deopts[j].Count
		}
		return st.Deopts[i].Desc < st.Deopts[j].Desc
	})
	return st
}

// GraphProfileEntry pairs one cached compiled graph with its always-on
// executor profile.
type GraphProfileEntry struct {
	// Path is "train" or "infer"; Signature is the cache entry's
	// specialization pattern; Static marks graphs with baked-in
	// gradient/update ops.
	Path      string               `json:"path"`
	Signature []string             `json:"signature"`
	Static    bool                 `json:"static"`
	Profile   exec.ProfileSnapshot `json:"profile"`
}

// FuncProfile is the per-function op-profile view behind GET /v1/profile.
type FuncProfile struct {
	Function string              `json:"function"`
	Graphs   []GraphProfileEntry `json:"graphs,omitempty"`
}

// Profile returns the executor's per-node profiles for every compiled
// graph cached for the named function. Callers must hold the engine
// exclusively (as for Call).
func (e *Engine) Profile(name string) (*FuncProfile, error) {
	fn, err := e.LookupFunc(name)
	if err != nil {
		return nil, err
	}
	id := -1
	if fn.Def != nil {
		id = fn.Def.ID()
	}
	fp := &FuncProfile{Function: name}
	for _, infer := range []bool{false, true} {
		fs := e.cache.peek(cacheKey{fn: id, infer: infer})
		if fs == nil {
			continue
		}
		path := "train"
		if infer {
			path = "infer"
		}
		fs.mu.Lock()
		entries := append([]*compiled(nil), fs.entries...)
		fs.mu.Unlock()
		for _, c := range entries {
			fp.Graphs = append(fp.Graphs, GraphProfileEntry{
				Path:      path,
				Signature: append([]string(nil), c.pattern...),
				Static:    c.static,
				Profile:   exec.ProfileOf(c.res.Graph).Snapshot(),
			})
		}
	}
	return fp, nil
}
