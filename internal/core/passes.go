package core

import (
	"repro/internal/convert"
	"repro/internal/graph/passes"
)

// runPasses applies the graph post-processor pipeline to a freshly converted
// result — between conversion/FinalizeTraining and the executor's first plan
// build. It honours the engine's A/B flags, skips the structural passes for
// dynamic graphs (the trace tape differentiates through the original op
// vocabulary), and returns the ordered per-pass report that feeds the
// janus_pass_rewrites_total counters, Stats.OptimizeReport and /v1/explain.
//
// The pipeline is tied to Specialize (+SPCN) like the optimizer it replaces:
// without specialization the converter leaves dynamic values in place and
// the passes have nothing sound to do.
func (e *Engine) runPasses(res *convert.Result, enabled bool) (*passes.Report, error) {
	if !enabled {
		return nil, nil
	}
	pl := passes.New(passes.Options{
		Disable:      passes.Disabled(e.cfg.DisablePasses),
		NoStructural: res.Dynamic,
		Verify:       e.cfg.VerifyPasses,
	})
	return pl.Run(res.Graph)
}

// PassSummary aggregates the post-processor outcome across every compiled
// graph in the engine's cache: how many graphs exist, their total node
// count after the pipeline ran, and the per-pass rewrite totals. This is
// the A/B hook janusbench uses to compare graph sizes between pipeline
// configurations without reaching into cache internals.
type PassSummary struct {
	Graphs   int            `json:"graphs"`
	Nodes    int            `json:"nodes"`
	Rewrites map[string]int `json:"rewrites,omitempty"`
}

// PassSummary snapshots the cache. Callers must hold the engine
// exclusively (as for Call).
func (e *Engine) PassSummary() PassSummary {
	sum := PassSummary{Rewrites: make(map[string]int)}
	for _, fs := range e.cache.states() {
		fs.mu.Lock()
		for _, c := range fs.entries {
			sum.Graphs++
			sum.Nodes += len(c.res.Graph.Nodes)
			if c.passes != nil {
				for _, pr := range c.passes.Passes {
					sum.Rewrites[pr.Pass] += pr.Rewrites
				}
			}
		}
		fs.mu.Unlock()
	}
	return sum
}
