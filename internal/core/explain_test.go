package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/minipy"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// TestExplainNamesFailedAssumption drives the branch-speculation fallback
// through Engine.Call and checks the explainability surface end to end:
// the deopt ledger names the exact assumption that failed (kind + AST
// anchor + expected vs observed), the request trace is annotated with the
// same identity instead of a bare "fallback", and the distrust set picks
// up the AST node.
func TestExplainNamesFailedAssumption(t *testing.T) {
	src := `
class Net:
    def __init__(self):
        self.training = True

net = Net()

def loss(x):
    w = variable("w", [2, 1])
    h = matmul(x, w)
    if net.training:
        h = h * 2.0
    else:
        h = h * 0.5
    return reduce_mean(h ** 2.0)
`
	cfg := DefaultJanusConfig()
	cfg.ProfileIters = 2
	cfg.Seed = 11
	e := NewEngine(cfg)
	if err := e.Run(src); err != nil {
		t.Fatalf("load: %v", err)
	}
	x := tensor.New([]int{1, 2}, []float64{1, 2})
	call := func(ctx context.Context) error {
		_, err := e.CallCtx(ctx, "loss", []minipy.Value{minipy.NewTensor(x)})
		return err
	}
	// Profile, compile, replay: the branch is stable, so the converter
	// speculates on its direction.
	for i := 0; i < 5; i++ {
		if err := call(context.Background()); err != nil {
			t.Fatalf("warm call %d: %v", i, err)
		}
	}
	if e.Stats().GraphSteps == 0 {
		t.Fatalf("function never reached graph replay: %+v", e.Stats())
	}
	before, err := e.Explain("loss")
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range before.States {
		if len(st.Deopts) != 0 {
			t.Fatalf("deopts before any failure: %+v", st)
		}
	}

	// Engine.Profile exposes the compiled graph's always-on profile while
	// the entry is live (a later deopt drops the entry for regeneration).
	prof, err := e.Profile("loss")
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	for _, g := range prof.Graphs {
		if g.Path == "infer" && g.Profile.Runs > 0 && len(g.Profile.Nodes) > 0 {
			ran = true
		}
	}
	if !ran {
		t.Fatalf("no infer graph with recorded runs: %+v", prof.Graphs)
	}

	// Flip the branch: the next call must abort the speculative graph,
	// fall back imperatively, and still succeed.
	if err := e.Run("net.training = False"); err != nil {
		t.Fatalf("flip: %v", err)
	}
	tr := obs.NewTrace("req-deopt")
	if err := call(obs.ContextWithTrace(context.Background(), tr)); err != nil {
		t.Fatalf("post-flip call: %v", err)
	}
	tr.Finish()

	rep, err := e.Explain("loss")
	if err != nil {
		t.Fatal(err)
	}
	var infer *ExplainState
	for i := range rep.States {
		if rep.States[i].Path == "infer" {
			infer = &rep.States[i]
		}
	}
	if infer == nil {
		t.Fatalf("no infer state in %+v", rep)
	}
	if infer.ImperativeOnly {
		t.Fatalf("function pinned imperative: %q", infer.ImperativeReason)
	}
	if len(infer.Deopts) != 1 {
		t.Fatalf("deopts = %+v, want exactly one", infer.Deopts)
	}
	d := infer.Deopts[0]
	// The converter speculated on the branch's controlling attribute value
	// ("attr training assumed constant"), an "eq" value-specialization.
	if d.Kind != "eq" {
		t.Errorf("deopt kind = %q, want \"eq\" (the speculated attribute value)", d.Kind)
	}
	if d.AST < 0 {
		t.Errorf("deopt lost its AST anchor: %+v", d)
	}
	if d.Desc == "" || d.Expected != "true" {
		t.Errorf("deopt identity incomplete: %+v", d)
	}
	if d.LastActual != "false" {
		t.Errorf("deopt LastActual = %q, want \"false\"", d.LastActual)
	}
	if d.Count != 1 || d.WastedNS <= 0 {
		t.Errorf("deopt cost accounting: count=%d wasted=%dns", d.Count, d.WastedNS)
	}
	// The failed assumption's AST node is now distrusted.
	distrusted := false
	for _, ast := range infer.DistrustedAST {
		if ast == d.AST {
			distrusted = true
		}
	}
	if !distrusted {
		t.Errorf("AST %d not in distrust set %v", d.AST, infer.DistrustedAST)
	}

	// Satellite: the request trace names the failing assumption, not just
	// "fallback".
	snap := tr.Snapshot()
	if snap.Annotations["path"] != "fallback" {
		t.Errorf("trace path = %q", snap.Annotations["path"])
	}
	if got := snap.Annotations["deopt"]; got != d.Label() || !strings.Contains(got, "@ast") {
		t.Errorf("trace deopt annotation = %q, want %q", got, d.Label())
	}

	// Unknown functions surface the sentinel, not a panic or empty report.
	if _, err := e.Explain("nope"); err == nil {
		t.Fatal("Explain(unknown) succeeded")
	}
	if _, err := e.Profile("nope"); err == nil {
		t.Fatal("Profile(unknown) succeeded")
	}
}
