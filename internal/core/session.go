package core

import (
	"context"
	"fmt"

	"repro/internal/minipy"
)

// This file hosts the session-affine execution entry points used by the
// serving layer. A serving session owns a minipy.Env that accumulates the
// session's module-level state (counters, tensors, helper functions defined
// by /v1/run scripts). For each request the env is attached — via Reparent —
// to whichever worker engine the pool handed out, so name lookups fall
// through to that worker's loaded module globals while writes stay with the
// session. Without this, a session's globals lived on whichever worker
// happened to serve the request, and a follow-up request routed to a
// different worker silently saw none of them.
//
// Callers must serialize requests per session env (the serving layer holds a
// per-session mutex): the env can be attached to only one worker at a time.

// ExecIn parses and runs src with env layered over this engine's module
// globals. Top-level assignments and definitions land in env and travel with
// the session, not with this worker.
func (e *Engine) ExecIn(src string, env *minipy.Env) error {
	return e.ExecInCtx(context.Background(), src, env)
}

// ExecInCtx is ExecIn under a context: cancellation stops the script between
// statements and training steps with ErrCanceled.
func (e *Engine) ExecInCtx(ctx context.Context, src string, env *minipy.Env) error {
	prog, err := minipy.Parse(src)
	if err != nil {
		return err
	}
	restore := e.withCtx(ctx)
	defer restore()
	if err := e.interrupted(); err != nil {
		return err
	}
	env.Reparent(e.Local.Globals)
	defer env.Reparent(nil)
	return e.Local.RunIn(prog, env)
}

// CallIn invokes the function named name with args, resolving the name
// through env first — session-defined functions shadow module globals.
//
// Functions owned by the session env run on the interpreter directly:
// session scripts are re-parsed per request, so their definitions get fresh
// AST identities, and routing them through the speculative path would grow
// the shared graph cache by one per-function state per definition, forever
// (cache capacity bounds compiled graphs, not per-function bookkeeping).
// Module-global functions take the engine's configured strategy as usual,
// and optimize() inside a session-defined function still reaches the
// speculative training path through its own builtin.
func (e *Engine) CallIn(env *minipy.Env, name string, args []minipy.Value) (minipy.Value, error) {
	return e.CallInCtx(context.Background(), env, name, args)
}

// CallInCtx is CallIn under a context.
func (e *Engine) CallInCtx(ctx context.Context, env *minipy.Env, name string, args []minipy.Value) (minipy.Value, error) {
	env.Reparent(e.Local.Globals)
	defer env.Reparent(nil)
	v, sessionOwned := env.LookupOwn(name)
	if !sessionOwned {
		var ok bool
		if v, ok = env.Lookup(name); !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownFunction, name)
		}
	}
	fn, ok := v.(*minipy.FuncVal)
	if !ok {
		return nil, fmt.Errorf("core: %q is %s, not a function", name, v.TypeName())
	}
	if sessionOwned {
		restore := e.withCtx(ctx)
		defer restore()
		if err := e.interrupted(); err != nil {
			return nil, err
		}
		return e.imperativeCall(fn, args, nil)
	}
	return e.CallFuncCtx(ctx, fn, args)
}
