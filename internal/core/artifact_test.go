package core

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/minipy"
	"repro/internal/obs"
	"repro/internal/tensor"
	"repro/internal/vars"
)

// servePredictProgram is an inference-shaped module with an elementwise
// tail, so compiled graphs carry Fused programs through the pass pipeline —
// the artifact round trip must preserve them bit for bit.
const servePredictProgram = `
def predict(x):
    w = variable("w", [2, 4])
    h = relu(matmul(x, w))
    return sigmoid(h * 0.5 + 1.5)
`

func newPredictEngine(t *testing.T, cfg Config, cache *GraphCache) *Engine {
	t.Helper()
	e := NewEngineShared(cfg, vars.NewStore(), cache)
	if err := e.Run(servePredictProgram); err != nil {
		t.Fatalf("load program: %v", err)
	}
	return e
}

func callPredict(t *testing.T, e *Engine, rows int) *tensor.Tensor {
	t.Helper()
	x := tensor.NewRNG(uint64(rows)).Randn(rows, 2)
	out, err := e.Call("predict", []minipy.Value{minipy.NewTensor(x)})
	if err != nil {
		t.Fatalf("predict rows=%d: %v", rows, err)
	}
	tv, ok := out.(*minipy.TensorVal)
	if !ok {
		t.Fatalf("predict returned %T", out)
	}
	return tv.T()
}

func bitIdentical(a, b *tensor.Tensor) bool {
	if len(a.Data()) != len(b.Data()) {
		return false
	}
	for i, v := range a.Data() {
		if v != b.Data()[i] && !(v != v && b.Data()[i] != b.Data()[i]) {
			return false
		}
	}
	return true
}

// TestArtifactRoundTripWarmBoot is the core warm-boot property: a cache
// snapshotted from one process and restored into a fresh one serves its
// first request with zero conversions AND zero imperative profiling steps,
// producing bit-identical outputs.
func TestArtifactRoundTripWarmBoot(t *testing.T) {
	dir := t.TempDir()
	path := ArtifactPath(dir)
	cfg := DefaultJanusConfig()
	cfg.ProfileIters = 1
	cfg.Seed = 11

	cold := newPredictEngine(t, cfg, NewGraphCache())
	var coldOut = map[int]*tensor.Tensor{}
	for _, rows := range []int{4, 8} {
		callPredict(t, cold, rows) // profile / compile
		coldOut[rows] = callPredict(t, cold, rows)
	}
	if cold.Stats().Conversions == 0 {
		t.Fatal("cold engine never converted")
	}
	saved, err := cold.SaveArtifact(path, "hash-a")
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	if saved == 0 {
		t.Fatal("snapshot saved no entries")
	}

	warmCache := NewGraphCache()
	warm := newPredictEngine(t, cfg, warmCache)
	loaded, err := warm.LoadArtifact(path, "hash-a")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded != saved {
		t.Fatalf("loaded %d entries, saved %d", loaded, saved)
	}
	for _, rows := range []int{4, 8} {
		got := callPredict(t, warm, rows)
		if !bitIdentical(got, coldOut[rows]) {
			t.Fatalf("rows=%d: warm output differs from cold\n%v\nvs\n%v", rows, got, coldOut[rows])
		}
	}
	s := warm.Stats()
	if s.Conversions != 0 {
		t.Fatalf("warm boot converted %d times, want 0", s.Conversions)
	}
	if s.ImperativeSteps != 0 {
		t.Fatalf("warm boot ran %d imperative profiling steps, want 0", s.ImperativeSteps)
	}
	if s.CacheHits == 0 {
		t.Fatal("warm boot never hit the restored cache")
	}
	// Provenance must be visible on inspection.
	info := warmCache.Inspect()
	if len(info.EntryList) == 0 {
		t.Fatal("no entries in warm cache")
	}
	for _, e := range info.EntryList {
		if e.Provenance != "snapshot" {
			t.Fatalf("entry provenance %q, want snapshot", e.Provenance)
		}
	}
	for _, e := range cold.Cache().Inspect().EntryList {
		if e.Provenance != "compiled" {
			t.Fatalf("cold entry provenance %q, want compiled", e.Provenance)
		}
	}
}

// TestArtifactRejection drives every rejection class: missing file, garbage
// bytes, truncated gzip, format-version skew, and a program-hash mismatch.
// Each must reject without touching the cache, count the tagged reason, and
// leave the engine able to compile cold.
func TestArtifactRejection(t *testing.T) {
	dir := t.TempDir()
	path := ArtifactPath(dir)
	cfg := DefaultJanusConfig()
	cfg.ProfileIters = 1
	cfg.Seed = 11
	cold := newPredictEngine(t, cfg, NewGraphCache())
	callPredict(t, cold, 4)
	callPredict(t, cold, 4)
	if _, err := cold.SaveArtifact(path, "hash-a"); err != nil {
		t.Fatalf("save: %v", err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	writeGz := func(t *testing.T, p string, art *Artifact) {
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		zw := gzip.NewWriter(f)
		if err := json.NewEncoder(zw).Encode(art); err != nil {
			t.Fatal(err)
		}
		zw.Close()
		f.Close()
	}

	cases := []struct {
		name    string
		reason  string
		prepare func(t *testing.T, p string)
		hash    string
	}{
		{"missing", "open", func(t *testing.T, p string) { os.Remove(p) }, "hash-a"},
		{"garbage", "decode", func(t *testing.T, p string) {
			os.WriteFile(p, []byte("definitely not gzip"), 0o644)
		}, "hash-a"},
		{"truncated", "decode", func(t *testing.T, p string) {
			os.WriteFile(p, good[:len(good)/2], 0o644)
		}, "hash-a"},
		{"version-skew", "version", func(t *testing.T, p string) {
			writeGz(t, p, &Artifact{Version: ArtifactVersion + 1, GraphWire: 1, ProgramHash: "hash-a"})
		}, "hash-a"},
		{"wire-skew", "wire", func(t *testing.T, p string) {
			writeGz(t, p, &Artifact{Version: ArtifactVersion, GraphWire: 999, ProgramHash: "hash-a"})
		}, "hash-a"},
		{"program-mismatch", "program", func(t *testing.T, p string) {
			os.WriteFile(p, good, 0o644)
		}, "hash-b"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "janus-cache.snap")
			os.WriteFile(p, good, 0o644)
			tc.prepare(t, p)
			cache := NewGraphCache()
			e := newPredictEngine(t, cfg, cache)
			reg := e.Registry()
			RegisterArtifactMetrics(reg)
			n, err := e.LoadArtifact(p, tc.hash)
			if err == nil {
				t.Fatal("load succeeded, want rejection")
			}
			if !errors.Is(err, ErrArtifactRejected) {
				t.Fatalf("error %v is not ErrArtifactRejected", err)
			}
			if got := RejectReason(err); got != tc.reason {
				t.Fatalf("reason %q, want %q (%v)", got, tc.reason, err)
			}
			if n != 0 || cache.Entries() != 0 {
				t.Fatalf("rejected load still restored %d entries (%d cached)", n, cache.Entries())
			}
			var count float64
			for _, sv := range reg.Series("janus_artifact_rejected_total") {
				if obs.LabelValue(sv.Labels, "reason") == tc.reason {
					count = sv.Value
				}
			}
			if count != 1 {
				t.Fatalf("janus_artifact_rejected_total{reason=%q} = %v, want 1", tc.reason, count)
			}
			// Cold fallback still works.
			callPredict(t, e, 4)
			callPredict(t, e, 4)
			if e.Stats().Conversions == 0 {
				t.Fatal("cold fallback never compiled")
			}
		})
	}
}

// TestRelaxMergeSharesOneGraph proves the symbolic batch-dim variant: with
// RelaxBatchDim on, distinct batch sizes collapse into one wildcard entry,
// a third size is a cache hit with no conversion at all, and every bucketed
// output is bit-identical to exact-shape compilation.
func TestRelaxMergeSharesOneGraph(t *testing.T) {
	cfg := DefaultJanusConfig()
	cfg.ProfileIters = 1
	cfg.Seed = 11
	cfg.RelaxBatchDim = true
	relaxed := newPredictEngine(t, cfg, NewGraphCache())

	callPredict(t, relaxed, 4) // profile
	callPredict(t, relaxed, 4) // compile exact
	callPredict(t, relaxed, 8) // compile + merge into wildcard entry
	if got := relaxed.Cache().Entries(); got != 1 {
		t.Fatalf("cache holds %d entries after merge, want 1", got)
	}
	info := relaxed.Cache().Inspect()
	if !info.EntryList[0].Bucketed {
		t.Fatalf("merged entry not marked bucketed: %v", info.EntryList[0].Signature)
	}
	before := relaxed.Stats().Conversions
	out16 := callPredict(t, relaxed, 16) // third size: wildcard hit
	if got := relaxed.Stats().Conversions; got != before {
		t.Fatalf("third batch size reconverted: %d -> %d", before, got)
	}

	// Bit-identity vs exact-shape compilation on a fresh engine.
	exactCfg := cfg
	exactCfg.RelaxBatchDim = false
	exact := newPredictEngine(t, exactCfg, NewGraphCache())
	callPredict(t, exact, 16)
	if want := callPredict(t, exact, 16); !bitIdentical(out16, want) {
		t.Fatalf("bucketed output differs from exact compilation:\n%v\nvs\n%v", out16, want)
	}
	if exact.Cache().Entries() < 1 {
		t.Fatal("exact engine cached nothing")
	}

	// The relax counter fired exactly once.
	var merges float64
	for _, sv := range relaxed.Registry().Series("janus_bucket_relaxed_total") {
		merges += sv.Value
	}
	if merges != 1 {
		t.Fatalf("janus_bucket_relaxed_total = %v, want 1", merges)
	}
}

// TestArtifactRoundTripRelaxedEntry checks the two features compose: a
// wildcard (bucketed) entry survives the snapshot round trip and still
// serves multiple batch sizes warm.
func TestArtifactRoundTripRelaxedEntry(t *testing.T) {
	dir := t.TempDir()
	path := ArtifactPath(dir)
	cfg := DefaultJanusConfig()
	cfg.ProfileIters = 1
	cfg.Seed = 11
	cfg.RelaxBatchDim = true
	cold := newPredictEngine(t, cfg, NewGraphCache())
	callPredict(t, cold, 4)
	callPredict(t, cold, 4)
	callPredict(t, cold, 8)
	if _, err := cold.SaveArtifact(path, "h"); err != nil {
		t.Fatal(err)
	}
	warmCache := NewGraphCache()
	warm := newPredictEngine(t, cfg, warmCache)
	if _, err := warm.LoadArtifact(path, "h"); err != nil {
		t.Fatal(err)
	}
	for _, rows := range []int{4, 8, 32} {
		want := callPredict(t, cold, rows)
		got := callPredict(t, warm, rows)
		if !bitIdentical(got, want) {
			t.Fatalf("rows=%d differs across snapshot round trip", rows)
		}
	}
	if s := warm.Stats(); s.Conversions != 0 || s.ImperativeSteps != 0 {
		t.Fatalf("warm engine did cold work: %d conversions, %d imperative steps",
			s.Conversions, s.ImperativeSteps)
	}
	info := warmCache.Inspect()
	if len(info.EntryList) != 1 || !info.EntryList[0].Bucketed || info.EntryList[0].Provenance != "snapshot" {
		t.Fatalf("restored entry = %+v", info.EntryList)
	}
}

// TestArtifactReplayProperty is the randomized replay property: for a batch
// of generated programs with random elementwise tails, an engine restored
// from a cold engine's artifact replays every one bit-identically with zero
// conversions and zero imperative steps. The generated corpus must include
// entries whose serialized graphs carry Fused elementwise programs and
// pooled memory plans, so the property covers the pass pipeline's output,
// not just plain op graphs.
func TestArtifactReplayProperty(t *testing.T) {
	tails := []string{"relu(%s)", "sigmoid(%s)", "tanh(%s)", "exp(%s * 0.25)",
		"(%s * 1.5 + 0.5)", "(%s - 0.25)"}
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	fusedSeen, plannedSeen := false, false
	for trial := 0; trial < 10; trial++ {
		expr := "matmul(x, w)"
		for n := 1 + rng.Intn(4); n > 0; n-- {
			expr = fmt.Sprintf(tails[rng.Intn(len(tails))], expr)
		}
		src := fmt.Sprintf("\ndef f(x):\n    w = variable(\"w\", [3, 5])\n    return %s\n", expr)
		cfg := DefaultJanusConfig()
		cfg.ProfileIters = 1
		cfg.Seed = 11
		mk := func() *Engine {
			e := NewEngineShared(cfg, vars.NewStore(), NewGraphCache())
			if err := e.Run(src); err != nil {
				t.Fatalf("trial %d: load %q: %v", trial, expr, err)
			}
			return e
		}
		rows := 2 + rng.Intn(6)
		x := tensor.NewRNG(uint64(trial+1)).Randn(rows, 3)
		call := func(e *Engine) *tensor.Tensor {
			out, err := e.Call("f", []minipy.Value{minipy.NewTensor(x)})
			if err != nil {
				t.Fatalf("trial %d: call %q: %v", trial, expr, err)
			}
			return out.(*minipy.TensorVal).T()
		}
		cold := mk()
		call(cold)
		want := call(cold)
		path := filepath.Join(dir, fmt.Sprintf("trial-%d.snap", trial))
		if _, err := cold.SaveArtifact(path, "prop"); err != nil {
			t.Fatalf("trial %d: save: %v", trial, err)
		}
		warm := mk()
		if _, err := warm.LoadArtifact(path, "prop"); err != nil {
			t.Fatalf("trial %d: load: %v", trial, err)
		}
		if got := call(warm); !bitIdentical(got, want) {
			t.Fatalf("trial %d: %q replays differently across the artifact round trip", trial, expr)
		}
		if s := warm.Stats(); s.Conversions != 0 || s.ImperativeSteps != 0 {
			t.Fatalf("trial %d: warm engine did cold work: %d conversions, %d imperative steps",
				trial, s.Conversions, s.ImperativeSteps)
		}
		// Inspect what was actually serialized, to keep the corpus honest.
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		zr, err := gzip.NewReader(f)
		if err != nil {
			t.Fatal(err)
		}
		var art Artifact
		if err := json.NewDecoder(zr).Decode(&art); err != nil {
			t.Fatal(err)
		}
		f.Close()
		for _, fa := range art.Funcs {
			for _, ea := range fa.Entries {
				if strings.Contains(string(ea.Graph), `"Fused"`) {
					fusedSeen = true
				}
				if ea.MemPlan != nil && ea.MemPlan.NumClasses > 0 {
					plannedSeen = true
				}
			}
		}
	}
	if !fusedSeen {
		t.Fatal("no generated program serialized a Fused elementwise graph — the property lost its pass-pipeline coverage")
	}
	if !plannedSeen {
		t.Fatal("no serialized entry carried a memory plan")
	}
}
