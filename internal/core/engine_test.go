package core

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/minipy"
	"repro/internal/tensor"
	"repro/internal/vars"
)

// linearProgram trains y = 2x - 3 with a tiny linear model. The loss function
// is a pure static program (the Figure 3 shape).
const linearProgram = `
def loss_fn(x, y):
    w = variable("w", [1, 1])
    b = variable("b", [1])
    pred = matmul(x, w) + b
    return mse(pred, y)

x = constant([[0.0], [1.0], [2.0], [3.0]])
y = constant([[-3.0], [-1.0], [1.0], [3.0]])
for step in range(200):
    optimize(lambda: loss_fn(x, y))
`

func finalLossOf(t *testing.T, e *Engine, src string) float64 {
	t.Helper()
	src = src + "\nprint(loss_fn(x, y))\n"
	if err := e.Run(src); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := strings.TrimSpace(e.Output())
	lines := strings.Split(out, "\n")
	last := lines[len(lines)-1]
	// TensorVal repr looks like "Tensor[][0.0123]".
	start := strings.LastIndex(last, "[")
	end := strings.LastIndex(last, "]")
	if start < 0 || end <= start {
		t.Fatalf("cannot parse loss from %q", last)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(last[start+1:end]), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", last, err)
	}
	return v
}

func TestImperativeEngineTrainsLinearModel(t *testing.T) {
	e := NewEngine(Config{Mode: Imperative, LR: 0.05, Seed: 1})
	loss := finalLossOf(t, e, linearProgram)
	if loss > 0.05 {
		t.Fatalf("imperative loss %v", loss)
	}
	if e.Stats().ImperativeSteps != 200 {
		t.Fatalf("imperative steps %d", e.Stats().ImperativeSteps)
	}
	if e.Stats().GraphSteps != 0 {
		t.Fatal("imperative engine ran graphs")
	}
}

func TestJanusEngineConvertsAndTrains(t *testing.T) {
	cfg := DefaultJanusConfig()
	cfg.LR = 0.05
	cfg.Seed = 1
	e := NewEngine(cfg)
	loss := finalLossOf(t, e, linearProgram)
	if loss > 0.05 {
		t.Fatalf("janus loss %v", loss)
	}
	if e.Stats().Conversions == 0 {
		t.Fatal("no graph conversion happened")
	}
	if e.Stats().GraphSteps < 190 {
		t.Fatalf("graph steps %d, expected most of 200", e.Stats().GraphSteps)
	}
	if e.Stats().ImperativeSteps != 3 {
		t.Fatalf("profiling iterations %d, want 3", e.Stats().ImperativeSteps)
	}
	if e.Stats().CacheHits == 0 {
		t.Fatal("graph cache never hit")
	}
}

func TestJanusMatchesImperativeTrajectory(t *testing.T) {
	// Same seed, same program: both engines must converge to comparable
	// parameters (identical up to float noise because updates are identical).
	imp := NewEngine(Config{Mode: Imperative, LR: 0.05, Seed: 7})
	if err := imp.Run(linearProgram); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultJanusConfig()
	cfg.LR = 0.05
	cfg.Seed = 7
	jan := NewEngine(cfg)
	if err := jan.Run(linearProgram); err != nil {
		t.Fatal(err)
	}
	wI := imp.Store.MustGet("w")
	wJ := jan.Store.MustGet("w")
	if !tensor.AllClose(wI, wJ, 1e-6) {
		t.Fatalf("weight divergence: imperative %v janus %v", wI, wJ)
	}
	bI := imp.Store.MustGet("b")
	bJ := jan.Store.MustGet("b")
	if !tensor.AllClose(bI, bJ, 1e-6) {
		t.Fatalf("bias divergence: %v vs %v", bI, bJ)
	}
}

func TestJanusHandlesLoopsAndLists(t *testing.T) {
	// RNN-style accumulation loop over a captured list (Figure 1 shape,
	// without object state).
	src := `
def step(xs):
    w = variable("w", [2, 2])
    state = zeros([1, 2])
    outputs = []
    for x in xs:
        state = tanh(matmul(x, w) + state)
        outputs += [state]
    return reduce_mean(stack(outputs) ** 2.0)

xs = [constant([[1.0, 0.0]]), constant([[0.0, 1.0]]), constant([[1.0, 1.0]])]
for i in range(12):
    optimize(lambda: step(xs))
`
	cfg := DefaultJanusConfig()
	cfg.Seed = 3
	e := NewEngine(cfg)
	if err := e.Run(src); err != nil {
		t.Fatalf("run: %v", err)
	}
	if e.Stats().Conversions == 0 || e.Stats().GraphSteps == 0 {
		t.Fatalf("loop program not converted: %+v", e.Stats())
	}
	if e.Stats().AssertFailures != 0 {
		t.Fatalf("unexpected assumption failures: %+v", e.Stats())
	}
}

func TestJanusObjectStateCarriedAcrossIterations(t *testing.T) {
	// The paper's Figure 1: object attribute read and written inside the
	// optimized function; graph mode must keep the state passing correct via
	// PyGetAttr/PySetAttr with deferred write-back.
	src := `
class Model:
    def __init__(self):
        self.state = zeros([1, 2])
    def __call__(self, x):
        w = variable("w", [2, 2])
        s = tanh(matmul(x, w) + self.state)
        self.state = s
        return reduce_mean(s ** 2.0)

m = Model()
x = constant([[1.0, 2.0]])
for i in range(10):
    optimize(lambda: m(x))
print(reduce_sum(m.state))
`
	run := func(mode Mode) (string, *Engine) {
		cfg := DefaultJanusConfig()
		cfg.Mode = mode
		cfg.Seed = 5
		e := NewEngine(cfg)
		if err := e.Run(src); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		return strings.TrimSpace(e.Output()), e
	}
	impOut, _ := run(Imperative)
	janOut, jan := run(Janus)
	if impOut != janOut {
		t.Fatalf("state divergence:\n imperative: %s\n janus:      %s", impOut, janOut)
	}
	if jan.Stats().GraphSteps == 0 {
		t.Fatalf("janus never used the graph: %+v", jan.Stats())
	}
}

func TestJanusBranchSpeculationAndFallback(t *testing.T) {
	// The branch is stable for 20 iterations, then flips: JANUS must assert,
	// fall back (correctly), distrust the branch, regenerate, and keep
	// producing results identical to the imperative engine.
	src := `
class Net:
    def __init__(self):
        self.training = True
    def loss(self, x):
        w = variable("w", [2, 1])
        h = matmul(x, w)
        if self.training:
            h = h * 2.0
        else:
            h = h * 0.5
        return reduce_mean(h ** 2.0)

net = Net()
x = constant([[1.0, 2.0]])
for i in range(30):
    if i == 20:
        net.training = False
    optimize(lambda: net.loss(x))
print(net.training)
`
	cfg := DefaultJanusConfig()
	cfg.Seed = 11
	jan := NewEngine(cfg)
	if err := jan.Run(src); err != nil {
		t.Fatalf("janus: %v", err)
	}
	if jan.Stats().AssertFailures == 0 {
		t.Fatal("expected an assumption failure when the branch flipped")
	}
	if jan.Stats().Fallbacks == 0 {
		t.Fatal("expected imperative fallback")
	}
	// Compare final weights with imperative reference.
	imp := NewEngine(Config{Mode: Imperative, LR: cfg.LR, Seed: 11})
	if err := imp.Run(src); err != nil {
		t.Fatalf("imperative: %v", err)
	}
	if !tensor.AllClose(imp.Store.MustGet("w"), jan.Store.MustGet("w"), 1e-6) {
		t.Fatalf("weights diverged after fallback:\n imp %v\n jan %v",
			imp.Store.MustGet("w"), jan.Store.MustGet("w"))
	}
}

func TestTraceEngineBakesBranchIncorrectly(t *testing.T) {
	// Same flipping-branch program: the tracing engine keeps using the
	// stale branch (silently wrong), so its weights must DIVERGE from the
	// imperative reference — reproducing the Figure 6(a) failure mode.
	src := `
class Net:
    def __init__(self):
        self.training = True
    def loss(self, x):
        w = variable("w", [2, 1])
        h = matmul(x, w)
        if self.training:
            h = h * 2.0
        else:
            h = h * 0.5
        return reduce_mean(h ** 2.0)

net = Net()
x = constant([[1.0, 2.0]])
for i in range(16):
    if i == 8:
        net.training = False
    optimize(lambda: net.loss(x))
`
	tr := NewEngine(Config{Mode: Trace, LR: 0.1, Seed: 13})
	if err := tr.Run(src); err != nil {
		t.Fatalf("trace: %v", err)
	}
	imp := NewEngine(Config{Mode: Imperative, LR: 0.1, Seed: 13})
	if err := imp.Run(src); err != nil {
		t.Fatalf("imperative: %v", err)
	}
	if tensor.AllClose(imp.Store.MustGet("w"), tr.Store.MustGet("w"), 1e-9) {
		t.Fatal("trace engine unexpectedly produced correct results despite baked branch")
	}
}

func TestTraceEngineLosesStatePassing(t *testing.T) {
	// Object state write inside the traced function is dropped: self.acc
	// stays at its initial value (the Figure 6(b) LM failure).
	src := `
class M:
    def __init__(self):
        self.acc = zeros([1])
    def step(self):
        w = variable("w", [1, 1])
        self.acc = self.acc + 1.0
        return reduce_mean(w ** 2.0)

m = M()
for i in range(6):
    optimize(lambda: m.step())
print(reduce_sum(m.acc))
`
	tr := NewEngine(Config{Mode: Trace, LR: 0.1, Seed: 17})
	if err := tr.Run(src); err != nil {
		t.Fatalf("trace: %v", err)
	}
	imp := NewEngine(Config{Mode: Imperative, LR: 0.1, Seed: 17})
	if err := imp.Run(src); err != nil {
		t.Fatalf("imperative: %v", err)
	}
	impOut := strings.TrimSpace(imp.Output())
	trOut := strings.TrimSpace(tr.Output())
	if impOut == trOut {
		t.Fatalf("trace engine unexpectedly preserved state: %s", trOut)
	}
	if !strings.Contains(impOut, "6") {
		t.Fatalf("imperative accumulator wrong: %s", impOut)
	}
	// Janus, in contrast, preserves the state exactly.
	cfg := DefaultJanusConfig()
	cfg.Seed = 17
	jan := NewEngine(cfg)
	if err := jan.Run(src); err != nil {
		t.Fatalf("janus: %v", err)
	}
	if strings.TrimSpace(jan.Output()) != impOut {
		t.Fatalf("janus state %s != imperative %s", jan.Output(), impOut)
	}
}

func TestJanusRecursionViaInvoke(t *testing.T) {
	// Tree-structured recursion (the TreeNN pattern): recursive user function
	// over an object graph.
	src := `
class Node:
    def __init__(self, leaf, val, left, right):
        self.leaf = leaf
        self.val = val
        self.left = left
        self.right = right

def embed(node):
    w = variable("w", [1, 1])
    if node.leaf:
        return matmul(constant([[1.0]]) * node.val, w)
    return tanh(embed(node.left) + embed(node.right))

def loss_fn(tree):
    out = embed(tree)
    return reduce_mean(out ** 2.0)

l1 = Node(True, 1.0, None, None)
l2 = Node(True, 2.0, None, None)
l3 = Node(True, 3.0, None, None)
inner = Node(False, 0.0, l1, l2)
root = Node(False, 0.0, inner, l3)
for i in range(8):
    optimize(lambda: loss_fn(root))
`
	cfg := DefaultJanusConfig()
	cfg.Seed = 19
	jan := NewEngine(cfg)
	if err := jan.Run(src); err != nil {
		t.Fatalf("janus: %v", err)
	}
	if jan.Stats().GraphSteps == 0 {
		t.Fatalf("recursion not executed on graph: %+v (reason: %s)", jan.Stats(), jan.impReason())
	}
	imp := NewEngine(Config{Mode: Imperative, LR: cfg.LR, Seed: 19})
	if err := imp.Run(src); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(imp.Store.MustGet("w"), jan.Store.MustGet("w"), 1e-6) {
		t.Fatalf("recursive model diverged: %v vs %v", imp.Store.MustGet("w"), jan.Store.MustGet("w"))
	}
	// Tracing must refuse recursion outright.
	tr := NewEngine(Config{Mode: Trace, LR: 0.1, Seed: 19})
	err := tr.Run(src)
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("trace engine should reject recursion, got %v", err)
	}
}

func TestJanusImperativeOnlyFunctionFallsBack(t *testing.T) {
	// randn() has no graph representation (whitelist): the function must stay
	// on the imperative executor and still train.
	src := `
def loss_fn():
    w = variable("w", [2, 1])
    x = randn([1, 2])
    return reduce_mean(matmul(x, w) ** 2.0)

for i in range(6):
    optimize(lambda: loss_fn())
`
	cfg := DefaultJanusConfig()
	cfg.Seed = 23
	e := NewEngine(cfg)
	if err := e.Run(src); err != nil {
		t.Fatalf("run: %v", err)
	}
	if e.Stats().GraphSteps != 0 {
		t.Fatal("non-convertible function ran on the graph")
	}
	if e.Stats().ConversionFails == 0 {
		t.Fatal("conversion failure not recorded")
	}
	if e.Stats().ImperativeSteps != 6 {
		t.Fatalf("imperative steps %d", e.Stats().ImperativeSteps)
	}
}

func TestJanusShapeChangeIsCacheMissNotError(t *testing.T) {
	// Batch size changes mid-training (last partial batch): each signature
	// gets its own specialized graph; correctness is preserved.
	src := `
def loss_fn(x):
    w = variable("w", [2, 1])
    return reduce_mean(matmul(x, w) ** 2.0)

big = constant([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
small = constant([[1.0, 2.0]])
for i in range(8):
    optimize(lambda: loss_fn(big))
for i in range(4):
    optimize(lambda: loss_fn(small))
`
	cfg := DefaultJanusConfig()
	cfg.Seed = 29
	e := NewEngine(cfg)
	if err := e.Run(src); err != nil {
		t.Fatalf("run: %v", err)
	}
	if e.Stats().Conversions < 2 {
		t.Fatalf("expected one graph per shape, got %d conversions", e.Stats().Conversions)
	}
	if e.Stats().AssertFailures != 0 {
		t.Fatalf("shape change caused assertion failure: %+v", e.Stats())
	}
}

func TestJanusBaseModeLoopOp(t *testing.T) {
	// With Unroll off (BASE), the RNN loop must convert to a Loop op and
	// still train identically to the imperative engine.
	src := `
def step(xs):
    w = variable("w", [2, 2])
    state = zeros([1, 2])
    outputs = []
    for x in xs:
        state = tanh(matmul(x, w) + state)
        outputs += [state]
    return reduce_mean(stack(outputs) ** 2.0)

xs = [constant([[1.0, 0.0]]), constant([[0.0, 1.0]])]
for i in range(10):
    optimize(lambda: step(xs))
`
	cfg := Config{Mode: Janus, LR: 0.1, ProfileIters: 3, Unroll: false, Specialize: false, Workers: 1, Seed: 31}
	base := NewEngine(cfg)
	if err := base.Run(src); err != nil {
		t.Fatalf("base: %v", err)
	}
	if base.Stats().GraphSteps == 0 {
		t.Fatalf("BASE mode did not run graphs: %+v", base.Stats())
	}
	imp := NewEngine(Config{Mode: Imperative, LR: 0.1, Seed: 31})
	if err := imp.Run(src); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(imp.Store.MustGet("w"), base.Store.MustGet("w"), 1e-6) {
		t.Fatalf("BASE diverged: %v vs %v", imp.Store.MustGet("w"), base.Store.MustGet("w"))
	}
}

func TestOptimizationReportPopulated(t *testing.T) {
	cfg := DefaultJanusConfig()
	cfg.Seed = 37
	e := NewEngine(cfg)
	if err := e.Run(linearProgram); err != nil {
		t.Fatal(err)
	}
	if len(e.Stats().OptimizeReport) == 0 {
		t.Fatal("no optimizer pass activity recorded")
	}
}

func TestDisableAssertsStillCorrectWhenAssumptionsHold(t *testing.T) {
	cfg := DefaultJanusConfig()
	cfg.DisableAsserts = true
	cfg.Seed = 41
	e := NewEngine(cfg)
	loss := finalLossOf(t, e, linearProgram)
	if loss > 0.05 {
		t.Fatalf("loss %v", loss)
	}
}

// impReason exposes the first imperative-only reason for test diagnostics.
func (e *Engine) impReason() string {
	if rs := e.cache.imperativeReasons(); len(rs) > 0 {
		return rs[0]
	}
	return ""
}

func TestSharedCacheHitsAcrossEngines(t *testing.T) {
	// Two engines sharing one store and one graph cache, running the SAME
	// parsed program (shared AST, so function identities match): graphs
	// converted by the first engine must be cache hits for the second —
	// the property the serving pool is built on.
	prog, err := minipy.Parse(linearProgram)
	if err != nil {
		t.Fatal(err)
	}
	store := vars.NewStore()
	cache := NewGraphCache()
	cfg := DefaultJanusConfig()
	cfg.LR = 0.05
	cfg.Seed = 1
	e1 := NewEngineShared(cfg, store, cache)
	if err := e1.RunProgram(prog); err != nil {
		t.Fatalf("engine 1: %v", err)
	}
	if e1.Stats().Conversions == 0 {
		t.Fatalf("engine 1 never converted: %+v", e1.Stats())
	}
	e2 := NewEngineShared(cfg, store, cache)
	if err := e2.RunProgram(prog); err != nil {
		t.Fatalf("engine 2: %v", err)
	}
	s2 := e2.Stats()
	if s2.Conversions != 0 {
		t.Fatalf("engine 2 reconverted despite the shared cache: %+v", s2)
	}
	if s2.ImperativeSteps != 0 {
		t.Fatalf("engine 2 re-profiled despite the shared profile: %+v", s2)
	}
	if s2.CacheHits == 0 || s2.GraphSteps == 0 {
		t.Fatalf("engine 2 did not hit the shared cache: %+v", s2)
	}
	if cache.Funcs() == 0 || cache.Entries() == 0 {
		t.Fatalf("cache empty: funcs=%d entries=%d", cache.Funcs(), cache.Entries())
	}
}

func TestSharedEnginesConcurrentSteps(t *testing.T) {
	// Engines sharing store+cache training concurrently must stay race-free
	// and keep counters consistent (run under -race to check the former).
	prog, err := minipy.Parse(`
def loss_fn(x, y):
    w = variable("w", [1, 1])
    return mse(matmul(x, w), y)

x = constant([[0.0], [1.0], [2.0], [3.0]])
y = constant([[-3.0], [-1.0], [1.0], [3.0]])
for step in range(40):
    optimize(lambda: loss_fn(x, y))
`)
	if err != nil {
		t.Fatal(err)
	}
	store := vars.NewStore()
	cache := NewGraphCache()
	cfg := DefaultJanusConfig()
	cfg.LR = 0.01
	cfg.Seed = 9
	const n = 4
	engines := make([]*Engine, n)
	for i := range engines {
		engines[i] = NewEngineShared(cfg, store, cache)
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, e := range engines {
		wg.Add(1)
		go func(i int, e *Engine) {
			defer wg.Done()
			errs[i] = e.RunProgram(prog)
		}(i, e)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("engine %d: %v", i, err)
		}
	}
	var total Stats
	for _, e := range engines {
		total.Add(e.Stats())
	}
	if got := total.ImperativeSteps + total.GraphSteps; got != n*40 {
		t.Fatalf("steps accounted %d, want %d", got, n*40)
	}
	if total.Conversions == 0 || total.CacheHits == 0 {
		t.Fatalf("no shared-cache activity: %+v", total)
	}
}

// TestGradSinkDivertsUpdatesAndStreamsPerTensor checks the parameter-server
// hook: with a sink installed, local parameters never move, every watched
// variable's gradient is emitted once per step, and the Janus engine still
// runs steady-state steps on the graph executor.
func TestGradSinkDivertsUpdatesAndStreamsPerTensor(t *testing.T) {
	prog := `
def loss_fn(x, y):
    w = variable("w", [1, 1])
    b = variable("b", [1])
    return mse(matmul(x, w) + b, y)

x = constant([[0.0], [1.0], [2.0], [3.0]])
y = constant([[-3.0], [-1.0], [1.0], [3.0]])
__loss = optimize(lambda: loss_fn(x, y))
`
	cfg := DefaultJanusConfig()
	cfg.ProfileIters = 2
	cfg.Seed = 7
	e := NewEngine(cfg)
	perStep := map[string]int{}
	e.SetGradSink(func(name string, g *tensor.Tensor) {
		perStep[name]++
		if tensor.Sum(g) == nil {
			t.Fatalf("nil gradient for %q", name)
		}
	})
	// Parse once so the step function keeps one AST identity across steps
	// (as the model harnesses do); re-parsing would defeat the graph cache.
	driver := minipy.MustParse(prog)
	const steps = 8
	var w0 *tensor.Tensor
	for i := 0; i < steps; i++ {
		if err := e.RunProgram(driver); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if i == 0 {
			w0 = e.Store.MustGet("w")
		}
	}
	if perStep["w"] != steps || perStep["b"] != steps {
		t.Fatalf("sink emissions %v, want %d per variable", perStep, steps)
	}
	// Local parameters never moved: updates were diverted to the sink.
	if got := e.Store.MustGet("w"); !tensor.AllClose(got, w0, 0) {
		t.Fatalf("local parameter updated despite grad sink: %v -> %v", w0, got)
	}
	// The graph path still carries steady-state steps (forced dynamic).
	if st := e.Stats(); st.GraphSteps == 0 {
		t.Fatalf("no graph steps under grad sink: %+v", st)
	}
}

// TestGraphCacheLRUEviction fills a capacity-bounded cache with distinct
// shape-specialized graphs and checks that the least-recently-hit entries
// are evicted, hot entries survive, and evicted signatures reconvert as
// ordinary misses.
func TestGraphCacheLRUEviction(t *testing.T) {
	const capacity = 2
	cache := NewGraphCacheCap(capacity)
	cfg := DefaultJanusConfig()
	cfg.ProfileIters = 1
	cfg.Seed = 3
	e := NewEngineShared(cfg, vars.NewStore(), cache)
	if err := e.Run(`
def predict(x):
    w = variable("w", [2, 2])
    return matmul(x, w)
`); err != nil {
		t.Fatalf("load: %v", err)
	}
	call := func(rows int) {
		t.Helper()
		x := tensor.Zeros(rows, 2)
		if _, err := e.Call("predict", []minipy.Value{minipy.NewTensor(x)}); err != nil {
			t.Fatalf("predict rows=%d: %v", rows, err)
		}
	}
	// Warm past profiling, then compile one graph per distinct batch size.
	for i := 0; i < 2; i++ {
		call(1)
	}
	for rows := 1; rows <= capacity+2; rows++ {
		call(rows)
		call(rows) // a hit, so recency reflects this order
	}
	// Capacity enforcement is asynchronous; run it to completion here.
	cache.enforceCapacity()
	if got := cache.Entries(); got > capacity {
		t.Fatalf("cache holds %d entries, capacity %d", got, capacity)
	}
	if cache.Evictions() == 0 {
		t.Fatal("no evictions recorded")
	}
	// The most recent signature must have survived: hitting it again is a
	// cache hit, not a reconversion.
	before := e.Stats().Conversions
	call(capacity + 2)
	if got := e.Stats().Conversions; got != before {
		t.Fatalf("most-recent entry was evicted: conversions %d -> %d", before, got)
	}
	// An evicted signature reconverts as an ordinary miss.
	call(1)
	if got := e.Stats().Conversions; got != before+1 {
		t.Fatalf("evicted signature did not reconvert: conversions %d -> %d", before, got)
	}
}

// TestEngineCallMalformedArgsError drives feeds with broken shapes through
// Engine.Call after a graph is compiled: the kernel panic recovery in the
// executor must surface an error to the caller (the serving layer adds its
// own panic guard for the imperative paths).
func TestEngineCallMalformedArgsError(t *testing.T) {
	cfg := DefaultJanusConfig()
	cfg.ProfileIters = 1
	cfg.Specialize = false // shape-generic graph: bad shapes reach the kernels
	cfg.Seed = 3
	e := NewEngine(cfg)
	if err := e.Run(`
def predict(x):
    w = variable("w", [2, 2])
    return matmul(x, w)
`); err != nil {
		t.Fatalf("load: %v", err)
	}
	good := tensor.Zeros(1, 2)
	for i := 0; i < 3; i++ {
		if _, err := e.Call("predict", []minipy.Value{minipy.NewTensor(good)}); err != nil {
			t.Fatalf("warm %d: %v", i, err)
		}
	}
	if st := e.Stats(); st.GraphSteps == 0 {
		t.Fatalf("graph never compiled: %+v", st)
	}
	bad := tensor.Zeros(1, 5)
	if _, err := e.Call("predict", []minipy.Value{minipy.NewTensor(bad)}); err == nil {
		t.Fatal("malformed call succeeded")
	}
	// The engine still serves good requests afterwards.
	if _, err := e.Call("predict", []minipy.Value{minipy.NewTensor(good)}); err != nil {
		t.Fatalf("engine poisoned after malformed call: %v", err)
	}
}

// TestCancellationLandsInsideGraphExecution: with the run context threaded
// into the graph executor, a deadline that expires while a long Loop graph
// is executing surfaces ErrCanceled promptly — inside the execution, not at
// the next step boundary.
func TestCancellationLandsInsideGraphExecution(t *testing.T) {
	cfg := Config{Mode: Janus, LR: 0.1, ProfileIters: 1, Workers: 1,
		Seed: 7, PyOverheadNs: -1, Unroll: false, Specialize: true}
	e := NewEngine(cfg)
	if err := e.Run(`
def spin():
    acc = constant(0.0)
    for i in range(80000):
        acc = acc + 1.0
    return acc
`); err != nil {
		t.Fatal(err)
	}
	// First call profiles imperatively; the second converts and executes the
	// structured Loop graph.
	if _, err := e.CallNamed(context.Background(), "spin", nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(30*time.Millisecond, cancel)
	start := time.Now()
	_, err := e.CallNamed(ctx, "spin", nil)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause not preserved: %v", err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v — did not land inside the execution", elapsed)
	}

	// A custom cancellation cause (context.WithCancelCause) must map to
	// ErrCanceled too, with the cause preserved in the chain.
	cause := errors.New("shutting down")
	cctx, ccancel := context.WithCancelCause(context.Background())
	time.AfterFunc(30*time.Millisecond, func() { ccancel(cause) })
	_, err = e.CallNamed(cctx, "spin", nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("custom-cause cancellation: got %v, want ErrCanceled", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("custom cause lost from the chain: %v", err)
	}
}
