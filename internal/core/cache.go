package core

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/profile"
)

// sigBucketed reports whether a signature pattern is shape-generalized:
// any wildcard dim ("?") means several concrete shapes match the entry.
func sigBucketed(pattern []string) bool {
	for _, tok := range pattern {
		if strings.Contains(tok, "?") {
			return true
		}
	}
	return false
}

// cacheKey identifies one optimized function in the graph cache: the AST id
// of its definition plus whether the cached graphs are training graphs
// (generated for optimize(), carrying gradient/update ops) or forward-only
// inference graphs. The same function can have both.
type cacheKey struct {
	fn    int
	infer bool
}

// GraphCache is the compiled-graph cache of the paper's Figure 2, extracted
// so that several Engines can share one cache: a serving pool creates N
// engines with NewEngineShared and a graph converted on behalf of one client
// is a cache hit for every other.
//
// The cache itself is guarded by a mutex; each per-function state carries its
// own lock (see funcState.mu) so profiling and generation for one function
// never block graph execution of another. Code that holds a funcState lock
// may acquire the cache lock (nested optimize() calls do), so nothing may
// sweep per-function locks while holding the cache lock — snapshot the
// function list first, then visit each function's lock on its own.
//
// A cache built with NewGraphCacheCap bounds the number of compiled graphs:
// when an insertion pushes the count over capacity, the least-recently-hit
// entry anywhere in the cache is evicted (LRU by hit time). Re-requesting an
// evicted signature is an ordinary cache miss: the engine reconverts from
// the function's retained profile.
type GraphCache struct {
	mu    sync.Mutex
	funcs map[cacheKey]*funcState

	// capacity bounds compiled entries across all functions; <= 0 is
	// unlimited.
	capacity int
	// clock is the logical LRU clock: bumped on every entry hit or insert.
	clock atomic.Int64
	// entryCount tracks compiled entries across all functions.
	entryCount atomic.Int64
	evictions  atomic.Int64
	// evicting serializes background capacity enforcement.
	evicting atomic.Bool
}

// NewGraphCache returns an empty, unbounded cache.
func NewGraphCache() *GraphCache { return NewGraphCacheCap(0) }

// NewGraphCacheCap returns an empty cache holding at most capacity compiled
// graphs (<= 0 means unlimited).
func NewGraphCacheCap(capacity int) *GraphCache {
	return &GraphCache{funcs: make(map[cacheKey]*funcState), capacity: capacity}
}

// Capacity returns the configured entry bound (0 = unlimited).
func (c *GraphCache) Capacity() int { return c.capacity }

// Evictions returns how many entries capacity enforcement has removed.
func (c *GraphCache) Evictions() int64 { return c.evictions.Load() }

// state returns (creating on first use) the per-function bookkeeping.
func (c *GraphCache) state(k cacheKey) *funcState {
	c.mu.Lock()
	defer c.mu.Unlock()
	fs, ok := c.funcs[k]
	if !ok {
		fs = &funcState{key: k, prof: profile.New(), distrust: make(map[int]bool),
			sigIndex: make(map[uint64]*compiled)}
		c.funcs[k] = fs
	}
	return fs
}

// peek returns the per-function bookkeeping without creating it (nil
// when the function has never been stepped or called).
func (c *GraphCache) peek(k cacheKey) *funcState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.funcs[k]
}

// states snapshots the per-function list so callers can visit funcState
// locks without holding the cache lock.
func (c *GraphCache) states() []*funcState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*funcState, 0, len(c.funcs))
	for _, fs := range c.funcs {
		out = append(out, fs)
	}
	return out
}

// touch stamps an entry as just-used and counts a hit on it.
func (c *GraphCache) touch(e *compiled) {
	e.hits.Add(1)
	e.lastUse.Store(c.clock.Add(1))
}

// noteInsert stamps a freshly inserted entry and accounts for it; the caller
// holds the owning funcState's lock. When the insert pushes the cache over
// capacity, enforcement runs on a background goroutine — it must sweep other
// functions' locks, which the calling goroutine may already hold (nested
// optimize() steps), so it can never run inline here.
func (c *GraphCache) noteInsert(e *compiled) {
	e.lastUse.Store(c.clock.Add(1))
	n := c.entryCount.Add(1)
	if c.capacity > 0 && n > int64(c.capacity) && c.evicting.CompareAndSwap(false, true) {
		go func() {
			// Re-check after releasing the flag: an insert that lost the CAS
			// while enforcement was winding down would otherwise leave the
			// cache over capacity with no evictor scheduled.
			for {
				c.enforceCapacity()
				c.evicting.Store(false)
				if c.entryCount.Load() <= int64(c.capacity) ||
					!c.evicting.CompareAndSwap(false, true) {
					return
				}
			}
		}()
	}
}

// noteRemove accounts for an entry removed outside capacity enforcement
// (assumption-failure eviction in noteFailure).
func (c *GraphCache) noteRemove() { c.entryCount.Add(-1) }

// enforceCapacity evicts least-recently-hit entries until the cache fits.
// Must not be called with any funcState lock held.
func (c *GraphCache) enforceCapacity() {
	if c.capacity <= 0 {
		return
	}
	for c.entryCount.Load() > int64(c.capacity) {
		var victimFS *funcState
		var victim *compiled
		best := int64(math.MaxInt64)
		for _, fs := range c.states() {
			fs.mu.Lock()
			for _, e := range fs.entries {
				if lu := e.lastUse.Load(); lu < best {
					best, victimFS, victim = lu, fs, e
				}
			}
			fs.mu.Unlock()
		}
		if victim == nil {
			return
		}
		victimFS.mu.Lock()
		removed := false
		for i, e := range victimFS.entries {
			if e == victim {
				victimFS.entries = append(victimFS.entries[:i], victimFS.entries[i+1:]...)
				removed = true
				break
			}
		}
		if removed {
			dropFromSigIndex(victimFS, victim)
		}
		victimFS.mu.Unlock()
		if !removed {
			// Lost a race with an assumption-failure eviction; the count
			// already moved, so just re-check the loop condition.
			continue
		}
		c.entryCount.Add(-1)
		c.evictions.Add(1)
	}
}

// Funcs returns the number of functions with cache state.
func (c *GraphCache) Funcs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.funcs)
}

// Entries returns the total number of compiled graphs currently cached
// across all functions and signatures.
func (c *GraphCache) Entries() int {
	n := 0
	for _, fs := range c.states() {
		fs.mu.Lock()
		n += len(fs.entries)
		fs.mu.Unlock()
	}
	return n
}

// CacheEntry describes one compiled graph for the inspection endpoint.
type CacheEntry struct {
	Func      int      `json:"func"`
	Infer     bool     `json:"infer"`
	Signature []string `json:"signature"`
	Static    bool     `json:"static"`
	Hits      int64    `json:"hits"`
	LastUse   int64    `json:"last_use"`
	// Provenance reports where the entry came from: "compiled" (converted
	// in this process) or "snapshot" (restored from a persisted artifact).
	Provenance string `json:"provenance"`
	// Bucketed marks shape-generalized entries: the signature carries
	// wildcard dims, so several concrete feed shapes (the serve batcher's
	// shape buckets) share this one graph.
	Bucketed bool `json:"bucketed"`
}

// CacheInfo is a point-in-time inspection snapshot of the cache.
type CacheInfo struct {
	Capacity       int          `json:"capacity"`
	Funcs          int          `json:"funcs"`
	Entries        int          `json:"entries"`
	Evictions      int64        `json:"evictions"`
	ImperativeOnly int          `json:"imperative_only"`
	EntryList      []CacheEntry `json:"entry_list"`
}

// Inspect snapshots every cached entry (most recently used first) for the
// serving layer's GET /v1/cache endpoint.
func (c *GraphCache) Inspect() CacheInfo {
	info := CacheInfo{Capacity: c.capacity, Evictions: c.evictions.Load()}
	states := c.states()
	info.Funcs = len(states)
	for _, fs := range states {
		fs.mu.Lock()
		if fs.imperativeOnly {
			info.ImperativeOnly++
		}
		for _, e := range fs.entries {
			prov := "compiled"
			if e.fromSnapshot {
				prov = "snapshot"
			}
			info.EntryList = append(info.EntryList, CacheEntry{
				Func:       fs.key.fn,
				Infer:      fs.key.infer,
				Signature:  append([]string(nil), e.pattern...),
				Static:     e.static,
				Hits:       e.hits.Load(),
				LastUse:    e.lastUse.Load(),
				Provenance: prov,
				Bucketed:   sigBucketed(e.pattern),
			})
		}
		fs.mu.Unlock()
	}
	info.Entries = len(info.EntryList)
	sort.Slice(info.EntryList, func(i, j int) bool {
		return info.EntryList[i].LastUse > info.EntryList[j].LastUse
	})
	return info
}

// imperativeReasons returns the conversion-failure reason of every function
// pinned to the imperative executor (test/diagnostic use).
func (c *GraphCache) imperativeReasons() []string {
	var out []string
	for _, fs := range c.states() {
		fs.mu.Lock()
		if fs.imperativeOnly {
			out = append(out, fs.impReason)
		}
		fs.mu.Unlock()
	}
	return out
}
