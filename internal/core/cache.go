package core

import (
	"sync"

	"repro/internal/profile"
)

// cacheKey identifies one optimized function in the graph cache: the AST id
// of its definition plus whether the cached graphs are training graphs
// (generated for optimize(), carrying gradient/update ops) or forward-only
// inference graphs. The same function can have both.
type cacheKey struct {
	fn    int
	infer bool
}

// GraphCache is the compiled-graph cache of the paper's Figure 2, extracted
// so that several Engines can share one cache: a serving pool creates N
// engines with NewEngineShared and a graph converted on behalf of one client
// is a cache hit for every other.
//
// The cache itself is guarded by a mutex; each per-function state carries its
// own lock (see funcState.mu) so profiling and generation for one function
// never block graph execution of another.
type GraphCache struct {
	mu    sync.Mutex
	funcs map[cacheKey]*funcState
}

// NewGraphCache returns an empty cache.
func NewGraphCache() *GraphCache {
	return &GraphCache{funcs: make(map[cacheKey]*funcState)}
}

// state returns (creating on first use) the per-function bookkeeping.
func (c *GraphCache) state(k cacheKey) *funcState {
	c.mu.Lock()
	defer c.mu.Unlock()
	fs, ok := c.funcs[k]
	if !ok {
		fs = &funcState{prof: profile.New(), distrust: make(map[int]bool)}
		c.funcs[k] = fs
	}
	return fs
}

// Funcs returns the number of functions with cache state.
func (c *GraphCache) Funcs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.funcs)
}

// Entries returns the total number of compiled graphs currently cached
// across all functions and signatures.
func (c *GraphCache) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, fs := range c.funcs {
		fs.mu.Lock()
		n += len(fs.entries)
		fs.mu.Unlock()
	}
	return n
}

// imperativeReasons returns the conversion-failure reason of every function
// pinned to the imperative executor (test/diagnostic use).
func (c *GraphCache) imperativeReasons() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, fs := range c.funcs {
		fs.mu.Lock()
		if fs.imperativeOnly {
			out = append(out, fs.impReason)
		}
		fs.mu.Unlock()
	}
	return out
}
