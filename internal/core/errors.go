package core

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled reports an execution stopped by context cancellation or
// deadline expiry. The engine checks the context between training steps and
// at fallback boundaries, so a canceled run never leaves a step half
// applied: parameters always correspond to an integral number of completed
// steps (all-or-nothing, matching the graph executor's deferred-commit
// semantics of §4.2.3).
//
// Errors carrying ErrCanceled also wrap the originating context error, so
// errors.Is(err, context.Canceled) / errors.Is(err, context.DeadlineExceeded)
// report the precise cause.
var ErrCanceled = errors.New("core: execution canceled")

// ErrUnknownFunction reports a call to a function name that is not defined
// at module scope. The serving layer maps it to HTTP 404.
var ErrUnknownFunction = errors.New("core: unknown function")

// CanceledErr wraps a context's cancellation cause as an ErrCanceled error.
func CanceledErr(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}
