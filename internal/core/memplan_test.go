package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/minipy"
	"repro/internal/tensor"
	"repro/internal/vars"
)

// lenetProgram is a small conv net training step — the kernels the memory
// plan accelerates (conv, pool, matmul, elementwise, cross-entropy).
const lenetProgram = `
def loss_fn(x, y):
    c1 = variable("c1", [4, 1, 3, 3])
    fc = variable("fc", [16, 4])
    b = variable("b", [4])
    h = relu(conv2d(x, c1, stride=1, pad=1))
    h = max_pool(h, 2, 2)
    flat = reshape(h, [4, 16])
    logits = matmul(flat, fc) + b
    return cross_entropy(logits, y)

x = randn([4, 1, 4, 4])
y = one_hot([0, 1, 2, 3], 4)
for step in range(40):
    optimize(lambda: loss_fn(x, y))
`

// trainedState runs src on a fresh engine and returns per-step losses plus
// the final parameter store.
func trainedState(t *testing.T, cfg Config, src string) ([]float64, map[string][]float64, Stats) {
	t.Helper()
	e := NewEngine(cfg)
	var losses []float64
	e.Define("record", &minipy.BuiltinVal{Name: "record", Fn: func(it *minipy.Interp, args []minipy.Value, kwargs map[string]minipy.Value) (minipy.Value, error) {
		tv := args[0].(*minipy.TensorVal)
		losses = append(losses, tv.T().Item())
		return minipy.None, nil
	}})
	if err := e.Run(src); err != nil {
		t.Fatalf("run: %v", err)
	}
	params := map[string][]float64{}
	for _, name := range e.Store.Names() {
		v, _ := e.Store.Get(name)
		params[name] = append([]float64(nil), v.Data()...)
	}
	return losses, params, e.Stats()
}

// TestMemoryPlanEngineEquivalence trains the same conv model with the plan
// on and off: losses and final parameters must be bit-identical, and the
// plan-on engine must show real pool traffic.
func TestMemoryPlanEngineEquivalence(t *testing.T) {
	src := lenetProgram
	base := DefaultJanusConfig()
	base.LR = 0.05
	base.Seed = 7
	base.Workers = 1

	off := base
	off.NoMemoryPlan = true
	_, paramsOff, statsOff := trainedState(t, off, src)
	if statsOff.PoolGets != 0 {
		t.Fatalf("plan-off engine rented pool buffers: %+v", statsOff)
	}

	on := base
	_, paramsOn, statsOn := trainedState(t, on, src)
	if statsOn.PoolGets == 0 || statsOn.PoolHits == 0 {
		t.Fatalf("plan-on engine shows no pool traffic: gets=%d hits=%d",
			statsOn.PoolGets, statsOn.PoolHits)
	}
	if statsOn.GraphSteps == 0 {
		t.Fatal("model never reached graph execution")
	}
	if len(paramsOn) != len(paramsOff) {
		t.Fatalf("param sets differ: %d vs %d", len(paramsOn), len(paramsOff))
	}
	for name, want := range paramsOff {
		got, ok := paramsOn[name]
		if !ok {
			t.Fatalf("missing param %q", name)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("param %q[%d]: plan-on %v != plan-off %v", name, i, got[i], want[i])
			}
		}
	}
}

// TestMemoryPlanParallelWorkersEquivalence: the +PARL scheduler with pooling
// must produce the same parameters as serial pooled execution.
func TestMemoryPlanParallelWorkersEquivalence(t *testing.T) {
	base := DefaultJanusConfig()
	base.LR = 0.05
	base.Seed = 7
	base.Workers = 1
	_, serialParams, _ := trainedState(t, base, lenetProgram)

	par := base
	par.Workers = 4
	_, parParams, _ := trainedState(t, par, lenetProgram)
	for name, want := range serialParams {
		got := parParams[name]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("param %q[%d]: parallel %v != serial %v", name, i, got[i], want[i])
			}
		}
	}
}

// TestSigHashMemoizedLookups: repeated Calls with a repeated concrete
// signature are served by the per-function hash index; a new signature goes
// through the slow path once, then hits.
func TestSigHashMemoizedLookups(t *testing.T) {
	cfg := DefaultJanusConfig()
	cfg.ProfileIters = 1
	e := NewEngine(cfg)
	if err := e.Run(`
def double(x):
    return x + x
`); err != nil {
		t.Fatal(err)
	}
	call := func(rows int) {
		t.Helper()
		arg := minipy.NewTensor(tensor.Full(2, rows, 3))
		out, err := e.Call("double", []minipy.Value{arg})
		if err != nil {
			t.Fatal(err)
		}
		got := out.(*minipy.TensorVal).T()
		if got.At(0, 0) != 4 {
			t.Fatalf("double returned %v", got)
		}
	}
	for i := 0; i < 6; i++ {
		call(2)
	}
	s1 := e.Stats()
	if s1.SigHashHits == 0 {
		t.Fatalf("no signature-hash hits after repeated calls: %+v", s1)
	}
	if s1.SigHashHits >= s1.CacheHits+1 {
		t.Fatalf("hash hits %d exceed cache hits %d", s1.SigHashHits, s1.CacheHits)
	}
	// A different shape converts separately, then memoizes too.
	for i := 0; i < 4; i++ {
		call(5)
	}
	s2 := e.Stats()
	if s2.SigHashHits <= s1.SigHashHits {
		t.Fatalf("second signature never hit the hash index: %+v", s2)
	}
}

// TestSigHashInvalidatedOnEviction: evicting a compiled graph (capacity LRU)
// must drop its hash-index entries — the next call reconverts instead of
// running a stale graph.
func TestSigHashInvalidatedOnEviction(t *testing.T) {
	cfg := DefaultJanusConfig()
	cfg.ProfileIters = 1
	e := NewEngineShared(cfg, vars.NewStore(), NewGraphCacheCap(1))
	if err := e.Run(`
def double(x):
    return x + x
`); err != nil {
		t.Fatal(err)
	}
	call := func(rows int, want float64) {
		t.Helper()
		arg := minipy.NewTensor(tensor.Full(want/2, rows, 2))
		out, err := e.Call("double", []minipy.Value{arg})
		if err != nil {
			t.Fatal(err)
		}
		if got := out.(*minipy.TensorVal).T().At(0, 0); got != want {
			t.Fatalf("double(%d rows) = %v, want %v", rows, got, want)
		}
	}
	// Alternate two signatures against a capacity-1 cache: every flip can
	// evict the other entry, and the hash index must follow.
	for i := 0; i < 8; i++ {
		call(2, 6)
		call(3, 10)
	}
	waitForEvictions(t, e)
	if e.Cache().Entries() > 1 {
		t.Fatalf("capacity not enforced: %d entries", e.Cache().Entries())
	}
}

func waitForEvictions(t *testing.T, e *Engine) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if e.Cache().Entries() <= e.Cache().Capacity() {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

var _ = fmt.Sprintf
