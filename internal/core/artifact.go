package core

// This file implements the persistent compiled-artifact cache: the warm
// state a long-running janusd accumulates — converted graphs, memory plans,
// pass reports, the per-function signature-hash index, profiling progress —
// serialized to a versioned file and restored at boot, so a restarted
// replica serves its first request from a warm cache instead of re-paying
// profile → convert → compile for its whole workload.
//
// Safety model: an artifact is only trusted when its format version, graph
// wire version and program hash all match the loading process; anything
// else (including a torn or corrupted file) is rejected as a unit and the
// replica simply boots cold, with the rejection reason counted in
// janus_artifact_rejected_total. Entries that cannot be serialized (graphs
// holding opaque heap references) are skipped at save time and counted in
// janus_artifact_skipped_total; everything that does round-trip replays
// bit-identically because the graph encoding is bit-exact (see
// internal/graph/serialize.go).

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/convert"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/graph/passes"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// ArtifactVersion identifies the artifact file schema. Bump on any change
// to the artifact structs below; the CI snapshot fixture must be
// regenerated in the same change (the cold-start workflow fails with a
// clear message otherwise).
const ArtifactVersion = 1

// Artifact metric help strings.
const (
	helpArtifactSaved    = "Compiled-graph cache entries written to a snapshot artifact."
	helpArtifactLoaded   = "Compiled-graph cache entries restored from a snapshot artifact."
	helpArtifactSkipped  = "Cache entries skipped at snapshot save (graph not serializable)."
	helpArtifactRejected = "Snapshot artifacts rejected at load, by reason."
	helpArtifactSaves    = "Snapshot artifact files written."
	helpArtifactLoads    = "Snapshot artifact files loaded successfully."
)

// artifactRejectReasons are the load-rejection classes, registered eagerly
// so the janus_artifact_rejected_total family is present in an exposition
// even when every load succeeded.
var artifactRejectReasons = []string{"open", "decode", "version", "wire", "program", "entry"}

// RegisterArtifactMetrics eagerly resolves every janus_artifact_* series in
// reg so family-presence gates (benchcheck -metrics) see them on a fresh
// boot, before any snapshot activity.
func RegisterArtifactMetrics(reg *obs.Registry) {
	reg.Counter("janus_artifact_saves_total", helpArtifactSaves)
	reg.Counter("janus_artifact_loads_total", helpArtifactLoads)
	reg.Counter("janus_artifact_saved_entries_total", helpArtifactSaved)
	reg.Counter("janus_artifact_loaded_entries_total", helpArtifactLoaded)
	reg.Counter("janus_artifact_skipped_total", helpArtifactSkipped)
	for _, r := range artifactRejectReasons {
		reg.Counter("janus_artifact_rejected_total", helpArtifactRejected, "reason", r)
	}
}

// Artifact is the on-disk snapshot of a GraphCache.
type Artifact struct {
	Version int `json:"version"`
	// GraphWire pins the graph encoding version the entries were written
	// with (graph.SerialVersion).
	GraphWire int `json:"graph_wire"`
	// ProgramHash fingerprints the loaded program source; cacheKey function
	// IDs are AST node IDs, only meaningful against the identical source.
	ProgramHash string         `json:"program_hash"`
	Funcs       []FuncArtifact `json:"funcs"`
	// Vars snapshots the parameter store. Compiled graphs read variables by
	// name at execution time, and those variables are normally created as a
	// side effect of imperative profiling runs — exactly the runs a warm
	// boot skips — so the parameters must travel with the graphs for the
	// first warm request to execute (and to reproduce the saving process's
	// outputs bit for bit).
	Vars []VarArtifact `json:"vars,omitempty"`
}

// VarArtifact is one persisted model parameter (bit-exact encoding).
type VarArtifact struct {
	Name   string          `json:"name"`
	Tensor json.RawMessage `json:"tensor"`
}

// FuncArtifact snapshots one function's cache state. The function is
// identified by (Prog, Offset): the load-order index of the program that
// defined it and the AST-ID offset inside that program's span. Raw AST IDs
// are process-global (they depend on everything parsed before), but the
// span-relative offset is stable whenever the same program sources load in
// the same order — which the program hash guarantees.
type FuncArtifact struct {
	Prog   int  `json:"prog"`
	Offset int  `json:"offset"`
	Infer  bool `json:"infer"`
	// ProfIters is the function's completed profiling iterations; restoring
	// it keeps the engine from re-gating cached graphs behind a fresh
	// observation window.
	ProfIters int `json:"prof_iters"`
	// ImperativeOnly functions have no graph representation; restoring the
	// verdict avoids one doomed conversion attempt per restart.
	ImperativeOnly bool            `json:"imperative_only,omitempty"`
	ImpReason      string          `json:"imp_reason,omitempty"`
	Entries        []EntryArtifact `json:"entries,omitempty"`
}

// EntryArtifact snapshots one compiled graph.
type EntryArtifact struct {
	Pattern   []string        `json:"pattern"`
	LeafCount int             `json:"leaf_count"`
	Static    bool            `json:"static"`
	Dynamic   bool            `json:"dynamic,omitempty"`
	Graph     json.RawMessage `json:"graph"`
	// LossNode/LossOut locate the Result's loss port by node index (-1 =
	// zero port).
	LossNode int `json:"loss_node"`
	LossOut  int `json:"loss_out,omitempty"`
	// Asserts lists assumption-check nodes by node index.
	Asserts  []int    `json:"asserts,omitempty"`
	VarNames []string `json:"var_names,omitempty"`
	NumFeeds int      `json:"num_feeds"`
	// MemPlan is the executor's liveness/buffer-reuse analysis; restored
	// via exec.PrimePlan so the first request skips the analysis.
	MemPlan *graph.MemoryPlan `json:"mem_plan,omitempty"`
	// Passes is the post-processor report, surfaced through Explain.
	Passes *passes.Report `json:"passes,omitempty"`
	// SigHashes are the signature-hash index keys that resolved to this
	// entry, so restored replicas keep the hash fast path warm.
	SigHashes []uint64 `json:"sig_hashes,omitempty"`
	Hits      int64    `json:"hits,omitempty"`
}

// Snapshot serializes the cache's current compiled state, translating raw
// function IDs into span-relative (prog, offset) pairs via spans. Entries
// whose graphs cannot be serialized — and functions outside every recorded
// span — are skipped (counted in skipped); the rest of the snapshot is
// unaffected. The result is deterministic: functions sort by key, entries
// keep their insertion order.
func (c *GraphCache) Snapshot(programHash string, spans []progSpan) (*Artifact, int) {
	art := &Artifact{Version: ArtifactVersion, GraphWire: graph.SerialVersion, ProgramHash: programHash}
	skipped := 0
	encode := func(fn int) (int, int, bool) {
		for i, s := range spans {
			if fn >= s.First && fn <= s.Last {
				return i, fn - s.First, true
			}
		}
		return 0, 0, false
	}
	for _, fs := range c.states() {
		prog, off, ok := encode(fs.key.fn)
		if !ok {
			skipped++
			continue
		}
		fs.mu.Lock()
		fa := FuncArtifact{
			Prog:           prog,
			Offset:         off,
			Infer:          fs.key.infer,
			ProfIters:      fs.prof.Iterations(),
			ImperativeOnly: fs.imperativeOnly,
			ImpReason:      fs.impReason,
		}
		// Invert the signature-hash index once per function.
		hashes := make(map[*compiled][]uint64)
		for h, en := range fs.sigIndex {
			hashes[en] = append(hashes[en], h)
		}
		for _, e := range fs.entries {
			ea, err := snapshotEntry(e, hashes[e])
			if err != nil {
				skipped++
				continue
			}
			fa.Entries = append(fa.Entries, ea)
		}
		fs.mu.Unlock()
		if len(fa.Entries) == 0 && !fa.ImperativeOnly && fa.ProfIters == 0 {
			continue
		}
		art.Funcs = append(art.Funcs, fa)
	}
	sort.Slice(art.Funcs, func(i, j int) bool {
		a, b := art.Funcs[i], art.Funcs[j]
		if a.Prog != b.Prog {
			return a.Prog < b.Prog
		}
		if a.Offset != b.Offset {
			return a.Offset < b.Offset
		}
		return !a.Infer && b.Infer
	})
	return art, skipped
}

func snapshotEntry(e *compiled, sigHashes []uint64) (EntryArtifact, error) {
	buf, err := graph.MarshalGraph(e.res.Graph)
	if err != nil {
		return EntryArtifact{}, err
	}
	index := make(map[*graph.Node]int, len(e.res.Graph.Nodes))
	for i, n := range e.res.Graph.Nodes {
		index[n] = i
	}
	ea := EntryArtifact{
		Pattern:   e.pattern,
		LeafCount: e.leafCount,
		Static:    e.static,
		Dynamic:   e.res.Dynamic,
		Graph:     buf,
		LossNode:  -1,
		VarNames:  e.res.VarNames,
		NumFeeds:  e.res.NumFeeds,
		MemPlan:   exec.PlanMemory(e.res.Graph),
		Passes:    e.passes,
		Hits:      e.hits.Load(),
	}
	if e.res.Loss.Node != nil {
		j, ok := index[e.res.Loss.Node]
		if !ok {
			return EntryArtifact{}, fmt.Errorf("core: loss port outside graph")
		}
		ea.LossNode, ea.LossOut = j, e.res.Loss.Out
	}
	for _, a := range e.res.Asserts {
		j, ok := index[a]
		if !ok {
			return EntryArtifact{}, fmt.Errorf("core: assert node outside graph")
		}
		ea.Asserts = append(ea.Asserts, j)
	}
	sort.Slice(sigHashes, func(i, j int) bool { return sigHashes[i] < sigHashes[j] })
	ea.SigHashes = sigHashes
	return ea, nil
}

// ErrArtifactRejected wraps every artifact-load failure; callers fall back
// to a cold boot.
var ErrArtifactRejected = errors.New("core: artifact rejected")

// artifactError tags a rejection with its metric reason label.
type artifactError struct {
	reason string
	msg    string
}

func (e *artifactError) Error() string {
	return fmt.Sprintf("core: artifact rejected (%s): %s", e.reason, e.msg)
}

func (e *artifactError) Is(target error) bool { return target == ErrArtifactRejected }

// rejectf builds a reason-tagged rejection error.
func rejectf(reason, format string, args ...any) error {
	return &artifactError{reason: reason, msg: fmt.Sprintf(format, args...)}
}

// RejectReason extracts the reason tag of an artifact rejection ("" for
// other errors).
func RejectReason(err error) string {
	var ae *artifactError
	if errors.As(err, &ae) {
		return ae.reason
	}
	return ""
}

// Restore loads an artifact into the cache, translating span-relative
// (prog, offset) function keys back into this process's AST IDs via spans.
// The artifact must carry the current format and wire versions and match
// programHash; any mismatch or malformed entry rejects the whole artifact
// (the cache is left exactly as it was — entries are staged and only
// committed once every one decoded). Returns the number of compiled
// entries restored.
func (c *GraphCache) Restore(art *Artifact, programHash string, spans []progSpan) (int, error) {
	if art.Version != ArtifactVersion {
		return 0, rejectf("version", "artifact version %d, want %d", art.Version, ArtifactVersion)
	}
	if art.GraphWire != graph.SerialVersion {
		return 0, rejectf("wire", "graph wire version %d, want %d", art.GraphWire, graph.SerialVersion)
	}
	if art.ProgramHash != programHash {
		return 0, rejectf("program", "artifact built for program %s, loaded program is %s", art.ProgramHash, programHash)
	}
	// Stage: decode everything before touching the cache.
	type staged struct {
		fa      FuncArtifact
		fn      int
		entries []*compiled
		hashes  [][]uint64
		mems    []*graph.MemoryPlan
	}
	all := make([]staged, 0, len(art.Funcs))
	for _, fa := range art.Funcs {
		if fa.Prog < 0 || fa.Prog >= len(spans) {
			return 0, rejectf("entry", "function references program %d of %d loaded", fa.Prog, len(spans))
		}
		sp := spans[fa.Prog]
		if fa.Offset < 0 || sp.First+fa.Offset > sp.Last {
			return 0, rejectf("entry", "function offset %d outside program %d span", fa.Offset, fa.Prog)
		}
		st := staged{fa: fa, fn: sp.First + fa.Offset}
		for _, ea := range fa.Entries {
			e, mem, err := restoreEntry(ea)
			if err != nil {
				return 0, rejectf("entry", "prog %d offset %d: %v", fa.Prog, fa.Offset, err)
			}
			st.entries = append(st.entries, e)
			st.hashes = append(st.hashes, ea.SigHashes)
			st.mems = append(st.mems, mem)
		}
		all = append(all, st)
	}
	// Commit. Functions that already hold live compiled state keep it — a
	// snapshot never clobbers entries converted in this process.
	restored := 0
	for _, st := range all {
		fs := c.state(cacheKey{fn: st.fn, infer: st.fa.Infer})
		fs.mu.Lock()
		fs.prof.ForceIterations(st.fa.ProfIters)
		if st.fa.ImperativeOnly && !fs.imperativeOnly {
			fs.imperativeOnly = true
			fs.impReason = st.fa.ImpReason
		}
		if len(fs.entries) > 0 {
			fs.mu.Unlock()
			continue
		}
		for i, e := range st.entries {
			fs.entries = append(fs.entries, e)
			c.noteInsert(e)
			for _, h := range st.hashes[i] {
				memoizeSig(fs, h, e)
			}
			restored++
		}
		fs.mu.Unlock()
		// Prime execution plans outside the funcState lock: plan building
		// is pure per-graph work and PrimePlan has its own mutex.
		for i, e := range st.entries {
			_ = exec.PrimePlan(e.res.Graph, st.mems[i])
		}
	}
	return restored, nil
}

func restoreEntry(ea EntryArtifact) (*compiled, *graph.MemoryPlan, error) {
	g, err := graph.UnmarshalGraph(ea.Graph)
	if err != nil {
		return nil, nil, err
	}
	res := &convert.Result{
		Graph:     g,
		Dynamic:   ea.Dynamic,
		VarNames:  ea.VarNames,
		Signature: ea.Pattern,
		NumFeeds:  ea.NumFeeds,
	}
	if ea.LossNode >= 0 {
		if ea.LossNode >= len(g.Nodes) {
			return nil, nil, fmt.Errorf("loss node %d of %d", ea.LossNode, len(g.Nodes))
		}
		res.Loss = graph.Port{Node: g.Nodes[ea.LossNode], Out: ea.LossOut}
	}
	for _, j := range ea.Asserts {
		if j < 0 || j >= len(g.Nodes) {
			return nil, nil, fmt.Errorf("assert node %d of %d", j, len(g.Nodes))
		}
		res.Asserts = append(res.Asserts, g.Nodes[j])
	}
	if ea.LeafCount < 0 || ea.NumFeeds < 0 {
		return nil, nil, fmt.Errorf("negative leaf/feed count")
	}
	e := &compiled{
		pattern:      ea.Pattern,
		leafCount:    ea.LeafCount,
		res:          res,
		static:       ea.Static,
		passes:       ea.Passes,
		fromSnapshot: true,
	}
	e.hits.Store(ea.Hits)
	return e, ea.MemPlan, nil
}

// --- file I/O ---------------------------------------------------------------

// artifactFile is the conventional snapshot file name inside -snapshot-dir.
const artifactFile = "janus-cache.snap"

// ArtifactPath returns the snapshot file path inside dir.
func ArtifactPath(dir string) string { return filepath.Join(dir, artifactFile) }

// SaveArtifact snapshots the engine's cache into path (gzip-compressed
// JSON), written atomically via a temp file + rename so a crash mid-write
// can never leave a torn artifact where a boot would find it.
func (e *Engine) SaveArtifact(path, programHash string) (int, error) {
	reg := e.obs
	art, skipped := e.cache.Snapshot(programHash, e.spans())
	for _, name := range e.Store.Names() {
		t, ok := e.Store.Get(name)
		if !ok {
			continue
		}
		buf, err := graph.MarshalTensor(t)
		if err != nil {
			skipped++
			continue
		}
		art.Vars = append(art.Vars, VarArtifact{Name: name, Tensor: buf})
	}
	if reg != nil && skipped > 0 {
		reg.Counter("janus_artifact_skipped_total", helpArtifactSkipped).Add(int64(skipped))
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".janus-snap-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	zw := gzip.NewWriter(tmp)
	enc := json.NewEncoder(zw)
	if err := enc.Encode(art); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := zw.Close(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	saved := 0
	for _, fa := range art.Funcs {
		saved += len(fa.Entries)
	}
	if reg != nil {
		reg.Counter("janus_artifact_saves_total", helpArtifactSaves).Inc()
		reg.Counter("janus_artifact_saved_entries_total", helpArtifactSaved).Add(int64(saved))
	}
	return saved, nil
}

// LoadArtifact restores a snapshot file into the engine's cache, validating
// format version, graph wire version and program hash. Every failure mode —
// missing file, torn gzip stream, corrupted JSON, version skew, a program
// mismatch, a malformed entry — returns ErrArtifactRejected with a tagged
// reason, counts janus_artifact_rejected_total{reason}, and leaves the
// cache untouched so the caller boots cold. Call after the program source
// has been loaded (Run), since function identity is resolved against the
// programs this engine has seen. Returns the number of entries restored.
func (e *Engine) LoadArtifact(path, programHash string) (int, error) {
	reg := e.obs
	reject := func(err error) (int, error) {
		if reg != nil {
			reg.Counter("janus_artifact_rejected_total", helpArtifactRejected, "reason", RejectReason(err)).Inc()
		}
		return 0, err
	}
	f, err := os.Open(path)
	if err != nil {
		return reject(rejectf("open", "%v", err))
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return reject(rejectf("decode", "%v", err))
	}
	var art Artifact
	if err := json.NewDecoder(zr).Decode(&art); err != nil {
		return reject(rejectf("decode", "%v", err))
	}
	if err := zr.Close(); err != nil {
		return reject(rejectf("decode", "gzip checksum: %v", err))
	}
	// Decode parameters before committing anything, so a malformed tensor
	// rejects the artifact with the cache still untouched.
	params := make(map[string]*tensor.Tensor, len(art.Vars))
	for _, va := range art.Vars {
		t, err := graph.UnmarshalTensor(va.Tensor)
		if err != nil {
			return reject(rejectf("entry", "variable %q: %v", va.Name, err))
		}
		params[va.Name] = t
	}
	n, err := e.cache.Restore(&art, programHash, e.spans())
	if err != nil {
		return reject(err)
	}
	// Install parameters that don't already exist — a live value (from
	// training since boot, or a checkpoint) always wins over the snapshot.
	for name, t := range params {
		e.Store.GetOrCreate(name, func() *tensor.Tensor { return t })
	}
	if reg != nil {
		reg.Counter("janus_artifact_loads_total", helpArtifactLoads).Inc()
		reg.Counter("janus_artifact_loaded_entries_total", helpArtifactLoaded).Add(int64(n))
	}
	return n, nil
}
