// Package core implements the JANUS runtime of the paper's Figure 2: it
// orchestrates the Profiler, the Speculative Graph Generator, the Graph
// Cache, and the Speculative Graph Executor around an imperative minipy
// program, falling back to the imperative executor whenever an assumption
// fails or a function has no graph representation.
//
// The same Engine type also hosts the two baselines the evaluation compares
// against: pure imperative execution (TensorFlow Eager) and unsafe
// trace-based conversion (TensorFlow defun).
package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/autodiff"
	"repro/internal/convert"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/graph/passes"
	"repro/internal/minipy"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/tensor"
	"repro/internal/vars"
)

// Mode selects the execution engine.
type Mode int

// Engine modes.
const (
	// Imperative runs everything on the minipy interpreter with tape
	// autodiff (the TensorFlow Eager baseline).
	Imperative Mode = iota
	// Janus profiles, speculatively converts, validates and falls back — the
	// paper's system.
	Janus
	// Trace converts from a single execution trace with no guards (the
	// defun baseline); conversion failures are user-visible errors and
	// incorrect assumptions are silently wrong, as in Table 1.
	Trace
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Imperative:
		return "imperative"
	case Janus:
		return "janus"
	case Trace:
		return "trace"
	}
	return "unknown"
}

// Config tunes an Engine. The zero value is not useful; use NewEngine.
type Config struct {
	Mode Mode
	// LR is the SGD learning rate applied by optimize().
	LR float64
	// ProfileIters is how many imperative iterations the profiler observes
	// before graph generation (the paper found 3 sufficient; footnote 3).
	ProfileIters int
	// Unroll enables control-flow unrolling/pruning (+UNRL).
	Unroll bool
	// Specialize enables shape/value specialization and the optimizer passes
	// (+SPCN).
	Specialize bool
	// Workers is the graph executor's parallelism (+PARL). <1 means 1.
	Workers int
	// DisableAsserts skips runtime assumption validation (assertion-cost
	// experiment only).
	DisableAsserts bool
	// Seed seeds the interpreter RNG.
	Seed uint64
	// PyOverheadNs calibrates the imperative executor's per-op dispatch cost
	// to a CPython/TF-Eager-like regime (see DESIGN.md §5). 0 selects the
	// default (5µs); negative disables entirely.
	PyOverheadNs int
	// NoMemoryPlan disables plan-driven buffer reuse in the graph executor
	// (the memory plan is ON by default): with the plan, replayed graphs
	// rent every intermediate tensor from a per-engine pool per the cached
	// liveness analysis and run destination-passing kernels, so steady-state
	// replay allocates ~nothing. The flag exists for A/B benchmarking
	// (janusbench -kernels) and as an escape hatch.
	NoMemoryPlan bool
	// DisablePasses skips post-processor passes by name ("arith", "fold",
	// "cse", "dce", "im2col", "fuse"; "all" disables the pipeline) for A/B
	// benchmarking (janusbench -kernels), mirroring NoMemoryPlan.
	DisablePasses []string
	// VerifyPasses runs the graph-invariant verifier (acyclicity, port
	// arity, consumer consistency) between passes; tests and debug builds
	// turn it on.
	VerifyPasses bool
	// Obs, when non-nil, is the metrics registry the engine resolves its
	// instruments in — a serving pool hands every worker the same registry
	// so series (and Stats views) aggregate pool-wide. Nil gives the
	// engine a private registry and strictly per-engine counters.
	Obs *obs.Registry
	// RelaxBatchDim merges compiled entries across feed shapes: when a new
	// conversion produces a graph byte-identical to an already cached entry
	// whose signature differs only in tensor dims, the cached entry's
	// pattern is widened with wildcard dims instead of inserting a second
	// copy — so shape buckets (the serve batcher's padded batch sizes)
	// share one compiled graph. Outputs are bit-identical to exact-shape
	// compilation by construction: the merge only fires when the graphs'
	// canonical encodings are equal. The serving pool enables this when
	// batch bucketing is on.
	RelaxBatchDim bool
}

// memoryPlanOn reports whether plan-driven buffer reuse is enabled.
func (c Config) memoryPlanOn() bool { return !c.NoMemoryPlan }

// DefaultJanusConfig returns the full-featured JANUS configuration.
func DefaultJanusConfig() Config {
	return Config{Mode: Janus, LR: 0.1, ProfileIters: 3, Unroll: true, Specialize: true, Workers: 4}
}

// Stats is a point-in-time snapshot of engine activity; the evaluation
// harness and the serving subsystem read these via Engine.Stats().
type Stats struct {
	ImperativeSteps int
	GraphSteps      int
	Conversions     int
	ConversionFails int
	CacheHits       int
	CacheMisses     int
	AssertFailures  int
	Fallbacks       int
	// SigHashHits counts graph-cache lookups served by the per-function
	// signature-hash index (no token re-materialization, no SigMatch scan).
	SigHashHits int
	// PoolGets/PoolHits/PoolPuts snapshot the engine's tensor pool: rentals,
	// rentals served by reuse, and returns (see tensor.PoolStats).
	PoolGets       int64
	PoolHits       int64
	PoolPuts       int64
	OptimizeReport map[string]int
}

// Add accumulates another snapshot into s (the serving pool aggregates
// per-worker stats this way).
func (s *Stats) Add(o Stats) {
	s.ImperativeSteps += o.ImperativeSteps
	s.GraphSteps += o.GraphSteps
	s.Conversions += o.Conversions
	s.ConversionFails += o.ConversionFails
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.AssertFailures += o.AssertFailures
	s.Fallbacks += o.Fallbacks
	s.SigHashHits += o.SigHashHits
	s.PoolGets += o.PoolGets
	s.PoolHits += o.PoolHits
	s.PoolPuts += o.PoolPuts
	for k, v := range o.OptimizeReport {
		if s.OptimizeReport == nil {
			s.OptimizeReport = map[string]int{}
		}
		s.OptimizeReport[k] += v
	}
}

// compiled is one graph-cache entry.
type compiled struct {
	pattern []string
	// leafCount is the number of runtime-fed leaves (tensors, objects) in
	// pattern; hash-index hits are cross-checked against it so a 64-bit
	// signature-hash collision with a different arity can never execute
	// this graph with misaligned feeds.
	leafCount int
	res       *convert.Result
	// static graphs carry their own gradient/update ops; dynamic graphs are
	// differentiated through the executor's trace tape.
	static bool
	// passes is the post-processor pipeline report for this graph (nil when
	// the pipeline was disabled), surfaced through Explain.
	passes *passes.Report
	// fromSnapshot marks entries restored from a persisted artifact rather
	// than compiled in this process (provenance on /v1/cache).
	fromSnapshot bool
	// hits and lastUse feed the cache's LRU-by-hit eviction policy and the
	// /v1/cache inspection endpoint; lastUse holds the cache's logical clock
	// at the most recent lookup hit (or at insertion).
	hits    atomic.Int64
	lastUse atomic.Int64
}

// funcState tracks one optimized function across iterations. When the
// engine's GraphCache is shared by a serving pool, a funcState is reached
// from several engines at once: fs.mu serializes profiling, generation and
// entry-list mutation per function, while graph execution (which only reads
// an immutable *compiled) runs outside the lock.
type funcState struct {
	mu      sync.Mutex
	key     cacheKey
	prof    *profile.Profile
	entries []*compiled
	// sigIndex memoizes signature hash → matched entry, so a repeated call
	// with an already-seen concrete feed signature skips re-materializing
	// the token signature and the SigMatch scan (convert.FlattenHash). Every
	// entry here was verified once through the full token path; eviction
	// (capacity or assumption failure) removes its hashes.
	sigIndex map[uint64]*compiled
	// distrust records AST nodes whose speculative assumptions failed.
	distrust map[int]bool
	// deopts aggregates assumption failures into structured events for
	// Engine.Explain, keyed by kind+AST+description (stable across
	// regeneration, unlike node IDs).
	deopts map[string]*DeoptEvent
	// imperativeOnly marks functions with no graph representation (Fig. 2,
	// path C).
	imperativeOnly bool
	impReason      string
	// reprofileUntil delays regeneration after an assumption failure so the
	// profiler can observe more behaviour first (§3.2).
	reprofileUntil int
}

// Engine runs minipy programs under one of the three execution modes.
//
// An Engine's interpreter is single-threaded: callers must not run two
// programs on the same Engine concurrently. Concurrency is achieved by
// creating several engines that share a Store and a GraphCache (see
// NewEngineShared and internal/serve).
type Engine struct {
	cfg   Config
	Store *vars.Store
	Local *minipy.Interp
	Opt   autodiff.Optimizer
	// obs is the metrics registry (shared in a pool, private otherwise);
	// stats holds the pre-resolved instrument handles the hot paths touch.
	obs   *obs.Registry
	stats *counters
	cache *GraphCache
	heap  *heapAdapter
	// pool and arena back plan-driven graph replay (Config.NoMemoryPlan
	// off): the pool recycles intermediate tensors across executions, the
	// arena recycles scheduler state. Both are per-engine — a serving pool's
	// engines share parameters and compiled graphs but never buffers.
	pool  *tensor.Pool
	arena *exec.Arena
	// gradSink, when set, diverts parameter updates: instead of applying the
	// optimizer locally, each watched variable's gradient is handed to the
	// sink as backprop finalizes it (see SetGradSink).
	gradSink func(name string, g *tensor.Tensor)
	// runCtx is the context of the in-flight ctx-aware entry point (RunCtx,
	// CallCtx, ...). The engine is single-threaded per run — callers already
	// must not execute two programs on one engine concurrently — so a plain
	// field scoped by withCtx is race-free. It is checked between training
	// steps, at fallback boundaries, and (throttled) between interpreted
	// statements via the interpreter's Interrupt hook.
	runCtx context.Context
	// progSpans records the AST-ID span of every program this engine has
	// run, in load order. Artifact persistence keys cached functions by
	// (program index, ID offset) — stable across processes, unlike the raw
	// process-global AST IDs (see internal/core/artifact.go).
	spanMu    sync.Mutex
	progSpans []progSpan
}

// progSpan is the AST-ID range [first, last] of one loaded program.
type progSpan struct {
	First int `json:"first"`
	Last  int `json:"last"`
}

// recordSpan notes a program's AST-ID span once (re-running the same
// program, as pool workers do at load, records nothing new).
func (e *Engine) recordSpan(prog *minipy.Program) {
	if prog.FirstID <= 0 || prog.NumNodes < prog.FirstID {
		return
	}
	e.spanMu.Lock()
	defer e.spanMu.Unlock()
	for _, s := range e.progSpans {
		if s.First == prog.FirstID && s.Last == prog.NumNodes {
			return
		}
	}
	e.progSpans = append(e.progSpans, progSpan{First: prog.FirstID, Last: prog.NumNodes})
}

// spans snapshots the recorded program spans.
func (e *Engine) spans() []progSpan {
	e.spanMu.Lock()
	defer e.spanMu.Unlock()
	return append([]progSpan(nil), e.progSpans...)
}

// NewEngine builds an engine with a fresh parameter store and graph cache.
func NewEngine(cfg Config) *Engine {
	return NewEngineShared(cfg, vars.NewStore(), NewGraphCache())
}

// NewEngineShared builds an engine around an existing parameter store and
// compiled-graph cache. A serving pool passes the same store and cache to
// every worker engine so parameters stay consistent and a graph converted
// for one client is a cache hit for all others.
func NewEngineShared(cfg Config, store *vars.Store, cache *GraphCache) *Engine {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.ProfileIters < 1 {
		cfg.ProfileIters = 3
	}
	if cfg.LR == 0 {
		cfg.LR = 0.1
	}
	oreg := cfg.Obs
	if oreg == nil {
		oreg = obs.NewRegistry()
	}
	e := &Engine{
		cfg:   cfg,
		Store: store,
		Opt:   &autodiff.SGD{LR: cfg.LR},
		obs:   oreg,
		stats: newCounters(oreg),
		cache: cache,
	}
	if cfg.Obs == nil {
		// Private registry → this engine is the cache's only registrar.
		// With a shared registry the owner (the serving pool) registers
		// the shared cache exactly once instead.
		RegisterCacheMetrics(oreg, cache)
	}
	if cfg.memoryPlanOn() {
		e.pool = tensor.NewPool()
		e.arena = exec.NewArena()
		registerPoolMetrics(oreg, e.pool)
	}
	reg := minipy.DefaultRegistry().Clone()
	reg.Register(&minipy.Builtin{Name: "optimize", Stateful: true,
		Fn: func(it *minipy.Interp, args []minipy.Value, kwargs map[string]minipy.Value) (minipy.Value, error) {
			if len(args) != 1 {
				return nil, errors.New("optimize(fn) wants one callable")
			}
			fn, ok := args[0].(*minipy.FuncVal)
			if !ok {
				return nil, fmt.Errorf("optimize() wants a function, got %s", args[0].TypeName())
			}
			return e.optimizeStep(fn)
		}})
	e.Local = minipy.NewInterp(reg)
	e.Local.SetStore(e.Store)
	e.Local.Interrupt = e.interrupted
	switch {
	case cfg.PyOverheadNs > 0:
		e.Local.OpDelay = time.Duration(cfg.PyOverheadNs) * time.Nanosecond
	case cfg.PyOverheadNs == 0:
		e.Local.OpDelay = 5 * time.Microsecond
	}
	if cfg.Seed != 0 {
		e.Local.SeedRNG(cfg.Seed)
	}
	e.heap = &heapAdapter{}
	return e
}

// Run executes a full program (model definition + training loop).
func (e *Engine) Run(src string) error { return e.RunCtx(context.Background(), src) }

// RunCtx executes a full program under ctx: cancellation or deadline expiry
// stops execution between statements and between training steps with
// ErrCanceled, leaving parameters in an all-or-nothing state (either a step
// fully applied or not at all).
func (e *Engine) RunCtx(ctx context.Context, src string) error {
	prog, err := minipy.Parse(src)
	if err != nil {
		return err
	}
	e.recordSpan(prog)
	restore := e.withCtx(ctx)
	defer restore()
	if err := e.interrupted(); err != nil {
		return err
	}
	return e.Local.Run(prog)
}

// withCtx installs ctx as the engine's run context and returns the restore
// function. Nested ctx-aware calls (a Call inside a served session script)
// stack correctly because the previous context is restored on exit.
func (e *Engine) withCtx(ctx context.Context) func() {
	prev := e.runCtx
	e.runCtx = ctx
	return func() { e.runCtx = prev }
}

// interrupted reports whether the current run context has been canceled.
func (e *Engine) interrupted() error {
	if ctx := e.runCtx; ctx != nil && ctx.Err() != nil {
		return CanceledErr(ctx)
	}
	return nil
}

// asCanceled maps a graph-executor error caused by run-context cancellation
// onto the ErrCanceled sentinel; other errors pass through unchanged. The
// executor wraps context.Cause of the run context, so cancellations with a
// custom cause (context.WithCancelCause) map too — without masking genuine
// execution failures that merely race a cancellation.
func (e *Engine) asCanceled(err error) error {
	if err == nil {
		return nil
	}
	ctx := e.runCtx
	if ctx == nil || ctx.Err() == nil {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Cause(ctx)) {
		return CanceledErr(ctx)
	}
	return err
}

// RunProgram executes a pre-parsed program.
func (e *Engine) RunProgram(prog *minipy.Program) error {
	e.recordSpan(prog)
	return e.Local.Run(prog)
}

// Output returns accumulated print() output.
func (e *Engine) Output() string { return e.Local.Out.String() }

// Define binds a module-level global in the engine's interpreter. The model
// harness uses it to inject per-step data (batches, episodes, noise) that the
// optimized functions capture.
func (e *Engine) Define(name string, v minipy.Value) {
	if err := e.Local.Globals.Define(name, v); err != nil {
		panic(err) // module-scope Define cannot fail
	}
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// SetGradSink diverts this engine's parameter updates to sink: during every
// subsequent training step, each watched variable's gradient is passed to
// sink the moment backprop finalizes it (top layers first), and the local
// optimizer is NOT applied. A distributed worker uses this to stream
// per-tensor gradients to a parameter server while backprop is still
// running, overlapping communication with compute — the effect the paper's
// §6.3.2 attributes the graph engine's multi-device scalability to.
//
// Set the sink before the first training step: under the Janus mode a sink
// forces newly generated graphs onto the trace-tape (dynamic) path so
// gradients stream per tensor, and graphs compiled earlier with baked-in
// update ops would bypass the sink. Passing nil restores local updates. The
// trace mode ignores the sink for already-traced static graphs.
func (e *Engine) SetGradSink(sink func(name string, g *tensor.Tensor)) { e.gradSink = sink }

// Stats returns a race-safe snapshot of the engine's counters, including
// the tensor pool's rental statistics when the memory plan is enabled.
func (e *Engine) Stats() Stats {
	s := e.stats.snapshot()
	if e.pool != nil {
		ps := e.pool.Stats()
		s.PoolGets, s.PoolHits, s.PoolPuts = ps.Gets, ps.Hits, ps.Puts
	}
	return s
}

// Cache returns the engine's compiled-graph cache (possibly shared).
func (e *Engine) Cache() *GraphCache { return e.cache }

// Registry returns the engine's metrics registry (shared when the engine
// was built with Config.Obs, private otherwise).
func (e *Engine) Registry() *obs.Registry { return e.obs }

// TensorPoolStats snapshots the engine's (strictly per-engine) tensor
// pool counters; zero when the memory plan is disabled. The serving pool
// sums these across workers separately from the registry-backed Stats,
// which are shared series under a shared registry.
func (e *Engine) TensorPoolStats() tensor.PoolStats {
	if e.pool == nil {
		return tensor.PoolStats{}
	}
	return e.pool.Stats()
}

// optimizeStep implements one training step of the loss function fn: the
// core of Figure 2. The step boundary doubles as a cancellation point: a
// canceled context stops a training loop here, before the next step touches
// any state.
func (e *Engine) optimizeStep(fn *minipy.FuncVal) (minipy.Value, error) {
	if err := e.interrupted(); err != nil {
		return nil, err
	}
	switch e.cfg.Mode {
	case Imperative:
		return e.imperativeStep(fn, nil)
	case Janus:
		return e.janusStep(fn)
	case Trace:
		return e.traceStep(fn)
	}
	return nil, fmt.Errorf("core: unknown mode %d", e.cfg.Mode)
}

// imperativeStep runs fn on the interpreter under a fresh gradient tape and
// applies the optimizer. prof, when non-nil, observes the execution.
func (e *Engine) imperativeStep(fn *minipy.FuncVal, prof *profile.Profile) (minipy.Value, error) {
	sp := obs.StartSpan(e.runCtx, "imperative")
	t0 := time.Now()
	v, err := e.runImperativeStep(fn, prof)
	e.stats.phaseImperative.Since(t0)
	sp.End()
	return v, err
}

func (e *Engine) runImperativeStep(fn *minipy.FuncVal, prof *profile.Profile) (minipy.Value, error) {
	e.stats.imperativeSteps.Add(1)
	prevTape, prevProf := e.Local.Tape, e.Local.Prof
	e.Local.Tape = autodiff.NewTape()
	if prof != nil {
		e.Local.Prof = prof
	}
	defer func() {
		e.Local.Tape, e.Local.Prof = prevTape, prevProf
	}()
	out, err := e.Local.CallFunction(fn, nil)
	if err != nil {
		return nil, err
	}
	loss, ok := out.(*minipy.TensorVal)
	if !ok {
		return nil, fmt.Errorf("core: optimize() function returned %s, want tensor loss", out.TypeName())
	}
	if e.gradSink != nil {
		e.Local.Tape.GradientStream(loss.Node, e.gradSink)
	} else {
		grads := e.Local.Tape.Gradient(loss.Node)
		e.Opt.Apply(e.Store, grads)
	}
	if prof != nil {
		prof.EndIteration()
	}
	return loss, nil
}

// state returns the per-function bookkeeping from the (possibly shared)
// graph cache.
func (e *Engine) state(fn *minipy.FuncVal, infer bool) *funcState {
	id := -1
	if fn.Def != nil {
		id = fn.Def.ID()
	}
	return e.cache.state(cacheKey{fn: id, infer: infer})
}

// janusStep is the full speculative path: profile, generate, validate,
// execute, fall back.
//
// fs.mu is held through profiling, lookup and generation — when engines
// share the cache this serializes the per-function slow path (and prevents
// duplicate conversions for the same signature) — and released around graph
// execution, so cached-graph steps for the same function run concurrently.
func (e *Engine) janusStep(fn *minipy.FuncVal) (minipy.Value, error) {
	fs := e.state(fn, false)
	fs.mu.Lock()
	impOnly := fs.imperativeOnly
	fs.mu.Unlock()
	if impOnly {
		// Imperative-only functions never regenerate, so the shared profile
		// is no longer consulted: run unlocked so pool engines interpret the
		// function in parallel instead of serializing on fs.mu.
		return e.imperativeStep(fn, nil)
	}
	var entry *compiled
	var leaves []minipy.Value
	// Slow path under fs.mu; handled=true means the step completed (or
	// failed) without needing graph execution. The closure keeps the unlock
	// in a defer, so a panic in conversion (recovered by the serving layer)
	// can never leave the function's lock held.
	loss, handled, err := func() (minipy.Value, bool, error) {
		fs.mu.Lock()
		defer fs.mu.Unlock()
		if fs.imperativeOnly {
			v, err := e.imperativeStep(fn, fs.prof)
			return v, true, err
		}
		if fs.prof.Iterations() < e.cfg.ProfileIters || fs.prof.Iterations() < fs.reprofileUntil {
			// (A) Profile: not enough information for realistic assumptions.
			v, err := e.imperativeStep(fn, fs.prof)
			return v, true, err
		}
		hash, lv := convert.FlattenHash(fn, nil)
		if entry = e.hashLookup(fs, hash, len(lv)); entry == nil {
			sig, _ := convert.Flatten(fn, nil)
			entry = e.lookup(fs, sig)
			if entry == nil {
				e.stats.cacheMisses.Add(1)
				obs.TraceFrom(e.runCtx).Annotate("cache", "miss")
				var gerr error
				entry, gerr = e.generate(fs, fn, sig, len(lv))
				if gerr != nil {
					if errors.Is(gerr, convert.ErrNotConvertible) {
						// (C) Do not generate: imperative-only function.
						fs.imperativeOnly = true
						fs.impReason = gerr.Error()
						e.stats.conversionFails.Add(1)
						v, err := e.imperativeStep(fn, fs.prof)
						return v, true, err
					}
					return nil, true, gerr
				}
			} else {
				e.stats.cacheHits.Add(1)
				obs.TraceFrom(e.runCtx).Annotate("cache", "hit")
			}
			memoizeSig(fs, hash, entry)
		}
		leaves = lv
		return nil, false, nil
	}()
	if handled {
		return loss, err
	}
	t0 := time.Now()
	loss, err = e.execute(entry, leaves)
	if err == nil {
		e.stats.graphSteps.Add(1)
		obs.TraceFrom(e.runCtx).Annotate("path", "graph")
		return loss, nil
	}
	var ae *exec.AssertError
	if errors.As(err, &ae) {
		// (E) Fallback: the assumption was wrong; no state was mutated
		// (all-or-nothing), so re-running imperatively is safe and correct.
		// The fallback boundary is also a cancellation point: a canceled
		// caller gets ErrCanceled here instead of paying for the imperative
		// re-run.
		wasted := time.Since(t0)
		e.stats.assertFailures.Add(1)
		e.stats.fallbacks.Add(1)
		fs.mu.Lock()
		defer fs.mu.Unlock()
		ev := e.noteFailure(fs, entry, ae, wasted)
		tr := obs.TraceFrom(e.runCtx)
		tr.Annotate("path", "fallback")
		tr.Annotate("deopt", ev.Label())
		if cerr := e.interrupted(); cerr != nil {
			return nil, cerr
		}
		return e.imperativeStep(fn, fs.prof)
	}
	return nil, err
}

// lookup finds a cached graph whose signature pattern matches, stamping it
// for the LRU eviction policy.
func (e *Engine) lookup(fs *funcState, sig []string) *compiled {
	for _, c := range fs.entries {
		if convert.SigMatch(c.pattern, sig) {
			e.cache.touch(c)
			return c
		}
	}
	return nil
}

// hashLookup serves a cache lookup from the function's memoized
// signature-hash index (fs.mu held). A hit skips both signature-token
// materialization and the SigMatch scan; the leaf-count cross-check rejects
// any hash collision that would misalign the feed placeholders.
func (e *Engine) hashLookup(fs *funcState, hash uint64, wantLeaves int) *compiled {
	c, ok := fs.sigIndex[hash]
	if !ok || c.leafCount != wantLeaves {
		return nil
	}
	e.cache.touch(c)
	e.stats.cacheHits.Add(1)
	e.stats.sigHashHits.Add(1)
	obs.TraceFrom(e.runCtx).Annotate("cache", "sighash_hit")
	return c
}

// sigIndexCap bounds the per-function hash index: a shape-generalized
// (wildcard) pattern can match unboundedly many concrete signatures, each
// adding a key, so the index is reset — it is only a cache — rather than
// allowed to grow with signature churn in a long-lived server.
const sigIndexCap = 512

// memoizeSig records hash → entry in the bounded index (fs.mu held).
func memoizeSig(fs *funcState, hash uint64, c *compiled) {
	if len(fs.sigIndex) >= sigIndexCap {
		fs.sigIndex = make(map[uint64]*compiled, 16)
	}
	fs.sigIndex[hash] = c
}

// dropFromSigIndex removes every memoized hash pointing at an evicted entry
// (the owning funcState's lock must be held).
func dropFromSigIndex(fs *funcState, c *compiled) {
	for h, en := range fs.sigIndex {
		if en == c {
			delete(fs.sigIndex, h)
		}
	}
}

// generate runs the Speculative Graph Generator (Figure 2, B) and caches the
// result.
func (e *Engine) generate(fs *funcState, fn *minipy.FuncVal, sig []string, numLeaves int) (*compiled, error) {
	csp := obs.StartSpan(e.runCtx, "convert")
	t0 := time.Now()
	res, err := convert.ConvertCall(fn, nil, fs.prof, e.Local.Builtins, convert.Options{
		Unroll:     e.cfg.Unroll,
		Specialize: e.cfg.Specialize,
		Distrust:   fs.distrust,
	})
	e.stats.phaseConvert.Since(t0)
	csp.End()
	if err != nil {
		return nil, err
	}
	ksp := obs.StartSpan(e.runCtx, "compile")
	t1 := time.Now()
	if e.gradSink != nil {
		// Gradient streaming needs the trace tape: skip the static
		// gradient/update ops so backprop runs on the tape and per-tensor
		// gradients reach the sink as they finalize.
		res.Dynamic = true
	} else if err := convert.FinalizeTraining(res, e.cfg.LR); err != nil {
		// Static gradient generation failed (e.g. an op without a gradient):
		// run the graph dynamically via the trace tape instead.
		res.Dynamic = true
	}
	rep, perr := e.runPasses(res, e.cfg.Specialize)
	e.stats.phaseCompile.Since(t1)
	ksp.End()
	if perr != nil {
		return nil, perr
	}
	e.stats.addReport(rep)
	e.stats.conversions.Add(1)
	if o := e.tryRelaxMerge(fs, res, sig, numLeaves); o != nil {
		return o, nil
	}
	c := &compiled{pattern: sig, leafCount: numLeaves, res: res, static: !res.Dynamic, passes: rep}
	fs.entries = append(fs.entries, c)
	e.cache.noteInsert(c)
	return c, nil
}

// tryRelaxMerge implements the symbolic batch-dim variant of the cache
// (Config.RelaxBatchDim): instead of inserting a freshly compiled graph as
// a new entry, find an existing entry whose signature differs from the new
// one only in tensor dims AND whose compiled graph is byte-identical to the
// new one — meaning the differing dims never influenced compilation (the
// Into kernels size outputs from runtime shapes, so such graphs are
// batch-size agnostic). The existing entry's pattern is widened with
// wildcard dims and reused; the new graph is discarded. Because the merge
// requires canonical-encoding equality, a bucketed execution runs exactly
// the graph exact-shape compilation would have produced: bit-identical
// outputs by construction, with false negatives (no merge) as the only
// failure mode. Caller holds fs.mu.
func (e *Engine) tryRelaxMerge(fs *funcState, res *convert.Result, sig []string, numLeaves int) *compiled {
	if !e.cfg.RelaxBatchDim {
		return nil
	}
	var newBytes []byte
	for _, o := range fs.entries {
		if o.static == res.Dynamic || o.leafCount != numLeaves {
			continue
		}
		relaxed := convert.RelaxSignature(o.pattern, sig)
		if relaxed == nil {
			continue
		}
		if newBytes == nil {
			b, err := graph.CanonicalBytes(res.Graph)
			if err != nil {
				return nil // unserializable graph: never mergeable
			}
			newBytes = b
		}
		ob, err := graph.CanonicalBytes(o.res.Graph)
		if err != nil || !bytes.Equal(newBytes, ob) {
			continue
		}
		o.pattern = relaxed
		e.cache.touch(o)
		e.stats.bucketRelaxed.Inc()
		obs.TraceFrom(e.runCtx).Annotate("cache", "relax_merge")
		return o
	}
	return nil
}

// execute runs a compiled graph with the given feed leaves (Figure 2, D),
// timing the execute phase. The wrapper adds two clock reads and one
// histogram observation per graph run — nothing on the per-op replay path.
// Under an active trace the execute span's ID is pushed onto the run
// context so downstream spans (plan builds, parameter-server pushes) nest
// under it; without a trace the whole exchange is a nil check.
func (e *Engine) execute(c *compiled, leaves []minipy.Value) (minipy.Value, error) {
	sp := obs.StartSpan(e.runCtx, "execute")
	t0 := time.Now()
	restore := func() {}
	if sp.ID() != 0 {
		restore = e.withCtx(obs.ContextWithSpan(e.runCtx, sp.ID()))
	}
	v, err := e.executeGraph(c, leaves)
	restore()
	e.stats.phaseExecute.Since(t0)
	sp.End()
	return v, err
}

func (e *Engine) executeGraph(c *compiled, leaves []minipy.Value) (minipy.Value, error) {
	feeds := make(map[string]graph.Val, len(leaves))
	for i, v := range leaves {
		feeds[feedName(i)] = minipyToGraph(v)
	}
	opts := exec.Options{
		Workers:        e.cfg.Workers,
		Store:          e.Store,
		Heap:           e.heap,
		DisableAsserts: e.cfg.DisableAsserts,
		Metrics:        e.stats.exec,
		// Plan-driven buffer reuse (nil when disabled; the executor itself
		// ignores the pool for tape-mode dynamic graphs).
		Pool:  e.pool,
		Arena: e.arena,
		// The scheduler checks the run context between nodes (and inside
		// While/Invoke subgraphs), so cancellation lands mid-execution on
		// long graphs, not just at the next step boundary.
		Ctx: e.runCtx,
	}
	if c.static {
		res, err := exec.Run(c.res.Graph, feeds, opts)
		if err != nil {
			return nil, e.asCanceled(err)
		}
		t, err := graph.AsTensor(res.Outputs[0])
		if err != nil {
			return nil, fmt.Errorf("core: graph loss: %v", err)
		}
		return minipy.NewTensor(t), nil
	}
	// Dynamic graph: executed-trace tape gradients, optimizer applied here.
	tape := autodiff.NewTape()
	opts.Tape = tape
	res, err := exec.Run(c.res.Graph, feeds, opts)
	if err != nil {
		return nil, e.asCanceled(err)
	}
	node, ok := res.Outputs[0].(*autodiff.Node)
	if !ok {
		t, err := graph.AsTensor(res.Outputs[0])
		if err != nil {
			return nil, fmt.Errorf("core: dynamic graph loss: %v", err)
		}
		node = autodiff.Const(t)
	}
	if e.gradSink != nil {
		tape.GradientStream(node, e.gradSink)
	} else {
		grads := tape.Gradient(node)
		e.Opt.Apply(e.Store, grads)
	}
	return minipy.NewTensor(node.Value), nil
}

// noteFailure reacts to a failed runtime assertion: the offending graph is
// evicted, the assumption's AST node is distrusted, the failure is folded
// into the function's deopt ledger (with the abandoned execution time it
// cost), and the profiler gets a fresh observation window before
// regeneration. Returns the aggregated deopt event for trace annotation.
func (e *Engine) noteFailure(fs *funcState, c *compiled, ae *exec.AssertError, wasted time.Duration) *DeoptEvent {
	for i, entry := range fs.entries {
		if entry == c {
			fs.entries = append(fs.entries[:i], fs.entries[i+1:]...)
			e.cache.noteRemove()
			break
		}
	}
	dropFromSigIndex(fs, c)
	for _, a := range c.res.Asserts {
		if a.ID == ae.NodeID {
			if ast := a.IntAttr("ast", -1); ast >= 0 {
				fs.distrust[ast] = true
			}
		}
	}
	fs.reprofileUntil = fs.prof.Iterations() + e.cfg.ProfileIters
	return e.recordDeopt(fs, c, ae, wasted)
}

// traceStep implements the defun baseline: one imperative run records a
// trace, conversion happens once with no guards, and the graph replays
// forever. Conversion failures are hard errors (matching defun's behaviour
// for recursion and state updates).
func (e *Engine) traceStep(fn *minipy.FuncVal) (minipy.Value, error) {
	fs := e.state(fn, false)
	var entry *compiled
	var leaves []minipy.Value
	loss, handled, err := func() (minipy.Value, bool, error) {
		fs.mu.Lock()
		defer fs.mu.Unlock()
		if fs.prof.Iterations() < 1 {
			v, err := e.imperativeStep(fn, fs.prof)
			return v, true, err
		}
		sig, lv := convert.Flatten(fn, nil)
		if len(fs.entries) > 0 {
			// A single traced graph, reused unconditionally — even when the
			// signature changed. That unchecked reuse is the unsafety.
			entry = fs.entries[0]
			e.cache.touch(entry)
		} else {
			res, err := convert.ConvertCall(fn, nil, fs.prof, e.Local.Builtins, convert.Options{
				Unroll: true, Specialize: true, Trace: true,
			})
			if err != nil {
				return nil, true, fmt.Errorf("core: trace conversion failed (defun limitation): %w", err)
			}
			if err := convert.FinalizeTraining(res, e.cfg.LR); err != nil {
				res.Dynamic = true
			}
			rep, perr := e.runPasses(res, true)
			if perr != nil {
				return nil, true, perr
			}
			e.stats.addReport(rep)
			e.stats.conversions.Add(1)
			entry = &compiled{pattern: sig, leafCount: len(lv), res: res, static: !res.Dynamic, passes: rep}
			fs.entries = append(fs.entries, entry)
			e.cache.noteInsert(entry)
		}
		leaves = lv
		return nil, false, nil
	}()
	if handled {
		return loss, err
	}
	loss, err = e.execute(entry, leaves)
	if err != nil {
		return nil, err
	}
	e.stats.graphSteps.Add(1)
	return loss, nil
}

// feedNameCache interns the placeholder names ("f0", "f1", ...) the
// converter assigns to flattened leaves, so per-step feed-map construction
// does not re-format them.
var feedNameCache = func() [64]string {
	var a [64]string
	for i := range a {
		a[i] = fmt.Sprintf("f%d", i)
	}
	return a
}()

func feedName(i int) string {
	if i >= 0 && i < len(feedNameCache) {
		return feedNameCache[i]
	}
	return fmt.Sprintf("f%d", i)
}

// --- heap adapter ---------------------------------------------------------------

// heapAdapter bridges the graph executor's Heap interface to minipy objects,
// converting between minipy values and graph edge values at the boundary.
type heapAdapter struct{}

func (h *heapAdapter) GetAttr(obj any, name string) (any, error) {
	o, ok := obj.(*minipy.ObjectVal)
	if !ok {
		return nil, fmt.Errorf("core: heap GetAttr on %T", obj)
	}
	v, ok := o.Attrs[name]
	if !ok {
		return nil, fmt.Errorf("core: %s object has no attribute %q", o.Class.Name, name)
	}
	return minipyToGraph(v), nil
}

func (h *heapAdapter) SetAttr(obj any, name string, v any) error {
	o, ok := obj.(*minipy.ObjectVal)
	if !ok {
		return fmt.Errorf("core: heap SetAttr on %T", obj)
	}
	o.Attrs[name] = graphToMinipy(v)
	return nil
}

func (h *heapAdapter) GetSubscr(obj, key any) (any, error) {
	switch o := obj.(type) {
	case *minipy.ListVal:
		i, err := graph.AsInt(key)
		if err != nil {
			return nil, err
		}
		if i < 0 {
			i += len(o.Items)
		}
		if i < 0 || i >= len(o.Items) {
			return nil, fmt.Errorf("core: list index %d out of range", i)
		}
		return minipyToGraph(o.Items[i]), nil
	case *minipy.DictVal:
		k, err := minipy.DictKey(graphToMinipy(key))
		if err != nil {
			return nil, err
		}
		v, ok := o.Entries[k]
		if !ok {
			return nil, fmt.Errorf("core: dict key not found")
		}
		return minipyToGraph(v), nil
	}
	return nil, fmt.Errorf("core: heap GetSubscr on %T", obj)
}

func (h *heapAdapter) SetSubscr(obj, key, v any) error {
	switch o := obj.(type) {
	case *minipy.ListVal:
		i, err := graph.AsInt(key)
		if err != nil {
			return err
		}
		if i < 0 {
			i += len(o.Items)
		}
		if i < 0 || i >= len(o.Items) {
			return fmt.Errorf("core: list index %d out of range", i)
		}
		o.Items[i] = graphToMinipy(v)
		return nil
	case *minipy.DictVal:
		k, err := minipy.DictKey(graphToMinipy(key))
		if err != nil {
			return err
		}
		o.Entries[k] = graphToMinipy(v)
		return nil
	}
	return fmt.Errorf("core: heap SetSubscr on %T", obj)
}

// minipyToGraph converts a minipy value to a graph edge value.
func minipyToGraph(v minipy.Value) graph.Val {
	switch x := v.(type) {
	case *minipy.TensorVal:
		return x.T()
	case minipy.IntVal:
		return int(x)
	case minipy.FloatVal:
		return float64(x)
	case minipy.BoolVal:
		return bool(x)
	case minipy.StrVal:
		return string(x)
	case minipy.NoneVal:
		return nil
	default:
		return v // objects, lists, dicts pass as references
	}
}

// graphToMinipy converts a graph edge value back into a minipy value.
func graphToMinipy(v graph.Val) minipy.Value {
	switch x := v.(type) {
	case *tensor.Tensor:
		return minipy.NewTensor(x)
	case *autodiff.Node:
		return &minipy.TensorVal{Node: x}
	case int:
		return minipy.IntVal(x)
	case int64:
		return minipy.IntVal(x)
	case float64:
		return minipy.FloatVal(x)
	case bool:
		return minipy.BoolVal(x)
	case string:
		return minipy.StrVal(x)
	case nil:
		return minipy.None
	case minipy.Value:
		return x
	case []graph.Val:
		items := make([]minipy.Value, len(x))
		for i, e := range x {
			items[i] = graphToMinipy(e)
		}
		return &minipy.ListVal{Items: items}
	}
	return minipy.None
}
