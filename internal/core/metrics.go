package core

import (
	"repro/internal/exec"
	"repro/internal/graph/passes"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Metric help strings, shared between registration sites.
const (
	helpSteps       = "Steps completed, by execution path (graph replay vs imperative interpretation)."
	helpConversions = "Speculative graph conversions, by result."
	helpCacheLookup = "Compiled-graph cache lookups, by result."
	helpSigHash     = "Cache lookups served by the per-function signature-hash index."
	helpAsserts     = "Runtime assumption-validation failures."
	helpFallbacks   = "Graph executions abandoned to the imperative fallback path."
	helpPhase       = "Engine time per request phase (convert, compile, execute, imperative)."
	helpPassRewrite = "Graph post-processor rewrites applied, by pass."
	helpPassCap     = "Pass-pipeline fixed-point loops that hit the round cap while still finding rewrites."
	helpPoolGets    = "Tensor-pool buffer rentals."
	helpPoolHits    = "Tensor-pool rentals served by reuse rather than allocation."
	helpPoolPuts    = "Tensor buffers returned to the pool."
	helpPoolInUse   = "Total elements of currently rented pool buffers."
	helpCacheFuncs  = "Functions with compiled-graph cache state."
	helpCacheGraphs = "Compiled graphs currently cached."
	helpCacheEvict  = "Compiled graphs evicted by cache capacity enforcement."
	helpDeopt       = "Graph executions aborted by a failed speculative assumption, by assumption kind."
	helpDeoptWasted = "Abandoned execution time per assumption-failure fallback (the aborted graph run is re-run imperatively)."
	helpBucketRelax = "Compiled-graph entries merged into a shape-generalized (wildcard-dim) entry instead of being cached separately."
)

// deoptKinds are the converter's assumption classes, registered eagerly
// so the janus_deopt_total family is present in an exposition even
// before any assumption fails.
var deoptKinds = []string{"true", "false", "eq", "eq-int", "shape"}

// counters is the live, race-safe instrument set behind Stats snapshots,
// refitted as handles into an obs.Registry: every count recorded here is
// simultaneously a Prometheus series, and Stats() is a view over the
// registry rather than a second bookkeeping path. When pool workers share
// a registry (serve sets Config.Obs), the same series aggregate
// pool-wide; a standalone engine gets a private registry and per-engine
// semantics, exactly as before.
type counters struct {
	reg *obs.Registry

	imperativeSteps *obs.Counter
	graphSteps      *obs.Counter
	conversions     *obs.Counter
	conversionFails *obs.Counter
	cacheHits       *obs.Counter
	cacheMisses     *obs.Counter
	assertFailures  *obs.Counter
	fallbacks       *obs.Counter
	sigHashHits     *obs.Counter
	bucketRelaxed   *obs.Counter

	phaseConvert    *obs.Histogram
	phaseCompile    *obs.Histogram
	phaseExecute    *obs.Histogram
	phaseImperative *obs.Histogram
	deoptWasted     *obs.Histogram

	// exec carries the executor's sampled kernel timers and pool/in-place
	// counters into graph runs (exec.Options.Metrics).
	exec *exec.Metrics
}

// newCounters resolves every engine instrument in reg once, so the hot
// path only ever touches pre-resolved pointers.
func newCounters(reg *obs.Registry) *counters {
	for _, kind := range deoptKinds {
		reg.Counter("janus_deopt_total", helpDeopt, "kind", kind)
	}
	return &counters{
		reg:             reg,
		imperativeSteps: reg.Counter("janus_engine_steps_total", helpSteps, "path", "imperative"),
		graphSteps:      reg.Counter("janus_engine_steps_total", helpSteps, "path", "graph"),
		conversions:     reg.Counter("janus_engine_conversions_total", helpConversions, "result", "ok"),
		conversionFails: reg.Counter("janus_engine_conversions_total", helpConversions, "result", "fail"),
		cacheHits:       reg.Counter("janus_engine_cache_lookups_total", helpCacheLookup, "result", "hit"),
		cacheMisses:     reg.Counter("janus_engine_cache_lookups_total", helpCacheLookup, "result", "miss"),
		sigHashHits:     reg.Counter("janus_engine_sighash_hits_total", helpSigHash),
		bucketRelaxed:   reg.Counter("janus_bucket_relaxed_total", helpBucketRelax),
		assertFailures:  reg.Counter("janus_engine_assert_failures_total", helpAsserts),
		fallbacks:       reg.Counter("janus_engine_fallbacks_total", helpFallbacks),
		phaseConvert:    reg.Histogram("janus_engine_phase_seconds", helpPhase, obs.DefBuckets, "phase", "convert"),
		phaseCompile:    reg.Histogram("janus_engine_phase_seconds", helpPhase, obs.DefBuckets, "phase", "compile"),
		phaseExecute:    reg.Histogram("janus_engine_phase_seconds", helpPhase, obs.DefBuckets, "phase", "execute"),
		phaseImperative: reg.Histogram("janus_engine_phase_seconds", helpPhase, obs.DefBuckets, "phase", "imperative"),
		deoptWasted:     reg.Histogram("janus_deopt_wasted_seconds", helpDeoptWasted, obs.DefBuckets),
		exec:            exec.NewMetrics(reg),
	}
}

// addReport folds a pass-pipeline report into the per-pass rewrite
// counters (slow path: runs once per conversion). Every pass that ran gets
// a series — zero-rewrite passes included, so an exposition shows which
// passes are enabled, not just which fired.
func (c *counters) addReport(rep *passes.Report) {
	if rep == nil {
		return
	}
	for _, p := range rep.Passes {
		c.reg.Counter("janus_pass_rewrites_total", helpPassRewrite, "pass", p.Pass).Add(int64(p.Rewrites))
	}
	if rep.CapHit {
		c.reg.Counter("janus_pass_cap_hits_total", helpPassCap).Inc()
	}
}

// snapshot renders the registry-backed counters as the public Stats view.
func (c *counters) snapshot() Stats {
	s := Stats{
		ImperativeSteps: int(c.imperativeSteps.Value()),
		GraphSteps:      int(c.graphSteps.Value()),
		Conversions:     int(c.conversions.Value()),
		ConversionFails: int(c.conversionFails.Value()),
		CacheHits:       int(c.cacheHits.Value()),
		CacheMisses:     int(c.cacheMisses.Value()),
		AssertFailures:  int(c.assertFailures.Value()),
		Fallbacks:       int(c.fallbacks.Value()),
		SigHashHits:     int(c.sigHashHits.Value()),
	}
	for _, sv := range c.reg.Series("janus_pass_rewrites_total") {
		if s.OptimizeReport == nil {
			s.OptimizeReport = map[string]int{}
		}
		s.OptimizeReport[obs.LabelValue(sv.Labels, "pass")] += int(sv.Value)
	}
	return s
}

// registerPoolMetrics exposes a tensor pool's rental counters. The
// callbacks read the pool's own atomics at scrape time, so the rental
// hot path is untouched; several engines registering their per-engine
// pools merge additively into pool-wide series.
func registerPoolMetrics(reg *obs.Registry, p *tensor.Pool) {
	reg.CounterFunc("janus_pool_gets_total", helpPoolGets,
		func() float64 { return float64(p.Stats().Gets) })
	reg.CounterFunc("janus_pool_hits_total", helpPoolHits,
		func() float64 { return float64(p.Stats().Hits) })
	reg.CounterFunc("janus_pool_puts_total", helpPoolPuts,
		func() float64 { return float64(p.Stats().Puts) })
	reg.GaugeFunc("janus_pool_in_use_elements", helpPoolInUse,
		func() float64 { return float64(p.Stats().InUseElems) })
}

// RegisterCacheMetrics exposes a compiled-graph cache in reg. Because
// func-backed series merge additively, the pairing must be 1:1 — a
// standalone engine registers its private cache on its private registry,
// and a serving pool registers the one shared cache on the one shared
// registry (never both).
func RegisterCacheMetrics(reg *obs.Registry, cache *GraphCache) {
	reg.GaugeFunc("janus_cache_functions", helpCacheFuncs,
		func() float64 { return float64(cache.Funcs()) })
	reg.GaugeFunc("janus_cache_entries", helpCacheGraphs,
		func() float64 { return float64(cache.Entries()) })
	reg.CounterFunc("janus_cache_evictions_total", helpCacheEvict,
		func() float64 { return float64(cache.Evictions()) })
}
