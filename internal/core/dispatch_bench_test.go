package core

import (
	"sync"
	"testing"

	"repro/internal/minipy"
	"repro/internal/tensor"
	"repro/internal/vars"
)

// dispatchProgram chains dispatchOps framework ops so per-call time divided
// by the op count isolates the interpreter's per-op dispatch cost.
const dispatchOps = 32

func dispatchSrc() string {
	src := "def f(x):\n    h = x + x\n"
	for i := 1; i < dispatchOps-1; i++ {
		if i%2 == 0 {
			src += "    h = h + x\n"
		} else {
			src += "    h = relu(h)\n"
		}
	}
	src += "    return reduce_sum(h)\n"
	return src
}

// BenchmarkDispatchOverhead measures the REAL per-op dispatch cost of the
// imperative interpreter (OpDelay simulation disabled): parse-once function,
// repeated calls, time divided by framework ops per call. Subtracting
// BenchmarkDispatchKernelOnly's per-op kernel time gives the pure dispatch
// overhead that DESIGN.md §5 calibrates PyOverheadNs against.
func BenchmarkDispatchOverhead(b *testing.B) {
	e := NewEngine(Config{Mode: Imperative, LR: 0.1, PyOverheadNs: -1})
	if err := e.Run(dispatchSrc()); err != nil {
		b.Fatal(err)
	}
	x := minipy.NewTensor(tensor.Full(0.5, 8, 8))
	args := []minipy.Value{x}
	if _, err := e.Call("f", args); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Call("f", args); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(dispatchOps)
	b.ReportMetric(perOp, "ns/frameworkop")
}

// BenchmarkDispatchKernelOnly runs the same op sequence directly on the
// tensor kernels — the compute floor beneath the interpreter.
func BenchmarkDispatchKernelOnly(b *testing.B) {
	x := tensor.Full(0.5, 8, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := tensor.Add(x, x)
		for j := 1; j < dispatchOps-1; j++ {
			if j%2 == 0 {
				h = tensor.Add(h, x)
			} else {
				h = tensor.ReLU(h)
			}
		}
		tensor.Sum(h)
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(dispatchOps)
	b.ReportMetric(perOp, "ns/frameworkop")
}

// BenchmarkGraphReplayPerOp is the symbolic-executor counterpart: steady-
// state graph replay of the same chain via a Janus engine, per framework op.
func BenchmarkGraphReplayPerOp(b *testing.B) {
	cfg := DefaultJanusConfig()
	cfg.ProfileIters = 1
	cfg.Workers = 1
	cfg.PyOverheadNs = -1
	e := NewEngine(cfg)
	if err := e.Run(dispatchSrc()); err != nil {
		b.Fatal(err)
	}
	x := minipy.NewTensor(tensor.Full(0.5, 8, 8))
	args := []minipy.Value{x}
	for i := 0; i < 3; i++ { // profile + convert
		if _, err := e.Call("f", args); err != nil {
			b.Fatal(err)
		}
	}
	if e.Stats().GraphSteps == 0 {
		b.Fatal("chain never reached graph execution")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Call("f", args); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(dispatchOps)
	b.ReportMetric(perOp, "ns/frameworkop")
}

// TestPooledEnginesSharedCacheConcurrent is the serving-pool shape: N
// engines, one store, one GraphCache, each engine replaying pooled graphs on
// its own goroutine. Run under -race in CI. Per-engine pools must never
// exchange buffers — every call must keep returning the exact expected
// value.
func TestPooledEnginesSharedCacheConcurrent(t *testing.T) {
	cfg := DefaultJanusConfig()
	cfg.ProfileIters = 1
	cfg.Workers = 2
	store := vars.NewStore()
	cache := NewGraphCache()
	const engines = 4
	const callsPer = 60
	var wg sync.WaitGroup
	errs := make(chan error, engines)
	for w := 0; w < engines; w++ {
		e := NewEngineShared(cfg, store, cache)
		if err := e.Run("def scaled(x):\n    return relu(x + x) * x\n"); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int, e *Engine) {
			defer wg.Done()
			base := float64(w + 1)
			x := minipy.NewTensor(tensor.Full(base, 4, 4))
			want := (base + base) * base // relu(2b)*b for b > 0
			for i := 0; i < callsPer; i++ {
				out, err := e.Call("scaled", []minipy.Value{x})
				if err != nil {
					errs <- err
					return
				}
				got := out.(*minipy.TensorVal).T()
				for _, v := range got.Data() {
					if v != want {
						errs <- errValue{w, i, v, want}
						return
					}
				}
			}
		}(w, e)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cache.Entries() == 0 {
		t.Fatal("shared cache never populated")
	}
}

type errValue struct {
	worker, call int
	got, want    float64
}

func (e errValue) Error() string {
	return "engine buffer corruption"
}
