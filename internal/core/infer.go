package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/autodiff"
	"repro/internal/convert"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/minipy"
	"repro/internal/obs"
	"repro/internal/profile"
)

// This file is the forward-only (inference) counterpart of the optimize()
// training path in engine.go. The serving subsystem calls module-level
// functions by name on behalf of remote clients; under the Janus mode those
// calls go through the same profile → speculate → validate → fall back
// pipeline, but the generated graphs carry no gradient or update ops and
// their cache entries are kept separate from the training entries.

// LookupFunc resolves a module-level function by name; a missing name is
// reported with the ErrUnknownFunction sentinel (HTTP 404 in the serving
// layer).
func (e *Engine) LookupFunc(name string) (*minipy.FuncVal, error) {
	v, ok := e.Local.Globals.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownFunction, name)
	}
	fn, ok := v.(*minipy.FuncVal)
	if !ok {
		return nil, fmt.Errorf("core: %q is %s, not a function", name, v.TypeName())
	}
	return fn, nil
}

// Functions returns the parameter lists of every module-level function,
// keyed by name. The serving pool snapshots this at load time so handle
// resolution never competes with requests for a worker. Callers must hold
// the engine exclusively (no program running).
func (e *Engine) Functions() map[string][]string {
	out := make(map[string][]string)
	e.Local.Globals.Each(func(name string, v minipy.Value) {
		if fn, ok := v.(*minipy.FuncVal); ok {
			out[name] = fn.ParamList()
		}
	})
	return out
}

// Call invokes the module-level function name with args under the engine's
// execution strategy. Functions that themselves call optimize() stay on the
// interpreter (stateful builtins are not convertible), and the inner
// optimize() still reaches the speculative training path — so the same
// entry point serves both inference and train-step requests.
func (e *Engine) Call(name string, args []minipy.Value) (minipy.Value, error) {
	return e.CallCtx(context.Background(), name, args)
}

// CallCtx is Call under a context: cancellation stops execution between
// steps and statements with ErrCanceled.
func (e *Engine) CallCtx(ctx context.Context, name string, args []minipy.Value) (minipy.Value, error) {
	fn, err := e.LookupFunc(name)
	if err != nil {
		return nil, err
	}
	return e.CallFuncCtx(ctx, fn, args)
}

// CallNamed invokes the module-level function name with arguments addressed
// by parameter name (the function-handle Feeds path): feeds are bound onto
// the positional parameter list up front, with unknown or missing names
// rejected before any execution happens.
func (e *Engine) CallNamed(ctx context.Context, name string, feeds map[string]minipy.Value) (minipy.Value, error) {
	fn, err := e.LookupFunc(name)
	if err != nil {
		return nil, err
	}
	args, err := fn.BindNamed(feeds)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return e.CallFuncCtx(ctx, fn, args)
}

// CallFunc is Call for an already-resolved function value.
func (e *Engine) CallFunc(fn *minipy.FuncVal, args []minipy.Value) (minipy.Value, error) {
	return e.CallFuncCtx(context.Background(), fn, args)
}

// CallFuncCtx is CallFunc under a context.
func (e *Engine) CallFuncCtx(ctx context.Context, fn *minipy.FuncVal, args []minipy.Value) (minipy.Value, error) {
	restore := e.withCtx(ctx)
	defer restore()
	if err := e.interrupted(); err != nil {
		return nil, err
	}
	switch e.cfg.Mode {
	case Janus, Trace:
		return e.inferStep(fn, args)
	default:
		return e.imperativeCall(fn, args, nil)
	}
}

// imperativeCall runs fn(args...) on the interpreter. prof, when non-nil,
// observes the execution for the speculative converter; callers must hold
// the funcState lock in that case.
func (e *Engine) imperativeCall(fn *minipy.FuncVal, args []minipy.Value, prof *profile.Profile) (minipy.Value, error) {
	sp := obs.StartSpan(e.runCtx, "imperative")
	t0 := time.Now()
	v, err := e.runImperativeCall(fn, args, prof)
	e.stats.phaseImperative.Since(t0)
	sp.End()
	return v, err
}

func (e *Engine) runImperativeCall(fn *minipy.FuncVal, args []minipy.Value, prof *profile.Profile) (minipy.Value, error) {
	e.stats.imperativeSteps.Add(1)
	prevTape, prevProf := e.Local.Tape, e.Local.Prof
	e.Local.Tape = autodiff.NewTape()
	if prof != nil {
		e.Local.Prof = prof
	}
	defer func() {
		e.Local.Tape, e.Local.Prof = prevTape, prevProf
	}()
	out, err := e.Local.CallFunction(fn, args)
	if err != nil {
		return nil, err
	}
	if prof != nil {
		prof.EndIteration()
	}
	return out, nil
}

// inferStep mirrors janusStep for a plain function call: same cache and
// fallback discipline, but the graph is forward-only. The locking contract
// matches janusStep — fs.mu covers profiling/lookup/generation, execution
// runs outside it.
func (e *Engine) inferStep(fn *minipy.FuncVal, args []minipy.Value) (minipy.Value, error) {
	fs := e.state(fn, true)
	fs.mu.Lock()
	impOnly := fs.imperativeOnly
	fs.mu.Unlock()
	if impOnly {
		// Never regenerated, profile never consulted again: run unlocked so
		// pool engines interpret in parallel (train_step-style functions that
		// call optimize() land here, and the inner optimize still reaches the
		// speculative training path with its own funcState).
		return e.imperativeCall(fn, args, nil)
	}
	var entry *compiled
	var leaves []minipy.Value
	// As in janusStep, the deferred unlock inside the closure keeps fs.mu
	// panic-safe (the serving layer recovers panics into request errors).
	out, handled, err := func() (minipy.Value, bool, error) {
		fs.mu.Lock()
		defer fs.mu.Unlock()
		if fs.imperativeOnly {
			v, err := e.imperativeCall(fn, args, fs.prof)
			return v, true, err
		}
		if fs.prof.Iterations() < e.cfg.ProfileIters || fs.prof.Iterations() < fs.reprofileUntil {
			v, err := e.imperativeCall(fn, args, fs.prof)
			return v, true, err
		}
		hash, lv := convert.FlattenHash(fn, args)
		if entry = e.hashLookup(fs, hash, len(lv)); entry == nil {
			sig, _ := convert.Flatten(fn, args)
			entry = e.lookup(fs, sig)
			if entry == nil {
				e.stats.cacheMisses.Add(1)
				obs.TraceFrom(e.runCtx).Annotate("cache", "miss")
				var gerr error
				entry, gerr = e.generateInfer(fs, fn, args, sig, len(lv))
				if gerr != nil {
					if errors.Is(gerr, convert.ErrNotConvertible) {
						fs.imperativeOnly = true
						fs.impReason = gerr.Error()
						e.stats.conversionFails.Add(1)
						v, err := e.imperativeCall(fn, args, fs.prof)
						return v, true, err
					}
					return nil, true, gerr
				}
			} else {
				e.stats.cacheHits.Add(1)
				obs.TraceFrom(e.runCtx).Annotate("cache", "hit")
			}
			memoizeSig(fs, hash, entry)
		}
		leaves = lv
		return nil, false, nil
	}()
	if handled {
		return out, err
	}
	t0 := time.Now()
	out, err = e.executeInfer(entry, leaves)
	if err == nil {
		e.stats.graphSteps.Add(1)
		obs.TraceFrom(e.runCtx).Annotate("path", "graph")
		return out, nil
	}
	var ae *exec.AssertError
	if errors.As(err, &ae) {
		wasted := time.Since(t0)
		e.stats.assertFailures.Add(1)
		e.stats.fallbacks.Add(1)
		fs.mu.Lock()
		defer fs.mu.Unlock()
		ev := e.noteFailure(fs, entry, ae, wasted)
		tr := obs.TraceFrom(e.runCtx)
		tr.Annotate("path", "fallback")
		tr.Annotate("deopt", ev.Label())
		// Fallback boundary = cancellation point (see janusStep).
		if cerr := e.interrupted(); cerr != nil {
			return nil, cerr
		}
		return e.imperativeCall(fn, args, fs.prof)
	}
	return nil, err
}

// generateInfer converts fn(args...) to a forward-only graph and caches it.
func (e *Engine) generateInfer(fs *funcState, fn *minipy.FuncVal, args []minipy.Value, sig []string, numLeaves int) (*compiled, error) {
	csp := obs.StartSpan(e.runCtx, "convert")
	t0 := time.Now()
	res, err := convert.ConvertCall(fn, args, fs.prof, e.Local.Builtins, convert.Options{
		Unroll:     e.cfg.Unroll,
		Specialize: e.cfg.Specialize,
		Distrust:   fs.distrust,
	})
	e.stats.phaseConvert.Since(t0)
	csp.End()
	if err != nil {
		return nil, err
	}
	ksp := obs.StartSpan(e.runCtx, "compile")
	t1 := time.Now()
	rep, perr := e.runPasses(res, e.cfg.Specialize)
	e.stats.phaseCompile.Since(t1)
	ksp.End()
	if perr != nil {
		return nil, perr
	}
	e.stats.addReport(rep)
	e.stats.conversions.Add(1)
	if o := e.tryRelaxMerge(fs, res, sig, numLeaves); o != nil {
		return o, nil
	}
	c := &compiled{pattern: sig, leafCount: numLeaves, res: res, static: true, passes: rep}
	fs.entries = append(fs.entries, c)
	e.cache.noteInsert(c)
	return c, nil
}

// executeInfer runs a forward graph and converts its outputs back to minipy
// values (a single output unwraps; multiple become a tuple).
func (e *Engine) executeInfer(c *compiled, leaves []minipy.Value) (minipy.Value, error) {
	sp := obs.StartSpan(e.runCtx, "execute")
	t0 := time.Now()
	restore := func() {}
	if sp.ID() != 0 {
		restore = e.withCtx(obs.ContextWithSpan(e.runCtx, sp.ID()))
	}
	v, err := e.runInferGraph(c, leaves)
	restore()
	e.stats.phaseExecute.Since(t0)
	sp.End()
	return v, err
}

func (e *Engine) runInferGraph(c *compiled, leaves []minipy.Value) (minipy.Value, error) {
	feeds := make(map[string]graph.Val, len(leaves))
	for i, v := range leaves {
		feeds[feedName(i)] = minipyToGraph(v)
	}
	res, err := exec.Run(c.res.Graph, feeds, exec.Options{
		Workers:        e.cfg.Workers,
		Store:          e.Store,
		Heap:           e.heap,
		DisableAsserts: e.cfg.DisableAsserts,
		Metrics:        e.stats.exec,
		Pool:           e.pool,
		Arena:          e.arena,
		Ctx:            e.runCtx,
	})
	if err != nil {
		return nil, e.asCanceled(err)
	}
	if len(res.Outputs) == 0 {
		return minipy.None, nil
	}
	if len(res.Outputs) == 1 {
		return graphToMinipy(res.Outputs[0]), nil
	}
	items := make([]minipy.Value, len(res.Outputs))
	for i, o := range res.Outputs {
		items[i] = graphToMinipy(o)
	}
	return &minipy.TupleVal{Items: items}, nil
}
