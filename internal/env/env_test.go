package env

import (
	"math"
	"testing"
)

func TestCartPoleEpisodeTerminates(t *testing.T) {
	c := NewCartPole(1)
	obs := c.Reset()
	if len(obs) != c.ObsDim() {
		t.Fatalf("obs dim %d", len(obs))
	}
	steps := 0
	done := false
	for !done && steps < 1000 {
		_, r, d := c.Step(steps % 2)
		if r != 1 {
			t.Fatalf("reward %v", r)
		}
		done = d
		steps++
	}
	if !done {
		t.Fatal("episode never terminated")
	}
}

func TestCartPoleFallsWithConstantAction(t *testing.T) {
	// Pushing one way forever must destabilize quickly.
	c := NewCartPole(2)
	c.Reset()
	steps := 0
	for {
		_, _, done := c.Step(1)
		steps++
		if done {
			break
		}
		if steps > 500 {
			t.Fatal("constant push never failed")
		}
	}
	if steps > 200 {
		t.Fatalf("constant action survived %d steps", steps)
	}
}

func TestCartPoleDeterministicWithSeed(t *testing.T) {
	a := NewCartPole(7)
	b := NewCartPole(7)
	oa := a.Reset()
	ob := b.Reset()
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatal("seeded reset differs")
		}
	}
}

func TestPongLiteRallyAndMiss(t *testing.T) {
	p := NewPongLite(3, 5)
	obs := p.Reset()
	if len(obs) != p.ObsDim() || p.NumActions() != 3 {
		t.Fatal("metadata wrong")
	}
	// Perfect tracking policy returns the ball until maxRallies.
	track := func(o []float64) int {
		switch {
		case o[4] < o[1]-0.02:
			return 2
		case o[4] > o[1]+0.02:
			return 0
		}
		return 1
	}
	_, _, rewards := RunEpisode(p, track, 5000)
	total := 0.0
	for _, r := range rewards {
		total += r
	}
	if total < 4 {
		t.Fatalf("tracking policy scored %v", total)
	}
	// A frozen paddle eventually misses (negative terminal reward).
	p2 := NewPongLite(4, 50)
	_, _, rw := RunEpisode(p2, func([]float64) int { return 1 }, 10000)
	if rw[len(rw)-1] != -1 {
		t.Fatalf("frozen paddle terminal reward %v", rw[len(rw)-1])
	}
}

func TestDiscount(t *testing.T) {
	got := Discount([]float64{1, 1, 1}, 0.5)
	want := []float64{1.75, 1.5, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}
