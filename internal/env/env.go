// Package env implements the reinforcement-learning environments used by the
// DRL workloads (A3C on CartPole, PPO on Pong). The paper treats environment
// simulation as an external library (its footnote 7); these are full physics
// simulators, not stubs: CartPole integrates the standard cart-pole dynamics
// and PongLite simulates a ball/paddle rally.
package env

import (
	"math"

	"repro/internal/tensor"
)

// Env is a discrete-action episodic environment.
type Env interface {
	// Reset starts a new episode and returns the initial observation.
	Reset() []float64
	// Step applies an action, returning observation, reward and done.
	Step(action int) (obs []float64, reward float64, done bool)
	// ObsDim is the observation vector length.
	ObsDim() int
	// NumActions is the discrete action count.
	NumActions() int
}

// CartPole is the classic inverted-pendulum control problem with the
// standard dynamics constants (as in OpenAI Gym's CartPole-v1).
type CartPole struct {
	rng                      *tensor.RNG
	x, xDot, theta, thetaDot float64
	steps                    int
	// MaxSteps caps episode length (500 in Gym's v1).
	MaxSteps int
}

// NewCartPole builds a seeded CartPole instance.
func NewCartPole(seed uint64) *CartPole {
	return &CartPole{rng: tensor.NewRNG(seed), MaxSteps: 200}
}

// ObsDim implements Env.
func (c *CartPole) ObsDim() int { return 4 }

// NumActions implements Env.
func (c *CartPole) NumActions() int { return 2 }

// Reset implements Env.
func (c *CartPole) Reset() []float64 {
	c.x = c.rng.Uniform(-0.05, 0.05, 1).Item()
	c.xDot = c.rng.Uniform(-0.05, 0.05, 1).Item()
	c.theta = c.rng.Uniform(-0.05, 0.05, 1).Item()
	c.thetaDot = c.rng.Uniform(-0.05, 0.05, 1).Item()
	c.steps = 0
	return c.obs()
}

func (c *CartPole) obs() []float64 {
	return []float64{c.x, c.xDot, c.theta, c.thetaDot}
}

// Step implements Env using the standard Euler-integrated dynamics.
func (c *CartPole) Step(action int) ([]float64, float64, bool) {
	const (
		gravity   = 9.8
		massCart  = 1.0
		massPole  = 0.1
		totalMass = massCart + massPole
		length    = 0.5 // half pole length
		poleMass  = massPole * length
		forceMag  = 10.0
		tau       = 0.02
	)
	force := forceMag
	if action == 0 {
		force = -forceMag
	}
	cosT := math.Cos(c.theta)
	sinT := math.Sin(c.theta)
	temp := (force + poleMass*c.thetaDot*c.thetaDot*sinT) / totalMass
	thetaAcc := (gravity*sinT - cosT*temp) / (length * (4.0/3.0 - massPole*cosT*cosT/totalMass))
	xAcc := temp - poleMass*thetaAcc*cosT/totalMass

	c.x += tau * c.xDot
	c.xDot += tau * xAcc
	c.theta += tau * c.thetaDot
	c.thetaDot += tau * thetaAcc
	c.steps++

	done := c.x < -2.4 || c.x > 2.4 ||
		c.theta < -12*math.Pi/180 || c.theta > 12*math.Pi/180 ||
		c.steps >= c.MaxSteps
	return c.obs(), 1.0, done
}

// PongLite is a one-player rally game: a ball bounces in a box and the agent
// moves a paddle on the right wall. Returning the ball scores +1, missing it
// scores -1 and ends the rally. It preserves the observation/reward shape of
// Atari Pong without the emulator.
type PongLite struct {
	rng                 *tensor.RNG
	bx, by, vx, vy      float64
	paddle              float64
	rallies, maxRallies int
}

// NewPongLite builds a seeded instance; an episode lasts maxRallies returns
// or one miss.
func NewPongLite(seed uint64, maxRallies int) *PongLite {
	if maxRallies <= 0 {
		maxRallies = 20
	}
	return &PongLite{rng: tensor.NewRNG(seed), maxRallies: maxRallies}
}

// ObsDim implements Env.
func (p *PongLite) ObsDim() int { return 5 }

// NumActions implements Env: up, stay, down.
func (p *PongLite) NumActions() int { return 3 }

// Reset implements Env.
func (p *PongLite) Reset() []float64 {
	p.bx, p.by = 0.5, p.rng.Float64()
	p.vx = 0.03
	p.vy = p.rng.Uniform(-0.02, 0.02, 1).Item()
	p.paddle = 0.5
	p.rallies = 0
	return p.obs()
}

func (p *PongLite) obs() []float64 {
	return []float64{p.bx, p.by, p.vx * 10, p.vy * 10, p.paddle}
}

// Step implements Env.
func (p *PongLite) Step(action int) ([]float64, float64, bool) {
	switch action {
	case 0:
		p.paddle -= 0.04
	case 2:
		p.paddle += 0.04
	}
	p.paddle = math.Max(0.1, math.Min(0.9, p.paddle))
	p.bx += p.vx
	p.by += p.vy
	if p.by < 0 {
		p.by = -p.by
		p.vy = -p.vy
	}
	if p.by > 1 {
		p.by = 2 - p.by
		p.vy = -p.vy
	}
	if p.bx < 0 {
		p.bx = -p.bx
		p.vx = -p.vx
	}
	if p.bx >= 1 {
		// Ball reaches the paddle wall.
		if math.Abs(p.by-p.paddle) < 0.12 {
			p.bx = 2 - p.bx
			p.vx = -p.vx
			p.vy += (p.by - p.paddle) * 0.05
			p.rallies++
			done := p.rallies >= p.maxRallies
			return p.obs(), 1, done
		}
		return p.obs(), -1, true
	}
	return p.obs(), 0, false
}

// RunEpisode rolls out a full episode using a policy function from
// observation to action, returning observations, actions, and rewards.
func RunEpisode(e Env, policy func(obs []float64) int, maxSteps int) (obs [][]float64, acts []int, rewards []float64) {
	o := e.Reset()
	for i := 0; i < maxSteps; i++ {
		a := policy(o)
		obs = append(obs, o)
		acts = append(acts, a)
		next, r, done := e.Step(a)
		rewards = append(rewards, r)
		o = next
		if done {
			break
		}
	}
	return obs, acts, rewards
}

// Discount computes discounted returns-to-go.
func Discount(rewards []float64, gamma float64) []float64 {
	out := make([]float64, len(rewards))
	acc := 0.0
	for i := len(rewards) - 1; i >= 0; i-- {
		acc = rewards[i] + gamma*acc
		out[i] = acc
	}
	return out
}
