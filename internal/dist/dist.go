// Package dist models multi-device data-parallel training throughput for
// the paper's Figure 8 (§6.3.2). It is an analytical simulator, not a real
// cluster: per-step compute times and parameter counts are taken at paper
// scale, gradients are exchanged over a ring all-reduce on 100 Gbps links,
// and the engines differ only in whether communication overlaps backprop and
// in per-operation dispatch overhead — the same two effects the paper
// attributes the symbolic engine's scalability advantage to.
package dist

import "math"

// LinkBandwidth is the simulated interconnect, bytes/second (100 Gbps).
const LinkBandwidth = 100e9 / 8

// ClusterConfig describes one engine running data-parallel SGD on a
// simulated cluster.
type ClusterConfig struct {
	// Devices is the number of data-parallel replicas.
	Devices int
	// StepCompute is seconds of forward+backward compute per local step.
	StepCompute float64
	// GradBytes is the total gradient payload exchanged per step.
	GradBytes float64
	// Bandwidth is the interconnect in bytes/second; 0 selects LinkBandwidth
	// (the paper-scale 100 Gbps testbed). janusbench -dist overrides it with
	// an in-process memory-transfer estimate so the prediction is comparable
	// to the measured run.
	Bandwidth float64
	// Overlap reports whether gradient exchange overlaps backprop (graph
	// engines schedule collectives as soon as each layer's gradient is
	// ready; eager engines serialize them after the step).
	Overlap bool
	// Tensors is the number of gradient tensors (collective launches).
	Tensors int
	// EagerDispatch is per-collective dispatch overhead in seconds (eager
	// engines pay a Python-side launch per tensor; graph engines fuse it
	// into the executor and leave it zero).
	EagerDispatch float64
	// InputPipelineOverhead is extra per-step input-feeding cost in seconds
	// (eager engines re-stage feeds every step).
	InputPipelineOverhead float64
}

// commTime returns the ring all-reduce time for one step: each device sends
// and receives 2*(d-1)/d of the gradient payload.
func commTime(c ClusterConfig) float64 {
	if c.Devices <= 1 {
		return 0
	}
	bw := c.Bandwidth
	if bw <= 0 {
		bw = LinkBandwidth
	}
	d := float64(c.Devices)
	return 2 * (d - 1) / d * c.GradBytes / bw
}

// StepTime returns seconds per global step.
func StepTime(c ClusterConfig) float64 {
	comm := commTime(c)
	dispatch := float64(c.Tensors) * c.EagerDispatch
	if c.Devices <= 1 {
		dispatch = 0
	}
	t := c.StepCompute + c.InputPipelineOverhead + dispatch
	if c.Overlap {
		// Communication hides behind backprop (roughly half the step);
		// only the excess extends the step.
		if excess := comm - c.StepCompute/2; excess > 0 {
			t += excess
		}
		return t
	}
	return t + comm
}

// Throughput returns aggregate samples/second across the cluster.
func Throughput(c ClusterConfig, batch int) float64 {
	st := StepTime(c)
	if st <= 0 {
		return 0
	}
	return float64(c.Devices*batch) / st
}

// ScaleFactor returns scaling efficiency: aggregate throughput relative to
// Devices × the single-device throughput of the same configuration.
func ScaleFactor(c ClusterConfig, batch int) float64 {
	single := c
	single.Devices = 1
	base := Throughput(single, batch)
	if base <= 0 || c.Devices <= 0 {
		return 0
	}
	return Throughput(c, batch) / (float64(c.Devices) * base)
}

// BarrierFactor models the cost of a per-round barrier: a barriered round
// lasts as long as the slowest of d replicas' steps, so with per-step times
// varying with coefficient of variation cv (std/mean) the expected round
// time exceeds the mean step by roughly cv*sqrt(2*ln d) — the Gaussian
// order-statistics approximation for the expected maximum of d draws. The
// returned factor (>= 1) is how much slower a barriered engine runs than a
// free-running one whose throughput is bounded by the MEAN step time
// (asynchrony absorbs stragglers up to the staleness bound). janusbench
// -dist -async inverts this to report the per-step variation implied by the
// measured barrier-removal speedup.
func BarrierFactor(devices int, cv float64) float64 {
	if devices <= 1 || cv <= 0 {
		return 1
	}
	return 1 + cv*math.Sqrt(2*math.Log(float64(devices)))
}

// ImpliedStepCV inverts BarrierFactor: given the measured speedup of a
// free-running run over a barriered run on the same cluster, it returns the
// per-step coefficient of variation that would explain it.
func ImpliedStepCV(devices int, speedup float64) float64 {
	if devices <= 1 || speedup <= 1 {
		return 0
	}
	return (speedup - 1) / math.Sqrt(2*math.Log(float64(devices)))
}

// Measured builds the model's configuration from a real single-worker
// profile — measured step-compute seconds, actual gradient payload and
// tensor count — so janusbench -dist can print the analytical prediction
// next to the measured scaling of the parameter-server runtime and make the
// model a checkable claim. Overlap is true because the runtime streams
// per-tensor gradients during backprop, which is precisely the overlap this
// model assumes for graph engines.
func Measured(devices int, stepSeconds, gradBytes, bandwidth float64, tensors int) ClusterConfig {
	return ClusterConfig{
		Devices:     devices,
		StepCompute: stepSeconds,
		GradBytes:   gradBytes,
		Bandwidth:   bandwidth,
		Overlap:     true,
		Tensors:     tensors,
	}
}
