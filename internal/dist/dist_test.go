package dist

import (
	"math"
	"testing"
)

func TestOverlapHidesCommunication(t *testing.T) {
	// Communication smaller than half the step must vanish entirely under
	// overlap and extend the step without it.
	c := ClusterConfig{Devices: 4, StepCompute: 0.4, GradBytes: 100e6, Overlap: true, Tensors: 50}
	if got := StepTime(c); got != c.StepCompute {
		t.Fatalf("overlapped step %v, want pure compute %v", got, c.StepCompute)
	}
	c.Overlap = false
	if got := StepTime(c); got <= c.StepCompute {
		t.Fatalf("serialized step %v did not pay for communication", got)
	}
}

func TestScaleFactorNearLinearForGraphEngine(t *testing.T) {
	graph := ClusterConfig{Devices: 8, StepCompute: 0.3, GradBytes: 100e6, Overlap: true, Tensors: 160}
	eager := graph
	eager.Overlap = false
	eager.EagerDispatch = 3e-3
	gs, es := ScaleFactor(graph, 64), ScaleFactor(eager, 64)
	if gs < 0.95 {
		t.Fatalf("graph-engine scaling %v, want near-linear (>= 0.95)", gs)
	}
	if es >= gs {
		t.Fatalf("eager scaling %v not below graph scaling %v", es, gs)
	}
}

func TestBandwidthOverrideChangesCommTime(t *testing.T) {
	base := ClusterConfig{Devices: 4, StepCompute: 0.01, GradBytes: 50e6, Overlap: false}
	slow := base
	slow.Bandwidth = 1e9 // 12.5x slower than the 100 Gbps default
	if StepTime(slow) <= StepTime(base) {
		t.Fatalf("lower bandwidth did not slow the step: %v vs %v", StepTime(slow), StepTime(base))
	}
	// Zero keeps the paper default.
	if StepTime(base) != StepTime(ClusterConfig{Devices: 4, StepCompute: 0.01, GradBytes: 50e6}) {
		t.Fatal("zero bandwidth no longer selects the default link")
	}
}

func TestMeasuredMapsProfileToConfig(t *testing.T) {
	c := Measured(4, 0.02, 8e6, 2e9, 12)
	if !c.Overlap || c.Devices != 4 || c.Tensors != 12 {
		t.Fatalf("Measured produced %+v", c)
	}
	sf := ScaleFactor(c, 8)
	if math.IsNaN(sf) || sf <= 0 || sf > 1.0001 {
		t.Fatalf("measured-profile scale factor %v out of range", sf)
	}
}

func TestBarrierFactor(t *testing.T) {
	if got := BarrierFactor(1, 0.5); got != 1 {
		t.Fatalf("single device has no barrier cost: %v", got)
	}
	if got := BarrierFactor(4, 0); got != 1 {
		t.Fatalf("deterministic steps have no barrier cost: %v", got)
	}
	f4, f16 := BarrierFactor(4, 0.2), BarrierFactor(16, 0.2)
	if f4 <= 1 || f16 <= f4 {
		t.Fatalf("barrier cost must grow with devices: 4 -> %v, 16 -> %v", f4, f16)
	}
	// Round trip through the inversion.
	cv := ImpliedStepCV(4, f4)
	if diff := cv - 0.2; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("ImpliedStepCV(BarrierFactor(cv)) = %v, want 0.2", cv)
	}
	if got := ImpliedStepCV(4, 0.9); got != 0 {
		t.Fatalf("slowdown implies no positive cv: %v", got)
	}
}
