// Package vars implements the model-parameter store shared between the
// imperative (eager) executor and the symbolic graph executor.
//
// The paper (§5) modifies TensorFlow Eager's parameter storing mechanism so
// that the same variables back both execution modes; this package is that
// mechanism. Every engine reads and writes parameters through a *Store, so a
// model can be trained for some iterations imperatively, some symbolically,
// and the updates compose.
package vars

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/tensor"
)

// Store maps variable names to mutable tensors. It is safe for concurrent
// use; the symbolic executor updates variables from worker goroutines.
type Store struct {
	mu   sync.RWMutex
	vals map[string]*tensor.Tensor
}

// NewStore returns an empty parameter store.
func NewStore() *Store {
	return &Store{vals: make(map[string]*tensor.Tensor)}
}

// GetOrCreate returns the variable named name, creating it with init() on
// first use. This mirrors TF's get_variable semantics: model-building code is
// re-run every iteration in eager mode but must reuse the same parameters.
func (s *Store) GetOrCreate(name string, init func() *tensor.Tensor) *tensor.Tensor {
	s.mu.RLock()
	v, ok := s.vals[name]
	s.mu.RUnlock()
	if ok {
		return v
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.vals[name]; ok {
		return v
	}
	v = init()
	s.vals[name] = v
	return v
}

// Get returns the variable and whether it exists.
func (s *Store) Get(name string) (*tensor.Tensor, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.vals[name]
	return v, ok
}

// MustGet returns the variable or panics.
func (s *Store) MustGet(name string) *tensor.Tensor {
	v, ok := s.Get(name)
	if !ok {
		panic(fmt.Sprintf("vars: unknown variable %q", name))
	}
	return v
}

// Set stores (or replaces) a variable.
func (s *Store) Set(name string, t *tensor.Tensor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals[name] = t
}

// AssignSub subtracts delta from the named variable. This is the
// parameter-update primitive used by both SGD paths.
//
// The update is copy-on-write: a fresh tensor replaces the map entry rather
// than mutating the old buffer. Published tensors are therefore immutable,
// so concurrent engines (the serving pool) can keep reading a variable
// lock-free while another engine applies an update — readers see a
// consistent pre-update snapshot, never a torn write.
func (s *Store) AssignSub(name string, delta *tensor.Tensor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.vals[name]
	if !ok {
		panic(fmt.Sprintf("vars: AssignSub to unknown variable %q", name))
	}
	if !tensor.SameShape(v, delta) {
		panic(fmt.Sprintf("vars: AssignSub shape mismatch for %q: %v vs %v", name, v.Shape(), delta.Shape()))
	}
	vd, dd := v.Data(), delta.Data()
	out := make([]float64, len(vd))
	for i := range vd {
		out[i] = vd[i] - dd[i]
	}
	s.vals[name] = tensor.New(v.Shape(), out)
}

// Names returns all variable names in sorted order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.vals))
	for k := range s.vals {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of variables.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.vals)
}

// NumParams returns the total element count across all variables.
func (s *Store) NumParams() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, v := range s.vals {
		n += v.Size()
	}
	return n
}

// Snapshot deep-copies the store; used by tests and by the distributed
// simulator to model per-replica parameter copies.
func (s *Store) Snapshot() *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := NewStore()
	for k, v := range s.vals {
		out.vals[k] = v.Clone()
	}
	return out
}

// ShardOf maps a variable name onto one of k logical shards (FNV-1a hash).
// The parameter-server runtime partitions a model's variables this way, so
// client and server always agree on placement without coordination.
func ShardOf(name string, k int) int {
	if k <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	return int(h.Sum32() % uint32(k))
}

// ShardSnapshot returns the variables that live on shard `shard` of `k`.
// The returned map holds the live tensors, not copies: every update path
// (AssignSub, Set) is copy-on-write, so published tensors are immutable and
// safe to hand to another goroutine or serialize onto the wire.
func (s *Store) ShardSnapshot(shard, k int) map[string]*tensor.Tensor {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]*tensor.Tensor)
	for name, v := range s.vals {
		if ShardOf(name, k) == shard {
			out[name] = v
		}
	}
	return out
}

// SetAll stores every entry of m under a single lock acquisition — the bulk
// counterpart of Set, used by parameter-server workers to install a freshly
// pulled shard of parameters between training steps.
func (s *Store) SetAll(m map[string]*tensor.Tensor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, t := range m {
		s.vals[name] = t
	}
}
