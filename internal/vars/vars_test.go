package vars

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/tensor"
)

func TestGetOrCreateReuses(t *testing.T) {
	s := NewStore()
	calls := 0
	init := func() *tensor.Tensor { calls++; return tensor.Zeros(2) }
	a := s.GetOrCreate("w", init)
	b := s.GetOrCreate("w", init)
	if a != b {
		t.Fatal("GetOrCreate returned different tensors")
	}
	if calls != 1 {
		t.Fatalf("init called %d times", calls)
	}
}

func TestAssignSub(t *testing.T) {
	s := NewStore()
	s.Set("w", tensor.FromSlice([]float64{5, 5}))
	s.AssignSub("w", tensor.FromSlice([]float64{1, 2}))
	if !tensor.Equal(s.MustGet("w"), tensor.FromSlice([]float64{4, 3})) {
		t.Fatalf("got %v", s.MustGet("w"))
	}
}

func TestAssignSubShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewStore()
	s.Set("w", tensor.Zeros(2))
	s.AssignSub("w", tensor.Zeros(3))
}

func TestMustGetPanicsOnMissing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStore().MustGet("nope")
}

func TestNamesSortedAndCounts(t *testing.T) {
	s := NewStore()
	s.Set("b", tensor.Zeros(3))
	s.Set("a", tensor.Zeros(2, 2))
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("got %v", names)
	}
	if s.Len() != 2 || s.NumParams() != 7 {
		t.Fatalf("len=%d params=%d", s.Len(), s.NumParams())
	}
}

func TestSnapshotIsDeep(t *testing.T) {
	s := NewStore()
	s.Set("w", tensor.FromSlice([]float64{1}))
	snap := s.Snapshot()
	s.MustGet("w").Data()[0] = 99
	if snap.MustGet("w").At(0) != 1 {
		t.Fatal("snapshot shares storage")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	s.Set("w", tensor.Zeros(1))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.AssignSub("w", tensor.FromSlice([]float64{-1}))
				s.GetOrCreate("x", func() *tensor.Tensor { return tensor.Zeros(1) })
			}
		}()
	}
	wg.Wait()
	if s.MustGet("w").At(0) != 1600 {
		t.Fatalf("lost updates: %v", s.MustGet("w").At(0))
	}
}

func TestShardOfIsStableAndInRange(t *testing.T) {
	names := []string{"w", "layer1/w", "layer1/b", "resnet/b2/bn1/gamma", "mlp/w2"}
	for _, k := range []int{1, 2, 4, 7} {
		for _, n := range names {
			s := ShardOf(n, k)
			if s < 0 || s >= k {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", n, k, s)
			}
			if s != ShardOf(n, k) {
				t.Fatalf("ShardOf(%q, %d) unstable", n, k)
			}
		}
	}
	if ShardOf("anything", 1) != 0 {
		t.Fatal("single shard must map everything to 0")
	}
}

func TestShardSnapshotPartitions(t *testing.T) {
	s := NewStore()
	const k = 3
	for i := 0; i < 20; i++ {
		s.Set(fmt.Sprintf("v%d", i), tensor.Scalar(float64(i)))
	}
	seen := map[string]bool{}
	for shard := 0; shard < k; shard++ {
		for name := range s.ShardSnapshot(shard, k) {
			if seen[name] {
				t.Fatalf("variable %q appears in two shards", name)
			}
			seen[name] = true
			if ShardOf(name, k) != shard {
				t.Fatalf("variable %q in wrong shard", name)
			}
		}
	}
	if len(seen) != 20 {
		t.Fatalf("shards cover %d of 20 variables", len(seen))
	}
}

func TestSetAllInstallsBulk(t *testing.T) {
	s := NewStore()
	s.Set("a", tensor.Scalar(1))
	s.SetAll(map[string]*tensor.Tensor{
		"a": tensor.Scalar(10),
		"b": tensor.Scalar(20),
	})
	if got := s.MustGet("a").Item(); got != 10 {
		t.Fatalf("a = %v after SetAll, want 10", got)
	}
	if got := s.MustGet("b").Item(); got != 20 {
		t.Fatalf("b = %v after SetAll, want 20", got)
	}
}
