package vars

import (
	"sync"
	"testing"

	"repro/internal/tensor"
)

func TestGetOrCreateReuses(t *testing.T) {
	s := NewStore()
	calls := 0
	init := func() *tensor.Tensor { calls++; return tensor.Zeros(2) }
	a := s.GetOrCreate("w", init)
	b := s.GetOrCreate("w", init)
	if a != b {
		t.Fatal("GetOrCreate returned different tensors")
	}
	if calls != 1 {
		t.Fatalf("init called %d times", calls)
	}
}

func TestAssignSub(t *testing.T) {
	s := NewStore()
	s.Set("w", tensor.FromSlice([]float64{5, 5}))
	s.AssignSub("w", tensor.FromSlice([]float64{1, 2}))
	if !tensor.Equal(s.MustGet("w"), tensor.FromSlice([]float64{4, 3})) {
		t.Fatalf("got %v", s.MustGet("w"))
	}
}

func TestAssignSubShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewStore()
	s.Set("w", tensor.Zeros(2))
	s.AssignSub("w", tensor.Zeros(3))
}

func TestMustGetPanicsOnMissing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStore().MustGet("nope")
}

func TestNamesSortedAndCounts(t *testing.T) {
	s := NewStore()
	s.Set("b", tensor.Zeros(3))
	s.Set("a", tensor.Zeros(2, 2))
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("got %v", names)
	}
	if s.Len() != 2 || s.NumParams() != 7 {
		t.Fatalf("len=%d params=%d", s.Len(), s.NumParams())
	}
}

func TestSnapshotIsDeep(t *testing.T) {
	s := NewStore()
	s.Set("w", tensor.FromSlice([]float64{1}))
	snap := s.Snapshot()
	s.MustGet("w").Data()[0] = 99
	if snap.MustGet("w").At(0) != 1 {
		t.Fatal("snapshot shares storage")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	s.Set("w", tensor.Zeros(1))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.AssignSub("w", tensor.FromSlice([]float64{-1}))
				s.GetOrCreate("x", func() *tensor.Tensor { return tensor.Zeros(1) })
			}
		}()
	}
	wg.Wait()
	if s.MustGet("w").At(0) != 1600 {
		t.Fatalf("lost updates: %v", s.MustGet("w").At(0))
	}
}
