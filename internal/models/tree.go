package models

import (
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/minipy"
	"repro/internal/tensor"
)

// treeSetup wires a recursive tree model: recursion + dynamic conditionals +
// object attribute access (all three dynamic-feature columns of Table 2).
// Each training sentence is a fresh minipy object tree; the recursive embed
// function converts to an InvokeOp graph ([20]) whose leaf/internal branch is
// Switch/Merge dataflow.
func treeSetup(e *core.Engine, seed uint64, defs, driverSrc string, perStep int) (*Instance, error) {
	if err := e.Run(defs); err != nil {
		return nil, err
	}
	cls := &minipy.ClassVal{Name: "TreeNode", Methods: map[string]*minipy.FuncVal{}}
	trees := data.SynthTrees(tensor.NewRNG(seed), 24, 4, 4, 16)
	objs := make([]minipy.Value, len(trees))
	for i, tr := range trees {
		objs[i] = tr.ToMinipy(cls)
	}
	driver := mustParse(driverSrc)
	inst := &Instance{Engine: e}
	inst.Step = func(i int) (float64, error) {
		batch := make([]minipy.Value, perStep)
		for j := 0; j < perStep; j++ {
			batch[j] = objs[(i*perStep+j)%len(objs)]
		}
		e.Define("cur_trees", &minipy.ListVal{Items: batch})
		return runStep(e, driver)
	}
	return inst, nil
}

func init() {
	// TreeRNN: recursive composition h(node) = tanh(W [h(l); h(r)]).
	register(&Model{
		Name: "TreeRNN", Category: "TreeNN", Units: "sentences/s",
		BatchSize: 4, ItemsPerStep: 4, DCF: true, DT: true, IF: true,
		Build: func(e *core.Engine, seed uint64) (*Instance, error) {
			defs := `
def tree_embed(node):
    emb = variable("treernn/emb", [16, 8])
    wl = variable("treernn/wl", [8, 8])
    wr = variable("treernn/wr", [8, 8])
    if node.leaf:
        return embedding(emb, [node.word])
    l = tree_embed(node.left)
    r = tree_embed(node.right)
    return tanh(matmul(l, wl) + matmul(r, wr))

def tree_loss(trees):
    proj = variable("treernn/proj", [8, 2])
    total = constant(0.0)
    for t in trees:
        h = tree_embed(t)
        logits = matmul(h, proj)
        total = total + cross_entropy(logits, one_hot([t.label], 2))
    return total / float(len(trees))
`
			return treeSetup(e, seed, defs,
				"__loss = optimize(lambda: tree_loss(cur_trees))", 4)
		},
	})

	// TreeLSTM: recursive binary tree-LSTM with gated child-state
	// composition (Tai et al. structure, scaled down).
	register(&Model{
		Name: "TreeLSTM", Category: "TreeNN", Units: "sentences/s",
		BatchSize: 4, ItemsPerStep: 4, DCF: true, DT: true, IF: true,
		Build: func(e *core.Engine, seed uint64) (*Instance, error) {
			defs := `
def tlstm_node(node):
    emb = variable("tlstm/emb", [16, 8])
    wi = variable("tlstm/wi", [16, 8])
    wf = variable("tlstm/wf", [16, 8])
    wo = variable("tlstm/wo", [16, 8])
    wu = variable("tlstm/wu", [16, 8])
    if node.leaf:
        h = embedding(emb, [node.word])
        return [h, h]
    left = tlstm_node(node.left)
    right = tlstm_node(node.right)
    hs = concat([left[0], right[0]], 1)
    i = sigmoid(matmul(hs, wi))
    f = sigmoid(matmul(hs, wf))
    o = sigmoid(matmul(hs, wo))
    u = tanh(matmul(hs, wu))
    c = i * u + f * (left[1] + right[1])
    h = o * tanh(c)
    return [h, c]

def tlstm_loss(trees):
    proj = variable("tlstm/proj", [8, 2])
    total = constant(0.0)
    for t in trees:
        hc = tlstm_node(t)
        logits = matmul(hc[0], proj)
        total = total + cross_entropy(logits, one_hot([t.label], 2))
    return total / float(len(trees))
`
			return treeSetup(e, seed, defs,
				"__loss = optimize(lambda: tlstm_loss(cur_trees))", 4)
		},
	})
}
