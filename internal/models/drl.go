package models

import (
	"math"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/minipy"
	"repro/internal/tensor"
)

// policyForward computes action probabilities in Go from the shared store,
// used only for environment rollouts between training steps (the paper's
// footnote 7: the framework handles training and policy evaluation; the
// environment loop is external).
func policyForward(e *core.Engine, prefix string, obs []float64, hidden, actions int) []float64 {
	w1, ok1 := e.Store.Get(prefix + "/w1")
	w2, ok2 := e.Store.Get(prefix + "/w2")
	if !ok1 || !ok2 {
		// Parameters not created yet (before the first training step):
		// uniform policy.
		out := make([]float64, actions)
		for i := range out {
			out[i] = 1 / float64(actions)
		}
		return out
	}
	x := tensor.New([]int{1, len(obs)}, append([]float64(nil), obs...))
	h := tensor.Tanh(tensor.MatMul(x, w1))
	logits := tensor.MatMul(h, w2)
	return tensor.Softmax(logits).Data()
}

func sampleAction(rng *tensor.RNG, probs []float64) int {
	r := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if r < acc {
			return i
		}
	}
	return len(probs) - 1
}

func init() {
	// A3C on CartPole: actor-critic loss with a Python for-loop over the
	// (variable-length, bucketed) episode and a running-reward attribute —
	// DCF + DT + IF per Table 2.
	register(&Model{
		Name: "A3C", Category: "DRL", Units: "frames/s",
		BatchSize: 16, ItemsPerStep: 16, DCF: true, DT: true, IF: true,
		Build: func(e *core.Engine, seed uint64) (*Instance, error) {
			defs := `
class A3C:
    def __init__(self):
        self.total_reward = 0.0
    def loss(self, obs, acts, rets):
        w1 = variable("a3c/w1", [4, 16])
        w2 = variable("a3c/w2", [16, 2])
        vw = variable("a3c/vw", [16, 1])
        total = constant(0.0)
        n = len(obs)
        for t in range(n):
            h = tanh(matmul(obs[t], w1))
            logits = matmul(h, w2)
            value = matmul(h, vw)
            adv = rets[t] - value
            pg = cross_entropy(logits, acts[t]) * adv
            total = total + reduce_sum(pg) + reduce_sum(adv * adv)
        self.total_reward = self.total_reward + reduce_sum(stack(rets))
        return total / float(n)

a3c_model = A3C()
`
			if err := e.Run(defs); err != nil {
				return nil, err
			}
			cart := env.NewCartPole(seed)
			rng := tensor.NewRNG(seed + 1)
			driver := mustParse("__loss = optimize(lambda: a3c_model.loss(cur_obs, cur_acts, cur_rets))")
			const bucket = 16 // fixed-size chunks keep the loop trip stable
			inst := &Instance{Engine: e}
			inst.Step = func(i int) (float64, error) {
				obs, acts, rewards := env.RunEpisode(cart, func(o []float64) int {
					return sampleAction(rng, policyForward(e, "a3c", o, 16, 2))
				}, 400)
				rets := env.Discount(rewards, 0.95)
				// Pad/trim to the bucket length so JANUS caches one graph.
				oL := make([]minipy.Value, bucket)
				aL := make([]minipy.Value, bucket)
				rL := make([]minipy.Value, bucket)
				for t := 0; t < bucket; t++ {
					k := t % len(obs)
					oL[t] = minipy.NewTensor(tensor.New([]int{1, 4}, append([]float64(nil), obs[k]...)))
					aL[t] = minipy.NewTensor(tensor.OneHot([]int{acts[k]}, 2))
					rL[t] = minipy.NewTensor(tensor.Scalar(rets[k] / 20))
				}
				e.Define("cur_obs", &minipy.ListVal{Items: oL})
				e.Define("cur_acts", &minipy.ListVal{Items: aL})
				e.Define("cur_rets", &minipy.ListVal{Items: rL})
				return runStep(e, driver)
			}
			inst.Eval = func() (float64, error) {
				// Average undiscounted return over 5 greedy episodes.
				total := 0.0
				for ep := 0; ep < 5; ep++ {
					_, _, rw := env.RunEpisode(cart, func(o []float64) int {
						p := policyForward(e, "a3c", o, 16, 2)
						best := 0
						for i := range p {
							if p[i] > p[best] {
								best = i
							}
						}
						return best
					}, 400)
					for _, r := range rw {
						total += r
					}
				}
				return total / 5, nil
			}
			return inst, nil
		},
	})

	// PPO on Pong-lite: vectorized clipped-surrogate loss (no Python loop —
	// Table 2 marks PPO's DCF ✗) with episode statistics stored on the model
	// object (IF ✓).
	register(&Model{
		Name: "PPO", Category: "DRL", Units: "frames/s",
		BatchSize: 32, ItemsPerStep: 32, DCF: false, DT: true, IF: true,
		Build: func(e *core.Engine, seed uint64) (*Instance, error) {
			defs := `
class PPO:
    def __init__(self):
        self.episodes = 0.0
    def loss(self, obs, acts, advs, old_probs):
        w1 = variable("ppo/w1", [5, 16])
        w2 = variable("ppo/w2", [16, 3])
        h = tanh(matmul(obs, w1))
        probs = softmax(matmul(h, w2))
        chosen = matmul(probs * acts, ones([3, 1]))
        ratio = chosen / old_probs
        clipped = min(max(ratio, constant(0.8)), constant(1.2))
        surr = min(ratio * advs, clipped * advs)
        self.episodes = self.episodes + 1.0
        return 0.0 - reduce_mean(surr)

ppo_model = PPO()
`
			if err := e.Run(defs); err != nil {
				return nil, err
			}
			pong := env.NewPongLite(seed, 10)
			rng := tensor.NewRNG(seed + 2)
			driver := mustParse("__loss = optimize(lambda: ppo_model.loss(cur_obs, cur_acts, cur_advs, cur_oldp))")
			const batch = 32
			inst := &Instance{Engine: e}
			inst.Step = func(i int) (float64, error) {
				var obsRows [][]float64
				var actIdx []int
				var advs []float64
				var oldP []float64
				for len(obsRows) < batch {
					obs, acts, rewards := env.RunEpisode(pong, func(o []float64) int {
						return sampleAction(rng, policyForward(e, "ppo", o, 16, 3))
					}, 600)
					rets := env.Discount(rewards, 0.99)
					for t := range obs {
						if len(obsRows) >= batch {
							break
						}
						obsRows = append(obsRows, obs[t])
						actIdx = append(actIdx, acts[t])
						advs = append(advs, math.Tanh(rets[t]))
						p := policyForward(e, "ppo", obs[t], 16, 3)
						oldP = append(oldP, math.Max(p[acts[t]], 1e-3))
					}
				}
				flat := make([]float64, 0, batch*5)
				for _, r := range obsRows {
					flat = append(flat, r...)
				}
				e.Define("cur_obs", minipy.NewTensor(tensor.New([]int{batch, 5}, flat)))
				e.Define("cur_acts", minipy.NewTensor(tensor.OneHot(actIdx, 3)))
				e.Define("cur_advs", minipy.NewTensor(tensor.New([]int{batch, 1}, advs)))
				e.Define("cur_oldp", minipy.NewTensor(tensor.New([]int{batch, 1}, oldP)))
				return runStep(e, driver)
			}
			inst.Eval = func() (float64, error) {
				total := 0.0
				for ep := 0; ep < 5; ep++ {
					_, _, rw := env.RunEpisode(pong, func(o []float64) int {
						p := policyForward(e, "ppo", o, 16, 3)
						best := 0
						for i := range p {
							if p[i] > p[best] {
								best = i
							}
						}
						return best
					}, 600)
					for _, r := range rw {
						total += r
					}
				}
				return total / 5, nil
			}
			return inst, nil
		},
	})
}
