// Package models implements the paper's eleven evaluation workloads (Table
// 2) as imperative minipy programs plus Go-side harnesses: three CNNs
// (LeNet, ResNet-scaled, Inception-scaled), two RNNs (LSTM, LM), two TreeNNs
// (TreeRNN, TreeLSTM), two DRL models (A3C on CartPole, PPO on Pong-lite) and
// two GANs (AN, pix2pix). Every model uses exactly the dynamic features the
// paper's Table 2 lists for it (dynamic control flow, dynamic types, impure
// functions), scaled to laptop size per DESIGN.md §2.
package models

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/minipy"
)

// Model describes one evaluation workload.
type Model struct {
	Name     string
	Category string // CNN | RNN | TreeNN | DRL | GAN
	// Units for Table 3 throughput (images/s, words/s, sentences/s, frames/s).
	Units string
	// BatchSize is the (scaled) mini-batch size.
	BatchSize int
	// ItemsPerStep converts optimize() calls to throughput units.
	ItemsPerStep int
	// DCF/DT/IF are the Table 2 dynamic-feature flags.
	DCF, DT, IF bool
	// Build wires the model into a fresh engine and returns a step driver.
	Build func(e *core.Engine, seed uint64) (*Instance, error)
}

// Instance is a ready-to-train model bound to an engine.
type Instance struct {
	Engine *core.Engine
	// Step performs one optimize() iteration (including per-step data
	// preparation) and returns the training loss.
	Step func(i int) (float64, error)
	// Eval optionally computes a task metric (accuracy etc.); may be nil.
	Eval func() (float64, error)
}

// registry holds all models, populated by the category files' init funcs.
var registry = map[string]*Model{}

func register(m *Model) { registry[m.Name] = m }

// Get returns a model by name.
func Get(name string) (*Model, error) {
	m, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q", name)
	}
	return m, nil
}

// All returns every model sorted by category then name (Table 2 order).
func All() []*Model {
	out := make([]*Model, 0, len(registry))
	for _, m := range registry {
		out = append(out, m)
	}
	order := map[string]int{"CNN": 0, "RNN": 1, "TreeNN": 2, "DRL": 3, "GAN": 4}
	sort.Slice(out, func(i, j int) bool {
		if order[out[i].Category] != order[out[j].Category] {
			return order[out[i].Category] < order[out[j].Category]
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Names lists all model names in Table 2 order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, m := range all {
		out[i] = m.Name
	}
	return out
}

// Throughput measures steady-state training throughput (units/s): warmup
// steps cover profiling + conversion, then measure steps are timed.
func Throughput(m *Model, cfg core.Config, seed uint64, warmup, measure int) (float64, error) {
	e := core.NewEngine(cfg)
	inst, err := m.Build(e, seed)
	if err != nil {
		return 0, err
	}
	for i := 0; i < warmup; i++ {
		if _, err := inst.Step(i); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < measure; i++ {
		if _, err := inst.Step(warmup + i); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start).Seconds()
	if elapsed == 0 {
		elapsed = 1e-9
	}
	return float64(measure*m.ItemsPerStep) / elapsed, nil
}

// LossCurve trains for steps iterations recording (elapsed seconds, loss)
// pairs — the Figure 6 measurement. Engines that cannot run a model (e.g.
// the tracing baseline on TreeLSTM) return the error.
type CurvePoint struct {
	Seconds float64
	Loss    float64
}

// Curve runs training and records the loss trajectory.
func Curve(m *Model, cfg core.Config, seed uint64, steps int) ([]CurvePoint, *core.Engine, error) {
	e := core.NewEngine(cfg)
	inst, err := m.Build(e, seed)
	if err != nil {
		return nil, e, err
	}
	start := time.Now()
	out := make([]CurvePoint, 0, steps)
	for i := 0; i < steps; i++ {
		loss, err := inst.Step(i)
		if err != nil {
			return out, e, err
		}
		out = append(out, CurvePoint{Seconds: time.Since(start).Seconds(), Loss: loss})
	}
	return out, e, nil
}

// runStep executes a pre-parsed per-step driver program and extracts the
// loss printed by it. Models define their drivers as
// `__loss = optimize(lambda: ...)`.
func runStep(e *core.Engine, prog *minipy.Program) (float64, error) {
	if err := e.RunProgram(prog); err != nil {
		return 0, err
	}
	v, ok := e.Local.Globals.Lookup("__loss")
	if !ok {
		return 0, fmt.Errorf("models: step driver did not set __loss")
	}
	t, ok := v.(*minipy.TensorVal)
	if !ok {
		return 0, fmt.Errorf("models: __loss is %s", v.TypeName())
	}
	return t.T().Item(), nil
}

// mustParse parses a driver once; panicking here indicates a bug in an
// embedded model source.
func mustParse(src string) *minipy.Program { return minipy.MustParse(src) }
