package models

import (
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/minipy"
	"repro/internal/tensor"
)

// cnnSetup installs a synthetic image dataset and a batch feeder; per-step
// batches are Defined as globals captured by the optimized lambda.
func cnnSetup(e *core.Engine, seed uint64, channels, hw, classes, bs int, defsSrc, driverSrc string) (*Instance, error) {
	if err := e.Run(defsSrc); err != nil {
		return nil, err
	}
	ds := data.SynthImages(tensor.NewRNG(seed), 64, channels, hw, hw, classes)
	driver := mustParse(driverSrc)
	inst := &Instance{Engine: e}
	inst.Step = func(i int) (float64, error) {
		x, y := ds.Batch(i, bs)
		e.Define("cur_x", minipy.NewTensor(x))
		e.Define("cur_y", minipy.NewTensor(y))
		return runStep(e, driver)
	}
	return inst, nil
}

func init() {
	// LeNet: small convolutional classifier; no dynamic control flow (the
	// Table 2 row marks DCF ✗), dynamic types only.
	register(&Model{
		Name: "LeNet", Category: "CNN", Units: "images/s",
		BatchSize: 8, ItemsPerStep: 8, DCF: false, DT: true, IF: false,
		Build: func(e *core.Engine, seed uint64) (*Instance, error) {
			defs := `
def lenet_step(x, y):
    c1 = variable("lenet/c1", [4, 1, 3, 3])
    c2 = variable("lenet/c2", [8, 4, 3, 3])
    fc = variable("lenet/fc", [32, 4])
    b = variable("lenet/b", [4])
    h = relu(conv2d(x, c1, stride=1, pad=1))
    h = max_pool(h, 2, 2)
    h = relu(conv2d(h, c2, stride=1, pad=1))
    h = max_pool(h, 2, 2)
    flat = reshape(h, [8, 32])
    logits = matmul(flat, fc) + b
    return cross_entropy(logits, y)
`
			driver := `__loss = optimize(lambda: lenet_step(cur_x, cur_y))`
			return cnnSetup(e, seed, 1, 8, 4, 8, defs, driver)
		},
	})

	// ResNet (scaled stand-in for ResNet50): residual blocks with batch
	// normalization whose train/eval behaviour is selected by an attribute-
	// driven conditional — the exact pattern that breaks tracing (Fig. 6a).
	register(&Model{
		Name: "ResNet", Category: "CNN", Units: "images/s",
		BatchSize: 4, ItemsPerStep: 4, DCF: true, DT: true, IF: false,
		Build: func(e *core.Engine, seed uint64) (*Instance, error) {
			defs := `
class ResNet:
    def __init__(self):
        self.training = True
    def block(self, h, name):
        w1 = variable(name + "/w1", [8, 8, 3, 3])
        w2 = variable(name + "/w2", [8, 8, 3, 3])
        r = conv2d(h, w1, stride=1, pad=1)
        if self.training:
            r = batch_norm(r, name + "/bn1", True)
        else:
            r = batch_norm(r, name + "/bn1", False)
        r = relu(r)
        r = conv2d(r, w2, stride=1, pad=1)
        if self.training:
            r = batch_norm(r, name + "/bn2", True)
        else:
            r = batch_norm(r, name + "/bn2", False)
        return relu(r + h)
    def loss(self, x, y):
        stem = variable("resnet/stem", [8, 3, 3, 3])
        h = relu(conv2d(x, stem, stride=1, pad=1))
        h = self.block(h, "resnet/b1")
        h = self.block(h, "resnet/b2")
        h = avg_pool(h, 2, 2)
        flat = reshape(h, [4, 128])
        fc = variable("resnet/fc", [128, 4])
        return cross_entropy(matmul(flat, fc), y)

resnet_model = ResNet()
`
			driver := `__loss = optimize(lambda: resnet_model.loss(cur_x, cur_y))`
			return cnnSetup(e, seed, 3, 8, 4, 4, defs, driver)
		},
	})

	// Inception (scaled stand-in for Inception-v3): parallel convolution
	// branches concatenated channel-wise, plus the batch-norm conditional.
	register(&Model{
		Name: "Inception", Category: "CNN", Units: "images/s",
		BatchSize: 4, ItemsPerStep: 4, DCF: true, DT: true, IF: false,
		Build: func(e *core.Engine, seed uint64) (*Instance, error) {
			defs := `
class Inception:
    def __init__(self):
        self.training = True
    def module(self, h, name):
        w1 = variable(name + "/1x1", [4, 8, 1, 1])
        w3 = variable(name + "/3x3", [4, 8, 3, 3])
        w5 = variable(name + "/5x5", [4, 8, 5, 5])
        b1 = relu(conv2d(h, w1, stride=1, pad=0))
        b3 = relu(conv2d(h, w3, stride=1, pad=1))
        b5 = relu(conv2d(h, w5, stride=1, pad=2))
        pooled = avg_pool(h, 3, 1)
        wp = variable(name + "/pool", [4, 8, 1, 1])
        bp = relu(conv2d(pooled, wp, stride=1, pad=1))
        out = concat([b1, b3, b5, bp], 1)
        if self.training:
            out = batch_norm(out, name + "/bn", True)
        else:
            out = batch_norm(out, name + "/bn", False)
        return out
    def loss(self, x, y):
        stem = variable("incep/stem", [8, 3, 3, 3])
        h = relu(conv2d(x, stem, stride=1, pad=1))
        h = self.module(h, "incep/m1")
        h = avg_pool(h, 2, 2)
        flat = reshape(h, [4, 256])
        fc = variable("incep/fc", [256, 4])
        return cross_entropy(matmul(flat, fc), y)

incep_model = Inception()
`
			driver := `__loss = optimize(lambda: incep_model.loss(cur_x, cur_y))`
			return cnnSetup(e, seed, 3, 8, 4, 4, defs, driver)
		},
	})
}
