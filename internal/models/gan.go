package models

import (
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/minipy"
	"repro/internal/tensor"
)

func init() {
	// AN (the adversarial-nets model of the paper's GAN category): fully
	// connected generator and discriminator over synthetic MNIST-scale
	// images. Per-iteration noise is sampled outside optimize() (randn has no
	// graph representation, just like in TF) and captured; the discriminator
	// loss history is stored on the model object (IF ✓).
	register(&Model{
		Name: "AN", Category: "GAN", Units: "images/s",
		BatchSize: 8, ItemsPerStep: 8, DCF: false, DT: true, IF: true,
		Build: func(e *core.Engine, seed uint64) (*Instance, error) {
			defs := `
class AN:
    def __init__(self):
        self.d_loss = 0.0
    def gen(self, z):
        g1 = variable("an/g1", [8, 32])
        g2 = variable("an/g2", [32, 64])
        return tanh(matmul(tanh(matmul(z, g1)), g2))
    def disc(self, img):
        d1 = variable("an/d1", [64, 32])
        d2 = variable("an/d2", [32, 1])
        return sigmoid(matmul(tanh(matmul(img, d1)), d2))
    def loss(self, real, z):
        fake = self.gen(z)
        p_real = self.disc(real)
        p_fake = self.disc(fake)
        eps = constant(0.0001)
        d_loss = 0.0 - reduce_mean(log(p_real + eps)) - reduce_mean(log(1.0 - p_fake + eps))
        g_loss = 0.0 - reduce_mean(log(p_fake + eps))
        self.d_loss = d_loss
        return d_loss + g_loss

an_model = AN()
`
			if err := e.Run(defs); err != nil {
				return nil, err
			}
			ds := data.SynthImages(tensor.NewRNG(seed), 32, 1, 8, 8, 2)
			rng := tensor.NewRNG(seed + 9)
			driver := mustParse("__loss = optimize(lambda: an_model.loss(cur_real, cur_z))")
			const bs = 8
			inst := &Instance{Engine: e}
			inst.Step = func(i int) (float64, error) {
				x, _ := ds.Batch(i, bs)
				e.Define("cur_real", minipy.NewTensor(x.Reshape(bs, 64)))
				e.Define("cur_z", minipy.NewTensor(rng.Randn(bs, 8)))
				return runStep(e, driver)
			}
			return inst, nil
		},
	})

	// pix2pix: conditional image translation with a convolutional generator,
	// an L2 reconstruction term and an adversarial discriminator, batch size
	// 1 as in the paper's Table 2.
	register(&Model{
		Name: "pix2pix", Category: "GAN", Units: "images/s",
		BatchSize: 1, ItemsPerStep: 1, DCF: false, DT: true, IF: true,
		Build: func(e *core.Engine, seed uint64) (*Instance, error) {
			defs := `
class Pix2Pix:
    def __init__(self):
        self.g_loss = 0.0
    def gen(self, a):
        e1 = variable("p2p/e1", [8, 1, 3, 3])
        e2 = variable("p2p/e2", [8, 8, 3, 3])
        d1 = variable("p2p/d1", [1, 8, 3, 3])
        h = relu(conv2d(a, e1, stride=1, pad=1))
        h = relu(conv2d(h, e2, stride=1, pad=1))
        return tanh(conv2d(h, d1, stride=1, pad=1))
    def disc(self, img):
        c1 = variable("p2p/c1", [4, 1, 3, 3])
        fcw = variable("p2p/fc", [64, 1])
        h = relu(conv2d(img, c1, stride=1, pad=1))
        h = avg_pool(h, 2, 2)
        flat = reshape(h, [1, 64])
        return sigmoid(matmul(flat, fcw))
    def loss(self, a, b):
        fake = self.gen(a)
        l1 = reduce_mean((fake - b) ** 2.0)
        p_fake = self.disc(fake)
        p_real = self.disc(b)
        eps = constant(0.0001)
        adv = 0.0 - reduce_mean(log(p_real + eps)) - reduce_mean(log(1.0 - p_fake + eps))
        g = 0.0 - reduce_mean(log(p_fake + eps))
        self.g_loss = g
        return 10.0 * l1 + adv + g

p2p_model = Pix2Pix()
`
			if err := e.Run(defs); err != nil {
				return nil, err
			}
			ds := data.SynthPaired(tensor.NewRNG(seed), 16, 1, 8, 8)
			driver := mustParse("__loss = optimize(lambda: p2p_model.loss(cur_a, cur_b))")
			inst := &Instance{Engine: e}
			inst.Step = func(i int) (float64, error) {
				a, b := ds.Batch(i, 1)
				e.Define("cur_a", minipy.NewTensor(a))
				e.Define("cur_b", minipy.NewTensor(b))
				return runStep(e, driver)
			}
			return inst, nil
		},
	})
}
