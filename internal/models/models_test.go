package models

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRegistryHasAllElevenModels(t *testing.T) {
	names := Names()
	if len(names) != 11 {
		t.Fatalf("registry has %d models: %v", len(names), names)
	}
	want := map[string]bool{
		"LeNet": true, "ResNet": true, "Inception": true,
		"LSTM": true, "LM": true,
		"TreeRNN": true, "TreeLSTM": true,
		"A3C": true, "PPO": true,
		"AN": true, "pix2pix": true,
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected model %q", n)
		}
	}
}

func TestTable2DynamicFeatureFlags(t *testing.T) {
	// The flags must match the paper's Table 2.
	type row struct{ dcf, dt, iff bool }
	want := map[string]row{
		"LeNet": {false, true, false}, "ResNet": {true, true, false},
		"Inception": {true, true, false},
		"LSTM":      {true, true, true}, "LM": {true, true, true},
		"TreeRNN": {true, true, true}, "TreeLSTM": {true, true, true},
		"A3C": {true, true, true}, "PPO": {false, true, true},
		"AN": {false, true, true}, "pix2pix": {false, true, true},
	}
	for name, w := range want {
		m, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.DCF != w.dcf || m.DT != w.dt || m.IF != w.iff {
			t.Errorf("%s flags DCF=%v DT=%v IF=%v, want %v %v %v",
				name, m.DCF, m.DT, m.IF, w.dcf, w.dt, w.iff)
		}
	}
}

// trainSteps runs n steps of a model under a config and returns the losses.
func trainSteps(t *testing.T, name string, cfg core.Config, n int) ([]float64, *core.Engine) {
	t.Helper()
	m, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(cfg)
	inst, err := m.Build(e, 42)
	if err != nil {
		t.Fatalf("%s build: %v", name, err)
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		loss, err := inst.Step(i)
		if err != nil {
			t.Fatalf("%s step %d: %v", name, i, err)
		}
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			t.Fatalf("%s step %d loss %v", name, i, loss)
		}
		out = append(out, loss)
	}
	return out, e
}

// Every model must run under all three engines (except the documented trace
// failures) and produce finite losses. Janus must actually use graphs for
// convertible models.
func TestAllModelsRunOnImperativeEngine(t *testing.T) {
	for _, m := range All() {
		t.Run(m.Name, func(t *testing.T) {
			losses, _ := trainSteps(t, m.Name, core.Config{Mode: core.Imperative, LR: 0.05, Seed: 1}, 4)
			if len(losses) != 4 {
				t.Fatal("missing losses")
			}
		})
	}
}

func TestAllModelsRunOnJanusEngine(t *testing.T) {
	for _, m := range All() {
		t.Run(m.Name, func(t *testing.T) {
			cfg := core.DefaultJanusConfig()
			cfg.LR = 0.05
			cfg.Seed = 1
			_, e := trainSteps(t, m.Name, cfg, 7)
			if e.Stats().GraphSteps == 0 {
				t.Fatalf("%s never ran on the graph executor: %+v", m.Name, e.Stats())
			}
		})
	}
}

func TestModelsConvergeUnderJanus(t *testing.T) {
	if testing.Short() {
		t.Skip("training in short mode")
	}
	// A representative subset must show decreasing loss under JANUS.
	for _, name := range []string{"LeNet", "LSTM", "TreeRNN"} {
		t.Run(name, func(t *testing.T) {
			cfg := core.DefaultJanusConfig()
			cfg.LR = 0.1
			cfg.Seed = 2
			losses, _ := trainSteps(t, name, cfg, 30)
			first := avg(losses[:5])
			last := avg(losses[len(losses)-5:])
			if last >= first {
				t.Fatalf("%s loss did not decrease: %.4f -> %.4f", name, first, last)
			}
		})
	}
}

func avg(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestJanusMatchesImperativeOnLeNet(t *testing.T) {
	impLosses, _ := trainSteps(t, "LeNet", core.Config{Mode: core.Imperative, LR: 0.05, Seed: 9}, 8)
	cfg := core.DefaultJanusConfig()
	cfg.LR = 0.05
	cfg.Seed = 9
	janLosses, _ := trainSteps(t, "LeNet", cfg, 8)
	for i := range impLosses {
		if math.Abs(impLosses[i]-janLosses[i]) > 1e-6 {
			t.Fatalf("step %d: imperative %.9f janus %.9f", i, impLosses[i], janLosses[i])
		}
	}
}

func TestTraceFailsOnTreeLSTMRecursion(t *testing.T) {
	m, _ := Get("TreeLSTM")
	e := core.NewEngine(core.Config{Mode: core.Trace, LR: 0.05, Seed: 3})
	inst, err := m.Build(e, 42)
	if err != nil {
		t.Fatal(err)
	}
	var stepErr error
	for i := 0; i < 3 && stepErr == nil; i++ {
		_, stepErr = inst.Step(i)
	}
	if stepErr == nil || !strings.Contains(stepErr.Error(), "recursive") {
		t.Fatalf("trace should fail on recursion, got %v", stepErr)
	}
}

func TestThroughputMeasurement(t *testing.T) {
	m, _ := Get("LeNet")
	cfg := core.DefaultJanusConfig()
	cfg.Seed = 4
	tput, err := Throughput(m, cfg, 42, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tput <= 0 {
		t.Fatalf("throughput %v", tput)
	}
}

func TestCurveRecordsMonotonicTime(t *testing.T) {
	m, _ := Get("LeNet")
	pts, _, err := Curve(m, core.Config{Mode: core.Imperative, LR: 0.05, Seed: 5}, 42, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Seconds < pts[i-1].Seconds {
			t.Fatal("time went backwards")
		}
	}
}

func TestRLEvalImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("training in short mode")
	}
	m, _ := Get("A3C")
	cfg := core.DefaultJanusConfig()
	cfg.LR = 0.05
	cfg.Seed = 6
	e := core.NewEngine(cfg)
	inst, err := m.Build(e, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := inst.Step(i); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	score, err := inst.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if score <= 0 {
		t.Fatalf("eval score %v", score)
	}
}
