package models

import (
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/minipy"
	"repro/internal/tensor"
)

// lstmDefs parameterizes the shared LSTM program: a manual cell, a Python
// loop over timesteps, and hidden state carried across sequences through
// object attributes (the Figure 1 pattern: DCF + DT + IF).
const lstmDefs = `
class LSTMNet:
    def __init__(self, prefix, hidden, vocab, batch):
        self.prefix = prefix
        self.hidden = hidden
        self.vocab = vocab
        self.batch = batch
        self.h = zeros([batch, hidden])
        self.c = zeros([batch, hidden])
    def cell(self, x, h, c):
        wx = variable(self.prefix + "/wx", [self.hidden, 4 * self.hidden])
        wh = variable(self.prefix + "/wh", [self.hidden, 4 * self.hidden])
        gates = matmul(x, wx) + matmul(h, wh)
        i = sigmoid(slice_cols(gates, 0, self.hidden))
        f = sigmoid(slice_cols(gates, self.hidden, 2 * self.hidden))
        g = tanh(slice_cols(gates, 2 * self.hidden, 3 * self.hidden))
        o = sigmoid(slice_cols(gates, 3 * self.hidden, 4 * self.hidden))
        nc = f * c + i * g
        nh = o * tanh(nc)
        return nh, nc
    def loss(self, inputs, targets):
        emb = variable(self.prefix + "/emb", [self.vocab, self.hidden])
        proj = variable(self.prefix + "/proj", [self.hidden, self.vocab])
        h = self.h
        c = self.c
        total = constant(0.0)
        steps = len(inputs)
        for t in range(steps):
            x = embedding(emb, inputs[t])
            h, c = self.cell(x, h, c)
            logits = matmul(h, proj)
            total = total + cross_entropy(logits, targets[t])
        self.h = h
        self.c = c
        return total / float(steps)
`

// rnnModel builds either LSTM or LM with different scales.
func rnnModel(name string, hidden, vocab, batch, seqLen int) *Model {
	return &Model{
		Name: name, Category: "RNN", Units: "words/s",
		BatchSize: batch, ItemsPerStep: batch * seqLen, DCF: true, DT: true, IF: true,
		Build: func(e *core.Engine, seed uint64) (*Instance, error) {
			setup := lstmDefs + "\nnet_" + name + ` = LSTMNet("` + name + `", ` +
				itoa(hidden) + ", " + itoa(vocab) + ", " + itoa(batch) + ")\n"
			if err := e.Run(setup); err != nil {
				return nil, err
			}
			corpus := data.SynthSequences(tensor.NewRNG(seed), 32, seqLen+1, vocab)
			driver := mustParse("__loss = optimize(lambda: net_" + name + ".loss(cur_inputs, cur_targets))")
			inst := &Instance{Engine: e}
			inst.Step = func(i int) (float64, error) {
				// Per-timestep token id lists and one-hot targets for a batch
				// of sequences.
				inputs := make([]minipy.Value, seqLen)
				targets := make([]minipy.Value, seqLen)
				for t := 0; t < seqLen; t++ {
					// Token ids travel as tensors (as in TF), so the cache
					// signature depends only on shapes, not token values.
					ids := make([]float64, batch)
					next := make([]int, batch)
					for b := 0; b < batch; b++ {
						seq := corpus.Tokens[(i*batch+b)%len(corpus.Tokens)]
						ids[b] = float64(seq[t])
						next[b] = seq[t+1]
					}
					inputs[t] = minipy.NewTensor(tensor.FromSlice(ids))
					targets[t] = minipy.NewTensor(tensor.OneHot(next, vocab))
				}
				e.Define("cur_inputs", &minipy.ListVal{Items: inputs})
				e.Define("cur_targets", &minipy.ListVal{Items: targets})
				return runStep(e, driver)
			}
			return inst, nil
		},
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func init() {
	// LSTM: PTB-scale stand-in (small hidden size, fine-grained ops).
	register(rnnModel("LSTM", 16, 32, 4, 8))
	// LM: 1B-words-scale stand-in (larger hidden/vocab, coarser ops).
	register(rnnModel("LM", 48, 128, 8, 10))
}
