package autodiff

import (
	"math"
	"testing"

	"repro/internal/tensor"
	"repro/internal/vars"
)

// numGrad computes dLoss/dParam[i] by central differences, rebuilding the
// whole forward pass each evaluation.
func numGrad(param *tensor.Tensor, i int, loss func() float64) float64 {
	const h = 1e-6
	orig := param.Data()[i]
	param.Data()[i] = orig + h
	up := loss()
	param.Data()[i] = orig - h
	dn := loss()
	param.Data()[i] = orig
	return (up - dn) / (2 * h)
}

func checkAll(t *testing.T, name string, param *tensor.Tensor, analytic *tensor.Tensor, loss func() float64, tol float64) {
	t.Helper()
	for i := range param.Data() {
		n := numGrad(param, i, loss)
		if err := CheckGrad(analytic.Data()[i], n, tol); err != nil {
			t.Fatalf("%s[%d]: %v", name, i, err)
		}
	}
}

func TestTapeAddMulChain(t *testing.T) {
	rng := tensor.NewRNG(1)
	w := rng.Randn(3)
	loss := func() float64 {
		tp := NewTape()
		wn := tp.Watch("w", w)
		y := tp.Mul(tp.Add(wn, Const(tensor.Full(2, 3))), wn) // (w+2)*w
		return tp.Sum(y).Value.Item()
	}
	tp := NewTape()
	wn := tp.Watch("w", w)
	l := tp.Sum(tp.Mul(tp.Add(wn, Const(tensor.Full(2, 3))), wn))
	g := tp.Gradient(l)["w"]
	// d/dw [(w+2)w] = 2w + 2
	want := tensor.AddScalar(tensor.MulScalar(w, 2), 2)
	if !tensor.AllClose(g, want, 1e-9) {
		t.Fatalf("got %v want %v", g, want)
	}
	checkAll(t, "w", w, g, loss, 1e-5)
}

func TestTapeMatMulGrad(t *testing.T) {
	rng := tensor.NewRNG(2)
	a := rng.Randn(2, 3)
	b := rng.Randn(3, 4)
	build := func(tp *Tape) *Node {
		an := tp.Watch("a", a)
		bn := tp.Watch("b", b)
		return tp.Sum(tp.MatMul(an, bn))
	}
	tp := NewTape()
	grads := tp.Gradient(build(tp))
	loss := func() float64 { tp := NewTape(); return build(tp).Value.Item() }
	checkAll(t, "a", a, grads["a"], loss, 1e-5)
	checkAll(t, "b", b, grads["b"], loss, 1e-5)
}

func TestTapeBroadcastGrad(t *testing.T) {
	rng := tensor.NewRNG(3)
	x := rng.Randn(4, 3)
	bias := rng.Randn(3)
	build := func(tp *Tape) *Node {
		bn := tp.Watch("b", bias)
		return tp.Sum(tp.Mul(tp.Add(Const(x), bn), tp.Add(Const(x), bn)))
	}
	tp := NewTape()
	g := tp.Gradient(build(tp))["b"]
	if !tensor.ShapeEq(g.Shape(), []int{3}) {
		t.Fatalf("broadcast grad shape %v", g.Shape())
	}
	loss := func() float64 { tp := NewTape(); return build(tp).Value.Item() }
	checkAll(t, "bias", bias, g, loss, 1e-5)
}

func TestTapeActivationsGrad(t *testing.T) {
	rng := tensor.NewRNG(4)
	x := rng.Randn(5)
	for _, tc := range []struct {
		name string
		f    func(tp *Tape, n *Node) *Node
	}{
		{"relu", func(tp *Tape, n *Node) *Node { return tp.ReLU(n) }},
		{"sigmoid", func(tp *Tape, n *Node) *Node { return tp.Sigmoid(n) }},
		{"tanh", func(tp *Tape, n *Node) *Node { return tp.Tanh(n) }},
		{"exp", func(tp *Tape, n *Node) *Node { return tp.Exp(n) }},
		{"neg", func(tp *Tape, n *Node) *Node { return tp.Neg(n) }},
		{"pow2", func(tp *Tape, n *Node) *Node { return tp.Pow(n, 2) }},
	} {
		build := func(tp *Tape) *Node { return tp.Sum(tc.f(tp, tp.Watch("x", x))) }
		tp := NewTape()
		g := tp.Gradient(build(tp))["x"]
		loss := func() float64 { tp := NewTape(); return build(tp).Value.Item() }
		checkAll(t, tc.name, x, g, loss, 1e-4)
	}
}

func TestTapeLogGrad(t *testing.T) {
	x := tensor.FromSlice([]float64{0.5, 1.5, 3})
	build := func(tp *Tape) *Node { return tp.Sum(tp.Log(tp.Watch("x", x))) }
	tp := NewTape()
	g := tp.Gradient(build(tp))["x"]
	loss := func() float64 { tp := NewTape(); return build(tp).Value.Item() }
	checkAll(t, "log", x, g, loss, 1e-5)
}

func TestTapeDivGrad(t *testing.T) {
	a := tensor.FromSlice([]float64{1, 2, 3})
	b := tensor.FromSlice([]float64{2, 4, 5})
	build := func(tp *Tape) *Node {
		return tp.Sum(tp.Div(tp.Watch("a", a), tp.Watch("b", b)))
	}
	tp := NewTape()
	gs := tp.Gradient(build(tp))
	loss := func() float64 { tp := NewTape(); return build(tp).Value.Item() }
	checkAll(t, "a", a, gs["a"], loss, 1e-5)
	checkAll(t, "b", b, gs["b"], loss, 1e-5)
}

func TestTapeSoftmaxCrossEntropyGrad(t *testing.T) {
	rng := tensor.NewRNG(5)
	logits := rng.Randn(3, 4)
	labels := tensor.OneHot([]int{0, 2, 3}, 4)
	build := func(tp *Tape) *Node {
		return tp.CrossEntropy(tp.Watch("l", logits), labels)
	}
	tp := NewTape()
	g := tp.Gradient(build(tp))["l"]
	loss := func() float64 { tp := NewTape(); return build(tp).Value.Item() }
	checkAll(t, "logits", logits, g, loss, 1e-5)
}

func TestTapeSoftmaxGrad(t *testing.T) {
	rng := tensor.NewRNG(15)
	x := rng.Randn(2, 3)
	w := rng.Randn(2, 3)
	build := func(tp *Tape) *Node {
		return tp.Sum(tp.Mul(tp.Softmax(tp.Watch("x", x)), Const(w)))
	}
	tp := NewTape()
	g := tp.Gradient(build(tp))["x"]
	loss := func() float64 { tp := NewTape(); return build(tp).Value.Item() }
	checkAll(t, "softmax-in", x, g, loss, 1e-5)
}

func TestTapeMSEGrad(t *testing.T) {
	rng := tensor.NewRNG(6)
	p := rng.Randn(4)
	target := rng.Randn(4)
	build := func(tp *Tape) *Node { return tp.MSE(tp.Watch("p", p), target) }
	tp := NewTape()
	g := tp.Gradient(build(tp))["p"]
	loss := func() float64 { tp := NewTape(); return build(tp).Value.Item() }
	checkAll(t, "mse", p, g, loss, 1e-5)
}

func TestTapeConvPoolGrad(t *testing.T) {
	rng := tensor.NewRNG(7)
	x := rng.Randn(1, 1, 6, 6)
	w := rng.Randn(2, 1, 3, 3)
	build := func(tp *Tape) *Node {
		xn := tp.Watch("x", x)
		wn := tp.Watch("w", w)
		c := tp.Conv2D(xn, wn, 1, 1)
		p := tp.MaxPool2D(c, 2, 2)
		return tp.Sum(p)
	}
	tp := NewTape()
	gs := tp.Gradient(build(tp))
	loss := func() float64 { tp := NewTape(); return build(tp).Value.Item() }
	// Max pooling makes the loss piecewise-linear; gradcheck at random points
	// is fine with loose tolerance.
	checkAll(t, "w", w, gs["w"], loss, 1e-4)
}

func TestTapeConcatSliceGrad(t *testing.T) {
	rng := tensor.NewRNG(8)
	a := rng.Randn(2, 2)
	b := rng.Randn(2, 3)
	build := func(tp *Tape) *Node {
		an := tp.Watch("a", a)
		bn := tp.Watch("b", b)
		c := tp.Concat(1, an, bn)     // [2,5]
		s := tp.SliceAxis(c, 1, 1, 4) // depends on parts of both
		return tp.Sum(tp.Mul(s, s))
	}
	tp := NewTape()
	gs := tp.Gradient(build(tp))
	loss := func() float64 { tp := NewTape(); return build(tp).Value.Item() }
	checkAll(t, "a", a, gs["a"], loss, 1e-5)
	checkAll(t, "b", b, gs["b"], loss, 1e-5)
}

func TestTapeGatherGrad(t *testing.T) {
	rng := tensor.NewRNG(9)
	table := rng.Randn(5, 3)
	idx := []int{4, 0, 4}
	build := func(tp *Tape) *Node {
		tn := tp.Watch("t", table)
		g := tp.Gather(tn, idx)
		return tp.Sum(tp.Mul(g, g))
	}
	tp := NewTape()
	g := tp.Gradient(build(tp))["t"]
	loss := func() float64 { tp := NewTape(); return build(tp).Value.Item() }
	checkAll(t, "table", table, g, loss, 1e-5)
	// Row 1..3 were never gathered: zero gradient.
	for r := 1; r <= 3; r++ {
		for c := 0; c < 3; c++ {
			if g.At(r, c) != 0 {
				t.Fatalf("ungathered row %d has gradient", r)
			}
		}
	}
}

func TestTapeReuseAccumulatesFanOut(t *testing.T) {
	x := tensor.FromSlice([]float64{3})
	tp := NewTape()
	xn := tp.Watch("x", x)
	y := tp.Add(tp.Mul(xn, xn), xn) // x^2 + x -> grad 2x+1 = 7
	g := tp.Gradient(tp.Sum(y))["x"]
	if math.Abs(g.At(0)-7) > 1e-9 {
		t.Fatalf("fan-out grad %v want 7", g.At(0))
	}
}

func TestGradientOfUntrackedLossIsZero(t *testing.T) {
	tp := NewTape()
	tp.Watch("w", tensor.FromSlice([]float64{1, 2}))
	g := tp.Gradient(Const(tensor.Scalar(5)))["w"]
	if !tensor.Equal(g, tensor.Zeros(2)) {
		t.Fatalf("got %v", g)
	}
}

func TestTapeTransposeReshapeGrad(t *testing.T) {
	rng := tensor.NewRNG(10)
	a := rng.Randn(2, 3)
	build := func(tp *Tape) *Node {
		an := tp.Watch("a", a)
		tr := tp.Transpose(an)
		r := tp.Reshape(tr, 6)
		return tp.Sum(tp.Mul(r, r))
	}
	tp := NewTape()
	g := tp.Gradient(build(tp))["a"]
	loss := func() float64 { tp := NewTape(); return build(tp).Value.Item() }
	checkAll(t, "a", a, g, loss, 1e-5)
}

// --- optimizers ------------------------------------------------------------

func TestSGDStep(t *testing.T) {
	store := vars.NewStore()
	store.Set("w", tensor.FromSlice([]float64{1, 2}))
	(&SGD{LR: 0.5}).Apply(store, map[string]*tensor.Tensor{"w": tensor.FromSlice([]float64{2, 4})})
	want := tensor.FromSlice([]float64{0, 0})
	if !tensor.Equal(store.MustGet("w"), want) {
		t.Fatalf("got %v", store.MustGet("w"))
	}
}

func TestSGDClipping(t *testing.T) {
	store := vars.NewStore()
	store.Set("w", tensor.FromSlice([]float64{0}))
	g := map[string]*tensor.Tensor{"w": tensor.FromSlice([]float64{100})}
	(&SGD{LR: 1, Clip: 1}).Apply(store, g)
	if math.Abs(store.MustGet("w").At(0)+1) > 1e-9 {
		t.Fatalf("clip failed: %v", store.MustGet("w"))
	}
}

func TestMomentumAccumulates(t *testing.T) {
	store := vars.NewStore()
	store.Set("w", tensor.FromSlice([]float64{0}))
	m := &Momentum{LR: 1, Mu: 0.5}
	g := map[string]*tensor.Tensor{"w": tensor.FromSlice([]float64{1})}
	m.Apply(store, g) // v=1, w=-1
	m.Apply(store, g) // v=1.5, w=-2.5
	if math.Abs(store.MustGet("w").At(0)+2.5) > 1e-9 {
		t.Fatalf("got %v", store.MustGet("w"))
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	store := vars.NewStore()
	store.Set("w", tensor.FromSlice([]float64{5}))
	opt := NewAdam(0.3)
	for i := 0; i < 300; i++ {
		w := store.MustGet("w")
		g := map[string]*tensor.Tensor{"w": tensor.MulScalar(w, 2)} // d/dw w^2
		opt.Apply(store, g)
	}
	if math.Abs(store.MustGet("w").At(0)) > 1e-2 {
		t.Fatalf("adam failed to minimize: %v", store.MustGet("w"))
	}
}

func TestGlobalNorm(t *testing.T) {
	g := map[string]*tensor.Tensor{
		"a": tensor.FromSlice([]float64{3}),
		"b": tensor.FromSlice([]float64{4}),
	}
	if math.Abs(GlobalNorm(g)-5) > 1e-12 {
		t.Fatalf("got %v", GlobalNorm(g))
	}
}

// Train a tiny linear regression end to end through the tape: the canonical
// integration test that the eager engine can actually learn.
func TestTapeLinearRegressionLearns(t *testing.T) {
	rng := tensor.NewRNG(77)
	trueW := tensor.FromRows([][]float64{{2}, {-3}})
	store := vars.NewStore()
	store.Set("w", rng.Randn(2, 1))
	opt := &SGD{LR: 0.1}
	var last float64
	for i := 0; i < 200; i++ {
		x := rng.Randn(8, 2)
		y := tensor.MatMul(x, trueW)
		tp := NewTape()
		wn := tp.Watch("w", store.MustGet("w"))
		pred := tp.MatMul(Const(x), wn)
		loss := tp.MSE(pred, y)
		opt.Apply(store, tp.Gradient(loss))
		last = loss.Value.Item()
	}
	if last > 1e-3 {
		t.Fatalf("did not converge: loss %v", last)
	}
	if !tensor.AllClose(store.MustGet("w"), trueW, 1e-2) {
		t.Fatalf("weights %v", store.MustGet("w"))
	}
}

// TestGradientStreamEmitsPerTensorInBackpropOrder checks the streaming
// contract: every watched variable is emitted exactly once, with gradients
// identical to Gradient(), and variables used later in the forward pass
// (the top layers) finalize before earlier ones — the property that lets a
// distributed worker overlap gradient pushes with backprop.
func TestGradientStreamEmitsPerTensorInBackpropOrder(t *testing.T) {
	build := func(tape *Tape) *Node {
		w1 := tape.Watch("w1", tensor.New([]int{2, 2}, []float64{1, 2, 3, 4}))
		x := Const(tensor.New([]int{1, 2}, []float64{1, -1}))
		h := tape.ReLU(tape.MatMul(x, w1))
		w2 := tape.Watch("w2", tensor.New([]int{2, 1}, []float64{0.5, -0.5}))
		return tape.Sum(tape.MatMul(h, w2))
	}

	ref := NewTape()
	want := ref.Gradient(build(ref))

	tape := NewTape()
	loss := build(tape)
	var order []string
	got := tape.GradientStream(loss, func(name string, g *tensor.Tensor) {
		order = append(order, name)
		if w, ok := want[name]; !ok || !tensor.AllClose(g, w, 1e-12) {
			t.Fatalf("streamed gradient for %q = %v, want %v", name, g, want[name])
		}
	})
	if len(order) != 2 {
		t.Fatalf("emitted %v, want both variables exactly once", order)
	}
	// w2 is used after w1 in the forward pass, so backprop finalizes it first.
	if order[0] != "w2" || order[1] != "w1" {
		t.Fatalf("emission order %v, want [w2 w1] (reverse forward order)", order)
	}
	for name, g := range want {
		if !tensor.AllClose(got[name], g, 1e-12) {
			t.Fatalf("returned map disagrees with Gradient() for %q", name)
		}
	}
}

// TestGradientStreamUntrackedLossEmitsZeros covers the zero-gradient path.
func TestGradientStreamUntrackedLossEmitsZeros(t *testing.T) {
	tape := NewTape()
	tape.Watch("w", tensor.New([]int{3}, []float64{1, 2, 3}))
	emitted := 0
	out := tape.GradientStream(Const(tensor.Scalar(1)), func(name string, g *tensor.Tensor) {
		emitted++
		if tensor.Sum(g).Item() != 0 {
			t.Fatalf("untracked loss produced nonzero gradient for %q: %v", name, g)
		}
	})
	if emitted != 1 || len(out) != 1 {
		t.Fatalf("emitted %d grads, returned %d, want 1 and 1", emitted, len(out))
	}
}
