// Package autodiff implements define-by-run reverse-mode automatic
// differentiation (a "gradient tape") over internal/tensor.
//
// This is the autodiff engine of the imperative executor: every tensor
// builtin invoked by the minipy interpreter records a backward closure on the
// active tape, exactly like TensorFlow Eager's GradientTape. The symbolic
// engines do NOT use this package — graph-mode gradients are generated
// structurally in internal/graph.
package autodiff

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
)

// nodeIDs issues process-globally unique node identifiers. Values that
// outlive one training iteration (RNN state stored on objects) carry nodes
// from an earlier tape; globally unique IDs guarantee such stale nodes can
// never alias a fresh tape's gradient slots — they simply receive no
// gradient, making cross-iteration state a clean gradient stop (the same
// semantics as the graph engines' PyGetAttr gradient stop).
var nodeIDs atomic.Int64

// Node is a tape-tracked tensor value. Nodes form an implicit DAG through the
// tape's recorded operations.
type Node struct {
	// Value is the forward result.
	Value *tensor.Tensor
	// id indexes the tape's gradient table; -1 means untracked (constant).
	// IDs are globally unique across tapes (see nodeIDs).
	id int64
}

// Const wraps a tensor as an untracked constant node.
func Const(t *tensor.Tensor) *Node { return &Node{Value: t, id: -1} }

// Tracked reports whether the node participates in differentiation.
func (n *Node) Tracked() bool { return n.id >= 0 }

// op is one recorded operation: when backprop reaches it, backward receives
// the output gradient and must accumulate into its input nodes via
// Tape.accum.
type op struct {
	outID    int64
	backward func(g *tensor.Tensor)
}

// Tape records operations during forward execution and replays them in
// reverse to compute gradients.
//
// Recording is thread-safe: the speculative executor runs dynamic graphs
// with parallel workers whose kernels record onto one shared trace tape.
// Gradient/backward replay is single-threaded (it runs after the forward
// pass completes).
type Tape struct {
	mu  sync.Mutex
	ops []op
	// watched maps variable names to their tape nodes so Gradient can report
	// per-variable gradients.
	watched map[string]*Node
	// bornAt records len(ops) at the moment a variable was watched. Ops
	// recorded before that moment cannot reference the node, so during
	// reverse replay a watched gradient is final as soon as the replay index
	// drops to the node's birth index — the basis for GradientStream's
	// per-tensor emission.
	bornAt map[int64]int
	grads  map[int64]*tensor.Tensor
}

// NewTape returns an empty tape.
func NewTape() *Tape {
	return &Tape{watched: make(map[string]*Node), bornAt: make(map[int64]int)}
}

// NewNode allocates a tracked node holding v.
func (t *Tape) NewNode(v *tensor.Tensor) *Node {
	return &Node{Value: v, id: nodeIDs.Add(1)}
}

// Watch registers a named variable (model parameter) with the tape and
// returns its tracked node. Watching the same name twice returns the original
// node.
func (t *Tape) Watch(name string, v *tensor.Tensor) *Node {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n, ok := t.watched[name]; ok {
		return n
	}
	n := t.NewNode(v)
	t.watched[name] = n
	t.bornAt[n.id] = len(t.ops)
	return n
}

// Record registers a backward closure for a tracked output node.
func (t *Tape) Record(out *Node, backward func(g *tensor.Tensor)) {
	if out == nil || !out.Tracked() {
		return
	}
	t.mu.Lock()
	t.ops = append(t.ops, op{outID: out.id, backward: backward})
	t.mu.Unlock()
}

// Accum adds g into the gradient accumulator for node n. It is exported for
// custom backward rules written outside this package (e.g. minipy builtins
// with approximate gradients).
func (t *Tape) Accum(n *Node, g *tensor.Tensor) { t.accum(n, g) }

// accum adds g into the gradient accumulator for node n.
func (t *Tape) accum(n *Node, g *tensor.Tensor) {
	if n == nil || !n.Tracked() {
		return
	}
	if cur, ok := t.grads[n.id]; ok {
		t.grads[n.id] = tensor.Add(cur, g)
	} else {
		t.grads[n.id] = g
	}
}

// Gradient runs backprop from the scalar loss node and returns the gradient
// of every watched variable (by name). Variables that did not influence the
// loss get zero gradients.
func (t *Tape) Gradient(loss *Node) map[string]*tensor.Tensor {
	return t.GradientStream(loss, nil)
}

// GradientStream runs backprop from the scalar loss node and invokes emit
// (when non-nil) for each watched variable the moment its gradient is final
// — i.e. as soon as no remaining backward op can contribute to it. Because
// replay runs in reverse recording order, variables recorded late in the
// forward pass (the top layers) finalize first, so a distributed worker can
// ship per-layer gradients to a parameter server while backprop is still
// descending through earlier layers. The full gradient map is also returned.
//
// Backprop is single-threaded; emit is called synchronously on the calling
// goroutine and should hand expensive work (network pushes) off to another
// goroutine to actually overlap communication with compute.
func (t *Tape) GradientStream(loss *Node, emit func(name string, g *tensor.Tensor)) map[string]*tensor.Tensor {
	// Watched variables ordered by descending birth index: the next one to
	// finalize is always at the front of the remainder.
	type watchedVar struct {
		name string
		n    *Node
		born int
	}
	order := make([]watchedVar, 0, len(t.watched))
	for name, n := range t.watched {
		order = append(order, watchedVar{name: name, n: n, born: t.bornAt[n.id]})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].born > order[j].born })

	out := make(map[string]*tensor.Tensor, len(t.watched))
	next := 0
	// finalize emits every not-yet-emitted variable whose birth index is >=
	// remaining: ops below that index existed before the variable and cannot
	// reference it.
	finalize := func(remaining int) {
		for next < len(order) && order[next].born >= remaining {
			v := order[next]
			g, ok := t.grads[v.n.id]
			if !ok {
				g = tensor.Zeros(v.n.Value.Shape()...)
			}
			out[v.name] = g
			if emit != nil {
				emit(v.name, g)
			}
			next++
		}
	}

	if !loss.Tracked() {
		// Loss does not depend on any tracked value; all grads are zero.
		t.grads = make(map[int64]*tensor.Tensor)
		finalize(0)
		return out
	}
	t.grads = make(map[int64]*tensor.Tensor)
	t.grads[loss.id] = tensor.Full(1, loss.Value.Shape()...)
	// Replay in reverse recording order. Recording order is a valid
	// topological order of the forward DAG because each op is recorded when
	// its output is produced.
	for i := len(t.ops) - 1; i >= 0; i-- {
		o := t.ops[i]
		if g, ok := t.grads[o.outID]; ok {
			o.backward(g)
		}
		finalize(i)
	}
	finalize(0)
	return out
}

// --- differentiable operations ---------------------------------------------
//
// Each helper computes the forward value eagerly and records the backward
// rule. Inputs may be constants (untracked); their gradients are skipped.

// Add returns a + b (broadcasting).
func (t *Tape) Add(a, b *Node) *Node {
	out := t.NewNode(tensor.Add(a.Value, b.Value))
	ash, bsh := a.Value.Shape(), b.Value.Shape()
	t.Record(out, func(g *tensor.Tensor) {
		t.accum(a, tensor.UnbroadcastTo(g, ash))
		t.accum(b, tensor.UnbroadcastTo(g, bsh))
	})
	return out
}

// Sub returns a - b.
func (t *Tape) Sub(a, b *Node) *Node {
	out := t.NewNode(tensor.Sub(a.Value, b.Value))
	ash, bsh := a.Value.Shape(), b.Value.Shape()
	t.Record(out, func(g *tensor.Tensor) {
		t.accum(a, tensor.UnbroadcastTo(g, ash))
		t.accum(b, tensor.UnbroadcastTo(tensor.Neg(g), bsh))
	})
	return out
}

// Mul returns a * b element-wise.
func (t *Tape) Mul(a, b *Node) *Node {
	out := t.NewNode(tensor.Mul(a.Value, b.Value))
	av, bv := a.Value, b.Value
	t.Record(out, func(g *tensor.Tensor) {
		t.accum(a, tensor.UnbroadcastTo(tensor.Mul(g, bv), av.Shape()))
		t.accum(b, tensor.UnbroadcastTo(tensor.Mul(g, av), bv.Shape()))
	})
	return out
}

// Div returns a / b element-wise.
func (t *Tape) Div(a, b *Node) *Node {
	out := t.NewNode(tensor.Div(a.Value, b.Value))
	av, bv := a.Value, b.Value
	t.Record(out, func(g *tensor.Tensor) {
		t.accum(a, tensor.UnbroadcastTo(tensor.Div(g, bv), av.Shape()))
		gb := tensor.Neg(tensor.Div(tensor.Mul(g, av), tensor.Mul(bv, bv)))
		t.accum(b, tensor.UnbroadcastTo(gb, bv.Shape()))
	})
	return out
}

// Pow returns a ** p for constant exponent p.
func (t *Tape) Pow(a *Node, p float64) *Node {
	out := t.NewNode(tensor.Pow(a.Value, tensor.Scalar(p)))
	av := a.Value
	t.Record(out, func(g *tensor.Tensor) {
		d := tensor.MulScalar(tensor.Pow(av, tensor.Scalar(p-1)), p)
		t.accum(a, tensor.Mul(g, d))
	})
	return out
}

// Neg returns -a.
func (t *Tape) Neg(a *Node) *Node {
	out := t.NewNode(tensor.Neg(a.Value))
	t.Record(out, func(g *tensor.Tensor) { t.accum(a, tensor.Neg(g)) })
	return out
}

// Maximum returns element-wise max(a, b); the subgradient routes to the
// winning side (ties go to a).
func (t *Tape) Maximum(a, b *Node) *Node { return t.extremum(a, b, true) }

// Minimum returns element-wise min(a, b).
func (t *Tape) Minimum(a, b *Node) *Node { return t.extremum(a, b, false) }

func (t *Tape) extremum(a, b *Node, isMax bool) *Node {
	var v *tensor.Tensor
	if isMax {
		v = tensor.Maximum(a.Value, b.Value)
	} else {
		v = tensor.Minimum(a.Value, b.Value)
	}
	out := t.NewNode(v)
	av, bv := a.Value, b.Value
	t.Record(out, func(g *tensor.Tensor) {
		mask := tensor.Zip(av, bv, func(x, y float64) float64 {
			if (isMax && x >= y) || (!isMax && x <= y) {
				return 1
			}
			return 0
		})
		inv := tensor.Zip(mask, mask, func(m, _ float64) float64 { return 1 - m })
		t.accum(a, tensor.UnbroadcastTo(tensor.Mul(g, mask), av.Shape()))
		t.accum(b, tensor.UnbroadcastTo(tensor.Mul(g, inv), bv.Shape()))
	})
	return out
}

// MatMul returns a x b for rank-2 nodes.
func (t *Tape) MatMul(a, b *Node) *Node {
	out := t.NewNode(tensor.MatMul(a.Value, b.Value))
	av, bv := a.Value, b.Value
	t.Record(out, func(g *tensor.Tensor) {
		t.accum(a, tensor.MatMul(g, tensor.Transpose(bv)))
		t.accum(b, tensor.MatMul(tensor.Transpose(av), g))
	})
	return out
}

// ReLU returns max(a, 0).
func (t *Tape) ReLU(a *Node) *Node {
	out := t.NewNode(tensor.ReLU(a.Value))
	av := a.Value
	t.Record(out, func(g *tensor.Tensor) { t.accum(a, tensor.ReLUGrad(av, g)) })
	return out
}

// Sigmoid returns the logistic function of a.
func (t *Tape) Sigmoid(a *Node) *Node {
	s := tensor.Sigmoid(a.Value)
	out := t.NewNode(s)
	t.Record(out, func(g *tensor.Tensor) {
		one := tensor.Full(1, s.Shape()...)
		t.accum(a, tensor.Mul(g, tensor.Mul(s, tensor.Sub(one, s))))
	})
	return out
}

// Tanh returns tanh(a).
func (t *Tape) Tanh(a *Node) *Node {
	v := tensor.Tanh(a.Value)
	out := t.NewNode(v)
	t.Record(out, func(g *tensor.Tensor) {
		one := tensor.Full(1, v.Shape()...)
		t.accum(a, tensor.Mul(g, tensor.Sub(one, tensor.Mul(v, v))))
	})
	return out
}

// Exp returns e**a.
func (t *Tape) Exp(a *Node) *Node {
	v := tensor.Exp(a.Value)
	out := t.NewNode(v)
	t.Record(out, func(g *tensor.Tensor) { t.accum(a, tensor.Mul(g, v)) })
	return out
}

// Log returns ln(a).
func (t *Tape) Log(a *Node) *Node {
	out := t.NewNode(tensor.Log(a.Value))
	av := a.Value
	t.Record(out, func(g *tensor.Tensor) { t.accum(a, tensor.Div(g, av)) })
	return out
}

// Sum reduces to a scalar.
func (t *Tape) Sum(a *Node) *Node {
	out := t.NewNode(tensor.Sum(a.Value))
	sh := a.Value.Shape()
	t.Record(out, func(g *tensor.Tensor) {
		t.accum(a, tensor.MulScalar(tensor.Full(1, sh...), g.Item()))
	})
	return out
}

// Mean reduces to the scalar mean.
func (t *Tape) Mean(a *Node) *Node {
	out := t.NewNode(tensor.Mean(a.Value))
	sh := a.Value.Shape()
	n := float64(a.Value.Size())
	t.Record(out, func(g *tensor.Tensor) {
		t.accum(a, tensor.MulScalar(tensor.Full(1, sh...), g.Item()/n))
	})
	return out
}

// Reshape changes the node's shape.
func (t *Tape) Reshape(a *Node, shape ...int) *Node {
	out := t.NewNode(a.Value.Reshape(shape...))
	orig := a.Value.Shape()
	t.Record(out, func(g *tensor.Tensor) { t.accum(a, g.Reshape(orig...)) })
	return out
}

// Transpose swaps the axes of a rank-2 node.
func (t *Tape) Transpose(a *Node) *Node {
	out := t.NewNode(tensor.Transpose(a.Value))
	t.Record(out, func(g *tensor.Tensor) { t.accum(a, tensor.Transpose(g)) })
	return out
}

// Concat joins nodes along axis.
func (t *Tape) Concat(axis int, ns ...*Node) *Node {
	ts := make([]*tensor.Tensor, len(ns))
	for i, n := range ns {
		ts[i] = n.Value
	}
	out := t.NewNode(tensor.Concat(axis, ts...))
	t.Record(out, func(g *tensor.Tensor) {
		off := 0
		ax := axis
		if ax < 0 {
			ax += g.Rank()
		}
		for _, n := range ns {
			w := n.Value.Shape()[ax]
			t.accum(n, tensor.SliceAxis(g, ax, off, off+w))
			off += w
		}
	})
	return out
}

// SliceAxis extracts [lo,hi) along axis.
func (t *Tape) SliceAxis(a *Node, axis, lo, hi int) *Node {
	out := t.NewNode(tensor.SliceAxis(a.Value, axis, lo, hi))
	sh := a.Value.Shape()
	t.Record(out, func(g *tensor.Tensor) {
		t.accum(a, tensor.PadSliceGrad(g, sh, axis, lo))
	})
	return out
}

// Softmax applies softmax along the last axis.
func (t *Tape) Softmax(a *Node) *Node {
	s := tensor.Softmax(a.Value)
	out := t.NewNode(s)
	t.Record(out, func(g *tensor.Tensor) {
		// dL/dx = s * (g - sum(g*s, lastAxis, keepdims))
		gs := tensor.Mul(g, s)
		sum := tensor.SumAxis(gs, -1)
		// Re-expand sum over the last axis.
		expanded := tensor.Zip(gs, reexpand(sum, s.Shape()), func(_, y float64) float64 { return y })
		t.accum(a, tensor.Mul(s, tensor.Sub(g, expanded)))
	})
	return out
}

// reexpand broadcasts a reduced-by-last-axis tensor back to shape.
func reexpand(sum *tensor.Tensor, shape []int) *tensor.Tensor {
	n := shape[len(shape)-1]
	out := tensor.Zeros(shape...)
	od, sd := out.Data(), sum.Data()
	for i := range sd {
		for j := 0; j < n; j++ {
			od[i*n+j] = sd[i]
		}
	}
	return out
}

// CrossEntropy computes mean softmax cross-entropy between logits and labels
// (labels are constant).
func (t *Tape) CrossEntropy(logits *Node, labels *tensor.Tensor) *Node {
	out := t.NewNode(tensor.CrossEntropy(logits.Value, labels))
	lv := logits.Value
	t.Record(out, func(g *tensor.Tensor) {
		t.accum(logits, tensor.MulScalar(tensor.CrossEntropyGrad(lv, labels), g.Item()))
	})
	return out
}

// MSE computes mean squared error against a constant target.
func (t *Tape) MSE(pred *Node, target *tensor.Tensor) *Node {
	out := t.NewNode(tensor.MSE(pred.Value, target))
	pv := pred.Value
	n := float64(pv.Size())
	t.Record(out, func(g *tensor.Tensor) {
		d := tensor.MulScalar(tensor.Sub(pv, target), 2/n*g.Item())
		t.accum(pred, d)
	})
	return out
}

// Conv2D performs a 2-D convolution with stride and padding.
func (t *Tape) Conv2D(x, w *Node, stride, pad int) *Node {
	out := t.NewNode(tensor.Conv2D(x.Value, w.Value, stride, pad))
	xv, wv := x.Value, w.Value
	t.Record(out, func(g *tensor.Tensor) {
		gx, gw := tensor.Conv2DGrad(xv, wv, g, stride, pad)
		t.accum(x, gx)
		t.accum(w, gw)
	})
	return out
}

// MaxPool2D applies max pooling.
func (t *Tape) MaxPool2D(x *Node, k, stride int) *Node {
	v, arg := tensor.MaxPool2D(x.Value, k, stride)
	out := t.NewNode(v)
	sh := x.Value.Shape()
	t.Record(out, func(g *tensor.Tensor) {
		t.accum(x, tensor.MaxPool2DGrad(sh, arg, g))
	})
	return out
}

// AvgPool2D applies average pooling.
func (t *Tape) AvgPool2D(x *Node, k, stride int) *Node {
	out := t.NewNode(tensor.AvgPool2D(x.Value, k, stride))
	sh := x.Value.Shape()
	t.Record(out, func(g *tensor.Tensor) {
		t.accum(x, tensor.AvgPool2DGrad(sh, k, stride, g))
	})
	return out
}

// Gather selects rows from an embedding table node.
func (t *Tape) Gather(table *Node, idx []int) *Node {
	out := t.NewNode(tensor.Gather(table.Value, idx))
	sh := table.Value.Shape()
	t.Record(out, func(g *tensor.Tensor) {
		t.accum(table, tensor.ScatterAddRows(sh, idx, g))
	})
	return out
}

// CheckGrad verifies dLoss/dParam numerically for a single parameter entry.
// Exposed for tests of higher layers.
func CheckGrad(analytic, numeric float64, tol float64) error {
	d := analytic - numeric
	if d < 0 {
		d = -d
	}
	if d > tol {
		return fmt.Errorf("autodiff: gradient mismatch: analytic %v numeric %v", analytic, numeric)
	}
	return nil
}
