package autodiff

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/tensor"
	"repro/internal/vars"
)

// Optimizer applies a gradient map to a parameter store. Both the imperative
// executor and the symbolic engines use these implementations, so parameter
// trajectories are comparable across engines. The stateful optimizers
// (Momentum, Adam) key their state by variable name, so an Apply carrying a
// single streamed gradient advances exactly that variable's state — the
// parameter server applies per-tensor pushes this way.
type Optimizer interface {
	// Apply updates every variable named in grads.
	Apply(store *vars.Store, grads map[string]*tensor.Tensor)
	// Name identifies the optimizer for logging.
	Name() string
}

// NewOptimizer builds an optimizer by name: "sgd" (or ""), "momentum"
// (mu 0.9), or "adam" (conventional betas). The parameter server uses it to
// construct per-shard server-side optimizer state from a config string.
func NewOptimizer(name string, lr float64) (Optimizer, error) {
	switch strings.ToLower(name) {
	case "", "sgd":
		return &SGD{LR: lr}, nil
	case "momentum":
		return &Momentum{LR: lr, Mu: 0.9}, nil
	case "adam":
		return NewAdam(lr), nil
	}
	return nil, fmt.Errorf("autodiff: unknown optimizer %q (want sgd, momentum, or adam)", name)
}

// SGD is stochastic gradient descent with optional gradient clipping by
// global norm (clip <= 0 disables).
type SGD struct {
	LR   float64
	Clip float64
}

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Apply implements Optimizer.
func (s *SGD) Apply(store *vars.Store, grads map[string]*tensor.Tensor) {
	scale := 1.0
	if s.Clip > 0 {
		n := GlobalNorm(grads)
		if n > s.Clip {
			scale = s.Clip / n
		}
	}
	for name, g := range grads {
		store.AssignSub(name, tensor.MulScalar(g, s.LR*scale))
	}
}

// Momentum is SGD with classical momentum.
type Momentum struct {
	LR       float64
	Mu       float64
	velocity map[string]*tensor.Tensor
}

// Name implements Optimizer.
func (m *Momentum) Name() string { return "momentum" }

// Apply implements Optimizer.
func (m *Momentum) Apply(store *vars.Store, grads map[string]*tensor.Tensor) {
	if m.velocity == nil {
		m.velocity = make(map[string]*tensor.Tensor)
	}
	for name, g := range grads {
		v, ok := m.velocity[name]
		if !ok {
			v = tensor.Zeros(g.Shape()...)
		}
		v = tensor.Add(tensor.MulScalar(v, m.Mu), g)
		m.velocity[name] = v
		store.AssignSub(name, tensor.MulScalar(v, m.LR))
	}
}

// Adam implements the Adam optimizer. The step counter behind bias
// correction is per variable, not per Apply call: a parameter server that
// receives one streamed gradient per Apply still bias-corrects each tensor
// by how many updates THAT tensor has seen.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	steps                 map[string]int
	m, v                  map[string]*tensor.Tensor
}

// NewAdam returns Adam with conventional defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// Apply implements Optimizer.
func (a *Adam) Apply(store *vars.Store, grads map[string]*tensor.Tensor) {
	if a.m == nil {
		a.m = make(map[string]*tensor.Tensor)
		a.v = make(map[string]*tensor.Tensor)
		a.steps = make(map[string]int)
	}
	for name, g := range grads {
		m, ok := a.m[name]
		if !ok {
			m = tensor.Zeros(g.Shape()...)
			a.v[name] = tensor.Zeros(g.Shape()...)
		}
		v := a.v[name]
		a.steps[name]++
		bc1 := 1 - math.Pow(a.Beta1, float64(a.steps[name]))
		bc2 := 1 - math.Pow(a.Beta2, float64(a.steps[name]))
		m = tensor.Add(tensor.MulScalar(m, a.Beta1), tensor.MulScalar(g, 1-a.Beta1))
		v = tensor.Add(tensor.MulScalar(v, a.Beta2), tensor.MulScalar(tensor.Mul(g, g), 1-a.Beta2))
		a.m[name], a.v[name] = m, v
		mh := tensor.MulScalar(m, 1/bc1)
		vh := tensor.MulScalar(v, 1/bc2)
		upd := tensor.Div(mh, tensor.AddScalar(tensor.Sqrt(vh), a.Eps))
		store.AssignSub(name, tensor.MulScalar(upd, a.LR))
	}
}

// OptimizerState is a serializable snapshot of an optimizer's per-variable
// state: slot tensors keyed "slot/varname" (velocity, Adam moments) and
// per-variable step counts (Adam bias correction). The parameter server
// snapshots it per shard so a failed-over shard resumes mid-trajectory
// instead of resetting momentum and bias correction to zero.
type OptimizerState struct {
	Tensors map[string]*tensor.Tensor
	Steps   map[string]int
}

// ExportState snapshots the optimizer's mutable state. The returned maps
// share the state tensors — safe, because every Apply path replaces slot
// tensors rather than mutating them in place.
func ExportState(o Optimizer) OptimizerState {
	st := OptimizerState{Tensors: map[string]*tensor.Tensor{}, Steps: map[string]int{}}
	switch v := o.(type) {
	case *Momentum:
		for name, t := range v.velocity {
			st.Tensors["vel/"+name] = t
		}
	case *Adam:
		for name, t := range v.m {
			st.Tensors["m/"+name] = t
		}
		for name, t := range v.v {
			st.Tensors["v/"+name] = t
		}
		for name, n := range v.steps {
			st.Steps[name] = n
		}
	}
	return st
}

// ImportState restores a snapshot taken by ExportState into o, replacing any
// existing state. Slot keys that don't match o's layout are ignored, so
// restoring an SGD snapshot into SGD (no state) is a no-op and a corrupt key
// can't poison the maps with misnamed slots.
func ImportState(o Optimizer, st OptimizerState) {
	switch v := o.(type) {
	case *Momentum:
		v.velocity = make(map[string]*tensor.Tensor)
		for key, t := range st.Tensors {
			if name, ok := strings.CutPrefix(key, "vel/"); ok {
				v.velocity[name] = t
			}
		}
	case *Adam:
		v.m = make(map[string]*tensor.Tensor)
		v.v = make(map[string]*tensor.Tensor)
		v.steps = make(map[string]int)
		for key, t := range st.Tensors {
			if name, ok := strings.CutPrefix(key, "m/"); ok {
				v.m[name] = t
			} else if name, ok := strings.CutPrefix(key, "v/"); ok {
				v.v[name] = t
			}
		}
		for name, n := range st.Steps {
			v.steps[name] = n
		}
	}
}

// GlobalNorm returns the L2 norm over all gradients.
func GlobalNorm(grads map[string]*tensor.Tensor) float64 {
	s := 0.0
	for _, g := range grads {
		for _, v := range g.Data() {
			s += v * v
		}
	}
	return math.Sqrt(s)
}
