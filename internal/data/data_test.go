package data

import (
	"testing"

	"repro/internal/minipy"
	"repro/internal/tensor"
)

func TestSynthImagesShapesAndLabels(t *testing.T) {
	d := SynthImages(tensor.NewRNG(1), 20, 1, 8, 8, 4)
	if len(d.X) != 20 || len(d.Y) != 20 {
		t.Fatalf("count %d/%d", len(d.X), len(d.Y))
	}
	for i, x := range d.X {
		if !tensor.ShapeEq(x.Shape(), []int{1, 8, 8}) {
			t.Fatalf("image %d shape %v", i, x.Shape())
		}
		if d.Y[i] < 0 || d.Y[i] >= 4 {
			t.Fatalf("label %d out of range", d.Y[i])
		}
	}
	x, y := d.Batch(0, 5)
	if !tensor.ShapeEq(x.Shape(), []int{5, 1, 8, 8}) || !tensor.ShapeEq(y.Shape(), []int{5, 4}) {
		t.Fatalf("batch shapes %v %v", x.Shape(), y.Shape())
	}
	// Batches wrap deterministically.
	x2, _ := d.Batch(4, 5) // starts at index 20 % 20 = 0
	if !tensor.Equal(x, x2) {
		t.Fatal("wraparound batch differs")
	}
}

func TestSynthImagesClassesAreSeparable(t *testing.T) {
	d := SynthImages(tensor.NewRNG(2), 40, 1, 8, 8, 2)
	// Mean image of class 0 must differ from class 1 substantially.
	m := map[int]*tensor.Tensor{0: tensor.Zeros(1, 8, 8), 1: tensor.Zeros(1, 8, 8)}
	n := map[int]int{}
	for i, x := range d.X {
		m[d.Y[i]] = tensor.Add(m[d.Y[i]], x)
		n[d.Y[i]]++
	}
	if n[0] == 0 || n[1] == 0 {
		t.Skip("degenerate class split")
	}
	d0 := tensor.MulScalar(m[0], 1/float64(n[0]))
	d1 := tensor.MulScalar(m[1], 1/float64(n[1]))
	diff := tensor.Sum(tensor.Abs(tensor.Sub(d0, d1))).Item()
	if diff < 1 {
		t.Fatalf("classes not separable: diff %v", diff)
	}
}

func TestSynthSequencesStructure(t *testing.T) {
	s := SynthSequences(tensor.NewRNG(3), 10, 15, 32)
	if len(s.Tokens) != 10 {
		t.Fatalf("count %d", len(s.Tokens))
	}
	for _, seq := range s.Tokens {
		if len(seq) != 15 {
			t.Fatalf("length %d", len(seq))
		}
		for _, tok := range seq {
			if tok < 0 || tok >= 32 {
				t.Fatalf("token %d out of range", tok)
			}
		}
	}
	// Markov structure: the corpus must be more predictable than uniform.
	counts := map[[2]int]int{}
	total := 0
	for _, seq := range s.Tokens {
		for i := 0; i+1 < len(seq); i++ {
			counts[[2]int{seq[i], seq[i+1]}]++
			total++
		}
	}
	maxFrac := 0.0
	perFirst := map[int]int{}
	for k, c := range counts {
		perFirst[k[0]] += c
		_ = c
	}
	for k, c := range counts {
		f := float64(c) / float64(perFirst[k[0]])
		if f > maxFrac {
			maxFrac = f
		}
	}
	if maxFrac < 0.5 {
		t.Fatalf("no Markov structure: max conditional freq %v", maxFrac)
	}
	_ = total
}

func TestSynthTreesValidStructure(t *testing.T) {
	trees := SynthTrees(tensor.NewRNG(4), 20, 3, 8, 100)
	for _, tr := range trees {
		var check func(n *Tree)
		check = func(n *Tree) {
			if n.Leaf {
				if n.Left != nil || n.Right != nil {
					t.Fatal("leaf with children")
				}
				if n.Word < 0 || n.Word >= 100 {
					t.Fatalf("word %d", n.Word)
				}
				return
			}
			if n.Left == nil || n.Right == nil {
				t.Fatal("internal node missing children")
			}
			check(n.Left)
			check(n.Right)
		}
		check(tr)
		if tr.Size() < 5 { // 3 leaves -> >= 5 nodes
			t.Fatalf("tree too small: %d", tr.Size())
		}
		if tr.Depth() < 2 {
			t.Fatal("tree too shallow")
		}
		if tr.Label != 0 && tr.Label != 1 {
			t.Fatalf("label %d", tr.Label)
		}
	}
}

func TestTreeToMinipyObjectGraph(t *testing.T) {
	cls := &minipy.ClassVal{Name: "Node", Methods: map[string]*minipy.FuncVal{}}
	tr := SynthTrees(tensor.NewRNG(5), 1, 4, 4, 10)[0]
	obj := tr.ToMinipy(cls)
	if obj.Attrs["leaf"] != minipy.BoolVal(false) {
		t.Fatal("root should be internal")
	}
	left, ok := obj.Attrs["left"].(*minipy.ObjectVal)
	if !ok {
		t.Fatalf("left child is %T", obj.Attrs["left"])
	}
	_ = left
	// Count leaves through the object graph; must equal the tree's.
	var countLeaves func(o *minipy.ObjectVal) int
	countLeaves = func(o *minipy.ObjectVal) int {
		if o.Attrs["leaf"] == minipy.BoolVal(true) {
			return 1
		}
		return countLeaves(o.Attrs["left"].(*minipy.ObjectVal)) + countLeaves(o.Attrs["right"].(*minipy.ObjectVal))
	}
	if countLeaves(obj) != 4 {
		t.Fatalf("leaves %d want 4", countLeaves(obj))
	}
}

func TestSynthPaired(t *testing.T) {
	p := SynthPaired(tensor.NewRNG(6), 4, 1, 6, 6)
	if len(p.A) != 4 || len(p.B) != 4 {
		t.Fatal("pair count")
	}
	a, b := p.Batch(0, 2)
	if !tensor.ShapeEq(a.Shape(), []int{2, 1, 6, 6}) || !tensor.ShapeEq(b.Shape(), []int{2, 1, 6, 6}) {
		t.Fatalf("shapes %v %v", a.Shape(), b.Shape())
	}
	// B is a deterministic function of A: regenerating must match.
	p2 := SynthPaired(tensor.NewRNG(6), 4, 1, 6, 6)
	if !tensor.Equal(p.B[0], p2.B[0]) {
		t.Fatal("pairing not deterministic")
	}
}
