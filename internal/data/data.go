// Package data provides deterministic synthetic datasets standing in for the
// paper's evaluation corpora (MNIST, ImageNet, PTB, 1B-words, SST, Facades).
// Each generator produces data with the same *shape structure* as the
// original — image batches, token sequences, labeled binary trees, paired
// image translation sets — so every engine exercises identical code paths;
// see DESIGN.md §2 for the substitution rationale.
package data

import (
	"math"

	"repro/internal/minipy"
	"repro/internal/tensor"
)

// Images is a synthetic classification dataset of C-channel HxW images whose
// class signal is a per-class frequency pattern plus noise (learnable by
// small CNNs in a few epochs).
type Images struct {
	X       []*tensor.Tensor // each [C,H,W]
	Y       []int
	Classes int
}

// SynthImages generates n labeled images.
func SynthImages(rng *tensor.RNG, n, channels, h, w, classes int) *Images {
	d := &Images{Classes: classes}
	for i := 0; i < n; i++ {
		label := rng.Intn(classes)
		img := tensor.Zeros(channels, h, w)
		freq := float64(label+1) * math.Pi / float64(classes)
		for c := 0; c < channels; c++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					v := math.Sin(freq*float64(y)) * math.Cos(freq*float64(x))
					img.Set(v+0.3*rng.Norm(), c, y, x)
				}
			}
		}
		d.X = append(d.X, img)
		d.Y = append(d.Y, label)
	}
	return d
}

// Batch assembles mini-batch i (of size bs) as an NCHW tensor and a one-hot
// label tensor, wrapping around the dataset.
func (d *Images) Batch(i, bs int) (*tensor.Tensor, *tensor.Tensor) {
	xs := make([]*tensor.Tensor, bs)
	ys := make([]int, bs)
	for j := 0; j < bs; j++ {
		k := (i*bs + j) % len(d.X)
		xs[j] = d.X[k]
		ys[j] = d.Y[k]
	}
	return tensor.Stack(xs...), tensor.OneHot(ys, d.Classes)
}

// Sequences is a synthetic language-modeling corpus: token streams generated
// by a small order-1 Markov chain over the vocabulary, giving next-token
// structure a model can learn.
type Sequences struct {
	Tokens [][]int
	Vocab  int
}

// SynthSequences generates n sequences of the given length.
func SynthSequences(rng *tensor.RNG, n, length, vocab int) *Sequences {
	// Fixed random transition preference per token.
	next := make([]int, vocab)
	for i := range next {
		next[i] = rng.Intn(vocab)
	}
	s := &Sequences{Vocab: vocab}
	for i := 0; i < n; i++ {
		seq := make([]int, length)
		cur := rng.Intn(vocab)
		for t := 0; t < length; t++ {
			seq[t] = cur
			if rng.Float64() < 0.8 {
				cur = next[cur]
			} else {
				cur = rng.Intn(vocab)
			}
		}
		s.Tokens = append(s.Tokens, seq)
	}
	return s
}

// Tree is a labeled binary sentiment-style tree (the SST structure): leaves
// carry word ids, every node carries a binary label.
type Tree struct {
	Leaf        bool
	Word        int
	Label       int
	Left, Right *Tree
}

// Size returns the number of nodes.
func (t *Tree) Size() int {
	if t == nil {
		return 0
	}
	if t.Leaf {
		return 1
	}
	return 1 + t.Left.Size() + t.Right.Size()
}

// Depth returns the tree height.
func (t *Tree) Depth() int {
	if t == nil || t.Leaf {
		return 1
	}
	l, r := t.Left.Depth(), t.Right.Depth()
	if l > r {
		return l + 1
	}
	return r + 1
}

// SynthTrees generates n random binary trees with the given leaf-count range.
// The label of a subtree is the majority "sentiment" of its leaf words
// (word id >= vocab/2 counts as positive) — a composable signal TreeNNs can
// learn.
func SynthTrees(rng *tensor.RNG, n, minLeaves, maxLeaves, vocab int) []*Tree {
	var build func(leaves int) *Tree
	build = func(leaves int) *Tree {
		if leaves == 1 {
			w := rng.Intn(vocab)
			label := 0
			if w >= vocab/2 {
				label = 1
			}
			return &Tree{Leaf: true, Word: w, Label: label}
		}
		l := 1 + rng.Intn(leaves-1)
		left := build(l)
		right := build(leaves - l)
		label := 0
		if positives(left)+positives(right) >= (left.leaves()+right.leaves()+1)/2 {
			label = 1
		}
		return &Tree{Left: left, Right: right, Label: label}
	}
	out := make([]*Tree, n)
	for i := range out {
		leaves := minLeaves
		if maxLeaves > minLeaves {
			leaves += rng.Intn(maxLeaves - minLeaves + 1)
		}
		out[i] = build(leaves)
	}
	return out
}

func (t *Tree) leaves() int {
	if t.Leaf {
		return 1
	}
	return t.Left.leaves() + t.Right.leaves()
}

func positives(t *Tree) int {
	if t.Leaf {
		return t.Label
	}
	return positives(t.Left) + positives(t.Right)
}

// ToMinipy converts a tree into a minipy object graph (class `Node` with
// leaf/word/label/left/right attributes) so the imperative programs traverse
// it exactly like the paper's Python objects.
func (t *Tree) ToMinipy(cls *minipy.ClassVal) *minipy.ObjectVal {
	obj := &minipy.ObjectVal{Class: cls, Attrs: map[string]minipy.Value{
		"leaf":  minipy.BoolVal(t.Leaf),
		"word":  minipy.IntVal(t.Word),
		"label": minipy.IntVal(t.Label),
		"left":  minipy.None,
		"right": minipy.None,
	}}
	if !t.Leaf {
		obj.Attrs["left"] = t.Left.ToMinipy(cls)
		obj.Attrs["right"] = t.Right.ToMinipy(cls)
	}
	return obj
}

// Paired is an image-translation dataset (the Facades structure): inputs and
// targets are deterministic transforms of each other.
type Paired struct {
	A, B []*tensor.Tensor
}

// SynthPaired generates n pairs where B is a blurred+inverted A.
func SynthPaired(rng *tensor.RNG, n, channels, h, w int) *Paired {
	p := &Paired{}
	for i := 0; i < n; i++ {
		a := rng.Uniform(0, 1, channels, h, w)
		b := tensor.Zeros(channels, h, w)
		for c := 0; c < channels; c++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					s, cnt := 0.0, 0
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							yy, xx := y+dy, x+dx
							if yy >= 0 && yy < h && xx >= 0 && xx < w {
								s += a.At(c, yy, xx)
								cnt++
							}
						}
					}
					b.Set(1-s/float64(cnt), c, y, x)
				}
			}
		}
		p.A = append(p.A, a)
		p.B = append(p.B, b)
	}
	return p
}

// Batch returns paired batch i of size bs as NCHW tensors.
func (p *Paired) Batch(i, bs int) (*tensor.Tensor, *tensor.Tensor) {
	as := make([]*tensor.Tensor, bs)
	bs2 := make([]*tensor.Tensor, bs)
	for j := 0; j < bs; j++ {
		k := (i*bs + j) % len(p.A)
		as[j] = p.A[k]
		bs2[j] = p.B[k]
	}
	return tensor.Stack(as...), tensor.Stack(bs2...)
}
