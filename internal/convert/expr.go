package convert

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/minipy"
	"repro/internal/profile"
	"repro/internal/tensor"
)

// profileValueInfo aliases the profiler's value lattice locally.
type profileValueInfo = profile.ValueInfo

// expr partially evaluates one expression into a symbolic value.
func (c *Converter) expr(x minipy.Expr, e *env) (*sym, error) {
	switch ex := x.(type) {
	case *minipy.NameExpr:
		v, ok := e.lookup(ex.Name)
		if !ok {
			// Builtin registry as last resort.
			if b := c.reg.Get(ex.Name); b != nil {
				return &sym{kind: kStatic, val: &minipy.BuiltinVal{Name: b.Name, Fn: b.Fn}}, nil
			}
			return nil, notConvertible(ex, "name %q is not defined", ex.Name)
		}
		return v, nil
	case *minipy.IntLit:
		return &sym{kind: kStatic, val: minipy.IntVal(ex.Value)}, nil
	case *minipy.FloatLit:
		return &sym{kind: kStatic, val: minipy.FloatVal(ex.Value)}, nil
	case *minipy.StrLit:
		return &sym{kind: kStatic, val: minipy.StrVal(ex.Value)}, nil
	case *minipy.BoolLit:
		return &sym{kind: kStatic, val: minipy.BoolVal(ex.Value)}, nil
	case *minipy.NoneLit:
		return &sym{kind: kStatic, val: minipy.None}, nil
	case *minipy.ListLit:
		elems := make([]*sym, len(ex.Elems))
		for i, el := range ex.Elems {
			v, err := c.expr(el, e)
			if err != nil {
				return nil, err
			}
			elems[i] = v
		}
		return &sym{kind: kSeq, seq: &seqSym{elems: elems}}, nil
	case *minipy.TupleLit:
		elems := make([]*sym, len(ex.Elems))
		for i, el := range ex.Elems {
			v, err := c.expr(el, e)
			if err != nil {
				return nil, err
			}
			elems[i] = v
		}
		return &sym{kind: kSeq, seq: &seqSym{elems: elems, isTuple: true}}, nil
	case *minipy.DictLit:
		if len(ex.Keys) != 0 {
			return nil, notConvertible(ex, "non-empty dict literals are not convertible")
		}
		return &sym{kind: kStatic, val: minipy.NewDict()}, nil
	case *minipy.UnaryExpr:
		v, err := c.expr(ex.X, e)
		if err != nil {
			return nil, err
		}
		return c.unary(ex, ex.Op, v)
	case *minipy.BinExpr:
		l, err := c.expr(ex.L, e)
		if err != nil {
			return nil, err
		}
		r, err := c.expr(ex.R, e)
		if err != nil {
			return nil, err
		}
		return c.binop(ex, ex.Op, l, r)
	case *minipy.BoolOpExpr:
		l, err := c.expr(ex.L, e)
		if err != nil {
			return nil, err
		}
		if b, ok := l.staticBool(); ok {
			if (ex.Op == "and" && !b) || (ex.Op == "or" && b) {
				return l, nil
			}
			return c.expr(ex.R, e)
		}
		return nil, notConvertible(ex, "dynamic boolean operators are not convertible")
	case *minipy.CondExpr:
		cond, err := c.expr(ex.Cond, e)
		if err != nil {
			return nil, err
		}
		if b, ok := cond.staticBool(); ok {
			if b {
				return c.expr(ex.A, e)
			}
			return c.expr(ex.B, e)
		}
		if c.opts.Unroll && !c.opts.Distrust[ex.ID()] {
			if taken, stable := c.stableBranch(ex.ID()); stable {
				kind := "false"
				if taken {
					kind = "true"
				}
				c.addAssert(cond.port, kind, fmt.Sprintf("cond-expr@%d", ex.ID()), ex.ID(), nil)
				if taken {
					return c.expr(ex.A, e)
				}
				return c.expr(ex.B, e)
			}
		}
		// Dynamic conditional expression: both sides via Switch/Merge.
		c.dynamic = true
		a, err := c.expr(ex.A, e)
		if err != nil {
			return nil, err
		}
		b, err := c.expr(ex.B, e)
		if err != nil {
			return nil, err
		}
		ap, err := c.asAnyPort(a, ex)
		if err != nil {
			return nil, err
		}
		bp, err := c.asAnyPort(b, ex)
		if err != nil {
			return nil, err
		}
		m := c.g.Add("Merge", nil, c.gatePort(ap, cond.port, true), c.gatePort(bp, cond.port, false))
		return &sym{kind: kDyn, port: m.P()}, nil
	case *minipy.AttrExpr:
		return c.attr(ex, e)
	case *minipy.IndexExpr:
		return c.index(ex, e)
	case *minipy.LambdaExpr:
		fn := &minipy.FuncVal{Name: "<lambda>", Params: ex.Params, LambdaBody: ex.Body, Def: ex}
		return &sym{kind: kStatic, val: fn}, nil
	case *minipy.CallExpr:
		return c.call(ex, e)
	}
	return nil, notConvertible(x, "unsupported expression %T", x)
}

// --- operators --------------------------------------------------------------

var binOpNode = map[string]string{
	"+": "Add", "-": "Sub", "*": "Mul", "/": "Div", "**": "Pow",
}

func (c *Converter) binop(at minipy.Node, op string, l, r *sym) (*sym, error) {
	// Static × static: evaluate with real interpreter semantics.
	if l.kind == kStatic && r.kind == kStatic {
		v, err := minipy.EvalBinOp(c.scratch, op, l.val, r.val)
		if err != nil {
			return nil, notConvertible(at, "static %s: %v", op, err)
		}
		return &sym{kind: kStatic, val: v}, nil
	}
	// Sequence concatenation with dynamic elements stays a build-time seq.
	if op == "+" && l.kind == kSeq && r.kind == kSeq {
		merged := append(append([]*sym{}, l.seq.elems...), r.seq.elems...)
		return &sym{kind: kSeq, seq: &seqSym{elems: merged, isTuple: l.seq.isTuple}}, nil
	}
	switch op {
	case "+", "-", "*", "/", "**":
		lp, err := c.asTensorPort(l, at)
		if err != nil {
			return nil, err
		}
		rp, err := c.asTensorPort(r, at)
		if err != nil {
			return nil, err
		}
		n := c.g.Add(binOpNode[op], nil, lp, rp)
		c.inferBroadcast(n, lp, rp)
		return &sym{kind: kDyn, port: n.P()}, nil
	case "==", "!=", "<", "<=", ">", ">=":
		lp, err := c.asTensorPort(l, at)
		if err != nil {
			return nil, err
		}
		rp, err := c.asTensorPort(r, at)
		if err != nil {
			return nil, err
		}
		n := c.g.Add("Cmp", map[string]graph.Val{"op": op}, lp, rp)
		return &sym{kind: kDyn, port: n.P()}, nil
	case "//", "%":
		return nil, notConvertible(at, "dynamic %s is not convertible", op)
	case "is", "is not", "in":
		return nil, notConvertible(at, "dynamic %q is not convertible", op)
	}
	return nil, notConvertible(at, "unsupported operator %s", op)
}

func (c *Converter) unary(at minipy.Node, op string, v *sym) (*sym, error) {
	if v.kind == kStatic {
		out, err := minipy.EvalUnaryOp(c.scratch, op, v.val)
		if err != nil {
			return nil, notConvertible(at, "static unary %s: %v", op, err)
		}
		return &sym{kind: kStatic, val: out}, nil
	}
	switch op {
	case "-":
		p, err := c.asTensorPort(v, at)
		if err != nil {
			return nil, err
		}
		n := c.g.Add("Neg", nil, p)
		c.copyShape(n.P(), p)
		return &sym{kind: kDyn, port: n.P()}, nil
	case "+":
		return v, nil
	case "not":
		p, err := c.asAnyPort(v, at)
		if err != nil {
			return nil, err
		}
		n := c.g.Add("Not", nil, p)
		return &sym{kind: kDyn, port: n.P()}, nil
	}
	return nil, notConvertible(at, "unsupported unary %s", op)
}

// --- attribute / subscript access ---------------------------------------------

// attr converts obj.name. Decision tree per §4.2.2/§4.2.3:
//   - methods resolve statically (callee identity is part of the class);
//   - profile-stable scalar attributes specialize to constants guarded by an
//     equality assert (trace mode bakes without the guard — the Figure 6
//     batch-norm failure);
//   - everything else becomes a dynamic PyGetAttr read through the overlay.
func (c *Converter) attr(ex *minipy.AttrExpr, e *env) (*sym, error) {
	obj, err := c.expr(ex.X, e)
	if err != nil {
		return nil, err
	}
	if obj.kind == kSeq {
		return nil, notConvertible(ex, "list method %q is handled at call sites only", ex.Name)
	}
	if obj.kind != kDyn || !obj.isRef {
		if obj.kind == kDyn && !obj.isRef {
			// Tensor attributes.
			switch ex.Name {
			case "shape":
				if sh, ok := c.shapes[obj.port]; ok {
					elems := make([]*sym, len(sh))
					for i, d := range sh {
						elems[i] = &sym{kind: kStatic, val: minipy.IntVal(d)}
					}
					return &sym{kind: kSeq, seq: &seqSym{elems: elems, isTuple: true}}, nil
				}
				return nil, notConvertible(ex, "tensor shape unknown without specialization")
			}
		}
		return nil, notConvertible(ex, "attribute %q on %s", ex.Name, obj.describe())
	}
	// Method lookup against the exemplar object's class.
	if o, ok := obj.exemplar.(*minipy.ObjectVal); ok {
		if _, isAttr := o.Attrs[ex.Name]; !isAttr {
			if m, isMethod := o.Class.Methods[ex.Name]; isMethod {
				return &sym{kind: kStatic, val: m, self: obj}, nil
			}
		}
	}
	// Exemplar-driven classification of data attributes.
	var exVal minipy.Value
	if o, ok := obj.exemplar.(*minipy.ObjectVal); ok {
		exVal = o.Attrs[ex.Name]
	}
	var info *profileValueInfo
	if c.prof != nil {
		info = c.prof.ValueAt(ex.ID())
	}
	if isScalar(exVal) {
		stable := info != nil && info.ConstStable
		if c.opts.Trace {
			// Bake without a guard: unsafe specialization.
			return &sym{kind: kStatic, val: exVal}, nil
		}
		if c.opts.Specialize && stable && !c.opts.Distrust[ex.ID()] {
			read := c.g.Add("PyGetAttr", map[string]graph.Val{"attr": ex.Name}, obj.port)
			c.addAssert(read.P(), "eq", fmt.Sprintf("attr %s@%d assumed constant", ex.Name, ex.ID()), ex.ID(),
				map[string]graph.Val{"expected": scalarToGo(exVal)})
			return &sym{kind: kStatic, val: exVal}, nil
		}
	}
	// Dynamic read.
	read := c.g.Add("PyGetAttr", map[string]graph.Val{"attr": ex.Name}, obj.port)
	c.noteStateRead(read)
	out := &sym{kind: kDyn, port: read.P(), exemplar: exVal}
	switch exVal.(type) {
	case *minipy.ObjectVal, *minipy.ListVal, *minipy.DictVal:
		out.isRef = true
	case *minipy.TensorVal:
		if c.opts.Specialize {
			sh := exVal.(*minipy.TensorVal).T().Shape()
			if info != nil && info.ShapeKnown {
				sh = info.Shape
			}
			c.shapes[read.P()] = append([]int(nil), sh...)
			c.addAssert(read.P(), "shape", fmt.Sprintf("attr %s@%d shape", ex.Name, ex.ID()), ex.ID(),
				map[string]graph.Val{"shape": append([]int(nil), sh...)})
		} else {
			c.dynamic = true
		}
	case nil:
		// No exemplar (e.g. recursing past the exemplar tree): fully dynamic.
		out.isRef = true
		c.dynamic = true
	}
	return out, nil
}

// noteStateRead orders heap reads after prior heap writes so the overlay
// redirection of Figure 5 (step 3) observes program order.
func (c *Converter) noteStateRead(n *graph.Node) {
	if c.lastState != nil {
		n.ControlDeps = append(n.ControlDeps, c.lastState)
	}
}

func (c *Converter) index(ex *minipy.IndexExpr, e *env) (*sym, error) {
	obj, err := c.expr(ex.X, e)
	if err != nil {
		return nil, err
	}
	key, err := c.expr(ex.Key, e)
	if err != nil {
		return nil, err
	}
	switch obj.kind {
	case kSeq:
		i, ok := key.staticInt()
		if !ok {
			return nil, notConvertible(ex, "sequence index must be build-time known")
		}
		if i < 0 {
			i += len(obj.seq.elems)
		}
		if i < 0 || i >= len(obj.seq.elems) {
			return nil, notConvertible(ex, "index %d out of range (len %d)", i, len(obj.seq.elems))
		}
		return obj.seq.elems[i], nil
	case kStatic:
		if d, ok := obj.val.(*minipy.DictVal); ok && key.kind == kStatic {
			k, err := minipy.DictKey(key.val)
			if err != nil {
				return nil, notConvertible(ex, "%v", err)
			}
			v, ok := d.Entries[k]
			if !ok {
				return nil, notConvertible(ex, "dict key %s not found at build time", key.val.Repr())
			}
			return c.staticToSym(v), nil
		}
		return nil, notConvertible(ex, "subscript on %s", obj.describe())
	case kDyn:
		if obj.isRef {
			if _, isList := obj.exemplar.(*minipy.ListVal); isList && obj.exemplar != nil {
				// Runtime list (e.g. Loop accumulator output): IndexList.
				kp, err := c.asAnyPort(key, ex)
				if err != nil {
					return nil, err
				}
				n := c.g.Add("IndexList", nil, obj.port, kp)
				return &sym{kind: kDyn, port: n.P()}, nil
			}
			kp, err := c.asAnyPort(key, ex)
			if err != nil {
				return nil, err
			}
			read := c.g.Add("PyGetSubscr", nil, obj.port, kp)
			c.noteStateRead(read)
			var childEx minipy.Value
			if l, ok := obj.exemplar.(*minipy.ListVal); ok && len(l.Items) > 0 {
				childEx = l.Items[0]
			}
			out := &sym{kind: kDyn, port: read.P(), exemplar: childEx}
			switch childEx.(type) {
			case *minipy.ObjectVal, *minipy.ListVal, *minipy.DictVal:
				out.isRef = true
			case nil:
				out.isRef = true
				c.dynamic = true
			}
			return out, nil
		}
		// Tensor row indexing with static index -> Slice+reshape.
		i, ok := key.staticInt()
		if !ok {
			return nil, notConvertible(ex, "tensor index must be build-time known")
		}
		sh, known := c.shapes[obj.port]
		if !known {
			// Shape-free subscript (e.g. elements of a Pack'd recursive
			// return): generic runtime indexing, tape-mode gradients.
			kp, err := c.asAnyPort(key, ex)
			if err != nil {
				return nil, err
			}
			c.dynamic = true
			n := c.g.Add("IndexAny", nil, obj.port, kp)
			return &sym{kind: kDyn, port: n.P()}, nil
		}
		if i < 0 {
			i += sh[0]
		}
		sl := c.g.Add("Slice", map[string]graph.Val{"axis": 0, "lo": i, "hi": i + 1, "inShape": append([]int(nil), sh...)}, obj.port)
		rest := append([]int(nil), sh[1:]...)
		rs := c.g.Add("ReshapeLike", nil, sl.P(), c.g.Const(tensor.Zeros(rest...)).P())
		c.shapes[rs.P()] = rest
		return &sym{kind: kDyn, port: rs.P()}, nil
	}
	return nil, notConvertible(ex, "subscript on %s", obj.describe())
}

func isScalar(v minipy.Value) bool {
	switch v.(type) {
	case minipy.IntVal, minipy.FloatVal, minipy.BoolVal, minipy.StrVal:
		return true
	}
	return false
}

func scalarToGo(v minipy.Value) graph.Val {
	switch x := v.(type) {
	case minipy.IntVal:
		return int(x)
	case minipy.FloatVal:
		return float64(x)
	case minipy.BoolVal:
		return bool(x)
	case minipy.StrVal:
		return string(x)
	}
	return nil
}

// --- shape inference helpers ---------------------------------------------------

func (c *Converter) copyShape(dst, src graph.Port) {
	if sh, ok := c.shapes[src]; ok {
		c.shapes[dst] = sh
	}
}

func (c *Converter) inferBroadcast(n *graph.Node, a, b graph.Port) {
	sa, oka := c.shapes[a]
	sb, okb := c.shapes[b]
	if !oka || !okb {
		return
	}
	if out, err := tensor.BroadcastShapes(sa, sb); err == nil {
		c.shapes[n.P()] = out
	}
}
