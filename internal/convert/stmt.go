package convert

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/minipy"
)

// block converts a statement list. It returns the returned sym if a return
// statement was (unconditionally) reached, else nil.
//
// The common Python early-return idiom
//
//	if cond:
//	    return A
//	<rest>
//
// is normalized here into `if cond: return A else: <rest>` so the
// Switch/Merge conversion sees returns on both sides (the TreeNN recursion
// base-case pattern).
func (c *Converter) block(stmts []minipy.Stmt, e *env) (*sym, error) {
	for i, s := range stmts {
		if ifs, ok := s.(*minipy.IfStmt); ok && ifs.Else == nil && i+1 < len(stmts) && alwaysReturns(ifs.Then) {
			return c.stmt(ifs.WithElse(stmts[i+1:]), e)
		}
		ret, err := c.stmt(s, e)
		if err != nil {
			return nil, err
		}
		if ret != nil {
			return ret, nil
		}
	}
	return nil, nil
}

// alwaysReturns reports whether every path through the statements ends in a
// return.
func alwaysReturns(stmts []minipy.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	last := stmts[len(stmts)-1]
	switch st := last.(type) {
	case *minipy.ReturnStmt:
		return true
	case *minipy.IfStmt:
		return alwaysReturns(st.Then) && st.Else != nil && alwaysReturns(st.Else)
	}
	return false
}

func (c *Converter) stmt(s minipy.Stmt, e *env) (*sym, error) {
	switch st := s.(type) {
	case *minipy.ExprStmt:
		_, err := c.expr(st.X, e)
		return nil, err

	case *minipy.AssignStmt:
		v, err := c.expr(st.Value, e)
		if err != nil {
			return nil, err
		}
		return nil, c.assign(st.Target, v, e)

	case *minipy.AugAssignStmt:
		// Special-case the accumulation patterns `xs += [v]` on build-time
		// lists and loop accumulators before generic read-modify-write.
		if name, ok := st.Target.(*minipy.NameExpr); ok && st.Op == "+" {
			if cur, found := e.lookup(name.Name); found && (cur.kind == kSeq || cur.kind == kAccum) {
				rhs, err := c.expr(st.Value, e)
				if err != nil {
					return nil, err
				}
				if rhs.kind == kSeq && !rhs.seq.isTuple {
					if cur.kind == kAccum {
						for _, el := range rhs.seq.elems {
							if err := c.accumAppend(cur, el, st); err != nil {
								return nil, err
							}
						}
						return nil, nil
					}
					merged := append(append([]*sym{}, cur.seq.elems...), rhs.seq.elems...)
					e.set(name.Name, &sym{kind: kSeq, seq: &seqSym{elems: merged}})
					return nil, nil
				}
				return nil, notConvertible(st, "list += wants a list literal")
			}
		}
		cur, err := c.expr(st.Target, e)
		if err != nil {
			return nil, err
		}
		rhs, err := c.expr(st.Value, e)
		if err != nil {
			return nil, err
		}
		v, err := c.binop(st, st.Op, cur, rhs)
		if err != nil {
			return nil, err
		}
		return nil, c.assign(st.Target, v, e)

	case *minipy.IfStmt:
		return c.ifStmt(st, e)

	case *minipy.ForStmt:
		return c.forStmt(st, e)

	case *minipy.WhileStmt:
		return c.whileStmt(st, e)

	case *minipy.ReturnStmt:
		if st.Value == nil {
			return &sym{kind: kStatic, val: minipy.None}, nil
		}
		return c.expr(st.Value, e)

	case *minipy.PassStmt:
		return nil, nil

	case *minipy.FuncDef:
		fn := &minipy.FuncVal{Name: st.Name, Params: st.Params, Defaults: st.Defaults, Body: st.Body, Def: st}
		// Nested functions close over the symbolic env; we record the sym
		// frame so calls can resolve captured syms. Static closure only.
		e.set(st.Name, &sym{kind: kStatic, val: fn})
		return nil, nil

	case *minipy.GlobalStmt:
		// Reading globals is supported (resolved statically with a guard by
		// the attribute machinery); writing them is not, and declaring
		// `global` signals intent to write.
		return nil, notConvertible(st, "global state mutation has no graph representation (§4.3.1)")

	case *minipy.NonlocalStmt:
		return nil, notConvertible(st, "nonlocal mutation has no graph representation")

	case *minipy.AssertStmt:
		cond, err := c.expr(st.Cond, e)
		if err != nil {
			return nil, err
		}
		if b, ok := cond.staticBool(); ok {
			if !b {
				return nil, notConvertible(st, "assert statically false")
			}
			return nil, nil
		}
		c.addAssert(cond.port, "true", "program assert", st.ID(), nil)
		return nil, nil

	case *minipy.RaiseStmt:
		// Exceptions fall back to the imperative executor (Appendix A): the
		// raise site becomes an always-failing assert would be wrong for
		// conditionally-raised paths; simplest correct choice is to keep the
		// function imperative.
		return nil, notConvertible(st, "raise is handled imperatively")

	case *minipy.BreakStmt, *minipy.ContinueStmt:
		return nil, notConvertible(st, "break/continue inside converted loops is not supported")

	case *minipy.ClassDef:
		return nil, notConvertible(st, "in-line class definitions are imperative-only (§4.3.2)")

	case *minipy.DelStmt:
		return nil, notConvertible(st, "del is imperative-only")
	}
	return nil, notConvertible(s, "unsupported statement %T", s)
}

func (c *Converter) assign(target minipy.Expr, v *sym, e *env) error {
	switch t := target.(type) {
	case *minipy.NameExpr:
		e.set(t.Name, v)
		return nil
	case *minipy.AttrExpr:
		obj, err := c.expr(t.X, e)
		if err != nil {
			return err
		}
		if obj.kind != kDyn || !obj.isRef {
			return notConvertible(t, "attribute assignment on %s", obj.describe())
		}
		if c.opts.Trace {
			// Tracing baselines drop state writes silently — this is the
			// defun behaviour that loses RNN state passing in Figure 6(b).
			return nil
		}
		vp, err := c.asAnyPort(v, t)
		if err != nil {
			return err
		}
		set := c.g.Add("PySetAttr", map[string]graph.Val{"attr": t.Name}, obj.port, vp)
		c.g.Updates = append(c.g.Updates, set)
		c.noteStateOrder(set)
		return nil
	case *minipy.IndexExpr:
		obj, err := c.expr(t.X, e)
		if err != nil {
			return err
		}
		key, err := c.expr(t.Key, e)
		if err != nil {
			return err
		}
		if obj.kind == kSeq {
			i, ok := key.staticInt()
			if !ok {
				return notConvertible(t, "list index must be build-time known")
			}
			if i < 0 {
				i += len(obj.seq.elems)
			}
			if i < 0 || i >= len(obj.seq.elems) {
				return notConvertible(t, "list index %d out of range", i)
			}
			obj.seq.elems[i] = v
			return nil
		}
		if obj.kind == kDyn && obj.isRef {
			if c.opts.Trace {
				return nil
			}
			kp, err := c.asAnyPort(key, t)
			if err != nil {
				return err
			}
			vp, err := c.asAnyPort(v, t)
			if err != nil {
				return err
			}
			set := c.g.Add("PySetSubscr", nil, obj.port, kp, vp)
			c.g.Updates = append(c.g.Updates, set)
			c.noteStateOrder(set)
			return nil
		}
		return notConvertible(t, "subscript assignment on %s", obj.describe())
	case *minipy.TupleLit:
		items, err := c.unpackSym(v, len(t.Elems), t)
		if err != nil {
			return err
		}
		for i, el := range t.Elems {
			if err := c.assign(el, items[i], e); err != nil {
				return err
			}
		}
		return nil
	}
	return notConvertible(target, "unsupported assignment target %T", target)
}

// noteStateOrder serializes heap mutations: each new state op gets a control
// dependency on the previous one so the overlay write order matches program
// order even under parallel scheduling.
func (c *Converter) noteStateOrder(n *graph.Node) {
	if c.lastState != nil {
		n.ControlDeps = append(n.ControlDeps, c.lastState)
	}
	c.lastState = n
}

func (c *Converter) unpackSym(v *sym, want int, at minipy.Node) ([]*sym, error) {
	if v.kind == kSeq {
		if len(v.seq.elems) != want {
			return nil, notConvertible(at, "cannot unpack %d values into %d targets", len(v.seq.elems), want)
		}
		return v.seq.elems, nil
	}
	return nil, notConvertible(at, "cannot unpack %s", v.describe())
}

// accumAppend appends a value to a BASE-mode loop accumulator.
func (c *Converter) accumAppend(acc *sym, v *sym, at minipy.Node) error {
	p, err := c.asTensorPort(v, at)
	if err != nil {
		return err
	}
	acc.accum.ports = append(acc.accum.ports, p)
	return nil
}

// --- conditionals -------------------------------------------------------------

func (c *Converter) ifStmt(st *minipy.IfStmt, e *env) (*sym, error) {
	cond, err := c.expr(st.Cond, e)
	if err != nil {
		return nil, err
	}
	// Build-time-known condition: converge to one side, no guard needed.
	if b, ok := cond.staticBool(); ok {
		if b {
			return c.block(st.Then, e)
		}
		if st.Else != nil {
			return c.block(st.Else, e)
		}
		return nil, nil
	}
	// Dynamic condition. Speculation (+UNRL): if the profile says the branch
	// is stable, prune to one side guarded by an AssertOp.
	if c.opts.Unroll && !c.opts.Distrust[st.ID()] {
		if taken, stable := c.stableBranch(st.ID()); stable {
			kind := "false"
			if taken {
				kind = "true"
			}
			c.addAssert(cond.port, kind, fmt.Sprintf("branch@%d assumed %v", st.ID(), taken), st.ID(), nil)
			if taken {
				return c.block(st.Then, e)
			}
			if st.Else != nil {
				return c.block(st.Else, e)
			}
			return nil, nil
		}
	}
	// Unstable (or BASE mode): emit Switch/Merge dataflow for both sides.
	return c.switchMerge(st, cond, e)
}

// stableBranch consults the profile; in trace mode every branch is "stable"
// in the direction the exemplar took — but trace conversion never reaches
// here because trace implies Unroll and uses the exemplar directly via the
// profile recorded during the trace run.
func (c *Converter) stableBranch(nodeID int) (taken, stable bool) {
	if c.prof == nil {
		return false, false
	}
	return c.prof.BranchStable(nodeID)
}

// switchMerge converts both sides of a dynamic conditional into dataflow
// gated by Switch and joined by Merge (§4.2.1 basic translation rules).
type branchOut struct {
	bindings map[string]*sym
	ret      *sym
}

func (c *Converter) switchMerge(st *minipy.IfStmt, cond *sym, e *env) (*sym, error) {
	c.dynamic = true
	pred := cond.port

	convertSide := func(body []minipy.Stmt, takeTrue bool) (*branchOut, error) {
		side := newEnv(e)
		side.gate = &branchGate{conv: c, pred: pred, takeTrue: takeTrue, switched: make(map[graph.Port]graph.Port)}
		var ret *sym
		var err error
		if body != nil {
			ret, err = c.block(body, side)
			if err != nil {
				return nil, err
			}
		}
		return &branchOut{bindings: side.snapshot(), ret: ret}, nil
	}

	thenOut, err := convertSide(st.Then, true)
	if err != nil {
		return nil, err
	}
	elseOut, err := convertSide(st.Else, false)
	if err != nil {
		return nil, err
	}

	// Returns: support the all-paths-return pattern (recursion base cases).
	if thenOut.ret != nil || elseOut.ret != nil {
		if thenOut.ret == nil || elseOut.ret == nil {
			return nil, notConvertible(st, "conditional return on only one branch of a dynamic condition")
		}
		tp, err := c.asAnyPort(thenOut.ret, st)
		if err != nil {
			return nil, err
		}
		ep, err := c.asAnyPort(elseOut.ret, st)
		if err != nil {
			return nil, err
		}
		// Gate the return values through the Switch so only the taken side's
		// value is live, then Merge.
		swT := c.gatePort(tp, pred, true)
		swE := c.gatePort(ep, pred, false)
		m := c.g.Add("Merge", nil, swT, swE)
		return &sym{kind: kDyn, port: m.P()}, nil
	}

	// Merge variable bindings changed on either side.
	names := map[string]bool{}
	for n := range thenOut.bindings {
		names[n] = true
	}
	for n := range elseOut.bindings {
		names[n] = true
	}
	for name := range names {
		tv := thenOut.bindings[name]
		ev := elseOut.bindings[name]
		outer, hasOuter := e.lookup(name)
		if tv == nil {
			if !hasOuter {
				return nil, notConvertible(st, "%q assigned only on one branch and undefined before", name)
			}
			tv = outer
		}
		if ev == nil {
			if !hasOuter {
				return nil, notConvertible(st, "%q assigned only on one branch and undefined before", name)
			}
			ev = outer
		}
		if tv == ev {
			e.set(name, tv)
			continue
		}
		tp, err := c.asAnyPort(tv, st)
		if err != nil {
			return nil, err
		}
		ep, err := c.asAnyPort(ev, st)
		if err != nil {
			return nil, err
		}
		m := c.g.Add("Merge", nil, c.gatePort(tp, pred, true), c.gatePort(ep, pred, false))
		e.set(name, &sym{kind: kDyn, port: m.P()})
	}
	return nil, nil
}

// gatePort routes p through a Switch on pred so it is dead on the untaken
// side.
func (c *Converter) gatePort(p graph.Port, pred graph.Port, takeTrue bool) graph.Port {
	sw := c.g.Add("Switch", nil, p, pred)
	if takeTrue {
		return sw.Out(0)
	}
	return sw.Out(1)
}

// branchGate wraps reads of outer dynamic values inside a dynamic branch so
// the consuming ops only fire when the branch is taken (dead-token gating).
type branchGate struct {
	conv     *Converter
	pred     graph.Port
	takeTrue bool
	switched map[graph.Port]graph.Port
}

func (g *branchGate) gate(s *sym) *sym {
	if s.kind != kDyn {
		return s
	}
	if p, ok := g.switched[s.port]; ok {
		out := *s
		out.port = p
		return &out
	}
	p := g.conv.gatePort(s.port, g.pred, g.takeTrue)
	g.switched[s.port] = p
	out := *s
	out.port = p
	return &out
}
