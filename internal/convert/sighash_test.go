package convert

import (
	"testing"

	"repro/internal/minipy"
	"repro/internal/tensor"
)

// sigCases builds a spread of argument lists exercising every token kind of
// the signature walk.
func sigCases() [][]minipy.Value {
	return [][]minipy.Value{
		{minipy.NewTensor(tensor.Zeros(4, 8))},
		{minipy.NewTensor(tensor.Zeros(4, 9))},
		{minipy.NewTensor(tensor.Zeros(8, 4))}, // same elems, different shape
		{minipy.IntVal(7)},
		{minipy.IntVal(8)},
		{minipy.FloatVal(1.5)},
		{minipy.FloatVal(-1.5)},
		{minipy.BoolVal(true)},
		{minipy.BoolVal(false)},
		{minipy.StrVal("x")},
		{minipy.StrVal("y")},
		{minipy.None},
		{&minipy.ListVal{Items: []minipy.Value{minipy.IntVal(1), minipy.IntVal(2)}}},
		{&minipy.ListVal{Items: []minipy.Value{minipy.IntVal(1)}}, minipy.IntVal(2)},
		{&minipy.TupleVal{Items: []minipy.Value{minipy.IntVal(1), minipy.IntVal(2)}}},
		{minipy.NewTensor(tensor.Zeros(3)), minipy.IntVal(1), minipy.StrVal("k")},
		{minipy.NewTensor(tensor.Zeros(3)), minipy.IntVal(1), minipy.StrVal("k2")},
	}
}

// TestFlattenHashAgreesWithFlatten: the hash is a pure function of the token
// signature — equal signatures hash equal, and the sample of distinct
// signatures all hash distinct (collision smoke check). Leaves must be
// identical between the two walks.
func TestFlattenHashAgreesWithFlatten(t *testing.T) {
	fn := &minipy.FuncVal{Name: "f", Params: []string{"a", "b", "c"}}
	type entry struct {
		sig  string
		hash uint64
	}
	seenBySig := map[string]uint64{}
	seenByHash := map[uint64]string{}
	for i, args := range sigCases() {
		sig, leaves := Flatten(fn, args)
		hash, hleaves := FlattenHash(fn, args)
		// Determinism: re-walking gives the same hash.
		if h2, _ := FlattenHash(fn, args); h2 != hash {
			t.Fatalf("case %d: hash not deterministic", i)
		}
		if len(leaves) != len(hleaves) {
			t.Fatalf("case %d: leaf count differs: %d vs %d", i, len(leaves), len(hleaves))
		}
		for j := range leaves {
			if leaves[j] != hleaves[j] {
				t.Fatalf("case %d leaf %d differs", i, j)
			}
		}
		key := ""
		for _, s := range sig {
			key += s + "\x00"
		}
		if prev, ok := seenBySig[key]; ok && prev != hash {
			t.Fatalf("case %d: same signature, different hash", i)
		}
		seenBySig[key] = hash
		if prevSig, ok := seenByHash[hash]; ok && prevSig != key {
			t.Fatalf("case %d: hash collision between %q and %q", i, prevSig, key)
		}
		seenByHash[hash] = key
	}
}

// TestFlattenHashSeesCaptures: captures contribute to the hash exactly as
// they do to the token signature.
func TestFlattenHashSeesCaptures(t *testing.T) {
	src := `
k = 3
def f(x):
    return x + k
`
	fn, _, it, _ := setup(t, src, "f", nil)
	args := []minipy.Value{minipy.NewTensor(tensor.Zeros(2))}
	h1, _ := FlattenHash(fn, args)
	// Rebind the captured global and re-hash: must differ, as the token
	// signature does.
	if err := it.Globals.Define("k", minipy.IntVal(4)); err != nil {
		t.Fatal(err)
	}
	h2, _ := FlattenHash(fn, args)
	if h1 == h2 {
		t.Fatal("capture change did not change the signature hash")
	}
	sig1, _ := Flatten(fn, args)
	_ = sig1
}
