package convert

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/minipy"
	"repro/internal/profile"
	"repro/internal/tensor"
	"repro/internal/vars"
)

// setup parses src, runs it imperatively (with a profiler) for iters
// iterations of `optimize`-style calls to fnName, and returns the function
// value plus the gathered profile. This mirrors what internal/core does
// before invoking ConvertCall.
func setup(t *testing.T, src, fnName string, args [][]minipy.Value) (*minipy.FuncVal, *profile.Profile, *minipy.Interp, *vars.Store) {
	t.Helper()
	prog, err := minipy.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	it := minipy.NewInterp(nil)
	store := vars.NewStore()
	it.SetStore(store)
	if err := it.Run(prog); err != nil {
		t.Fatalf("run: %v", err)
	}
	fv, ok := it.Globals.Lookup(fnName)
	if !ok {
		t.Fatalf("no function %q", fnName)
	}
	fn := fv.(*minipy.FuncVal)
	prof := profile.New()
	it.Prof = prof
	for _, a := range args {
		if _, err := it.CallFunction(fn, a); err != nil {
			t.Fatalf("profiled call: %v", err)
		}
		prof.EndIteration()
	}
	it.Prof = nil
	return fn, prof, it, store
}

func defaultOpts() Options { return Options{Unroll: true, Specialize: true} }

func TestConvertLinearFunctionMatchesInterpreter(t *testing.T) {
	// The paper's Figure 3 program.
	src := `
def loss_fn(x, y):
    y_ = 0.5 * x + 1.5
    return (y_ - y) ** 2.0
`
	args := []minipy.Value{
		minipy.NewTensor(tensor.Scalar(4)),
		minipy.NewTensor(tensor.Scalar(2)),
	}
	fn, prof, it, store := setup(t, src, "loss_fn", [][]minipy.Value{args, args, args})
	res, err := ConvertCall(fn, args, prof, it.Builtins, defaultOpts())
	if err != nil {
		t.Fatalf("convert: %v", err)
	}
	if res.Dynamic {
		t.Fatal("static program marked dynamic")
	}
	_, leaves := Flatten(fn, args)
	feeds := map[string]graph.Val{}
	for i, v := range leaves {
		feeds["f"+itoa(i)] = v.(*minipy.TensorVal).T()
	}
	out, err := exec.Run(res.Graph, feeds, exec.Options{Store: store})
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	got, _ := graph.AsTensor(out.Outputs[0])
	if got.Item() != 2.25 {
		t.Fatalf("graph computed %v, want 2.25", got.Item())
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestConvertUnrollsStaticLoop(t *testing.T) {
	src := `
def f(x):
    total = x
    for i in range(4):
        total = total + x
    return total
`
	args := []minipy.Value{minipy.NewTensor(tensor.Scalar(3))}
	fn, prof, it, store := setup(t, src, "f", [][]minipy.Value{args, args, args})
	res, err := ConvertCall(fn, args, prof, it.Builtins, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	counts := res.Graph.CountOps()
	if counts["Add"] != 4 {
		t.Fatalf("loop not unrolled: %v", counts)
	}
	if counts["Loop"] != 0 || counts["Switch"] != 0 {
		t.Fatalf("unexpected control ops: %v", counts)
	}
	out, err := exec.Run(res.Graph, map[string]graph.Val{"f0": tensor.Scalar(3)}, exec.Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := graph.AsTensor(out.Outputs[0])
	if got.Item() != 15 {
		t.Fatalf("got %v want 15", got.Item())
	}
}

func TestConvertBaseModeEmitsLoopOp(t *testing.T) {
	src := `
def f(xs):
    total = zeros([1])
    for x in xs:
        total = total + x
    return reduce_sum(total)
`
	args := []minipy.Value{&minipy.ListVal{Items: []minipy.Value{
		minipy.NewTensor(tensor.FromSlice([]float64{1})),
		minipy.NewTensor(tensor.FromSlice([]float64{2})),
		minipy.NewTensor(tensor.FromSlice([]float64{3})),
	}}}
	fn, prof, it, store := setup(t, src, "f", [][]minipy.Value{args, args, args})
	res, err := ConvertCall(fn, args, prof, it.Builtins, Options{Unroll: false, Specialize: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.CountOps()["Loop"] != 1 {
		t.Fatalf("BASE mode did not emit Loop: %v", res.Graph.CountOps())
	}
	if !res.Dynamic {
		t.Fatal("Loop graphs must be dynamic (tape gradients)")
	}
	_, leaves := Flatten(fn, args)
	feeds := map[string]graph.Val{}
	for i, v := range leaves {
		feeds["f"+itoa(i)] = v.(*minipy.TensorVal).T()
	}
	out, err := exec.Run(res.Graph, feeds, exec.Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := graph.AsTensor(exec.Unwrap(out.Outputs[0]))
	if got.Item() != 6 {
		t.Fatalf("got %v want 6", got.Item())
	}
}

func TestConvertStableBranchPrunedWithAssert(t *testing.T) {
	src := `
class M:
    def __init__(self):
        self.flag = True
    def f(self, x):
        if self.flag:
            return x * 2.0
        return x * 3.0

m = M()
`
	prog := minipy.MustParse(`g = lambda: 0`)
	_ = prog
	fnSrc := src
	it := minipy.NewInterp(nil)
	store := vars.NewStore()
	it.SetStore(store)
	if err := it.Run(minipy.MustParse(fnSrc)); err != nil {
		t.Fatal(err)
	}
	mv, _ := it.Globals.Lookup("m")
	m := mv.(*minipy.ObjectVal)
	method := m.Class.Methods["f"].Bind(m)
	args := []minipy.Value{minipy.NewTensor(tensor.Scalar(5))}
	prof := profile.New()
	it.Prof = prof
	for i := 0; i < 3; i++ {
		if _, err := it.CallFunction(method, args); err != nil {
			t.Fatal(err)
		}
		prof.EndIteration()
	}
	it.Prof = nil
	res, err := ConvertCall(method, args, prof, it.Builtins, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	counts := res.Graph.CountOps()
	if counts["Switch"] != 0 {
		t.Fatalf("stable branch should be pruned, got %v", counts)
	}
	if len(res.Asserts) == 0 {
		t.Fatal("pruned branch needs a guarding assert")
	}
	// Execute: the assert passes while flag is true, fails after the flip.
	_, leaves := Flatten(method, args)
	feeds := map[string]graph.Val{}
	for i, v := range leaves {
		switch x := v.(type) {
		case *minipy.TensorVal:
			feeds["f"+itoa(i)] = x.T()
		default:
			feeds["f"+itoa(i)] = v
		}
	}
	heap := coreHeapStub{}
	if _, err := exec.Run(res.Graph, feeds, exec.Options{Store: store, Heap: heap}); err != nil {
		t.Fatalf("assert should pass: %v", err)
	}
	m.Attrs["flag"] = minipy.BoolVal(false)
	_, err = exec.Run(res.Graph, feeds, exec.Options{Store: store, Heap: heap})
	var ae *exec.AssertError
	if !errors.As(err, &ae) {
		t.Fatalf("want AssertError after flag flip, got %v", err)
	}
}

// coreHeapStub resolves minipy object attributes like internal/core's adapter.
type coreHeapStub struct{}

func (coreHeapStub) GetAttr(obj any, name string) (any, error) {
	o := obj.(*minipy.ObjectVal)
	v, ok := o.Attrs[name]
	if !ok {
		return nil, errors.New("no attr " + name)
	}
	switch x := v.(type) {
	case minipy.BoolVal:
		return bool(x), nil
	case minipy.IntVal:
		return int(x), nil
	case minipy.FloatVal:
		return float64(x), nil
	case *minipy.TensorVal:
		return x.T(), nil
	}
	return v, nil
}
func (coreHeapStub) SetAttr(obj any, name string, v any) error { return nil }
func (coreHeapStub) GetSubscr(obj, key any) (any, error)       { return nil, errors.New("n/a") }
func (coreHeapStub) SetSubscr(obj, key, v any) error           { return nil }

func TestConvertRejectsImperativeOnlyFeatures(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"randn", "def f(x):\n    return reduce_sum(randn([2]) + x)\n", "no graph representation"},
		{"global-write", "g = 0\ndef f(x):\n    global g\n    g = 1\n    return x\n", "global state"},
		{"raise", "def f(x):\n    raise 'boom'\n", "imperatively"},
		{"del", "def f(x):\n    y = x\n    del y\n    return x\n", "imperative"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			args := []minipy.Value{minipy.NewTensor(tensor.Scalar(1))}
			fn, prof, it, _ := setup(t, c.src, "f", nil)
			_, err := ConvertCall(fn, args, prof, it.Builtins, defaultOpts())
			if err == nil {
				t.Fatal("expected not-convertible error")
			}
			if !errors.Is(err, ErrNotConvertible) {
				t.Fatalf("error not classified: %v", err)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestConvertTraceModeDropsGuardsAndStateWrites(t *testing.T) {
	src := `
class M:
    def __init__(self):
        self.flag = True
        self.state = zeros([1])
    def f(self, x):
        self.state = self.state + 1.0
        if self.flag:
            return x * 2.0
        return x * 3.0

m = M()
`
	it := minipy.NewInterp(nil)
	it.SetStore(vars.NewStore())
	if err := it.Run(minipy.MustParse(src)); err != nil {
		t.Fatal(err)
	}
	mv, _ := it.Globals.Lookup("m")
	m := mv.(*minipy.ObjectVal)
	method := m.Class.Methods["f"].Bind(m)
	args := []minipy.Value{minipy.NewTensor(tensor.Scalar(5))}
	prof := profile.New()
	it.Prof = prof
	if _, err := it.CallFunction(method, args); err != nil {
		t.Fatal(err)
	}
	prof.EndIteration()
	it.Prof = nil
	res, err := ConvertCall(method, args, prof, it.Builtins,
		Options{Unroll: true, Specialize: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	counts := res.Graph.CountOps()
	if counts["Assert"] != 0 {
		t.Fatalf("trace mode emitted asserts: %v", counts)
	}
	if counts["PySetAttr"] != 0 {
		t.Fatalf("trace mode kept state writes: %v", counts)
	}
	if len(res.Asserts) != 0 {
		t.Fatal("trace mode reported asserts")
	}
}

func TestFlattenSignatureTokens(t *testing.T) {
	fn := &minipy.FuncVal{Name: "f", Params: []string{"a", "b", "c"}}
	sig, leaves := Flatten(fn, []minipy.Value{
		minipy.NewTensor(tensor.Zeros(4, 8)),
		minipy.IntVal(7),
		&minipy.ListVal{Items: []minipy.Value{minipy.StrVal("x")}},
	})
	joined := strings.Join(sig, " ")
	if !strings.Contains(joined, "T:4,8") || !strings.Contains(joined, "i:7") || !strings.Contains(joined, "s:x") {
		t.Fatalf("sig %v", sig)
	}
	if len(leaves) != 1 {
		t.Fatalf("leaves %d, want only the tensor", len(leaves))
	}
}

func TestSigMatchAndRelax(t *testing.T) {
	pat := []string{"T:4,8", "i:3"}
	if !SigMatch(pat, []string{"T:4,8", "i:3"}) {
		t.Fatal("exact match failed")
	}
	if SigMatch(pat, []string{"T:3,8", "i:3"}) {
		t.Fatal("dim mismatch matched")
	}
	if SigMatch(pat, []string{"T:4,8", "i:4"}) {
		t.Fatal("scalar mismatch matched")
	}
	relaxed := RelaxSignature(pat, []string{"T:3,8", "i:3"})
	if relaxed == nil || relaxed[0] != "T:?,8" {
		t.Fatalf("relax got %v", relaxed)
	}
	// The relaxed pattern matches both shapes (the Figure 4 hierarchy).
	if !SigMatch(relaxed, []string{"T:4,8", "i:3"}) || !SigMatch(relaxed, []string{"T:2,8", "i:3"}) {
		t.Fatal("relaxed pattern rejects member shapes")
	}
	if SigMatch(relaxed, []string{"T:4,9", "i:3"}) {
		t.Fatal("relaxed pattern matches foreign shape")
	}
	if RelaxSignature(pat, []string{"T:4,8", "i:4"}) != nil {
		t.Fatal("scalar difference must not relax")
	}
}

func TestConvertRecursionEmitsInvoke(t *testing.T) {
	src := `
def fact(x, n):
    if n <= 0:
        return x
    return x * fact(x, n - 1)
`
	args := []minipy.Value{minipy.NewTensor(tensor.Scalar(2)), minipy.NewTensor(tensor.Scalar(3))}
	fn, prof, it, store := setup(t, src, "fact", [][]minipy.Value{args, args, args})
	res, err := ConvertCall(fn, args, prof, it.Builtins, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dynamic {
		t.Fatal("recursive graphs are dynamic")
	}
	found := false
	for _, n := range res.Graph.Nodes {
		if n.Op == "Invoke" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no Invoke emitted: %v", res.Graph.CountOps())
	}
	feeds := map[string]graph.Val{"f0": tensor.Scalar(2), "f1": tensor.Scalar(3)}
	out, err := exec.Run(res.Graph, feeds, exec.Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := graph.AsTensor(exec.Unwrap(out.Outputs[0]))
	if got.Item() != 16 { // 2 * 2 * 2 * 2
		t.Fatalf("fact graph got %v want 16", got.Item())
	}
}

func TestFinalizeTrainingAddsUpdatesWithAssertDeps(t *testing.T) {
	src := `
def loss(x):
    w = variable("w", [1, 1])
    return reduce_mean(matmul(x, w) ** 2.0)
`
	args := []minipy.Value{minipy.NewTensor(tensor.FromRows([][]float64{{2}}))}
	fn, prof, it, store := setup(t, src, "loss", [][]minipy.Value{args, args, args})
	res, err := ConvertCall(fn, args, prof, it.Builtins, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := FinalizeTraining(res, 0.1); err != nil {
		t.Fatal(err)
	}
	var upd *graph.Node
	for _, n := range res.Graph.Nodes {
		if n.Op == "AssignSub" {
			upd = n
		}
	}
	if upd == nil {
		t.Fatal("no AssignSub emitted")
	}
	if len(res.Asserts) > 0 && len(upd.ControlDeps) == 0 {
		t.Fatal("update not gated on assertions")
	}
	before := store.MustGet("w").Clone()
	if _, err := exec.Run(res.Graph, map[string]graph.Val{"f0": tensor.FromRows([][]float64{{2}})},
		exec.Options{Store: store}); err != nil {
		t.Fatal(err)
	}
	if tensor.Equal(before, store.MustGet("w")) {
		t.Fatal("training step did not update the variable")
	}
}
