// Package convert implements the paper's primary contribution: the
// Speculative Graph Generator. Given an imperative minipy function, an
// exemplar invocation (the live argument values of a recent call), and the
// runtime profile gathered by internal/profile, it partially evaluates the
// function's AST into a symbolic dataflow graph (internal/graph):
//
//   - tensor-valued inputs become Placeholders; scalar inputs are specialized
//     to constants (and are part of the graph-cache signature, so a changed
//     scalar is a cache miss, not a wrong answer);
//   - stable conditional branches are pruned with an AssertOp guarding the
//     assumed direction; unstable branches become Switch/Merge dataflow
//     (§4.2.1);
//   - loops with profile-stable trip counts are either fully unrolled
//     (+UNRL) or emitted as a structured Loop op over a once-converted body
//     subgraph (BASE);
//   - user function calls are inlined; recursion becomes an InvokeOp over
//     the function's own subgraph (following [20]);
//   - object attribute and subscript accesses become PyGetAttr/PySetAttr/
//     PyGetSubscr/PySetSubscr heap ops with deferred write-back (§4.2.3);
//     profile-stable scalar attributes are specialized to constants guarded
//     by an equality AssertOp (§4.2.2);
//   - programs using features without a graph representation return
//     ErrNotConvertible, leaving the function on the imperative executor
//     (§4.3).
//
// The same machinery with Trace=true reproduces the defun-style tracing
// baseline: no assertions are emitted, attribute state is baked as constants,
// and recursion or state writes are conversion errors — exactly the failure
// modes Table 1 and Figure 6 of the paper attribute to tracing converters.
package convert

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/graph"
	"repro/internal/minipy"
	"repro/internal/profile"
	"repro/internal/tensor"
)

// Options selects the speculation level; the flags map 1:1 onto the paper's
// Figure 7 ablation (+UNRL, +SPCN; +PARL is an executor option).
type Options struct {
	// Unroll enables control-flow unrolling and branch pruning (+UNRL).
	Unroll bool
	// Specialize enables shape/value specialization and marks the graph
	// eligible for the optimizer passes (+SPCN).
	Specialize bool
	// Trace switches to unsafe defun-style conversion (no guards).
	Trace bool
	// Distrust lists AST node IDs whose speculative assumptions failed
	// before; the converter will not re-speculate on them.
	Distrust map[int]bool
	// MaxInlineDepth bounds recursive inlining before switching to InvokeOp.
	MaxInlineDepth int
}

// ErrNotConvertible wraps reasons a function must stay imperative.
var ErrNotConvertible = errors.New("not convertible")

// notConvertible builds a classified conversion failure.
func notConvertible(n minipy.Node, format string, args ...any) error {
	line := 0
	if n != nil {
		line, _ = n.Pos()
	}
	return fmt.Errorf("%w: line %d: %s", ErrNotConvertible, line, fmt.Sprintf(format, args...))
}

// Result is a successfully generated graph plus everything the runtime needs
// to execute and cache it.
type Result struct {
	Graph *graph.Graph
	// Loss is the port holding the function's return value.
	Loss graph.Port
	// Dynamic reports that the graph contains dynamic control flow
	// (Switch/Merge/Invoke/Loop) or unknown shapes, so gradients must be
	// computed by the executor's trace tape rather than statically.
	Dynamic bool
	// Asserts lists the embedded assumption checks.
	Asserts []*graph.Node
	// VarNames are the model parameters read by the graph.
	VarNames []string
	// Signature is the cache-key pattern for the exemplar invocation.
	Signature []string
	// NumFeeds is the number of runtime-fed placeholders (f0..fN-1).
	NumFeeds int
}

// Converter holds conversion state. One Converter produces one Result.
type Converter struct {
	opts Options
	prof *profile.Profile
	reg  *minipy.Registry

	g        *graph.Graph
	asserts  []*graph.Node
	dynamic  bool
	varNames map[string]bool
	feeds    int

	// shapes tracks statically-known tensor shapes per port for gradient
	// attrs (Concat widths, Slice inShape) and shape assertions.
	shapes map[graph.Port][]int

	// funcGraphs maps function definition nodes to their (possibly still
	// under construction) subgraphs, enabling recursion via InvokeOp.
	funcGraphs map[minipy.Node]*graph.Graph
	onStack    map[minipy.Node]int

	// scratch interpreter evaluates static (build-time) arithmetic with
	// exact minipy semantics.
	scratch *minipy.Interp

	// lastState chains heap-mutation ops in program order via control deps.
	lastState *graph.Node
}

// ConvertCall generates a graph for calling fn with the given exemplar
// arguments. The returned Result's placeholders f0..fN-1 correspond to the
// leaves discovered by Flatten on (args ++ captures); captures are the live
// values of fn's free variables.
func ConvertCall(fn *minipy.FuncVal, args []minipy.Value, prof *profile.Profile, reg *minipy.Registry, opts Options) (*Result, error) {
	if opts.MaxInlineDepth == 0 {
		opts.MaxInlineDepth = 64
	}
	c := &Converter{
		opts:       opts,
		prof:       prof,
		reg:        reg,
		g:          graph.New(),
		varNames:   make(map[string]bool),
		shapes:     make(map[graph.Port][]int),
		funcGraphs: make(map[minipy.Node]*graph.Graph),
		onStack:    make(map[minipy.Node]int),
		scratch:    minipy.NewInterp(reg),
	}
	sig, _ := Flatten(fn, args)

	// Bind arguments (and the bound self, if any) symbolically.
	env := newEnv(nil)
	env.conv = c
	params := fn.Params
	allArgs := args
	if fn.Self != nil {
		allArgs = append([]minipy.Value{fn.Self}, args...)
	}
	if len(allArgs) > len(params) {
		return nil, notConvertible(fn.Def, "%s() takes %d arguments, got %d", fn.Name, len(params), len(allArgs))
	}
	leafIdx := 0
	for i, v := range allArgs {
		s := c.valueToSym(v, &leafIdx)
		env.set(params[i], s)
	}
	// Defaults for missing trailing params.
	for i := len(allArgs); i < len(params); i++ {
		if i >= len(fn.Defaults) || fn.Defaults[i] == nil {
			return nil, notConvertible(fn.Def, "%s() missing argument %q", fn.Name, params[i])
		}
		dv, err := c.scratch.CallFunction(&minipy.FuncVal{Name: "<default>", LambdaBody: fn.Defaults[i], Env: fn.Env}, nil)
		if err != nil {
			return nil, notConvertible(fn.Def, "default for %q: %v", params[i], err)
		}
		env.set(params[i], c.valueToSym(dv, &leafIdx))
	}
	// Closure captures become call inputs (same walk order as Flatten), so
	// per-iteration data captured by the optimized lambda is runtime-fed, not
	// baked — the correctness distinction between JANUS and tracing.
	for _, name := range CaptureNames(fn) {
		if v, ok := fn.Env.Lookup(name); ok {
			env.set(name, c.valueToSym(v, &leafIdx))
		}
	}
	env.closure = fn.Env

	var ret *sym
	var err error
	if fn.LambdaBody != nil {
		ret, err = c.expr(fn.LambdaBody, env)
	} else {
		ret, err = c.block(fn.Body, env)
	}
	if err != nil {
		return nil, err
	}
	if ret == nil {
		ret = &sym{kind: kStatic, val: minipy.None}
	}
	lossPort, err := c.asTensorPort(ret, fn.Def)
	if err != nil {
		return nil, notConvertible(fn.Def, "return value: %v", err)
	}
	c.g.Outputs = []graph.Port{lossPort}
	names := make([]string, 0, len(c.varNames))
	for n := range c.varNames {
		names = append(names, n)
	}
	return &Result{
		Graph:     c.g,
		Loss:      lossPort,
		Dynamic:   c.dynamic,
		Asserts:   c.asserts,
		VarNames:  names,
		Signature: sig,
		NumFeeds:  c.feeds,
	}, nil
}

// FinalizeTraining appends gradient and parameter-update operations for a
// static graph ("operations for automatic differentiation and model
// parameter updates are also automatically inserted", §3.1). Every update
// gets control dependencies on every AssertOp so state changes only happen
// once all assumptions validated. Dynamic graphs skip this: the runtime uses
// the executor's trace tape and applies the optimizer itself.
func FinalizeTraining(r *Result, lr float64) error {
	if r.Dynamic {
		return nil
	}
	grads, err := graph.Gradients(r.Graph, r.Loss, r.VarNames)
	if err != nil {
		return err
	}
	for name, gp := range grads {
		upd := r.Graph.Add("AssignSub", map[string]graph.Val{"name": name, "lr": lr}, gp)
		upd.ControlDeps = append(upd.ControlDeps, r.Asserts...)
		r.Graph.Updates = append(r.Graph.Updates, upd)
	}
	return nil
}

// --- signature / feed flattening ---------------------------------------------

// CaptureNames returns the free variables of fn whose current values should
// be treated as call inputs (tensors, containers, objects, scalars); names
// bound to functions, classes, builtins or nothing at all resolve statically.
func CaptureNames(fn *minipy.FuncVal) []string {
	if fn.Env == nil {
		return nil
	}
	var out []string
	for _, name := range minipy.FreeVars(fn) {
		v, ok := fn.Env.Lookup(name)
		if !ok {
			continue
		}
		switch v.(type) {
		case *minipy.FuncVal, *minipy.ClassVal, *minipy.BuiltinVal, *minipy.DictVal, minipy.RangeVal:
			continue
		}
		out = append(out, name)
	}
	return out
}

// sigSink receives the signature tokens of walkSignature. Two sinks exist:
// tokenSink materializes the []string cache-key signature (Flatten) and
// hashSink folds the same token stream into an FNV-1a hash without
// allocating (FlattenHash). Sharing one walk guarantees the hash can never
// disagree structurally with the token form.
type sigSink interface {
	token(tag byte, s string)
	tokenInt(tag byte, v int64)
	tensorTok(shape []int)
}

// tokenSink builds the human-readable signature used by SigMatch.
type tokenSink struct{ sig []string }

func (t *tokenSink) token(tag byte, s string) {
	switch tag {
	case 's':
		t.sig = append(t.sig, "s:"+s)
	case 'O':
		t.sig = append(t.sig, "O:"+s)
	case 'c':
		t.sig = append(t.sig, "cls:"+s)
	case 'B':
		t.sig = append(t.sig, "bi:"+s)
	case '?':
		t.sig = append(t.sig, "?:"+s)
	case 'C':
		t.sig = append(t.sig, "cap:"+s)
	case 'n':
		t.sig = append(t.sig, "none")
	case ']':
		t.sig = append(t.sig, "]")
	case ')':
		t.sig = append(t.sig, ")")
	}
}

func (t *tokenSink) tokenInt(tag byte, v int64) {
	switch tag {
	case 'i':
		t.sig = append(t.sig, fmt.Sprintf("i:%d", v))
	case 'f':
		t.sig = append(t.sig, fmt.Sprintf("f:%g", math.Float64frombits(uint64(v))))
	case 'b':
		t.sig = append(t.sig, fmt.Sprintf("b:%v", v != 0))
	case '[':
		t.sig = append(t.sig, fmt.Sprintf("[%d", v))
	case '(':
		t.sig = append(t.sig, fmt.Sprintf("(%d", v))
	case '{':
		t.sig = append(t.sig, fmt.Sprintf("{%d}", v))
	case 'F':
		t.sig = append(t.sig, fmt.Sprintf("fn:%d", v))
	}
}

func (t *tokenSink) tensorTok(shape []int) {
	t.sig = append(t.sig, "T:"+shapeToken(shape))
}

// hashSink folds the token stream into 64-bit FNV-1a.
type hashSink struct{ h uint64 }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func newHashSink() *hashSink { return &hashSink{h: fnvOffset} }

func (hs *hashSink) byte(b byte) { hs.h = (hs.h ^ uint64(b)) * fnvPrime }

func (hs *hashSink) u64(v uint64) {
	for i := 0; i < 8; i++ {
		hs.byte(byte(v))
		v >>= 8
	}
}

func (hs *hashSink) token(tag byte, s string) {
	hs.byte(tag)
	for i := 0; i < len(s); i++ {
		hs.byte(s[i])
	}
	hs.byte(0)
}

func (hs *hashSink) tokenInt(tag byte, v int64) {
	hs.byte(tag)
	hs.u64(uint64(v))
}

func (hs *hashSink) tensorTok(shape []int) {
	hs.byte('T')
	hs.u64(uint64(len(shape)))
	for _, d := range shape {
		hs.u64(uint64(d))
	}
}

// walkSignature visits a call's argument values (including a bound self)
// and the function's free-variable captures in the converter's canonical
// order, emitting signature tokens to sink and appending runtime-fed leaf
// values (tensors, objects) to leaves.
func walkSignature(fn *minipy.FuncVal, args []minipy.Value, sink sigSink, leaves []minipy.Value) []minipy.Value {
	var walk func(v minipy.Value)
	walk = func(v minipy.Value) {
		switch x := v.(type) {
		case *minipy.TensorVal:
			sink.tensorTok(x.T().Shape())
			leaves = append(leaves, v)
		case minipy.IntVal:
			sink.tokenInt('i', int64(x))
		case minipy.FloatVal:
			sink.tokenInt('f', int64(math.Float64bits(float64(x))))
		case minipy.BoolVal:
			b := int64(0)
			if x {
				b = 1
			}
			sink.tokenInt('b', b)
		case minipy.StrVal:
			sink.token('s', string(x))
		case minipy.NoneVal:
			sink.token('n', "")
		case *minipy.ListVal:
			sink.tokenInt('[', int64(len(x.Items)))
			for _, e := range x.Items {
				walk(e)
			}
			sink.token(']', "")
		case *minipy.TupleVal:
			sink.tokenInt('(', int64(len(x.Items)))
			for _, e := range x.Items {
				walk(e)
			}
			sink.token(')', "")
		case *minipy.ObjectVal:
			sink.token('O', x.Class.Name)
			leaves = append(leaves, v)
		case *minipy.DictVal:
			sink.tokenInt('{', int64(len(x.Entries)))
		case *minipy.FuncVal:
			id := -1
			if x.Def != nil {
				id = x.Def.ID()
			}
			sink.tokenInt('F', int64(id))
		case *minipy.ClassVal:
			sink.token('c', x.Name)
		case *minipy.BuiltinVal:
			sink.token('B', x.Name)
		default:
			sink.token('?', v.TypeName())
		}
	}
	if fn.Self != nil {
		walk(fn.Self)
	}
	for _, a := range args {
		walk(a)
	}
	for _, name := range CaptureNames(fn) {
		if v, ok := fn.Env.Lookup(name); ok {
			sink.token('C', name)
			walk(v)
		}
	}
	return leaves
}

// Flatten walks a call's argument values (including a bound self) and the
// function's free-variable captures, producing the cache-key signature
// tokens and the ordered list of runtime-fed leaf values. The converter and
// the engine use the same walk so placeholder indices always line up.
func Flatten(fn *minipy.FuncVal, args []minipy.Value) (sig []string, leaves []minipy.Value) {
	ts := &tokenSink{}
	leaves = walkSignature(fn, args, ts, nil)
	return ts.sig, leaves
}

// FlattenHash is the allocation-light counterpart of Flatten: it runs the
// same signature walk but folds the token stream into a 64-bit FNV-1a hash
// instead of materializing strings. Engines memoize hash → compiled-graph
// per function so a repeated Call with an already-seen concrete signature
// skips token building and the SigMatch scan entirely. Equal signatures
// always produce equal hashes (same walk). The converse does not hold: two
// DIFFERENT signatures colliding on 64 bits would alias in the memo, so
// consumers must cross-check cheap structural facts on a hash hit (the
// engine verifies the leaf count, which pins the feed arity) and accept the
// residual same-arity collision risk (~n²/2⁶⁴ for n live signatures per
// function — negligible, and bounded by the memo's size cap).
func FlattenHash(fn *minipy.FuncVal, args []minipy.Value) (hash uint64, leaves []minipy.Value) {
	hs := newHashSink()
	leaves = walkSignature(fn, args, hs, nil)
	return hs.h, leaves
}

func shapeToken(sh []int) string {
	parts := make([]string, len(sh))
	for i, d := range sh {
		if d < 0 {
			parts[i] = "?"
		} else {
			parts[i] = fmt.Sprintf("%d", d)
		}
	}
	return strings.Join(parts, ",")
}

// SigMatch reports whether a concrete signature matches a cached pattern
// (wildcard dims "?" in the pattern match any size). This is the
// validate-before-execute assumption check of Figure 2 step 1: a mismatch is
// a cache miss, never a wrong execution.
func SigMatch(pattern, concrete []string) bool {
	if len(pattern) != len(concrete) {
		return false
	}
	for i := range pattern {
		p, c := pattern[i], concrete[i]
		if p == c {
			continue
		}
		if !strings.HasPrefix(p, "T:") || !strings.HasPrefix(c, "T:") {
			return false
		}
		pd := strings.Split(p[2:], ",")
		cd := strings.Split(c[2:], ",")
		if len(pd) != len(cd) {
			return false
		}
		for j := range pd {
			if pd[j] != "?" && pd[j] != cd[j] {
				return false
			}
		}
	}
	return true
}

// RelaxSignature merges a cached pattern with a newly observed concrete
// signature, wildcarding tensor dims that differ (the Figure 4 relaxation).
// It returns nil if the signatures differ in a non-relaxable way.
func RelaxSignature(pattern, concrete []string) []string {
	if len(pattern) != len(concrete) {
		return nil
	}
	out := make([]string, len(pattern))
	for i := range pattern {
		p, c := pattern[i], concrete[i]
		if p == c {
			out[i] = p
			continue
		}
		if !strings.HasPrefix(p, "T:") || !strings.HasPrefix(c, "T:") {
			return nil
		}
		pd := strings.Split(p[2:], ",")
		cd := strings.Split(c[2:], ",")
		if len(pd) != len(cd) {
			return nil
		}
		merged := make([]string, len(pd))
		for j := range pd {
			if pd[j] == cd[j] {
				merged[j] = pd[j]
			} else {
				merged[j] = "?"
			}
		}
		out[i] = "T:" + strings.Join(merged, ",")
	}
	return out
}

// --- converter helpers ---------------------------------------------------------

// valueToSym classifies a runtime value into a symbolic value, creating
// placeholders for tensor/object leaves (consuming leaf indices in Flatten
// order).
func (c *Converter) valueToSym(v minipy.Value, leafIdx *int) *sym {
	switch x := v.(type) {
	case *minipy.TensorVal:
		ph := c.g.Placeholder(fmt.Sprintf("f%d", *leafIdx))
		*leafIdx++
		c.feeds++
		sh := x.T().Shape()
		if c.opts.Specialize {
			c.shapes[ph.P()] = append([]int(nil), sh...)
		} else {
			c.dynamic = true // unknown shapes force tape-mode gradients
		}
		return &sym{kind: kDyn, port: ph.P(), exemplar: v}
	case *minipy.ObjectVal:
		ph := c.g.Placeholder(fmt.Sprintf("f%d", *leafIdx))
		*leafIdx++
		c.feeds++
		return &sym{kind: kDyn, port: ph.P(), exemplar: v, isRef: true}
	case *minipy.ListVal:
		elems := make([]*sym, len(x.Items))
		for i, e := range x.Items {
			elems[i] = c.valueToSym(e, leafIdx)
		}
		return &sym{kind: kSeq, seq: &seqSym{elems: elems}}
	case *minipy.TupleVal:
		elems := make([]*sym, len(x.Items))
		for i, e := range x.Items {
			elems[i] = c.valueToSym(e, leafIdx)
		}
		return &sym{kind: kSeq, seq: &seqSym{elems: elems, isTuple: true}}
	default:
		return &sym{kind: kStatic, val: v}
	}
}

// staticToSym classifies a value reached through a static (build-time)
// lookup, e.g. a closure variable: tensors are baked as constants rather
// than fed (they are part of the environment the assumptions describe).
func (c *Converter) staticToSym(v minipy.Value) *sym {
	switch x := v.(type) {
	case *minipy.TensorVal:
		n := c.g.Const(x.T())
		c.shapes[n.P()] = append([]int(nil), x.T().Shape()...)
		return &sym{kind: kDyn, port: n.P(), exemplar: v}
	case *minipy.ListVal:
		elems := make([]*sym, len(x.Items))
		for i, e := range x.Items {
			elems[i] = c.staticToSym(e)
		}
		return &sym{kind: kSeq, seq: &seqSym{elems: elems}}
	case *minipy.TupleVal:
		elems := make([]*sym, len(x.Items))
		for i, e := range x.Items {
			elems[i] = c.staticToSym(e)
		}
		return &sym{kind: kSeq, seq: &seqSym{elems: elems, isTuple: true}}
	case *minipy.ObjectVal:
		n := c.g.ConstVal(v)
		return &sym{kind: kDyn, port: n.P(), exemplar: v, isRef: true}
	default:
		return &sym{kind: kStatic, val: v}
	}
}

// addAssert emits an AssertOp unless running in trace mode (trace-based
// conversion emits no guards — that is precisely its unsafety). astID links
// the assertion back to the AST node whose assumption it validates, so a
// runtime failure can distrust exactly that assumption before regeneration.
func (c *Converter) addAssert(input graph.Port, kind, desc string, astID int, attrs map[string]graph.Val) *graph.Node {
	if c.opts.Trace {
		return nil
	}
	if attrs == nil {
		attrs = map[string]graph.Val{}
	}
	attrs["kind"] = kind
	attrs["desc"] = desc
	attrs["ast"] = astID
	a := c.g.Add("Assert", attrs, input)
	c.asserts = append(c.asserts, a)
	return a
}

// asTensorPort lowers a sym to a tensor-valued port.
func (c *Converter) asTensorPort(s *sym, at minipy.Node) (graph.Port, error) {
	switch s.kind {
	case kDyn:
		return s.port, nil
	case kStatic:
		switch v := s.val.(type) {
		case minipy.IntVal:
			n := c.g.Const(tensor.Scalar(float64(v)))
			c.shapes[n.P()] = []int{}
			return n.P(), nil
		case minipy.FloatVal:
			n := c.g.Const(tensor.Scalar(float64(v)))
			c.shapes[n.P()] = []int{}
			return n.P(), nil
		case minipy.BoolVal:
			b := 0.0
			if v {
				b = 1
			}
			n := c.g.Const(tensor.Scalar(b))
			c.shapes[n.P()] = []int{}
			return n.P(), nil
		case *minipy.TensorVal:
			n := c.g.Const(v.T())
			c.shapes[n.P()] = append([]int(nil), v.T().Shape()...)
			return n.P(), nil
		}
		return graph.Port{}, notConvertible(at, "cannot use %s as a tensor", s.val.TypeName())
	}
	return graph.Port{}, notConvertible(at, "cannot use %s as a tensor", s.describe())
}

// asAnyPort lowers a sym to a port of any runtime kind (for Switch data,
// Invoke args, heap ops).
func (c *Converter) asAnyPort(s *sym, at minipy.Node) (graph.Port, error) {
	switch s.kind {
	case kDyn:
		return s.port, nil
	case kStatic:
		switch v := s.val.(type) {
		case minipy.IntVal:
			return c.g.ConstVal(int(v)).P(), nil
		case minipy.FloatVal:
			return c.g.ConstVal(float64(v)).P(), nil
		case minipy.BoolVal:
			return c.g.ConstVal(bool(v)).P(), nil
		case minipy.StrVal:
			return c.g.ConstVal(string(v)).P(), nil
		case minipy.NoneVal:
			return c.g.ConstVal(nil).P(), nil
		case *minipy.TensorVal:
			return c.g.Const(v.T()).P(), nil
		}
		return c.g.ConstVal(s.val).P(), nil
	case kSeq:
		// Lists crossing a runtime boundary (recursive returns, branch
		// merges) become boxed []Val values via Pack; gradient support comes
		// from the executor's trace tape, so the graph turns dynamic.
		ports := make([]graph.Port, len(s.seq.elems))
		for i, el := range s.seq.elems {
			p, err := c.asAnyPort(el, at)
			if err != nil {
				return graph.Port{}, err
			}
			ports[i] = p
		}
		c.dynamic = true
		return c.g.Add("Pack", nil, ports...).P(), nil
	}
	return graph.Port{}, notConvertible(at, "cannot lower %s to a runtime value", s.describe())
}
