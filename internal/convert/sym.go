package convert

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/minipy"
)

// symKind classifies symbolic values during partial evaluation.
type symKind int

const (
	// kStatic is a build-time-known minipy value (scalar, string, None,
	// function, class, builtin, dict). Static values are folded into the
	// graph structure; changing them is a cache miss (value specialization).
	kStatic symKind = iota
	// kDyn is a runtime value flowing through a graph port. exemplar (when
	// non-nil) is the value observed at conversion time, used to classify
	// downstream attribute accesses; isRef marks heap references (objects,
	// runtime lists) rather than tensors/scalars.
	kDyn
	// kSeq is a build-time list/tuple whose elements are syms (possibly
	// dynamic). Python list aliasing is preserved via the shared seq pointer.
	kSeq
	// kAccum is a Loop-op accumulator sentinel inside a BASE-mode loop body:
	// it only supports append.
	kAccum
)

// sym is one symbolic value.
type sym struct {
	kind     symKind
	val      minipy.Value // kStatic
	port     graph.Port   // kDyn
	exemplar minipy.Value // kDyn: value seen during conversion (may be nil)
	isRef    bool         // kDyn: heap reference (object / runtime list)
	seq      *seqSym      // kSeq
	self     *sym         // kStatic FuncVal: bound receiver
	accum    *accumInfo   // kAccum
}

type seqSym struct {
	elems   []*sym
	isTuple bool
}

type accumInfo struct {
	index int // accumulator slot in the loop body outputs
	ports []graph.Port
}

func (s *sym) describe() string {
	switch s.kind {
	case kStatic:
		return "static " + s.val.TypeName()
	case kDyn:
		if s.isRef {
			return "heap reference"
		}
		return "dynamic value"
	case kSeq:
		if s.seq.isTuple {
			return fmt.Sprintf("tuple[%d]", len(s.seq.elems))
		}
		return fmt.Sprintf("list[%d]", len(s.seq.elems))
	case kAccum:
		return "loop accumulator"
	}
	return "unknown"
}

// staticBool extracts a build-time boolean if possible.
func (s *sym) staticBool() (bool, bool) {
	if s.kind != kStatic {
		if s.kind == kSeq {
			return len(s.seq.elems) > 0, true
		}
		return false, false
	}
	b, err := minipy.Truthy(s.val)
	if err != nil {
		return false, false
	}
	return b, true
}

// staticInt extracts a build-time integer if possible.
func (s *sym) staticInt() (int, bool) {
	if s.kind != kStatic {
		return 0, false
	}
	n, ok := minipy.AsInt(s.val)
	return int(n), ok
}

// staticStr extracts a build-time string if possible.
func (s *sym) staticStr() (string, bool) {
	if s.kind != kStatic {
		return "", false
	}
	v, ok := s.val.(minipy.StrVal)
	return string(v), ok
}

// env is the symbolic environment: lexical frames of name->sym bindings.
// closure (set on function frames) resolves free names against the live
// minipy environment at build time.
type env struct {
	vars    map[string]*sym
	parent  *env
	closure *minipy.Env
	conv    *Converter
	globals map[string]bool
	// gate, when set, wraps dynamic reads from enclosing frames through a
	// Switch so branch-local consumers are dead when the branch is untaken.
	gate *branchGate
	// resolver, when set, intercepts name resolution for this frame (used by
	// BASE-mode loop bodies to capture loop-invariant values).
	resolver interface {
		resolve(name string) (*sym, bool)
	}
}

func newEnv(parent *env) *env {
	e := &env{vars: make(map[string]*sym), parent: parent}
	if parent != nil {
		e.conv = parent.conv
	}
	return e
}

// lookup resolves a name through symbolic frames, then the build-time
// closure environment, then the builtin registry. Reads that cross a branch
// gate (dynamic conditional) are routed through the gate's Switch.
func (e *env) lookup(name string) (*sym, bool) {
	for s := e; s != nil; s = s.parent {
		if s.globals != nil && s.globals[name] {
			break // redirect to globals (handled below via closure module env)
		}
		if v, ok := s.vars[name]; ok {
			if s != e && e.gate != nil {
				return e.gate.gate(v), true
			}
			return v, true
		}
		if s.resolver != nil {
			if v, ok := s.resolver.resolve(name); ok {
				return v, true
			}
		}
		if s.closure != nil {
			if v, ok := s.closure.Lookup(name); ok {
				sv := e.conv.staticToSym(v)
				if e.gate != nil {
					return e.gate.gate(sv), true
				}
				return sv, true
			}
		}
	}
	// Global-declared names: resolve via the outermost closure's module env.
	for s := e; s != nil; s = s.parent {
		if s.closure != nil {
			if v, ok := s.closure.Module().Lookup(name); ok {
				return e.conv.staticToSym(v), true
			}
			break
		}
	}
	return nil, false
}

func (e *env) set(name string, v *sym) {
	if e.globals != nil && e.globals[name] {
		// Global writes inside converted code are not supported by the graph
		// generator; callers treat this as not-convertible before reaching
		// here. Store locally as a fallback.
		e.vars[name] = v
		return
	}
	e.vars[name] = v
}

// flat returns a copy of all bindings visible in this frame (used for branch
// merging).
func (e *env) snapshot() map[string]*sym {
	out := make(map[string]*sym, len(e.vars))
	for k, v := range e.vars {
		out[k] = v
	}
	return out
}
