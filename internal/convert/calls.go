package convert

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/minipy"
	"repro/internal/tensor"
)

// call converts a call expression: whitelisted builtins map to graph ops
// (§4.3.1), user functions are inlined, recursion becomes InvokeOp ([20]),
// and class instantiation / non-whitelisted builtins are not convertible.
func (c *Converter) call(ex *minipy.CallExpr, e *env) (*sym, error) {
	// List/dict method calls are resolved syntactically (obj.append(x)) so
	// the attr converter never needs list-method syms.
	if at, ok := ex.Fn.(*minipy.AttrExpr); ok {
		recv, err := c.expr(at.X, e)
		if err != nil {
			return nil, err
		}
		if recv.kind == kSeq || recv.kind == kAccum {
			return c.seqMethod(ex, at.Name, recv, e)
		}
		fn, err := c.attrCallable(at, recv)
		if err != nil {
			return nil, err
		}
		if fn != nil {
			args, kwargs, err := c.callArgs(ex, e)
			if err != nil {
				return nil, err
			}
			return c.dispatch(ex, fn, args, kwargs)
		}
	}
	fnSym, err := c.expr(ex.Fn, e)
	if err != nil {
		return nil, err
	}
	args, kwargs, err := c.callArgs(ex, e)
	if err != nil {
		return nil, err
	}
	return c.dispatch(ex, fnSym, args, kwargs)
}

// attrCallable resolves obj.method for dynamic object receivers; returns nil
// when the attribute is plain data (caller falls through to c.attr).
func (c *Converter) attrCallable(at *minipy.AttrExpr, recv *sym) (*sym, error) {
	if recv.kind != kDyn || !recv.isRef {
		return nil, nil
	}
	o, ok := recv.exemplar.(*minipy.ObjectVal)
	if !ok {
		return nil, nil
	}
	if _, isData := o.Attrs[at.Name]; isData {
		return nil, nil
	}
	if m, isMethod := o.Class.Methods[at.Name]; isMethod {
		return &sym{kind: kStatic, val: m, self: recv}, nil
	}
	return nil, nil
}

func (c *Converter) callArgs(ex *minipy.CallExpr, e *env) ([]*sym, map[string]*sym, error) {
	args := make([]*sym, len(ex.Args))
	for i, a := range ex.Args {
		v, err := c.expr(a, e)
		if err != nil {
			return nil, nil, err
		}
		args[i] = v
	}
	var kwargs map[string]*sym
	if len(ex.KwNames) > 0 {
		kwargs = make(map[string]*sym, len(ex.KwNames))
		for i, n := range ex.KwNames {
			v, err := c.expr(ex.KwValues[i], e)
			if err != nil {
				return nil, nil, err
			}
			kwargs[n] = v
		}
	}
	return args, kwargs, nil
}

func (c *Converter) dispatch(ex *minipy.CallExpr, fnSym *sym, args []*sym, kwargs map[string]*sym) (*sym, error) {
	if fnSym.kind != kStatic {
		// Calling a dynamically-resolved callee: JANUS profiles callee
		// stability; our statics cover all model patterns, so treat dynamic
		// callees as not convertible.
		if fnSym.kind == kDyn && fnSym.isRef {
			if o, ok := fnSym.exemplar.(*minipy.ObjectVal); ok {
				if m, isCall := o.Class.Methods["__call__"]; isCall {
					return c.userCall(ex, m, fnSym, args, kwargs)
				}
			}
		}
		return nil, notConvertible(ex, "dynamic callee")
	}
	switch f := fnSym.val.(type) {
	case *minipy.BuiltinVal:
		return c.builtinCall(ex, f.Name, args, kwargs)
	case *minipy.FuncVal:
		return c.userCall(ex, f, fnSym.self, args, kwargs)
	case *minipy.ClassVal:
		return nil, notConvertible(ex, "class instantiation inside converted code")
	}
	if o, ok := fnSym.val.(*minipy.ObjectVal); ok {
		if m, isCall := o.Class.Methods["__call__"]; isCall {
			self := c.staticToSym(o)
			return c.userCall(ex, m, self, args, kwargs)
		}
	}
	return nil, notConvertible(ex, "%s is not callable", fnSym.val.TypeName())
}

// seqMethod handles build-time list mutation: append works on static lists
// and loop accumulators; other mutators force fallback.
func (c *Converter) seqMethod(ex *minipy.CallExpr, name string, recv *sym, e *env) (*sym, error) {
	switch name {
	case "append":
		if len(ex.Args) != 1 {
			return nil, notConvertible(ex, "append wants one argument")
		}
		v, err := c.expr(ex.Args[0], e)
		if err != nil {
			return nil, err
		}
		if recv.kind == kAccum {
			if err := c.accumAppend(recv, v, ex); err != nil {
				return nil, err
			}
			return &sym{kind: kStatic, val: minipy.None}, nil
		}
		recv.seq.elems = append(recv.seq.elems, v)
		return &sym{kind: kStatic, val: minipy.None}, nil
	}
	return nil, notConvertible(ex, "list method %q is not convertible", name)
}

// userCall inlines a user-defined function, or emits an InvokeOp when the
// call is recursive.
func (c *Converter) userCall(ex *minipy.CallExpr, fn *minipy.FuncVal, self *sym, args []*sym, kwargs map[string]*sym) (*sym, error) {
	if kwargs != nil {
		return nil, notConvertible(ex, "keyword arguments to user functions are not convertible")
	}
	if fn.Def == nil {
		return nil, notConvertible(ex, "anonymous function without definition node")
	}
	if c.onStack[fn.Def] > 0 {
		// Recursion: InvokeOp against the function's (under-construction)
		// subgraph.
		return c.invokeCall(ex, fn, self, args)
	}
	if len(c.onStack) >= c.opts.MaxInlineDepth {
		return nil, notConvertible(ex, "inline depth limit")
	}
	c.onStack[fn.Def]++
	defer func() { c.onStack[fn.Def]-- }()

	frame := newEnv(nil)
	frame.conv = c
	frame.closure = fn.Env
	params := fn.Params
	if self != nil {
		if len(params) == 0 {
			return nil, notConvertible(ex, "method without self parameter")
		}
		frame.set(params[0], self)
		params = params[1:]
	}
	if len(args) > len(params) {
		return nil, notConvertible(ex, "%s() takes %d arguments, got %d", fn.Name, len(params), len(args))
	}
	for i, a := range args {
		frame.set(params[i], a)
	}
	defOffset := 0
	if self != nil {
		defOffset = 1
	}
	for i := len(args); i < len(params); i++ {
		var d minipy.Expr
		if i+defOffset < len(fn.Defaults) {
			d = fn.Defaults[i+defOffset]
		}
		if d == nil {
			return nil, notConvertible(ex, "%s() missing argument %q", fn.Name, params[i])
		}
		dv, err := c.scratch.CallFunction(&minipy.FuncVal{Name: "<default>", LambdaBody: d, Env: fn.Env}, nil)
		if err != nil {
			return nil, notConvertible(ex, "default: %v", err)
		}
		frame.set(params[i], c.staticToSym(dv))
	}
	if fn.LambdaBody != nil {
		return c.expr(fn.LambdaBody, frame)
	}
	ret, err := c.block(fn.Body, frame)
	if err != nil {
		return nil, err
	}
	if ret == nil {
		ret = &sym{kind: kStatic, val: minipy.None}
	}
	return ret, nil
}

// invokeCall converts a recursive call site into an InvokeOp referencing the
// function's own subgraph (built once, on first recursive encounter).
func (c *Converter) invokeCall(ex *minipy.CallExpr, fn *minipy.FuncVal, self *sym, args []*sym) (*sym, error) {
	if c.opts.Trace {
		// Trace-based conversion cannot represent recursion — the TreeLSTM
		// row of Figure 6/Table 1.
		return nil, notConvertible(ex, "tracing cannot convert recursive function calls")
	}
	fg, err := c.functionGraph(ex, fn, self, args)
	if err != nil {
		return nil, err
	}
	var inputs []graph.Port
	if self != nil {
		p, err := c.asAnyPort(self, ex)
		if err != nil {
			return nil, err
		}
		inputs = append(inputs, p)
	}
	for _, a := range args {
		p, err := c.asAnyPort(a, ex)
		if err != nil {
			return nil, err
		}
		inputs = append(inputs, p)
	}
	c.dynamic = true
	inv := c.g.Add("Invoke", map[string]graph.Val{"func": fg}, inputs...)
	return &sym{kind: kDyn, port: inv.P()}, nil
}

// functionGraph builds (or reuses) the standalone subgraph for a recursive
// function. Placeholders arg0..argN-1 stand for self (if bound) and the
// positional arguments; classification mirrors the exemplar syms of the
// triggering call.
func (c *Converter) functionGraph(ex *minipy.CallExpr, fn *minipy.FuncVal, self *sym, args []*sym) (*graph.Graph, error) {
	if fg, ok := c.funcGraphs[fn.Def]; ok {
		return fg, nil
	}
	fg := graph.New()
	c.funcGraphs[fn.Def] = fg // register before body conversion: recursion

	sub := &Converter{
		opts: c.opts, prof: c.prof, reg: c.reg, g: fg,
		varNames: c.varNames, shapes: make(map[graph.Port][]int),
		funcGraphs: c.funcGraphs, onStack: c.onStack, scratch: c.scratch,
	}
	frame := newEnv(nil)
	frame.conv = sub
	frame.closure = fn.Env

	params := fn.Params
	idx := 0
	bind := func(name string, exemplar *sym) {
		ph := fg.Placeholder(fmt.Sprintf("arg%d", idx))
		idx++
		s := &sym{kind: kDyn, port: ph.P()}
		if exemplar != nil {
			s.exemplar = exemplar.exemplar
			s.isRef = exemplar.isRef
			if exemplar.kind == kStatic {
				s.exemplar = exemplar.val
			}
			if exemplar.kind == kDyn && !exemplar.isRef {
				if sh, ok := c.shapes[exemplar.port]; ok {
					sub.shapes[ph.P()] = sh
				}
			}
		}
		frame.set(name, s)
	}
	if self != nil {
		bind(params[0], self)
		params = params[1:]
	}
	if len(args) != len(params) {
		return nil, notConvertible(ex, "recursive %s(): %d args for %d params", fn.Name, len(args), len(params))
	}
	for i, a := range args {
		bind(params[i], a)
	}

	var ret *sym
	var err error
	if fn.LambdaBody != nil {
		ret, err = sub.expr(fn.LambdaBody, frame)
	} else {
		ret, err = sub.block(fn.Body, frame)
	}
	if err != nil {
		return nil, err
	}
	if ret == nil {
		ret = &sym{kind: kStatic, val: minipy.None}
	}
	rp, err := sub.asAnyPort(ret, ex)
	if err != nil {
		return nil, err
	}
	fg.Outputs = []graph.Port{rp}
	// Asserts inside the function body validate per invocation; surface them
	// for control-dep wiring of updates.
	c.asserts = append(c.asserts, sub.asserts...)
	if sub.dynamic {
		c.dynamic = true
	}
	return fg, nil
}

// --- builtin mapping -----------------------------------------------------------

// builtinCall maps a whitelisted external function onto graph operations.
func (c *Converter) builtinCall(ex *minipy.CallExpr, name string, args []*sym, kwargs map[string]*sym) (*sym, error) {
	b := c.reg.Get(name)
	if b == nil {
		return nil, notConvertible(ex, "unknown builtin %q", name)
	}
	if b.GraphOp == "" {
		return nil, notConvertible(ex, "builtin %q has no graph representation (whitelist, §4.3.1)", name)
	}

	tensorIn := func(i int) (graph.Port, error) {
		if i >= len(args) {
			return graph.Port{}, notConvertible(ex, "%s: missing argument %d", name, i)
		}
		return c.asTensorPort(args[i], ex)
	}
	staticInt := func(i int) (int, error) {
		if i >= len(args) {
			return 0, notConvertible(ex, "%s: missing argument %d", name, i)
		}
		n, ok := args[i].staticInt()
		if !ok {
			return 0, notConvertible(ex, "%s: argument %d must be build-time int", name, i)
		}
		return n, nil
	}
	kwStatic := func(key string, def int) (int, error) {
		v, ok := kwargs[key]
		if !ok {
			return def, nil
		}
		n, ok := v.staticInt()
		if !ok {
			return 0, notConvertible(ex, "%s: keyword %s must be build-time int", name, key)
		}
		return n, nil
	}

	switch name {
	case "matmul":
		a, err := tensorIn(0)
		if err != nil {
			return nil, err
		}
		bp, err := tensorIn(1)
		if err != nil {
			return nil, err
		}
		n := c.g.Add("MatMul", nil, a, bp)
		if sa, ok := c.shapes[a]; ok {
			if sb, ok2 := c.shapes[bp]; ok2 && len(sa) == 2 && len(sb) == 2 {
				c.shapes[n.P()] = []int{sa[0], sb[1]}
			}
		}
		return &sym{kind: kDyn, port: n.P()}, nil

	case "relu", "sigmoid", "tanh", "exp", "log", "softmax":
		op := map[string]string{"relu": "ReLU", "sigmoid": "Sigmoid", "tanh": "Tanh",
			"exp": "Exp", "log": "Log", "softmax": "Softmax"}[name]
		a, err := tensorIn(0)
		if err != nil {
			return nil, err
		}
		n := c.g.Add(op, nil, a)
		c.copyShape(n.P(), a)
		return &sym{kind: kDyn, port: n.P()}, nil

	case "reduce_sum", "reduce_mean":
		op := "Sum"
		if name == "reduce_mean" {
			op = "Mean"
		}
		a, err := tensorIn(0)
		if err != nil {
			return nil, err
		}
		n := c.g.Add(op, nil, a)
		c.shapes[n.P()] = []int{}
		return &sym{kind: kDyn, port: n.P()}, nil

	case "reshape":
		a, err := tensorIn(0)
		if err != nil {
			return nil, err
		}
		sh, err := c.staticShape(args, 1, ex)
		if err != nil {
			return nil, err
		}
		n := c.g.Add("Reshape", map[string]graph.Val{"shape": sh}, a)
		if in, ok := c.shapes[a]; ok {
			c.shapes[n.P()] = resolveReshape(in, sh)
		}
		return &sym{kind: kDyn, port: n.P()}, nil

	case "transpose":
		a, err := tensorIn(0)
		if err != nil {
			return nil, err
		}
		n := c.g.Add("Transpose", nil, a)
		if in, ok := c.shapes[a]; ok && len(in) == 2 {
			c.shapes[n.P()] = []int{in[1], in[0]}
		}
		return &sym{kind: kDyn, port: n.P()}, nil

	case "concat", "stack":
		if len(args) < 1 {
			return nil, notConvertible(ex, "%s wants a list argument", name)
		}
		if args[0].kind == kDyn && args[0].isRef {
			// Runtime list from a Loop accumulator: StackList.
			if name != "stack" {
				return nil, notConvertible(ex, "concat of runtime lists is not supported; use stack")
			}
			n := c.g.Add("StackList", nil, args[0].port)
			return &sym{kind: kDyn, port: n.P()}, nil
		}
		if args[0].kind != kSeq {
			return nil, notConvertible(ex, "%s wants a build-time list", name)
		}
		axis := 0
		if name == "concat" {
			var err error
			axis, err = staticInt(1)
			if err != nil {
				return nil, err
			}
		}
		ports := make([]graph.Port, len(args[0].seq.elems))
		widths := make([]int, len(ports))
		widthsKnown := true
		for i, el := range args[0].seq.elems {
			p, err := c.asTensorPort(el, ex)
			if err != nil {
				return nil, err
			}
			ports[i] = p
			if sh, ok := c.shapes[p]; ok {
				ax := axis
				if name == "stack" {
					widthsKnown = true
				} else {
					if ax < 0 {
						ax += len(sh)
					}
					if ax >= 0 && ax < len(sh) && sh[ax] >= 0 {
						widths[i] = sh[ax]
					} else {
						widthsKnown = false
					}
				}
			} else {
				widthsKnown = false
			}
		}
		if name == "stack" {
			n := c.g.Add("Stack", nil, ports...)
			if sh, ok := c.shapes[ports[0]]; ok {
				c.shapes[n.P()] = append([]int{len(ports)}, sh...)
			}
			return &sym{kind: kDyn, port: n.P()}, nil
		}
		attrs := map[string]graph.Val{"axis": axis}
		if widthsKnown {
			attrs["widths"] = widths
		} else {
			c.dynamic = true // static gradient needs widths
		}
		n := c.g.Add("Concat", attrs, ports...)
		if sh, ok := c.shapes[ports[0]]; ok && widthsKnown {
			out := append([]int(nil), sh...)
			ax := axis
			if ax < 0 {
				ax += len(sh)
			}
			total := 0
			for _, w := range widths {
				total += w
			}
			out[ax] = total
			c.shapes[n.P()] = out
		}
		return &sym{kind: kDyn, port: n.P()}, nil

	case "conv2d":
		x, err := tensorIn(0)
		if err != nil {
			return nil, err
		}
		w, err := tensorIn(1)
		if err != nil {
			return nil, err
		}
		stride, err := kwStatic("stride", 1)
		if err != nil {
			return nil, err
		}
		pad, err := kwStatic("pad", 0)
		if err != nil {
			return nil, err
		}
		n := c.g.Add("Conv2D", map[string]graph.Val{"stride": stride, "pad": pad}, x, w)
		if sx, ok := c.shapes[x]; ok {
			if sw, ok2 := c.shapes[w]; ok2 && len(sx) == 4 && len(sw) == 4 {
				oh := (sx[2]+2*pad-sw[2])/stride + 1
				ow := (sx[3]+2*pad-sw[3])/stride + 1
				c.shapes[n.P()] = []int{sx[0], sw[0], oh, ow}
			}
		}
		return &sym{kind: kDyn, port: n.P()}, nil

	case "max_pool", "avg_pool":
		op := "MaxPool"
		if name == "avg_pool" {
			op = "AvgPool"
		}
		x, err := tensorIn(0)
		if err != nil {
			return nil, err
		}
		k, err := staticInt(1)
		if err != nil {
			return nil, err
		}
		stride, err := staticInt(2)
		if err != nil {
			return nil, err
		}
		n := c.g.Add(op, map[string]graph.Val{"k": k, "stride": stride}, x)
		if sx, ok := c.shapes[x]; ok && len(sx) == 4 {
			c.shapes[n.P()] = []int{sx[0], sx[1], (sx[2]-k)/stride + 1, (sx[3]-k)/stride + 1}
		}
		return &sym{kind: kDyn, port: n.P()}, nil

	case "embedding":
		table, err := tensorIn(0)
		if err != nil {
			return nil, err
		}
		ids, err := c.indexArg(args, 1, ex)
		if err != nil {
			return nil, err
		}
		n := c.g.Add("Gather", nil, table, ids.port)
		if st, ok := c.shapes[table]; ok && len(st) == 2 {
			if cnt, ok2 := ids.count(); ok2 {
				c.shapes[n.P()] = []int{cnt, st[1]}
			}
		}
		return &sym{kind: kDyn, port: n.P()}, nil

	case "one_hot":
		ids, err := c.indexArg(args, 0, ex)
		if err != nil {
			return nil, err
		}
		depth, err := staticInt(1)
		if err != nil {
			return nil, err
		}
		n := c.g.Add("OneHot", map[string]graph.Val{"depth": depth}, ids.port)
		if cnt, ok := ids.count(); ok {
			c.shapes[n.P()] = []int{cnt, depth}
		}
		return &sym{kind: kDyn, port: n.P()}, nil

	case "cross_entropy", "mse":
		op := "CrossEntropy"
		if name == "mse" {
			op = "MSE"
		}
		a, err := tensorIn(0)
		if err != nil {
			return nil, err
		}
		bp, err := tensorIn(1)
		if err != nil {
			return nil, err
		}
		n := c.g.Add(op, nil, a, bp)
		c.shapes[n.P()] = []int{}
		return &sym{kind: kDyn, port: n.P()}, nil

	case "variable":
		vname, ok := args[0].staticStr()
		if !ok {
			return nil, notConvertible(ex, "variable name must be a build-time string")
		}
		sh, err := c.staticShape(args, 1, ex)
		if err != nil {
			return nil, err
		}
		n := c.g.Variable(vname)
		c.shapes[n.P()] = sh
		c.varNames[vname] = true
		return &sym{kind: kDyn, port: n.P()}, nil

	case "batch_norm":
		x, err := tensorIn(0)
		if err != nil {
			return nil, err
		}
		bnName, ok := args[1].staticStr()
		if !ok {
			return nil, notConvertible(ex, "batch_norm name must be a build-time string")
		}
		training, ok := args[2].staticBool()
		if !ok {
			return nil, notConvertible(ex, "batch_norm training flag must resolve at build time (speculate on the branch instead)")
		}
		n := c.g.Add("BatchNorm", map[string]graph.Val{"name": bnName, "training": training}, x)
		c.copyShape(n.P(), x)
		return &sym{kind: kDyn, port: n.P()}, nil

	case "zeros", "ones":
		sh, err := c.staticShape(args, 0, ex)
		if err != nil {
			return nil, err
		}
		var t *tensor.Tensor
		if name == "zeros" {
			t = tensor.Zeros(sh...)
		} else {
			t = tensor.Full(1, sh...)
		}
		n := c.g.Const(t)
		c.shapes[n.P()] = sh
		return &sym{kind: kDyn, port: n.P()}, nil

	case "constant":
		if args[0].kind == kStatic || args[0].kind == kSeq {
			v, err := c.symToValue(args[0], ex)
			if err != nil {
				return nil, err
			}
			t, err := minipy.ValueToTensor(v)
			if err != nil {
				return nil, notConvertible(ex, "constant: %v", err)
			}
			n := c.g.Const(t)
			c.shapes[n.P()] = t.Shape()
			return &sym{kind: kDyn, port: n.P()}, nil
		}
		return args[0], nil // already a tensor port

	case "len":
		a := args[0]
		switch a.kind {
		case kSeq:
			return &sym{kind: kStatic, val: minipy.IntVal(len(a.seq.elems))}, nil
		case kStatic:
			if r, ok := a.val.(minipy.RangeVal); ok {
				return &sym{kind: kStatic, val: minipy.IntVal(r.Len())}, nil
			}
			if s, ok := a.val.(minipy.StrVal); ok {
				return &sym{kind: kStatic, val: minipy.IntVal(len(s))}, nil
			}
		case kDyn:
			if !a.isRef {
				if sh, ok := c.shapes[a.port]; ok && len(sh) > 0 && sh[0] >= 0 {
					return &sym{kind: kStatic, val: minipy.IntVal(sh[0])}, nil
				}
			}
			n := c.g.Add("Len", nil, a.port)
			return &sym{kind: kDyn, port: n.P()}, nil
		}
		return nil, notConvertible(ex, "len() of %s", a.describe())

	case "range":
		ints := make([]int64, len(args))
		for i := range args {
			n, ok := args[i].staticInt()
			if !ok {
				return nil, notConvertible(ex, "range() bounds must be build-time ints")
			}
			ints[i] = int64(n)
		}
		switch len(ints) {
		case 1:
			return &sym{kind: kStatic, val: minipy.RangeVal{Stop: ints[0], Step: 1}}, nil
		case 2:
			return &sym{kind: kStatic, val: minipy.RangeVal{Start: ints[0], Stop: ints[1], Step: 1}}, nil
		case 3:
			return &sym{kind: kStatic, val: minipy.RangeVal{Start: ints[0], Stop: ints[1], Step: ints[2]}}, nil
		}
		return nil, notConvertible(ex, "range() wants 1-3 arguments")

	case "slice_rows", "slice_cols":
		axis := 0
		if name == "slice_cols" {
			axis = 1
		}
		x, err := tensorIn(0)
		if err != nil {
			return nil, err
		}
		lo, err := staticInt(1)
		if err != nil {
			return nil, err
		}
		hi, err := staticInt(2)
		if err != nil {
			return nil, err
		}
		attrs := map[string]graph.Val{"axis": axis, "lo": lo, "hi": hi}
		if sh, ok := c.shapes[x]; ok && axis < len(sh) {
			attrs["inShape"] = append([]int(nil), sh...)
			out := append([]int(nil), sh...)
			out[axis] = hi - lo
			nn := c.g.Add("Slice", attrs, x)
			c.shapes[nn.P()] = out
			return &sym{kind: kDyn, port: nn.P()}, nil
		}
		c.dynamic = true
		nn := c.g.Add("Slice", attrs, x)
		return &sym{kind: kDyn, port: nn.P()}, nil

	case "argmax":
		x, err := tensorIn(0)
		if err != nil {
			return nil, err
		}
		axis, err := staticInt(1)
		if err != nil {
			return nil, err
		}
		n := c.g.Add("Argmax", map[string]graph.Val{"axis": axis}, x)
		return &sym{kind: kDyn, port: n.P()}, nil

	case "abs":
		x, err := tensorIn(0)
		if err != nil {
			return nil, err
		}
		n := c.g.Add("Abs", nil, x)
		c.copyShape(n.P(), x)
		return &sym{kind: kDyn, port: n.P()}, nil

	case "print":
		ports := make([]graph.Port, len(args))
		for i, a := range args {
			p, err := c.asAnyPort(a, ex)
			if err != nil {
				return nil, err
			}
			ports[i] = p
		}
		n := c.g.Add("Print", nil, ports...)
		c.g.Updates = append(c.g.Updates, n)
		return &sym{kind: kStatic, val: minipy.None}, nil

	case "int", "float":
		if args[0].kind == kStatic {
			v, err := c.reg.Get(name).Fn(c.scratch, []minipy.Value{args[0].val}, nil)
			if err != nil {
				return nil, notConvertible(ex, "%s: %v", name, err)
			}
			return &sym{kind: kStatic, val: v}, nil
		}
		return args[0], nil // graph values are float tensors already

	case "min", "max":
		allStatic := true
		vals := make([]minipy.Value, len(args))
		for i, a := range args {
			if a.kind != kStatic {
				allStatic = false
				break
			}
			vals[i] = a.val
		}
		if allStatic {
			v, err := c.reg.Get(name).Fn(c.scratch, vals, nil)
			if err != nil {
				return nil, notConvertible(ex, "%s: %v", name, err)
			}
			return &sym{kind: kStatic, val: v}, nil
		}
		if len(args) == 2 {
			op := "Maximum"
			if name == "min" {
				op = "Minimum"
			}
			a, err := tensorIn(0)
			if err != nil {
				return nil, err
			}
			bp, err := tensorIn(1)
			if err != nil {
				return nil, err
			}
			n := c.g.Add(op, nil, a, bp)
			c.inferBroadcast(n, a, bp)
			return &sym{kind: kDyn, port: n.P()}, nil
		}
		return nil, notConvertible(ex, "dynamic %s over sequences", name)
	}
	return nil, notConvertible(ex, "builtin %q mapping is not implemented", name)
}

// indexArg lowers an index-list argument (static int list, int tensor, or
// dynamic value) to a port.
type idxArg struct {
	port graph.Port
	n    int
	ok   bool
}

func (i idxArg) count() (int, bool) { return i.n, i.ok }

func (c *Converter) indexArg(args []*sym, i int, at minipy.Node) (idxArg, error) {
	if i >= len(args) {
		return idxArg{}, notConvertible(at, "missing index argument %d", i)
	}
	a := args[i]
	switch a.kind {
	case kSeq:
		ints := make([]int, len(a.seq.elems))
		allStatic := true
		for j, el := range a.seq.elems {
			n, ok := el.staticInt()
			if !ok {
				allStatic = false
				break
			}
			ints[j] = n
		}
		if allStatic {
			return idxArg{port: c.g.ConstVal(ints).P(), n: len(ints), ok: true}, nil
		}
		// Dynamic elements: pack into a runtime []Val.
		ports := make([]graph.Port, len(a.seq.elems))
		for j, el := range a.seq.elems {
			p, err := c.asAnyPort(el, at)
			if err != nil {
				return idxArg{}, err
			}
			ports[j] = p
		}
		pack := c.g.Add("Pack", nil, ports...)
		return idxArg{port: pack.P(), n: len(ports), ok: true}, nil
	case kDyn:
		// A tensor of ids with a known rank-1 shape has a known count, so
		// downstream shapes stay static (specialization).
		if sh, ok := c.shapes[a.port]; ok && len(sh) == 1 && sh[0] >= 0 {
			return idxArg{port: a.port, n: sh[0], ok: true}, nil
		}
		return idxArg{port: a.port}, nil
	case kStatic:
		if n, ok := a.staticInt(); ok {
			return idxArg{port: c.g.ConstVal([]int{n}).P(), n: 1, ok: true}, nil
		}
	}
	return idxArg{}, notConvertible(at, "cannot use %s as indices", a.describe())
}

func (c *Converter) staticShape(args []*sym, i int, at minipy.Node) ([]int, error) {
	if i >= len(args) {
		return nil, notConvertible(at, "missing shape argument %d", i)
	}
	a := args[i]
	if a.kind != kSeq {
		return nil, notConvertible(at, "shape must be a build-time list")
	}
	out := make([]int, len(a.seq.elems))
	for j, el := range a.seq.elems {
		n, ok := el.staticInt()
		if !ok {
			return nil, notConvertible(at, "shape element %d must be a build-time int", j)
		}
		out[j] = n
	}
	return out, nil
}

// symToValue reconstructs a minipy value from a fully static sym tree.
func (c *Converter) symToValue(s *sym, at minipy.Node) (minipy.Value, error) {
	switch s.kind {
	case kStatic:
		return s.val, nil
	case kSeq:
		items := make([]minipy.Value, len(s.seq.elems))
		for i, el := range s.seq.elems {
			v, err := c.symToValue(el, at)
			if err != nil {
				return nil, err
			}
			items[i] = v
		}
		if s.seq.isTuple {
			return &minipy.TupleVal{Items: items}, nil
		}
		return &minipy.ListVal{Items: items}, nil
	}
	return nil, notConvertible(at, "value is not build-time constant")
}

// resolveReshape resolves -1 dims of a reshape target given the input shape.
func resolveReshape(in, target []int) []int {
	n := 1
	for _, d := range in {
		if d < 0 {
			return target
		}
		n *= d
	}
	out := append([]int(nil), target...)
	known := 1
	infer := -1
	for i, d := range out {
		if d == -1 {
			infer = i
		} else {
			known *= d
		}
	}
	if infer >= 0 && known > 0 && n%known == 0 {
		out[infer] = n / known
	}
	return out
}
