package convert

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/minipy"
	"repro/internal/tensor"
)

// forStmt converts a for loop. Strategy (paper §4.2.1):
//
//   - iterables known at build time (static lists, ranges, tuples) with
//     Unroll on, or loops whose body needs build-time values per iteration:
//     fully unrolled;
//   - with Unroll off (BASE): the body is converted once into a subgraph and
//     executed by a structured Loop op, which keeps per-iteration scheduling
//     overhead in the graph — this is exactly the cost +UNRL removes in
//     Figure 7;
//   - iterables that are not build-time enumerable: not convertible.
func (c *Converter) forStmt(st *minipy.ForStmt, e *env) (*sym, error) {
	iter, err := c.expr(st.Iter, e)
	if err != nil {
		return nil, err
	}
	items, err := c.enumerate(iter, st)
	if err != nil {
		return nil, err
	}
	if c.opts.Unroll && !c.opts.Distrust[st.ID()] {
		return nil, c.unrollFor(st, items, e)
	}
	// BASE: attempt a Loop-op conversion; fall back to unrolling when the
	// body needs build-time per-iteration values.
	if err := c.loopOpFor(st, items, e); err != nil {
		if isNotConvertible(err) {
			return nil, c.unrollFor(st, items, e)
		}
		return nil, err
	}
	return nil, nil
}

func isNotConvertible(err error) bool {
	for e := err; e != nil; {
		if e == ErrNotConvertible {
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := e.(unwrapper)
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// enumerate lists the iteration items of a build-time iterable.
func (c *Converter) enumerate(iter *sym, at minipy.Node) ([]*sym, error) {
	switch iter.kind {
	case kSeq:
		return iter.seq.elems, nil
	case kStatic:
		if r, ok := iter.val.(minipy.RangeVal); ok {
			out := make([]*sym, 0, r.Len())
			if r.Step > 0 {
				for i := r.Start; i < r.Stop; i += r.Step {
					out = append(out, &sym{kind: kStatic, val: minipy.IntVal(i)})
				}
			} else if r.Step < 0 {
				for i := r.Start; i > r.Stop; i += r.Step {
					out = append(out, &sym{kind: kStatic, val: minipy.IntVal(i)})
				}
			}
			return out, nil
		}
	case kDyn:
		// Iterating a tensor's leading axis: enumerable when the shape is
		// statically known (specialization).
		if sh, ok := c.shapes[iter.port]; ok && len(sh) > 0 && sh[0] >= 0 {
			out := make([]*sym, sh[0])
			for i := 0; i < sh[0]; i++ {
				sl := c.g.Add("Slice", map[string]graph.Val{"axis": 0, "lo": i, "hi": i + 1, "inShape": sh}, iter.port)
				c.shapes[sl.P()] = append([]int{1}, sh[1:]...)
				rs := c.g.Add("ReshapeLike", nil, sl.P(), c.g.Const(tensor.Zeros(sh[1:]...)).P())
				c.shapes[rs.P()] = append([]int(nil), sh[1:]...)
				out[i] = &sym{kind: kDyn, port: rs.P()}
			}
			return out, nil
		}
	}
	return nil, notConvertible(at, "iterable %s is not enumerable at graph-build time", iter.describe())
}

// unrollFor emits the body once per item, binding the target each time.
func (c *Converter) unrollFor(st *minipy.ForStmt, items []*sym, e *env) error {
	// Guard the trip count: for profiled loops assert stability; loops over
	// build-time lists are already covered by the cache signature (list
	// length is part of it), so no runtime assert is needed there.
	for _, item := range items {
		if err := c.assign(st.Target, item, e); err != nil {
			return err
		}
		ret, err := c.block(st.Body, e)
		if err != nil {
			return err
		}
		if ret != nil {
			return notConvertible(st, "return inside converted loop")
		}
	}
	return nil
}

// loopOpFor converts the loop into a structured Loop node over a
// once-converted body subgraph (BASE mode).
func (c *Converter) loopOpFor(st *minipy.ForStmt, items []*sym, e *env) error {
	c.dynamic = true
	trips := len(items)
	// Identify names assigned in the body; they become loop-carried values.
	assigned := map[string]bool{}
	scanAssigned(st.Body, assigned)
	targetNames := map[string]bool{}
	collectTargetNames(st.Target, targetNames)

	var carried []string
	accums := map[string]*sym{}
	for name := range assigned {
		if targetNames[name] {
			continue
		}
		if cur, ok := e.lookup(name); ok && cur.kind == kSeq && isAppendOnly(st.Body, name) {
			// Pre-existing list only appended to: accumulator. Only empty
			// initial lists are supported (appending to non-empty lists in
			// BASE loops falls back to unrolling).
			if len(cur.seq.elems) != 0 {
				return notConvertible(st, "accumulation into non-empty list")
			}
			accums[name] = nil
			continue
		}
		carried = append(carried, name)
	}
	sortStrings(carried)
	accumNames := make([]string, 0, len(accums))
	for n := range accums {
		accumNames = append(accumNames, n)
	}
	sortStrings(accumNames)

	// Build the body subgraph with a child converter sharing graph-global
	// state (asserts land in the OUTER graph? No — asserts inside a loop body
	// run per iteration; they belong to the body graph).
	body := graph.New()
	sub := &Converter{
		opts: c.opts, prof: c.prof, reg: c.reg, g: body,
		varNames: c.varNames, shapes: make(map[graph.Port][]int),
		funcGraphs: c.funcGraphs, onStack: c.onStack, scratch: c.scratch,
	}
	be := newEnv(nil)
	be.conv = sub
	be.closure = findClosure(e)

	// Carried placeholders.
	for i, name := range carried {
		ph := body.Placeholder(fmt.Sprintf("carried%d", i))
		// Shape hint from the current outer value when available.
		if cur, ok := e.lookup(name); ok && cur.kind == kDyn {
			if sh, ok := c.shapes[cur.port]; ok {
				sub.shapes[ph.P()] = sh
			}
		}
		be.set(name, &sym{kind: kDyn, port: ph.P()})
	}
	// Accumulator sentinels.
	for i, name := range accumNames {
		be.set(name, &sym{kind: kAccum, accum: &accumInfo{index: i}})
	}
	// Per-iteration element placeholder(s). Tuple targets unpack a kSeq item
	// only when every item is a seq of equal arity — otherwise fall back.
	seqCount := 0
	switch tgt := st.Target.(type) {
	case *minipy.NameExpr:
		ph := body.Placeholder("iter0")
		if len(items) > 0 && items[0].kind == kDyn {
			if sh, ok := c.shapes[items[0].port]; ok {
				sub.shapes[ph.P()] = sh
			}
		}
		if len(items) > 0 && items[0].kind == kStatic {
			// Static per-iteration values (e.g. range indices) cannot vary
			// inside a single-body subgraph as statics; feed them as runtime
			// scalars.
			be.set(tgt.Name, &sym{kind: kDyn, port: ph.P()})
		} else {
			be.set(tgt.Name, &sym{kind: kDyn, port: ph.P()})
		}
		seqCount = 1
	default:
		return notConvertible(st, "tuple loop targets require unrolling")
	}

	// Invariant capture: reads of outer dynamic names inside the body create
	// invariant placeholders on demand.
	inv := &invariantCapture{outer: e, body: body, conv: sub, mapping: map[string]*invEntry{}}
	be.parent = inv.frame()

	ret, err := sub.block(st.Body, be)
	if err != nil {
		return err
	}
	if ret != nil {
		return notConvertible(st, "return inside BASE-mode loop body")
	}
	if sub.dynamic {
		c.dynamic = true
	}

	// Body outputs: next carried values then accumulator elements (each
	// iteration must append exactly one element per accumulator).
	var outs []graph.Port
	for _, name := range carried {
		v, ok := be.vars[name]
		if !ok {
			return notConvertible(st, "carried %q not assigned in body", name)
		}
		p, err := sub.asAnyPort(v, st)
		if err != nil {
			return err
		}
		outs = append(outs, p)
	}
	for _, name := range accumNames {
		a := be.vars[name]
		if a == nil || a.kind != kAccum || len(a.accum.ports) != 1 {
			return notConvertible(st, "accumulator %q must append exactly once per iteration", name)
		}
		outs = append(outs, a.accum.ports[0])
	}
	body.Outputs = outs

	// Outer Loop node inputs: carried inits ++ invariants ++ seq elements.
	var inputs []graph.Port
	for _, name := range carried {
		init, ok := e.lookup(name)
		if !ok {
			init = &sym{kind: kStatic, val: minipy.IntVal(0)}
		}
		p, err := c.asAnyPort(init, st)
		if err != nil {
			return err
		}
		inputs = append(inputs, p)
	}
	for _, ie := range inv.ordered {
		inputs = append(inputs, ie.outerPort)
	}
	for _, item := range items {
		p, err := c.asAnyPort(item, st)
		if err != nil {
			return err
		}
		inputs = append(inputs, p)
	}

	loop := c.g.Add("Loop", map[string]graph.Val{
		"body": body, "trips": trips,
		"carried": len(carried), "inv": len(inv.ordered),
		"seqs": seqCount, "accum": len(accumNames),
	}, inputs...)
	loop.NumOutputs = len(carried) + len(accumNames)

	// Rebind carried names and accumulators in the outer env.
	for i, name := range carried {
		e.set(name, &sym{kind: kDyn, port: loop.Out(i)})
	}
	for i, name := range accumNames {
		// The accumulator output is a runtime []Val list; downstream use is
		// via stack()/len(), handled by kDyn+isRef with a list exemplar.
		e.set(name, &sym{kind: kDyn, port: loop.Out(len(carried) + i), isRef: true,
			exemplar: &minipy.ListVal{}})
	}
	return nil
}

// invariantCapture lazily creates invariant placeholders in the loop body
// for reads of outer dynamic values.
type invariantCapture struct {
	outer   *env
	body    *graph.Graph
	conv    *Converter
	mapping map[string]*invEntry
	ordered []*invEntry
}

type invEntry struct {
	name      string
	outerPort graph.Port
	bodyPort  graph.Port
}

// frame returns an env frame that resolves names against the outer env,
// translating dynamic values into invariant placeholders.
func (ic *invariantCapture) frame() *env {
	f := newEnv(nil)
	f.conv = ic.conv
	f.resolver = ic
	return f
}

func (ic *invariantCapture) resolve(name string) (*sym, bool) {
	if e, ok := ic.mapping[name]; ok {
		return &sym{kind: kDyn, port: e.bodyPort}, true
	}
	v, ok := ic.outer.lookup(name)
	if !ok {
		return nil, false
	}
	if v.kind != kDyn {
		return v, true // statics pass straight through
	}
	idx := len(ic.ordered)
	ph := ic.body.Placeholder(fmt.Sprintf("inv%d", idx))
	if sh, ok := ic.outer.conv.shapes[v.port]; ok {
		ic.conv.shapes[ph.P()] = sh
	}
	e := &invEntry{name: name, outerPort: v.port, bodyPort: ph.P()}
	ic.mapping[name] = e
	ic.ordered = append(ic.ordered, e)
	out := *v
	out.port = ph.P()
	return &out, true
}

// whileStmt converts a while loop: profile-stable trip counts unroll with
// per-iteration condition asserts; anything else stays imperative.
func (c *Converter) whileStmt(st *minipy.WhileStmt, e *env) (*sym, error) {
	// Purely static condition loops: evaluate at build time.
	for guard := 0; ; guard++ {
		if guard > 1_000_000 {
			return nil, notConvertible(st, "build-time while loop did not terminate")
		}
		cond, err := c.expr(st.Cond, e)
		if err != nil {
			return nil, err
		}
		b, ok := cond.staticBool()
		if !ok {
			// Dynamic condition: speculative unrolling with asserts.
			if guard == 0 {
				return c.speculativeWhile(st, e)
			}
			return nil, notConvertible(st, "while condition became dynamic mid-loop")
		}
		if !b {
			return nil, nil
		}
		ret, err := c.block(st.Body, e)
		if err != nil {
			return nil, err
		}
		if ret != nil {
			return nil, notConvertible(st, "return inside converted while loop")
		}
	}
}

func (c *Converter) speculativeWhile(st *minipy.WhileStmt, e *env) (*sym, error) {
	if !c.opts.Unroll || c.opts.Distrust[st.ID()] {
		return nil, notConvertible(st, "dynamic while loop without unrolling")
	}
	trips, stable := 0, false
	if c.prof != nil {
		trips, stable = c.prof.LoopTrips(st.ID())
	}
	if !stable {
		return nil, notConvertible(st, "while trip count unstable in profile")
	}
	for i := 0; i < trips; i++ {
		cond, err := c.expr(st.Cond, e)
		if err != nil {
			return nil, err
		}
		if cond.kind == kDyn {
			c.addAssert(cond.port, "true", fmt.Sprintf("while@%d iteration %d", st.ID(), i), st.ID(), nil)
		}
		ret, err := c.block(st.Body, e)
		if err != nil {
			return nil, err
		}
		if ret != nil {
			return nil, notConvertible(st, "return inside converted while loop")
		}
	}
	// Exit check: the condition must now be false.
	cond, err := c.expr(st.Cond, e)
	if err != nil {
		return nil, err
	}
	if b, ok := cond.staticBool(); ok {
		if b {
			return nil, notConvertible(st, "while loop statically exceeds profiled trips")
		}
	} else {
		c.addAssert(cond.port, "false", fmt.Sprintf("while@%d exit after %d trips", st.ID(), trips), st.ID(), nil)
	}
	return nil, nil
}

// --- small AST analysis helpers ----------------------------------------------

func scanAssigned(stmts []minipy.Stmt, out map[string]bool) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *minipy.AssignStmt:
			collectTargetNames(st.Target, out)
		case *minipy.AugAssignStmt:
			collectTargetNames(st.Target, out)
		case *minipy.IfStmt:
			scanAssigned(st.Then, out)
			scanAssigned(st.Else, out)
		case *minipy.ForStmt:
			collectTargetNames(st.Target, out)
			scanAssigned(st.Body, out)
		case *minipy.WhileStmt:
			scanAssigned(st.Body, out)
		}
	}
}

func collectTargetNames(e minipy.Expr, out map[string]bool) {
	switch t := e.(type) {
	case *minipy.NameExpr:
		out[t.Name] = true
	case *minipy.TupleLit:
		for _, el := range t.Elems {
			collectTargetNames(el, out)
		}
	}
}

// isAppendOnly reports whether name is only used as `name += [x]` or
// `name.append(x)` within the body (never re-assigned or indexed).
func isAppendOnly(stmts []minipy.Stmt, name string) bool {
	ok := true
	var walkStmts func([]minipy.Stmt)
	walkStmts = func(ss []minipy.Stmt) {
		for _, s := range ss {
			switch st := s.(type) {
			case *minipy.AssignStmt:
				names := map[string]bool{}
				collectTargetNames(st.Target, names)
				if names[name] {
					ok = false
				}
			case *minipy.AugAssignStmt:
				if n, isName := st.Target.(*minipy.NameExpr); isName && n.Name == name && st.Op != "+" {
					ok = false
				}
			case *minipy.IfStmt:
				walkStmts(st.Then)
				walkStmts(st.Else)
			case *minipy.ForStmt:
				walkStmts(st.Body)
			case *minipy.WhileStmt:
				walkStmts(st.Body)
			}
		}
	}
	walkStmts(stmts)
	return ok
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

func findClosure(e *env) *minipy.Env {
	for s := e; s != nil; s = s.parent {
		if s.closure != nil {
			return s.closure
		}
	}
	return nil
}
