// Command snapfix manages the seeded snapshot fixture CI caches across
// runs: it builds a warm compiled-graph artifact by driving real traffic
// through an in-process serving pool, validates a cached fixture against the
// current build, and prints the artifact format version the cache key is
// derived from.
//
//	snapfix -version                           print core.ArtifactVersion
//	snapfix -out DIR -program model.py         seed a fresh fixture into DIR
//	snapfix -check DIR -program model.py       validate a cached fixture
//
// -check boots a fresh pool from the fixture and requires it to serve every
// traffic shape with zero graph conversions. A fixture written by an older
// artifact or graph wire version fails with an explicit "regenerate the
// fixture" message — in CI that means the actions/cache key (which embeds
// -version) went stale without the fixture being rebuilt.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	janus "repro"
	"repro/internal/core"
)

// trafficSizes are the batch sizes the fixture is seeded (and checked) with:
// with MaxBucket 16 they land on the power-of-two buckets {1, 2, 4, 8, 16}.
var trafficSizes = []int{1, 2, 3, 5, 7, 8, 11, 13}

func main() {
	version := flag.Bool("version", false, "print the snapshot artifact format version and exit")
	out := flag.String("out", "", "seed a fresh fixture into this directory")
	check := flag.String("check", "", "validate the fixture in this directory against the current build")
	program := flag.String("program", "", "minipy source file the fixture serves (required with -out/-check)")
	fn := flag.String("fn", "predict", "served function the traffic calls")
	dim := flag.Int("dim", 16, "feature dimension of each traffic row")
	flag.Parse()

	switch {
	case *version:
		fmt.Println(core.ArtifactVersion)
	case *out != "":
		seed(*out, *program, *fn, *dim)
	case *check != "":
		validate(*check, *program, *fn, *dim)
	default:
		fmt.Fprintln(os.Stderr, "snapfix: one of -version, -out or -check required")
		os.Exit(2)
	}
}

// newServer mirrors the CI cold-start janusd configuration: a bucketed pool
// with a small deterministic seed so fixture parameters are reproducible.
func newServer() *janus.Server {
	return janus.NewServer(janus.ServerOptions{
		PoolSize:    2,
		MaxBatch:    1,
		BucketBatch: true,
		MaxBucket:   16,
		Options:     janus.Options{Seed: 42, ProfileIterations: 1},
	})
}

// drive serves one request per traffic size (twice per size when warm is
// false, so every bucket gets past profiling and converts) and returns the
// pool's conversion count afterwards.
func drive(srv *janus.Server, fnName string, dim int, warm bool) int {
	f, err := srv.Func(fnName)
	if err != nil {
		fatal("resolve %s: %v", fnName, err)
	}
	rounds := 2
	if warm {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		for _, rows := range trafficSizes {
			feeds := janus.Feeds{}
			for _, p := range f.Params() {
				data := make([][]float64, rows)
				for i := range data {
					row := make([]float64, dim)
					for j := range row {
						row[j] = float64((i+j)%11)*0.25 - 1
					}
					data[i] = row
				}
				feeds[p] = janus.FromRows(data)
			}
			if _, err := f.Call(context.Background(), feeds); err != nil {
				fatal("%s rows=%d: %v", fnName, rows, err)
			}
		}
	}
	return srv.Stats().Conversions
}

func load(program string) (*janus.Server, string) {
	if program == "" {
		fatal("-program required")
	}
	src, err := os.ReadFile(program)
	if err != nil {
		fatal("%v", err)
	}
	srv := newServer()
	if _, err := srv.Load(string(src)); err != nil {
		fatal("load %s: %v", program, err)
	}
	return srv, string(src)
}

func seed(dir, program, fn string, dim int) {
	srv, _ := load(program)
	drive(srv, fn, dim, false)
	path := janus.SnapshotPath(dir)
	n, err := srv.SaveSnapshot(path)
	if err != nil {
		fatal("save fixture: %v", err)
	}
	fmt.Printf("snapfix: seeded %s: %d compiled graphs (artifact v%d)\n", path, n, core.ArtifactVersion)
}

func validate(dir, program, fn string, dim int) {
	srv, _ := load(program)
	path := janus.SnapshotPath(dir)
	n, err := srv.LoadSnapshot(path)
	if err != nil {
		switch core.RejectReason(err) {
		case "version", "wire":
			fatal("%s was written by a different artifact format (%v).\n"+
				"The artifact format version bumped without the fixture being regenerated —\n"+
				"rebuild it: go run ./internal/tools/snapfix -out %s -program %s", path, err, dir, program)
		default:
			fatal("load fixture %s: %v", path, err)
		}
	}
	if conv := drive(srv, fn, dim, true); conv != 0 {
		fatal("fixture %s restored %d entries but the warm pool still converted %d graphs — "+
			"the fixture no longer covers the traffic shapes; regenerate it", path, n, conv)
	}
	fmt.Printf("snapfix: %s ok: %d compiled graphs, all traffic served warm with 0 conversions\n", path, n)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "snapfix: "+format+"\n", args...)
	os.Exit(1)
}
