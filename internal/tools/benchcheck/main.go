// Command benchcheck is the CI benchmark-regression gate: it reads the
// machine-readable reports `janusbench -json` emits (BENCH_dist.json,
// BENCH_serve.json) and exits non-zero when a gated metric regresses past
// the committed thresholds file.
//
//	benchcheck -thresholds bench-thresholds.json BENCH_dist.json BENCH_serve.json
//
// Only properties of the computation gate the build: final training loss
// (dist — barriered anchor and every async staleness bound) and graph-cache
// hit rate / failure fraction (serve). Throughput and latency are recorded
// in the uploaded artifacts but never gated — shared CI runners make them
// too noisy to fail a build on.
//
// With -metrics FILE the gate additionally parses FILE as a Prometheus
// text exposition (a CI scrape of a live janusd /metrics) and fails unless
// every series family named in thresholds metrics.require is present —
// catching instrumentation that silently stopped registering.
//
// With -warm-metrics FILE the gate parses FILE as a scrape of a janusd that
// was rebooted against a snapshot artifact (-snapshot-dir) and bounds summed
// family values: every family in thresholds metrics.warm_min must sum to at
// least its bound (the artifact really loaded), every family in
// metrics.warm_max must sum to at most its bound (a warm boot that converts
// graphs — janus_engine_conversions_total > 0 — is a cold boot wearing a
// snapshot, and fails the build).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// thresholds mirrors bench-thresholds.json.
type thresholds struct {
	Dist struct {
		// MaxFinalLoss bounds the final training loss of the barriered
		// anchor and of every async staleness bound.
		MaxFinalLoss float64 `json:"max_final_loss"`
		// MaxChurnLossRatio bounds the fault-injected churn run's final loss
		// relative to the fault-free async anchor at the same staleness
		// bound (1.15 = within 15%). When committed, the dist report MUST
		// carry a churn section proving at least one worker kill+rejoin and
		// one shard failover actually happened — a churn run that silently
		// stopped churning must fail the gate, not pass it vacuously.
		MaxChurnLossRatio float64 `json:"max_churn_loss_ratio"`
	} `json:"dist"`
	Serve struct {
		// MinCacheHitRate bounds the shared graph-cache hit rate from below.
		MinCacheHitRate float64 `json:"min_cache_hit_rate"`
		// MaxFailedFrac bounds failed/total requests from above.
		MaxFailedFrac float64 `json:"max_failed_frac"`
		// MinCacheHitRateBucketed bounds the hit rate of the shape-bucketed
		// pool driven with variable batch sizes — the rate that collapses
		// when bucketing stops mapping near-miss sizes onto shared graphs.
		MinCacheHitRateBucketed float64 `json:"min_cache_hit_rate_bucketed"`
		// RequireSnapshotRoundTrip gates the artifact round trip: the report
		// must show snapshot_saved > 0, snapshot_loaded == snapshot_saved,
		// and warm_conversions == 0 (a restored pool served its whole warm
		// measurement without converting a single graph).
		RequireSnapshotRoundTrip bool `json:"require_snapshot_round_trip"`
	} `json:"serve"`
	Metrics struct {
		// Require lists metric family names that must appear in the
		// -metrics exposition scrape (histogram families match their
		// _bucket/_sum/_count series).
		Require []string `json:"require"`
		// WarmMin / WarmMax bound summed family sample values in the
		// -warm-metrics scrape of a snapshot-rebooted janusd: warm_min
		// proves the artifact loaded, warm_max proves the warm boot did no
		// cold work.
		WarmMin map[string]float64 `json:"warm_min"`
		WarmMax map[string]float64 `json:"warm_max"`
	} `json:"metrics"`
	Kernels struct {
		// MaxAllocsPerOp bounds steady-state allocations per graph op in the
		// plan-driven elementwise replay (~0 when buffer reuse works; a
		// regression here means the executor went back to heap-allocating).
		MaxAllocsPerOp float64 `json:"max_allocs_per_op"`
		// MaxFinalLoss bounds the LeNet train-step replay's final loss with
		// the memory plan ON — pooled execution must still train correctly.
		MaxFinalLoss float64 `json:"max_final_loss"`
		// MinNodeReduction bounds from below the fraction of graph ops
		// elementwise fusion removes from the dispatch-bound elementwise
		// replay (1 - nodes_fused/nodes_unfused), with bit-identical replay
		// outputs; the LeNet train-step final loss must additionally be
		// bit-identical between pipeline-on and pipeline-off. Gating these
		// catches fusion silently ceasing to fire or a pass changing
		// numerics.
		MinNodeReduction float64 `json:"min_node_reduction"`
	} `json:"kernels"`
}

// report is the union of the dist and serve shapes janusbench writes; Mode
// discriminates.
type report struct {
	Mode      string `json:"mode"`
	Model     string `json:"model"`
	Barriered *struct {
		FinalLoss float64 `json:"final_loss"`
	} `json:"barriered"`
	Async []struct {
		Staleness int     `json:"staleness"`
		FinalLoss float64 `json:"final_loss"`
	} `json:"async"`
	Scaling []struct {
		Workers   int     `json:"workers"`
		FinalLoss float64 `json:"final_loss"`
	} `json:"scaling"`
	Churn *struct {
		FinalLoss       float64 `json:"final_loss"`
		AnchorFinalLoss float64 `json:"anchor_final_loss"`
		WorkerKills     int     `json:"worker_kills"`
		WorkerRejoins   int     `json:"worker_rejoins"`
		Failovers       int     `json:"shard_failovers"`
		LeaseExpiries   int64   `json:"lease_expiries"`
	} `json:"churn"`
	Requests             int64   `json:"requests"`
	Failed               int64   `json:"failed"`
	CacheHitRate         float64 `json:"cache_hit_rate"`
	CacheHitRateBucketed float64 `json:"cache_hit_rate_bucketed"`
	SnapshotSaved        int     `json:"snapshot_saved"`
	SnapshotLoaded       int     `json:"snapshot_loaded"`
	WarmConversions      *int64  `json:"warm_conversions"`
	TrainStep            *struct {
		FinalLossOn float64 `json:"final_loss_on"`
	} `json:"train_step"`
	Elementwise *struct {
		AllocsPerGraphopOn float64 `json:"allocs_per_graphop_on"`
	} `json:"elementwise_chain"`
	Passes *struct {
		LossBitIdentical    bool    `json:"loss_bit_identical"`
		FusionNodeReduction float64 `json:"fusion_node_reduction"`
		FusionBitIdentical  bool    `json:"fusion_bit_identical"`
	} `json:"passes"`
}

func main() {
	thresholdsPath := flag.String("thresholds", "bench-thresholds.json", "committed thresholds file")
	metricsPath := flag.String("metrics", "", "Prometheus text scrape to check for required series families")
	warmMetricsPath := flag.String("warm-metrics", "", "Prometheus text scrape of a snapshot-rebooted janusd to bound against metrics.warm_min/warm_max")
	flag.Parse()
	if flag.NArg() == 0 && *metricsPath == "" && *warmMetricsPath == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: no benchmark reports given")
		os.Exit(2)
	}
	var th thresholds
	if err := readJSON(*thresholdsPath, &th); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	failures := 0
	if *metricsPath != "" {
		failures += checkMetrics(*metricsPath, th)
	}
	if *warmMetricsPath != "" {
		failures += checkWarmMetrics(*warmMetricsPath, th)
	}
	for _, path := range flag.Args() {
		var r report
		if err := readJSON(path, &r); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
		switch r.Mode {
		case "dist":
			failures += checkDist(path, r, th)
		case "serve":
			failures += checkServe(path, r, th)
		case "kernels":
			failures += checkKernels(path, r, th)
		default:
			fmt.Fprintf(os.Stderr, "benchcheck: %s: unknown mode %q\n", path, r.Mode)
			os.Exit(2)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d threshold violation(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("benchcheck: all thresholds passed")
}

func checkDist(path string, r report, th thresholds) int {
	max := th.Dist.MaxFinalLoss
	if max <= 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %s: no dist.max_final_loss threshold committed\n", path)
		return 1
	}
	bad := 0
	check := func(what string, loss float64) {
		if loss > max {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %s final loss %.4f exceeds threshold %.4f\n",
				path, what, loss, max)
			bad++
		} else {
			fmt.Printf("benchcheck: %s: %s final loss %.4f <= %.4f ok\n", path, what, loss, max)
		}
	}
	if r.Barriered != nil {
		check("barriered", r.Barriered.FinalLoss)
	}
	for _, a := range r.Async {
		check(fmt.Sprintf("async staleness %d", a.Staleness), a.FinalLoss)
	}
	for _, p := range r.Scaling {
		check(fmt.Sprintf("%d-worker", p.Workers), p.FinalLoss)
	}
	if r.Churn != nil {
		check("churn", r.Churn.FinalLoss)
	}
	if r.Barriered == nil && len(r.Async) == 0 && len(r.Scaling) == 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %s: dist report holds no losses to gate\n", path)
		return 1
	}
	bad += checkChurn(path, r, th)
	return bad
}

// checkChurn gates convergence under injected churn: the run must have
// actually churned (>=1 worker kill+rejoin, >=1 shard failover) and its
// final loss must land within max_churn_loss_ratio of the fault-free async
// anchor. (The absolute max_final_loss bound is applied to the churn loss
// in checkDist alongside the other points.)
func checkChurn(path string, r report, th thresholds) int {
	ratio := th.Dist.MaxChurnLossRatio
	if ratio <= 0 {
		return 0
	}
	c := r.Churn
	switch {
	case c == nil:
		fmt.Fprintf(os.Stderr, "benchcheck: %s: thresholds commit dist.max_churn_loss_ratio but report has no churn section (run janusbench -dist -churn)\n", path)
		return 1
	case c.WorkerKills < 1 || c.WorkerRejoins < 1:
		fmt.Fprintf(os.Stderr, "benchcheck: %s: churn run killed/rejoined %d/%d workers, want >=1/1 — the run did not churn\n",
			path, c.WorkerKills, c.WorkerRejoins)
		return 1
	case c.Failovers < 1:
		fmt.Fprintf(os.Stderr, "benchcheck: %s: churn run completed %d shard failovers, want >=1 — the run did not churn\n",
			path, c.Failovers)
		return 1
	case c.AnchorFinalLoss <= 0:
		fmt.Fprintf(os.Stderr, "benchcheck: %s: churn section lacks a fault-free anchor loss\n", path)
		return 1
	case c.FinalLoss > ratio*c.AnchorFinalLoss:
		fmt.Fprintf(os.Stderr, "benchcheck: %s: churn final loss %.4f exceeds %.2fx of fault-free anchor %.4f\n",
			path, c.FinalLoss, ratio, c.AnchorFinalLoss)
		return 1
	}
	fmt.Printf("benchcheck: %s: churn final loss %.4f within %.2fx of anchor %.4f (kills %d, failovers %d, lease expiries %d) ok\n",
		path, c.FinalLoss, ratio, c.AnchorFinalLoss, c.WorkerKills, c.Failovers, c.LeaseExpiries)
	return 0
}

func checkServe(path string, r report, th thresholds) int {
	bad := 0
	if min := th.Serve.MinCacheHitRate; min > 0 {
		if r.CacheHitRate < min {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: cache hit rate %.3f below threshold %.3f\n",
				path, r.CacheHitRate, min)
			bad++
		} else {
			fmt.Printf("benchcheck: %s: cache hit rate %.3f >= %.3f ok\n", path, r.CacheHitRate, min)
		}
	}
	if maxf := th.Serve.MaxFailedFrac; maxf > 0 && r.Requests+r.Failed > 0 {
		frac := float64(r.Failed) / float64(r.Requests+r.Failed)
		if frac > maxf {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: failed fraction %.3f exceeds threshold %.3f\n",
				path, frac, maxf)
			bad++
		} else {
			fmt.Printf("benchcheck: %s: failed fraction %.3f <= %.3f ok\n", path, frac, maxf)
		}
	}
	if min := th.Serve.MinCacheHitRateBucketed; min > 0 {
		if r.CacheHitRateBucketed < min {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: bucketed cache hit rate %.3f below threshold %.3f\n",
				path, r.CacheHitRateBucketed, min)
			bad++
		} else {
			fmt.Printf("benchcheck: %s: bucketed cache hit rate %.3f >= %.3f ok\n",
				path, r.CacheHitRateBucketed, min)
		}
	}
	if th.Serve.RequireSnapshotRoundTrip {
		switch {
		case r.SnapshotSaved <= 0:
			fmt.Fprintf(os.Stderr, "benchcheck: %s: snapshot round trip saved no entries\n", path)
			bad++
		case r.SnapshotLoaded != r.SnapshotSaved:
			fmt.Fprintf(os.Stderr, "benchcheck: %s: snapshot restored %d of %d saved entries\n",
				path, r.SnapshotLoaded, r.SnapshotSaved)
			bad++
		case r.WarmConversions == nil:
			fmt.Fprintf(os.Stderr, "benchcheck: %s: report lacks warm_conversions (stale janusbench?)\n", path)
			bad++
		case *r.WarmConversions != 0:
			fmt.Fprintf(os.Stderr, "benchcheck: %s: snapshot-restored pool converted %d graphs, want 0\n",
				path, *r.WarmConversions)
			bad++
		default:
			fmt.Printf("benchcheck: %s: snapshot round trip %d entries, 0 warm conversions ok\n",
				path, r.SnapshotSaved)
		}
	}
	return bad
}

func checkKernels(path string, r report, th thresholds) int {
	bad := 0
	if maxA := th.Kernels.MaxAllocsPerOp; maxA > 0 {
		if r.Elementwise == nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: kernels report lacks elementwise_chain\n", path)
			bad++
		} else if got := r.Elementwise.AllocsPerGraphopOn; got > maxA {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: plan-on allocs/op %.3f exceeds threshold %.3f\n",
				path, got, maxA)
			bad++
		} else {
			fmt.Printf("benchcheck: %s: plan-on allocs/op %.3f <= %.3f ok\n", path, got, maxA)
		}
	}
	if maxL := th.Kernels.MaxFinalLoss; maxL > 0 {
		if r.TrainStep == nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: kernels report lacks train_step\n", path)
			bad++
		} else if got := r.TrainStep.FinalLossOn; got > maxL || got <= 0 {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: plan-on final loss %.4f outside (0, %.4f]\n",
				path, got, maxL)
			bad++
		} else {
			fmt.Printf("benchcheck: %s: plan-on final loss %.4f <= %.4f ok\n", path, got, maxL)
		}
	}
	if minR := th.Kernels.MinNodeReduction; minR > 0 {
		switch {
		case r.Passes == nil:
			fmt.Fprintf(os.Stderr, "benchcheck: %s: kernels report lacks passes A/B\n", path)
			bad++
		case r.Passes.FusionNodeReduction < minR:
			fmt.Fprintf(os.Stderr, "benchcheck: %s: fusion node reduction %.3f below threshold %.3f\n",
				path, r.Passes.FusionNodeReduction, minR)
			bad++
		case !r.Passes.FusionBitIdentical:
			fmt.Fprintf(os.Stderr, "benchcheck: %s: fused elementwise replay outputs not bit-identical\n", path)
			bad++
		case !r.Passes.LossBitIdentical:
			fmt.Fprintf(os.Stderr, "benchcheck: %s: pipeline-on LeNet final loss not bit-identical to pipeline-off\n", path)
			bad++
		default:
			fmt.Printf("benchcheck: %s: fusion node reduction %.3f >= %.3f, replay and loss bit-identical ok\n",
				path, r.Passes.FusionNodeReduction, minR)
		}
	}
	return bad
}

// parseExposition reads a Prometheus text exposition and returns per-family
// summed sample values. Histogram series fold into their family through the
// _bucket/_sum/_count suffixes; labeled counter series sum across labels.
func parseExposition(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sums := make(map[string]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// A sample line is `name{labels} value` or `name value`.
		end := strings.IndexAny(line, "{ ")
		if end < 0 {
			continue
		}
		name := line[:end]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suffix)
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		sums[name] += v
	}
	return sums, sc.Err()
}

// checkMetrics verifies every required metric family has at least one sample
// line in the exposition. Histogram families are matched through their
// _bucket/_sum/_count series.
func checkMetrics(path string, th thresholds) int {
	if len(th.Metrics.Require) == 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %s: -metrics given but thresholds list no metrics.require\n", path)
		return 1
	}
	families, err := parseExposition(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, err)
		return 1
	}
	bad := 0
	for _, want := range th.Metrics.Require {
		if _, ok := families[want]; ok {
			fmt.Printf("benchcheck: %s: series family %s present ok\n", path, want)
		} else {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: required series family %s missing from exposition\n", path, want)
			bad++
		}
	}
	return bad
}

// checkWarmMetrics bounds summed family values in the warm-reboot scrape:
// warm_min families must reach their bound (the snapshot artifact really
// loaded), warm_max families must stay at or under theirs (the warm boot
// paid no cold work — zero graph conversions above all).
func checkWarmMetrics(path string, th thresholds) int {
	if len(th.Metrics.WarmMin) == 0 && len(th.Metrics.WarmMax) == 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %s: -warm-metrics given but thresholds list no metrics.warm_min/warm_max\n", path)
		return 1
	}
	sums, err := parseExposition(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, err)
		return 1
	}
	bad := 0
	sortedKeys := func(m map[string]float64) []string {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return keys
	}
	for _, name := range sortedKeys(th.Metrics.WarmMin) {
		min := th.Metrics.WarmMin[name]
		got, ok := sums[name]
		switch {
		case !ok:
			fmt.Fprintf(os.Stderr, "benchcheck: %s: warm_min family %s missing from exposition\n", path, name)
			bad++
		case got < min:
			fmt.Fprintf(os.Stderr, "benchcheck: %s: warm boot %s = %g below %g — the snapshot artifact did not load\n",
				path, name, got, min)
			bad++
		default:
			fmt.Printf("benchcheck: %s: warm boot %s = %g >= %g ok\n", path, name, got, min)
		}
	}
	for _, name := range sortedKeys(th.Metrics.WarmMax) {
		max := th.Metrics.WarmMax[name]
		got, ok := sums[name]
		switch {
		case !ok:
			fmt.Fprintf(os.Stderr, "benchcheck: %s: warm_max family %s missing from exposition\n", path, name)
			bad++
		case got > max:
			fmt.Fprintf(os.Stderr, "benchcheck: %s: warm boot %s = %g exceeds %g — a warm boot did cold work\n",
				path, name, got, max)
			bad++
		default:
			fmt.Printf("benchcheck: %s: warm boot %s = %g <= %g ok\n", path, name, got, max)
		}
	}
	return bad
}

func readJSON(path string, v any) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(buf, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
