package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/minipy"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Server is the HTTP+JSON front end over a Pool — the transport cmd/janusd
// listens on. Endpoints:
//
//	POST /v1/load     {"program": "..."}                → {"output": "..."}
//	POST /v1/sessions {}                                → {"session": "s1"}
//	POST /v1/run      {"session"?, "program": "..."}    → {"output": "..."}
//	POST /v1/call     {"session"?, "fn", "args": [...]} → {"result": ...}
//	POST /v1/call     {"fn", "feeds": {"x": [[...]]}}   → {"outputs": [...]}  (batched, named feeds)
//	POST /v1/infer    {"session"?, "fn", "x": [[...]]}  → {"y": [[...]]}
//	GET  /v1/stats                                      → Stats JSON
//	GET  /v1/cache                                      → graph-cache inspection
//	GET  /v1/trace    ?n=16                             → recent request traces (merged span trees)
//	GET  /v1/profile  ?fn=name                          → per-graph op profiles (always-on executor profiler)
//	GET  /v1/explain  ?fn=name                          → deopt explainability (which assumptions failed, at what cost)
//	GET  /metrics                                       → Prometheus text exposition
//	GET  /healthz                                       → {"ok": true}
//
// Tensors are nested JSON arrays; scalars, strings and booleans map to the
// corresponding minipy values (integral numbers become ints).
//
// Module state defined by /v1/run is session-affine: names bound by a
// session's scripts live with the session and are visible to its later /run
// and /call requests on any worker. Sessionless requests (empty session id)
// are stateless and fully parallel: /v1/run executes in a throwaway module
// scope and /v1/call resolves against the loaded module globals — open a
// session to keep state across requests. Under overload, requests fail with
// 429 (wait queue full) or 503 (timed out waiting for a worker) instead of
// queueing without bound; unknown functions are 404 and executions stopped
// by client disconnect are 499 (see StatusForError/ErrorForStatus for the
// sentinel round trip).
type Server struct {
	pool *Pool
	mux  *http.ServeMux

	sessMu   sync.Mutex
	sessions map[string]*Session
	anon     *Session

	// traces rings the most recent finished request traces for GET
	// /v1/trace; traceSeq hands out request-scoped trace IDs.
	traces   *obs.TraceLog
	traceSeq atomic.Int64
}

// traceRing is how many finished request traces GET /v1/trace can look
// back over.
const traceRing = 64

// NewServer builds a Pool from cfg and wires the HTTP handlers.
func NewServer(cfg Config) *Server {
	return NewServerWith(NewPool(cfg))
}

// NewServerWith wraps an existing pool.
func NewServerWith(p *Pool) *Server {
	s := &Server{pool: p, sessions: make(map[string]*Session), traces: obs.NewTraceLog(traceRing)}
	s.anon = p.NewSession()
	s.sessions[s.anon.ID] = s.anon
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/load", s.handleLoad)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessions)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/call", s.handleCall)
	s.mux.HandleFunc("POST /v1/infer", s.handleInfer)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/cache", s.handleCache)
	s.mux.HandleFunc("GET /v1/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/profile", s.handleProfile)
	s.mux.HandleFunc("GET /v1/explain", s.handleExplain)
	s.mux.Handle("GET /metrics", p.Registry().Handler())
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	return s
}

// Pool returns the underlying session pool.
func (s *Server) Pool() *Pool { return s.pool }

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]any{"error": err.Error()})
}

// StatusClientClosedRequest is the non-standard HTTP status (nginx's 499)
// reporting a request abandoned by its client: the serving layer uses it
// for executions stopped by context cancellation.
const StatusClientClosedRequest = 499

// StatusForError maps a request error onto its HTTP status: backpressure
// rejections become 429 (queue full) and 503 (acquire timeout) so clients
// can distinguish "back off" from "bad request"; unknown functions are 404;
// canceled executions are 499. ErrorForStatus is its inverse, so sentinel
// identities round-trip through the wire.
func StatusForError(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrAcquireTimeout):
		return http.StatusServiceUnavailable
	case errors.Is(err, core.ErrUnknownFunction):
		return http.StatusNotFound
	case errors.Is(err, core.ErrCanceled):
		return StatusClientClosedRequest
	default:
		return http.StatusUnprocessableEntity
	}
}

// ErrorForStatus reconstructs the sentinel error a non-2xx serving response
// encodes, wrapping the server-reported message so errors.Is works on the
// client side exactly as it does in-process.
func ErrorForStatus(status int, msg string) error {
	switch status {
	case http.StatusTooManyRequests:
		return fmt.Errorf("%w: %s", ErrOverloaded, msg)
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w: %s", ErrAcquireTimeout, msg)
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", core.ErrUnknownFunction, msg)
	case StatusClientClosedRequest:
		return fmt.Errorf("%w: %s", core.ErrCanceled, msg)
	default:
		return fmt.Errorf("serve: status %d: %s", status, msg)
	}
}

// failStatus is the internal shorthand the handlers use.
func failStatus(err error) int { return StatusForError(err) }

func decode(r *http.Request, into any) error {
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	return dec.Decode(into)
}

// session resolves the optional "session" request field; empty selects the
// shared anonymous session.
func (s *Server) session(id string) (*Session, error) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if id == "" {
		return s.anon, nil
	}
	sess, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("serve: unknown session %q", id)
	}
	return sess, nil
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Program string `json:"program"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	out, err := s.pool.Load(req.Program)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"output": out})
}

func (s *Server) handleSessions(w http.ResponseWriter, _ *http.Request) {
	s.sessMu.Lock()
	if len(s.sessions) >= s.pool.Config().MaxSessions {
		s.sessMu.Unlock()
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Errorf("serve: session limit reached (%d); free sessions with DELETE /v1/sessions/{id}", s.pool.Config().MaxSessions))
		return
	}
	sess := s.pool.NewSession()
	s.sessions[sess.ID] = sess
	s.sessMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"session": sess.ID})
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if id == s.anon.ID {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: cannot delete the shared anonymous session"))
		return
	}
	if _, ok := s.sessions[id]; !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("serve: unknown session %q", id))
		return
	}
	delete(s.sessions, id)
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string `json:"session"`
		Program string `json:"program"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var out string
	var err error
	if req.Session == "" {
		// Sessionless: throwaway module scope, any worker, no serialization.
		out, err = s.pool.ExecEphemeral(r.Context(), req.Program)
	} else {
		var sess *Session
		if sess, err = s.session(req.Session); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		out, err = sess.ExecCtx(r.Context(), req.Program)
	}
	if err != nil {
		writeErr(w, failStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"output": out})
}

func (s *Server) handleCall(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string         `json:"session"`
		Fn      string         `json:"fn"`
		Args    []any          `json:"args"`
		Feeds   map[string]any `json:"feeds"`
		// Shared names feeds the function reads whole (weight-like inputs):
		// they are broadcast to the batch rather than stacked per-row.
		Shared []string `json:"shared"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx, finish := s.startTrace(r, req.Fn)
	defer finish()
	if req.Feeds != nil {
		// Named-feed form: tensors addressed by parameter name, executed
		// through the request batcher (same-signature calls coalesce). The
		// batched path resolves against the loaded module globals, so it is
		// sessionless by construction.
		if len(req.Args) > 0 || req.Session != "" {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf(`serve: "feeds" cannot be combined with "args" or "session"`))
			return
		}
		feeds := make(map[string]*tensor.Tensor, len(req.Feeds))
		for name, v := range req.Feeds {
			t, err := jsonToTensor(v)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("feed %q: %w", name, err))
				return
			}
			feeds[name] = t
		}
		outs, err := s.pool.CallNamedShared(ctx, req.Fn, feeds, req.Shared)
		if err != nil {
			writeErr(w, failStatus(err), err)
			return
		}
		results := make([]any, len(outs))
		for i, t := range outs {
			results[i] = tensorToJSON(t)
		}
		writeJSON(w, http.StatusOK, map[string]any{"outputs": results})
		return
	}
	if len(req.Shared) > 0 {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf(`serve: "shared" only applies to the named-feed form ("feeds")`))
		return
	}
	var sess *Session
	var err error
	if req.Session != "" {
		if sess, err = s.session(req.Session); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
	}
	args := make([]minipy.Value, len(req.Args))
	for i, a := range req.Args {
		if args[i], err = jsonToValue(a); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("arg %d: %w", i, err))
			return
		}
	}
	var out minipy.Value
	if sess == nil {
		// Sessionless: stateless call on any worker, no serialization.
		out, err = s.pool.CallCtx(ctx, req.Fn, args)
	} else {
		out, err = sess.CallCtx(ctx, req.Fn, args)
	}
	if err != nil {
		writeErr(w, failStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"result": valueToJSON(out)})
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string `json:"session"`
		Fn      string `json:"fn"`
		X       any    `json:"x"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sess, err := s.session(req.Session)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	x, err := jsonToTensor(req.X)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx, finish := s.startTrace(r, req.Fn)
	defer finish()
	y, err := sess.InferCtx(ctx, req.Fn, x)
	if err != nil {
		writeErr(w, failStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"y": tensorToJSON(y), "shape": y.Shape()})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.pool.Stats())
}

// startTrace opens a request-scoped trace with one root "request" span:
// the engine's phase spans (convert, compile, execute, imperative,
// plan_build) and any parameter-server RPCs the execution issues parent
// under it, so GET /v1/trace renders one tree per request. An inbound
// Janus-Trace header adopts the caller's trace ID, so a request issued
// by another traced process correlates by ID across both trace logs.
// The returned finish closes the span and trace and records the trace
// in the /v1/trace ring.
func (s *Server) startTrace(r *http.Request, fn string) (ctx context.Context, finish func()) {
	id := fmt.Sprintf("r%d", s.traceSeq.Add(1))
	if rid, _, ok := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader)); ok {
		id = rid
	}
	t := obs.NewTrace(id)
	t.Annotate("endpoint", r.URL.Path)
	if fn != "" {
		t.Annotate("fn", fn)
	}
	sp := t.StartSpan("request")
	ctx = obs.ContextWithSpan(obs.ContextWithTrace(r.Context(), t), sp.ID())
	return ctx, func() {
		sp.End()
		t.Finish()
		s.traces.Add(t)
	}
}

// handleTrace dumps the most recent request traces, newest first. ?n=
// bounds the count (default 16, capped by the ring size).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	n := 16
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: bad n %q", q))
			return
		}
		n = v
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": s.traces.Snapshot(n)})
}

// handleProfile serves the always-on executor profiler's per-graph,
// per-node view for one loaded function (?fn=).
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	fn := r.URL.Query().Get("fn")
	if fn == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: /v1/profile needs ?fn="))
		return
	}
	prof, err := s.pool.Profile(r.Context(), fn)
	if err != nil {
		writeErr(w, failStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, prof)
}

// handleExplain serves the deopt explainability report for one loaded
// function (?fn=): which speculative assumptions failed, how often, and
// what the abandoned graph executions cost.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	fn := r.URL.Query().Get("fn")
	if fn == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: /v1/explain needs ?fn="))
		return
	}
	rep, err := s.pool.Explain(r.Context(), fn)
	if err != nil {
		writeErr(w, failStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleCache serves the graph-cache inspection endpoint: capacity, entry
// and eviction counts, pool-wide hit/miss counters, and the per-entry list
// (most recently used first).
func (s *Server) handleCache(w http.ResponseWriter, _ *http.Request) {
	info := s.pool.Cache().Inspect()
	st := s.pool.Stats()
	// Each entry in entry_list carries its own provenance ("compiled" vs
	// "snapshot") and bucket membership; the top level summarizes both so
	// operators can see at a glance whether a replica booted warm and how
	// much of its cache is shape-generalized.
	bucketed, fromSnapshot := 0, 0
	for _, e := range info.EntryList {
		if e.Bucketed {
			bucketed++
		}
		if e.Provenance == "snapshot" {
			fromSnapshot++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"capacity":         info.Capacity,
		"funcs":            info.Funcs,
		"entries":          info.Entries,
		"bucketed_entries": bucketed,
		"snapshot_entries": fromSnapshot,
		"evictions":        info.Evictions,
		"imperative_only":  info.ImperativeOnly,
		"hits":             st.CacheHits,
		"misses":           st.CacheMisses,
		"entry_list":       info.EntryList,
	})
}

// --- JSON ⇄ value conversion ---------------------------------------------------

// jsonToValue maps a decoded JSON value to a minipy value. Arrays become
// tensors; integral numbers become ints.
func jsonToValue(v any) (minipy.Value, error) {
	switch x := v.(type) {
	case nil:
		return minipy.None, nil
	case bool:
		return minipy.BoolVal(x), nil
	case string:
		return minipy.StrVal(x), nil
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return minipy.IntVal(i), nil
		}
		f, err := x.Float64()
		if err != nil {
			return nil, err
		}
		return minipy.FloatVal(f), nil
	case []any:
		t, err := jsonToTensor(x)
		if err != nil {
			return nil, err
		}
		return minipy.NewTensor(t), nil
	}
	return nil, fmt.Errorf("serve: unsupported JSON value %T", v)
}

// jsonToTensor converts (possibly nested) JSON arrays to a tensor; a bare
// number becomes a scalar tensor.
func jsonToTensor(v any) (*tensor.Tensor, error) {
	var shape []int
	var data []float64
	var walk func(v any, depth int) error
	walk = func(v any, depth int) error {
		switch x := v.(type) {
		case []any:
			if depth == len(shape) {
				shape = append(shape, len(x))
			} else if shape[depth] != len(x) {
				return fmt.Errorf("serve: ragged tensor literal at depth %d", depth)
			}
			for _, e := range x {
				if err := walk(e, depth+1); err != nil {
					return err
				}
			}
			return nil
		case json.Number:
			if depth < len(shape) {
				return fmt.Errorf("serve: ragged tensor literal at depth %d", depth)
			}
			f, err := x.Float64()
			if err != nil {
				return err
			}
			data = append(data, f)
			return nil
		case float64: // non-UseNumber decoders
			data = append(data, x)
			return nil
		}
		return fmt.Errorf("serve: tensor literal holds %T", v)
	}
	if err := walk(v, 0); err != nil {
		return nil, err
	}
	if len(shape) == 0 && len(data) == 1 {
		return tensor.Scalar(data[0]), nil
	}
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("serve: ragged tensor literal (%d values for shape %v)", len(data), shape)
	}
	return tensor.New(shape, data), nil
}

// tensorToJSON renders a tensor as nested arrays (a scalar as a number).
func tensorToJSON(t *tensor.Tensor) any {
	shape, data := t.Shape(), t.Data()
	if len(shape) == 0 {
		return t.Item()
	}
	var build func(shape []int, data []float64) any
	build = func(shape []int, data []float64) any {
		if len(shape) == 1 {
			out := make([]any, shape[0])
			for i := range out {
				out[i] = data[i]
			}
			return out
		}
		stride := len(data) / shape[0]
		out := make([]any, shape[0])
		for i := range out {
			out[i] = build(shape[1:], data[i*stride:(i+1)*stride])
		}
		return out
	}
	return build(shape, data)
}

// valueToJSON maps a minipy value to its JSON form.
func valueToJSON(v minipy.Value) any {
	switch x := v.(type) {
	case minipy.NoneVal:
		return nil
	case minipy.BoolVal:
		return bool(x)
	case minipy.IntVal:
		return int64(x)
	case minipy.FloatVal:
		return float64(x)
	case minipy.StrVal:
		return string(x)
	case *minipy.TensorVal:
		return tensorToJSON(x.T())
	case *minipy.ListVal:
		out := make([]any, len(x.Items))
		for i, e := range x.Items {
			out[i] = valueToJSON(e)
		}
		return out
	case *minipy.TupleVal:
		out := make([]any, len(x.Items))
		for i, e := range x.Items {
			out[i] = valueToJSON(e)
		}
		return out
	}
	return v.Repr()
}
