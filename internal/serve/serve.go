// Package serve is the concurrent model-serving subsystem: it amortizes the
// JANUS compiled-graph cache across many clients, which is where the paper's
// imperative→symbolic conversion pays off in production.
//
// A Pool owns N core.Engine workers that share one parameter store
// (vars.Store) and one compiled-graph cache (core.GraphCache). Each worker's
// interpreter is single-threaded, so a worker serves one request at a time;
// concurrency comes from the pool, and because the cache is shared, a graph
// speculatively converted while serving one client is a cache hit for every
// other client — including clients on different workers and in different
// sessions.
//
// Inference requests go through a batcher that coalesces concurrent
// same-signature calls into one batched tensor execution (configurable max
// batch size and max latency) and scatters per-request rows back to the
// callers.
package serve

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/minipy"
	"repro/internal/obs"
	"repro/internal/tensor"
	"repro/internal/vars"
)

// ErrOverloaded reports a request rejected because the bounded wait queue is
// full — the HTTP layer maps it to 429 so clients back off instead of piling
// goroutines onto the pool.
var ErrOverloaded = errors.New("serve: overloaded: request queue is full")

// ErrAcquireTimeout reports a queued request that waited longer than
// Config.AcquireTimeout for a worker — mapped to 503.
var ErrAcquireTimeout = errors.New("serve: timed out waiting for an engine worker")

// Config tunes a Pool. The zero value serves with 4 workers and a batcher
// window of 8 requests / 2 ms.
type Config struct {
	// Workers is the number of engine workers (concurrent requests served).
	Workers int
	// MaxBatch caps how many inference requests coalesce into one execution.
	MaxBatch int
	// MaxLatency is the longest a request waits for batch-mates before the
	// partial batch is flushed.
	MaxLatency time.Duration
	// MaxSessions caps concurrently registered HTTP sessions (default
	// 10000); sessions are freed with DELETE /v1/sessions/{id}.
	MaxSessions int
	// MaxQueue bounds how many requests may wait for a worker at once;
	// arrivals beyond the bound fail immediately with ErrOverloaded (HTTP
	// 429). Default 16 x Workers.
	MaxQueue int
	// AcquireTimeout bounds how long a queued request waits for a worker
	// before failing with ErrAcquireTimeout (HTTP 503). Default 10s.
	AcquireTimeout time.Duration
	// CacheCapacity bounds compiled graphs in the shared cache; the
	// least-recently-hit entry is evicted when exceeded (0 = unlimited).
	CacheCapacity int
	// BucketBatch turns on shape bucketing: the batcher pads each coalesced
	// execution up to the next power-of-two row count (capped at MaxBucket)
	// by repeating the last real row, so a fleet facing variable batch
	// sizes compiles a handful of graphs instead of one per distinct size.
	// Only real rows are scattered back. Workers additionally compile with
	// core.Config.RelaxBatchDim, so the bucket sizes themselves merge into
	// a single wildcard-batch graph when their structure is identical.
	// Served functions must be batch-dim parallel with batch-preserving
	// outputs; a shared scalar output (e.g. a mean loss) would aggregate
	// over synthetic rows, so padded executions reject it rather than
	// silently return a perturbed value.
	BucketBatch bool
	// MaxBucket caps the padded row count (rounded up to a power of two;
	// default 64). Executions already larger than MaxBucket run unpadded.
	MaxBucket int
	// Engine configures every worker (mode, learning rate, profiling, ...).
	Engine core.Config
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 8
	}
	if c.MaxLatency <= 0 {
		c.MaxLatency = 2 * time.Millisecond
	}
	if c.Engine.PyOverheadNs == 0 {
		// The engine's zero value simulates CPython's ~5µs/op dispatch cost
		// for the paper's benchmark comparisons. A serving pool is a Go
		// server, not a CPython simulation: default to no simulated overhead
		// (set PyOverheadNs explicitly to opt back in).
		c.Engine.PyOverheadNs = -1
	}
	if c.MaxSessions < 1 {
		c.MaxSessions = 10000
	}
	if c.MaxQueue < 1 {
		c.MaxQueue = 16 * c.Workers
	}
	if c.AcquireTimeout <= 0 {
		c.AcquireTimeout = 10 * time.Second
	}
	if c.MaxBucket < 1 {
		c.MaxBucket = 64
	}
	c.MaxBucket = nextPow2(c.MaxBucket)
	if c.BucketBatch {
		// Bucketed serving wants one graph across bucket sizes, not one per
		// bucket: let structurally identical conversions relax-merge into a
		// wildcard batch dim.
		c.Engine.RelaxBatchDim = true
	}
	return c
}

// nextPow2 rounds n up to the nearest power of two (n >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Stats aggregates engine counters across the pool plus serving-side
// counters.
type Stats struct {
	core.Stats
	Workers         int
	Sessions        int
	Requests        int64
	Batches         int64
	BatchedRequests int64
	CachedFuncs     int
	CachedGraphs    int
	CacheEvictions  int64
	// Rejected counts requests refused because the wait queue was full
	// (429); TimedOut counts requests that gave up waiting for a worker
	// (503); Queued is the current number of waiters.
	Rejected int64
	TimedOut int64
	Queued   int64
}

// Pool is the session pool: N worker engines around one shared parameter
// store and one shared graph cache.
type Pool struct {
	cfg     Config
	store   *vars.Store
	cache   *core.GraphCache
	engines []*core.Engine
	idle    chan *core.Engine
	batcher *batcher

	// obs is the pool-wide metrics registry: every worker engine resolves
	// its instruments here (Config.Engine.Obs), so one /metrics exposition
	// covers engines, executor, batcher and admission control. metrics
	// holds the serving-side instruments; request/rejection/timeout counts
	// live only in the registry (Stats reads them back).
	obs     *obs.Registry
	metrics *metrics

	// sessions generates session IDs (and doubles as the created-sessions
	// count); queued is the live number of waiters, kept as an atomic
	// because admission control compares-and-backs-off on the incremented
	// value. Both are exposed through func-backed registry series.
	sessions atomic.Int64
	queued   atomic.Int64

	loadMu sync.Mutex
	// srcs accumulates every source loaded through Load, in order; the
	// concatenation fingerprints the served program for snapshot artifacts
	// (see ProgramHash).
	srcs []string
	// sigs caches the loaded module functions' parameter lists (snapshotted
	// under loadMu after every Load), so handle resolution reads a map
	// instead of competing with requests for an exclusive worker.
	sigMu sync.RWMutex
	sigs  map[string][]string
}

// NewPool builds the worker engines. Load a program before serving.
func NewPool(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	reg := cfg.Engine.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	p := &Pool{
		cfg:     cfg,
		store:   vars.NewStore(),
		cache:   core.NewGraphCacheCap(cfg.CacheCapacity),
		idle:    make(chan *core.Engine, cfg.Workers),
		obs:     reg,
		metrics: newMetrics(reg),
	}
	// The pool registers the one shared cache on the one shared registry;
	// workers see Config.Obs non-nil and skip their (per-engine) cache
	// registration, keeping the pairing 1:1 (see core.RegisterCacheMetrics).
	core.RegisterCacheMetrics(reg, p.cache)
	// Artifact (snapshot) families appear in the exposition from boot, so
	// the CI cold-start gate can assert their presence on a replica that
	// has not yet saved or loaded anything.
	core.RegisterArtifactMetrics(reg)
	reg.CounterFunc("janus_serve_sessions_total", helpSessions,
		func() float64 { return float64(p.sessions.Load()) })
	reg.GaugeFunc("janus_serve_queued", helpQueued,
		func() float64 { return float64(p.queued.Load()) })
	for i := 0; i < cfg.Workers; i++ {
		ecfg := cfg.Engine
		ecfg.Obs = reg
		if ecfg.Seed != 0 {
			// Distinct per-worker RNG streams; the parameter store is shared,
			// so whichever worker initializes a variable fixes it for all.
			ecfg.Seed += uint64(i) * 7919
		}
		e := core.NewEngineShared(ecfg, p.store, p.cache)
		p.engines = append(p.engines, e)
		p.idle <- e
	}
	p.batcher = newBatcher(p, cfg.MaxBatch, cfg.MaxLatency)
	return p
}

// Config returns the pool's effective (defaulted) configuration.
func (p *Pool) Config() Config { return p.cfg }

// Store exposes the shared parameter store.
func (p *Pool) Store() *vars.Store { return p.store }

// Cache exposes the shared compiled-graph cache.
func (p *Pool) Cache() *core.GraphCache { return p.cache }

// Registry exposes the pool-wide metrics registry (the one every worker
// engine and the serving layer write into); the HTTP layer serves it at
// GET /metrics.
func (p *Pool) Registry() *obs.Registry { return p.obs }

// admitQueued reserves one wait-queue slot, failing fast with ErrOverloaded
// when MaxQueue slots are taken. The caller holds the slot until it calls
// release. Every waiting request — a worker-acquire, a session-lock wait, a
// batcher submission — occupies a slot, so the bound covers all the ways
// goroutines can pile up under overload.
func (p *Pool) admitQueued() (release func(), err error) {
	if p.queued.Add(1) > int64(p.cfg.MaxQueue) {
		p.queued.Add(-1)
		p.metrics.rejected.Inc()
		return nil, ErrOverloaded
	}
	return func() { p.queued.Add(-1) }, nil
}

// admitWait is the pool's admission discipline over a claim channel:
// immediate claim when a token is available, otherwise a queue-slot-bounded,
// AcquireTimeout-bounded, context-bounded wait. Both worker acquisition
// (tokens are idle engines) and session serialization (a one-token
// semaphore) share it, so 429/503 semantics can never diverge between the
// two paths. A canceled ctx fails the wait with core.ErrCanceled — clients
// that give up stop occupying queue slots immediately.
func admitWait[T any](p *Pool, ctx context.Context, ch <-chan T) (T, error) {
	select {
	case v := <-ch:
		// Immediate claim: recorded as a zero wait so the histogram's
		// count covers every acquisition, not just the contended ones.
		p.metrics.acquireWait.Observe(0)
		return v, nil
	default:
	}
	var zero T
	if err := ctx.Err(); err != nil {
		return zero, core.CanceledErr(ctx)
	}
	release, err := p.admitQueued()
	if err != nil {
		return zero, err
	}
	defer release()
	t0 := time.Now()
	timer := time.NewTimer(p.cfg.AcquireTimeout)
	defer timer.Stop()
	select {
	case v := <-ch:
		p.metrics.acquireWait.Since(t0)
		return v, nil
	case <-timer.C:
		p.metrics.timedOut.Inc()
		return zero, ErrAcquireTimeout
	case <-ctx.Done():
		return zero, core.CanceledErr(ctx)
	}
}

// acquire hands out an idle worker engine with backpressure: when every
// worker is busy, at most MaxQueue requests wait (beyond that arrivals fail
// fast with ErrOverloaded), and no waiter outlasts AcquireTimeout
// (ErrAcquireTimeout) or its own context. This bounds goroutine pile-up
// under overload — the failure mode of the previous unbounded blocking
// acquire.
func (p *Pool) acquire(ctx context.Context) (*core.Engine, error) {
	return admitWait(p, ctx, p.idle)
}

// acquireWait blocks for a worker up to AcquireTimeout without consuming a
// queue slot. The batcher uses it at flush time: each request in the batch
// already held (and still holds) its own slot from submission, so the flush
// must not be spuriously rejected by a queue it never occupied.
func (p *Pool) acquireWait() (*core.Engine, error) {
	select {
	case e := <-p.idle:
		p.metrics.acquireWait.Observe(0)
		return e, nil
	default:
	}
	t0 := time.Now()
	timer := time.NewTimer(p.cfg.AcquireTimeout)
	defer timer.Stop()
	select {
	case e := <-p.idle:
		p.metrics.acquireWait.Since(t0)
		return e, nil
	case <-timer.C:
		p.metrics.timedOut.Inc()
		return nil, ErrAcquireTimeout
	}
}

func (p *Pool) release(e *core.Engine) { p.idle <- e }

// guard converts engine panics into request errors. Deep tensor kernels
// panic on malformed inputs (shape mismatches etc.); a serving process must
// return an error to the one offending client, not crash — and the batcher
// flushes from a timer goroutine, where an unrecovered panic would kill the
// whole process.
func guard[T any](f func() (T, error)) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: request failed: %v", r)
		}
	}()
	return f()
}

// Load parses src once and runs it on every worker, so module-level
// definitions (and the functions clients will Call/Infer) exist everywhere.
// Because the program AST is shared, a function has the same identity on all
// workers and its compiled graphs are shared through the cache.
//
// Top-level statements execute once per worker. variable() creation is
// idempotent (first worker initializes the shared store, the rest reuse it),
// but other top-level side effects — optimize() training loops, prints —
// repeat per worker. Keep served programs to definitions plus cheap init;
// drive training through Call("train_step") or Exec instead. Returns worker
// 0's print output.
func (p *Pool) Load(src string) (string, error) {
	prog, err := minipy.Parse(src)
	if err != nil {
		return "", err
	}
	p.loadMu.Lock()
	defer p.loadMu.Unlock()
	// Take exclusive ownership of every worker so a load never interleaves
	// with in-flight requests. Load is an administrative path: it waits out
	// in-flight work unboundedly instead of going through the backpressured
	// acquire.
	engines := make([]*core.Engine, 0, len(p.engines))
	for range p.engines {
		engines = append(engines, <-p.idle)
	}
	defer func() {
		for _, e := range engines {
			p.release(e)
		}
	}()
	var out string
	for i, e := range engines {
		before := len(e.Output())
		if _, err := guard(func() (struct{}, error) {
			return struct{}{}, e.RunProgram(prog)
		}); err != nil {
			return "", fmt.Errorf("serve: load on worker %d: %w", i, err)
		}
		if i == 0 {
			out = e.Output()[before:]
		}
	}
	// Snapshot the loaded signatures while the workers are still exclusively
	// held, so FuncParams never needs a worker of its own.
	sigs := engines[0].Functions()
	p.sigMu.Lock()
	p.sigs = sigs
	p.sigMu.Unlock()
	p.srcs = append(p.srcs, src)
	return out, nil
}

// ProgramHash fingerprints every source loaded so far (length-prefixed
// SHA-256 over the concatenation, in load order). Snapshot artifacts embed
// it, and a boot-time load validates it: cached functions are addressed by
// (program index, AST offset), which only mean the same thing when the same
// sources were loaded in the same order.
func (p *Pool) ProgramHash() string {
	p.loadMu.Lock()
	defer p.loadMu.Unlock()
	h := sha256.New()
	for _, src := range p.srcs {
		fmt.Fprintf(h, "%d\n", len(src))
		h.Write([]byte(src))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// SaveSnapshot persists the pool's warm state — compiled graphs, memory
// plans, pass reports, the signature-hash index, profiling progress and
// model parameters — into the artifact file at path (atomic write). Returns
// the number of compiled entries saved. Safe to call while serving: the
// cache and store are read under their own locks.
func (p *Pool) SaveSnapshot(path string) (int, error) {
	return p.engines[0].SaveArtifact(path, p.ProgramHash())
}

// LoadSnapshot restores a snapshot artifact saved by a replica that had
// loaded the same program sources (validated via ProgramHash). Call after
// Load. On success every worker sees the restored graphs immediately —
// cache and parameter store are pool-shared — and the first request is
// served warm, with zero conversions and zero imperative profiling steps.
// Any mismatch or corruption rejects the whole artifact (counted in
// janus_artifact_rejected_total) and the pool simply serves cold.
func (p *Pool) LoadSnapshot(path string) (int, error) {
	return p.engines[0].LoadArtifact(path, p.ProgramHash())
}

// Call invokes a loaded module-level function on one worker. Training-step
// functions (which call optimize() internally) and inference functions both
// work; inference-heavy callers should prefer Infer/CallNamed for batching.
func (p *Pool) Call(fn string, args []minipy.Value) (minipy.Value, error) {
	return p.CallCtx(context.Background(), fn, args)
}

// CallCtx is Call under a context: cancellation interrupts both the wait for
// a worker and the execution itself (checked between steps and statements).
func (p *Pool) CallCtx(ctx context.Context, fn string, args []minipy.Value) (minipy.Value, error) {
	p.metrics.requests.Inc()
	e, err := p.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer p.release(e)
	return guard(func() (minipy.Value, error) { return e.CallCtx(ctx, fn, args) })
}

// CallNamed invokes a loaded module-level function with feeds addressed by
// parameter name, through the request batcher: concurrent calls with the
// same function, feed names and per-item shapes are stacked along the
// leading (batch) axis, executed once, and every output is split back
// row-for-row. EVERY feed is stacked — the function must be batch-dim
// parallel in all of its parameters (shared, non-batch inputs like weight
// matrices belong in variable()s or module globals, not feeds). Every feed
// must keep a leading batch dimension; unknown or missing parameter names
// fail up front with a clear error.
func (p *Pool) CallNamed(ctx context.Context, fn string, feeds map[string]*tensor.Tensor) ([]*tensor.Tensor, error) {
	return p.CallNamedShared(ctx, fn, feeds, nil)
}

// CallNamedShared is CallNamed with some feeds marked shared (broadcast):
// weight-like inputs — lookup tables, projection matrices — that the
// function reads whole rather than per-row. Shared feeds are exempt from
// the batch-dimension contract, are never stacked or padded, and don't
// split batches: concurrent requests coalesce as long as their shared
// feeds are bit-identical. Names in shared must appear in feeds.
func (p *Pool) CallNamedShared(ctx context.Context, fn string, feeds map[string]*tensor.Tensor, shared []string) ([]*tensor.Tensor, error) {
	if len(feeds) == 0 {
		// Nothing to batch: a zero-feed call executes directly, so no-arg
		// handles behave identically on every backend.
		out, err := p.CallCtx(ctx, fn, nil)
		if err != nil {
			return nil, err
		}
		outs, err := minipy.Tensors(out)
		if err != nil {
			return nil, fmt.Errorf("serve: %s: %v", fn, err)
		}
		return outs, nil
	}
	// The positional-Infer group key is internal: a client-chosen "#0" must
	// not reach the positional call branch and bypass named binding.
	if _, ok := feeds[positionalFeed]; ok {
		return nil, fmt.Errorf("serve: %s: feed name %q is reserved", fn, positionalFeed)
	}
	sharedSet := make(map[string]bool, len(shared))
	for _, name := range shared {
		if _, ok := feeds[name]; !ok {
			return nil, fmt.Errorf("serve: %s: shared feed %q is not among the feeds", fn, name)
		}
		sharedSet[name] = true
	}
	p.metrics.requests.Inc()
	return p.batcher.submit(ctx, fn, sortedFeeds(feeds, sharedSet))
}

// FuncParams resolves a loaded module-level function and returns its
// parameter names (handle metadata). It reads the signature snapshot taken
// at Load time — a map lookup, never a worker acquisition, so resolving
// handles on a saturated pool cannot block or be rejected. Functions
// defined outside Load (per-worker Exec scripts) are not visible here;
// unknown names carry core.ErrUnknownFunction.
func (p *Pool) FuncParams(_ context.Context, fn string) ([]string, error) {
	p.sigMu.RLock()
	params, ok := p.sigs[fn]
	p.sigMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", core.ErrUnknownFunction, fn)
	}
	out := make([]string, len(params))
	copy(out, params)
	return out, nil
}

// Explain reports why fn runs the way it does (see core.Engine.Explain):
// per cache slot, whether it is pinned imperative, its profiling window,
// distrusted assumptions, and every aggregated deopt event. The compiled-
// graph cache is pool-wide, so any worker's view is the pool's view; the
// call still acquires a worker to hold the engine exclusively.
func (p *Pool) Explain(ctx context.Context, fn string) (*core.ExplainReport, error) {
	e, err := p.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer p.release(e)
	return guard(func() (*core.ExplainReport, error) { return e.Explain(fn) })
}

// Profile returns the executor's always-on per-node profiles for every
// compiled graph cached for fn (see core.Engine.Profile). Like Explain,
// the cache is pool-wide, so one worker's snapshot covers the pool.
func (p *Pool) Profile(ctx context.Context, fn string) (*core.FuncProfile, error) {
	e, err := p.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer p.release(e)
	return guard(func() (*core.FuncProfile, error) { return e.Profile(fn) })
}

// Infer runs fn on one input tensor through the request batcher: concurrent
// calls with the same function and item signature are stacked along the
// leading (batch) axis, executed once, and split back. x must have a leading
// batch dimension (use shape [1, ...] for a single example).
func (p *Pool) Infer(fn string, x *tensor.Tensor) (*tensor.Tensor, error) {
	return p.InferCtx(context.Background(), fn, x)
}

// InferCtx is Infer under a context.
func (p *Pool) InferCtx(ctx context.Context, fn string, x *tensor.Tensor) (*tensor.Tensor, error) {
	p.metrics.requests.Inc()
	outs, err := p.batcher.submit(ctx, fn, []feed{{name: positionalFeed, t: x}})
	if err != nil {
		return nil, err
	}
	if len(outs) != 1 {
		return nil, fmt.Errorf("serve: %s returned %d outputs, want one tensor (use CallNamed for multi-output functions)", fn, len(outs))
	}
	return outs[0], nil
}

// execOn runs src on one engine — in env when non-nil, in the worker's own
// module globals otherwise — and returns the new print output, with engine
// panics recovered into request errors.
func execOn(ctx context.Context, e *core.Engine, src string, env *minipy.Env) (string, error) {
	return guard(func() (string, error) {
		before := len(e.Output())
		var err error
		if env != nil {
			err = e.ExecInCtx(ctx, src, env)
		} else {
			err = e.RunCtx(ctx, src)
		}
		if err != nil {
			return "", err
		}
		return e.Output()[before:], nil
	})
}

// Exec runs an ad-hoc script on one worker and returns its print output.
// Module globals the script defines live on that worker only; use Load for
// definitions every worker must see, or Session.Exec for state that follows
// a session across workers.
func (p *Pool) Exec(src string) (string, error) {
	return p.ExecCtx(context.Background(), src)
}

// ExecCtx is Exec under a context.
func (p *Pool) ExecCtx(ctx context.Context, src string) (string, error) {
	p.metrics.requests.Inc()
	e, err := p.acquire(ctx)
	if err != nil {
		return "", err
	}
	defer p.release(e)
	return execOn(ctx, e, src, nil)
}

// ExecEphemeral runs src in a throwaway module scope layered over one
// worker's globals: reads see the loaded definitions, writes vanish with
// the request. The HTTP layer uses it for sessionless /v1/run — requests
// run on any worker in parallel, leak nothing onto the worker, and clients
// that want state across requests open a session.
func (p *Pool) ExecEphemeral(ctx context.Context, src string) (string, error) {
	p.metrics.requests.Inc()
	e, err := p.acquire(ctx)
	if err != nil {
		return "", err
	}
	defer p.release(e)
	env := minipy.NewEnv(nil)
	env.MarkModule()
	return execOn(ctx, e, src, env)
}

// Stats aggregates engine and serving counters. Every worker resolves its
// instruments in the pool's shared registry, so worker 0's snapshot already
// carries the pool-wide engine counters (the same series every worker
// increments); only the strictly per-engine tensor pools are summed.
func (p *Pool) Stats() Stats {
	var s Stats
	s.Stats = p.engines[0].Stats()
	s.PoolGets, s.PoolHits, s.PoolPuts = 0, 0, 0
	for _, e := range p.engines {
		ps := e.TensorPoolStats()
		s.PoolGets += ps.Gets
		s.PoolHits += ps.Hits
		s.PoolPuts += ps.Puts
	}
	s.Workers = len(p.engines)
	s.Sessions = int(p.sessions.Load())
	s.Requests = p.metrics.requests.Value()
	s.Batches = p.metrics.flushes()
	s.BatchedRequests = p.metrics.batched.Value()
	s.CachedFuncs = p.cache.Funcs()
	s.CachedGraphs = p.cache.Entries()
	s.CacheEvictions = p.cache.Evictions()
	s.Rejected = p.metrics.rejected.Value()
	s.TimedOut = p.metrics.timedOut.Value()
	s.Queued = p.queued.Load()
	return s
}

// Session is a client handle onto the pool. Graphs, parameters and workers
// stay pool-wide — that sharing is the point — but module-level state a
// session creates (Exec scripts defining counters, tensors, helper
// functions) is session-affine: it lives in the session's own environment
// and follows the session to whichever worker serves its next request.
// Previously such globals landed on whichever worker happened to run the
// script, so a follow-up request on another worker silently saw none of
// them.
type Session struct {
	ID       string
	pool     *Pool
	requests atomic.Int64

	// sem is a one-token semaphore serializing the session's stateful
	// requests: env can be attached to only one worker engine at a time
	// (Infer is stateless and bypasses it). Waiters go through the pool's
	// admission rules (admitWait) — bounded queue, acquire timeout — so a
	// pile-up on one session fails fast with 429/503 instead of parking
	// goroutines on a mutex forever.
	sem chan struct{}
	env *minipy.Env
}

// NewSession registers a new client session.
func (p *Pool) NewSession() *Session {
	id := p.sessions.Add(1)
	env := minipy.NewEnv(nil)
	// The session env is the module scope for session code: `global` inside
	// session-defined functions binds session state, not worker globals.
	env.MarkModule()
	sem := make(chan struct{}, 1)
	sem <- struct{}{}
	return &Session{ID: fmt.Sprintf("s%d", id), pool: p, env: env, sem: sem}
}

// lock claims the session's serialization token under the pool's
// backpressure rules; the caller must unlock() on success.
func (s *Session) lock(ctx context.Context) error {
	_, err := admitWait(s.pool, ctx, s.sem)
	return err
}

func (s *Session) unlock() { s.sem <- struct{}{} }

// Call invokes a function for this session, resolving the name through the
// session environment first — functions defined by this session's Exec
// scripts shadow the loaded module globals.
func (s *Session) Call(fn string, args []minipy.Value) (minipy.Value, error) {
	return s.CallCtx(context.Background(), fn, args)
}

// CallCtx is Call under a context.
func (s *Session) CallCtx(ctx context.Context, fn string, args []minipy.Value) (minipy.Value, error) {
	s.requests.Add(1)
	s.pool.metrics.requests.Inc()
	if err := s.lock(ctx); err != nil {
		return nil, err
	}
	defer s.unlock()
	e, err := s.pool.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer s.pool.release(e)
	return guard(func() (minipy.Value, error) { return e.CallInCtx(ctx, s.env, fn, args) })
}

// CallNamed runs a batched named-feed call for this session. Like Infer it
// is stateless with respect to the session environment (the function is a
// pool-wide definition), so it goes straight to the batcher and never
// serializes on the session.
func (s *Session) CallNamed(ctx context.Context, fn string, feeds map[string]*tensor.Tensor) ([]*tensor.Tensor, error) {
	s.requests.Add(1)
	return s.pool.CallNamed(ctx, fn, feeds)
}

// Infer runs batched inference for this session. Inference is stateless
// (the model function is a pool-wide definition), so it goes straight to
// the batcher and never serializes on the session.
func (s *Session) Infer(fn string, x *tensor.Tensor) (*tensor.Tensor, error) {
	return s.InferCtx(context.Background(), fn, x)
}

// InferCtx is Infer under a context.
func (s *Session) InferCtx(ctx context.Context, fn string, x *tensor.Tensor) (*tensor.Tensor, error) {
	s.requests.Add(1)
	return s.pool.InferCtx(ctx, fn, x)
}

// Exec runs an ad-hoc script for this session. Top-level names the script
// binds land in the session environment and are visible to the session's
// later Exec and Call requests regardless of which worker serves them.
func (s *Session) Exec(src string) (string, error) {
	return s.ExecCtx(context.Background(), src)
}

// ExecCtx is Exec under a context.
func (s *Session) ExecCtx(ctx context.Context, src string) (string, error) {
	s.requests.Add(1)
	s.pool.metrics.requests.Inc()
	if err := s.lock(ctx); err != nil {
		return "", err
	}
	defer s.unlock()
	e, err := s.pool.acquire(ctx)
	if err != nil {
		return "", err
	}
	defer s.pool.release(e)
	return execOn(ctx, e, src, s.env)
}

// Requests returns how many requests this session has issued.
func (s *Session) Requests() int64 { return s.requests.Load() }

// Pool returns the pool this session is a client of.
func (s *Session) Pool() *Pool { return s.pool }
