// Package serve is the concurrent model-serving subsystem: it amortizes the
// JANUS compiled-graph cache across many clients, which is where the paper's
// imperative→symbolic conversion pays off in production.
//
// A Pool owns N core.Engine workers that share one parameter store
// (vars.Store) and one compiled-graph cache (core.GraphCache). Each worker's
// interpreter is single-threaded, so a worker serves one request at a time;
// concurrency comes from the pool, and because the cache is shared, a graph
// speculatively converted while serving one client is a cache hit for every
// other client — including clients on different workers and in different
// sessions.
//
// Inference requests go through a batcher that coalesces concurrent
// same-signature calls into one batched tensor execution (configurable max
// batch size and max latency) and scatters per-request rows back to the
// callers.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/minipy"
	"repro/internal/tensor"
	"repro/internal/vars"
)

// Config tunes a Pool. The zero value serves with 4 workers and a batcher
// window of 8 requests / 2 ms.
type Config struct {
	// Workers is the number of engine workers (concurrent requests served).
	Workers int
	// MaxBatch caps how many inference requests coalesce into one execution.
	MaxBatch int
	// MaxLatency is the longest a request waits for batch-mates before the
	// partial batch is flushed.
	MaxLatency time.Duration
	// MaxSessions caps concurrently registered HTTP sessions (default
	// 10000); sessions are freed with DELETE /v1/sessions/{id}.
	MaxSessions int
	// Engine configures every worker (mode, learning rate, profiling, ...).
	Engine core.Config
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 8
	}
	if c.MaxLatency <= 0 {
		c.MaxLatency = 2 * time.Millisecond
	}
	if c.Engine.PyOverheadNs == 0 {
		// The engine's zero value simulates CPython's ~5µs/op dispatch cost
		// for the paper's benchmark comparisons. A serving pool is a Go
		// server, not a CPython simulation: default to no simulated overhead
		// (set PyOverheadNs explicitly to opt back in).
		c.Engine.PyOverheadNs = -1
	}
	if c.MaxSessions < 1 {
		c.MaxSessions = 10000
	}
	return c
}

// Stats aggregates engine counters across the pool plus serving-side
// counters.
type Stats struct {
	core.Stats
	Workers         int
	Sessions        int
	Requests        int64
	Batches         int64
	BatchedRequests int64
	CachedFuncs     int
	CachedGraphs    int
}

// Pool is the session pool: N worker engines around one shared parameter
// store and one shared graph cache.
type Pool struct {
	cfg     Config
	store   *vars.Store
	cache   *core.GraphCache
	engines []*core.Engine
	idle    chan *core.Engine
	batcher *batcher

	sessions atomic.Int64
	requests atomic.Int64

	loadMu sync.Mutex
}

// NewPool builds the worker engines. Load a program before serving.
func NewPool(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{
		cfg:   cfg,
		store: vars.NewStore(),
		cache: core.NewGraphCache(),
		idle:  make(chan *core.Engine, cfg.Workers),
	}
	for i := 0; i < cfg.Workers; i++ {
		ecfg := cfg.Engine
		if ecfg.Seed != 0 {
			// Distinct per-worker RNG streams; the parameter store is shared,
			// so whichever worker initializes a variable fixes it for all.
			ecfg.Seed += uint64(i) * 7919
		}
		e := core.NewEngineShared(ecfg, p.store, p.cache)
		p.engines = append(p.engines, e)
		p.idle <- e
	}
	p.batcher = newBatcher(p, cfg.MaxBatch, cfg.MaxLatency)
	return p
}

// Config returns the pool's effective (defaulted) configuration.
func (p *Pool) Config() Config { return p.cfg }

// Store exposes the shared parameter store.
func (p *Pool) Store() *vars.Store { return p.store }

// Cache exposes the shared compiled-graph cache.
func (p *Pool) Cache() *core.GraphCache { return p.cache }

func (p *Pool) acquire() *core.Engine  { return <-p.idle }
func (p *Pool) release(e *core.Engine) { p.idle <- e }

// guard converts engine panics into request errors. Deep tensor kernels
// panic on malformed inputs (shape mismatches etc.); a serving process must
// return an error to the one offending client, not crash — and the batcher
// flushes from a timer goroutine, where an unrecovered panic would kill the
// whole process.
func guard[T any](f func() (T, error)) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: request failed: %v", r)
		}
	}()
	return f()
}

// Load parses src once and runs it on every worker, so module-level
// definitions (and the functions clients will Call/Infer) exist everywhere.
// Because the program AST is shared, a function has the same identity on all
// workers and its compiled graphs are shared through the cache.
//
// Top-level statements execute once per worker. variable() creation is
// idempotent (first worker initializes the shared store, the rest reuse it),
// but other top-level side effects — optimize() training loops, prints —
// repeat per worker. Keep served programs to definitions plus cheap init;
// drive training through Call("train_step") or Exec instead. Returns worker
// 0's print output.
func (p *Pool) Load(src string) (string, error) {
	prog, err := minipy.Parse(src)
	if err != nil {
		return "", err
	}
	p.loadMu.Lock()
	defer p.loadMu.Unlock()
	// Take exclusive ownership of every worker so a load never interleaves
	// with in-flight requests.
	engines := make([]*core.Engine, 0, len(p.engines))
	for range p.engines {
		engines = append(engines, p.acquire())
	}
	defer func() {
		for _, e := range engines {
			p.release(e)
		}
	}()
	var out string
	for i, e := range engines {
		before := len(e.Output())
		if _, err := guard(func() (struct{}, error) {
			return struct{}{}, e.RunProgram(prog)
		}); err != nil {
			return "", fmt.Errorf("serve: load on worker %d: %w", i, err)
		}
		if i == 0 {
			out = e.Output()[before:]
		}
	}
	return out, nil
}

// Call invokes a loaded module-level function on one worker. Training-step
// functions (which call optimize() internally) and inference functions both
// work; inference-heavy callers should prefer Infer for batching.
func (p *Pool) Call(fn string, args []minipy.Value) (minipy.Value, error) {
	p.requests.Add(1)
	e := p.acquire()
	defer p.release(e)
	return guard(func() (minipy.Value, error) { return e.Call(fn, args) })
}

// Infer runs fn on one input tensor through the request batcher: concurrent
// calls with the same function and item signature are stacked along the
// leading (batch) axis, executed once, and split back. x must have a leading
// batch dimension (use shape [1, ...] for a single example).
func (p *Pool) Infer(fn string, x *tensor.Tensor) (*tensor.Tensor, error) {
	p.requests.Add(1)
	return p.batcher.submit(fn, x)
}

// Exec runs an ad-hoc script on one worker and returns its print output.
// Module globals the script defines live on that worker only; use Load for
// definitions every worker must see.
func (p *Pool) Exec(src string) (string, error) {
	p.requests.Add(1)
	e := p.acquire()
	defer p.release(e)
	return guard(func() (string, error) {
		before := len(e.Output())
		if err := e.Run(src); err != nil {
			return "", err
		}
		return e.Output()[before:], nil
	})
}

// Stats aggregates engine and serving counters.
func (p *Pool) Stats() Stats {
	var s Stats
	for _, e := range p.engines {
		s.Stats.Add(e.Stats())
	}
	s.Workers = len(p.engines)
	s.Sessions = int(p.sessions.Load())
	s.Requests = p.requests.Load()
	s.Batches = p.batcher.batches.Load()
	s.BatchedRequests = p.batcher.batched.Load()
	s.CachedFuncs = p.cache.Funcs()
	s.CachedGraphs = p.cache.Entries()
	return s
}

// Session is a client handle onto the pool. Sessions are cheap: they carry
// identity and per-session accounting, while graphs, parameters and workers
// are pool-wide — that sharing is the point.
type Session struct {
	ID       string
	pool     *Pool
	requests atomic.Int64
}

// NewSession registers a new client session.
func (p *Pool) NewSession() *Session {
	id := p.sessions.Add(1)
	return &Session{ID: fmt.Sprintf("s%d", id), pool: p}
}

// Call invokes a loaded function for this session.
func (s *Session) Call(fn string, args []minipy.Value) (minipy.Value, error) {
	s.requests.Add(1)
	return s.pool.Call(fn, args)
}

// Infer runs batched inference for this session.
func (s *Session) Infer(fn string, x *tensor.Tensor) (*tensor.Tensor, error) {
	s.requests.Add(1)
	return s.pool.Infer(fn, x)
}

// Exec runs an ad-hoc script for this session.
func (s *Session) Exec(src string) (string, error) {
	s.requests.Add(1)
	return s.pool.Exec(src)
}

// Requests returns how many requests this session has issued.
func (s *Session) Requests() int64 { return s.requests.Load() }
