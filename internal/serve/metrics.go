package serve

import (
	"repro/internal/obs"
)

// Serving-side metric help strings.
const (
	helpRequests  = "Requests accepted by the pool (calls, inference, exec scripts)."
	helpRejected  = "Requests refused because the wait queue was full (HTTP 429)."
	helpTimeouts  = "Requests that gave up waiting for a worker (HTTP 503)."
	helpQueued    = "Requests currently waiting for a worker or a session lock."
	helpSessions  = "Client sessions registered over the pool's lifetime."
	helpAcqWait   = "Time a request waited to claim a worker or session token."
	helpBatchSize = "Requests coalesced into one batched execution."
	helpBatchWait = "Time a request spent parked in a batch group before its flush."
	helpFlushes   = "Batch-group flushes, by trigger (full window vs timer expiry)."
	helpBatched   = "Requests served through the batcher."

	helpBucketPadded = "Batched executions padded up to a power-of-two row bucket."
	helpBucketExact  = "Batched executions whose row count already sat on a bucket boundary."
	helpBucketRows   = "Synthetic padding rows appended by the shape-bucketing policy."
)

// metrics is the pool's serving-side instrument set, resolved once in the
// pool's shared registry (the same registry every worker engine writes
// its own counters into, so one exposition covers the whole process).
// These counters replace the pool's former ad-hoc atomics: every count is
// recorded exactly once, and Stats() is a view over the registry.
type metrics struct {
	reg *obs.Registry

	requests *obs.Counter
	rejected *obs.Counter
	timedOut *obs.Counter

	acquireWait *obs.Histogram

	batchSize  *obs.Histogram
	batchWait  *obs.Histogram
	flushFull  *obs.Counter
	flushTimer *obs.Counter
	batched    *obs.Counter

	// Shape-bucketing instruments (janus_bucket_*), registered eagerly so
	// the family is present in a fresh boot's exposition — the CI cold-start
	// gate checks family presence before any traffic arrives.
	bucketPadded *obs.Counter
	bucketExact  *obs.Counter
	bucketRows   *obs.Counter
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		reg:      reg,
		requests: reg.Counter("janus_serve_requests_total", helpRequests),
		rejected: reg.Counter("janus_serve_rejected_total", helpRejected),
		timedOut: reg.Counter("janus_serve_timeouts_total", helpTimeouts),
		acquireWait: reg.Histogram("janus_serve_acquire_wait_seconds", helpAcqWait,
			obs.DefBuckets),
		batchSize: reg.Histogram("janus_serve_batch_size", helpBatchSize,
			obs.SizeBuckets),
		batchWait: reg.Histogram("janus_serve_batch_wait_seconds", helpBatchWait,
			obs.DefBuckets),
		flushFull:  reg.Counter("janus_serve_batch_flushes_total", helpFlushes, "reason", "full"),
		flushTimer: reg.Counter("janus_serve_batch_flushes_total", helpFlushes, "reason", "timer"),
		batched:    reg.Counter("janus_serve_batched_requests_total", helpBatched),

		bucketPadded: reg.Counter("janus_bucket_padded_batches_total", helpBucketPadded),
		bucketExact:  reg.Counter("janus_bucket_exact_batches_total", helpBucketExact),
		bucketRows:   reg.Counter("janus_bucket_pad_rows_total", helpBucketRows),
	}
}

// flushes sums both flush-reason series (the Stats Batches field).
func (m *metrics) flushes() int64 {
	return m.flushFull.Value() + m.flushTimer.Value()
}
