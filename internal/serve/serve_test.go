package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/minipy"
	"repro/internal/tensor"
)

// modelProgram is the serving fixture: a batch-parallel inference function
// over a shared trainable parameter, plus a training-step entry point.
const modelProgram = `
def predict(x):
    w = variable("w", [2, 3])
    return matmul(x, w)

def loss_fn(x, y):
    w = variable("w", [2, 3])
    return mse(matmul(x, w), y)

def train_step(x, y):
    return optimize(lambda: loss_fn(x, y))
`

func janusConfig(profileIters int) core.Config {
	cfg := core.DefaultJanusConfig()
	cfg.ProfileIters = profileIters
	cfg.Seed = 42
	cfg.PyOverheadNs = -1 // don't simulate Python dispatch cost in tests
	return cfg
}

func newTestPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	p := NewPool(cfg)
	if _, err := p.Load(modelProgram); err != nil {
		t.Fatalf("load: %v", err)
	}
	return p
}

// warm drives enough requests through fn to get past profiling and leave a
// compiled graph in the cache.
func warm(t *testing.T, p *Pool, fn string, x *tensor.Tensor, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := p.Infer(fn, x); err != nil {
			t.Fatalf("warm %s: %v", fn, err)
		}
	}
}

func input(i int) *tensor.Tensor {
	return tensor.New([]int{1, 2}, []float64{float64(i % 7), float64(i%5) - 2})
}

func TestConcurrentInferMatchesSequential(t *testing.T) {
	p := newTestPool(t, Config{Workers: 4, MaxBatch: 8, MaxLatency: time.Millisecond,
		Engine: janusConfig(1)})
	warm(t, p, "predict", input(0), 3)

	w, ok := p.Store().Get("w")
	if !ok {
		t.Fatal("variable w never created")
	}
	expected := func(i int) *tensor.Tensor { return tensor.MatMul(input(i), w) }

	const clients, perClient = 16, 25
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess := p.NewSession()
			for r := 0; r < perClient; r++ {
				i := c*perClient + r
				got, err := sess.Infer("predict", input(i))
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: %v", c, r, err)
					return
				}
				if !tensor.AllClose(got, expected(i), 1e-9) {
					errs <- fmt.Errorf("client %d req %d: got %v want %v", c, r, got, expected(i))
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := p.Stats()
	if st.Requests < clients*perClient {
		t.Fatalf("requests %d, want >= %d", st.Requests, clients*perClient)
	}
	if st.GraphSteps == 0 {
		t.Fatalf("no graph execution happened: %+v", st)
	}
}

func TestBatchedEqualsUnbatched(t *testing.T) {
	p := newTestPool(t, Config{Workers: 2, MaxBatch: 8, MaxLatency: 2 * time.Millisecond,
		Engine: janusConfig(1)})
	warm(t, p, "predict", input(0), 3)

	// Unbatched reference: direct Call bypasses the batcher entirely.
	const n = 24
	want := make([]*tensor.Tensor, n)
	for i := range want {
		out, err := p.Call("predict", []minipy.Value{minipy.NewTensor(input(i))})
		if err != nil {
			t.Fatalf("unbatched call %d: %v", i, err)
		}
		want[i] = out.(*minipy.TensorVal).T()
	}

	// Batched: all n at once through the batcher.
	got := make([]*tensor.Tensor, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = p.Infer("predict", input(i))
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("batched infer %d: %v", i, errs[i])
		}
		if !tensor.AllClose(got[i], want[i], 1e-9) {
			t.Fatalf("batched result %d diverges: got %v want %v", i, got[i], want[i])
		}
	}
	if st := p.Stats(); st.Batches == 0 || st.BatchedRequests < n {
		t.Fatalf("batcher never coalesced: %+v", st)
	}
}

func TestBatcherFlushOnFull(t *testing.T) {
	// MaxLatency is far beyond the test deadline: completion proves the
	// size trigger fired.
	p := newTestPool(t, Config{Workers: 2, MaxBatch: 4, MaxLatency: 5 * time.Minute,
		Engine: janusConfig(1)})
	before := p.Stats()

	const n = 4
	results := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			_, err := p.Infer("predict", input(i))
			results <- err
		}(i)
	}
	deadline := time.After(30 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case err := <-results:
			if err != nil {
				t.Fatalf("infer: %v", err)
			}
		case <-deadline:
			t.Fatal("batch never flushed on reaching MaxBatch")
		}
	}
	after := p.Stats()
	if got := after.Batches - before.Batches; got != 1 {
		t.Fatalf("flush-on-full ran %d batches, want 1", got)
	}
	if got := after.BatchedRequests - before.BatchedRequests; got != n {
		t.Fatalf("batched %d requests, want %d", got, n)
	}
}

func TestBatcherFlushOnTimeout(t *testing.T) {
	// MaxBatch is unreachable: completion proves the latency trigger fired.
	p := newTestPool(t, Config{Workers: 2, MaxBatch: 1000, MaxLatency: 20 * time.Millisecond,
		Engine: janusConfig(1)})
	before := p.Stats()
	start := time.Now()
	if _, err := p.Infer("predict", input(1)); err != nil {
		t.Fatalf("infer: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("lone request returned after %v, before the %v batch window closed", elapsed, 20*time.Millisecond)
	}
	after := p.Stats()
	if got := after.Batches - before.Batches; got != 1 {
		t.Fatalf("flush-on-timeout ran %d batches, want 1", got)
	}
}

func TestCrossSessionGraphCacheHit(t *testing.T) {
	p := newTestPool(t, Config{Workers: 2, MaxBatch: 1, MaxLatency: time.Millisecond,
		Engine: janusConfig(1)})
	a, b := p.NewSession(), p.NewSession()

	// Session A: one profiling run, then the conversion.
	for i := 0; i < 3; i++ {
		if _, err := a.Infer("predict", input(i)); err != nil {
			t.Fatalf("session a: %v", err)
		}
	}
	st := p.Stats()
	if st.Conversions != 1 {
		t.Fatalf("session a conversions = %d, want 1", st.Conversions)
	}
	hitsAfterA := st.CacheHits

	// Session B, same signature: must hit A's graph, never reconvert.
	if _, err := b.Infer("predict", input(9)); err != nil {
		t.Fatalf("session b: %v", err)
	}
	st = p.Stats()
	if st.Conversions != 1 {
		t.Fatalf("session b triggered a reconversion: %d conversions", st.Conversions)
	}
	if st.CacheHits <= hitsAfterA {
		t.Fatalf("session b did not hit the shared cache: hits %d -> %d", hitsAfterA, st.CacheHits)
	}
	if st.CachedGraphs == 0 || st.CachedFuncs == 0 {
		t.Fatalf("cache reports no entries: %+v", st)
	}
}

func TestTrainingThroughPoolConverges(t *testing.T) {
	p := newTestPool(t, Config{Workers: 2, MaxBatch: 4, MaxLatency: time.Millisecond,
		Engine: janusConfig(2)})
	x := minipy.NewTensor(tensor.New([]int{4, 2}, []float64{0, 0, 1, 0, 0, 1, 1, 1}))
	// Target: y = x @ [[1,2,3],[4,5,6]].
	wTrue := tensor.New([]int{2, 3}, []float64{1, 2, 3, 4, 5, 6})
	y := minipy.NewTensor(tensor.MatMul(x.T(), wTrue))

	var lastLoss float64
	sess := p.NewSession()
	for i := 0; i < 300; i++ {
		out, err := sess.Call("train_step", []minipy.Value{x, y})
		if err != nil {
			t.Fatalf("train_step %d: %v", i, err)
		}
		lastLoss = out.(*minipy.TensorVal).T().Item()
	}
	if lastLoss > 0.01 {
		t.Fatalf("training through the pool did not converge: loss %v", lastLoss)
	}
	st := p.Stats()
	if st.GraphSteps == 0 {
		t.Fatalf("training never ran on the graph executor: %+v", st)
	}
}

// TestBatcherTimeoutFlushStress hammers the timer-path flush: many
// concurrent waves of requests against an unreachable MaxBatch, so every
// batch flushes on max-latency from the timer goroutine. Run under -race in
// CI; correctness of every scattered row is checked.
func TestBatcherTimeoutFlushStress(t *testing.T) {
	p := newTestPool(t, Config{Workers: 4, MaxBatch: 1 << 20, MaxLatency: time.Millisecond,
		Engine: janusConfig(1)})
	warm(t, p, "predict", input(0), 3)
	w, _ := p.Store().Get("w")

	const goroutines, waves = 12, 6
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < waves; r++ {
				i := g*waves + r
				got, err := p.Infer("predict", input(i))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d wave %d: %v", g, r, err)
					return
				}
				if want := tensor.MatMul(input(i), w); !tensor.AllClose(got, want, 1e-9) {
					errs <- fmt.Errorf("goroutine %d wave %d: got %v want %v", g, r, got, want)
					return
				}
				// Jitter so waves straddle the flush window boundary.
				time.Sleep(time.Duration(i%3) * 300 * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := p.Stats(); st.Batches == 0 {
		t.Fatalf("timer path never flushed: %+v", st)
	}
}

// TestMalformedCallReturnsError drives a malformed feed through the pool: a
// kernel panic deep in the executor must come back as a request error, and
// the pool must keep serving afterwards.
func TestMalformedCallReturnsError(t *testing.T) {
	p := newTestPool(t, Config{Workers: 2, MaxBatch: 1, MaxLatency: time.Millisecond,
		Engine: janusConfig(1)})
	warm(t, p, "predict", input(0), 3)

	// predict expects [n, 2] against w [2, 3]; a [1, 5] input breaks matmul.
	bad := tensor.New([]int{1, 5}, []float64{1, 2, 3, 4, 5})
	if _, err := p.Call("predict", []minipy.Value{minipy.NewTensor(bad)}); err == nil {
		t.Fatal("malformed call succeeded")
	}
	// The offending request must not have poisoned the pool.
	if _, err := p.Infer("predict", input(1)); err != nil {
		t.Fatalf("pool broken after malformed call: %v", err)
	}
}

// TestBackpressureRejectsWhenQueueFull saturates a 1-worker pool through a
// long-running call and checks that excess arrivals fail fast with
// ErrOverloaded instead of queueing without bound.
func TestBackpressureRejectsWhenQueueFull(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1, MaxQueue: 1, AcquireTimeout: 5 * time.Second,
		Engine: janusConfig(1)})

	block := make(chan struct{})
	// Occupy the lone worker directly so the pool has zero idle engines.
	e, err := p.acquire(context.Background())
	if err != nil {
		t.Fatalf("prime acquire: %v", err)
	}
	go func() {
		<-block
		p.release(e)
	}()

	// One waiter is admitted (MaxQueue=1)...
	admitted := make(chan error, 1)
	go func() {
		_, err := p.Call("predict", []minipy.Value{minipy.NewTensor(input(0))})
		admitted <- err
	}()
	// Give the admitted waiter time to enter the queue.
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Queued == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// ...and the next arrival is rejected immediately.
	start := time.Now()
	_, err = p.Call("predict", []minipy.Value{minipy.NewTensor(input(1))})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow arrival: got %v, want ErrOverloaded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("rejection took %v, want fail-fast", time.Since(start))
	}
	close(block)
	if err := <-admitted; err != nil {
		t.Fatalf("admitted waiter failed: %v", err)
	}
	if st := p.Stats(); st.Rejected == 0 {
		t.Fatalf("rejection not counted: %+v", st)
	}
}

// TestBackpressureTimesOutWaiters checks the 503 path: a queued request
// gives up after AcquireTimeout.
func TestBackpressureTimesOutWaiters(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1, MaxQueue: 4, AcquireTimeout: 30 * time.Millisecond,
		Engine: janusConfig(1)})
	e, err := p.acquire(context.Background())
	if err != nil {
		t.Fatalf("prime acquire: %v", err)
	}
	defer p.release(e)

	start := time.Now()
	_, err = p.Call("predict", []minipy.Value{minipy.NewTensor(input(0))})
	if !errors.Is(err, ErrAcquireTimeout) {
		t.Fatalf("queued call: got %v, want ErrAcquireTimeout", err)
	}
	if el := time.Since(start); el < 30*time.Millisecond || el > 5*time.Second {
		t.Fatalf("timeout fired after %v, want ~30ms", el)
	}
	if st := p.Stats(); st.TimedOut == 0 {
		t.Fatalf("timeout not counted: %+v", st)
	}
}

// TestSessionStateIsSessionAffine is the /v1/run fix: globals bound by a
// session's scripts must follow the session across workers, and must be
// invisible to other sessions.
func TestSessionStateIsSessionAffine(t *testing.T) {
	// Two workers, so consecutive requests routinely land on different
	// engines; the counter must survive regardless.
	p := newTestPool(t, Config{Workers: 2, Engine: janusConfig(1)})
	a, b := p.NewSession(), p.NewSession()

	if _, err := a.Exec("counter = 0"); err != nil {
		t.Fatalf("init: %v", err)
	}
	for i := 1; i <= 6; i++ {
		out, err := a.Exec("counter = counter + 1\nprint(counter)")
		if err != nil {
			t.Fatalf("increment %d: %v", i, err)
		}
		if want := fmt.Sprintf("%d\n", i); out != want {
			t.Fatalf("increment %d printed %q, want %q", i, out, want)
		}
	}
	// Session B must not see A's counter.
	if _, err := b.Exec("print(counter)"); err == nil {
		t.Fatal("session B sees session A's globals")
	}
	// Session-defined functions are callable via Call and close over
	// session state.
	if _, err := a.Exec("def bump(d):\n    global counter\n    counter = counter + d\n    return counter"); err != nil {
		t.Fatalf("def: %v", err)
	}
	funcsBefore := p.Cache().Funcs()
	for i := 0; i < 4; i++ {
		out, err := a.Call("bump", []minipy.Value{minipy.IntVal(10)})
		if err != nil {
			t.Fatalf("bump %d: %v", i, err)
		}
		if got := int(out.(minipy.IntVal)); got != 6+10*(i+1) {
			t.Fatalf("bump %d returned %d, want %d", i, got, 6+10*(i+1))
		}
	}
	// Session-defined functions run on the interpreter and must not grow
	// the shared graph cache's per-function bookkeeping.
	if got := p.Cache().Funcs(); got != funcsBefore {
		t.Fatalf("session function leaked into the shared cache: funcs %d -> %d", funcsBefore, got)
	}
	// Loaded module functions still resolve through the session.
	if _, err := a.Call("predict", []minipy.Value{minipy.NewTensor(input(0))}); err != nil {
		t.Fatalf("module function through session: %v", err)
	}
}

// TestSessionlessRunIsEphemeralAndParallel pins the sessionless /v1/run
// semantics: scripts run in a throwaway module scope (no state leaks onto
// workers or across requests) and requests do not serialize on any shared
// session.
func TestSessionlessRunIsEphemeralAndParallel(t *testing.T) {
	srv := NewServer(Config{Workers: 4, Engine: janusConfig(1)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	postJSON(t, ts.Client(), ts.URL+"/v1/load", map[string]any{"program": modelProgram})

	// A sessionless script's bindings vanish with the request...
	postJSON(t, ts.Client(), ts.URL+"/v1/run", map[string]any{"program": "leak = 41"})
	resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json",
		bytes.NewReader([]byte(`{"program": "print(leak)"}`)))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("sessionless state leaked across requests")
	}
	// ...while reads still see the loaded module definitions, concurrently.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := postJSON(t, ts.Client(), ts.URL+"/v1/run",
				map[string]any{"program": "print(predict(constant([[1.0, 2.0]])))"})
			if out["output"] == "" {
				errs <- fmt.Errorf("no output")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCacheEndpointAndEviction drives distinct graph signatures through a
// capacity-bounded pool and checks both the LRU eviction and the /v1/cache
// inspection endpoint.
func TestCacheEndpointAndEviction(t *testing.T) {
	const capacity = 3
	srv := NewServer(Config{Workers: 2, MaxBatch: 1, MaxLatency: time.Millisecond,
		CacheCapacity: capacity, Engine: janusConfig(1)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	postJSON(t, ts.Client(), ts.URL+"/v1/load", map[string]any{"program": modelProgram})

	// Each distinct batch size specializes to its own compiled graph.
	for rows := 1; rows <= capacity+3; rows++ {
		x := make([][]float64, rows)
		for r := range x {
			x[r] = []float64{float64(r), 1}
		}
		for i := 0; i < 3; i++ { // past profiling, then compile
			postJSON(t, ts.Client(), ts.URL+"/v1/infer", map[string]any{"fn": "predict", "x": x})
		}
	}

	// Capacity enforcement runs on a background goroutine; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Pool().Cache().Entries() > capacity && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.Pool().Cache().Entries(); got > capacity {
		t.Fatalf("cache holds %d entries, capacity %d", got, capacity)
	}
	if srv.Pool().Cache().Evictions() == 0 {
		t.Fatal("no evictions recorded despite overflow")
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/cache")
	if err != nil {
		t.Fatalf("GET /v1/cache: %v", err)
	}
	defer resp.Body.Close()
	var info struct {
		Capacity  int   `json:"capacity"`
		Entries   int   `json:"entries"`
		Evictions int64 `json:"evictions"`
		Hits      int64 `json:"hits"`
		EntryList []struct {
			Signature []string `json:"signature"`
			Hits      int64    `json:"hits"`
		} `json:"entry_list"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decode /v1/cache: %v", err)
	}
	if info.Capacity != capacity || info.Evictions == 0 || len(info.EntryList) == 0 {
		t.Fatalf("cache endpoint reports %+v", info)
	}
	if info.Entries != len(info.EntryList) {
		t.Fatalf("entries %d != listed %d", info.Entries, len(info.EntryList))
	}
}

// --- HTTP front end -------------------------------------------------------------

func postJSON(t *testing.T, client *http.Client, url string, body any) map[string]any {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("post %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s -> %d: %v", url, resp.StatusCode, out["error"])
	}
	return out
}

func TestHTTPServesConcurrentClients(t *testing.T) {
	srv := NewServer(Config{Workers: 4, MaxBatch: 8, MaxLatency: time.Millisecond,
		Engine: janusConfig(1)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postJSON(t, ts.Client(), ts.URL+"/v1/load", map[string]any{"program": modelProgram})

	// Warm sequentially so w exists and the graph is compiled.
	for i := 0; i < 3; i++ {
		postJSON(t, ts.Client(), ts.URL+"/v1/infer",
			map[string]any{"fn": "predict", "x": [][]float64{{1, 2}}})
	}
	w, ok := srv.Pool().Store().Get("w")
	if !ok {
		t.Fatal("w missing after warmup")
	}

	// The acceptance bar: >= 8 concurrent clients against one loaded model,
	// each with its own session, all receiving correct per-request rows.
	const clients, perClient = 10, 12
	const maxConcurrentRows = 8 // the pool's MaxBatch: bound on distinct batched shapes
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp := postJSON(t, ts.Client(), ts.URL+"/v1/sessions", map[string]any{})
			sid, _ := resp["session"].(string)
			if sid == "" {
				errs <- fmt.Errorf("client %d: no session id", c)
				return
			}
			for r := 0; r < perClient; r++ {
				i := c*perClient + r
				in := input(i)
				resp := postJSON(t, ts.Client(), ts.URL+"/v1/infer",
					map[string]any{"session": sid, "fn": "predict",
						"x": [][]float64{{in.At(0, 0), in.At(0, 1)}}})
				got, err := jsonRows(resp["y"])
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: %v", c, r, err)
					return
				}
				want := tensor.MatMul(in, w)
				if !tensor.AllClose(got, want, 1e-9) {
					errs <- fmt.Errorf("client %d req %d: got %v want %v", c, r, got, want)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Stats endpoint must reflect the shared cache amortizing conversions.
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	if st.CacheHits == 0 {
		t.Fatalf("no cross-client cache hits: %+v", st)
	}
	// Shape specialization compiles one graph per distinct batch size, so a
	// handful of conversions serve the whole fleet of requests.
	if st.Conversions > 1+maxConcurrentRows {
		t.Fatalf("conversions not amortized across clients: %d for %d requests", st.Conversions, st.Requests)
	}
	if st.Sessions < clients {
		t.Fatalf("sessions %d, want >= %d", st.Sessions, clients)
	}
}

// jsonRows decodes a nested-array tensor response back into a tensor.
func jsonRows(v any) (*tensor.Tensor, error) {
	rows, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("y is %T", v)
	}
	out := make([][]float64, len(rows))
	for i, r := range rows {
		cols, ok := r.([]any)
		if !ok {
			return nil, fmt.Errorf("row %d is %T", i, r)
		}
		out[i] = make([]float64, len(cols))
		for j, c := range cols {
			f, ok := c.(float64)
			if !ok {
				return nil, fmt.Errorf("cell %d,%d is %T", i, j, c)
			}
			out[i][j] = f
		}
	}
	return tensor.FromRows(out), nil
}

func TestHTTPRunAndCall(t *testing.T) {
	srv := NewServer(Config{Workers: 2, Engine: janusConfig(1)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postJSON(t, ts.Client(), ts.URL+"/v1/load", map[string]any{"program": modelProgram})
	out := postJSON(t, ts.Client(), ts.URL+"/v1/run",
		map[string]any{"program": "print(1 + 2)"})
	if got := out["output"]; got != "3\n" {
		t.Fatalf("run output %q, want %q", got, "3\n")
	}
	res := postJSON(t, ts.Client(), ts.URL+"/v1/call",
		map[string]any{"fn": "predict", "x": nil, "args": []any{[][]float64{{0, 0}}}})
	if _, ok := res["result"].([]any); !ok {
		t.Fatalf("call result %T, want tensor rows", res["result"])
	}
}

// TestAcquireHonorsContext: a canceled context fails the worker wait with
// core.ErrCanceled instead of parking until AcquireTimeout.
func TestAcquireHonorsContext(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1, MaxQueue: 4, AcquireTimeout: 10 * time.Second,
		Engine: janusConfig(1)})
	e, err := p.acquire(context.Background())
	if err != nil {
		t.Fatalf("prime acquire: %v", err)
	}
	defer p.release(e)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err = p.CallCtx(ctx, "predict", []minipy.Value{minipy.NewTensor(input(0))})
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("canceled acquire: got %v, want core.ErrCanceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("canceled acquire took %v, want immediate", time.Since(start))
	}
}

// TestInferScalarRejectedUpFront: a feed without a leading batch dimension
// is a clear client error, not a recovered kernel panic.
func TestInferScalarRejectedUpFront(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1, Engine: janusConfig(1)})
	_, err := p.Infer("predict", tensor.Scalar(3))
	if err == nil || !strings.Contains(err.Error(), "leading batch dimension") {
		t.Fatalf("scalar infer: got %v, want a clear batch-dimension error", err)
	}
	_, err = p.CallNamed(context.Background(), "predict", map[string]*tensor.Tensor{"x": tensor.Scalar(3)})
	if err == nil || !strings.Contains(err.Error(), "leading batch dimension") {
		t.Fatalf("scalar named feed: got %v, want a clear batch-dimension error", err)
	}
}

// TestCallNamedUnknownFeedName: binding failures name the real signature.
func TestCallNamedUnknownFeedName(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1, Engine: janusConfig(1)})
	_, err := p.CallNamed(context.Background(), "predict",
		map[string]*tensor.Tensor{"bogus": input(0)})
	if err == nil || !strings.Contains(err.Error(), `no parameter "bogus"`) {
		t.Fatalf("unknown feed name: got %v, want a clear binding error", err)
	}
}

// TestStatusRoundTripServe: sentinel identities survive the HTTP status
// mapping in both directions.
func TestStatusRoundTripServe(t *testing.T) {
	for _, e := range []error{ErrOverloaded, ErrAcquireTimeout, core.ErrUnknownFunction, core.ErrCanceled} {
		status := StatusForError(fmt.Errorf("wrapped: %w", e))
		if back := ErrorForStatus(status, "msg"); !errors.Is(back, e) {
			t.Fatalf("round trip lost %v via status %d (got %v)", e, status, back)
		}
	}
	if StatusForError(errors.New("other")) != http.StatusUnprocessableEntity {
		t.Fatal("default status changed")
	}
}
