package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// postCall sends one /v1/call for fn with a [[1,2]] arg, optionally
// carrying a Janus-Trace header, and fails the test on any non-200.
func postCall(t *testing.T, ts *httptest.Server, fn, traceHeader string) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"fn": fn, "args": []any{[][]float64{{1, 2}}},
	})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/call", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceHeader != "" {
		req.Header.Set(obs.TraceHeader, traceHeader)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/call -> %d", resp.StatusCode)
	}
}

// TestHTTPTraceTreeAndHeaderAdoption drives real requests through the
// serving front end and checks GET /v1/trace renders them as span trees:
// a root "request" span with the engine's phase spans parented beneath
// it, and an inbound Janus-Trace header adopting the caller's trace ID.
func TestHTTPTraceTreeAndHeaderAdoption(t *testing.T) {
	p := newTestPool(t, Config{Workers: 2, MaxBatch: 1, MaxLatency: time.Millisecond,
		Engine: janusConfig(1)})
	srv := NewServerWith(p)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// First call profiles + compiles, a later call replays; the last call
	// carries a propagated trace header from a fictitious upstream.
	for i := 0; i < 3; i++ {
		postCall(t, ts, "predict", "")
	}
	postCall(t, ts, "predict", "upstream-7;3")

	resp, err := ts.Client().Get(ts.URL + "/v1/trace?n=8")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Traces []obs.TraceSnapshot `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 4 {
		t.Fatalf("traces = %d, want 4", len(out.Traces))
	}
	// Newest first: the header-carrying request adopted the upstream ID.
	if out.Traces[0].ID != "upstream-7" {
		t.Fatalf("propagated trace ID = %q, want \"upstream-7\"", out.Traces[0].ID)
	}
	for _, tr := range out.Traces {
		if tr.Annotations["fn"] != "predict" {
			t.Errorf("trace %s fn = %q", tr.ID, tr.Annotations["fn"])
		}
		var root *obs.SpanSnapshot
		for i := range tr.Spans {
			if tr.Spans[i].Name == "request" {
				if root != nil {
					t.Fatalf("trace %s has two request spans", tr.ID)
				}
				root = &tr.Spans[i]
			}
		}
		if root == nil || root.Parent != 0 {
			t.Fatalf("trace %s has no root request span: %+v", tr.ID, tr.Spans)
		}
		// Every other span hangs off the tree (parent present), and at
		// least one engine phase span is a direct child of the root.
		ids := map[obs.SpanID]bool{}
		for _, sp := range tr.Spans {
			ids[sp.ID] = true
		}
		phaseUnderRoot := false
		for _, sp := range tr.Spans {
			if sp.ID == root.ID {
				continue
			}
			if !ids[sp.Parent] {
				t.Errorf("trace %s: span %q parent %d not in trace", tr.ID, sp.Name, sp.Parent)
			}
			if sp.Parent == root.ID {
				phaseUnderRoot = true
			}
		}
		if !phaseUnderRoot {
			t.Errorf("trace %s: no engine span under the request root: %+v", tr.ID, tr.Spans)
		}
	}
}

// TestHTTPProfileAndExplainEndpoints covers the two new observability
// endpoints over live HTTP: profile payloads carry per-node op data once
// a graph is compiled, explain payloads describe the cache slots, and
// both 400 without ?fn= and 404 on unknown functions.
func TestHTTPProfileAndExplainEndpoints(t *testing.T) {
	p := newTestPool(t, Config{Workers: 2, MaxBatch: 1, MaxLatency: time.Millisecond,
		Engine: janusConfig(1)})
	srv := NewServerWith(p)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 4; i++ {
		postCall(t, ts, "predict", "")
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/profile?fn=predict")
	if err != nil {
		t.Fatal(err)
	}
	var prof core.FuncProfile
	if err := json.NewDecoder(resp.Body).Decode(&prof); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/profile -> %d", resp.StatusCode)
	}
	if prof.Function != "predict" || len(prof.Graphs) == 0 {
		t.Fatalf("profile = %+v, want compiled graphs", prof)
	}
	g := prof.Graphs[0]
	if g.Profile.Runs == 0 || len(g.Profile.Nodes) == 0 {
		t.Fatalf("empty graph profile: %+v", g)
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/explain?fn=predict")
	if err != nil {
		t.Fatal(err)
	}
	var rep core.ExplainReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/explain -> %d", resp.StatusCode)
	}
	if rep.Function != "predict" || len(rep.States) == 0 {
		t.Fatalf("explain = %+v, want cache states", rep)
	}

	for _, path := range []string{"/v1/profile", "/v1/explain"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s without fn -> %d, want 400", path, resp.StatusCode)
		}
		resp, err = ts.Client().Get(ts.URL + path + "?fn=nope")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s?fn=nope -> %d, want 404", path, resp.StatusCode)
		}
	}
}
