package serve

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/minipy"
	"repro/internal/tensor"
)

// batcher coalesces concurrent calls with the same signature into one
// batched execution. The signature is the full named-feed set — function
// name plus every feed's name and per-item shape (everything after the
// leading batch axis) — so multi-argument functions batch exactly like the
// original single-tensor Infer path. A group flushes when it reaches
// maxBatch requests or when the oldest request has waited maxWait —
// whichever comes first. Results are split back row-for-row per output, so
// batched execution returns exactly what per-request execution would (the
// model function must be batch-dim parallel, as DL inference functions are).
type batcher struct {
	pool     *Pool
	maxBatch int
	maxWait  time.Duration

	mu     sync.Mutex
	groups map[string]*batchGroup
}

// positionalFeed is the reserved feed name for the legacy Infer path, which
// passes one tensor to the function's first parameter without knowing its
// name. Positional and named requests never share a batch group (their keys
// differ), so mixing the two styles stays correct — just unbatched across
// styles.
const positionalFeed = "#0"

// feed is one named input tensor. Shared feeds are weight-like inputs
// (lookup tables, projection matrices passed as arguments) that every
// request in a batch reads whole: they are never stacked along the batch
// axis, never padded, and never force a batch-dim split — requests batch
// together as long as their shared feeds hold identical bytes (enforced by
// a content fingerprint in the group key).
type feed struct {
	name   string
	t      *tensor.Tensor
	shared bool
}

type inferResult struct {
	outs []*tensor.Tensor
	err  error
}

type inferReq struct {
	ctx   context.Context
	feeds []feed
	rows  int
	out   chan inferResult
	// enq stamps submission time so the flush can record how long the
	// request sat in its batch group (janus_serve_batch_wait_seconds).
	enq time.Time
}

type batchGroup struct {
	fn    string
	reqs  []*inferReq
	timer *time.Timer
}

func newBatcher(p *Pool, maxBatch int, maxWait time.Duration) *batcher {
	return &batcher{pool: p, maxBatch: maxBatch, maxWait: maxWait,
		groups: make(map[string]*batchGroup)}
}

// groupKey buckets requests that can share one execution: same function,
// same feed names, same per-item shapes (everything after the batch axis).
// Function and feed names are length-prefixed so client-chosen names
// containing the separator characters cannot forge a collision between
// different signatures (flush assumes every request in a group has the
// same feed list).
func groupKey(fn string, feeds []feed) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d:%s", len(fn), fn)
	for _, f := range feeds {
		if f.shared {
			// Shared feeds batch across requests only when identical: the
			// key carries the full shape plus a content fingerprint, so two
			// requests passing different weights land in different groups
			// (and each group's flush can pass the tensor through whole).
			fmt.Fprintf(&sb, "|s%d:%s=", len(f.name), f.name)
			for _, d := range f.t.Shape() {
				fmt.Fprintf(&sb, "%d,", d)
			}
			fmt.Fprintf(&sb, "#%016x", fingerprint(f.t))
			continue
		}
		fmt.Fprintf(&sb, "|b%d:%s=", len(f.name), f.name)
		for _, d := range f.t.Shape()[1:] {
			fmt.Fprintf(&sb, "%d,", d)
		}
	}
	return sb.String()
}

// fingerprint hashes a tensor's exact bit content (FNV-1a over the
// little-endian IEEE-754 bit patterns).
func fingerprint(t *tensor.Tensor) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, f := range t.Data() {
		bits := math.Float64bits(f)
		for i := 0; i < 64; i += 8 {
			h ^= (bits >> i) & 0xff
			h *= prime64
		}
	}
	return h
}

// validateFeeds checks the batching contract up front, so shape mistakes
// fail with a clear client error instead of a recovered kernel panic deep in
// a batched execution: every feed must carry a leading batch dimension
// (rank >= 1), and all feeds of one request must agree on the batch size.
func validateFeeds(fn string, feeds []feed) (rows int, err error) {
	if len(feeds) == 0 {
		return 0, fmt.Errorf("serve: %s: at least one feed is required", fn)
	}
	rows = -1
	var first string
	for _, f := range feeds {
		if f.t == nil {
			return 0, fmt.Errorf("serve: %s: feed %q is nil", fn, feedName(f.name))
		}
		if f.shared {
			// Shared (broadcast) feeds carry no batch dimension contract.
			continue
		}
		if f.t.Rank() < 1 {
			return 0, fmt.Errorf("serve: %s: feed %q is a scalar — every batched feed needs a leading batch dimension (shape [1, ...] for a single example; mark weight-like inputs shared)", fn, feedName(f.name))
		}
		if rows < 0 {
			rows, first = f.t.Dim(0), f.name
		} else if f.t.Dim(0) != rows {
			return 0, fmt.Errorf("serve: %s: feeds disagree on the batch dimension (%q has %d rows, %q has %d)",
				fn, feedName(first), rows, feedName(f.name), f.t.Dim(0))
		}
	}
	if rows < 0 {
		return 0, fmt.Errorf("serve: %s: every feed is marked shared — at least one batched feed is required (use Call for unbatched invocation)", fn)
	}
	return rows, nil
}

// feedName maps the internal positional marker to a user-facing name.
func feedName(name string) string {
	if name == positionalFeed {
		return "input"
	}
	return name
}

// submit enqueues one request and blocks until its batch executes or ctx is
// done. Feeds must already be in a deterministic order (sorted by name; the
// pool's entry points do this). If ctx expires while the request is queued
// or executing, submit returns ErrCanceled immediately; the batch may still
// execute and the abandoned result is discarded.
func (b *batcher) submit(ctx context.Context, fn string, feeds []feed) ([]*tensor.Tensor, error) {
	rows, err := validateFeeds(fn, feeds)
	if err != nil {
		return nil, err
	}
	// Admission control: every pending request holds one wait-queue slot
	// from submission until its result arrives, so batched traffic is
	// covered by the same MaxQueue bound as everything else — no unbounded
	// pile-up of goroutines parked in batch groups.
	release, err := b.pool.admitQueued()
	if err != nil {
		return nil, err
	}
	defer release()
	req := &inferReq{ctx: ctx, feeds: feeds, rows: rows, out: make(chan inferResult, 1), enq: time.Now()}
	key := groupKey(fn, feeds)
	b.mu.Lock()
	g := b.groups[key]
	if g == nil {
		g = &batchGroup{fn: fn}
		b.groups[key] = g
		// Flush-on-timeout: the timer owns the group unless flush-on-full
		// claims it first (the map entry is the claim token).
		g.timer = time.AfterFunc(b.maxWait, func() { b.flushKey(key, g) })
	}
	g.reqs = append(g.reqs, req)
	if len(g.reqs) >= b.maxBatch {
		delete(b.groups, key)
		g.timer.Stop()
		b.mu.Unlock()
		b.pool.metrics.flushFull.Inc()
		b.flush(g)
	} else {
		b.mu.Unlock()
	}
	select {
	case res := <-req.out:
		return res.outs, res.err
	case <-ctx.Done():
		return nil, core.CanceledErr(ctx)
	}
}

// flushKey is the timer path: it claims the group if flush-on-full hasn't.
func (b *batcher) flushKey(key string, g *batchGroup) {
	b.mu.Lock()
	if b.groups[key] != g {
		b.mu.Unlock()
		return
	}
	delete(b.groups, key)
	b.mu.Unlock()
	b.pool.metrics.flushTimer.Inc()
	b.flush(g)
}

// flush stacks the group's feeds along the batch axis, executes once, and
// scatters per-request rows of every output back.
func (b *batcher) flush(g *batchGroup) {
	m := b.pool.metrics
	m.batchSize.Observe(float64(len(g.reqs)))
	for _, r := range g.reqs {
		m.batchWait.Since(r.enq)
	}
	fail := func(err error) {
		for _, r := range g.reqs {
			r.out <- inferResult{err: err}
		}
	}
	rows := 0
	for _, r := range g.reqs {
		rows += r.rows
		// The group key guarantees a shared feed-name list; verify anyway so
		// a future keying bug degrades to failed requests, not a panic in
		// the timer goroutine (which would kill the process).
		if len(r.feeds) != len(g.reqs[0].feeds) {
			fail(fmt.Errorf("serve: internal error: mixed feed signatures in one batch group for %s", g.fn))
			return
		}
	}
	// Concat each batched feed across requests; shared feeds pass through
	// whole (the group key guarantees every request brought identical bytes).
	batched := make([]feed, len(g.reqs[0].feeds))
	for j := range batched {
		proto := g.reqs[0].feeds[j]
		if proto.shared {
			batched[j] = proto
			continue
		}
		parts := make([]*tensor.Tensor, len(g.reqs))
		for i, r := range g.reqs {
			parts[i] = r.feeds[j].t
		}
		t := parts[0]
		if len(parts) > 1 {
			t = tensor.Concat(0, parts...)
		}
		batched[j] = feed{name: proto.name, t: t}
	}
	// Shape bucketing: round the execution up to the next power-of-two row
	// count by repeating the last real row, so near-miss batch sizes share
	// one compiled graph instead of converting their own. Synthetic rows
	// are computed and discarded — only real rows scatter back.
	pad := 0
	if b.pool.cfg.BucketBatch {
		if bucket := nextPow2(rows); bucket > rows && bucket <= b.pool.cfg.MaxBucket {
			pad = bucket - rows
			for j := range batched {
				if !batched[j].shared {
					batched[j].t = padRows(batched[j].t, pad)
				}
			}
			m.bucketPadded.Inc()
			m.bucketRows.Add(int64(pad))
		} else {
			m.bucketExact.Inc()
		}
	}
	// A single-request batch can honor its caller's context end to end;
	// a shared batch must not be killed by one member's cancellation.
	callCtx := context.Background()
	if len(g.reqs) == 1 {
		callCtx = g.reqs[0].ctx
	}
	// acquireWait, not acquire: every request in this batch already holds
	// its own admission slot, so the flush must not be rejected by the
	// queue bound — only the worker-wait timeout applies.
	e, err := b.pool.acquireWait()
	if err != nil {
		fail(err)
		return
	}
	out, err := guard(func() (minipy.Value, error) {
		if len(batched) == 1 && batched[0].name == positionalFeed {
			return e.CallCtx(callCtx, g.fn, []minipy.Value{minipy.NewTensor(batched[0].t)})
		}
		feeds := make(map[string]minipy.Value, len(batched))
		for _, f := range batched {
			feeds[f.name] = minipy.NewTensor(f.t)
		}
		return e.CallNamed(callCtx, g.fn, feeds)
	})
	b.pool.release(e)
	m.batched.Add(int64(len(g.reqs)))
	if err != nil {
		fail(fmt.Errorf("%w (calling %s with batched feeds %s)", err, g.fn, describeFeeds(batched)))
		return
	}
	outs, err := minipy.Tensors(out)
	if err != nil {
		fail(fmt.Errorf("serve: %s: %v", g.fn, err))
		return
	}
	if pad > 0 {
		// Drop the synthetic rows. Every output must preserve the (padded)
		// batch dimension: a shared scalar (e.g. a mean loss) would have
		// aggregated over rows that no client sent, so returning it would be
		// silently wrong — reject instead, pointing at the knob.
		for i, t := range outs {
			if t.Rank() < 1 || t.Dim(0) != rows+pad {
				fail(fmt.Errorf("serve: %s output %d has shape %v, which does not preserve the batch dimension — shape bucketing pads the batch with synthetic rows, so %s needs batch-preserving outputs (disable BucketBatch to serve it)",
					g.fn, i, t.Shape(), g.fn))
				return
			}
			outs[i] = tensor.SliceAxis(t, 0, 0, rows)
		}
	}
	if len(g.reqs) == 1 {
		g.reqs[0].out <- inferResult{outs: outs}
		return
	}
	// Per-output scatter rule: outputs that preserve the batch dimension
	// are sliced back row-for-row; rank-0 scalars (a merged train step's
	// loss over the concatenated batch) are shared — every request gets the
	// same value. Anything else is ambiguous and fails the whole group.
	for i, t := range outs {
		if t.Rank() >= 1 && t.Dim(0) != rows {
			fail(fmt.Errorf("serve: %s output %d has shape %v, which neither preserves the batch dimension (%d rows in) nor is a shared scalar",
				g.fn, i, t.Shape(), rows))
			return
		}
	}
	off := 0
	for _, r := range g.reqs {
		slice := make([]*tensor.Tensor, len(outs))
		for i, t := range outs {
			if t.Rank() < 1 {
				slice[i] = t
				continue
			}
			slice[i] = tensor.SliceAxis(t, 0, off, off+r.rows)
		}
		r.out <- inferResult{outs: slice}
		off += r.rows
	}
}

// padRows appends pad copies of t's last row along axis 0. Repeating a real
// row (rather than zero-filling) keeps the synthetic rows inside the data
// distribution, so padded execution can never trip a value-dependent
// assertion (a speculation deopt) that the real rows would not have.
func padRows(t *tensor.Tensor, pad int) *tensor.Tensor {
	last := tensor.SliceAxis(t, 0, t.Dim(0)-1, t.Dim(0))
	parts := make([]*tensor.Tensor, 1, pad+1)
	parts[0] = t
	for i := 0; i < pad; i++ {
		parts = append(parts, last)
	}
	return tensor.Concat(0, parts...)
}

// describeFeeds renders a feed list as name:shape pairs for error messages.
func describeFeeds(feeds []feed) string {
	parts := make([]string, len(feeds))
	for i, f := range feeds {
		parts[i] = fmt.Sprintf("%s:%v", feedName(f.name), f.t.Shape())
	}
	return strings.Join(parts, ", ")
}

// sortedFeeds converts a name->tensor map into the batcher's canonical
// (name-sorted) feed list, marking the names in shared as broadcast feeds.
func sortedFeeds(m map[string]*tensor.Tensor, shared map[string]bool) []feed {
	feeds := make([]feed, 0, len(m))
	for name, t := range m {
		feeds = append(feeds, feed{name: name, t: t, shared: shared[name]})
	}
	sort.Slice(feeds, func(i, j int) bool { return feeds[i].name < feeds[j].name })
	return feeds
}
