package serve

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/minipy"
	"repro/internal/tensor"
)

// batcher coalesces concurrent inference requests for the same function
// signature into one batched execution. A group flushes when it reaches
// maxBatch requests or when the oldest request has waited maxWait —
// whichever comes first. Results are split back row-for-row, so batched
// execution returns exactly what per-request execution would (the model
// function must be batch-dim parallel, as DL inference functions are).
type batcher struct {
	pool     *Pool
	maxBatch int
	maxWait  time.Duration

	mu     sync.Mutex
	groups map[string]*batchGroup

	batches atomic.Int64
	batched atomic.Int64
}

type inferResult struct {
	t   *tensor.Tensor
	err error
}

type inferReq struct {
	item *tensor.Tensor
	out  chan inferResult
}

type batchGroup struct {
	fn    string
	reqs  []*inferReq
	timer *time.Timer
}

func newBatcher(p *Pool, maxBatch int, maxWait time.Duration) *batcher {
	return &batcher{pool: p, maxBatch: maxBatch, maxWait: maxWait,
		groups: make(map[string]*batchGroup)}
}

// groupKey buckets requests that can share one execution: same function and
// same per-item shape (everything after the batch axis).
func groupKey(fn string, shape []int) string {
	var sb strings.Builder
	sb.WriteString(fn)
	sb.WriteByte('|')
	for _, d := range shape[1:] {
		fmt.Fprintf(&sb, "%d,", d)
	}
	return sb.String()
}

func (b *batcher) submit(fn string, x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Rank() < 1 {
		return nil, fmt.Errorf("serve: infer input must have a leading batch dimension, got a scalar")
	}
	// Admission control: every pending inference holds one wait-queue slot
	// from submission until its result arrives, so infer traffic is covered
	// by the same MaxQueue bound as everything else — no unbounded pile-up
	// of goroutines parked in batch groups.
	release, err := b.pool.admitQueued()
	if err != nil {
		return nil, err
	}
	defer release()
	req := &inferReq{item: x, out: make(chan inferResult, 1)}
	key := groupKey(fn, x.Shape())
	b.mu.Lock()
	g := b.groups[key]
	if g == nil {
		g = &batchGroup{fn: fn}
		b.groups[key] = g
		// Flush-on-timeout: the timer owns the group unless flush-on-full
		// claims it first (the map entry is the claim token).
		g.timer = time.AfterFunc(b.maxWait, func() { b.flushKey(key, g) })
	}
	g.reqs = append(g.reqs, req)
	if len(g.reqs) >= b.maxBatch {
		delete(b.groups, key)
		g.timer.Stop()
		b.mu.Unlock()
		b.flush(g)
	} else {
		b.mu.Unlock()
	}
	res := <-req.out
	return res.t, res.err
}

// flushKey is the timer path: it claims the group if flush-on-full hasn't.
func (b *batcher) flushKey(key string, g *batchGroup) {
	b.mu.Lock()
	if b.groups[key] != g {
		b.mu.Unlock()
		return
	}
	delete(b.groups, key)
	b.mu.Unlock()
	b.flush(g)
}

// flush stacks the group's inputs along the batch axis, executes once, and
// scatters per-request rows back.
func (b *batcher) flush(g *batchGroup) {
	fail := func(err error) {
		for _, r := range g.reqs {
			r.out <- inferResult{err: err}
		}
	}
	items := make([]*tensor.Tensor, len(g.reqs))
	rows := 0
	for i, r := range g.reqs {
		items[i] = r.item
		rows += r.item.Dim(0)
	}
	batchedIn := items[0]
	if len(items) > 1 {
		batchedIn = tensor.Concat(0, items...)
	}
	// acquireWait, not acquire: every request in this batch already holds
	// its own admission slot, so the flush must not be rejected by the
	// queue bound — only the worker-wait timeout applies.
	e, err := b.pool.acquireWait()
	if err != nil {
		fail(err)
		return
	}
	out, err := guard(func() (minipy.Value, error) {
		return e.Call(g.fn, []minipy.Value{minipy.NewTensor(batchedIn)})
	})
	b.pool.release(e)
	b.batches.Add(1)
	b.batched.Add(int64(len(g.reqs)))
	if err != nil {
		fail(err)
		return
	}
	tv, ok := out.(*minipy.TensorVal)
	if !ok {
		fail(fmt.Errorf("serve: %s returned %s, want tensor", g.fn, out.TypeName()))
		return
	}
	t := tv.T()
	if len(g.reqs) == 1 {
		g.reqs[0].out <- inferResult{t: t}
		return
	}
	if t.Rank() < 1 || t.Dim(0) != rows {
		fail(fmt.Errorf("serve: %s output shape %v does not preserve the batch dimension (%d rows in)",
			g.fn, t.Shape(), rows))
		return
	}
	off := 0
	for _, r := range g.reqs {
		n := r.item.Dim(0)
		r.out <- inferResult{t: tensor.SliceAxis(t, 0, off, off+n)}
		off += n
	}
}
