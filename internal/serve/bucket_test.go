package serve

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// projectProgram exercises shared (broadcast) feeds: w is a weight-like
// argument the function reads whole, not per-row.
const projectProgram = `
def project(x, w):
    return matmul(x, w)
`

func bitEqual(a, b *tensor.Tensor) bool {
	if len(a.Data()) != len(b.Data()) {
		return false
	}
	for i, v := range a.Data() {
		if v != b.Data()[i] {
			return false
		}
	}
	return true
}

func counterSum(reg *obs.Registry, name string) float64 {
	var sum float64
	for _, sv := range reg.Series(name) {
		sum += sv.Value
	}
	return sum
}

// TestBucketPaddingBitIdentical is the bucketing contract: padded batch
// sizes produce bit-identical real rows vs an unbucketed pool, near-miss
// sizes land on power-of-two buckets (counted in janus_bucket_*), and with
// RelaxBatchDim the bucket sizes share one wildcard graph.
func TestBucketPaddingBitIdentical(t *testing.T) {
	bucketed := newTestPool(t, Config{Workers: 1, MaxBatch: 1, MaxLatency: time.Millisecond,
		BucketBatch: true, MaxBucket: 16, Engine: janusConfig(1)})
	exact := newTestPool(t, Config{Workers: 1, MaxBatch: 1, MaxLatency: time.Millisecond,
		Engine: janusConfig(1)})

	batch := func(rows int) *tensor.Tensor {
		data := make([]float64, rows*2)
		for i := range data {
			data[i] = float64(i%7) - 3
		}
		return tensor.New([]int{rows, 2}, data)
	}
	for _, rows := range []int{3, 3, 5, 6, 13} {
		got, err := bucketed.Infer("predict", batch(rows))
		if err != nil {
			t.Fatalf("bucketed rows=%d: %v", rows, err)
		}
		want, err := exact.Infer("predict", batch(rows))
		if err != nil {
			t.Fatalf("exact rows=%d: %v", rows, err)
		}
		if got.Dim(0) != rows {
			t.Fatalf("rows=%d: got %d output rows (padding leaked)", rows, got.Dim(0))
		}
		if !bitEqual(got, want) {
			t.Fatalf("rows=%d: bucketed output differs from exact\n%v\nvs\n%v", rows, got, want)
		}
	}
	reg := bucketed.Registry()
	if n := counterSum(reg, "janus_bucket_padded_batches_total"); n == 0 {
		t.Fatal("no batch was ever padded")
	}
	if n := counterSum(reg, "janus_bucket_pad_rows_total"); n == 0 {
		t.Fatal("no padding rows counted")
	}
	// Every distinct size mapped onto a bucket {4, 8, 16}; with relax-merge
	// those buckets share graphs, so the cache must hold far fewer entries
	// than distinct request sizes.
	if n := bucketed.Cache().Entries(); n > 3 {
		t.Fatalf("bucketed cache holds %d entries for predict, want <= 3", n)
	}
}

// TestBucketRejectsScalarOutput: a padded execution whose output collapses
// the batch dimension (train_step's mean loss) must fail with a clear
// error, not silently return a value aggregated over synthetic rows.
func TestBucketRejectsScalarOutput(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1, MaxBatch: 1, MaxLatency: time.Millisecond,
		BucketBatch: true, Engine: janusConfig(1)})
	x := tensor.New([]int{3, 2}, []float64{1, 2, 3, 4, 5, 6})
	y := tensor.New([]int{3, 3}, make([]float64, 9))
	_, err := p.CallNamed(context.Background(), "train_step",
		map[string]*tensor.Tensor{"x": x, "y": y})
	if err == nil {
		t.Fatal("padded scalar-output call succeeded, want rejection")
	}
	if !strings.Contains(err.Error(), "bucketing") && !strings.Contains(err.Error(), "BucketBatch") {
		t.Fatalf("error does not point at the bucketing knob: %v", err)
	}
}

// TestSharedFeedBroadcast: a feed marked shared is exempt from the
// batch-dimension contract and reaches the function whole.
func TestSharedFeedBroadcast(t *testing.T) {
	p := NewPool(Config{Workers: 1, MaxBatch: 4, MaxLatency: time.Millisecond,
		BucketBatch: true, Engine: janusConfig(1)})
	if _, err := p.Load(projectProgram); err != nil {
		t.Fatalf("load: %v", err)
	}
	x := tensor.New([]int{3, 2}, []float64{1, 2, 3, 4, 5, 6})
	w := tensor.New([]int{2, 3}, []float64{1, 0, 2, 0, 1, 3})
	feeds := map[string]*tensor.Tensor{"x": x, "w": w}

	// Unmarked, w (2 rows) disagrees with x (3 rows) on the batch dim.
	if _, err := p.CallNamed(context.Background(), "project", feeds); err == nil {
		t.Fatal("mismatched batch dims accepted without a shared marking")
	}
	outs, err := p.CallNamedShared(context.Background(), "project", feeds, []string{"w"})
	if err != nil {
		t.Fatalf("shared call: %v", err)
	}
	want := tensor.MatMul(x, w)
	if len(outs) != 1 || !bitEqual(outs[0], want) {
		t.Fatalf("project returned %v, want %v", outs, want)
	}
	// Unknown shared names fail up front.
	if _, err := p.CallNamedShared(context.Background(), "project", feeds, []string{"nope"}); err == nil {
		t.Fatal("unknown shared feed name accepted")
	}
}

// TestPoolSnapshotWarmBoot drives the full serving round trip: warm a pool,
// save its snapshot, boot a fresh pool from it, and require the first
// request to be served with zero conversions, zero imperative profiling
// steps and bit-identical outputs.
func TestPoolSnapshotWarmBoot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "janus-cache.snap")
	mk := func() *Pool {
		return newTestPool(t, Config{Workers: 2, MaxBatch: 4, MaxLatency: time.Millisecond,
			BucketBatch: true, Engine: janusConfig(1)})
	}
	cold := mk()
	x := tensor.New([]int{4, 2}, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	warm(t, cold, "predict", x, 3)
	coldOut, err := cold.Infer("predict", x)
	if err != nil {
		t.Fatal(err)
	}
	saved, err := cold.SaveSnapshot(path)
	if err != nil {
		t.Fatalf("save snapshot: %v", err)
	}
	if saved == 0 {
		t.Fatal("snapshot saved no entries")
	}

	warmPool := mk()
	loaded, err := warmPool.LoadSnapshot(path)
	if err != nil {
		t.Fatalf("load snapshot: %v", err)
	}
	if loaded != saved {
		t.Fatalf("loaded %d entries, saved %d", loaded, saved)
	}
	got, err := warmPool.Infer("predict", x)
	if err != nil {
		t.Fatalf("warm first request: %v", err)
	}
	if !bitEqual(got, coldOut) {
		t.Fatalf("warm output differs from cold:\n%v\nvs\n%v", got, coldOut)
	}
	st := warmPool.Stats()
	if st.Conversions != 0 || st.ImperativeSteps != 0 {
		t.Fatalf("warm boot did cold work: %d conversions, %d imperative steps",
			st.Conversions, st.ImperativeSteps)
	}
	for _, e := range warmPool.Cache().Inspect().EntryList {
		if e.Provenance != "snapshot" {
			t.Fatalf("warm entry provenance %q, want snapshot", e.Provenance)
		}
	}

	// A pool loaded with different sources must reject the artifact and
	// keep serving cold.
	other := NewPool(Config{Workers: 1, Engine: janusConfig(1)})
	if _, err := other.Load(projectProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := other.LoadSnapshot(path); err == nil {
		t.Fatal("snapshot for a different program was accepted")
	} else if core.RejectReason(err) != "program" {
		t.Fatalf("reject reason %q, want program (%v)", core.RejectReason(err), err)
	}
}
