package profile

import (
	"testing"

	"repro/internal/minipy"
	"repro/internal/tensor"
)

func TestBranchStability(t *testing.T) {
	p := New()
	p.Branch(1, true)
	p.Branch(1, true)
	p.Branch(1, true)
	taken, stable := p.BranchStable(1)
	if !stable || !taken {
		t.Fatalf("taken=%v stable=%v", taken, stable)
	}
	p.Branch(1, false)
	if _, stable := p.BranchStable(1); stable {
		t.Fatal("mixed branch reported stable")
	}
	if _, stable := p.BranchStable(99); stable {
		t.Fatal("unknown branch reported stable")
	}
}

func TestLoopStability(t *testing.T) {
	p := New()
	p.Loop(2, 7)
	p.Loop(2, 7)
	trips, stable := p.LoopTrips(2)
	if !stable || trips != 7 {
		t.Fatalf("trips=%d stable=%v", trips, stable)
	}
	p.Loop(2, 8)
	if _, stable := p.LoopTrips(2); stable {
		t.Fatal("unstable loop reported stable")
	}
}

func TestCalleeStability(t *testing.T) {
	p := New()
	a := minipy.CalleeID{UserNode: 10}
	b := minipy.CalleeID{UserNode: 20}
	p.Call(3, a)
	p.Call(3, a)
	got, stable := p.Callee(3)
	if !stable || got != a {
		t.Fatalf("callee %v stable %v", got, stable)
	}
	p.Call(3, b)
	if _, stable := p.Callee(3); stable {
		t.Fatal("unstable callee reported stable")
	}
}

func TestValueConstTracking(t *testing.T) {
	p := New()
	p.Value(4, minipy.IntVal(5))
	p.Value(4, minipy.IntVal(5))
	info := p.ValueAt(4)
	if !info.ConstStable || !minipy.Equal(info.Const, minipy.IntVal(5)) {
		t.Fatalf("const not tracked: %+v", info)
	}
	p.Value(4, minipy.IntVal(6))
	if p.ValueAt(4).ConstStable {
		t.Fatal("changed value still const")
	}
	if !p.ValueAt(4).TypeStable || p.ValueAt(4).TypeName != "int" {
		t.Fatal("type stability lost incorrectly")
	}
}

func TestValueTypeInstability(t *testing.T) {
	p := New()
	p.Value(5, minipy.IntVal(1))
	p.Value(5, minipy.FloatVal(1))
	info := p.ValueAt(5)
	if info.TypeStable {
		t.Fatal("mixed types reported stable")
	}
}

func TestShapeMergeToWildcard(t *testing.T) {
	// The Figure 4 scenario: shapes (4,8) then (3,8) must merge to (-1,8).
	p := New()
	p.Value(6, minipy.NewTensor(tensor.Zeros(4, 8)))
	info := p.ValueAt(6)
	if !info.ShapeKnown || info.Shape[0] != 4 || info.Shape[1] != 8 {
		t.Fatalf("initial shape %v", info.Shape)
	}
	p.Value(6, minipy.NewTensor(tensor.Zeros(3, 8)))
	info = p.ValueAt(6)
	if info.Shape[0] != -1 || info.Shape[1] != 8 {
		t.Fatalf("merged shape %v, want [-1 8]", info.Shape)
	}
	// A third shape (2,8) must still match the merged pattern with no change.
	p.Value(6, minipy.NewTensor(tensor.Zeros(2, 8)))
	info = p.ValueAt(6)
	if info.Shape[0] != -1 || info.Shape[1] != 8 {
		t.Fatalf("shape after third obs %v", info.Shape)
	}
}

func TestTensorConstStability(t *testing.T) {
	p := New()
	tv := minipy.NewTensor(tensor.FromSlice([]float64{1, 2}))
	p.Value(7, tv)
	p.Value(7, minipy.NewTensor(tensor.FromSlice([]float64{1, 2})))
	info := p.ValueAt(7)
	if !info.ConstStable {
		t.Fatal("identical tensors not const-stable")
	}
	p.Value(7, minipy.NewTensor(tensor.FromSlice([]float64{9, 9})))
	if p.ValueAt(7).ConstStable {
		t.Fatal("changed tensor still const-stable")
	}
}

func TestMergeShapesRankMismatch(t *testing.T) {
	if MergeShapes([]int{2, 3}, []int{2, 3, 4}) != nil {
		t.Fatal("rank mismatch should yield nil")
	}
}

func TestIterationsCounter(t *testing.T) {
	p := New()
	p.EndIteration()
	p.EndIteration()
	if p.Iterations() != 2 {
		t.Fatalf("got %d", p.Iterations())
	}
}
