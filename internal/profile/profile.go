// Package profile implements the runtime Profiler of the paper's Figure 2
// (component A): it observes imperative executions of a program and
// aggregates, per AST node,
//
//   - conditional branch directions,
//   - loop trip counts,
//   - call-site callee identities,
//   - the dynamic type / tensor shape / value of profiled expressions
//     (function arguments and attribute reads),
//
// exposing stability queries that the speculative graph generator
// (internal/convert) uses to decide which assumptions to bake into a graph.
// The value lattice follows the paper's Figure 4: exact value ⊂ exact shape ⊂
// partial shape (wildcard dims) ⊂ type only.
package profile

import (
	"sync"

	"repro/internal/minipy"
	"repro/internal/tensor"
)

// branchStat counts the two directions of one conditional.
type branchStat struct {
	trueCount  int
	falseCount int
}

// loopStat tracks trip-count stability.
type loopStat struct {
	first    int
	count    int
	unstable bool
}

// calleeStat tracks callee stability at a call site.
type calleeStat struct {
	first    minipy.CalleeID
	count    int
	unstable bool
}

// ValueInfo summarizes observed values of one expression, following the
// specialization hierarchy of the paper's Figure 4.
type ValueInfo struct {
	// TypeName is the observed type ("" until first observation); TypeStable
	// is false if several types were seen.
	TypeName   string
	TypeStable bool
	// Shape is the merged tensor shape: dims observed with several values
	// become -1 (wildcards). Only meaningful for tensors.
	Shape      []int
	ShapeKnown bool
	// Const holds the exact value when every observation was identical.
	Const       minipy.Value
	ConstStable bool
	Count       int
}

// Profile aggregates observations. It implements minipy.Profiler and is safe
// for use from a single interpreter at a time (the imperative executor is
// single-threaded; a mutex still guards engine-side queries).
type Profile struct {
	mu       sync.Mutex
	branches map[int]*branchStat
	loops    map[int]*loopStat
	calls    map[int]*calleeStat
	values   map[int]*ValueInfo
	// Iterations counts completed profiled runs of the target function; the
	// runtime bumps it via EndIteration.
	iterations int
}

// New returns an empty profile.
func New() *Profile {
	return &Profile{
		branches: make(map[int]*branchStat),
		loops:    make(map[int]*loopStat),
		calls:    make(map[int]*calleeStat),
		values:   make(map[int]*ValueInfo),
	}
}

// Branch implements minipy.Profiler.
func (p *Profile) Branch(nodeID int, taken bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.branches[nodeID]
	if !ok {
		s = &branchStat{}
		p.branches[nodeID] = s
	}
	if taken {
		s.trueCount++
	} else {
		s.falseCount++
	}
}

// Loop implements minipy.Profiler.
func (p *Profile) Loop(nodeID int, trips int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.loops[nodeID]
	if !ok {
		p.loops[nodeID] = &loopStat{first: trips, count: 1}
		return
	}
	s.count++
	if s.first != trips {
		s.unstable = true
	}
}

// Call implements minipy.Profiler.
func (p *Profile) Call(nodeID int, callee minipy.CalleeID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.calls[nodeID]
	if !ok {
		p.calls[nodeID] = &calleeStat{first: callee, count: 1}
		return
	}
	s.count++
	if s.first != callee {
		s.unstable = true
	}
}

// Value implements minipy.Profiler.
func (p *Profile) Value(nodeID int, v minipy.Value) {
	p.mu.Lock()
	defer p.mu.Unlock()
	info, ok := p.values[nodeID]
	if !ok {
		info = &ValueInfo{TypeStable: true, ConstStable: true}
		p.values[nodeID] = info
	}
	info.observe(v)
}

func (info *ValueInfo) observe(v minipy.Value) {
	info.Count++
	tn := v.TypeName()
	if info.TypeName == "" {
		info.TypeName = tn
	} else if info.TypeName != tn {
		info.TypeStable = false
		info.ConstStable = false
		info.ShapeKnown = false
		return
	}
	if tv, ok := v.(*minipy.TensorVal); ok {
		sh := tv.T().Shape()
		if !info.ShapeKnown {
			info.Shape = append([]int(nil), sh...)
			info.ShapeKnown = true
		} else {
			info.Shape = MergeShapes(info.Shape, sh)
		}
		// Constant tracking for tensors is limited to small ones to bound
		// memory; large tensors almost never stay constant anyway.
		if info.ConstStable {
			if prev, ok := info.Const.(*minipy.TensorVal); ok {
				if tv.T().Size() > 64 || !tensor.Equal(prev.T(), tv.T()) {
					info.ConstStable = false
					info.Const = nil
				}
			} else if info.Const == nil && tv.T().Size() <= 64 {
				info.Const = tv
			} else if info.Const == nil {
				info.ConstStable = false
			}
		}
		return
	}
	// Scalar / container values: exact-equality constant tracking.
	if info.Const == nil && info.Count == 1 {
		info.Const = v
		return
	}
	if info.ConstStable && (info.Const == nil || !minipy.Equal(info.Const, v)) {
		info.ConstStable = false
		info.Const = nil
	}
}

// MergeShapes merges two observed shapes into a pattern with -1 wildcards,
// implementing the Figure 4 relaxation step ((4,8) + (3,8) -> (?,8)).
// Rank mismatches yield nil (shape unknown).
func MergeShapes(a, b []int) []int {
	if len(a) != len(b) {
		return nil
	}
	out := make([]int, len(a))
	for i := range a {
		if a[i] == b[i] {
			out[i] = a[i]
		} else {
			out[i] = -1
		}
	}
	return out
}

// EndIteration marks one complete profiled run.
func (p *Profile) EndIteration() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.iterations++
}

// Iterations returns the number of completed profiled runs.
func (p *Profile) Iterations() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.iterations
}

// ForceIterations raises the completed-iteration count to at least n. The
// artifact loader (internal/core) uses it when restoring a snapshotted
// graph cache: the original process already paid the profiling iterations,
// so the restored engine must not gate cached-graph lookups behind a fresh
// observation window. Counts only ever move up — a live profile with more
// observed iterations is left alone.
func (p *Profile) ForceIterations(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.iterations < n {
		p.iterations = n
	}
}

// BranchStable reports whether the conditional at nodeID always took one
// direction, and which.
func (p *Profile) BranchStable(nodeID int) (taken, stable bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.branches[nodeID]
	if !ok || (s.trueCount > 0 && s.falseCount > 0) {
		return false, false
	}
	return s.trueCount > 0, true
}

// LoopTrips reports the stable trip count of the loop at nodeID.
func (p *Profile) LoopTrips(nodeID int) (trips int, stable bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.loops[nodeID]
	if !ok || s.unstable {
		return 0, false
	}
	return s.first, true
}

// Callee reports the stable callee of the call site at nodeID.
func (p *Profile) Callee(nodeID int) (minipy.CalleeID, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.calls[nodeID]
	if !ok || s.unstable {
		return minipy.CalleeID{}, false
	}
	return s.first, true
}

// ValueAt returns the aggregated value info for an expression (nil if never
// observed).
func (p *Profile) ValueAt(nodeID int) *ValueInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.values[nodeID]
}
