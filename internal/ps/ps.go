// Package ps is a real sharded parameter-server runtime for distributed
// data-parallel training — the subsystem that turns internal/dist's
// analytical Figure-8 model into a measurable claim.
//
// A Server partitions model parameters across K logical shards (by variable
// name hash, vars.ShardOf) and applies gradient updates with the same
// autodiff optimizers the single-engine paths use. Workers (see Worker) wrap
// a core.Engine replica each: every step they pull fresh parameters per
// shard, run one training step on their slice of the data, and push each
// parameter's gradient the moment backprop finalizes it — per tensor, while
// backprop is still descending through earlier layers — so gradient exchange
// overlaps compute exactly as the paper's §6.3.2 describes for graph
// engines.
//
// Consistency follows the stale-synchronous model: every push carries the
// worker's step clock, and the server rejects pushes whose clock lags the
// freshest observed step by more than the configured staleness bound
// (ErrStale); the worker drops that gradient and re-synchronizes on its next
// pull. Staleness 0 with a round-barrier harness (Cluster) is effectively
// synchronous data-parallel SGD with gradient averaging.
package ps

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/autodiff"
	"repro/internal/obs"
	"repro/internal/tensor"
	"repro/internal/vars"
)

// ErrStale reports a gradient push rejected by the staleness bound; the
// worker should drop the gradient and re-pull before its next step.
var ErrStale = errors.New("ps: push rejected: worker step exceeds the staleness bound")

// StaleErr wraps a server-reported message with the ErrStale sentinel; the
// HTTP client maps 409 responses through it so errors.Is(err, ErrStale)
// round-trips the wire.
func StaleErr(msg string) error { return fmt.Errorf("%w: %s", ErrStale, msg) }

// ErrUnavailable reports a TRANSIENT transport failure: a dead shard awaiting
// failover, an unreachable server, or an injected fault. It is the retry
// class — RetryTransport retries exactly the errors carrying this sentinel,
// and surfaces it unchanged when the retry budget runs out, so callers can
// errors.Is-classify budget exhaustion. On the wire it is HTTP 503.
var ErrUnavailable = errors.New("ps: server unavailable")

// UnavailableErr wraps msg with the ErrUnavailable sentinel (the 503 inverse
// mapping, like StaleErr for 409).
func UnavailableErr(msg string) error { return fmt.Errorf("%w: %s", ErrUnavailable, msg) }

// ErrLeaseExpired reports a heartbeat for a lease the server no longer
// honors: it expired (the worker went silent past the TTL) or was superseded
// by a newer registration for the same worker ID. The worker must Register
// again; its coverage was already redistributed. On the wire it is HTTP 410.
var ErrLeaseExpired = errors.New("ps: worker lease expired")

// LeaseExpiredErr wraps msg with the ErrLeaseExpired sentinel (the 410
// inverse mapping).
func LeaseExpiredErr(msg string) error { return fmt.Errorf("%w: %s", ErrLeaseExpired, msg) }

// Config tunes a parameter server.
type Config struct {
	// Shards is the number of logical parameter shards (default 1).
	Shards int
	// LR is the server-side SGD learning rate (default 0.1).
	LR float64
	// Workers is the number of data-parallel replicas pushing gradients.
	// Incoming gradients are scaled by 1/Workers, so one round of pushes
	// from every worker equals one SGD step over the aggregated global batch
	// — the gradient-averaging semantics of synchronous data-parallel
	// training (default 1).
	Workers int
	// Staleness bounds asynchrony, measured in worker steps: a push whose
	// step clock lags the freshest observed step on that shard by more than
	// Staleness is rejected with ErrStale. Negative disables the bound
	// (fully asynchronous); 0 forces lockstep (default 0, which the
	// round-barrier Cluster harness satisfies trivially).
	Staleness int
	// Optimizer names the server-side update rule: "sgd" (default),
	// "momentum", or "adam". Optimizer state (velocity, moments, per-tensor
	// step counts) lives on the shard, keyed by variable name, so workers
	// stay stateless and a streamed single-tensor push advances exactly that
	// tensor's state.
	Optimizer string
	// LeaseTTL is how long a registered worker may stay silent before its
	// lease expires and its data coverage is redistributed to the remaining
	// live workers (default 2s; tests and churn benches use much shorter).
	// Workers heartbeat at roughly TTL/3. Expiry is checked lazily on every
	// membership operation, so a cluster with no live traffic expires no one.
	LeaseTTL time.Duration
	// SnapshotEvery bounds failover loss: every SnapshotEvery applied pushes,
	// a shard serializes its parameters + optimizer state (reusing the graph
	// tensor wire format), and a failed-over shard restores from the latest
	// snapshot. At most SnapshotEvery updates per shard (plus in-flight ones)
	// are lost on a shard death. 0 defaults to 8; negative disables periodic
	// snapshots (failover then restores the initial post-InitVars state).
	SnapshotEvery int
	// Obs, when non-nil, is the registry the server resolves its metrics
	// in (cmd/janusps shares one with its HTTP exposition). Nil gives the
	// server a private registry.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.LR == 0 {
		c.LR = 0.1
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 2 * time.Second
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 8
	}
	return c
}

// Transport is the wire abstraction between a Worker and the parameter
// server. The Server itself implements it (in-process transport for the
// Cluster harness and tests); Client implements it over HTTP+JSON against a
// cmd/janusps process.
type Transport interface {
	// NumShards reports the server's shard count, so client-side placement
	// (vars.ShardOf) agrees with the server.
	NumShards() (int, error)
	// Pull fetches shard's parameters. have is the version from the caller's
	// previous pull: when the shard hasn't changed since, the server returns
	// (nil, have, step, nil) and the caller keeps its copy. Pass -1 to force
	// a full fetch. step is the freshest worker step clock the shard has
	// observed — free-running workers fast-forward their own clock to it on
	// every pull, so a laggard that re-pulls after ErrStale re-enters the
	// staleness window instead of being locked out forever. ctx carries
	// cancellation and the active obs.Trace: the in-process transport
	// records its spans directly into the caller's trace, the HTTP
	// transport propagates it in the Janus-Trace header and grafts the
	// server's span tree back under the RPC span. A dead shard awaiting
	// failover returns ErrUnavailable.
	Pull(ctx context.Context, shard int, have int64) (params map[string]*tensor.Tensor, version, step int64, err error)
	// PushGrad applies one or more named gradients to shard. step is the
	// worker's step clock for the staleness check; worker identifies the
	// pushing replica, making retried pushes idempotent: (worker, step, name)
	// names one logical gradient, and the server applies each at most once —
	// a retry of a push whose response was lost is deduplicated, never
	// double-applied. Negative worker opts out of deduplication. Returns the
	// shard version after the update, ErrStale on a staleness rejection, or
	// ErrUnavailable on a dead shard.
	PushGrad(ctx context.Context, shard, worker int, step int64, grads map[string]*tensor.Tensor) (int64, error)
	// InitVars registers initial parameter values, set-if-absent. Every
	// worker calls it after building its replica; with a shared seed all
	// replicas propose identical values, so whichever lands first wins
	// without coordination.
	InitVars(ctx context.Context, vals map[string]*tensor.Tensor) error
	// Register announces worker as a live member and returns its lease:
	// a renewal token, the server's TTL, and the worker's data-coverage
	// assignment. Re-registering an already-live worker supersedes its
	// previous lease (the old token starts failing with ErrLeaseExpired).
	Register(ctx context.Context, worker int) (Lease, error)
	// Heartbeat renews worker's lease and returns the current assignment —
	// the cheap poll through which membership changes propagate to workers.
	// ErrLeaseExpired means the lease lapsed or was superseded: the worker
	// must Register again.
	Heartbeat(ctx context.Context, worker int, lease int64) (Assignment, error)
}

// Assignment is a worker's slice of the global data coverage: among Live
// currently-leased workers, this worker is index Slot (0-based, ordered by
// worker ID). A free-running elastic worker derives its global batch index
// as round*Live+Slot, so at any membership the live set covers disjoint
// slices of every batch range and a dead worker's slice is re-covered the
// moment the membership epoch moves. Epoch bumps on every join, leave, and
// expiry.
type Assignment struct {
	Slot  int   `json:"slot"`
	Live  int   `json:"live"`
	Epoch int64 `json:"epoch"`
}

// Lease is a successful registration: the renewal token Heartbeat needs, the
// server's lease TTL (heartbeat at ~TTL/3), and the initial assignment.
type Lease struct {
	ID  int64         `json:"lease"`
	TTL time.Duration `json:"-"`
	Assignment
}

// dedupKey names one (worker, variable) push stream. Worker step clocks are
// strictly increasing, so remembering the last applied step per stream is a
// complete duplicate filter: any push at or below it was already applied (a
// retry whose first attempt landed but whose response was lost) and must not
// be applied again.
type dedupKey struct {
	worker int
	name   string
}

// shard is one parameter partition: a vars.Store (copy-on-write updates, so
// pulled tensors are immutable and safe to hand out or serialize) plus its
// version and step clocks, all behind one mutex.
type shard struct {
	mu    sync.Mutex
	store *vars.Store
	opt   autodiff.Optimizer
	// version counts applied updates; pulls use it to skip unchanged fetches.
	version int64
	// maxStep is the freshest worker step clock observed on this shard.
	maxStep int64
	// down marks a killed shard: every Pull/PushGrad returns ErrUnavailable
	// until FailoverShard restores a successor from the latest snapshot.
	down bool
	// applied is the idempotency ledger: last applied step per (worker, var)
	// push stream. Memory is O(workers × variables), so no GC is needed.
	applied map[dedupKey]int64
	// lastSnap is the latest serialized shard snapshot (params + optimizer
	// state), refreshed after InitVars and every snapEvery applied pushes;
	// FailoverShard restores from it. sincePush counts pushes since.
	lastSnap    []byte
	snapVersion int64
	sincePush   int
	// killedVersion records version at KillShard time, so FailoverShard can
	// report how many applied updates the restore rolled back.
	killedVersion int64
}

// Stats is a point-in-time snapshot of server activity.
type Stats struct {
	Shards        int    `json:"shards"`
	Optimizer     string `json:"optimizer"`
	Vars          int    `json:"vars"`
	Params        int    `json:"params"`
	Pulls         int64  `json:"pulls"`
	PullsFresh    int64  `json:"pulls_fresh"`
	Pushes        int64  `json:"pushes"`
	StaleDrops    int64  `json:"stale_drops"`
	DupDrops      int64  `json:"dup_drops"`
	Version       int64  `json:"version"`
	MaxStep       int64  `json:"max_step"`
	LiveWorkers   int    `json:"live_workers"`
	LeaseExpiries int64  `json:"lease_expiries"`
	Rebalances    int64  `json:"rebalances"`
	Failovers     int64  `json:"shard_failovers"`
	DownShards    int    `json:"down_shards"`
}

// Server is the sharded parameter server. It is safe for concurrent use;
// workers on different shards never contend.
type Server struct {
	cfg    Config
	shards []*shard

	// members is the worker-lease table behind elastic membership.
	members *membership

	obs     *obs.Registry
	metrics *metrics
}

// NewServer builds an empty parameter server. Each shard gets its own
// optimizer instance from Config.Optimizer — variable names partition across
// shards, so per-name optimizer state never collides.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{cfg: cfg, obs: reg, metrics: newMetrics(reg)}
	s.members = newMembership(cfg.LeaseTTL, s.metrics)
	for i := 0; i < cfg.Shards; i++ {
		opt, err := autodiff.NewOptimizer(cfg.Optimizer, cfg.LR)
		if err != nil {
			return nil, fmt.Errorf("ps: %w", err)
		}
		s.shards = append(s.shards, &shard{
			store:   vars.NewStore(),
			opt:     opt,
			applied: make(map[dedupKey]int64),
		})
	}
	return s, nil
}

// Config returns the server's effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Registry returns the server's metrics registry.
func (s *Server) Registry() *obs.Registry { return s.obs }

// LatencyQuantile reports the estimated q-quantile (0..1) of server-side
// handling latency in seconds, from the registry histograms; op is "push"
// or "pull" (anything else yields 0). Bench harnesses use it to put
// percentiles in their reports without scraping the text exposition.
func (s *Server) LatencyQuantile(op string, q float64) float64 {
	switch op {
	case "push":
		return s.metrics.pushLat.Quantile(q)
	case "pull":
		return s.metrics.pullLat.Quantile(q)
	}
	return 0
}

// NumShards implements Transport.
func (s *Server) NumShards() (int, error) { return s.cfg.Shards, nil }

func (s *Server) shardAt(i int) (*shard, error) {
	if i < 0 || i >= len(s.shards) {
		return nil, fmt.Errorf("ps: shard %d out of range (have %d)", i, len(s.shards))
	}
	return s.shards[i], nil
}

// Pull implements Transport.
func (s *Server) Pull(ctx context.Context, shardIdx int, have int64) (map[string]*tensor.Tensor, int64, int64, error) {
	sh, err := s.shardAt(shardIdx)
	if err != nil {
		return nil, 0, 0, err
	}
	sp := obs.StartSpan(ctx, "ps.pull")
	defer sp.End()
	t0 := time.Now()
	defer s.metrics.pullLat.Since(t0)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.down {
		return nil, 0, 0, UnavailableErr(fmt.Sprintf("shard %d is down, awaiting failover", shardIdx))
	}
	if have >= 0 && sh.version == have {
		s.metrics.pullsCached.Inc()
		return nil, sh.version, sh.maxStep, nil
	}
	s.metrics.pullsFresh.Inc()
	// ShardSnapshot with k=1 returns every variable in this shard's store;
	// tensors are copy-on-write so the map is safe to release unlocked.
	snap := sh.store.ShardSnapshot(0, 1)
	s.metrics.bytesPull.Add(tensorBytes(snap))
	return snap, sh.version, sh.maxStep, nil
}

// tensorBytes sizes a named-tensor payload (8 bytes per float64 element).
func tensorBytes(m map[string]*tensor.Tensor) int64 {
	var n int64
	for _, t := range m {
		n += int64(len(t.Data())) * 8
	}
	return n
}

// PushGrad implements Transport. Unknown variables are an error: gradients
// can only follow a successful InitVars. A non-negative worker makes the
// push idempotent: each (worker, step, variable) is applied at most once,
// so a retried push whose first attempt landed (response lost on the wire)
// is acknowledged without re-applying.
func (s *Server) PushGrad(ctx context.Context, shardIdx, worker int, step int64, grads map[string]*tensor.Tensor) (int64, error) {
	sh, err := s.shardAt(shardIdx)
	if err != nil {
		return 0, err
	}
	sp := obs.StartSpan(ctx, "ps.push")
	defer sp.End()
	t0 := time.Now()
	defer s.metrics.pushLat.Since(t0)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.down {
		return 0, UnavailableErr(fmt.Sprintf("shard %d is down, awaiting failover", shardIdx))
	}
	if lag := sh.maxStep - step; lag > 0 {
		s.metrics.staleness.Observe(float64(lag))
	} else {
		s.metrics.staleness.Observe(0)
	}
	if s.cfg.Staleness >= 0 && sh.maxStep-step > int64(s.cfg.Staleness) {
		s.metrics.staleDrops.Inc()
		return sh.version, fmt.Errorf("%w (step %d, freshest %d, bound %d)",
			ErrStale, step, sh.maxStep, s.cfg.Staleness)
	}
	scaled := make(map[string]*tensor.Tensor, len(grads))
	for name, g := range grads {
		if worker >= 0 {
			if last, ok := sh.applied[dedupKey{worker, name}]; ok && step <= last {
				// Duplicate: this logical push already applied (worker step
				// clocks only move forward). Acknowledge, don't re-apply.
				s.metrics.dupDrops.Inc()
				continue
			}
		}
		cur, ok := sh.store.Get(name)
		if !ok {
			return sh.version, fmt.Errorf("ps: push for unregistered variable %q (InitVars first)", name)
		}
		if !tensor.SameShape(cur, g) {
			return sh.version, fmt.Errorf("ps: gradient shape %v for variable %q of shape %v",
				g.Shape(), name, cur.Shape())
		}
		scaled[name] = tensor.MulScalar(g, 1/float64(s.cfg.Workers))
	}
	if len(scaled) == 0 {
		// Every gradient in the request was a duplicate.
		return sh.version, nil
	}
	osp := sp.Trace().StartSpanChild("opt_apply", sp.ID())
	sh.opt.Apply(sh.store, scaled)
	osp.End()
	if worker >= 0 {
		for name := range scaled {
			sh.applied[dedupKey{worker, name}] = step
		}
	}
	sh.version++
	if step > sh.maxStep {
		sh.maxStep = step
	}
	s.metrics.pushes.Inc()
	s.metrics.bytesPush.Add(tensorBytes(grads))
	sh.sincePush++
	if s.cfg.SnapshotEvery > 0 && sh.sincePush >= s.cfg.SnapshotEvery {
		s.snapshotLocked(shardIdx, sh)
	}
	return sh.version, nil
}

// InitVars implements Transport: set-if-absent registration of initial
// values, each routed to its shard by name hash. Every shard that gained a
// variable refreshes its failover snapshot, so a shard that dies before its
// first periodic snapshot still fails over to a state where all its
// variables exist (at their initial values).
func (s *Server) InitVars(ctx context.Context, vals map[string]*tensor.Tensor) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	touched := make(map[int]bool)
	for name, t := range vals {
		idx := vars.ShardOf(name, s.cfg.Shards)
		sh := s.shards[idx]
		t := t
		sh.mu.Lock()
		if sh.down {
			sh.mu.Unlock()
			return UnavailableErr(fmt.Sprintf("shard %d is down, awaiting failover", idx))
		}
		created := false
		sh.store.GetOrCreate(name, func() *tensor.Tensor { created = true; return t.Clone() })
		if created {
			sh.version++
			touched[idx] = true
		}
		sh.mu.Unlock()
	}
	for idx := range touched {
		sh := s.shards[idx]
		sh.mu.Lock()
		s.snapshotLocked(idx, sh)
		sh.mu.Unlock()
	}
	return nil
}

// Register implements Transport: lease-based membership (see membership).
func (s *Server) Register(ctx context.Context, worker int) (Lease, error) {
	if err := ctx.Err(); err != nil {
		return Lease{}, err
	}
	return s.members.register(worker), nil
}

// Heartbeat implements Transport.
func (s *Server) Heartbeat(ctx context.Context, worker int, lease int64) (Assignment, error) {
	if err := ctx.Err(); err != nil {
		return Assignment{}, err
	}
	return s.members.heartbeat(worker, lease)
}

// Stats snapshots server activity.
func (s *Server) Stats() Stats {
	st := Stats{
		Shards:        len(s.shards),
		Optimizer:     s.shards[0].opt.Name(),
		Pulls:         s.metrics.pullsFresh.Value() + s.metrics.pullsCached.Value(),
		PullsFresh:    s.metrics.pullsFresh.Value(),
		Pushes:        s.metrics.pushes.Value(),
		StaleDrops:    s.metrics.staleDrops.Value(),
		DupDrops:      s.metrics.dupDrops.Value(),
		LiveWorkers:   s.members.live(),
		LeaseExpiries: s.metrics.leaseExpiries.Value(),
		Rebalances:    s.metrics.rebalances.Value(),
		Failovers:     s.metrics.failovers.Value(),
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Vars += sh.store.Len()
		st.Params += sh.store.NumParams()
		st.Version += sh.version
		if sh.maxStep > st.MaxStep {
			st.MaxStep = sh.maxStep
		}
		if sh.down {
			st.DownShards++
		}
		sh.mu.Unlock()
	}
	return st
}
