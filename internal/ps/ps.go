// Package ps is a real sharded parameter-server runtime for distributed
// data-parallel training — the subsystem that turns internal/dist's
// analytical Figure-8 model into a measurable claim.
//
// A Server partitions model parameters across K logical shards (by variable
// name hash, vars.ShardOf) and applies gradient updates with the same
// autodiff optimizers the single-engine paths use. Workers (see Worker) wrap
// a core.Engine replica each: every step they pull fresh parameters per
// shard, run one training step on their slice of the data, and push each
// parameter's gradient the moment backprop finalizes it — per tensor, while
// backprop is still descending through earlier layers — so gradient exchange
// overlaps compute exactly as the paper's §6.3.2 describes for graph
// engines.
//
// Consistency follows the stale-synchronous model: every push carries the
// worker's step clock, and the server rejects pushes whose clock lags the
// freshest observed step by more than the configured staleness bound
// (ErrStale); the worker drops that gradient and re-synchronizes on its next
// pull. Staleness 0 with a round-barrier harness (Cluster) is effectively
// synchronous data-parallel SGD with gradient averaging.
package ps

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/autodiff"
	"repro/internal/obs"
	"repro/internal/tensor"
	"repro/internal/vars"
)

// ErrStale reports a gradient push rejected by the staleness bound; the
// worker should drop the gradient and re-pull before its next step.
var ErrStale = errors.New("ps: push rejected: worker step exceeds the staleness bound")

// StaleErr wraps a server-reported message with the ErrStale sentinel; the
// HTTP client maps 409 responses through it so errors.Is(err, ErrStale)
// round-trips the wire.
func StaleErr(msg string) error { return fmt.Errorf("%w: %s", ErrStale, msg) }

// Config tunes a parameter server.
type Config struct {
	// Shards is the number of logical parameter shards (default 1).
	Shards int
	// LR is the server-side SGD learning rate (default 0.1).
	LR float64
	// Workers is the number of data-parallel replicas pushing gradients.
	// Incoming gradients are scaled by 1/Workers, so one round of pushes
	// from every worker equals one SGD step over the aggregated global batch
	// — the gradient-averaging semantics of synchronous data-parallel
	// training (default 1).
	Workers int
	// Staleness bounds asynchrony, measured in worker steps: a push whose
	// step clock lags the freshest observed step on that shard by more than
	// Staleness is rejected with ErrStale. Negative disables the bound
	// (fully asynchronous); 0 forces lockstep (default 0, which the
	// round-barrier Cluster harness satisfies trivially).
	Staleness int
	// Optimizer names the server-side update rule: "sgd" (default),
	// "momentum", or "adam". Optimizer state (velocity, moments, per-tensor
	// step counts) lives on the shard, keyed by variable name, so workers
	// stay stateless and a streamed single-tensor push advances exactly that
	// tensor's state.
	Optimizer string
	// Obs, when non-nil, is the registry the server resolves its metrics
	// in (cmd/janusps shares one with its HTTP exposition). Nil gives the
	// server a private registry.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.LR == 0 {
		c.LR = 0.1
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	return c
}

// Transport is the wire abstraction between a Worker and the parameter
// server. The Server itself implements it (in-process transport for the
// Cluster harness and tests); Client implements it over HTTP+JSON against a
// cmd/janusps process.
type Transport interface {
	// NumShards reports the server's shard count, so client-side placement
	// (vars.ShardOf) agrees with the server.
	NumShards() (int, error)
	// Pull fetches shard's parameters. have is the version from the caller's
	// previous pull: when the shard hasn't changed since, the server returns
	// (nil, have, step, nil) and the caller keeps its copy. Pass -1 to force
	// a full fetch. step is the freshest worker step clock the shard has
	// observed — free-running workers fast-forward their own clock to it on
	// every pull, so a laggard that re-pulls after ErrStale re-enters the
	// staleness window instead of being locked out forever. ctx carries
	// cancellation and the active obs.Trace: the in-process transport
	// records its spans directly into the caller's trace, the HTTP
	// transport propagates it in the Janus-Trace header and grafts the
	// server's span tree back under the RPC span.
	Pull(ctx context.Context, shard int, have int64) (params map[string]*tensor.Tensor, version, step int64, err error)
	// PushGrad applies one or more named gradients to shard. step is the
	// worker's step clock for the staleness check. Returns the shard version
	// after the update, or ErrStale. ctx as for Pull.
	PushGrad(ctx context.Context, shard int, step int64, grads map[string]*tensor.Tensor) (int64, error)
	// InitVars registers initial parameter values, set-if-absent. Every
	// worker calls it after building its replica; with a shared seed all
	// replicas propose identical values, so whichever lands first wins
	// without coordination.
	InitVars(vals map[string]*tensor.Tensor) error
}

// shard is one parameter partition: a vars.Store (copy-on-write updates, so
// pulled tensors are immutable and safe to hand out or serialize) plus its
// version and step clocks, all behind one mutex.
type shard struct {
	mu    sync.Mutex
	store *vars.Store
	opt   autodiff.Optimizer
	// version counts applied updates; pulls use it to skip unchanged fetches.
	version int64
	// maxStep is the freshest worker step clock observed on this shard.
	maxStep int64
}

// Stats is a point-in-time snapshot of server activity.
type Stats struct {
	Shards     int    `json:"shards"`
	Optimizer  string `json:"optimizer"`
	Vars       int    `json:"vars"`
	Params     int    `json:"params"`
	Pulls      int64  `json:"pulls"`
	PullsFresh int64  `json:"pulls_fresh"`
	Pushes     int64  `json:"pushes"`
	StaleDrops int64  `json:"stale_drops"`
	Version    int64  `json:"version"`
	MaxStep    int64  `json:"max_step"`
}

// Server is the sharded parameter server. It is safe for concurrent use;
// workers on different shards never contend.
type Server struct {
	cfg    Config
	shards []*shard

	obs     *obs.Registry
	metrics *metrics
}

// NewServer builds an empty parameter server. Each shard gets its own
// optimizer instance from Config.Optimizer — variable names partition across
// shards, so per-name optimizer state never collides.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{cfg: cfg, obs: reg, metrics: newMetrics(reg)}
	for i := 0; i < cfg.Shards; i++ {
		opt, err := autodiff.NewOptimizer(cfg.Optimizer, cfg.LR)
		if err != nil {
			return nil, fmt.Errorf("ps: %w", err)
		}
		s.shards = append(s.shards, &shard{
			store: vars.NewStore(),
			opt:   opt,
		})
	}
	return s, nil
}

// Config returns the server's effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Registry returns the server's metrics registry.
func (s *Server) Registry() *obs.Registry { return s.obs }

// LatencyQuantile reports the estimated q-quantile (0..1) of server-side
// handling latency in seconds, from the registry histograms; op is "push"
// or "pull" (anything else yields 0). Bench harnesses use it to put
// percentiles in their reports without scraping the text exposition.
func (s *Server) LatencyQuantile(op string, q float64) float64 {
	switch op {
	case "push":
		return s.metrics.pushLat.Quantile(q)
	case "pull":
		return s.metrics.pullLat.Quantile(q)
	}
	return 0
}

// NumShards implements Transport.
func (s *Server) NumShards() (int, error) { return s.cfg.Shards, nil }

func (s *Server) shardAt(i int) (*shard, error) {
	if i < 0 || i >= len(s.shards) {
		return nil, fmt.Errorf("ps: shard %d out of range (have %d)", i, len(s.shards))
	}
	return s.shards[i], nil
}

// Pull implements Transport.
func (s *Server) Pull(ctx context.Context, shardIdx int, have int64) (map[string]*tensor.Tensor, int64, int64, error) {
	sh, err := s.shardAt(shardIdx)
	if err != nil {
		return nil, 0, 0, err
	}
	sp := obs.StartSpan(ctx, "ps.pull")
	defer sp.End()
	t0 := time.Now()
	defer s.metrics.pullLat.Since(t0)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if have >= 0 && sh.version == have {
		s.metrics.pullsCached.Inc()
		return nil, sh.version, sh.maxStep, nil
	}
	s.metrics.pullsFresh.Inc()
	// ShardSnapshot with k=1 returns every variable in this shard's store;
	// tensors are copy-on-write so the map is safe to release unlocked.
	snap := sh.store.ShardSnapshot(0, 1)
	s.metrics.bytesPull.Add(tensorBytes(snap))
	return snap, sh.version, sh.maxStep, nil
}

// tensorBytes sizes a named-tensor payload (8 bytes per float64 element).
func tensorBytes(m map[string]*tensor.Tensor) int64 {
	var n int64
	for _, t := range m {
		n += int64(len(t.Data())) * 8
	}
	return n
}

// PushGrad implements Transport. Unknown variables are an error: gradients
// can only follow a successful InitVars.
func (s *Server) PushGrad(ctx context.Context, shardIdx int, step int64, grads map[string]*tensor.Tensor) (int64, error) {
	sh, err := s.shardAt(shardIdx)
	if err != nil {
		return 0, err
	}
	sp := obs.StartSpan(ctx, "ps.push")
	defer sp.End()
	t0 := time.Now()
	defer s.metrics.pushLat.Since(t0)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if lag := sh.maxStep - step; lag > 0 {
		s.metrics.staleness.Observe(float64(lag))
	} else {
		s.metrics.staleness.Observe(0)
	}
	if s.cfg.Staleness >= 0 && sh.maxStep-step > int64(s.cfg.Staleness) {
		s.metrics.staleDrops.Inc()
		return sh.version, fmt.Errorf("%w (step %d, freshest %d, bound %d)",
			ErrStale, step, sh.maxStep, s.cfg.Staleness)
	}
	scaled := make(map[string]*tensor.Tensor, len(grads))
	for name, g := range grads {
		cur, ok := sh.store.Get(name)
		if !ok {
			return sh.version, fmt.Errorf("ps: push for unregistered variable %q (InitVars first)", name)
		}
		if !tensor.SameShape(cur, g) {
			return sh.version, fmt.Errorf("ps: gradient shape %v for variable %q of shape %v",
				g.Shape(), name, cur.Shape())
		}
		scaled[name] = tensor.MulScalar(g, 1/float64(s.cfg.Workers))
	}
	osp := sp.Trace().StartSpanChild("opt_apply", sp.ID())
	sh.opt.Apply(sh.store, scaled)
	osp.End()
	sh.version++
	if step > sh.maxStep {
		sh.maxStep = step
	}
	s.metrics.pushes.Inc()
	s.metrics.bytesPush.Add(tensorBytes(grads))
	return sh.version, nil
}

// InitVars implements Transport: set-if-absent registration of initial
// values, each routed to its shard by name hash.
func (s *Server) InitVars(vals map[string]*tensor.Tensor) error {
	for name, t := range vals {
		sh := s.shards[vars.ShardOf(name, s.cfg.Shards)]
		t := t
		sh.mu.Lock()
		created := false
		sh.store.GetOrCreate(name, func() *tensor.Tensor { created = true; return t.Clone() })
		if created {
			sh.version++
		}
		sh.mu.Unlock()
	}
	return nil
}

// Stats snapshots server activity.
func (s *Server) Stats() Stats {
	st := Stats{
		Shards:     len(s.shards),
		Optimizer:  s.shards[0].opt.Name(),
		Pulls:      s.metrics.pullsFresh.Value() + s.metrics.pullsCached.Value(),
		PullsFresh: s.metrics.pullsFresh.Value(),
		Pushes:     s.metrics.pushes.Value(),
		StaleDrops: s.metrics.staleDrops.Value(),
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Vars += sh.store.Len()
		st.Params += sh.store.NumParams()
		st.Version += sh.version
		if sh.maxStep > st.MaxStep {
			st.MaxStep = sh.maxStep
		}
		sh.mu.Unlock()
	}
	return st
}
