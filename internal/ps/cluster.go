package ps

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
)

// ClusterConfig describes an in-process data-parallel training cluster: N
// worker replicas around one sharded parameter server, all in one binary —
// the harness behind `janusbench -dist` and the distributed tests.
type ClusterConfig struct {
	// Workers is the number of data-parallel replicas (default 1).
	Workers int
	// Shards is the server's shard count (default = Workers).
	Shards int
	// LR is the server-side learning rate (default 0.1).
	LR float64
	// Staleness is the server's step-staleness bound (see Config.Staleness).
	// Run barriers workers per round, so 0 (synchronous) never rejects;
	// RunAsync drives workers free-running, where the bound is load-bearing.
	Staleness int
	// Optimizer is the server-side update rule ("sgd" default, "momentum",
	// "adam"); see Config.Optimizer.
	Optimizer string
	// Engine configures every worker replica. Use one Seed for all replicas
	// so parameter initialization (and the synthetic datasets the models
	// derive from the same seed) agree across the cluster.
	Engine core.Config
	// Build wires a model into a worker's engine and returns its step
	// driver. Workers partition data by global batch index: worker w of N
	// executes indices r*N+w for round r, so N workers cover exactly the
	// batches a single engine would in N sequential steps.
	Build func(workerID int, e *core.Engine) (StepFunc, error)
}

// Cluster is a running in-process cluster.
type Cluster struct {
	cfg     ClusterConfig
	server  *Server
	workers []*Worker
}

// RunResult summarizes one training run.
type RunResult struct {
	// Rounds is how many global rounds ran; every worker took one step per
	// round, so Workers*Rounds local steps happened in total.
	Rounds int
	// Losses is the per-round mean training loss across workers.
	Losses []float64
	// Stale counts gradients rejected by the staleness bound.
	Stale int64
	// Elapsed is wall-clock time for the run.
	Elapsed time.Duration
}

// FinalLoss returns the last round's mean loss (NaN-free runs only).
func (r RunResult) FinalLoss() float64 {
	if len(r.Losses) == 0 {
		return 0
	}
	return r.Losses[len(r.Losses)-1]
}

// NewCluster builds the server and workers and bootstraps parameters.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Shards < 1 {
		cfg.Shards = cfg.Workers
	}
	server, err := NewServer(Config{
		Shards: cfg.Shards, LR: cfg.LR, Workers: cfg.Workers,
		Staleness: cfg.Staleness, Optimizer: cfg.Optimizer,
	})
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, server: server}
	return c, c.connect(server)
}

// NewClusterOver builds workers against an external server through the
// given transport (e.g. a Client against a cmd/janusps process). The
// transport's server must be configured for cfg.Workers replicas.
func NewClusterOver(t Transport, cfg ClusterConfig) (*Cluster, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	c := &Cluster{cfg: cfg}
	return c, c.connect(t)
}

func (c *Cluster) connect(t Transport) error {
	if c.cfg.Build == nil {
		return fmt.Errorf("ps: ClusterConfig.Build is required")
	}
	for i := 0; i < c.cfg.Workers; i++ {
		e := core.NewEngine(c.cfg.Engine)
		step, err := c.cfg.Build(i, e)
		if err != nil {
			return fmt.Errorf("ps: build worker %d: %w", i, err)
		}
		w, err := NewWorker(i, e, step, t)
		if err != nil {
			return err
		}
		// Sequential bootstrap: the first worker's init lands, the rest
		// verify against it and pull. All replicas share one seed, so every
		// proposal is identical and order doesn't matter.
		if err := w.Bootstrap(i); err != nil {
			return err
		}
		c.workers = append(c.workers, w)
	}
	return nil
}

// Server returns the in-process server (nil when built with NewClusterOver).
func (c *Cluster) Server() *Server { return c.server }

// Workers returns the cluster's workers.
func (c *Cluster) Workers() []*Worker { return c.workers }

// Run trains for `rounds` global rounds. Each round, every worker runs one
// local step concurrently on its slice of the data (worker w takes global
// batch index round*N+w); the harness barriers between rounds. Within a
// round, each worker's gradient pushes overlap its backprop — the real,
// measurable form of the overlap the analytical model assumes.
func (c *Cluster) Run(rounds int) (RunResult, error) {
	return c.RunCtx(context.Background(), rounds)
}

// RunCtx is Run under a context: the round barrier doubles as a cancellation
// point, so a canceled training run stops after a whole round — every
// worker's gradients for that round fully pushed, none of the next round
// started — leaving server parameters in a consistent state.
func (c *Cluster) RunCtx(ctx context.Context, rounds int) (RunResult, error) {
	n := len(c.workers)
	res := RunResult{Rounds: rounds}
	start := time.Now()
	losses := make([]float64, n)
	stale := make([]int64, n)
	errs := make([]error, n)
	for r := 0; r < rounds; r++ {
		if ctx.Err() != nil {
			res.Rounds = r
			res.Elapsed = time.Since(start)
			return res, core.CanceledErr(ctx)
		}
		var wg sync.WaitGroup
		for wi, w := range c.workers {
			wg.Add(1)
			go func(wi int, w *Worker) {
				defer wg.Done()
				losses[wi], stale[wi], errs[wi] = w.Step(r*n + wi)
			}(wi, w)
		}
		wg.Wait()
		mean := 0.0
		for wi := 0; wi < n; wi++ {
			if errs[wi] != nil {
				return res, fmt.Errorf("ps: round %d worker %d: %w", r, wi, errs[wi])
			}
			mean += losses[wi]
			res.Stale += stale[wi]
		}
		res.Losses = append(res.Losses, mean/float64(n))
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// AsyncResult summarizes one free-running training run.
type AsyncResult struct {
	// StepsPerWorker is how many local steps each worker ran.
	StepsPerWorker int
	// WorkerLosses is each worker's per-step training-loss trajectory.
	WorkerLosses [][]float64
	// Stale counts gradients the server rejected as stale (dropped, then
	// recovered by backoff + re-pull).
	Stale int64
	// Backoffs counts the backoff sleeps workers took after stale steps.
	Backoffs int64
	// Elapsed is wall-clock time for the run.
	Elapsed time.Duration
}

// TailMean smooths single-batch loss noise: the mean of the last few (four)
// values of a loss trajectory. Both the harness's FinalLoss and janusbench
// use it, so "final loss" means the same thing everywhere it is compared.
func TailMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tail := len(xs) - 4
	if tail < 0 {
		tail = 0
	}
	s := 0.0
	for _, x := range xs[tail:] {
		s += x
	}
	return s / float64(len(xs)-tail)
}

// FinalLoss returns the mean over workers of each worker's final-stretch
// loss (TailMean of its trajectory).
func (r AsyncResult) FinalLoss() float64 {
	sum, n := 0.0, 0
	for _, ls := range r.WorkerLosses {
		if len(ls) == 0 {
			continue
		}
		sum += TailMean(ls)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RunAsync trains free-running: every worker loops on its own goroutine —
// pull fresh shards, run one local step, stream gradients — with NO round
// barrier; the only synchronization is the shard-side step clock enforcing
// the staleness bound (a laggard's pushes get ErrStale, and the worker backs
// off and re-pulls rather than failing). Worker w covers global batch
// indices s*N+w, the same data a barriered run covers, just in free-running
// order. Cancellation stops each worker between its local steps.
func (c *Cluster) RunAsync(ctx context.Context, stepsPerWorker int) (AsyncResult, error) {
	n := len(c.workers)
	res := AsyncResult{StepsPerWorker: stepsPerWorker, WorkerLosses: make([][]float64, n)}
	start := time.Now()
	before := int64(0)
	for _, w := range c.workers {
		before += w.Stats().Backoffs
	}
	stales := make([]int64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for wi, w := range c.workers {
		wg.Add(1)
		go func(wi int, w *Worker) {
			defer wg.Done()
			res.WorkerLosses[wi], stales[wi], errs[wi] = w.RunFree(ctx, stepsPerWorker,
				func(s int) (float64, error) { return w.step(s*n + wi) })
		}(wi, w)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	// Finish the accounting before error checks, so a failed run still
	// reports the stale/backoff counts it accumulated.
	for wi := 0; wi < n; wi++ {
		res.Stale += stales[wi]
	}
	for _, w := range c.workers {
		res.Backoffs += w.Stats().Backoffs
	}
	res.Backoffs -= before
	for wi := 0; wi < n; wi++ {
		if errs[wi] != nil {
			return res, fmt.Errorf("ps: async worker %d: %w", wi, errs[wi])
		}
	}
	return res, nil
}
