package ps

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// ClusterConfig describes an in-process data-parallel training cluster: N
// worker replicas around one sharded parameter server, all in one binary —
// the harness behind `janusbench -dist` and the distributed tests.
type ClusterConfig struct {
	// Workers is the number of data-parallel replicas (default 1).
	Workers int
	// Shards is the server's shard count (default = Workers).
	Shards int
	// LR is the server-side learning rate (default 0.1).
	LR float64
	// Staleness is the server's step-staleness bound (see Config.Staleness).
	// Run barriers workers per round, so 0 (synchronous) never rejects;
	// RunAsync drives workers free-running, where the bound is load-bearing.
	Staleness int
	// Optimizer is the server-side update rule ("sgd" default, "momentum",
	// "adam"); see Config.Optimizer.
	Optimizer string
	// Engine configures every worker replica. Use one Seed for all replicas
	// so parameter initialization (and the synthetic datasets the models
	// derive from the same seed) agree across the cluster.
	Engine core.Config
	// Build wires a model into a worker's engine and returns its step
	// driver. Workers partition data by global batch index: worker w of N
	// executes indices r*N+w for round r, so N workers cover exactly the
	// batches a single engine would in N sequential steps.
	Build func(workerID int, e *core.Engine) (StepFunc, error)
	// LeaseTTL and SnapshotEvery forward to the server Config (see there);
	// churn runs shrink LeaseTTL so silent workers expire within the run.
	LeaseTTL      time.Duration
	SnapshotEvery int
	// Retry, when non-nil, wraps every worker's transport in a
	// RetryTransport under this policy. Required for churn runs — a dead
	// shard otherwise fails the first push that touches it.
	Retry *RetryPolicy
	// Faults, when non-nil, layers a seeded FaultInjector UNDER the retry
	// wrapper, so injected drops/dups/lost replies exercise retry and dedup
	// instead of failing the run.
	Faults *FaultPlan
}

// Cluster is a running in-process cluster.
type Cluster struct {
	cfg     ClusterConfig
	server  *Server
	workers []*Worker
	// retry/faults are the shared transport middlewares when the config
	// enables them (nil otherwise); churn results read their counters.
	retry  *RetryTransport
	faults *FaultInjector
}

// RunResult summarizes one training run.
type RunResult struct {
	// Rounds is how many global rounds ran; every worker took one step per
	// round, so Workers*Rounds local steps happened in total.
	Rounds int
	// Losses is the per-round mean training loss across workers.
	Losses []float64
	// Stale counts gradients rejected by the staleness bound.
	Stale int64
	// Elapsed is wall-clock time for the run.
	Elapsed time.Duration
}

// FinalLoss returns the last round's mean loss (NaN-free runs only).
func (r RunResult) FinalLoss() float64 {
	if len(r.Losses) == 0 {
		return 0
	}
	return r.Losses[len(r.Losses)-1]
}

// NewCluster builds the server and workers and bootstraps parameters.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Shards < 1 {
		cfg.Shards = cfg.Workers
	}
	server, err := NewServer(Config{
		Shards: cfg.Shards, LR: cfg.LR, Workers: cfg.Workers,
		Staleness: cfg.Staleness, Optimizer: cfg.Optimizer,
		LeaseTTL: cfg.LeaseTTL, SnapshotEvery: cfg.SnapshotEvery,
	})
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, server: server}
	return c, c.connect(server)
}

// NewClusterOver builds workers against an external server through the
// given transport (e.g. a Client against a cmd/janusps process). The
// transport's server must be configured for cfg.Workers replicas.
func NewClusterOver(t Transport, cfg ClusterConfig) (*Cluster, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	c := &Cluster{cfg: cfg}
	return c, c.connect(t)
}

func (c *Cluster) connect(t Transport) error {
	if c.cfg.Build == nil {
		return fmt.Errorf("ps: ClusterConfig.Build is required")
	}
	// Middleware order: worker → retry → fault injector → real transport,
	// so every injected transient fault is seen (and absorbed) by the
	// retry layer, exactly like a wire fault would be.
	var reg *obs.Registry
	if c.server != nil {
		reg = c.server.Registry()
	}
	if c.cfg.Faults != nil {
		c.faults = NewFaultInjector(t, *c.cfg.Faults, reg)
		t = c.faults
	}
	if c.cfg.Retry != nil {
		c.retry = NewRetryTransport(t, *c.cfg.Retry, reg)
		t = c.retry
	}
	for i := 0; i < c.cfg.Workers; i++ {
		e := core.NewEngine(c.cfg.Engine)
		step, err := c.cfg.Build(i, e)
		if err != nil {
			return fmt.Errorf("ps: build worker %d: %w", i, err)
		}
		w, err := NewWorker(i, e, step, t)
		if err != nil {
			return err
		}
		// Sequential bootstrap: the first worker's init lands, the rest
		// verify against it and pull. All replicas share one seed, so every
		// proposal is identical and order doesn't matter.
		if err := w.Bootstrap(i); err != nil {
			return err
		}
		c.workers = append(c.workers, w)
	}
	return nil
}

// Server returns the in-process server (nil when built with NewClusterOver).
func (c *Cluster) Server() *Server { return c.server }

// Workers returns the cluster's workers.
func (c *Cluster) Workers() []*Worker { return c.workers }

// Run trains for `rounds` global rounds. Each round, every worker runs one
// local step concurrently on its slice of the data (worker w takes global
// batch index round*N+w); the harness barriers between rounds. Within a
// round, each worker's gradient pushes overlap its backprop — the real,
// measurable form of the overlap the analytical model assumes.
func (c *Cluster) Run(rounds int) (RunResult, error) {
	return c.RunCtx(context.Background(), rounds)
}

// RunCtx is Run under a context: the round barrier doubles as a cancellation
// point, so a canceled training run stops after a whole round — every
// worker's gradients for that round fully pushed, none of the next round
// started — leaving server parameters in a consistent state.
func (c *Cluster) RunCtx(ctx context.Context, rounds int) (RunResult, error) {
	n := len(c.workers)
	res := RunResult{Rounds: rounds}
	start := time.Now()
	losses := make([]float64, n)
	stale := make([]int64, n)
	errs := make([]error, n)
	for r := 0; r < rounds; r++ {
		if ctx.Err() != nil {
			res.Rounds = r
			res.Elapsed = time.Since(start)
			return res, core.CanceledErr(ctx)
		}
		var wg sync.WaitGroup
		for wi, w := range c.workers {
			wg.Add(1)
			go func(wi int, w *Worker) {
				defer wg.Done()
				losses[wi], stale[wi], errs[wi] = w.Step(r*n + wi)
			}(wi, w)
		}
		wg.Wait()
		mean := 0.0
		for wi := 0; wi < n; wi++ {
			if errs[wi] != nil {
				return res, fmt.Errorf("ps: round %d worker %d: %w", r, wi, errs[wi])
			}
			mean += losses[wi]
			res.Stale += stale[wi]
		}
		res.Losses = append(res.Losses, mean/float64(n))
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// AsyncResult summarizes one free-running training run.
type AsyncResult struct {
	// StepsPerWorker is how many local steps each worker ran.
	StepsPerWorker int
	// WorkerLosses is each worker's per-step training-loss trajectory.
	WorkerLosses [][]float64
	// Stale counts gradients the server rejected as stale (dropped, then
	// recovered by backoff + re-pull).
	Stale int64
	// Backoffs counts the backoff sleeps workers took after stale steps.
	Backoffs int64
	// Elapsed is wall-clock time for the run.
	Elapsed time.Duration
}

// TailMean smooths single-batch loss noise: the mean of the last few (four)
// values of a loss trajectory. Both the harness's FinalLoss and janusbench
// use it, so "final loss" means the same thing everywhere it is compared.
func TailMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tail := len(xs) - 4
	if tail < 0 {
		tail = 0
	}
	s := 0.0
	for _, x := range xs[tail:] {
		s += x
	}
	return s / float64(len(xs)-tail)
}

// FinalLoss returns the mean over workers of each worker's final-stretch
// loss (TailMean of its trajectory).
func (r AsyncResult) FinalLoss() float64 {
	sum, n := 0.0, 0
	for _, ls := range r.WorkerLosses {
		if len(ls) == 0 {
			continue
		}
		sum += TailMean(ls)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RunAsync trains free-running: every worker loops on its own goroutine —
// pull fresh shards, run one local step, stream gradients — with NO round
// barrier; the only synchronization is the shard-side step clock enforcing
// the staleness bound (a laggard's pushes get ErrStale, and the worker backs
// off and re-pulls rather than failing). Worker w covers global batch
// indices s*N+w, the same data a barriered run covers, just in free-running
// order. Cancellation stops each worker between its local steps.
func (c *Cluster) RunAsync(ctx context.Context, stepsPerWorker int) (AsyncResult, error) {
	n := len(c.workers)
	res := AsyncResult{StepsPerWorker: stepsPerWorker, WorkerLosses: make([][]float64, n)}
	start := time.Now()
	before := int64(0)
	for _, w := range c.workers {
		before += w.Stats().Backoffs
	}
	stales := make([]int64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for wi, w := range c.workers {
		wg.Add(1)
		go func(wi int, w *Worker) {
			defer wg.Done()
			res.WorkerLosses[wi], stales[wi], errs[wi] = w.RunFree(ctx, stepsPerWorker,
				func(s int) (float64, error) { return w.step(s*n + wi) })
		}(wi, w)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	// Finish the accounting before error checks, so a failed run still
	// reports the stale/backoff counts it accumulated.
	for wi := 0; wi < n; wi++ {
		res.Stale += stales[wi]
	}
	for _, w := range c.workers {
		res.Backoffs += w.Stats().Backoffs
	}
	res.Backoffs -= before
	for wi := 0; wi < n; wi++ {
		if errs[wi] != nil {
			return res, fmt.Errorf("ps: async worker %d: %w", wi, errs[wi])
		}
	}
	return res, nil
}

// WorkerChurn schedules one worker's silent death and rejoin inside a churn
// run: after AtFrac of its local steps, the worker stops stepping AND
// heartbeating (as a crashed process would — no goodbye), stays dead for
// Down, then re-registers and runs its remaining steps. Down must exceed the
// server's lease TTL or the death is invisible to membership.
type WorkerChurn struct {
	Worker int
	AtFrac float64
	Down   time.Duration
}

// ShardChurn schedules one shard's death and failover: After the run starts
// (wall clock — shard death stalls every worker's progress, so step-count
// triggers would deadlock), the shard is killed; Down later a successor
// restores from the latest snapshot. The retry policy's total backoff
// capacity (Budget × Max) must comfortably exceed Down, or workers exhaust
// their budgets mid-outage and the run fails.
type ShardChurn struct {
	Shard int
	After time.Duration
	Down  time.Duration
}

// ChurnPlan is the kill schedule for RunAsyncChurn.
type ChurnPlan struct {
	Workers []WorkerChurn
	Shards  []ShardChurn
}

// ChurnResult extends AsyncResult with the fault ledger of a churn run.
type ChurnResult struct {
	AsyncResult
	// WorkerKills / WorkerRejoins count scheduled worker deaths and their
	// successful re-registrations.
	WorkerKills   int   `json:"worker_kills"`
	WorkerRejoins int   `json:"worker_rejoins"`
	ShardKills    int   `json:"shard_kills"`
	Failovers     int   `json:"shard_failovers"`
	LostUpdates   int64 `json:"lost_updates"`
	// Retries and LeaseExpiries are read from the cluster's transport and
	// server counters over the run.
	Retries       int64 `json:"retries"`
	LeaseExpiries int64 `json:"lease_expiries"`
	// Injected tallies injected faults by kind (nil without a FaultPlan).
	Injected map[string]int64 `json:"injected,omitempty"`
}

// RunAsyncChurn is RunAsync under a kill schedule: workers free-run with
// lease-based elastic data coverage while the plan kills and revives workers
// and shards mid-run. Each worker derives its global batch index from its
// live assignment (index = step*Live + Slot), so whenever membership
// changes, the survivors' coverage closes over the dead worker's slice —
// global batch coverage is preserved, not frozen at the initial membership.
// Requires an in-process server (NewCluster) and cfg.Retry; cfg.LeaseTTL
// should be well under every WorkerChurn.Down.
func (c *Cluster) RunAsyncChurn(ctx context.Context, stepsPerWorker int, plan ChurnPlan) (ChurnResult, error) {
	if c.server == nil {
		return ChurnResult{}, fmt.Errorf("ps: RunAsyncChurn needs an in-process server (NewCluster)")
	}
	if c.retry == nil {
		return ChurnResult{}, fmt.Errorf("ps: RunAsyncChurn needs ClusterConfig.Retry (a dead shard fails unretried pushes)")
	}
	n := len(c.workers)
	res := ChurnResult{AsyncResult: AsyncResult{StepsPerWorker: stepsPerWorker, WorkerLosses: make([][]float64, n)}}
	statsBefore := c.server.Stats()
	retriesBefore := c.retry.Total()
	backoffsBefore := int64(0)
	for _, w := range c.workers {
		backoffsBefore += w.Stats().Backoffs
	}
	start := time.Now()

	killByWorker := make(map[int]WorkerChurn, len(plan.Workers))
	for _, k := range plan.Workers {
		killByWorker[k.Worker] = k
	}

	var lostUpdates, shardKills, failovers atomic.Int64
	var churnWG sync.WaitGroup
	for _, sc := range plan.Shards {
		churnWG.Add(1)
		go func(sc ShardChurn) {
			defer churnWG.Done()
			select {
			case <-time.After(sc.After):
			case <-ctx.Done():
				return
			}
			if err := c.server.KillShard(sc.Shard); err != nil {
				return
			}
			shardKills.Add(1)
			// Unconditional sleep + failover: even a canceled run must not
			// leave the shard dead, or every later use of the server fails.
			time.Sleep(sc.Down)
			if lost, err := c.server.FailoverShard(sc.Shard); err == nil {
				failovers.Add(1)
				lostUpdates.Add(lost)
			}
		}(sc)
	}

	var workerKills, workerRejoins atomic.Int64
	stales := make([]int64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for wi, w := range c.workers {
		wg.Add(1)
		go func(wi int, w *Worker) {
			defer wg.Done()
			leaseCtx, cancelLease := context.WithCancel(ctx)
			defer func() { cancelLease() }()
			if _, err := w.Join(leaseCtx); err != nil {
				errs[wi] = err
				return
			}
			// Elastic data coverage: re-read the assignment every step, so
			// the index stream follows membership. done counts this worker's
			// completed local steps across segments.
			done := 0
			body := func(i int) (float64, error) {
				a, _ := w.Assignment()
				live := a.Live
				if live < 1 {
					live = n
				}
				return w.step((done+i)*live + a.Slot)
			}
			segment := func(steps int) ([]float64, int64, error) {
				losses, stale, err := w.RunFree(ctx, steps, body)
				done += len(losses)
				return losses, stale, err
			}
			kill, hasKill := killByWorker[wi]
			first := stepsPerWorker
			if hasKill {
				first = int(kill.AtFrac * float64(stepsPerWorker))
				if first < 1 {
					first = 1
				}
				if first > stepsPerWorker {
					first = stepsPerWorker
				}
			}
			losses, stale, err := segment(first)
			res.WorkerLosses[wi] = losses
			stales[wi] = stale
			if err != nil || !hasKill {
				errs[wi] = err
				return
			}
			// Silent death: heartbeats stop, the step loop stops, nothing is
			// deregistered. The server must notice via lease expiry.
			cancelLease()
			workerKills.Add(1)
			select {
			case <-time.After(kill.Down):
			case <-ctx.Done():
				return
			}
			leaseCtx2, cancelLease2 := context.WithCancel(ctx)
			defer cancelLease2()
			if _, err := w.Join(leaseCtx2); err != nil {
				errs[wi] = fmt.Errorf("ps: worker %d rejoin: %w", wi, err)
				return
			}
			workerRejoins.Add(1)
			losses, stale, err = segment(stepsPerWorker - first)
			res.WorkerLosses[wi] = append(res.WorkerLosses[wi], losses...)
			stales[wi] += stale
			errs[wi] = err
		}(wi, w)
	}
	wg.Wait()
	churnWG.Wait()
	res.Elapsed = time.Since(start)

	for wi := 0; wi < n; wi++ {
		res.Stale += stales[wi]
	}
	for _, w := range c.workers {
		res.Backoffs += w.Stats().Backoffs
	}
	res.Backoffs -= backoffsBefore
	res.WorkerKills = int(workerKills.Load())
	res.WorkerRejoins = int(workerRejoins.Load())
	res.ShardKills = int(shardKills.Load())
	res.Failovers = int(failovers.Load())
	res.LostUpdates = lostUpdates.Load()
	res.Retries = c.retry.Total() - retriesBefore
	res.LeaseExpiries = c.server.Stats().LeaseExpiries - statsBefore.LeaseExpiries
	if c.faults != nil {
		res.Injected = c.faults.Injected()
	}
	for wi := 0; wi < n; wi++ {
		if errs[wi] != nil {
			return res, fmt.Errorf("ps: churn worker %d: %w", wi, errs[wi])
		}
	}
	return res, nil
}
