package ps

import (
	"context"
	"testing"
	"time"
)

// TestClusterAsyncChurn is the CI churn smoke test: a 4-worker free-running
// cluster keeps converging while the plan kills and revives a worker (silent
// death → lease expiry → coverage redistribution → rejoin) and a shard
// (kill → snapshot failover), with light injected wire faults on top. Run
// under -race in CI.
func TestClusterAsyncChurn(t *testing.T) {
	const workers, batch = 4, 8
	steps := 40
	if testing.Short() {
		steps = 24
	}
	cfg := workerEngineConfig()
	cluster, err := NewCluster(ClusterConfig{
		Workers: workers, Shards: workers, LR: cfg.LR * workers,
		Staleness: 8, Engine: cfg, Build: mlpBuild(42, batch),
		LeaseTTL:      40 * time.Millisecond,
		SnapshotEvery: 4,
		Retry:         &RetryPolicy{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond, Budget: 20},
		Faults:        &FaultPlan{Seed: 11, LostReply: 0.02, Dup: 0.02, Delay: 0.03, MaxDelay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	plan := ChurnPlan{
		Workers: []WorkerChurn{{Worker: 1, AtFrac: 0.3, Down: 150 * time.Millisecond}},
		Shards:  []ShardChurn{{Shard: 1, After: 100 * time.Millisecond, Down: 50 * time.Millisecond}},
	}
	res, err := cluster.RunAsyncChurn(context.Background(), steps, plan)
	if err != nil {
		t.Fatalf("churn run: %v", err)
	}
	if res.WorkerKills != 1 || res.WorkerRejoins != 1 {
		t.Fatalf("worker churn = %d kills / %d rejoins, want 1/1", res.WorkerKills, res.WorkerRejoins)
	}
	if res.ShardKills != 1 || res.Failovers != 1 {
		t.Fatalf("shard churn = %d kills / %d failovers, want 1/1", res.ShardKills, res.Failovers)
	}
	if res.LeaseExpiries < 1 {
		t.Fatalf("lease expiries = %d, want >=1 (the dead worker must expire)", res.LeaseExpiries)
	}
	// Every worker completed its full step count despite the churn.
	for wi, losses := range res.WorkerLosses {
		if len(losses) != steps {
			t.Fatalf("worker %d ran %d/%d steps", wi, len(losses), steps)
		}
	}
	first := res.WorkerLosses[0][0]
	final := res.FinalLoss()
	if final >= first*0.8 {
		t.Fatalf("no convergence under churn: first %.4f, final %.4f", first, final)
	}
	st := cluster.Server().Stats()
	if st.DownShards != 0 {
		t.Fatalf("run left %d shards down", st.DownShards)
	}
}
