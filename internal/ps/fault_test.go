package ps

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/tensor"
)

// newTestServer builds a server with churn-friendly timing for fault tests.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return s
}

func TestLeaseExpiryRedistributesCoverage(t *testing.T) {
	s := newTestServer(t, Config{LeaseTTL: time.Hour})
	// Inject a fake clock so the test controls expiry, not the scheduler.
	now := time.Unix(0, 0)
	s.members.now = func() time.Time { return now }

	ctx := context.Background()
	l0, err := s.Register(ctx, 0)
	if err != nil {
		t.Fatalf("register 0: %v", err)
	}
	l1, err := s.Register(ctx, 1)
	if err != nil {
		t.Fatalf("register 1: %v", err)
	}
	if l1.Live != 2 {
		t.Fatalf("live after two registrations = %d, want 2", l1.Live)
	}
	a0, err := s.Heartbeat(ctx, 0, l0.ID)
	if err != nil {
		t.Fatalf("heartbeat 0: %v", err)
	}
	if a0.Slot != 0 || a0.Live != 2 {
		t.Fatalf("worker 0 assignment = %+v, want slot 0 of 2", a0)
	}

	// Worker 1 goes silent past the TTL; worker 0 keeps heartbeating.
	now = now.Add(30 * time.Minute)
	if _, err := s.Heartbeat(ctx, 0, l0.ID); err != nil {
		t.Fatalf("heartbeat 0 mid-ttl: %v", err)
	}
	now = now.Add(45 * time.Minute) // worker 1's lease is now 75min old
	a0, err = s.Heartbeat(ctx, 0, l0.ID)
	if err != nil {
		t.Fatalf("heartbeat 0 after expiry: %v", err)
	}
	if a0.Slot != 0 || a0.Live != 1 {
		t.Fatalf("post-expiry assignment = %+v, want slot 0 of 1 (coverage closed over dead worker)", a0)
	}
	if _, err := s.Heartbeat(ctx, 1, l1.ID); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("expired worker heartbeat error = %v, want ErrLeaseExpired", err)
	}
	st := s.Stats()
	if st.LeaseExpiries != 1 || st.LiveWorkers != 1 || st.Rebalances < 3 {
		t.Fatalf("stats = %+v, want 1 expiry, 1 live, >=3 rebalances", st)
	}

	// The dead worker rejoins: fresh lease, coverage reopens to 2 slots.
	l1b, err := s.Register(ctx, 1)
	if err != nil {
		t.Fatalf("re-register 1: %v", err)
	}
	if l1b.ID == l1.ID || l1b.Live != 2 || l1b.Slot != 1 {
		t.Fatalf("rejoin lease = %+v, want fresh ID, slot 1 of 2", l1b)
	}
}

func TestRegisterSupersedesLease(t *testing.T) {
	s := newTestServer(t, Config{LeaseTTL: time.Hour})
	ctx := context.Background()
	l1, _ := s.Register(ctx, 7)
	l2, err := s.Register(ctx, 7)
	if err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if _, err := s.Heartbeat(ctx, 7, l1.ID); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("superseded lease heartbeat error = %v, want ErrLeaseExpired", err)
	}
	if a, err := s.Heartbeat(ctx, 7, l2.ID); err != nil || a.Live != 1 {
		t.Fatalf("new lease heartbeat = %+v, %v; want live=1, nil", a, err)
	}
}

func TestDuplicatePushAppliedOnce(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx := context.Background()
	if err := s.InitVars(ctx, map[string]*tensor.Tensor{"w": tensor.Zeros(2)}); err != nil {
		t.Fatalf("init: %v", err)
	}
	g := map[string]*tensor.Tensor{"w": tensor.New([]int{2}, []float64{1, 1})}
	v1, err := s.PushGrad(ctx, 0, 3, 1, g)
	if err != nil {
		t.Fatalf("push: %v", err)
	}
	w1, _, _, _ := s.Pull(ctx, 0, -1)
	// The retry of the same logical push (worker 3, step 1) must be
	// acknowledged without a second application.
	v2, err := s.PushGrad(ctx, 0, 3, 1, g)
	if err != nil {
		t.Fatalf("duplicate push: %v", err)
	}
	if v2 != v1 {
		t.Fatalf("duplicate push advanced version %d -> %d", v1, v2)
	}
	w2, _, _, _ := s.Pull(ctx, 0, -1)
	if w1["w"].Data()[0] != w2["w"].Data()[0] {
		t.Fatalf("duplicate push changed parameter %g -> %g", w1["w"].Data()[0], w2["w"].Data()[0])
	}
	if st := s.Stats(); st.DupDrops != 1 {
		t.Fatalf("DupDrops = %d, want 1", st.DupDrops)
	}
	// A NEW step from the same worker must still apply.
	if v3, err := s.PushGrad(ctx, 0, 3, 2, g); err != nil || v3 != v1+1 {
		t.Fatalf("next step push = (%d, %v), want version %d", v3, err, v1+1)
	}
	// An anonymous push (worker -1) opts out of dedup entirely.
	if v4, err := s.PushGrad(ctx, 0, -1, 2, g); err != nil || v4 != v1+2 {
		t.Fatalf("anonymous push = (%d, %v), want version %d", v4, err, v1+2)
	}
}

func TestShardKillFailoverRestoresSnapshot(t *testing.T) {
	s := newTestServer(t, Config{SnapshotEvery: 2, Optimizer: "momentum", LR: 0.5})
	ctx := context.Background()
	if err := s.InitVars(ctx, map[string]*tensor.Tensor{"w": tensor.Zeros(2)}); err != nil {
		t.Fatalf("init: %v", err)
	}
	g := map[string]*tensor.Tensor{"w": tensor.New([]int{2}, []float64{1, 1})}
	for step := int64(1); step <= 5; step++ {
		if _, err := s.PushGrad(ctx, 0, 0, step, g); err != nil {
			t.Fatalf("push %d: %v", step, err)
		}
	}
	// SnapshotEvery=2 → latest snapshot at version 4 (plus the InitVars one);
	// push 5 happened after it and will be rolled back.
	snapParams, _, _, _ := s.Pull(ctx, 0, -1)
	_ = snapParams
	if err := s.KillShard(0); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if _, _, _, err := s.Pull(ctx, 0, -1); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("pull on dead shard = %v, want ErrUnavailable", err)
	}
	if _, err := s.PushGrad(ctx, 0, 0, 6, g); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("push on dead shard = %v, want ErrUnavailable", err)
	}
	lost, err := s.FailoverShard(0)
	if err != nil {
		t.Fatalf("failover: %v", err)
	}
	if lost != 1 {
		t.Fatalf("lost updates = %d, want 1 (the push after the last snapshot)", lost)
	}
	params, version, _, err := s.Pull(ctx, 0, -1)
	if err != nil {
		t.Fatalf("pull after failover: %v", err)
	}
	if version != 5 { // init (1) + 4 applied pushes retained
		t.Fatalf("restored version = %d, want 5", version)
	}
	// Momentum restored: the next push must continue the velocity trajectory,
	// not restart from zero. With µ=0.9, after 4 unit pushes velocity is
	// 1+.9+.81+.729; the 5th update must subtract lr*(0.9*v4+1).
	before := params["w"].Data()[0]
	if _, err := s.PushGrad(ctx, 0, 0, 6, g); err != nil {
		t.Fatalf("push after failover: %v", err)
	}
	after, _, _, _ := s.Pull(ctx, 0, -1)
	v4 := 1 + 0.9 + 0.81 + 0.729
	wantDelta := -0.5 * (0.9*v4 + 1)
	if got := after["w"].Data()[0] - before; !closeTo(got, wantDelta, 1e-9) {
		t.Fatalf("post-failover update delta = %g, want %g (momentum state restored)", got, wantDelta)
	}
	// The dedup ledger survived the failover: retrying an already-applied
	// pre-snapshot step is still dropped.
	vNow, _ := s.PushGrad(ctx, 0, 0, 3, g)
	if vAfter, _ := s.PushGrad(ctx, 0, 0, 3, g); vAfter != vNow {
		t.Fatalf("pre-snapshot dup applied after failover")
	}
	if st := s.Stats(); st.Failovers != 1 || st.DownShards != 0 {
		t.Fatalf("stats = %+v, want 1 failover, 0 down", st)
	}
}

func closeTo(a, b, eps float64) bool {
	d := a - b
	return d < eps && d > -eps
}

// unavailableTransport always fails retryably; it counts calls.
type unavailableTransport struct {
	calls atomic.Int64
}

func (u *unavailableTransport) NumShards() (int, error) { return 1, nil }
func (u *unavailableTransport) Pull(context.Context, int, int64) (map[string]*tensor.Tensor, int64, int64, error) {
	u.calls.Add(1)
	return nil, 0, 0, UnavailableErr("always down")
}
func (u *unavailableTransport) PushGrad(context.Context, int, int, int64, map[string]*tensor.Tensor) (int64, error) {
	u.calls.Add(1)
	return 0, UnavailableErr("always down")
}
func (u *unavailableTransport) InitVars(context.Context, map[string]*tensor.Tensor) error {
	u.calls.Add(1)
	return UnavailableErr("always down")
}
func (u *unavailableTransport) Register(context.Context, int) (Lease, error) {
	u.calls.Add(1)
	return Lease{}, UnavailableErr("always down")
}
func (u *unavailableTransport) Heartbeat(context.Context, int, int64) (Assignment, error) {
	u.calls.Add(1)
	return Assignment{}, UnavailableErr("always down")
}

func TestRetryBudgetExhaustionReturnsSentinel(t *testing.T) {
	inner := &unavailableTransport{}
	rt := NewRetryTransport(inner, RetryPolicy{
		Budget: 3, Base: 50 * time.Microsecond, Max: 200 * time.Microsecond,
	}, nil)
	_, _, _, err := rt.Pull(context.Background(), 0, -1)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("budget exhaustion error = %v, want it to wrap ErrUnavailable", err)
	}
	if got := inner.calls.Load(); got != 4 { // 1 attempt + 3 retries
		t.Fatalf("attempts = %d, want 4", got)
	}
	if rt.Total() != 3 {
		t.Fatalf("retries counted = %d, want 3", rt.Total())
	}
}

func TestRetryDoesNotRetryPermanentErrors(t *testing.T) {
	s := newTestServer(t, Config{Staleness: 0})
	ctx := context.Background()
	if err := s.InitVars(ctx, map[string]*tensor.Tensor{"w": tensor.Zeros(1)}); err != nil {
		t.Fatalf("init: %v", err)
	}
	rt := NewRetryTransport(s, RetryPolicy{Budget: 5}, nil)
	g := map[string]*tensor.Tensor{"w": tensor.New([]int{1}, []float64{1})}
	if _, err := rt.PushGrad(ctx, 0, 0, 10, g); err != nil {
		t.Fatalf("push: %v", err)
	}
	// A staleness rejection is permanent for this attempt — no retries.
	if _, err := rt.PushGrad(ctx, 0, 0, 2, g); !errors.Is(err, ErrStale) {
		t.Fatalf("stale push error = %v, want ErrStale", err)
	}
	if rt.Total() != 0 {
		t.Fatalf("retries = %d, want 0 (ErrStale must not be retried)", rt.Total())
	}
}

func TestRetryRidesOutShardFailover(t *testing.T) {
	s := newTestServer(t, Config{SnapshotEvery: 1})
	ctx := context.Background()
	if err := s.InitVars(ctx, map[string]*tensor.Tensor{"w": tensor.Zeros(1)}); err != nil {
		t.Fatalf("init: %v", err)
	}
	if err := s.KillShard(0); err != nil {
		t.Fatalf("kill: %v", err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		if _, err := s.FailoverShard(0); err != nil {
			t.Errorf("failover: %v", err)
		}
	}()
	rt := NewRetryTransport(s, RetryPolicy{Budget: 30, Base: 2 * time.Millisecond, Max: 10 * time.Millisecond}, nil)
	if _, _, _, err := rt.Pull(ctx, 0, -1); err != nil {
		t.Fatalf("pull through failover = %v, want success via retries", err)
	}
	if rt.Total() == 0 {
		t.Fatalf("expected at least one retry while the shard was down")
	}
}

func TestFaultInjectorDeterminism(t *testing.T) {
	plan := FaultPlan{Seed: 7, Drop: 0.2, Err: 0.1, LostReply: 0.1, Dup: 0.1, Delay: 0.1, MaxDelay: time.Microsecond}
	sequence := func() []string {
		s := newTestServer(t, Config{})
		_ = s.InitVars(context.Background(), map[string]*tensor.Tensor{"w": tensor.Zeros(1)})
		fi := NewFaultInjector(s, plan, nil)
		var kinds []string
		for i := 0; i < 200; i++ {
			before := fi.Injected()
			fi.Pull(context.Background(), 0, -1)
			after := fi.Injected()
			kind := "none"
			for k, v := range after {
				if v > before[k] {
					kind = k
				}
			}
			kinds = append(kinds, kind)
		}
		return kinds
	}
	a, b := sequence(), sequence()
	injected := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequence diverged at call %d: %q vs %q", i, a[i], b[i])
		}
		if a[i] != "none" {
			injected++
		}
	}
	if injected == 0 {
		t.Fatalf("plan injected no faults in 200 calls")
	}
}

func TestLostReplyDedupOverFaultInjector(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx := context.Background()
	if err := s.InitVars(ctx, map[string]*tensor.Tensor{"w": tensor.Zeros(1)}); err != nil {
		t.Fatalf("init: %v", err)
	}
	// Every RPC loses its reply after applying: each push is applied, errors,
	// is retried, and the retry must be deduplicated — the parameter must
	// move exactly once per logical push.
	fi := NewFaultInjector(s, FaultPlan{LostReply: 1}, nil)
	rt := NewRetryTransport(fi, RetryPolicy{Budget: 1, Base: 10 * time.Microsecond, Max: 20 * time.Microsecond}, nil)
	g := map[string]*tensor.Tensor{"w": tensor.New([]int{1}, []float64{1})}
	// Budget 1: attempt (applied, reply lost) + retry (deduplicated, reply
	// lost again) → budget exhausted, error surfaces. The push still landed
	// exactly once.
	_, err := rt.PushGrad(ctx, 0, 0, 1, g)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("push = %v, want budget-exhausted ErrUnavailable", err)
	}
	st := s.Stats()
	if st.Pushes != 1 || st.DupDrops != 1 {
		t.Fatalf("pushes=%d dupDrops=%d, want exactly one application and one dedup", st.Pushes, st.DupDrops)
	}
	params, _, _, _ := s.Pull(ctx, 0, -1)
	if got := params["w"].Item(); got != -0.1 { // one SGD step, lr 0.1, grad 1
		t.Fatalf("param = %g, want -0.1 (exactly one application)", got)
	}
}

func TestLeaseLifecycleOverHTTP(t *testing.T) {
	s := newTestServer(t, Config{LeaseTTL: 50 * time.Millisecond})
	hs := httptest.NewServer(NewHandler(s))
	defer hs.Close()
	c := NewClient(hs.URL, nil)
	ctx := context.Background()

	l0, err := c.Register(ctx, 0)
	if err != nil {
		t.Fatalf("register 0: %v", err)
	}
	if l0.TTL != 50*time.Millisecond {
		t.Fatalf("TTL over the wire = %v, want 50ms", l0.TTL)
	}
	l1, err := c.Register(ctx, 1)
	if err != nil {
		t.Fatalf("register 1: %v", err)
	}
	if l1.Slot != 1 || l1.Live != 2 {
		t.Fatalf("lease 1 = %+v, want slot 1 of 2", l1)
	}

	// Worker 1 goes silent; worker 0 heartbeats until coverage closes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		a, err := c.Heartbeat(ctx, 0, l0.ID)
		if err != nil {
			t.Fatalf("heartbeat 0: %v", err)
		}
		if a.Live == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker 1 never expired (live still %d)", a.Live)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := c.Heartbeat(ctx, 1, l1.ID); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("expired heartbeat over HTTP = %v, want ErrLeaseExpired", err)
	}
	// Rejoin over the wire.
	l1b, err := c.Register(ctx, 1)
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if l1b.Live != 2 {
		t.Fatalf("rejoin live = %d, want 2", l1b.Live)
	}
}

func TestShardFailoverOverHTTP(t *testing.T) {
	s := newTestServer(t, Config{SnapshotEvery: 1})
	hs := httptest.NewServer(NewHandler(s))
	defer hs.Close()
	c := NewClient(hs.URL, nil)
	ctx := context.Background()

	if err := c.InitVars(ctx, map[string]*tensor.Tensor{"w": tensor.Zeros(1)}); err != nil {
		t.Fatalf("init: %v", err)
	}
	g := map[string]*tensor.Tensor{"w": tensor.New([]int{1}, []float64{1})}
	if _, err := c.PushGrad(ctx, 0, 0, 1, g); err != nil {
		t.Fatalf("push: %v", err)
	}
	if err := c.KillShard(ctx, 0); err != nil {
		t.Fatalf("kill over HTTP: %v", err)
	}
	if _, _, _, err := c.Pull(ctx, 0, -1); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("pull on dead shard over HTTP = %v, want ErrUnavailable (503 mapping)", err)
	}
	lost, err := c.FailoverShard(ctx, 0)
	if err != nil {
		t.Fatalf("failover over HTTP: %v", err)
	}
	if lost != 0 { // SnapshotEvery=1: every push snapshotted, nothing lost
		t.Fatalf("lost = %d, want 0", lost)
	}
	params, _, _, err := c.Pull(ctx, 0, -1)
	if err != nil {
		t.Fatalf("pull after failover: %v", err)
	}
	if got := params["w"].Item(); got != -0.1 {
		t.Fatalf("restored param = %g, want -0.1", got)
	}
}
