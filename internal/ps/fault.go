package ps

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// faultKinds names every injectable fault; the list doubles as the eager
// label set for janus_ps_faults_injected_total.
var faultKinds = []string{"drop", "error", "lostreply", "dup", "delay"}

// FaultPlan configures a FaultInjector. Each field is a per-RPC probability
// in [0,1]; at most one fault fires per call (the probabilities are
// evaluated as disjoint slices of a single uniform roll, so their sum must
// stay <= 1). The zero plan injects nothing.
type FaultPlan struct {
	// Seed fixes the fault stream. 0 means seed 1: every run of the same
	// plan over the same call sequence injects the same faults.
	Seed int64
	// Drop loses the request before the server sees it (call not made).
	Drop float64
	// Err fails the request with a transient server error (call not made).
	// Indistinguishable from Drop at the client; kept separate so counters
	// attribute the two sides of the wire.
	Err float64
	// LostReply applies the RPC on the server, then loses the reply — the
	// client sees a transient error for work that HAPPENED. The retry it
	// provokes is exactly what the PushGrad dedup ledger must absorb.
	LostReply float64
	// Dup sends the RPC twice back-to-back (reply of the second wins).
	Dup float64
	// Delay stalls the RPC U[0, MaxDelay) before sending.
	Delay float64
	// MaxDelay bounds injected delays. <=0 means 5ms.
	MaxDelay time.Duration
}

// FaultInjector is a Transport middleware that deterministically injects
// drops, transient errors, lost replies, duplicates, and delays, seeded by
// FaultPlan.Seed. Layer it UNDER a RetryTransport (retry wraps injector
// wraps the real transport) so injected transient faults exercise the retry
// and dedup machinery rather than failing the run.
type FaultInjector struct {
	inner Transport
	plan  FaultPlan

	mu  sync.Mutex
	rng *rand.Rand

	counts map[string]*obs.Counter
}

// NewFaultInjector wraps inner under plan. reg receives
// janus_ps_faults_injected_total{kind}; nil uses a private registry.
func NewFaultInjector(inner Transport, plan FaultPlan, reg *obs.Registry) *FaultInjector {
	if plan.Seed == 0 {
		plan.Seed = 1
	}
	if plan.MaxDelay <= 0 {
		plan.MaxDelay = 5 * time.Millisecond
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	fi := &FaultInjector{
		inner:  inner,
		plan:   plan,
		rng:    rand.New(rand.NewSource(plan.Seed)),
		counts: make(map[string]*obs.Counter, len(faultKinds)),
	}
	for _, kind := range faultKinds {
		fi.counts[kind] = reg.Counter("janus_ps_faults_injected_total", helpFaults, "kind", kind)
	}
	return fi
}

// Injected returns how many faults of each kind have fired so far.
func (fi *FaultInjector) Injected() map[string]int64 {
	out := make(map[string]int64, len(fi.counts))
	for kind, c := range fi.counts {
		out[kind] = int64(c.Value())
	}
	return out
}

// roll picks at most one fault for the next RPC and a delay amount if the
// fault is a delay.
func (fi *FaultInjector) roll() (kind string, delay time.Duration) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	r := fi.rng.Float64()
	for _, slice := range []struct {
		kind string
		p    float64
	}{
		{"drop", fi.plan.Drop},
		{"error", fi.plan.Err},
		{"lostreply", fi.plan.LostReply},
		{"dup", fi.plan.Dup},
		{"delay", fi.plan.Delay},
	} {
		if r < slice.p {
			if slice.kind == "delay" {
				delay = time.Duration(fi.rng.Int63n(int64(fi.plan.MaxDelay)))
			}
			return slice.kind, delay
		}
		r -= slice.p
	}
	return "", 0
}

// inject runs fn under one rolled fault. fn is the real RPC; it may run
// zero times (drop, error), once (none, delay, lostreply), or twice (dup).
func (fi *FaultInjector) inject(ctx context.Context, fn func(context.Context) error) error {
	kind, delay := fi.roll()
	if kind != "" {
		fi.counts[kind].Inc()
	}
	switch kind {
	case "drop":
		return UnavailableErr("injected drop")
	case "error":
		return UnavailableErr("injected transient error")
	case "lostreply":
		if err := fn(ctx); err != nil {
			return err
		}
		return UnavailableErr("injected lost reply")
	case "dup":
		if err := fn(ctx); err != nil {
			return err
		}
		return fn(ctx)
	case "delay":
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
		return fn(ctx)
	default:
		return fn(ctx)
	}
}

// NumShards implements Transport (exempt from fault injection: it is
// configuration discovery, not a training-path RPC).
func (fi *FaultInjector) NumShards() (int, error) { return fi.inner.NumShards() }

// Pull implements Transport.
func (fi *FaultInjector) Pull(ctx context.Context, shard int, have int64) (map[string]*tensor.Tensor, int64, int64, error) {
	var params map[string]*tensor.Tensor
	var version, step int64
	err := fi.inject(ctx, func(c context.Context) error {
		var e error
		params, version, step, e = fi.inner.Pull(c, shard, have)
		return e
	})
	return params, version, step, err
}

// PushGrad implements Transport.
func (fi *FaultInjector) PushGrad(ctx context.Context, shard, worker int, step int64, grads map[string]*tensor.Tensor) (int64, error) {
	var version int64
	err := fi.inject(ctx, func(c context.Context) error {
		var e error
		version, e = fi.inner.PushGrad(c, shard, worker, step, grads)
		return e
	})
	return version, err
}

// InitVars implements Transport.
func (fi *FaultInjector) InitVars(ctx context.Context, vals map[string]*tensor.Tensor) error {
	return fi.inject(ctx, func(c context.Context) error {
		return fi.inner.InitVars(c, vals)
	})
}

// Register implements Transport.
func (fi *FaultInjector) Register(ctx context.Context, worker int) (Lease, error) {
	var lease Lease
	err := fi.inject(ctx, func(c context.Context) error {
		var e error
		lease, e = fi.inner.Register(c, worker)
		return e
	})
	return lease, err
}

// Heartbeat implements Transport.
func (fi *FaultInjector) Heartbeat(ctx context.Context, worker int, lease int64) (Assignment, error) {
	var a Assignment
	err := fi.inject(ctx, func(c context.Context) error {
		var e error
		a, e = fi.inner.Heartbeat(c, worker, lease)
		return e
	})
	return a, err
}
