package ps

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tensor"
)

// slowedBuild wraps mlpBuild so one worker sleeps per step — a reliable
// laggard under free-running execution.
func slowedBuild(seed uint64, batch, slowWorker int, delay time.Duration) func(int, *core.Engine) (StepFunc, error) {
	inner := mlpBuild(seed, batch)
	return func(id int, e *core.Engine) (StepFunc, error) {
		step, err := inner(id, e)
		if err != nil || id != slowWorker {
			return step, err
		}
		return func(i int) (float64, error) {
			time.Sleep(delay)
			return step(i)
		}, nil
	}
}

// TestClusterAsyncSmoke is the CI async smoke test: a 2-worker free-running
// cluster makes training progress with no round barrier (run under -race).
func TestClusterAsyncSmoke(t *testing.T) {
	cfg := workerEngineConfig()
	cluster, err := NewCluster(ClusterConfig{
		Workers: 2, Shards: 2, LR: cfg.LR, Staleness: 4, Engine: cfg,
		Build: mlpBuild(42, 8),
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	res, err := cluster.RunAsync(context.Background(), 10)
	if err != nil {
		t.Fatalf("async run: %v", err)
	}
	first := res.WorkerLosses[0][0]
	if final := res.FinalLoss(); final >= first {
		t.Fatalf("no free-running training progress: first %.4f, final %.4f", first, final)
	}
	ws := cluster.Workers()[0].Stats()
	if ws.Pushes == 0 || ws.PullsFresh == 0 {
		t.Fatalf("worker exchanged no parameters: %+v", ws)
	}
}

// TestAsyncConvergesNearBarriered is the tentpole acceptance check: a
// 4-worker free-running cluster under staleness bound 2 converges to within
// 10% of the barriered run's final loss on the same data.
func TestAsyncConvergesNearBarriered(t *testing.T) {
	const workers, batch = 4, 8
	rounds := 50
	if testing.Short() {
		rounds = 25
	}
	cfg := workerEngineConfig()
	mk := func(staleness int) *Cluster {
		t.Helper()
		cluster, err := NewCluster(ClusterConfig{
			Workers: workers, Shards: 4, LR: cfg.LR * workers,
			Staleness: staleness, Engine: cfg, Build: mlpBuild(42, batch),
		})
		if err != nil {
			t.Fatalf("cluster: %v", err)
		}
		return cluster
	}

	sync := mk(0)
	syncRes, err := sync.Run(rounds)
	if err != nil {
		t.Fatalf("barriered run: %v", err)
	}
	barrierFinal := mean(syncRes.Losses[len(syncRes.Losses)-4:])

	async := mk(2)
	asyncRes, err := async.RunAsync(context.Background(), rounds)
	if err != nil {
		t.Fatalf("async run: %v", err)
	}
	asyncFinal := asyncRes.FinalLoss()

	t.Logf("barriered final %.4f; async(staleness 2) final %.4f; stale %d, backoffs %d, elapsed %v",
		barrierFinal, asyncFinal, asyncRes.Stale, asyncRes.Backoffs, asyncRes.Elapsed)
	first := syncRes.Losses[0]
	if asyncFinal >= first*0.7 {
		t.Fatalf("async cluster did not train: initial %.4f, final %.4f", first, asyncFinal)
	}
	// Acceptance bar: within 10% of the barriered final loss (plus a small
	// absolute epsilon so single-batch noise near zero cannot flake).
	if asyncFinal > barrierFinal*1.10+0.02 {
		t.Fatalf("async converged too far from barriered: barriered %.4f, async %.4f",
			barrierFinal, asyncFinal)
	}
}

// TestAsyncSlowWorkerStalenessContention: a deliberately slow worker under a
// tight staleness bound has its late pushes rejected (ErrStale), backs off,
// and re-pulls — and the cluster still converges. The laggard re-enters the
// staleness window on every re-pull instead of erroring out or lagging
// forever.
func TestAsyncSlowWorkerStalenessContention(t *testing.T) {
	const workers, batch = 3, 8
	steps := 30
	if testing.Short() {
		steps = 15
	}
	cfg := workerEngineConfig()
	cluster, err := NewCluster(ClusterConfig{
		Workers: workers, Shards: 2, LR: cfg.LR * workers,
		Staleness: 0, Engine: cfg,
		Build: slowedBuild(42, batch, 0, 2*time.Millisecond),
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	res, err := cluster.RunAsync(context.Background(), steps)
	if err != nil {
		t.Fatalf("async run with laggard: %v", err)
	}
	slow := cluster.Workers()[0].Stats()
	t.Logf("laggard stats: %+v; cluster stale %d, backoffs %d", slow, res.Stale, res.Backoffs)
	if res.Stale == 0 {
		t.Fatalf("tight bound with a laggard produced no stale rejections: %+v", res)
	}
	if slow.Backoffs == 0 {
		t.Fatalf("laggard never backed off: %+v", slow)
	}
	// The laggard recovered: it completed all its steps and kept landing
	// pushes after re-pulls (not every gradient it streamed was dropped).
	if slow.Steps != int64(steps) {
		t.Fatalf("laggard completed %d/%d steps", slow.Steps, steps)
	}
	if slow.Pushes == 0 {
		t.Fatalf("every laggard push was dropped — re-pull did not re-enter the window: %+v", slow)
	}
	first := res.WorkerLosses[1][0]
	if final := res.FinalLoss(); final >= first*0.8 {
		t.Fatalf("cluster with laggard did not converge: first %.4f, final %.4f", first, final)
	}
}

// TestAsyncOverHTTPStaleRoundTrip proves the async-path staleness protocol
// over the real HTTP transport, deterministically: while a worker's step is
// executing (after its pull), a "fresher replica" (a raw client) advances
// the shard's step clock far past the bound, so the worker's streamed
// pushes for that step come back as 409s. The worker must record them as
// stale drops (the errors.Is(ErrStale) round trip), not fail the step — and
// its next pull must fast-forward its clock so subsequent pushes land.
func TestAsyncOverHTTPStaleRoundTrip(t *testing.T) {
	server := mustServer(t, Config{Shards: 1, LR: 0.05, Workers: 1, Staleness: 0})
	ts := httptest.NewServer(NewHandler(server))
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())

	e := core.NewEngine(workerEngineConfig())
	step, err := mlpBuild(42, 8)(0, e)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	w, err := NewWorker(0, e, step, client)
	if err != nil {
		t.Fatalf("worker: %v", err)
	}
	if err := w.Bootstrap(0); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	params, _, _, err := client.Pull(context.Background(), 0, -1)
	if err != nil || len(params) == 0 {
		t.Fatalf("pull: params=%v err=%v", params, err)
	}
	var name string
	for n := range params {
		name = n
		break
	}
	zero := map[string]*tensor.Tensor{name: tensor.Zeros(params[name].Shape()...)}

	// A free-running step: the worker pulls (clock syncs to the current
	// shard step), then the body advances the shard clock to 100 before
	// backprop streams this step's gradients — every one of them now lags
	// by ~100 > bound 0, so each comes back 409 and must be dropped, with
	// the backoff firing.
	injected := false
	losses, stale, err := w.RunFree(context.Background(), 1, func(int) (float64, error) {
		injected = true
		if _, err := client.PushGrad(context.Background(), 0, -1, 100, zero); err != nil {
			return 0, err
		}
		return step(1)
	})
	if err != nil || len(losses) != 1 || !injected {
		t.Fatalf("step with injected fresher clock: losses=%v err=%v", losses, err)
	}
	if stale == 0 {
		t.Fatal("no stale drops — the 409→ErrStale round trip never happened")
	}
	if got := w.Stats().StaleDrops; got == 0 {
		t.Fatalf("worker stats recorded no stale drops: %+v", w.Stats())
	}
	if got := w.Stats().Backoffs; got == 0 {
		t.Fatalf("stale step did not back off: %+v", w.Stats())
	}
	if st := server.Stats(); st.StaleDrops == 0 {
		t.Fatalf("server recorded no stale rejections: %+v", st)
	}

	// Recovery: the next free-running step's pull fast-forwards the worker
	// clock to the injected step, so its pushes are accepted again.
	before := w.Stats().Pushes
	if _, stale, err = w.RunFree(context.Background(), 1, func(int) (float64, error) { return step(2) }); err != nil {
		t.Fatalf("recovery step: %v", err)
	}
	if stale != 0 {
		t.Fatalf("recovery step still stale: %d drops", stale)
	}
	if w.Stats().Pushes <= before {
		t.Fatalf("recovery step pushed nothing: %+v", w.Stats())
	}
}

// TestAsyncCancellation: RunAsync honors context cancellation between local
// steps and reports ErrCanceled.
func TestAsyncCancellation(t *testing.T) {
	cfg := workerEngineConfig()
	cluster, err := NewCluster(ClusterConfig{
		Workers: 2, Shards: 2, LR: cfg.LR, Staleness: 4, Engine: cfg,
		Build: slowedBuild(42, 8, 0, time.Millisecond),
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(15*time.Millisecond, cancel)
	_, err = cluster.RunAsync(ctx, 10_000)
	if err == nil {
		t.Fatal("canceled async run succeeded")
	}
}

// TestServerSideOptimizers: momentum and adam run server-side — per-tensor
// state keyed by variable name — and both still converge under free-running
// execution; the server reports the configured optimizer.
func TestServerSideOptimizers(t *testing.T) {
	for _, opt := range []string{"momentum", "adam"} {
		opt := opt
		t.Run(opt, func(t *testing.T) {
			cfg := workerEngineConfig()
			lr := cfg.LR
			if opt == "adam" {
				lr = 0.01 // conventional Adam scale; SGD-size steps diverge
			}
			cluster, err := NewCluster(ClusterConfig{
				Workers: 2, Shards: 2, LR: lr, Staleness: 4, Optimizer: opt,
				Engine: cfg, Build: mlpBuild(42, 8),
			})
			if err != nil {
				t.Fatalf("cluster: %v", err)
			}
			if got := cluster.Server().Stats().Optimizer; got != opt {
				t.Fatalf("server optimizer %q, want %q", got, opt)
			}
			res, err := cluster.RunAsync(context.Background(), 15)
			if err != nil {
				t.Fatalf("async run: %v", err)
			}
			first := res.WorkerLosses[0][0]
			if final := res.FinalLoss(); final >= first {
				t.Fatalf("%s made no progress: first %.4f, final %.4f", opt, first, final)
			}
		})
	}
}

// TestUnknownOptimizerRejected: a bad optimizer name fails server
// construction up front with a clear error.
func TestUnknownOptimizerRejected(t *testing.T) {
	if _, err := NewServer(Config{Optimizer: "adagrad"}); err == nil {
		t.Fatal("unknown optimizer accepted")
	}
}

// TestBarrieredNeverStale pins the synchronous invariant the free-running
// mode must not erode: a round-barriered run at staleness 0 rejects
// nothing, because worker clocks count rounds locally and identically — a
// worker pulling late in a round must never fast-forward past its peers'
// push clocks (that mechanism is free-running-only).
func TestBarrieredNeverStale(t *testing.T) {
	cfg := workerEngineConfig()
	cluster, err := NewCluster(ClusterConfig{
		Workers: 4, Shards: 4, LR: cfg.LR * 4, Staleness: 0, Engine: cfg,
		Build: mlpBuild(42, 8),
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	res, err := cluster.Run(12)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Stale != 0 {
		t.Fatalf("barriered run at staleness 0 dropped %d gradients", res.Stale)
	}
}
