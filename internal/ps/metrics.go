package ps

import (
	"repro/internal/obs"
)

// Parameter-server metric help strings.
const (
	helpPulls     = "Parameter pulls, by result (fresh snapshot vs version-matched cache hit)."
	helpPushes    = "Gradient pushes applied."
	helpStale     = "Gradient pushes rejected by the staleness bound."
	helpPullLat   = "Server-side time to serve one parameter pull."
	helpPushLat   = "Server-side time to apply one gradient push."
	helpBytes     = "Parameter/gradient payload bytes moved, by direction."
	helpStaleness = "Observed worker-step lag behind the freshest shard clock, per push."
)

// metrics is the server's instrument set, resolved once in its registry.
// The former ad-hoc atomics (pulls, pushes, stale drops) live only here;
// Stats reads the counters back.
type metrics struct {
	pullsFresh  *obs.Counter
	pullsCached *obs.Counter
	pushes      *obs.Counter
	staleDrops  *obs.Counter

	pullLat   *obs.Histogram
	pushLat   *obs.Histogram
	bytesPull *obs.Counter
	bytesPush *obs.Counter
	staleness *obs.Histogram
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		pullsFresh:  reg.Counter("janus_ps_pulls_total", helpPulls, "result", "fresh"),
		pullsCached: reg.Counter("janus_ps_pulls_total", helpPulls, "result", "cached"),
		pushes:      reg.Counter("janus_ps_pushes_total", helpPushes),
		staleDrops:  reg.Counter("janus_ps_stale_drops_total", helpStale),
		pullLat:     reg.Histogram("janus_ps_pull_seconds", helpPullLat, obs.DefBuckets),
		pushLat:     reg.Histogram("janus_ps_push_seconds", helpPushLat, obs.DefBuckets),
		bytesPull:   reg.Counter("janus_ps_bytes_moved_total", helpBytes, "dir", "pull"),
		bytesPush:   reg.Counter("janus_ps_bytes_moved_total", helpBytes, "dir", "push"),
		staleness:   reg.Histogram("janus_ps_staleness_steps", helpStaleness, obs.StepBuckets),
	}
}
