package ps

import (
	"repro/internal/obs"
)

// Parameter-server metric help strings.
const (
	helpPulls     = "Parameter pulls, by result (fresh snapshot vs version-matched cache hit)."
	helpPushes    = "Gradient pushes applied."
	helpStale     = "Gradient pushes rejected by the staleness bound."
	helpPullLat   = "Server-side time to serve one parameter pull."
	helpPushLat   = "Server-side time to apply one gradient push."
	helpBytes     = "Parameter/gradient payload bytes moved, by direction."
	helpStaleness = "Observed worker-step lag behind the freshest shard clock, per push."
	helpDupDrops  = "Gradient pushes dropped as duplicates by the worker-step dedup ledger."
	helpExpiries  = "Worker leases expired for missed heartbeats."
	helpRebal     = "Coverage rebalances triggered by membership changes."
	helpFailovers = "Shard failovers completed from a snapshot."
	helpSnaps     = "Shard snapshots taken, by result."
	helpRetries   = "Client RPC retries after transient errors, by RPC."
	helpFaults    = "Faults injected by the fault-injection transport, by kind."
)

// metrics is the server's instrument set, resolved once in its registry.
// The former ad-hoc atomics (pulls, pushes, stale drops) live only here;
// Stats reads the counters back.
type metrics struct {
	pullsFresh  *obs.Counter
	pullsCached *obs.Counter
	pushes      *obs.Counter
	staleDrops  *obs.Counter

	pullLat   *obs.Histogram
	pushLat   *obs.Histogram
	bytesPull *obs.Counter
	bytesPush *obs.Counter
	staleness *obs.Histogram

	dupDrops      *obs.Counter
	leaseExpiries *obs.Counter
	rebalances    *obs.Counter
	failovers     *obs.Counter
	snapshots     *obs.Counter
	snapErrors    *obs.Counter
}

func newMetrics(reg *obs.Registry) *metrics {
	m := &metrics{
		pullsFresh:  reg.Counter("janus_ps_pulls_total", helpPulls, "result", "fresh"),
		pullsCached: reg.Counter("janus_ps_pulls_total", helpPulls, "result", "cached"),
		pushes:      reg.Counter("janus_ps_pushes_total", helpPushes),
		staleDrops:  reg.Counter("janus_ps_stale_drops_total", helpStale),
		pullLat:     reg.Histogram("janus_ps_pull_seconds", helpPullLat, obs.DefBuckets),
		pushLat:     reg.Histogram("janus_ps_push_seconds", helpPushLat, obs.DefBuckets),
		bytesPull:   reg.Counter("janus_ps_bytes_moved_total", helpBytes, "dir", "pull"),
		bytesPush:   reg.Counter("janus_ps_bytes_moved_total", helpBytes, "dir", "push"),
		staleness:   reg.Histogram("janus_ps_staleness_steps", helpStaleness, obs.StepBuckets),

		dupDrops:      reg.Counter("janus_ps_dup_drops_total", helpDupDrops),
		leaseExpiries: reg.Counter("janus_ps_lease_expiries_total", helpExpiries),
		rebalances:    reg.Counter("janus_ps_rebalances_total", helpRebal),
		failovers:     reg.Counter("janus_ps_shard_failovers_total", helpFailovers),
		snapshots:     reg.Counter("janus_ps_snapshots_total", helpSnaps, "result", "ok"),
		snapErrors:    reg.Counter("janus_ps_snapshots_total", helpSnaps, "result", "error"),
	}
	// Eagerly resolve the client-side families (retries, injected faults) on
	// the server registry too, so a scrape of a quiet janusps still advertises
	// every family the bench gate requires. In-process runs (janusbench,
	// tests) share this registry, so the same series then carry live counts.
	for _, rpc := range retryRPCs {
		reg.Counter("janus_ps_retries_total", helpRetries, "rpc", rpc)
	}
	for _, kind := range faultKinds {
		reg.Counter("janus_ps_faults_injected_total", helpFaults, "kind", kind)
	}
	return m
}
