package ps

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// membership is the server's worker-lease table: the machinery behind
// elastic data coverage. Each live worker holds a lease it must renew
// (Heartbeat) within the TTL; a silent worker's lease expires and the
// remaining workers' assignments close over its slice of the data.
//
// Expiry is checked lazily at the head of every membership operation rather
// than by a background reaper: a server with no live traffic expires no one
// (nothing is waiting on the freed coverage anyway), and the first operation
// after a silence window observes a fully settled membership. Assignments
// are deterministic — live workers ordered by ID, slot = rank — so every
// caller computes the same coverage from the same epoch without extra
// coordination.
type membership struct {
	mu      sync.Mutex
	ttl     time.Duration
	now     func() time.Time // injectable clock for tests
	leases  map[int]*memberLease
	epoch   int64
	nextID  int64
	metrics *metrics
}

type memberLease struct {
	worker  int
	id      int64
	expires time.Time
	// assignment caches the worker's slot under the current epoch.
	assignment Assignment
}

func newMembership(ttl time.Duration, m *metrics) *membership {
	return &membership{ttl: ttl, now: time.Now, leases: make(map[int]*memberLease), metrics: m}
}

// expireLocked drops every lapsed lease and rebalances once if any lapsed.
func (ms *membership) expireLocked() {
	now := ms.now()
	expired := false
	for worker, l := range ms.leases {
		if now.After(l.expires) {
			delete(ms.leases, worker)
			ms.metrics.leaseExpiries.Inc()
			expired = true
		}
	}
	if expired {
		ms.rebalanceLocked()
	}
}

// rebalanceLocked recomputes every live worker's slot (rank by worker ID)
// and bumps the epoch. Callers hold ms.mu.
func (ms *membership) rebalanceLocked() {
	ms.epoch++
	ms.metrics.rebalances.Inc()
	ids := make([]int, 0, len(ms.leases))
	for worker := range ms.leases {
		ids = append(ids, worker)
	}
	sort.Ints(ids)
	for slot, worker := range ids {
		ms.leases[worker].assignment = Assignment{Slot: slot, Live: len(ids), Epoch: ms.epoch}
	}
}

// register creates (or supersedes) worker's lease and returns it.
func (ms *membership) register(worker int) Lease {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.expireLocked()
	ms.nextID++
	old, wasLive := ms.leases[worker]
	l := &memberLease{worker: worker, id: ms.nextID, expires: ms.now().Add(ms.ttl)}
	if wasLive {
		// Same membership set, same slot: carry the assignment over.
		l.assignment = old.assignment
	}
	ms.leases[worker] = l
	// A rejoin of an already-live worker keeps the membership set unchanged
	// — no rebalance, only a fresh token. A genuinely new worker shifts
	// every slot.
	if !wasLive {
		ms.rebalanceLocked()
	}
	return Lease{ID: l.id, TTL: ms.ttl, Assignment: l.assignment}
}

// heartbeat renews worker's lease and reports the current assignment.
func (ms *membership) heartbeat(worker int, lease int64) (Assignment, error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.expireLocked()
	l, ok := ms.leases[worker]
	if !ok || l.id != lease {
		return Assignment{}, LeaseExpiredErr(fmt.Sprintf("worker %d lease %d", worker, lease))
	}
	l.expires = ms.now().Add(ms.ttl)
	return l.assignment, nil
}

// live reports how many workers currently hold unexpired leases.
func (ms *membership) live() int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.expireLocked()
	return len(ms.leases)
}
