package ps

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// retryRPCs names every Transport RPC a RetryTransport can retry; the list
// doubles as the eager label set for janus_ps_retries_total so the family is
// visible on a scrape before the first retry fires.
var retryRPCs = []string{"pull", "push", "init", "register", "heartbeat"}

// RetryPolicy bounds a RetryTransport: how long one attempt may run, how
// many retries a single logical call may spend, and the backoff envelope
// between attempts.
type RetryPolicy struct {
	// Attempt caps one attempt's wall-clock time (per-RPC deadline layered
	// under the caller's context). <=0 means 2s.
	Attempt time.Duration
	// Budget is the maximum number of RETRIES (attempts-1) per logical call.
	// <=0 means 12; retries are what PushGrad dedup makes safe to spend.
	Budget int
	// Base and Max bound the full-jitter exponential backoff between
	// attempts: sleep ~ U[0, min(Max, Base<<n)). Defaults 2ms and 100ms.
	// Budget*Max must comfortably exceed any expected outage window (shard
	// failover delay, lease TTL) or callers give up mid-recovery.
	Base, Max time.Duration
	// Seed fixes the jitter stream; 0 seeds from the policy defaults
	// deterministically (seed 1), keeping runs reproducible by default.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempt <= 0 {
		p.Attempt = 2 * time.Second
	}
	if p.Budget <= 0 {
		p.Budget = 12
	}
	if p.Base <= 0 {
		p.Base = 2 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 100 * time.Millisecond
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// RetryTransport wraps any Transport with per-attempt deadlines, a retry
// budget, and capped full-jitter exponential backoff. Only transient
// failures — ErrUnavailable and attempt-deadline timeouts — are retried;
// everything else (staleness rejections, lease expiry, caller cancellation)
// passes straight through as the typed sentinel. Retrying PushGrad is safe
// because the server dedups on (worker, step): a retry of a push whose
// reply was lost is applied exactly once.
type RetryTransport struct {
	inner Transport
	p     RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand

	retries map[string]*obs.Counter
}

// NewRetryTransport wraps inner under policy p. reg receives
// janus_ps_retries_total{rpc}; nil uses a private registry (counters still
// count, nothing is exported).
func NewRetryTransport(inner Transport, p RetryPolicy, reg *obs.Registry) *RetryTransport {
	p = p.withDefaults()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	rt := &RetryTransport{
		inner:   inner,
		p:       p,
		rng:     rand.New(rand.NewSource(p.Seed)),
		retries: make(map[string]*obs.Counter, len(retryRPCs)),
	}
	for _, rpc := range retryRPCs {
		rt.retries[rpc] = reg.Counter("janus_ps_retries_total", helpRetries, "rpc", rpc)
	}
	return rt
}

// Total reports how many retries have fired across all RPCs.
func (rt *RetryTransport) Total() int64 {
	var n int64
	for _, c := range rt.retries {
		n += c.Value()
	}
	return n
}

// retryable reports whether err is worth another attempt: the server (or an
// injected fault) said "unavailable", or the attempt deadline fired while
// the caller's own context is still live.
func retryable(err error, ctx context.Context) bool {
	if errors.Is(err, ErrUnavailable) {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil
}

// backoff returns the full-jitter sleep before retry n (0-based):
// U[0, min(Max, Base<<n)). Full jitter decorrelates colliding clients —
// deterministic doubling marches every victim of one outage in lockstep.
func (rt *RetryTransport) backoff(n int) time.Duration {
	ceil := rt.p.Max
	if shifted := rt.p.Base << uint(n); shifted > 0 && shifted < ceil {
		ceil = shifted
	}
	rt.mu.Lock()
	d := time.Duration(rt.rng.Int63n(int64(ceil)))
	rt.mu.Unlock()
	return d
}

func (rt *RetryTransport) do(ctx context.Context, rpc string, fn func(context.Context) error) error {
	var err error
	for attempt := 0; ; attempt++ {
		actx, cancel := context.WithTimeout(ctx, rt.p.Attempt)
		err = fn(actx)
		cancel()
		if err == nil || !retryable(err, ctx) {
			return err
		}
		if attempt >= rt.p.Budget {
			return fmt.Errorf("ps: %s retry budget (%d) exhausted: %w", rpc, rt.p.Budget, err)
		}
		rt.retries[rpc].Inc()
		select {
		case <-time.After(rt.backoff(attempt)):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// NumShards implements Transport (not retried: it runs once at worker
// construction, before any churn a retry policy is meant to ride out).
func (rt *RetryTransport) NumShards() (int, error) { return rt.inner.NumShards() }

// Pull implements Transport.
func (rt *RetryTransport) Pull(ctx context.Context, shard int, have int64) (map[string]*tensor.Tensor, int64, int64, error) {
	var params map[string]*tensor.Tensor
	var version, step int64
	err := rt.do(ctx, "pull", func(actx context.Context) error {
		var e error
		params, version, step, e = rt.inner.Pull(actx, shard, have)
		return e
	})
	return params, version, step, err
}

// PushGrad implements Transport.
func (rt *RetryTransport) PushGrad(ctx context.Context, shard, worker int, step int64, grads map[string]*tensor.Tensor) (int64, error) {
	var version int64
	err := rt.do(ctx, "push", func(actx context.Context) error {
		var e error
		version, e = rt.inner.PushGrad(actx, shard, worker, step, grads)
		return e
	})
	return version, err
}

// InitVars implements Transport.
func (rt *RetryTransport) InitVars(ctx context.Context, vals map[string]*tensor.Tensor) error {
	return rt.do(ctx, "init", func(actx context.Context) error {
		return rt.inner.InitVars(actx, vals)
	})
}

// Register implements Transport.
func (rt *RetryTransport) Register(ctx context.Context, worker int) (Lease, error) {
	var lease Lease
	err := rt.do(ctx, "register", func(actx context.Context) error {
		var e error
		lease, e = rt.inner.Register(actx, worker)
		return e
	})
	return lease, err
}

// Heartbeat implements Transport.
func (rt *RetryTransport) Heartbeat(ctx context.Context, worker int, lease int64) (Assignment, error) {
	var a Assignment
	err := rt.do(ctx, "heartbeat", func(actx context.Context) error {
		var e error
		a, e = rt.inner.Heartbeat(actx, worker, lease)
		return e
	})
	return a, err
}
